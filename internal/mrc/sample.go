package mrc

import "ldis/internal/mem"

// splitmix64 is the spatial hash behind SHARDS sampling: a line is
// tracked iff splitmix64(line^seed) falls below the current threshold,
// so the sample set is a deterministic function of (address, seed) —
// no wall clock, no map iteration, identical at any worker count.
//
//ldis:noalloc
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// emptyKey marks an unused slot in lineTable. Line addresses occupy at
// most PhysAddrBits-LineShift bits, so all-ones can never collide with
// a real line.
const emptyKey = ^uint64(0)

// lineTable maps a line address to its most recent stack position and
// cumulative word footprint. It is a linear-probe open-addressing
// table over parallel slices rather than a Go map so the per-access
// hot path stays allocation-free (map writes may allocate; these slice
// stores cannot, and growth is amortized behind //ldis:alloc-ok).
// pos==0 marks a line evicted from the SHARDS fixed-size sample: its
// hash is >= the lowered threshold, so the gate rejects it forever and
// the dead entry is never revived.
type lineTable struct {
	keys []uint64
	pos  []int32
	fp   []mem.Footprint
	n    int // occupied slots (live + dead)
}

func newLineTable() lineTable {
	const initial = 1 << 10
	t := lineTable{
		keys: make([]uint64, initial),
		pos:  make([]int32, initial),
		fp:   make([]mem.Footprint, initial),
	}
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	return t
}

// find returns the slot index holding key, or -1.
//
//ldis:noalloc
func (t *lineTable) find(key uint64) int {
	mask := uint64(len(t.keys) - 1)
	for i := splitmix64(key) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case key:
			return int(i)
		case emptyKey:
			return -1
		}
	}
}

// insert claims a slot for key (which must be absent) and returns its
// index. Growth doubles the table at 3/4 load, amortized O(1).
//
//ldis:noalloc
func (t *lineTable) insert(key uint64) int {
	if t.n*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := splitmix64(key) & mask
	for t.keys[i] != emptyKey {
		i = (i + 1) & mask
	}
	t.keys[i] = key
	t.n++
	return int(i)
}

func (t *lineTable) grow() {
	old := *t
	size := len(old.keys) * 2
	//ldis:alloc-ok amortized open-addressing growth; doubling at 3/4 load keeps per-access cost O(1)
	t.keys = make([]uint64, size)
	//ldis:alloc-ok amortized open-addressing growth; doubling at 3/4 load keeps per-access cost O(1)
	t.pos = make([]int32, size)
	//ldis:alloc-ok amortized open-addressing growth; doubling at 3/4 load keeps per-access cost O(1)
	t.fp = make([]mem.Footprint, size)
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	t.n = 0
	for i, k := range old.keys {
		if k == emptyKey {
			continue
		}
		j := t.insert(k)
		t.pos[j] = old.pos[i]
		t.fp[j] = old.fp[i]
	}
}

// sampleRef identifies one tracked line in the fixed-size SHARDS
// max-heap, ordered by hash (ties broken by key so eviction order is
// deterministic even across hash collisions).
type sampleRef struct {
	hash uint64
	key  uint64
}

// sampleHeap is a max-heap of tracked lines by spatial hash. When the
// sample exceeds MaxSamples, the maximum-hash line is evicted and the
// threshold lowered to its hash, which (a) shrinks the effective
// sampling rate and (b) guarantees the evicted line can never re-enter.
type sampleHeap struct {
	refs []sampleRef
}

//ldis:noalloc
func (h *sampleHeap) less(a, b sampleRef) bool {
	if a.hash != b.hash {
		return a.hash > b.hash // max-heap by hash
	}
	return a.key > b.key
}

// push adds a tracked line. The append targets the receiver's own
// slice, so growth is the caller's amortized storage, not an escape.
//
//ldis:noalloc
func (h *sampleHeap) push(r sampleRef) {
	h.refs = append(h.refs, r)
	i := len(h.refs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.refs[i], h.refs[parent]) {
			break
		}
		h.refs[i], h.refs[parent] = h.refs[parent], h.refs[i]
		i = parent
	}
}

// pop removes and returns the maximum-hash line.
//
//ldis:noalloc
func (h *sampleHeap) pop() sampleRef {
	top := h.refs[0]
	last := len(h.refs) - 1
	h.refs[0] = h.refs[last]
	h.refs = h.refs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.refs) && h.less(h.refs[l], h.refs[best]) {
			best = l
		}
		if r < len(h.refs) && h.less(h.refs[r], h.refs[best]) {
			best = r
		}
		if best == i {
			return top
		}
		h.refs[i], h.refs[best] = h.refs[best], h.refs[i]
		i = best
	}
}
