package mrc

import (
	"math"
	"testing"

	"ldis/internal/mem"
)

func mustNew(t *testing.T, cfg Config, maxAccesses int) *Engine {
	t.Helper()
	e, err := New(cfg, maxAccesses)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

// fineConfig resolves at one line per bucket so hand-computed stack
// distances land in predictable buckets.
func fineConfig() Config {
	return Config{MaxBytes: 64 * mem.LineSize, ResolutionBytes: mem.LineSize}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		max  int
	}{
		{"resolution below line", Config{ResolutionBytes: 8}, 100},
		{"max below resolution", Config{MaxBytes: 64, ResolutionBytes: 128}, 100},
		{"rate above one", Config{SampleRate: 1.5}, 100},
		{"negative rate", Config{SampleRate: -0.1}, 100},
		{"negative max samples", Config{MaxSamples: -1}, 100},
		{"fixed-size without sampling", Config{MaxSamples: 10}, 100},
		{"zero budget", Config{}, 0},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg, tc.max); err == nil {
			t.Errorf("%s: New accepted invalid config %+v", tc.name, tc.cfg)
		}
	}
	if _, err := New(Config{}, 100); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

// TestExactLineDistances drives a hand-checked trace through the exact
// engine. Trace (line addresses): A B C A. The reuse of A has two
// distinct lines (B, C) stacked above it, so its inclusive line-grain
// distance is 3 lines = 192 bytes: a hit at >=3 lines of capacity, a
// miss below.
func TestExactLineDistances(t *testing.T) {
	e := mustNew(t, fineConfig(), 16)
	for _, l := range []mem.LineAddr{10, 11, 12, 10} {
		e.Access(l, 0)
	}
	c := e.LineCurve("line")
	if got := c.Refs; got != 4 {
		t.Fatalf("refs = %v, want 4", got)
	}
	// 3 cold misses out of 4 refs at every capacity >= 3 lines; the
	// reuse misses additionally at < 3 lines.
	if got := c.MissRatioAt(2 * mem.LineSize); got != 1.0 {
		t.Errorf("MR(2 lines) = %v, want 1 (reuse distance 3 lines misses)", got)
	}
	if got := c.MissRatioAt(3 * mem.LineSize); got != 0.75 {
		t.Errorf("MR(3 lines) = %v, want 0.75 (only the 3 cold misses)", got)
	}
	if got := c.ColdFrac; got != 0.75 {
		t.Errorf("ColdFrac = %v, want 0.75", got)
	}
}

// TestExactImmediateReuse checks the minimum distance: A A has an
// inclusive reuse distance of one line — a hit at any capacity.
func TestExactImmediateReuse(t *testing.T) {
	e := mustNew(t, fineConfig(), 16)
	e.Access(7, 0)
	e.Access(7, 0)
	c := e.LineCurve("line")
	if got := c.MissRatioAt(mem.LineSize); got != 0.5 {
		t.Errorf("MR(1 line) = %v, want 0.5 (cold miss + hit)", got)
	}
}

// TestWordGrainWeights checks that the word-grain stack prices each
// line at its pow2-allocated word slots, not the full line. Trace: A
// (1 word), B (1 word), A again. Line-grain distance: 2 lines = 128B.
// Word-grain distance: B costs Pow2WordsFor(1)=1 slot, A itself 1
// slot -> 2 slots = 16 bytes: the distilled stack is 8x denser here.
func TestWordGrainWeights(t *testing.T) {
	e := mustNew(t, Config{MaxBytes: 4096, ResolutionBytes: 64}, 16)
	e.Access(1, 0)
	e.Access(2, 3)
	e.Access(1, 0)
	line := e.LineCurve("line")
	word := e.WordCurve("word")
	// At 64B capacity: line grain needs 128B -> miss (3 misses of 3
	// refs); word grain needs 16B -> hit (2 cold of 3).
	if got := line.MissRatioAt(64); got != 1.0 {
		t.Errorf("line MR(64B) = %v, want 1", got)
	}
	if got, want := word.MissRatioAt(64), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("word MR(64B) = %v, want %v", got, want)
	}
}

// TestWordFootprintGrowth: touching a second word in a line bumps its
// slot cost along the pow2 schedule (1 -> 2 slots), and the reused
// access is charged the post-access footprint.
func TestWordFootprintGrowth(t *testing.T) {
	e := mustNew(t, Config{MaxBytes: 4096, ResolutionBytes: 64}, 16)
	e.Access(1, 0) // A word 0: 1 slot
	e.Access(1, 5) // A word 5: footprint 2 -> 2 slots, distance 2*8=16B
	e.Access(2, 0) // B: 1 slot
	e.Access(1, 1) // A word 1: 3 words -> 4 slots; distance = B(1) + A(4) = 5 slots = 40B
	word := e.WordCurve("word")
	// Buckets are 64B wide, so both reuses land in bucket 1: at 64B
	// capacity only the 2 cold misses remain.
	if got, want := word.MissRatioAt(64), 0.5; got != want {
		t.Errorf("word MR(64B) = %v, want %v", got, want)
	}
	// The beyond-max check: line-grain distance of the last access is
	// 2 lines = 128B > 64B... verify via a 64B-max engine that the
	// reuse is an overflow miss there.
	small := mustNew(t, Config{MaxBytes: 64, ResolutionBytes: 64}, 16)
	small.Access(1, 0)
	small.Access(2, 0)
	small.Access(1, 0)
	if got := small.LineCurve("line").MissRatioAt(64); got != 1.0 {
		t.Errorf("line MR(64B) = %v, want 1 (distance beyond MaxBytes)", got)
	}
}

// TestResetCounts: warmup accesses shape the stack but not the
// histogram. After reset, a reuse of a warmed line still sees its
// stack depth.
func TestResetCounts(t *testing.T) {
	e := mustNew(t, fineConfig(), 32)
	e.Access(1, 0)
	e.Access(2, 0)
	e.ResetCounts()
	e.Access(1, 0) // distance 2 lines, not cold
	c := e.LineCurve("line")
	if c.Refs != 1 {
		t.Fatalf("refs after reset = %v, want 1", c.Refs)
	}
	if got := c.ColdFrac; got != 0 {
		t.Errorf("ColdFrac = %v, want 0 (line warmed before reset)", got)
	}
	if got := c.MissRatioAt(mem.LineSize); got != 1.0 {
		t.Errorf("MR(1 line) = %v, want 1 (distance 2 lines)", got)
	}
	if got := c.MissRatioAt(2 * mem.LineSize); got != 0.0 {
		t.Errorf("MR(2 lines) = %v, want 0", got)
	}
}

// TestEmptyCurve: an engine that saw nothing renders an empty curve
// and NaN ratios.
func TestEmptyCurve(t *testing.T) {
	e := mustNew(t, Config{}, 8)
	c := e.LineCurve("empty")
	if len(c.Points) != 0 {
		t.Fatalf("empty engine produced %d points", len(c.Points))
	}
	if !math.IsNaN(c.MissRatioAt(1 << 20)) {
		t.Errorf("MissRatioAt on empty curve = %v, want NaN", c.MissRatioAt(1<<20))
	}
}

// TestCurveMonotone: miss ratios never increase with capacity on a
// pseudo-random trace, at both granularities, exact and sampled.
func TestCurveMonotone(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{SampleRate: 0.25, Seed: 42},
		{SampleRate: 0.25, MaxSamples: 64, Seed: 42},
	} {
		e := mustNew(t, cfg, 20000)
		x := uint64(1)
		for i := 0; i < 20000; i++ {
			x = splitmix64(x)
			e.Access(mem.LineAddr(x%4096), int(x>>32)&7)
		}
		for _, c := range []Curve{e.LineCurve("line"), e.WordCurve("word")} {
			if !c.Series().NonIncreasing() {
				t.Errorf("cfg %+v: %s curve not non-increasing", cfg, c.Name)
			}
			for _, p := range c.Points {
				if p.Y < 0 || p.Y > 1 {
					t.Errorf("cfg %+v: %s MR(%g) = %v outside [0,1]", cfg, c.Name, p.X, p.Y)
				}
			}
		}
	}
}

// TestSampledDeterminism: the same seed gives bit-identical curves;
// different seeds sample different subsets.
func TestSampledDeterminism(t *testing.T) {
	run := func(seed uint64) Curve {
		e := mustNew(t, Config{SampleRate: 0.2, MaxSamples: 128, Seed: seed}, 30000)
		x := uint64(9)
		for i := 0; i < 30000; i++ {
			x = splitmix64(x)
			e.Access(mem.LineAddr(x%8192), int(x)&7)
		}
		return e.LineCurve("line")
	}
	a, b := run(1), run(1)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("same seed diverged at point %d: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
	c := run(2)
	same := true
	for i := range a.Points {
		if a.Points[i] != c.Points[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sampled curves (gate ignores seed?)")
	}
}

// TestFixedSizeBound: the fixed-size variant never tracks more than
// MaxSamples lines, and its curve still approximates the exact one.
func TestFixedSizeBound(t *testing.T) {
	const maxSamples = 50
	e := mustNew(t, Config{SampleRate: 0.9, MaxSamples: maxSamples, Seed: 3}, 20000)
	exact := mustNew(t, Config{}, 20000)
	x := uint64(17)
	for i := 0; i < 20000; i++ {
		x = splitmix64(x)
		line, word := mem.LineAddr(x%512), int(x>>40)&7
		e.Access(line, word)
		exact.Access(line, word)
		if n := len(e.heap.refs); n > maxSamples {
			t.Fatalf("heap holds %d lines, budget %d", n, maxSamples)
		}
	}
	live := 0
	for i, k := range e.tab.keys {
		if k != emptyKey && e.tab.pos[i] != 0 {
			live++
		}
	}
	if live != len(e.heap.refs) {
		t.Errorf("live table entries %d != heap size %d", live, len(e.heap.refs))
	}
	// 512 distinct lines vs a 50-line sample: still expect a rough
	// match (loose bound; the exp-level test asserts the tight one).
	diff := maxAbsDiffAtPoints(t, exact.LineCurve("exact"), e.LineCurve("sampled"))
	if diff > 0.15 {
		t.Errorf("fixed-size curve off by %v from exact (bound 0.15)", diff)
	}
}

// TestSampledScaling: with sampling on a uniform trace, the scaled
// curve approximates the exact one and the expected-misses correction
// keeps ratios over the true reference count.
func TestSampledScaling(t *testing.T) {
	exact := mustNew(t, Config{}, 40000)
	sampled := mustNew(t, Config{SampleRate: 0.3, Seed: 11}, 40000)
	x := uint64(5)
	for i := 0; i < 40000; i++ {
		x = splitmix64(x)
		line, word := mem.LineAddr(x%2048), int(x>>33)&7
		exact.Access(line, word)
		sampled.Access(line, word)
	}
	if sampled.Refs() != 40000 {
		t.Fatalf("sampled engine counted %v refs, want 40000", sampled.Refs())
	}
	if sampled.TrackedRefs() >= sampled.Refs() {
		t.Fatalf("sampling gate tracked everything (%v refs)", sampled.TrackedRefs())
	}
	for _, pair := range [][2]Curve{
		{exact.LineCurve("line"), sampled.LineCurve("line")},
		{exact.WordCurve("word"), sampled.WordCurve("word")},
	} {
		// A uniform random trace is the worst case for SHARDS (error
		// is pure sampling variance); real benchmarks are held to 0.02
		// in internal/exp.
		if diff := maxAbsDiffAtPoints(t, pair[0], pair[1]); diff > 0.05 {
			t.Errorf("%s: sampled curve off by %v (bound 0.05)", pair[0].Name, diff)
		}
	}
}

func maxAbsDiffAtPoints(t *testing.T, a, b Curve) float64 {
	t.Helper()
	if len(a.Points) == 0 || len(b.Points) == 0 {
		t.Fatal("empty curve in comparison")
	}
	max := 0.0
	for i := range a.Points {
		if d := math.Abs(a.Points[i].Y - b.Points[i].Y); d > max {
			max = d
		}
	}
	return max
}

// TestBudgetPanic: exceeding the access budget is a programming error
// and panics rather than corrupting the Fenwick trees.
func TestBudgetPanic(t *testing.T) {
	e := mustNew(t, Config{}, 2)
	e.Access(1, 0)
	e.Access(2, 0)
	defer func() {
		if recover() == nil {
			t.Error("third access beyond budget did not panic")
		}
	}()
	e.Access(3, 0)
}

// TestCurrentLineDistanceBytes checks the read-only point query that
// feeds the distill cache's copy-back predictor. Trace A B C: A's
// current inclusive distance is 3 lines, the MRU line's is 1, a line
// never seen is unknown, and querying must not advance the clock.
func TestCurrentLineDistanceBytes(t *testing.T) {
	e := mustNew(t, fineConfig(), 16)
	for _, l := range []mem.LineAddr{10, 11, 12} {
		e.Access(l, 0)
	}
	if d, ok := e.CurrentLineDistanceBytes(10); !ok || d != 3*mem.LineSize {
		t.Fatalf("distance(A) = %v, %v; want %d, true", d, ok, 3*mem.LineSize)
	}
	if d, ok := e.CurrentLineDistanceBytes(12); !ok || d != mem.LineSize {
		t.Fatalf("distance(MRU) = %v, %v; want %d, true", d, ok, mem.LineSize)
	}
	if _, ok := e.CurrentLineDistanceBytes(99); ok {
		t.Fatal("unseen line reported a distance")
	}
	// Read-only: the query above must not have perturbed the stack.
	if d, ok := e.CurrentLineDistanceBytes(10); !ok || d != 3*mem.LineSize {
		t.Fatalf("repeat distance(A) = %v, %v; query is not read-only", d, ok)
	}
	e.Access(10, 0)
	if d, ok := e.CurrentLineDistanceBytes(10); !ok || d != mem.LineSize {
		t.Fatalf("distance(A) after retouch = %v, %v; want %d, true", d, ok, mem.LineSize)
	}
}

// TestCurrentLineDistanceSampled checks the sampled engine: unsampled
// lines are unknown (cold), sampled lines answer with the scaled
// distance, and the split is deterministic in the seed.
func TestCurrentLineDistanceSampled(t *testing.T) {
	e := mustNew(t, Config{SampleRate: 0.5, Seed: 7}, 1<<16)
	const lines = 256
	for i := 0; i < lines; i++ {
		e.Access(mem.LineAddr(i), 0)
	}
	known, cold := 0, 0
	for i := 0; i < lines; i++ {
		if d, ok := e.CurrentLineDistanceBytes(mem.LineAddr(i)); ok {
			known++
			if d <= 0 {
				t.Fatalf("line %d: non-positive distance %v", i, d)
			}
		} else {
			cold++
		}
	}
	if known == 0 || cold == 0 {
		t.Fatalf("sampling split degenerate: %d known / %d cold", known, cold)
	}
}
