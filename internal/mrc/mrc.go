// Package mrc builds LRU miss-ratio curves in a single trace pass.
//
// The engine is a Mattson stack implemented over an order-statistic
// Fenwick tree: each tracked line holds a weight at its last-touch
// time, and the reuse distance of an access is the total weight of
// lines touched since — an O(log M) prefix-sum query instead of an
// O(M) stack scan. Because LRU has the inclusion property, one
// histogram of reuse distances yields the miss ratio at every capacity
// at once: an access hits in a cache of C bytes iff its (inclusive)
// reuse distance is at most C.
//
// Every access is priced at two granularities from the same pass:
//
//   - line grain: each stacked line costs mem.LineSize bytes — the
//     conventional cache.
//   - word grain: each stacked line costs its allocated word slots
//     (mem.Pow2WordsFor of the cumulative footprint since first touch,
//     matching the distilled word-organized-cache allocation model)
//     times mem.WordSize bytes.
//
// The vertical gap between the two curves is the effective capacity a
// distilled cache reclaims by not storing never-used words (DESIGN.md
// §9).
//
// SHARDS sampling (Waldspurger et al.) makes the pass sublinear in
// distinct lines: a line is tracked iff its spatial hash falls under a
// threshold, every tracked event is scaled by the inverse sampling
// rate, and — the standard expected-misses correction — miss ratios
// are divided by the true (unsampled) reference count. The fixed-size
// variant additionally bounds tracked lines, evicting the
// maximum-hash line and lowering the threshold when the bound is
// exceeded. Everything is seeded from Config: no wall clock, no map
// iteration, deterministic at any worker count.
package mrc

import (
	"fmt"
	"math"

	"ldis/internal/mem"
	"ldis/internal/obs"
	"ldis/internal/stats"
)

// Config parameterizes one Engine.
type Config struct {
	// MaxBytes is the largest capacity on the curve. Default 4MB.
	MaxBytes int
	// ResolutionBytes is the capacity step between curve points.
	// Default 64KB.
	ResolutionBytes int
	// SampleRate is the SHARDS spatial sampling rate in (0, 1];
	// 1 (the default, also the zero value) disables sampling and the
	// engine is exact.
	SampleRate float64
	// MaxSamples, when > 0, bounds the number of concurrently tracked
	// lines (SHARDS fixed-size mode): exceeding it evicts the
	// maximum-hash line and lowers the threshold. Requires
	// SampleRate < 1.
	MaxSamples int
	// Seed perturbs the spatial hash so distinct runs (or benchmarks)
	// sample independent line subsets.
	Seed uint64

	// Obs, when non-nil, receives the owning grid cell's tracked-line
	// counter and — every 64K tracked accesses — the running line-grain
	// and word-grain miss ratios at MaxBytes, both as deterministic
	// cell gauges and as live gauges for the HTTP endpoint. Nil
	// disables all of it at the cost of one branch per publish window.
	Obs *obs.Cell
}

func (c Config) withDefaults() Config {
	if c.MaxBytes == 0 {
		c.MaxBytes = 4 << 20
	}
	if c.ResolutionBytes == 0 {
		c.ResolutionBytes = 64 << 10
	}
	if c.SampleRate == 0 {
		c.SampleRate = 1
	}
	return c
}

func (c Config) validate() error {
	if c.ResolutionBytes < mem.LineSize {
		return fmt.Errorf("mrc: resolution %dB is below the line size (%dB)", c.ResolutionBytes, mem.LineSize)
	}
	if c.MaxBytes < c.ResolutionBytes {
		return fmt.Errorf("mrc: max capacity %dB is below the resolution %dB", c.MaxBytes, c.ResolutionBytes)
	}
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		return fmt.Errorf("mrc: sample rate %g outside (0, 1]", c.SampleRate)
	}
	if c.MaxSamples < 0 {
		return fmt.Errorf("mrc: negative max samples %d", c.MaxSamples)
	}
	if c.MaxSamples > 0 && c.SampleRate >= 1 {
		return fmt.Errorf("mrc: fixed-size mode (max samples %d) requires a sample rate below 1", c.MaxSamples)
	}
	return nil
}

// twoPow64 is 2^64 as a float, the denominator turning a uint64 hash
// threshold into a sampling rate.
const twoPow64 = 1 << 64

// Engine computes line-grain and word-grain miss-ratio curves over one
// access stream. Create with New, feed with Access, and read curves
// with LineCurve/WordCurve. Call ResetCounts at the end of a warmup
// window: the stack state (recency, footprints) carries over but the
// histograms restart, mirroring the warmup()/measure() split of the
// full simulations.
type Engine struct {
	cfg     Config
	buckets int // curve points: MaxBytes / ResolutionBytes

	sampled   bool
	threshold uint64 // track line iff splitmix64(line^seed) < threshold
	invR      float64

	now    int // logical time of the latest tracked access
	fwLine fenwick
	fwWord fenwick
	tab    lineTable
	heap   sampleHeap

	// Histogram bucket i in [1, buckets] counts accesses whose scaled
	// reuse distance d satisfies ceil(d/resolution) == i; bucket
	// buckets+1 collects everything beyond MaxBytes. Values are
	// SHARDS-scaled expected counts (exact integers when SampleRate
	// is 1).
	histLine []float64
	histWord []float64
	cold     float64 // scaled first-touch (compulsory) misses
	refs     float64 // true references observed, sampled or not
	tracked  float64 // references that passed the sampling gate

	// Observability handles (nil when Config.Obs is nil). The miss-
	// ratio gauges refresh every 64K tracked accesses: the cell gauges
	// are deterministic (pure functions of the stream position), the
	// live gauges feed the HTTP endpoint mid-flight.
	obsSampled  *obs.Counter
	obsLineMR   *obs.Gauge
	obsWordMR   *obs.Gauge
	obsLiveLine *obs.Gauge
	obsLiveWord *obs.Gauge
}

// New returns an Engine able to ingest up to maxAccesses calls to
// Access.
func New(cfg Config, maxAccesses int) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if maxAccesses <= 0 {
		return nil, fmt.Errorf("mrc: non-positive access budget %d", maxAccesses)
	}
	e := &Engine{
		cfg:     cfg,
		buckets: cfg.MaxBytes / cfg.ResolutionBytes,
		tab:     newLineTable(),
		fwLine:  newFenwick(maxAccesses),
		fwWord:  newFenwick(maxAccesses),
		invR:    1,
	}
	if cfg.SampleRate < 1 {
		e.sampled = true
		e.threshold = uint64(cfg.SampleRate * twoPow64)
		if e.threshold == 0 {
			return nil, fmt.Errorf("mrc: sample rate %g rounds to zero lines", cfg.SampleRate)
		}
		e.invR = twoPow64 / float64(e.threshold)
	}
	e.histLine = make([]float64, e.buckets+2)
	e.histWord = make([]float64, e.buckets+2)
	e.obsSampled = cfg.Obs.Counter("mrc_tracked_accesses")
	e.obsLineMR = cfg.Obs.Gauge("mrc_line_miss_ratio")
	e.obsWordMR = cfg.Obs.Gauge("mrc_word_miss_ratio")
	e.obsLiveLine = cfg.Obs.LiveGauge("mrc_live_line_miss_ratio")
	e.obsLiveWord = cfg.Obs.LiveGauge("mrc_live_word_miss_ratio")
	return e, nil
}

// Access feeds one data access (line, word-in-line) through the
// Mattson stack. The per-access cost is two O(log M) Fenwick queries
// plus an O(1) open-addressing probe; no allocation.
//
//ldis:noalloc
func (e *Engine) Access(line mem.LineAddr, word int) {
	e.refs++
	key := uint64(line)
	var h uint64
	if e.sampled {
		h = splitmix64(key ^ e.cfg.Seed)
		if h >= e.threshold {
			return
		}
	}
	e.tracked++
	e.obsSampled.Inc()
	t := e.now + 1
	if t >= len(e.fwLine.tree) {
		panic("mrc: access budget exceeded; size New with the full trace length")
	}
	e.now = t
	if t&0xFFFF == 0 {
		e.publishGauges()
	}

	if idx := e.tab.find(key); idx >= 0 && e.tab.pos[idx] != 0 {
		// Reuse: distance = weight of lines touched strictly after the
		// previous touch, plus this line's own (inclusive) cost.
		p := int(e.tab.pos[idx])
		oldSlots := int32(mem.Pow2WordsFor(e.tab.fp[idx].Count()))
		nfp := e.tab.fp[idx].Set(word)
		newSlots := int32(mem.Pow2WordsFor(nfp.Count()))

		otherLines := e.fwLine.prefix(t-1) - e.fwLine.prefix(p)
		otherSlots := e.fwWord.prefix(t-1) - e.fwWord.prefix(p)
		dLine := float64(otherLines+1) * mem.LineSize * e.invR
		dWord := float64(otherSlots+int64(newSlots)) * mem.WordSize * e.invR
		e.record(e.histLine, dLine)
		e.record(e.histWord, dWord)

		e.fwLine.add(p, -1)
		e.fwWord.add(p, -oldSlots)
		e.fwLine.add(t, 1)
		e.fwWord.add(t, newSlots)
		e.tab.pos[idx] = int32(t)
		e.tab.fp[idx] = nfp
		return
	}

	// First touch: a compulsory miss at every capacity.
	e.cold += e.invR
	nfp := mem.FootprintOfWord(word)
	e.fwLine.add(t, 1)
	e.fwWord.add(t, int32(mem.Pow2WordsFor(1)))
	idx := e.tab.insert(key)
	e.tab.pos[idx] = int32(t)
	e.tab.fp[idx] = nfp
	if e.cfg.MaxSamples > 0 {
		e.pushSample(sampleRef{hash: h, key: key})
	}
}

// record buckets one scaled reuse distance.
//
//ldis:noalloc
func (e *Engine) record(hist []float64, dBytes float64) {
	b := int(math.Ceil(dBytes / float64(e.cfg.ResolutionBytes)))
	if b < 1 {
		b = 1
	}
	if b > e.buckets {
		b = e.buckets + 1
	}
	hist[b] += e.invR
}

// pushSample maintains the fixed-size SHARDS bound: track the new
// line, then while over budget evict the maximum-hash line(s) and
// lower the threshold to the evicted hash so the effective rate
// shrinks monotonically.
//
//ldis:noalloc
func (e *Engine) pushSample(r sampleRef) {
	e.heap.push(r)
	for len(e.heap.refs) > e.cfg.MaxSamples {
		top := e.heap.pop()
		e.threshold = top.hash
		e.invR = twoPow64 / float64(e.threshold)
		e.evict(top.key)
		// Hash collisions: anything sharing the evicted hash is now at
		// or above the threshold and must leave with it.
		for len(e.heap.refs) > 0 && e.heap.refs[0].hash >= e.threshold {
			e.evict(e.heap.pop().key)
		}
	}
}

// evict removes a line from the stack: its Fenwick weights vanish and
// its table entry is tombstoned (pos 0). The lowered threshold
// guarantees the gate rejects the line forever after.
//
//ldis:noalloc
func (e *Engine) evict(key uint64) {
	idx := e.tab.find(key)
	if idx < 0 || e.tab.pos[idx] == 0 {
		return
	}
	p := int(e.tab.pos[idx])
	e.fwLine.add(p, -1)
	e.fwWord.add(p, -int32(mem.Pow2WordsFor(e.tab.fp[idx].Count())))
	e.tab.pos[idx] = 0
}

// publishGauges refreshes the running miss ratios at MaxBytes — the
// cheapest point on the curve: its miss count is just cold misses plus
// distances beyond the largest capacity, no bucket walk. Keyed off the
// tracked-access count, so which accesses publish is deterministic.
//
//ldis:noalloc
func (e *Engine) publishGauges() {
	if e.obsLineMR == nil || e.refs == 0 {
		return
	}
	lineMR := clampRatio((e.cold + e.histLine[e.buckets+1]) / e.refs)
	wordMR := clampRatio((e.cold + e.histWord[e.buckets+1]) / e.refs)
	e.obsLineMR.Set(lineMR)
	e.obsWordMR.Set(wordMR)
	e.obsLiveLine.Set(lineMR)
	e.obsLiveWord.Set(wordMR)
}

// ResetCounts zeroes the histograms and reference counters while
// keeping the stack (recency order, footprints, sample set) intact —
// call it at the warmup/measure boundary.
func (e *Engine) ResetCounts() {
	for i := range e.histLine {
		e.histLine[i] = 0
		e.histWord[i] = 0
	}
	e.cold = 0
	e.refs = 0
	e.tracked = 0
}

// DecayCounts scales the histograms and reference counters by alpha in
// (0, 1], aging the accumulated distances toward the recent past while
// keeping the stack state (recency order, footprints, sample set)
// intact. The partition controller calls it at every epoch boundary:
// the curves become exponentially-weighted sliding windows — recent
// epochs dominate allocation decisions, yet the curve never empties
// between epochs the way ResetCounts would leave it.
func (e *Engine) DecayCounts(alpha float64) {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("mrc: decay factor %g outside [0, 1]", alpha))
	}
	for i := range e.histLine {
		e.histLine[i] *= alpha
		e.histWord[i] *= alpha
	}
	e.cold *= alpha
	e.refs *= alpha
	e.tracked *= alpha
}

// FillLineMissRatios writes the line-grain miss ratio at capacity
// i*stepBytes into dst[i] for every i, without allocating — the
// partition controller's per-epoch decision path reads whole curves
// this way instead of materializing Curve values. At capacities inside
// the curve's domain the values match Series.At on the corresponding
// Curve when stepBytes is a multiple of the resolution; dst[0]
// (capacity zero) is the all-miss ratio rather than At's clamp to the
// first point. With no references observed every entry is 1 (no
// information: everything is a predicted miss).
//
//ldis:noalloc
func (e *Engine) FillLineMissRatios(dst []float64, stepBytes int) {
	e.fillMissRatios(dst, stepBytes, e.histLine)
}

// FillWordMissRatios is FillLineMissRatios at the distilled word grain.
//
//ldis:noalloc
func (e *Engine) FillWordMissRatios(dst []float64, stepBytes int) {
	e.fillMissRatios(dst, stepBytes, e.histWord)
}

//ldis:noalloc
func (e *Engine) fillMissRatios(dst []float64, stepBytes int, hist []float64) {
	if stepBytes <= 0 {
		panic(fmt.Sprintf("mrc: non-positive fill step %d", stepBytes))
	}
	if e.refs == 0 {
		for i := range dst {
			dst[i] = 1
		}
		return
	}
	// Walk capacities high to low, accumulating the suffix sum of
	// distance buckets beyond each one — the same recurrence curve()
	// uses, restated over the caller's capacity grid.
	beyond := e.cold + hist[e.buckets+1]
	j := e.buckets // next bucket to fold in once capacity drops below j*resolution
	for i := len(dst) - 1; i >= 0; i-- {
		k := i * stepBytes / e.cfg.ResolutionBytes
		if k > e.buckets {
			k = e.buckets
		}
		for j > k {
			beyond += hist[j]
			j--
		}
		dst[i] = clampRatio(beyond / e.refs)
	}
}

// CurrentLineDistanceBytes returns the line-grain stack distance the
// given line would observe if it were accessed right now: the scaled
// byte weight of the lines touched since its last touch, plus its own
// inclusive line cost. ok is false when the engine has no information
// — the line falls outside the SHARDS sample, was evicted by the
// fixed-size bound, or has never been touched (the predictor
// cold-start case). The query is read-only: it advances no clocks and
// records no distances, so prediction consumers (the clean copy-back
// gate in internal/distill) can interleave it freely with Access.
//
//ldis:noalloc
func (e *Engine) CurrentLineDistanceBytes(line mem.LineAddr) (bytes float64, ok bool) {
	key := uint64(line)
	if e.sampled && splitmix64(key^e.cfg.Seed) >= e.threshold {
		return 0, false
	}
	idx := e.tab.find(key)
	if idx < 0 || e.tab.pos[idx] == 0 {
		return 0, false
	}
	p := int(e.tab.pos[idx])
	other := e.fwLine.prefix(e.now) - e.fwLine.prefix(p)
	return float64(other+1) * mem.LineSize * e.invR, true
}

// Refs returns the true number of references observed since the last
// ResetCounts.
func (e *Engine) Refs() float64 { return e.refs }

// TrackedRefs returns how many of those passed the sampling gate
// (equal to Refs for an exact engine).
func (e *Engine) TrackedRefs() float64 { return e.tracked }

// Curve is one miss-ratio curve: Points[i].X is a capacity in bytes,
// Points[i].Y the LRU miss ratio at that capacity. Fields are exported
// so curves survive the experiment checkpoint's gob round-trip.
type Curve struct {
	Name   string
	Points []stats.Point
	// ColdFrac is the compulsory-miss floor: the fraction of references
	// that were first touches (scaled under sampling).
	ColdFrac float64
	// Refs is the true reference count the ratios are over.
	Refs float64
}

// Series adapts the curve for stats rendering.
func (c Curve) Series() stats.Series {
	return stats.Series{Name: c.Name, Points: c.Points}
}

// MissRatioAt evaluates the curve at a capacity in bytes (step
// semantics, clamped to the curve's domain; NaN if empty).
func (c Curve) MissRatioAt(bytes float64) float64 {
	return c.Series().At(bytes)
}

// LineCurve returns the conventional line-grain curve accumulated
// since the last ResetCounts.
func (e *Engine) LineCurve(name string) Curve { return e.curve(name, e.histLine) }

// WordCurve returns the word-grain (distilled allocation cost) curve
// accumulated since the last ResetCounts.
func (e *Engine) WordCurve(name string) Curve { return e.curve(name, e.histWord) }

func (e *Engine) curve(name string, hist []float64) Curve {
	c := Curve{Name: name, Refs: e.refs}
	if e.refs == 0 {
		return c
	}
	c.ColdFrac = clampRatio(e.cold / e.refs)
	c.Points = make([]stats.Point, e.buckets)
	// MR(C_j) = (cold + distances beyond C_j) / true refs. The true-
	// reference denominator is the SHARDS expected-misses correction:
	// unsampled references are, in expectation, already accounted for
	// by the 1/R scaling of the numerator.
	beyond := e.cold + hist[e.buckets+1]
	for j := e.buckets; j >= 1; j-- {
		c.Points[j-1] = stats.Point{
			X: float64(j * e.cfg.ResolutionBytes),
			Y: clampRatio(beyond / e.refs),
		}
		beyond += hist[j]
	}
	return c
}

// clampRatio bounds a miss ratio to [0, 1]: SHARDS scaling is unbiased
// but individual estimates can overshoot slightly.
func clampRatio(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}
