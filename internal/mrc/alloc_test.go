package mrc

import (
	"testing"

	"ldis/internal/mem"
)

// TestAccessAllocs pins the //ldis:noalloc contract on the per-access
// hot path: once the line table and sample heap have reached steady
// state, Access performs zero heap allocations for both the exact and
// the sampled (fixed-rate + fixed-size) engines.
func TestAccessAllocs(t *testing.T) {
	const lines = 1024
	cases := []struct {
		name string
		cfg  Config
	}{
		{"exact", Config{}},
		{"fixed-rate", Config{SampleRate: 0.5, Seed: 7}},
		{"fixed-size", Config{SampleRate: 0.5, MaxSamples: 200, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := New(tc.cfg, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			// Warm: touch the whole working set so the table and heap
			// stop growing.
			for i := 0; i < lines; i++ {
				e.Access(mem.LineAddr(i), i&7)
			}
			x := uint64(1)
			avg := testing.AllocsPerRun(2000, func() {
				x = splitmix64(x)
				e.Access(mem.LineAddr(x%lines), int(x>>32)&7)
			})
			if avg != 0 {
				t.Errorf("%s: Access allocates %.2f times per call in steady state, want 0", tc.name, avg)
			}
		})
	}
}
