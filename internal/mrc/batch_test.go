package mrc

import (
	"reflect"
	"testing"

	"ldis/internal/mem"
	"ldis/internal/trace"
)

func batchRecords(n, lines int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		k := mem.Load
		switch {
		case i%11 == 0:
			k = mem.IFetch // must be skipped: the curves model data refs
		case i%5 == 0:
			k = mem.Store
		}
		recs[i] = trace.Record{Addr: mem.LineAddr(i % lines).WordAddr(i % 8), Kind: k, Instret: 1}
	}
	return recs
}

// AccessBatch must feed exactly the data records to the stack,
// skipping instruction fetches — the same filter the experiment driver
// applies one access at a time.
func TestAccessBatchMatchesScalar(t *testing.T) {
	recs := batchRecords(20_000, 2048)

	batched, err := New(Config{}, len(recs))
	if err != nil {
		t.Fatal(err)
	}
	batched.AccessBatch(recs)

	scalar, err := New(Config{}, len(recs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !recs[i].Kind.IsData() {
			continue
		}
		scalar.Access(recs[i].Line(), recs[i].Word())
	}

	if batched.Refs() != scalar.Refs() {
		t.Errorf("refs = %v, scalar %v", batched.Refs(), scalar.Refs())
	}
	if !reflect.DeepEqual(batched.LineCurve("b"), scalar.LineCurve("b")) {
		t.Error("line curves diverged")
	}
	if !reflect.DeepEqual(batched.WordCurve("b"), scalar.WordCurve("b")) {
		t.Error("word curves diverged")
	}
}

func TestAccessBatchZeroAllocs(t *testing.T) {
	recs := batchRecords(256, 1024)
	e, err := New(Config{}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	e.AccessBatch(recs) // steady state: line table fully grown
	if n := testing.AllocsPerRun(500, func() { e.AccessBatch(recs) }); n != 0 {
		t.Errorf("AccessBatch allocates %.1f/op", n)
	}
}
