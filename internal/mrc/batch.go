package mrc

import "ldis/internal/trace"

// AccessBatch feeds a record block to the engine: data records enter
// the Mattson stack, instruction fetches are skipped — the curves
// model the data reference stream, matching the experiment driver's
// per-access filter exactly.
//
//ldis:noalloc
func (e *Engine) AccessBatch(recs []trace.Record) {
	for i := range recs {
		if !recs[i].Kind.IsData() {
			continue
		}
		e.Access(recs[i].Line(), recs[i].Word())
	}
}
