package mrc

// fenwick is a binary indexed tree over logical access time, used as
// the order-statistic structure behind the Mattson stack: the weight at
// position t is the stack cost of the line most recently touched at
// time t (1 for line grain, allocated word slots for word grain), and
// prefix(b)-prefix(a) is the total cost of lines touched in (a, b] —
// i.e. the reuse distance contribution of everything above the reused
// line in the LRU stack. Both add and prefix are O(log n).
//
// Positions are 1-based; position 0 is reserved as "never touched".
type fenwick struct {
	tree []int32
}

func newFenwick(n int) fenwick {
	return fenwick{tree: make([]int32, n+1)}
}

// add adds d to the weight at position i (1-based).
//
//ldis:noalloc
func (f *fenwick) add(i int, d int32) {
	for ; i < len(f.tree); i += i & -i {
		f.tree[i] += d
	}
}

// prefix returns the sum of weights at positions 1..i.
//
//ldis:noalloc
func (f *fenwick) prefix(i int) int64 {
	var s int64
	for ; i > 0; i -= i & -i {
		s += int64(f.tree[i])
	}
	return s
}
