// Package trace defines the access-stream abstraction that connects
// workload generators to cache simulators, plus a compact binary codec
// for persisting traces to disk (cmd/tracegen) and reading them back.
//
// The paper drives its cache experiments with SPEC CPU2000 SimPoint
// traces; this package plays the corresponding role for our synthetic
// workloads: a Stream is anything that yields mem.Access records in
// program order.
package trace

import "ldis/internal/mem"

// Stream yields memory accesses in program order. Next reports ok=false
// when the stream is exhausted. Implementations are single-use; call the
// owning generator again for a fresh stream.
type Stream interface {
	Next() (mem.Access, bool)
}

// SliceStream adapts a slice of accesses to a Stream.
type SliceStream struct {
	accs []mem.Access
	pos  int
}

// NewSliceStream returns a Stream over accs.
func NewSliceStream(accs []mem.Access) *SliceStream {
	return &SliceStream{accs: accs}
}

// Next implements Stream.
func (s *SliceStream) Next() (mem.Access, bool) {
	if s.pos >= len(s.accs) {
		return mem.Access{}, false
	}
	a := s.accs[s.pos]
	s.pos++
	return a, true
}

// Collect drains up to limit accesses from a stream into a slice.
// limit <= 0 drains the whole stream.
func Collect(s Stream, limit int) []mem.Access {
	var out []mem.Access
	for limit <= 0 || len(out) < limit {
		a, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out
}

// Limit wraps a stream and truncates it after n accesses.
type Limit struct {
	inner Stream
	left  int
}

// NewLimit returns a stream yielding at most n accesses from inner.
func NewLimit(inner Stream, n int) *Limit {
	return &Limit{inner: inner, left: n}
}

// Next implements Stream.
func (l *Limit) Next() (mem.Access, bool) {
	if l.left <= 0 {
		return mem.Access{}, false
	}
	a, ok := l.inner.Next()
	if !ok {
		l.left = 0
		return mem.Access{}, false
	}
	l.left--
	return a, true
}

// Filter wraps a stream and yields only accesses for which keep returns
// true. Instret of dropped accesses is folded into the next surviving
// access so instruction counts (and therefore MPKI) are preserved.
type Filter struct {
	inner   Stream
	keep    func(mem.Access) bool
	carried uint32
}

// NewFilter returns the filtered stream.
func NewFilter(inner Stream, keep func(mem.Access) bool) *Filter {
	return &Filter{inner: inner, keep: keep}
}

// Next implements Stream.
func (f *Filter) Next() (mem.Access, bool) {
	for {
		a, ok := f.inner.Next()
		if !ok {
			return mem.Access{}, false
		}
		if f.keep(a) {
			a.Instret += f.carried
			f.carried = 0
			return a, true
		}
		f.carried += a.Instret
	}
}

// Interleave round-robins accesses from several streams, modelling
// independent reference streams sharing a cache. A stream that runs dry
// drops out of the rotation.
type Interleave struct {
	streams []Stream
	next    int
}

// NewInterleave returns the interleaved stream.
func NewInterleave(streams ...Stream) *Interleave {
	return &Interleave{streams: streams}
}

// Next implements Stream.
func (in *Interleave) Next() (mem.Access, bool) {
	for len(in.streams) > 0 {
		if in.next >= len(in.streams) {
			in.next = 0
		}
		a, ok := in.streams[in.next].Next()
		if ok {
			in.next++
			return a, true
		}
		in.streams = append(in.streams[:in.next], in.streams[in.next+1:]...)
	}
	return mem.Access{}, false
}

// CountInstructions sums the Instret fields of a trace slice: the total
// instruction count the trace represents.
func CountInstructions(accs []mem.Access) uint64 {
	var n uint64
	for _, a := range accs {
		n += uint64(a.Instret)
	}
	return n
}
