package trace

import (
	"bytes"
	"testing"
)

// TestBatchReaderMatchesRead: streaming block decode must reproduce
// the one-shot strict decode exactly, at any block size — including
// sizes that straddle record boundaries oddly.
func TestBatchReaderMatchesRead(t *testing.T) {
	data := encodeTrace(t, 100)
	want, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range []int{1, 3, 7, 64, 200} {
		br, err := NewBatchReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("block %d: %v", block, err)
		}
		if br.Count() != 100 {
			t.Fatalf("block %d: count = %d", block, br.Count())
		}
		var got []Record
		buf := make([]Record, block)
		for {
			n := br.NextBatch(buf)
			got = append(got, buf[:n]...)
			if n < len(buf) {
				break
			}
		}
		if br.Err() != nil {
			t.Fatalf("block %d: unexpected corruption: %v", block, br.Err())
		}
		if len(got) != len(want) {
			t.Fatalf("block %d: %d records, want %d", block, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("block %d: record %d = %+v, want %+v", block, i, got[i], want[i])
			}
		}
		// Exhausted reader keeps returning 0 without error.
		if n := br.NextBatch(buf); n != 0 || br.Err() != nil {
			t.Errorf("block %d: post-exhaustion NextBatch = %d, err %v", block, n, br.Err())
		}
	}
}

// TestBatchReaderScalarNext: the Stream compatibility shim yields the
// same sequence one record at a time.
func TestBatchReaderScalarNext(t *testing.T) {
	data := encodeTrace(t, 9)
	want, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBatchReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		rec, ok := br.Next()
		if !ok {
			t.Fatalf("stream dried up at record %d", i)
		}
		if rec != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want[i])
		}
	}
	if _, ok := br.Next(); ok {
		t.Error("Next yielded a record past the end")
	}
}

// TestBatchReaderTruncation: a truncated trace yields exactly the
// valid record prefix, then a positioned corruption error; further
// calls stay short without looping.
func TestBatchReaderTruncation(t *testing.T) {
	data := encodeTrace(t, 5)
	br, err := NewBatchReader(bytes.NewReader(data[:len(data)-recordSize-3]))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Record, 16)
	if n := br.NextBatch(buf); n != 3 {
		t.Fatalf("prefix = %d records, want 3", n)
	}
	ce := br.Err()
	if ce == nil || ce.Record != 3 {
		t.Fatalf("Err() = %v, want corruption at record 3", ce)
	}
	if n := br.NextBatch(buf); n != 0 {
		t.Errorf("NextBatch after corruption = %d", n)
	}
}

// TestBatchReaderInvalidKind: mid-trace garbage stops decoding at the
// corrupt record with its index in the error.
func TestBatchReaderInvalidKind(t *testing.T) {
	data := encodeTrace(t, 4)
	data[headerSize+2*recordSize+16] = 99 // record 2's kind byte
	br, err := NewBatchReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Record, 16)
	if n := br.NextBatch(buf); n != 2 {
		t.Fatalf("prefix = %d records, want 2", n)
	}
	if ce := br.Err(); ce == nil || ce.Record != 2 {
		t.Fatalf("Err() = %v, want corruption at record 2", ce)
	}
}

// TestBatchReaderHeaderErrors: header validation happens eagerly at
// construction, mirroring the one-shot decoder's checks.
func TestBatchReaderHeaderErrors(t *testing.T) {
	good := encodeTrace(t, 1)
	badMagic := append([]byte("NOPE"), good[4:]...)
	badVersion := append([]byte(nil), good...)
	badVersion[4] = 9
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"short-header", good[:5]},
		{"bad-magic", badMagic},
		{"bad-version", badVersion},
	} {
		if _, err := NewBatchReader(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
