package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ldis/internal/mem"
)

// encodeTrace is a test helper producing the canonical bytes of a
// small trace.
func encodeTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace(n)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeErrorPositions is the table-test mirror of the committed
// fuzz corpus: every malformed input must fail with a *CorruptError
// whose offset and record index identify the corruption, and lenient
// mode must return exactly the valid record prefix.
func TestDecodeErrorPositions(t *testing.T) {
	full := encodeTrace(t, 3)

	badKind := append([]byte(nil), full...)
	badKind[headerSize+recordSize+16] = 99 // corrupt record 1's kind byte

	overCount := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(overCount[8:16], 5) // announce 5, ship 3

	badVersion := append([]byte(nil), full...)
	binary.LittleEndian.PutUint16(badVersion[4:6], 9)

	hugeCount := append([]byte(nil), full[:headerSize]...)
	binary.LittleEndian.PutUint64(hugeCount[8:16], maxTraceLen+1)

	headerGarbage := append([]byte(nil), full[:headerSize]...)
	binary.LittleEndian.PutUint64(headerGarbage[8:16], 2)
	headerGarbage = append(headerGarbage, bytes.Repeat([]byte{0xff}, 2*recordSize)...)

	cases := []struct {
		name       string
		data       []byte
		wantRecord int64 // -1 = header
		wantOffset int64
		wantPrefix int // records recovered in lenient mode
	}{
		// The first five mirror the fuzz seed corpus entries.
		{"empty-trace", nil, -1, 0, 0},
		{"magic-only", []byte("LDTR"), -1, 0, 0},
		{"truncated-record", full[:len(full)-5], 2, headerSize + 2*recordSize, 2},
		{"header-then-garbage", headerGarbage, 0, headerSize, 0},
		{"bad-magic", []byte("NOPExxxxxxxxxxxxxxxx"), -1, 0, 0},
		// Further positional cases.
		{"truncated-mid-first-record", full[:headerSize+3], 0, headerSize, 0},
		{"count-exceeds-records", overCount, 3, headerSize + 3*recordSize, 3},
		{"unsupported-version", badVersion, -1, 4, 0},
		{"implausible-count", hugeCount, -1, 8, 0},
		{"invalid-kind-mid-trace", badKind, 1, headerSize + recordSize, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.data))
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("strict err = %v, want ErrBadTrace chain", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("strict err = %v, want *CorruptError", err)
			}
			if ce.Record != tc.wantRecord || ce.Offset != tc.wantOffset {
				t.Errorf("strict error at record %d offset %d, want record %d offset %d (%v)",
					ce.Record, ce.Offset, tc.wantRecord, tc.wantOffset, ce)
			}
			if !strings.Contains(ce.Error(), "offset") {
				t.Errorf("error message lacks offset context: %v", ce)
			}

			prefix, lerr := ReadLenient(bytes.NewReader(tc.data))
			if lerr == nil {
				t.Fatal("lenient decode of corrupt input reported no error")
			}
			if len(prefix) != tc.wantPrefix {
				t.Errorf("lenient prefix = %d records, want %d", len(prefix), tc.wantPrefix)
			}
			if lerr.Record != tc.wantRecord || lerr.Offset != tc.wantOffset {
				t.Errorf("lenient error = %v, want record %d offset %d", lerr, tc.wantRecord, tc.wantOffset)
			}
		})
	}
}

// TestReadLenientCleanTrace: a well-formed trace decodes identically
// in both modes with a nil lenient error.
func TestReadLenientCleanTrace(t *testing.T) {
	data := encodeTrace(t, 7)
	strict, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	lenient, lerr := ReadLenient(bytes.NewReader(data))
	if lerr != nil {
		t.Fatalf("lenient err = %v", lerr)
	}
	if len(strict) != 7 || len(lenient) != 7 {
		t.Fatalf("lengths: strict %d lenient %d", len(strict), len(lenient))
	}
	for i := range strict {
		if strict[i] != lenient[i] {
			t.Fatalf("record %d differs between modes", i)
		}
	}
}

// TestReadLenientPrefixMatchesOriginal: the recovered prefix of a
// truncated trace is bit-identical to the corresponding records of the
// original.
func TestReadLenientPrefixMatchesOriginal(t *testing.T) {
	accs := sampleTrace(10)
	var buf bytes.Buffer
	if err := Write(&buf, accs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := headerSize; cut < len(data); cut += recordSize/2 + 1 {
		prefix, lerr := ReadLenient(bytes.NewReader(data[:cut]))
		wantLen := (cut - headerSize) / recordSize
		if len(prefix) != wantLen {
			t.Fatalf("cut %d: prefix %d records, want %d (%v)", cut, len(prefix), wantLen, lerr)
		}
		for i := range prefix {
			if prefix[i] != accs[i] {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, prefix[i], accs[i])
			}
		}
		if wantLen < 10 && lerr == nil {
			t.Fatalf("cut %d: truncation not reported", cut)
		}
	}
}

// TestDecodeHostileCountAllocation: a header announcing 2^32 records
// must not preallocate for them.
func TestDecodeHostileCountAllocation(t *testing.T) {
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint16(hdr[4:6], formatVer)
	binary.LittleEndian.PutUint64(hdr[8:16], maxTraceLen) // largest admissible count
	allocs := testing.AllocsPerRun(3, func() {
		Read(bytes.NewReader(hdr)) //nolint:errcheck — allocation behavior under test
	})
	// A full preallocation would be gigabytes; the capped path stays
	// within a few small allocations (reader, slice, error).
	if allocs > 16 {
		t.Errorf("hostile header cost %.0f allocations", allocs)
	}
}

// TestDecodeFuzzCorpus replays the committed fuzz seed corpus through
// both decode modes: no input may panic, and every failure must be a
// positioned *CorruptError.
func TestDecodeFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzRead")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("fuzz corpus is empty")
	}
	for _, e := range entries {
		data, err := corpusBytes(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		t.Run(e.Name(), func(t *testing.T) {
			if _, err := Read(bytes.NewReader(data)); err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Errorf("strict error is not a *CorruptError: %v", err)
				}
			}
			prefix, lerr := ReadLenient(bytes.NewReader(data))
			if lerr != nil && len(prefix) > 0 && lerr.Record >= 0 &&
				int64(len(prefix)) != lerr.Record {
				t.Errorf("prefix length %d disagrees with corrupt record index %d", len(prefix), lerr.Record)
			}
		})
	}
}

// corpusBytes parses one `go test fuzz v1` seed file with a single
// []byte argument.
func corpusBytes(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)
	if len(lines) < 2 {
		return nil, nil // corpus entry with empty payload
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimPrefix(body, "[]byte(")
	body = strings.TrimSuffix(body, ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// TestLimitEdges covers the degenerate Limit configurations (satellite
// coverage): n = 0, negative n, and an inner stream that is exhausted
// before the limit.
func TestLimitEdges(t *testing.T) {
	if _, ok := NewLimit(NewSliceStream(sampleTrace(5)), 0).Next(); ok {
		t.Error("n=0 limit yielded an access")
	}
	if _, ok := NewLimit(NewSliceStream(sampleTrace(5)), -3).Next(); ok {
		t.Error("negative limit yielded an access")
	}
	// Exhausted inner stream: Next stays false and the limiter latches
	// closed even if the inner stream were to revive.
	l := NewLimit(NewSliceStream(sampleTrace(2)), 10)
	if n := len(Collect(l, 0)); n != 2 {
		t.Fatalf("drained %d accesses", n)
	}
	for i := 0; i < 3; i++ {
		if _, ok := l.Next(); ok {
			t.Fatal("exhausted limit stream yielded an access")
		}
	}
	// A limit over an already-empty stream.
	if _, ok := NewLimit(NewSliceStream(nil), 4).Next(); ok {
		t.Error("limit over empty stream yielded an access")
	}
}

// TestInterleaveZeroAndDropout: zero streams yield nothing; a stream
// that runs dry mid-rotation drops out without disturbing the order of
// the survivors.
func TestInterleaveZeroAndDropout(t *testing.T) {
	if _, ok := NewInterleave().Next(); ok {
		t.Error("zero-stream interleave yielded an access")
	}
	a := NewSliceStream([]mem.Access{{Addr: 1}})
	b := NewSliceStream([]mem.Access{{Addr: 10}, {Addr: 20}, {Addr: 30}})
	c := NewSliceStream(nil) // dry from the start
	out := Collect(NewInterleave(a, c, b), 0)
	want := []mem.Addr{1, 10, 20, 30}
	if len(out) != len(want) {
		t.Fatalf("yielded %d accesses, want %d", len(out), len(want))
	}
	for i, w := range want {
		if out[i].Addr != w {
			t.Errorf("pos %d: addr %d, want %d", i, out[i].Addr, w)
		}
	}
}

// TestInterleaveDeterministicOrder: interleaving is a pure function of
// construction order — the same streams in the same order always yield
// the same sequence, and a permuted construction order yields exactly
// the corresponding permuted rotation (not an arbitrary schedule).
func TestInterleaveDeterministicOrder(t *testing.T) {
	mk := func() (Stream, Stream) {
		return NewSliceStream([]mem.Access{{Addr: 1}, {Addr: 2}}),
			NewSliceStream([]mem.Access{{Addr: 10}, {Addr: 20}})
	}
	a1, b1 := mk()
	a2, b2 := mk()
	first := Collect(NewInterleave(a1, b1), 0)
	second := Collect(NewInterleave(a2, b2), 0)
	if len(first) != len(second) {
		t.Fatal("same construction produced different lengths")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("pos %d differs for identical construction", i)
		}
	}
	a3, b3 := mk()
	swapped := Collect(NewInterleave(b3, a3), 0)
	want := []mem.Addr{10, 1, 20, 2}
	for i, w := range want {
		if swapped[i].Addr != w {
			t.Errorf("swapped pos %d: addr %d, want %d", i, swapped[i].Addr, w)
		}
	}
}
