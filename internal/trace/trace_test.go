package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ldis/internal/mem"
)

func sampleTrace(n int) []mem.Access {
	accs := make([]mem.Access, n)
	for i := range accs {
		k := mem.Load
		if i%3 == 1 {
			k = mem.Store
		} else if i%7 == 2 {
			k = mem.IFetch
		}
		accs[i] = mem.Access{
			Addr:    mem.Addr(i * 24),
			PC:      mem.Addr(0x400000 + i*4),
			Kind:    k,
			Instret: uint32(i % 5),
		}
	}
	return accs
}

func TestSliceStream(t *testing.T) {
	accs := sampleTrace(5)
	s := NewSliceStream(accs)
	got := Collect(s, 0)
	if len(got) != 5 {
		t.Fatalf("Collect returned %d accesses", len(got))
	}
	for i := range got {
		if got[i] != accs[i] {
			t.Errorf("access %d: %v != %v", i, got[i], accs[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted stream should report !ok")
	}
}

func TestCollectLimit(t *testing.T) {
	got := Collect(NewSliceStream(sampleTrace(10)), 3)
	if len(got) != 3 {
		t.Errorf("Collect limited returned %d", len(got))
	}
}

func TestLimit(t *testing.T) {
	l := NewLimit(NewSliceStream(sampleTrace(10)), 4)
	if n := len(Collect(l, 0)); n != 4 {
		t.Errorf("Limit yielded %d accesses", n)
	}
	// Limit larger than the stream just drains it.
	l2 := NewLimit(NewSliceStream(sampleTrace(2)), 100)
	if n := len(Collect(l2, 0)); n != 2 {
		t.Errorf("oversize Limit yielded %d", n)
	}
}

func TestFilterPreservesInstret(t *testing.T) {
	accs := []mem.Access{
		{Addr: 0, Kind: mem.IFetch, Instret: 3},
		{Addr: 64, Kind: mem.Load, Instret: 2},
		{Addr: 128, Kind: mem.IFetch, Instret: 5},
		{Addr: 192, Kind: mem.Store, Instret: 1},
	}
	f := NewFilter(NewSliceStream(accs), func(a mem.Access) bool { return a.Kind.IsData() })
	out := Collect(f, 0)
	if len(out) != 2 {
		t.Fatalf("Filter kept %d accesses", len(out))
	}
	if out[0].Instret != 5 { // 3 (dropped) + 2
		t.Errorf("first Instret = %d, want 5", out[0].Instret)
	}
	if out[1].Instret != 6 { // 5 (dropped) + 1
		t.Errorf("second Instret = %d, want 6", out[1].Instret)
	}
	total := CountInstructions(accs)
	if got := CountInstructions(out); got != total {
		t.Errorf("instructions not preserved: %d != %d", got, total)
	}
}

func TestInterleave(t *testing.T) {
	a := NewSliceStream([]mem.Access{{Addr: 1}, {Addr: 2}})
	b := NewSliceStream([]mem.Access{{Addr: 10}, {Addr: 20}, {Addr: 30}})
	out := Collect(NewInterleave(a, b), 0)
	want := []mem.Addr{1, 10, 2, 20, 30}
	if len(out) != len(want) {
		t.Fatalf("Interleave yielded %d accesses, want %d", len(out), len(want))
	}
	for i, w := range want {
		if out[i].Addr != w {
			t.Errorf("pos %d: addr %d, want %d", i, out[i].Addr, w)
		}
	}
}

func TestInterleaveEmpty(t *testing.T) {
	if out := Collect(NewInterleave(), 0); len(out) != 0 {
		t.Error("empty interleave should yield nothing")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	accs := sampleTrace(100)
	var buf bytes.Buffer
	if err := Write(&buf, accs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(accs) {
		t.Fatalf("round trip length %d != %d", len(got), len(accs))
	}
	for i := range got {
		if got[i] != accs[i] {
			t.Fatalf("record %d: %v != %v", i, got[i], accs[i])
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatalf("Write empty: %v", err)
	}
	got, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("Read empty = %v, %v", got, err)
	}
}

func TestCodecRejectsBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("NOPExxxxxxxxxxxxxxxx")
	if _, err := Read(buf); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad magic error = %v", err)
	}
}

func TestCodecRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace(3)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); !errors.Is(err, ErrBadTrace) {
		t.Errorf("truncated error = %v", err)
	}
}

func TestCodecRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace(1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[headerSize+16] = 99 // corrupt kind byte
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad kind error = %v", err)
	}
}

// Property: encode/decode is the identity on arbitrary traces.
func TestCodecProperty(t *testing.T) {
	f := func(raw []struct {
		Addr, PC uint64
		Kind     uint8
		Instret  uint32
	}) bool {
		accs := make([]mem.Access, len(raw))
		for i, r := range raw {
			accs[i] = mem.Access{
				Addr:    mem.Addr(r.Addr),
				PC:      mem.Addr(r.PC),
				Kind:    mem.AccessKind(r.Kind % 3),
				Instret: r.Instret,
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, accs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(accs) {
			return false
		}
		for i := range got {
			if got[i] != accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
