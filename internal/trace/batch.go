package trace

import "ldis/internal/mem"

// Record is one trace record: an alias of mem.Access so batch buffers
// ([]trace.Record) interoperate with every existing API that speaks
// mem.Access without conversion.
type Record = mem.Access

// DefaultBatchSize is the record-block size the batched pipeline uses
// when the caller does not pick one. 4096 records (96kB) amortizes the
// per-block interface call while staying comfortably inside L2.
const DefaultBatchSize = 4096

// BatchStream is the bulk counterpart of Stream: NextBatch fills dst
// with the next records in program order and returns how many were
// written. A short (or zero) count means the stream is exhausted.
// Filling a fixed-size block once per batch replaces one interface
// call per access with one per block, which is what makes the
// simulator's batched hot path worth having.
type BatchStream interface {
	NextBatch(dst []Record) int
}

// Batched adapts any Stream to a BatchStream. Streams that already
// implement BatchStream (SliceStream, the workload generator, the
// codec's BatchReader) are returned unchanged so their native bulk
// paths are used; everything else is wrapped in a loop over Next.
func Batched(s Stream) BatchStream {
	if bs, ok := s.(BatchStream); ok {
		return bs
	}
	return &streamBatcher{s: s}
}

// streamBatcher lifts a scalar Stream into a BatchStream.
type streamBatcher struct{ s Stream }

// NextBatch implements BatchStream.
func (b *streamBatcher) NextBatch(dst []Record) int {
	for i := range dst {
		a, ok := b.s.Next()
		if !ok {
			return i
		}
		dst[i] = a
	}
	return len(dst)
}

// NextBatch implements BatchStream natively: one copy per block.
//
//ldis:noalloc
func (s *SliceStream) NextBatch(dst []Record) int {
	n := copy(dst, s.accs[s.pos:])
	s.pos += n
	return n
}
