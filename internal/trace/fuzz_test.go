package trace

import (
	"bytes"
	"testing"

	"ldis/internal/mem"
)

// FuzzRead ensures arbitrary bytes never panic the decoder: it must
// return either a valid trace or an error.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, []mem.Access{{Addr: 64, PC: 4, Kind: mem.Store, Instret: 3}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("LDTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		accs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must round-trip.
		var buf bytes.Buffer
		if err := Write(&buf, accs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil || len(back) != len(accs) {
			t.Fatalf("round trip broke: %v (%d vs %d)", err, len(back), len(accs))
		}
	})
}
