package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ldis/internal/mem"
)

// Binary trace format: a fixed header followed by fixed-size records.
// Values are little-endian. The format is intentionally simple — the
// traces are synthetic and regenerable, so there is no compression.
//
//	header: magic "LDTR" | version u16 | reserved u16 | count u64
//	record: addr u64 | pc u64 | kind u8 | pad u8[3] | instret u32
const (
	magic        = "LDTR"
	formatVer    = 1
	headerSize   = 4 + 2 + 2 + 8
	recordSize   = 8 + 8 + 1 + 3 + 4
	maxTraceLen  = 1 << 32 // sanity bound when reading
	kindMaxValid = uint8(mem.IFetch)
)

// ErrBadTrace is wrapped by all decode errors.
var ErrBadTrace = errors.New("trace: malformed trace")

// Write encodes accs to w in the binary trace format.
func Write(w io.Writer, accs []mem.Access) error {
	bw := bufio.NewWriter(w)
	var hdr [headerSize]byte
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], formatVer)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(accs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for _, a := range accs {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(a.Addr))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(a.PC))
		rec[16] = uint8(a.Kind)
		rec[17], rec[18], rec[19] = 0, 0, 0
		binary.LittleEndian.PutUint32(rec[20:24], a.Instret)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a full trace from r.
func Read(r io.Reader) ([]mem.Access, error) {
	br := bufio.NewReader(r)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadTrace, err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != formatVer {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if count > maxTraceLen {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadTrace, count)
	}
	accs := make([]mem.Access, 0, count)
	var rec [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadTrace, i, err)
		}
		kind := rec[16]
		if kind > kindMaxValid {
			return nil, fmt.Errorf("%w: record %d has invalid kind %d", ErrBadTrace, i, kind)
		}
		accs = append(accs, mem.Access{
			Addr:    mem.Addr(binary.LittleEndian.Uint64(rec[0:8])),
			PC:      mem.Addr(binary.LittleEndian.Uint64(rec[8:16])),
			Kind:    mem.AccessKind(kind),
			Instret: binary.LittleEndian.Uint32(rec[20:24]),
		})
	}
	return accs, nil
}
