package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ldis/internal/mem"
)

// Binary trace format: a fixed header followed by fixed-size records.
// Values are little-endian. The format is intentionally simple — the
// traces are synthetic and regenerable, so there is no compression.
//
//	header: magic "LDTR" | version u16 | reserved u16 | count u64
//	record: addr u64 | pc u64 | kind u8 | pad u8[3] | instret u32
const (
	magic        = "LDTR"
	formatVer    = 1
	headerSize   = 4 + 2 + 2 + 8
	recordSize   = 8 + 8 + 1 + 3 + 4
	maxTraceLen  = 1 << 32 // sanity bound when reading
	kindMaxValid = uint8(mem.IFetch)

	// maxPrealloc caps the records preallocated from the header's
	// count field: a corrupt or hostile header must not translate
	// into a multi-gigabyte allocation before the first record is
	// even read. The slice grows normally past this.
	maxPrealloc = 1 << 16
)

// ErrBadTrace is wrapped by all decode errors.
var ErrBadTrace = errors.New("trace: malformed trace")

// CorruptError is the typed error every decode failure resolves to: it
// pins the corruption to a byte offset and record index so a truncated
// or bit-flipped trace can be reported (and, in lenient mode, skipped)
// precisely. It wraps ErrBadTrace, so errors.Is(err, ErrBadTrace)
// continues to hold.
type CorruptError struct {
	// Offset is the byte offset of the start of the corrupt region
	// (the record's first byte, or 0 for a corrupt header).
	Offset int64
	// Record is the index of the offending record, -1 when the header
	// itself is corrupt.
	Record int64
	// Reason describes the corruption.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Record < 0 {
		return fmt.Sprintf("trace: malformed trace: header at offset %d: %s", e.Offset, e.Reason)
	}
	return fmt.Sprintf("trace: malformed trace: record %d at offset %d: %s", e.Record, e.Offset, e.Reason)
}

// Unwrap ties CorruptError into the ErrBadTrace error chain.
func (e *CorruptError) Unwrap() error { return ErrBadTrace }

// corruptHeader builds a header-level CorruptError.
func corruptHeader(off int64, format string, args ...any) *CorruptError {
	return &CorruptError{Offset: off, Record: -1, Reason: fmt.Sprintf(format, args...)}
}

// corruptRecord builds a record-level CorruptError; the offset is the
// record's first byte.
func corruptRecord(i uint64, format string, args ...any) *CorruptError {
	return &CorruptError{
		Offset: int64(headerSize) + int64(i)*recordSize,
		Record: int64(i),
		Reason: fmt.Sprintf(format, args...),
	}
}

// Write encodes accs to w in the binary trace format.
func Write(w io.Writer, accs []mem.Access) error {
	bw := bufio.NewWriter(w)
	var hdr [headerSize]byte
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], formatVer)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(accs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for _, a := range accs {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(a.Addr))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(a.PC))
		rec[16] = uint8(a.Kind)
		rec[17], rec[18], rec[19] = 0, 0, 0
		binary.LittleEndian.PutUint32(rec[20:24], a.Instret)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a full trace from r in strict mode: the first corrupt
// byte fails the whole decode. The returned error is a *CorruptError
// carrying the byte offset and record index of the corruption.
func Read(r io.Reader) ([]mem.Access, error) {
	accs, err := decode(r)
	if err != nil {
		return nil, err
	}
	return accs, nil
}

// ReadLenient decodes as much of a trace as is intact: it returns the
// valid record prefix together with a *CorruptError describing the
// first corruption (nil when the trace decodes cleanly). A corrupt
// header yields an empty prefix — there is no trustworthy data before
// it.
func ReadLenient(r io.Reader) ([]mem.Access, *CorruptError) {
	accs, err := decode(r)
	if err == nil {
		return accs, nil
	}
	// decode only ever fails with a *CorruptError.
	return accs, err.(*CorruptError)
}

// BatchReader decodes a trace incrementally, one record block at a
// time, so CLIs can feed the batched simulation pipeline without
// materializing the whole trace first. It implements BatchStream.
type BatchReader struct {
	br    *bufio.Reader
	count uint64 // records promised by the header
	read  uint64 // records decoded so far
	err   *CorruptError
}

// NewBatchReader reads and validates the trace header of r. Record
// decoding happens lazily in NextBatch.
func NewBatchReader(r io.Reader) (*BatchReader, error) {
	br := bufio.NewReader(r)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, corruptHeader(0, "reading header: %v", err)
	}
	if string(hdr[:4]) != magic {
		return nil, corruptHeader(0, "bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != formatVer {
		return nil, corruptHeader(4, "unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if count > maxTraceLen {
		return nil, corruptHeader(8, "implausible record count %d", count)
	}
	return &BatchReader{br: br, count: count}, nil
}

// Count returns the record count promised by the trace header.
func (r *BatchReader) Count() uint64 { return r.count }

// Err returns the corruption encountered mid-stream, if any; it is set
// once NextBatch has returned a short count because of corruption
// (rather than clean exhaustion).
func (r *BatchReader) Err() *CorruptError { return r.err }

// Next decodes a single record, satisfying Stream so scalar consumers
// can replay a file directly; batch consumers reach the block path via
// Batched, which detects the NextBatch method.
func (r *BatchReader) Next() (Record, bool) {
	var one [1]Record
	if r.NextBatch(one[:]) == 0 {
		return Record{}, false
	}
	return one[0], true
}

// NextBatch implements BatchStream: it decodes up to len(dst) records.
// A short count means exhaustion or corruption; Err distinguishes.
func (r *BatchReader) NextBatch(dst []Record) int {
	var rec [recordSize]byte
	for i := range dst {
		if r.err != nil || r.read >= r.count {
			return i
		}
		if _, err := io.ReadFull(r.br, rec[:]); err != nil {
			r.err = corruptRecord(r.read, "truncated (%d of %d records present): %v", r.read, r.count, err)
			return i
		}
		kind := rec[16]
		if kind > kindMaxValid {
			r.err = corruptRecord(r.read, "invalid kind %d", kind)
			return i
		}
		dst[i] = mem.Access{
			Addr:    mem.Addr(binary.LittleEndian.Uint64(rec[0:8])),
			PC:      mem.Addr(binary.LittleEndian.Uint64(rec[8:16])),
			Kind:    mem.AccessKind(kind),
			Instret: binary.LittleEndian.Uint32(rec[20:24]),
		}
		r.read++
	}
	return len(dst)
}

// decode reads the header and as many valid records as it can. On
// corruption it returns the valid prefix plus a *CorruptError; strict
// and lenient callers differ only in whether they keep the prefix.
func decode(r io.Reader) ([]mem.Access, error) {
	br := bufio.NewReader(r)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, corruptHeader(0, "reading header: %v", err)
	}
	if string(hdr[:4]) != magic {
		return nil, corruptHeader(0, "bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != formatVer {
		return nil, corruptHeader(4, "unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if count > maxTraceLen {
		return nil, corruptHeader(8, "implausible record count %d", count)
	}
	prealloc := count
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	accs := make([]mem.Access, 0, prealloc)
	var rec [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return accs, corruptRecord(i, "truncated (%d of %d records present): %v", i, count, err)
		}
		kind := rec[16]
		if kind > kindMaxValid {
			return accs, corruptRecord(i, "invalid kind %d", kind)
		}
		accs = append(accs, mem.Access{
			Addr:    mem.Addr(binary.LittleEndian.Uint64(rec[0:8])),
			PC:      mem.Addr(binary.LittleEndian.Uint64(rec[8:16])),
			Kind:    mem.AccessKind(kind),
			Instret: binary.LittleEndian.Uint32(rec[20:24]),
		})
	}
	return accs, nil
}
