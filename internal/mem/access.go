package mem

import "fmt"

// AccessKind distinguishes the kinds of memory references the simulated
// processor issues. Instruction fetches are kept separate because the
// paper performs distillation only for data lines (Section 4).
type AccessKind uint8

const (
	// Load is a data read.
	Load AccessKind = iota
	// Store is a data write.
	Store
	// IFetch is an instruction fetch.
	IFetch
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case IFetch:
		return "ifetch"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// IsData reports whether the access touches the data hierarchy.
func (k AccessKind) IsData() bool { return k == Load || k == Store }

// Access is one memory reference in a trace. Size is implicit: accesses
// touch a single word (the paper's maximum Alpha access is 8B, the word
// size, and footprints are tracked per word).
//
// PC is the address of the instruction issuing the access; only its low
// bits matter (it indexes the SFP baseline's predictor). Instret is the
// number of instructions retired since the previous access, which lets
// trace-driven runs compute MPKI and lets the timing model charge
// non-memory work between references.
type Access struct {
	Addr    Addr
	PC      Addr
	Kind    AccessKind
	Instret uint32
}

// Line returns the cache line the access falls in.
func (a Access) Line() LineAddr { return LineOf(a.Addr) }

// Word returns the word index (0..7) within the line.
func (a Access) Word() int { return WordOf(a.Addr) }

// IsWrite reports whether the access modifies memory.
func (a Access) IsWrite() bool { return a.Kind == Store }

// String implements fmt.Stringer.
func (a Access) String() string {
	return fmt.Sprintf("%s %#x (pc %#x, +%d inst)", a.Kind, uint64(a.Addr), uint64(a.PC), a.Instret)
}
