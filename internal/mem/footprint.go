package mem

import (
	"math/bits"
	"strings"
)

// Footprint is the per-line bit-vector the paper associates with every
// cache line (Section 3): bit w is set once word w has been accessed.
// With 8 words per line it fits in one byte, exactly as in the paper's
// storage accounting (Table 3).
type Footprint uint8

// FullFootprint has every word marked used.
const FullFootprint Footprint = 1<<WordsPerLine - 1

// FootprintOfWord returns a footprint with only word w (0..7) set.
func FootprintOfWord(w int) Footprint { return 1 << uint(w) }

// Has reports whether word w is marked used.
func (f Footprint) Has(w int) bool { return f&(1<<uint(w)) != 0 }

// Set returns the footprint with word w marked used.
func (f Footprint) Set(w int) Footprint { return f | 1<<uint(w) }

// Or merges two footprints, as the LOC does with footprints arriving
// from L1D evictions (Section 4.1).
func (f Footprint) Or(g Footprint) Footprint { return f | g }

// Count returns the number of used words (the paper's "words used").
func (f Footprint) Count() int { return bits.OnesCount8(uint8(f)) }

// Words returns the indices of the used words in ascending order.
func (f Footprint) Words() []int {
	if f == 0 {
		return nil
	}
	return f.AppendWords(make([]int, 0, f.Count()))
}

// AppendWords appends the indices of the used words, in ascending
// order, to buf and returns the extended slice. Passing a scratch
// buffer with capacity WordsPerLine makes the call allocation-free;
// simulation hot paths use this instead of Words.
//
//ldis:noalloc
func (f Footprint) AppendWords(buf []int) []int {
	for w := 0; w < WordsPerLine; w++ {
		if f.Has(w) {
			buf = append(buf, w)
		}
	}
	return buf
}

// String renders the footprint as a bit pattern, word 0 first, e.g.
// "10000001" for a line whose first and last words were used.
func (f Footprint) String() string {
	var b strings.Builder
	for w := 0; w < WordsPerLine; w++ {
		if f.Has(w) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Pow2WordsFor returns the WOC allocation size (1, 2, 4, or 8 word
// slots) for a line with n used words. The distill cache only installs
// power-of-two sized, aligned groups (Section 5.1), so the used-word
// count is rounded up.
func Pow2WordsFor(n int) int {
	switch {
	case n <= 1:
		return 1
	case n <= 2:
		return 2
	case n <= 4:
		return 4
	default:
		return 8
	}
}
