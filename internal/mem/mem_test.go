package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAndWordOf(t *testing.T) {
	tests := []struct {
		addr Addr
		line LineAddr
		word int
	}{
		{0, 0, 0},
		{7, 0, 0},
		{8, 0, 1},
		{63, 0, 7},
		{64, 1, 0},
		{64 + 17, 1, 2},
		{0xfffffffff8, 0x3ffffffff, 7},
	}
	for _, tt := range tests {
		if got := LineOf(tt.addr); got != tt.line {
			t.Errorf("LineOf(%#x) = %v, want %v", uint64(tt.addr), got, tt.line)
		}
		if got := WordOf(tt.addr); got != tt.word {
			t.Errorf("WordOf(%#x) = %d, want %d", uint64(tt.addr), got, tt.word)
		}
	}
}

func TestLineOfMasksTo40Bits(t *testing.T) {
	a := Addr(1)<<50 | 0x1234<<LineShift
	if got, want := LineOf(a), LineAddr(0x1234); got != want {
		t.Errorf("LineOf(%#x) = %v, want %v (40-bit masking)", uint64(a), got, want)
	}
}

func TestWordAddrRoundTrip(t *testing.T) {
	l := LineAddr(0xabcde)
	for w := 0; w < WordsPerLine; w++ {
		a := l.WordAddr(w)
		if LineOf(a) != l {
			t.Fatalf("word %d: LineOf(WordAddr) = %v, want %v", w, LineOf(a), l)
		}
		if WordOf(a) != w {
			t.Fatalf("WordOf(WordAddr(%d)) = %d", w, WordOf(a))
		}
	}
}

func TestSetIndexAndTag(t *testing.T) {
	const sets = 2048
	l := LineAddr(0x12345)
	idx := l.SetIndex(sets)
	tag := l.Tag(sets)
	if idx != 0x345 {
		t.Errorf("SetIndex = %#x, want 0x345", idx)
	}
	if tag != 0x12345>>11 {
		t.Errorf("Tag = %#x, want %#x", tag, 0x12345>>11)
	}
	// (tag, index) must reconstruct the line address.
	if back := LineAddr(tag<<11 | uint64(idx)); back != l {
		t.Errorf("reconstructed %v, want %v", back, l)
	}
}

func TestSetIndexTagUniqueness(t *testing.T) {
	// Two lines with the same index but different tags must differ in tag.
	const sets = 64
	a, b := LineAddr(5), LineAddr(5+sets)
	if a.SetIndex(sets) != b.SetIndex(sets) {
		t.Fatal("lines should map to the same set")
	}
	if a.Tag(sets) == b.Tag(sets) {
		t.Fatal("distinct lines in one set must have distinct tags")
	}
}

func TestFootprintBasics(t *testing.T) {
	var f Footprint
	if f.Count() != 0 {
		t.Fatalf("zero footprint Count = %d", f.Count())
	}
	f = f.Set(0).Set(7)
	if !f.Has(0) || !f.Has(7) || f.Has(3) {
		t.Errorf("Has wrong after Set: %v", f)
	}
	if f.Count() != 2 {
		t.Errorf("Count = %d, want 2", f.Count())
	}
	if got := f.String(); got != "10000001" {
		t.Errorf("String = %q, want 10000001", got)
	}
	if ws := f.Words(); len(ws) != 2 || ws[0] != 0 || ws[1] != 7 {
		t.Errorf("Words = %v", ws)
	}
	if FullFootprint.Count() != WordsPerLine {
		t.Errorf("FullFootprint.Count = %d", FullFootprint.Count())
	}
}

func TestFootprintOr(t *testing.T) {
	a := FootprintOfWord(1)
	b := FootprintOfWord(6)
	if got := a.Or(b); got.Count() != 2 || !got.Has(1) || !got.Has(6) {
		t.Errorf("Or = %v", got)
	}
}

func TestPow2WordsFor(t *testing.T) {
	want := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 6: 8, 7: 8, 8: 8}
	for n, p := range want {
		if got := Pow2WordsFor(n); got != p {
			t.Errorf("Pow2WordsFor(%d) = %d, want %d", n, got, p)
		}
	}
}

func TestAccessHelpers(t *testing.T) {
	a := Access{Addr: 64 + 8*3 + 2, PC: 0x400, Kind: Store, Instret: 4}
	if a.Line() != 1 || a.Word() != 3 {
		t.Errorf("Line/Word = %v/%d", a.Line(), a.Word())
	}
	if !a.IsWrite() {
		t.Error("store should be a write")
	}
	if Load.IsData() != true || Store.IsData() != true || IFetch.IsData() != false {
		t.Error("IsData classification wrong")
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || IFetch.String() != "ifetch" {
		t.Error("AccessKind.String wrong")
	}
	if AccessKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

// Property: footprint Count always equals the length of Words, and every
// index returned by Words satisfies Has.
func TestFootprintWordsProperty(t *testing.T) {
	f := func(raw uint8) bool {
		fp := Footprint(raw)
		ws := fp.Words()
		if len(ws) != fp.Count() {
			return false
		}
		for _, w := range ws {
			if !fp.Has(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for any address, line base + word offset recovers an address
// within the same line and word.
func TestAddrDecomposition(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw) & AddrMask
		l, w := LineOf(a), WordOf(a)
		wa := l.WordAddr(w)
		return LineOf(wa) == l && WordOf(wa) == w && wa <= a && a-wa < WordSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Pow2WordsFor(n) is a power of two, ≥ n for n in 1..8.
func TestPow2Property(t *testing.T) {
	for n := 1; n <= 8; n++ {
		p := Pow2WordsFor(n)
		if p < n || p&(p-1) != 0 {
			t.Errorf("Pow2WordsFor(%d) = %d not a covering power of two", n, p)
		}
	}
}
