// Package mem defines the basic memory vocabulary shared by every
// component of the simulator: physical addresses, cache-line and word
// indexing, access records, and per-line footprint bit-vectors.
//
// The conventions follow the paper's baseline (Section 2 and Table 1):
// a 40-bit physical address space, 64-byte cache lines, and 8-byte words,
// so every line holds eight words and a footprint fits in one byte.
package mem

import "fmt"

// Addr is a physical byte address. The paper assumes a 40-bit physical
// address space; we keep addresses in a uint64 and mask where it matters.
type Addr uint64

// Architectural constants for the baseline configuration.
const (
	// PhysAddrBits is the size of the physical address space.
	PhysAddrBits = 40

	// LineSize is the cache line size in bytes.
	LineSize = 64

	// WordSize is the word granularity used for footprint tracking. The
	// paper uses 8B because the largest Alpha memory access is 8 bytes.
	WordSize = 8

	// WordsPerLine is the number of footprint-tracked words in a line.
	WordsPerLine = LineSize / WordSize

	// LineShift is log2(LineSize).
	LineShift = 6

	// WordShift is log2(WordSize).
	WordShift = 3
)

// AddrMask keeps addresses inside the 40-bit physical space.
const AddrMask = Addr(1)<<PhysAddrBits - 1

// LineAddr identifies a cache line: the address with the line offset
// stripped (i.e. byte address >> LineShift).
type LineAddr uint64

// LineOf returns the line containing the byte address.
func LineOf(a Addr) LineAddr { return LineAddr(a&AddrMask) >> LineShift }

// WordOf returns the index (0..7) of the word within its line that the
// byte address falls in.
func WordOf(a Addr) int { return int(a>>WordShift) & (WordsPerLine - 1) }

// Base returns the byte address of the first byte of the line.
func (l LineAddr) Base() Addr { return Addr(l) << LineShift }

// WordAddr returns the byte address of word w (0..7) of the line.
func (l LineAddr) WordAddr(w int) Addr { return l.Base() + Addr(w)<<WordShift }

// String renders the line address as its base byte address in hex.
func (l LineAddr) String() string { return fmt.Sprintf("line:%#x", uint64(l.Base())) }

// SetIndex computes the set index for a cache with numSets sets (a power
// of two) indexed by low line-address bits, as in the baseline L2.
func (l LineAddr) SetIndex(numSets int) int { return int(uint64(l) & uint64(numSets-1)) }

// Tag returns the tag bits for a cache with numSets sets.
func (l LineAddr) Tag(numSets int) uint64 {
	shift := 0
	for n := numSets; n > 1; n >>= 1 {
		shift++
	}
	return uint64(l) >> shift
}
