package sfp

import (
	"reflect"
	"testing"

	"ldis/internal/mem"
	"ldis/internal/trace"
)

func batchRecords(n, lines int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		k := mem.Load
		if i%5 == 0 {
			k = mem.Store
		}
		recs[i] = trace.Record{
			Addr: mem.LineAddr(i % lines).WordAddr(i % 8), Kind: k, Instret: 1,
			PC: mem.Addr(0x400 + 4*(i%97)),
		}
	}
	return recs
}

func TestAccessBatchMatchesScalar(t *testing.T) {
	cfg := Config{Name: "s", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8,
		PredictorEntries: 256, TagsPerSet: 22, Seed: 3}
	recs := batchRecords(10_000, 1024)

	batched := New(cfg)
	gotHits := batched.AccessBatch(recs)

	scalar := New(cfg)
	wantHits := 0
	for i := range recs {
		if hit, _ := scalar.Access(recs[i].Line(), recs[i].Word(), recs[i].PC, recs[i].IsWrite()); hit {
			wantHits++
		}
	}
	if gotHits != wantHits {
		t.Errorf("AccessBatch hits = %d, scalar loop %d", gotHits, wantHits)
	}
	if !reflect.DeepEqual(batched.Stats(), scalar.Stats()) {
		t.Errorf("stats diverged")
	}
}

func TestAccessBatchZeroAllocs(t *testing.T) {
	c := New(Config{Name: "s", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8,
		PredictorEntries: 256, TagsPerSet: 22, Seed: 3})
	recs := batchRecords(256, 1024)
	c.AccessBatch(recs) // steady state: meta tables at capacity
	if n := testing.AllocsPerRun(500, func() { c.AccessBatch(recs) }); n != 0 {
		t.Errorf("AccessBatch allocates %.1f/op", n)
	}
}
