package sfp

import "ldis/internal/trace"

// AccessBatch drives a record block through the SFP cache as a
// standalone L2, using each record's PC for the footprint predictor.
// Instruction fetches are ordinary lines here — SFP predicts on the
// fetch PC either way. It returns the number of hits.
//
//ldis:noalloc
func (c *Cache) AccessBatch(recs []trace.Record) (hits int) {
	for i := range recs {
		hit, _ := c.Access(recs[i].Line(), recs[i].Word(), recs[i].PC, recs[i].IsWrite())
		if hit {
			hits++
		}
	}
	return hits
}
