package sfp

import (
	"testing"

	"ldis/internal/mem"
)

func tinyConfig() Config {
	return Config{
		Name: "t", SizeBytes: 4 * 2 * mem.LineSize, Ways: 2,
		PredictorEntries: 256, TagsPerSet: 6, Seed: 5,
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TagsPerSet != 22 {
		t.Errorf("TagsPerSet = %d, want 22 (distill parity)", c.TagsPerSet)
	}
	if New(c).PredictorStorageBytes() != 64<<10 {
		t.Errorf("16k-entry predictor should cost 64kB")
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 1024, Ways: 0, PredictorEntries: 4, TagsPerSet: 1},
		{Name: "b", SizeBytes: 100, Ways: 2, PredictorEntries: 4, TagsPerSet: 1},
		{Name: "c", SizeBytes: 3 * 2 * 64, Ways: 2, PredictorEntries: 4, TagsPerSet: 1},
		{Name: "d", SizeBytes: 4 * 2 * 64, Ways: 2, PredictorEntries: 0, TagsPerSet: 1},
		{Name: "e", SizeBytes: 4 * 2 * 64, Ways: 2, PredictorEntries: 3, TagsPerSet: 1},
		{Name: "f", SizeBytes: 4 * 2 * 64, Ways: 2, PredictorEntries: 4, TagsPerSet: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v should be invalid", c)
		}
	}
}

func TestColdMissInstallsFullLine(t *testing.T) {
	c := New(tinyConfig())
	hit, valid := c.Access(0, 3, 0x400, false)
	if hit {
		t.Fatal("cold access should miss")
	}
	if valid != mem.FullFootprint {
		t.Errorf("untrained prediction = %v, want full line", valid)
	}
	if hit, _ := c.Access(0, 6, 0x400, false); !hit {
		t.Error("full install should hit on any word")
	}
	if c.Stats().PredictorDefaults == 0 {
		t.Error("default prediction not counted")
	}
}

func TestTrainingNarrowsPrediction(t *testing.T) {
	c := New(tinyConfig())
	pc := mem.Addr(0x400)
	la := mem.LineAddr(0)
	// Residency 1: touch only words 0 and 2.
	c.Access(la, 0, pc, false)
	c.Access(la, 2, pc, false)
	// Evict by filling the set's tag budget with full lines.
	for i := 1; i < 10; i++ {
		c.Access(mem.LineAddr(i*4), 0, mem.Addr(0x900+i*4), false)
	}
	if c.Present(la) {
		t.Skip("line survived churn; training not exercised")
	}
	// Residency 2: the same PC misses on the line again; the predictor
	// should now install only the trained words.
	_, valid := c.Access(la, 0, pc, false)
	if valid == mem.FullFootprint {
		t.Errorf("prediction not narrowed: %v", valid)
	}
	if !valid.Has(0) || !valid.Has(2) {
		t.Errorf("trained words missing from prediction: %v", valid)
	}
}

func TestHoleMissOnFilteredWord(t *testing.T) {
	c := New(tinyConfig())
	pc := mem.Addr(0x400)
	la := mem.LineAddr(0)
	// Train the predictor to word 0 only.
	c.Access(la, 0, pc, false)
	for i := 1; i < 10; i++ {
		c.Access(mem.LineAddr(i*4), 0, mem.Addr(0x900+i*4), false)
	}
	if c.Present(la) {
		t.Skip("line survived churn")
	}
	c.Access(la, 0, pc, false) // re-install with narrow prediction
	if got := c.StoredWords(la); got.Count() == 8 {
		t.Skip("prediction not narrowed; hole path not reachable")
	}
	before := c.Stats().HoleMisses
	hit, valid := c.Access(la, 7, pc, false)
	if hit {
		t.Fatal("access to filtered word should miss")
	}
	if c.Stats().HoleMisses != before+1 {
		t.Error("hole miss not counted")
	}
	if !valid.Has(7) {
		t.Error("refetch must include the demand word")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTagBudgetEnforced(t *testing.T) {
	cfg := tinyConfig()
	cfg.TagsPerSet = 3
	c := New(cfg)
	// Install many 1-word lines (train first, then reuse PCs).
	for i := 0; i < 20; i++ {
		c.Access(mem.LineAddr(i*4), 0, mem.Addr(0x400), false)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := New(tinyConfig())
	c.Access(0, 0, 0x400, true) // dirty install
	for i := 1; i < 12; i++ {
		c.Access(mem.LineAddr(i*4), 0, mem.Addr(0x900+i*4), false)
	}
	if c.Present(0) {
		t.Skip("line survived churn")
	}
	if c.Stats().Writebacks == 0 {
		t.Error("dirty line evicted without writeback")
	}
}

func TestWritebackFromL1(t *testing.T) {
	c := New(tinyConfig())
	c.Access(0, 0, 0x400, false)
	before := c.Stats().Writebacks
	// Dirty a stored word: no memory writeback.
	c.WritebackFromL1(0, mem.FootprintOfWord(0), mem.FootprintOfWord(0))
	if c.Stats().Writebacks != before {
		t.Error("stored dirty word should stay")
	}
	// Absent line with dirt: memory writeback.
	c.WritebackFromL1(mem.LineAddr(999), 0, mem.FootprintOfWord(1))
	if c.Stats().Writebacks != before+1 {
		t.Error("absent dirty line must write back")
	}
}

func TestReverterForcesFullInstalls(t *testing.T) {
	cfg := tinyConfig()
	cfg.Reverter = true
	c := New(cfg)
	// Disable the policy.
	for i := 0; i < 300; i++ {
		c.Sampler().RecordPolicyMiss(0)
	}
	if c.Sampler().Enabled() {
		t.Fatal("precondition: disabled")
	}
	// Train a narrow prediction on a follower set (set 1).
	pc := mem.Addr(0x400)
	la := mem.LineAddr(1) // set 1 is a follower (leaders every 2nd set: 0, 2)
	if c.Sampler().IsLeader(la.SetIndex(cfg.Sets())) {
		t.Fatal("test expects a follower set")
	}
	c.Access(la, 0, pc, false)
	if got := c.StoredWords(la); got != mem.FullFootprint {
		t.Errorf("disabled follower installed %v, want full line", got)
	}
}

func TestStressInvariants(t *testing.T) {
	cfg := Config{
		Name: "stress", SizeBytes: 16 * 8 * mem.LineSize, Ways: 8,
		PredictorEntries: 1024, TagsPerSet: 22, Reverter: true, Seed: 11,
	}
	c := New(cfg)
	rng := uint64(999)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 100000; i++ {
		la := mem.LineAddr(next() % 512)
		word := int(next() % 8)
		pc := mem.Addr(0x1000 + next()%64*4)
		c.Access(la, word, pc, next()%5 == 0)
		if next()%16 == 0 {
			c.WritebackFromL1(la, mem.Footprint(next()), mem.Footprint(next())&mem.Footprint(next()))
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits+st.Misses() != st.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", st.Hits, st.Misses(), st.Accesses)
	}
}
