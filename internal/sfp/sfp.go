// Package sfp implements the Spatial Footprint Predictor comparator of
// the paper's related-work evaluation (Section 9, Figure 13), after
// Kumar & Wilkerson [9]: a predictor table, indexed by the miss PC and
// line offset, predicts which words of a line will be used; only those
// words are installed, in a decoupled word-organized store with the
// same tag-entry count as the distill cache. Prediction happens at
// *install* time (so a misprediction turns a would-be hit into a miss),
// and the predictor is trained with the observed footprint when a line
// is evicted — the structural contrast with LDIS, which filters only at
// eviction time.
package sfp

import (
	"fmt"

	"ldis/internal/mem"
	"ldis/internal/sampler"
	"ldis/internal/wordstore"
)

// Config describes an SFP cache.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int // data ways per set (baseline 8)

	// PredictorEntries sizes the footprint history table: the paper
	// evaluates 16k entries (64kB) and 64k entries (256kB).
	PredictorEntries int

	// TagsPerSet bounds resident lines per set; the paper gives the
	// decoupled sectored cache the same number of tag entries as the
	// distill cache (6 line tags + 16 word tags = 22 for the baseline).
	TagsPerSet int

	// Reverter adds the same set-sampling fallback the paper added to
	// SFP to limit its MPKI increases.
	Reverter bool

	Seed          uint64
	SamplerConfig *sampler.Config
}

// DefaultConfig returns the paper's SFP-64kB configuration matched to
// the baseline distill cache.
func DefaultConfig() Config {
	return Config{
		Name:             "sfp",
		SizeBytes:        1 << 20,
		Ways:             8,
		PredictorEntries: 16 << 10,
		TagsPerSet:       6 + 2*mem.WordsPerLine,
		Reverter:         true,
		Seed:             1,
	}
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (mem.LineSize * c.Ways) }

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return fmt.Errorf("sfp %q: ways must be positive", c.Name)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*mem.LineSize != c.SizeBytes {
		return fmt.Errorf("sfp %q: size %dB not divisible into %d ways", c.Name, c.SizeBytes, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("sfp %q: set count %d not a power of two", c.Name, sets)
	}
	if c.PredictorEntries <= 0 || c.PredictorEntries&(c.PredictorEntries-1) != 0 {
		return fmt.Errorf("sfp %q: predictor entries %d must be a positive power of two", c.Name, c.PredictorEntries)
	}
	if c.TagsPerSet <= 0 {
		return fmt.Errorf("sfp %q: TagsPerSet must be positive", c.Name)
	}
	return nil
}

// predEntry is one footprint-history-table entry: a partial tag to
// filter aliases and the last observed footprint.
type predEntry struct {
	valid bool
	tag   uint8
	fp    mem.Footprint
}

// lineMeta tracks per-resident-line training state: the words actually
// observed used during this residency and the PC that installed it.
type lineMeta struct {
	observed mem.Footprint
	pc       mem.Addr
	lastUse  uint64
}

// metaEntry pairs a resident tag with its training state.
type metaEntry struct {
	tag uint64
	m   lineMeta
}

// metaTable holds per-line training state as a linear-scan table, one
// entry per resident line. Sets hold at most TagsPerSet lines (single
// digits to low tens), so a scan beats a map lookup and — with the
// table preallocated at full capacity — keeps the access path
// allocation-free.
type metaTable struct {
	entries []metaEntry
}

//ldis:noalloc
func (t *metaTable) find(tag uint64) int {
	for i := range t.entries {
		if t.entries[i].tag == tag {
			return i
		}
	}
	return -1
}

// get returns the entry for tag, or the zero lineMeta when absent
// (mirroring map-read semantics).
//
//ldis:noalloc
func (t *metaTable) get(tag uint64) lineMeta {
	if i := t.find(tag); i >= 0 {
		return t.entries[i].m
	}
	return lineMeta{}
}

//ldis:noalloc
func (t *metaTable) lookup(tag uint64) (lineMeta, bool) {
	if i := t.find(tag); i >= 0 {
		return t.entries[i].m, true
	}
	return lineMeta{}, false
}

// put overwrites tag's entry, appending one when absent. The table is
// preallocated at the tag budget, so the append never grows it.
//
//ldis:noalloc
func (t *metaTable) put(tag uint64, m lineMeta) {
	if i := t.find(tag); i >= 0 {
		t.entries[i].m = m
		return
	}
	t.entries = append(t.entries, metaEntry{tag: tag, m: m})
}

// del removes tag's entry by swap-remove; order is immaterial.
//
//ldis:noalloc
func (t *metaTable) del(tag uint64) {
	if i := t.find(tag); i >= 0 {
		t.entries[i] = t.entries[len(t.entries)-1]
		t.entries = t.entries[:len(t.entries)-1]
	}
}

func (t *metaTable) len() int { return len(t.entries) }

type sfpSet struct {
	store wordstore.Set
	meta  metaTable
}

// Stats counts SFP cache behaviour. Hole misses here are accesses to
// words the predictor chose not to install.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	HoleMisses uint64
	LineMisses uint64
	Writebacks uint64
	Evictions  uint64

	PredictorHits     uint64 // predictions served from a matching entry
	PredictorDefaults uint64 // cold/aliased lookups (predict all words)
}

// Misses returns the total miss count.
func (s *Stats) Misses() uint64 { return s.HoleMisses + s.LineMisses }

// Cache is the SFP-filtered decoupled word-organized cache.
type Cache struct {
	cfg   Config
	sets  []sfpSet
	table []predEntry
	smp   *sampler.Sampler
	st    Stats
	rng   uint64
	tick  uint64

	// Set-indexing geometry, precomputed at construction so the access
	// path does not rederive it per access.
	setMask  uint64
	tagShift uint
}

// New builds the cache; panics on invalid config.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, rng: cfg.Seed | 1, setMask: uint64(cfg.Sets() - 1)}
	for n := cfg.Sets(); n > 1; n >>= 1 {
		c.tagShift++
	}
	// Per-set slices come from shared backing arrays (see
	// wordstore.NewSets): construction cost scales with the number of
	// arenas, not the number of sets.
	numSets := cfg.Sets()
	c.sets = make([]sfpSet, numSets)
	stores := wordstore.NewSets(cfg.Ways, numSets)
	metaArena := make([]metaEntry, numSets*cfg.TagsPerSet)
	for i := range c.sets {
		c.sets[i] = sfpSet{
			store: stores[i],
			meta:  metaTable{entries: metaArena[i*cfg.TagsPerSet : i*cfg.TagsPerSet : (i+1)*cfg.TagsPerSet]},
		}
	}
	c.table = make([]predEntry, cfg.PredictorEntries)
	if cfg.Reverter {
		sc := sampler.DefaultConfig(cfg.Sets())
		if cfg.SamplerConfig != nil {
			sc = *cfg.SamplerConfig
		}
		c.smp = sampler.New(sc)
	}
	return c
}

// Stats returns the live counters.
func (c *Cache) Stats() *Stats { return &c.st }

// Sampler exposes the reverter's sampler (nil when disabled).
func (c *Cache) Sampler() *sampler.Sampler { return c.smp }

func (c *Cache) nextRand() uint64 {
	x := c.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rng = x
	return x * 0x2545f4914f6cdd1d
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// setIndexOf and tagOf are the precomputed equivalents of
// mem.LineAddr.SetIndex/Tag for this cache's geometry.
func (c *Cache) setIndexOf(la mem.LineAddr) int { return int(uint64(la) & c.setMask) }
func (c *Cache) tagOf(la mem.LineAddr) uint64   { return uint64(la) >> c.tagShift }

// predIndex hashes (pc, line) into the footprint history table; the
// upper hash bits form the alias-filter tag.
func (c *Cache) predIndex(pc mem.Addr, la mem.LineAddr) (int, uint8) {
	h := mix(uint64(pc)>>2 ^ uint64(la)<<17)
	return int(h % uint64(len(c.table))), uint8(h >> 48)
}

// predict returns the footprint to install for a line missed by pc.
// Cold or aliased entries default to the full line (which makes an
// untrained SFP behave like the traditional cache).
func (c *Cache) predict(pc mem.Addr, la mem.LineAddr) mem.Footprint {
	idx, tag := c.predIndex(pc, la)
	e := c.table[idx]
	if e.valid && e.tag == tag && e.fp != 0 {
		c.st.PredictorHits++
		return e.fp
	}
	c.st.PredictorDefaults++
	return mem.FullFootprint
}

// train records the observed footprint for (pc, line).
func (c *Cache) train(pc mem.Addr, la mem.LineAddr, observed mem.Footprint) {
	if observed == 0 {
		return
	}
	idx, tag := c.predIndex(pc, la)
	c.table[idx] = predEntry{valid: true, tag: tag, fp: observed}
}

// Access performs a demand access. The returned mask is the set of
// words the L1D receives (the installed prediction on misses, which
// always includes the demand word).
//ldis:noalloc
func (c *Cache) Access(la mem.LineAddr, word int, pc mem.Addr, write bool) (hit bool, valid mem.Footprint) {
	c.st.Accesses++
	si := c.setIndexOf(la)
	s := &c.sets[si]
	leader := false
	forceFull := false
	if c.smp != nil {
		leader = c.smp.IsLeader(si)
		c.smp.ObserveATD(si, la)
		// Followers of a disabled SFP install full lines, which makes
		// the set behave like a traditional word-organized cache.
		forceFull = !leader && !c.smp.Enabled()
	}
	tag := c.tagOf(la)
	if idx := s.store.Find(tag); idx >= 0 {
		l := &s.store.Lines[idx]
		m := s.meta.get(tag)
		if l.Words.Has(word) {
			c.st.Hits++
			c.tick++
			m.observed = m.observed.Set(word)
			m.lastUse = c.tick
			s.meta.put(tag, m)
			if write {
				l.Dirty = l.Dirty.Set(word)
			}
			return true, l.Words
		}
		// The predictor filtered out a word that is now needed: a miss
		// the traditional cache would not have had. Train, invalidate,
		// and refetch with an updated prediction.
		c.st.HoleMisses++
		if leader {
			c.smp.RecordPolicyMiss(si)
		}
		removed := s.store.RemoveAt(idx)
		if removed.Dirty != 0 {
			c.st.Writebacks++
		}
		s.meta.del(tag)
		c.train(m.pc, la, m.observed.Set(word))
		return false, c.install(s, si, la, word, pc, write, forceFull)
	}
	c.st.LineMisses++
	if leader {
		c.smp.RecordPolicyMiss(si)
	}
	return false, c.install(s, si, la, word, pc, write, forceFull)
}

// install fetches the line and places the predicted words.
//
//ldis:noalloc
func (c *Cache) install(s *sfpSet, si int, la mem.LineAddr, word int, pc mem.Addr, write, forceFull bool) mem.Footprint {
	fp := mem.FullFootprint
	if !forceFull {
		fp = c.predict(pc, la).Set(word)
	}
	nl := wordstore.Line{
		Tag:   c.tagOf(la),
		Words: fp,
		Slots: mem.Pow2WordsFor(fp.Count()),
	}
	if write {
		nl.Dirty = mem.FootprintOfWord(word)
	}
	// The decoupled sectored cache replaces in LRU order (unlike the
	// WOC's random policy): evict least-recently-used lines until an
	// aligned region of the required size is free and the tag budget
	// holds. This also makes the reverter's full-install fallback
	// behave like the traditional LRU baseline.
	for len(s.store.Lines) > 0 &&
		(!s.store.HasFreeRegion(nl.Slots) || len(s.store.Lines)+1 > c.cfg.TagsPerSet) {
		c.evicted(s, si, s.store.RemoveAt(c.lruIndex(s)))
	}
	for _, ev := range s.store.Install(nl, c.nextRand()) {
		c.evicted(s, si, ev)
	}
	c.tick++
	s.meta.put(nl.Tag, lineMeta{observed: mem.FootprintOfWord(word), pc: pc, lastUse: c.tick})
	return fp
}

// lruIndex returns the index of the least-recently-used resident line.
//
//ldis:noalloc
func (c *Cache) lruIndex(s *sfpSet) int {
	best, bestUse := 0, ^uint64(0)
	for i := range s.store.Lines {
		if u := s.meta.get(s.store.Lines[i].Tag).lastUse; u < bestUse {
			best, bestUse = i, u
		}
	}
	return best
}

// evicted trains the predictor with the line's observed footprint and
// accounts for dirty writebacks.
func (c *Cache) evicted(s *sfpSet, si int, l wordstore.Line) {
	c.st.Evictions++
	if l.Dirty != 0 {
		c.st.Writebacks++
	}
	if m, ok := s.meta.lookup(l.Tag); ok {
		c.train(m.pc, c.lineFromTag(l.Tag, si), m.observed)
		s.meta.del(l.Tag)
	}
}

func (c *Cache) lineFromTag(tag uint64, setIdx int) mem.LineAddr {
	return mem.LineAddr(tag<<c.tagShift | uint64(setIdx))
}

// WritebackFromL1 accepts an L1D eviction notice, mirroring the distill
// cache's interface: observed words train the residency, dirty words
// for stored entries stay, unstored dirty words go to memory.
//ldis:noalloc
func (c *Cache) WritebackFromL1(la mem.LineAddr, footprint, dirty mem.Footprint) {
	footprint = footprint.Or(dirty)
	si := c.setIndexOf(la)
	s := &c.sets[si]
	tag := c.tagOf(la)
	if idx := s.store.Find(tag); idx >= 0 {
		l := &s.store.Lines[idx]
		m := s.meta.get(tag)
		m.observed = m.observed.Or(footprint & l.Words)
		s.meta.put(tag, m)
		l.Dirty = l.Dirty.Or(dirty & l.Words)
		if dirty&^l.Words != 0 {
			c.st.Writebacks++
		}
		return
	}
	if dirty != 0 {
		c.st.Writebacks++
	}
}

// Present reports whether the line is resident; StoredWords returns its
// word mask (0 if absent). For tests.
func (c *Cache) Present(la mem.LineAddr) bool { return c.StoredWords(la) != 0 }

// StoredWords returns the stored-word mask of the line, or 0 if absent.
func (c *Cache) StoredWords(la mem.LineAddr) mem.Footprint {
	s := &c.sets[c.setIndexOf(la)]
	if idx := s.store.Find(c.tagOf(la)); idx >= 0 {
		return s.store.Lines[idx].Words
	}
	return 0
}

// PredictorStorageBytes returns the history table's cost (4B/entry as
// in the paper: 16k entries = 64kB).
func (c *Cache) PredictorStorageBytes() int { return c.cfg.PredictorEntries * 4 }

// CheckInvariants validates internal consistency; tests call it after
// stress runs.
func (c *Cache) CheckInvariants() error {
	for i := range c.sets {
		s := &c.sets[i]
		if err := s.store.CheckInvariants(); err != nil {
			return fmt.Errorf("set %d: %v", i, err)
		}
		if len(s.store.Lines) > c.cfg.TagsPerSet {
			return fmt.Errorf("set %d: %d lines exceed tag budget %d", i, len(s.store.Lines), c.cfg.TagsPerSet)
		}
		for _, l := range s.store.Lines {
			if _, ok := s.meta.lookup(l.Tag); !ok {
				return fmt.Errorf("set %d: line %x missing metadata", i, l.Tag)
			}
		}
		if s.meta.len() != len(s.store.Lines) {
			return fmt.Errorf("set %d: %d meta entries for %d lines", i, s.meta.len(), len(s.store.Lines))
		}
	}
	return nil
}
