package exp

import (
	"fmt"

	"ldis/internal/cache"
	"ldis/internal/costmodel"
	"ldis/internal/distill"
	"ldis/internal/hierarchy"
	"ldis/internal/obs"
	"ldis/internal/stats"
	"ldis/internal/wordstore"
	"ldis/internal/workload"
)

// The orgs experiment places the three related-work organization
// variants next to the designs they modify:
//
//	col 0  base      1MB 8-way traditional cache;
//	col 1  waymemo   the same cache with way memoization (arXiv
//	                 0710.4703) — functionally transparent, the memo
//	                 counters price skipped tag probes;
//	col 2  ldis      plain distill cache (2 WOC ways, per-word tags);
//	col 3  touche    the distill cache with Touché compressed
//	                 superblock tags (arXiv 1909.00553) — less tag
//	                 area, alias-safe misses instead of false hits;
//	col 4  copyback  the distill cache with reuse-distance-gated clean
//	                 copy-back of L1 victims (arXiv 2105.14442).
//
// The traditional columns are shard-exact and run sharded when
// Options.Shards asks for it (the memo counters are per-set and merge
// exactly); the distill columns run sequentially, as every distill
// experiment does — distill.Config.ShardExact() declares the
// limitation honestly (copy-back consults one global Mattson stack).

// Orgs geometry: the paper's shared 1MB, 8-way, 64B-line L2.
const (
	orgSizeBytes = 1 << 20
	orgWays      = 8
	orgWOCWays   = 2
)

// orgColumns names the experiment's columns in order.
var orgColumns = []string{"base", "waymemo", "ldis", "touche", "copyback"}

// orgCell is one (benchmark, organization) result. Everything is
// plain exported data so cells gob round-trip through the checkpoint.
type orgCell struct {
	Org    string
	Totals hierarchy.WindowTotals

	// Touché column counters (whole run, not just the window).
	Touche wordstore.ToucheStats
	// Copy-back column counters.
	CopyBacks, CopyBackFar, CopyBackCold uint64
	// Way-memo column counters.
	MemoRefs, MemoHits, MemoSkipped uint64
}

// orgDistill is the distill configuration the ldis/touche/copyback
// columns share before their per-column extension.
func orgDistill(name string, seed uint64) distill.Config {
	return distill.Config{
		Name: name, SizeBytes: orgSizeBytes, Ways: orgWays, WOCWays: orgWOCWays, Seed: seed,
	}
}

// runOrgTrad runs one traditional-organization cell, sharded when
// requested, and returns the window totals plus the merged cache
// statistics (shard-owned counters sum to exactly the sequential
// values, so the memo accounting is byte-identical at any shard
// count).
func runOrgTrad(cfg cache.Config, prof *workload.Profile, o Options, co *obs.Cell) (hierarchy.WindowTotals, cache.Stats) {
	if o.shards() == 1 {
		sys, c := tradSystem(cfg, co)
		w := runWindowed(sys, prof, o, co)
		return w.Totals(), *c.Stats()
	}
	run, err := hierarchy.RunSharded(o.shards(), o.batchSize(), o.warmup(), o.measure(), cellStream(prof, co),
		func(shard int) *hierarchy.System {
			sys, _ := tradSystem(cfg, co)
			return sys
		})
	if err != nil {
		// Options are validated and the traditional organization is
		// shard-exact; only a panicking shard worker lands here.
		panic(err)
	}
	countSimAccesses(run.Done)
	// RunSharded folds every sibling shard into Systems[0] before
	// returning, and the memo counters are shard-owned per-set sums, so
	// the merged statistics are byte-identical to the sequential run's.
	return run.Window, *run.Systems[0].L2.(*hierarchy.TradL2).C.Stats()
}

// runOrgGrid is the orgs experiment's cell scheduler: a named wrapper
// over runGrid so the gridpure analyzer covers the orgs cells exactly
// like every other experiment's.
func runOrgGrid(o Options, cols int, fn func(prof *workload.Profile, col int, co *obs.Cell) (orgCell, error)) ([]string, [][]orgCell, error) {
	return runGrid(o, cols, fn)
}

// OrgsRow is one benchmark's cells across the five organizations.
type OrgsRow struct {
	Benchmark string
	Cells     []orgCell // indexed like orgColumns
}

// Orgs runs the related-work organization sweep.
func Orgs(o Options) ([]OrgsRow, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	names, grid, err := runOrgGrid(o, len(orgColumns), func(prof *workload.Profile, col int, co *obs.Cell) (orgCell, error) {
		return orgCellRun(o, prof, col, co)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]OrgsRow, len(names))
	for i, name := range names {
		rows[i] = OrgsRow{Benchmark: name, Cells: grid[i]}
	}
	return rows, nil
}

// orgCellRun simulates one cell.
func orgCellRun(o Options, prof *workload.Profile, col int, co *obs.Cell) (orgCell, error) {
	cell := orgCell{Org: orgColumns[col]}
	switch cell.Org {
	case "base":
		tw, _ := runOrgTrad(cache.Config{Name: "orgs-base", SizeBytes: orgSizeBytes, Ways: orgWays}, prof, o, co)
		cell.Totals = tw
	case "waymemo":
		cfg := cache.Config{
			Name: "orgs-waymemo", SizeBytes: orgSizeBytes, Ways: orgWays,
			WayMemo: &cache.WayMemoConfig{EntriesPerSet: o.orgWayMemoEntries()},
		}
		tw, st := runOrgTrad(cfg, prof, o, co)
		cell.Totals = tw
		cell.MemoRefs, cell.MemoHits, cell.MemoSkipped = st.MemoRefs, st.MemoHits, st.MemoProbesSkipped
	case "ldis":
		sys, _ := distillSystem(orgDistill("orgs-ldis", prof.Seed), co)
		cell.Totals = runWindowed(sys, prof, o, co).Totals()
	case "touche":
		cfg := orgDistill("orgs-touche", prof.Seed)
		cfg.Touche = &wordstore.ToucheConfig{SuperblockLines: o.orgToucheSBLines(), Seed: prof.Seed}
		sys, dc := distillSystem(cfg, co)
		cell.Totals = runWindowed(sys, prof, o, co).Totals()
		cell.Touche = dc.Stats().Touche
	case "copyback":
		cfg := orgDistill("orgs-copyback", prof.Seed)
		cfg.CopyBack = &distill.CopyBackConfig{MaxReuseBytes: o.orgCopyBackMaxReuse(), Seed: prof.Seed}
		sys, dc := distillSystem(cfg, co)
		cell.Totals = runWindowed(sys, prof, o, co).Totals()
		st := dc.Stats()
		cell.CopyBacks, cell.CopyBackFar, cell.CopyBackCold = st.CopyBacks, st.CopyBackFar, st.CopyBackCold
	default:
		return orgCell{}, fmt.Errorf("exp: unknown org column %d", col)
	}
	return cell, nil
}

// orgToucheParams maps the experiment's Touché knobs onto the cost
// model (geometry already matches costmodel.Defaults: 1MB, 8 ways, 2
// WOC ways, 64B lines).
func (o Options) orgToucheParams() costmodel.ToucheParams {
	t := costmodel.ToucheDefaults()
	t.SuperblockLines = o.orgToucheSBLines()
	return t
}

// orgsMPKITable is the headline comparison.
func orgsMPKITable(rows []OrgsRow) *stats.Table {
	t := stats.NewTable("Organizations: MPKI by cache organization",
		"benchmark", "base", "waymemo", "ldis", "touche", "copyback")
	for _, r := range rows {
		cells := make([]any, 0, len(r.Cells)+1)
		cells = append(cells, r.Benchmark)
		for _, c := range r.Cells {
			cells = append(cells, fmt.Sprintf("%.3f", c.Totals.MPKI()))
		}
		t.AddRow(cells...)
	}
	return t
}

// orgsToucheTable reports the compressed-tag column's behaviour (alias
// safety is a structural invariant; the table shows how often it was
// exercised) and the static area comparison from the cost model.
func orgsToucheTable(rows []OrgsRow, o Options) []*stats.Table {
	dyn := stats.NewTable("Touché tags: dynamic behaviour vs per-word LDIS tags",
		"benchmark", "lookups", "hits", "alias safe-miss", "ck collisions", "alias evict", "sb evict", "ldis MPKI", "touche MPKI")
	for _, r := range rows {
		ts := r.Cells[3].Touche
		dyn.AddRow(r.Benchmark,
			fmt.Sprint(ts.Lookups), fmt.Sprint(ts.Hits),
			fmt.Sprint(ts.AliasSafeMisses), fmt.Sprint(ts.ChecksumCollisions),
			fmt.Sprint(ts.AliasEvictions), fmt.Sprint(ts.SuperblockEvictions),
			fmt.Sprintf("%.3f", r.Cells[2].Totals.MPKI()),
			fmt.Sprintf("%.3f", r.Cells[3].Totals.MPKI()))
	}
	area := stats.NewTable("Touché tags: WOC tag area (static, from the cost model)",
		"layout", "word entry bits", "shared entries", "tag bytes", "savings")
	ta, err := costmodel.ToucheTagArea(costmodel.Defaults(), o.orgToucheParams())
	if err == nil {
		ldis, _ := costmodel.DistillStorage(costmodel.Defaults())
		area.AddRow("ldis per-word", fmt.Sprint(ldis.WOCTagEntryBits), "0",
			fmt.Sprint(ldis.WOCTagBytes), "-")
		area.AddRow("touche", fmt.Sprint(ta.WordEntryBits), fmt.Sprint(ta.SuperblockEntries),
			fmt.Sprint(ta.TagBytes), fmt.Sprintf("%.1f%%", ta.SavingsPercent))
	}
	return []*stats.Table{dyn, area}
}

// orgsCopyBackTable reports the predictor's admission decisions and
// the resulting miss delta against the plain distill column.
func orgsCopyBackTable(rows []OrgsRow) *stats.Table {
	t := stats.NewTable("Clean copy-back: reuse-gated WOC installs of clean L1 victims",
		"benchmark", "copybacks", "far", "cold", "ldis misses", "copyback misses", "miss delta")
	for _, r := range rows {
		ld, cb := r.Cells[2], r.Cells[4]
		delta := "-"
		if ld.Totals.Misses > 0 {
			delta = fmt.Sprintf("%+.2f%%",
				100*(float64(cb.Totals.Misses)-float64(ld.Totals.Misses))/float64(ld.Totals.Misses))
		}
		t.AddRow(r.Benchmark,
			fmt.Sprint(cb.CopyBacks), fmt.Sprint(cb.CopyBackFar), fmt.Sprint(cb.CopyBackCold),
			fmt.Sprint(ld.Totals.Misses), fmt.Sprint(cb.Totals.Misses), delta)
	}
	return t
}

// orgsWayMemoTable prices the memo column's tag-probe savings. The
// MPKI columns double as the transparency check: they must match.
func orgsWayMemoTable(rows []OrgsRow) *stats.Table {
	t := stats.NewTable("Way memoization: tag-probe energy vs the same cache without a memo",
		"benchmark", "base MPKI", "memo MPKI", "memo hits", "hit rate", "tag energy saved")
	for _, r := range rows {
		wm := r.Cells[1]
		hitRate := "-"
		if wm.MemoRefs > 0 {
			hitRate = fmt.Sprintf("%.1f%%", 100*float64(wm.MemoHits)/float64(wm.MemoRefs))
		}
		saved := "-"
		if e, err := costmodel.WayMemoEnergyFor(orgWays, wm.MemoRefs, wm.MemoHits); err == nil {
			saved = fmt.Sprintf("%.1f%%", e.SavedPercent)
		}
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%.3f", r.Cells[0].Totals.MPKI()),
			fmt.Sprintf("%.3f", wm.Totals.MPKI()),
			fmt.Sprint(wm.MemoHits), hitRate, saved)
	}
	return t
}

// OrgsTables renders the headline MPKI table plus one table per
// variant.
func OrgsTables(rows []OrgsRow, o Options) []*stats.Table {
	tables := []*stats.Table{orgsMPKITable(rows)}
	tables = append(tables, orgsToucheTable(rows, o)...)
	tables = append(tables, orgsCopyBackTable(rows), orgsWayMemoTable(rows))
	return tables
}

func init() {
	registerExp("orgs", "related-work organizations: Touché tags, clean copy-back, way memoization vs base and LDIS", func(o Options) ([]*stats.Table, error) {
		rows, err := Orgs(o)
		if err != nil {
			return nil, err
		}
		return OrgsTables(rows, o), nil
	})
}
