package exp

import (
	"path/filepath"
	"strings"
	"testing"
)

func partitionOpts() Options {
	return Options{Accesses: 150_000, WarmupFrac: 0.25}
}

// renderPartition renders every table of a partition run into one
// string, the byte-identity unit of the determinism tests.
func renderPartition(rows []PartitionResult) string {
	var b strings.Builder
	for _, t := range PartitionTables(rows) {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestPartitionUCPBeatsStatic is the first smoke gate: on every
// bundled scenario, utility-driven allocation must not lose to the
// static equal split on aggregate miss ratio.
func TestPartitionUCPBeatsStatic(t *testing.T) {
	rows, err := Partition(partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		var static, ucp *partitionCell
		for i := range r.Cells {
			switch r.Cells[i].Policy {
			case "static":
				static = &r.Cells[i]
			case "ucp":
				ucp = &r.Cells[i]
			}
		}
		if static == nil || ucp == nil {
			t.Fatalf("%s: missing policy columns", r.Scenario)
		}
		s, u := static.aggMissRatio(), ucp.aggMissRatio()
		t.Logf("%s: static %.4f ucp %.4f (ucp alloc %s, %d rebalances)",
			r.Scenario, s, u, allocString(*ucp), ucp.Rebalances)
		if u > s+1e-9 {
			t.Errorf("%s: ucp aggregate miss ratio %.4f worse than static %.4f", r.Scenario, u, s)
		}
	}
}

// TestPartitionShardsAgreesWithExact is the second smoke gate: the
// online SHARDS-sampled allocator must match the exact-Mattson
// allocation within one way per tenant on at least 90%% of epochs.
func TestPartitionShardsAgreesWithExact(t *testing.T) {
	rows, err := Partition(partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, c := range r.Cells {
			if c.Policy == "static" {
				continue // static ignores the curves; agreement is vacuous
			}
			if c.ShadowEpochs == 0 {
				t.Fatalf("%s/%s: no shadow-validated epochs", r.Scenario, c.Policy)
			}
			frac := float64(c.AgreeEpochs) / float64(c.ShadowEpochs)
			t.Logf("%s/%s: %d/%d epochs agree (%.0f%%)", r.Scenario, c.Policy, c.AgreeEpochs, c.ShadowEpochs, 100*frac)
			if frac < 0.9 {
				t.Errorf("%s/%s: sampled allocator agreed with exact on only %.0f%% of epochs, want >= 90%%",
					r.Scenario, c.Policy, 100*frac)
			}
		}
	}
}

// TestPartitionLDISAwareDiffers is the third smoke gate: word-grain
// curves must change the allocation relative to line grain on at least
// one bundled scenario, and the summary's effective-capacity gain must
// show distillation reclaiming capacity.
func TestPartitionLDISAwareDiffers(t *testing.T) {
	rows, err := Partition(partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	differs := 0
	gained := false
	for _, r := range rows {
		for _, c := range r.Cells {
			if c.Policy != "ldis" {
				continue
			}
			t.Logf("%s/ldis: %d grain disagreements over %d epochs, mean eff gain %.2fx",
				r.Scenario, c.GrainDiffers, c.Epochs, c.meanEffGain())
			differs += c.GrainDiffers
			if c.meanEffGain() > 1.01 {
				gained = true
			}
		}
	}
	if differs == 0 {
		t.Error("word-grain curves never changed the allocation on any bundled scenario")
	}
	if !gained {
		t.Error("no scenario reported a word-grain effective-capacity gain above 1x")
	}
}

// TestPartitionDeterminism: the rendered tables are byte-identical
// across worker counts and batch sizes.
func TestPartitionDeterminism(t *testing.T) {
	base := partitionOpts()
	rows, err := Partition(base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderPartition(rows)

	variants := []Options{
		{Accesses: base.Accesses, WarmupFrac: base.WarmupFrac, Parallel: 4},
		{Accesses: base.Accesses, WarmupFrac: base.WarmupFrac, Parallel: 2, BatchSize: 512},
	}
	for i, o := range variants {
		rows, err := Partition(o)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderPartition(rows); got != want {
			t.Errorf("variant %d (parallel=%d batch=%d) diverged from sequential output", i, o.Parallel, o.BatchSize)
		}
	}
}

// TestPartitionCheckpointResume: a resumed run replays every cell from
// the checkpoint and renders byte-identical tables.
func TestPartitionCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partition.ck")
	o := partitionOpts()
	o.Tenants = []string{"twolf", "mcf"} // one scenario keeps the double run cheap

	ck, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Checkpoint = ck
	rows, err := Partition(o)
	if err != nil {
		t.Fatal(err)
	}
	want := renderPartition(rows)
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	o.Checkpoint = nil
	ck2, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	o.Checkpoint = ck2
	rows2, err := Partition(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderPartition(rows2); got != want {
		t.Error("resumed run diverged from the original")
	}
	if ck2.Replayed() != 3 {
		t.Errorf("resumed run replayed %d cells, want all 3", ck2.Replayed())
	}
}
