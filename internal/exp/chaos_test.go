package exp

import (
	"fmt"
	"strings"
	"testing"

	"ldis/internal/faultinject"
)

// The chaos suite (`make chaos` runs it via -run 'Chaos|Checkpoint')
// drives seeded faults through the full experiment engine and checks
// the three resilience guarantees: healthy rows render byte-identical
// to a fault-free run, the failure report is deterministic at any
// worker count, and retries absorb exactly the transient faults.
//
// Seed 1 is chosen so the table6 grid over {ammp, mcf, swim, health}
// has a known mix: swim/2 faults transiently, health/3 permanently,
// ammp and mcf are untouched. chaosSeedMix pins that down so a drift
// in the injector's hash would fail loudly here rather than silently
// weakening the assertions below.
const chaosSeed = 1

var chaosBenches = []string{"ammp", "mcf", "swim", "health"}

func chaosOptions() Options {
	return Options{Accesses: 20_000, WarmupFrac: 0.25,
		Benchmarks: chaosBenches, Parallel: 4,
		KeepGoing: true, FaultSeed: chaosSeed, Failures: NewFailureLog()}
}

func TestChaosSeedMix(t *testing.T) {
	inj := faultinject.NewDefault(chaosSeed)
	for _, tc := range []struct {
		site              string
		faulty, transient bool
	}{
		{"table6/swim/2", true, true},
		{"table6/health/3", true, false},
		{"table6/ammp/0", false, false},
		{"table6/mcf/4", false, false},
	} {
		f, tr := inj.Site(tc.site)
		if f != tc.faulty || tr != tc.transient {
			t.Errorf("Site(%s) = (%v,%v), want (%v,%v)", tc.site, f, tr, tc.faulty, tc.transient)
		}
	}
	// The full expected fault set for the chaos grid.
	var faults []string
	for _, b := range chaosBenches {
		for c := 0; c < len(Table6Sizes); c++ {
			if f, _ := inj.Site(fmt.Sprintf("table6/%s/%d", b, c)); f {
				faults = append(faults, fmt.Sprintf("%s/%d", b, c))
			}
		}
	}
	if got := strings.Join(faults, " "); got != "swim/2 health/3" {
		t.Errorf("fault set = %q, want \"swim/2 health/3\"", got)
	}
}

// TestChaosHealthyRowsByteIdentical: under keep-going with injected
// panics, the surviving benchmarks render exactly as a fault-free run
// restricted to those benchmarks would.
func TestChaosHealthyRowsByteIdentical(t *testing.T) {
	o := chaosOptions()
	tables, err := Run("table6", o)
	if err != nil {
		t.Fatalf("keep-going run should not fail: %v", err)
	}
	got := ""
	for _, tb := range tables {
		got += tb.String() + "\n" + tb.CSV() + "\n"
	}

	// swim and health each have a faulted cell; ammp and mcf survive.
	clean := Options{Accesses: o.Accesses, WarmupFrac: o.WarmupFrac,
		Benchmarks: []string{"ammp", "mcf"}, Parallel: o.Parallel}
	want := renderAll(t, "table6", clean)
	if got != want {
		t.Errorf("healthy rows differ from fault-free run:\n--- chaos ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// TestChaosFailureTableDeterministic: the rendered failure report is
// byte-identical across worker counts and runs.
func TestChaosFailureTableDeterministic(t *testing.T) {
	render := func(parallel int) string {
		o := chaosOptions()
		o.Parallel = parallel
		if _, err := Run("table6", o); err != nil {
			t.Fatalf("Parallel=%d: %v", parallel, err)
		}
		return o.Failures.Table().String()
	}
	seq := render(1)
	if par := render(4); par != seq {
		t.Errorf("failure table differs across worker counts:\n--- P=1 ---\n%s\n--- P=4 ---\n%s", seq, par)
	}
	for _, cell := range []string{"swim", "health", "panic", "injected panic at table6/swim/2"} {
		if !strings.Contains(seq, cell) {
			t.Errorf("failure table missing %q:\n%s", cell, seq)
		}
	}
	if strings.Contains(seq, "ammp") || strings.Contains(seq, "mcf") {
		t.Errorf("healthy benchmarks leaked into the failure table:\n%s", seq)
	}
}

// TestChaosRetriesAbsorbTransients: with one retry, the transient
// swim/2 fault recovers and only the permanent health/3 fault remains.
func TestChaosRetriesAbsorbTransients(t *testing.T) {
	o := chaosOptions()
	o.Retries = 1
	tables, err := Run("table6", o)
	if err != nil {
		t.Fatal(err)
	}
	fails := o.Failures.Cells()
	if len(fails) != 1 {
		t.Fatalf("failures with retries = %d (%v), want 1", len(fails), fails)
	}
	f := fails[0]
	if f.Benchmark != "health" || f.Col != 3 || f.Kind != "panic" || f.Attempts != 2 {
		t.Errorf("surviving failure = %+v, want health/3 panic after 2 attempts", f)
	}
	// swim recovered, so three benchmarks render — identical to a
	// fault-free run over those three.
	got := ""
	for _, tb := range tables {
		got += tb.String() + "\n" + tb.CSV() + "\n"
	}
	clean := Options{Accesses: o.Accesses, WarmupFrac: o.WarmupFrac,
		Benchmarks: []string{"ammp", "mcf", "swim"}, Parallel: o.Parallel}
	if want := renderAll(t, "table6", clean); got != want {
		t.Errorf("retried rows differ from fault-free run:\n%s\nvs\n%s", got, want)
	}
}

// TestChaosFailFastSurfacesCell: without keep-going, the injected
// panic aborts the sweep with the cell's coordinates in the error.
func TestChaosFailFastSurfacesCell(t *testing.T) {
	o := chaosOptions()
	o.KeepGoing = false
	o.Failures = nil
	_, err := Run("table6", o)
	if err == nil {
		t.Fatal("fail-fast chaos run should error")
	}
	if !strings.Contains(err.Error(), "cell table6/") ||
		!strings.Contains(err.Error(), "injected panic") {
		t.Errorf("fail-fast error lacks cell coordinates: %v", err)
	}
}

// TestChaosFailureBudget: the budget abandons the sweep after the
// configured number of failures, marking unrun cells as skipped.
func TestChaosFailureBudget(t *testing.T) {
	o := chaosOptions()
	o.Parallel = 1
	o.FailBudget = 1
	if _, err := Run("table6", o); err != nil {
		t.Fatal(err)
	}
	var executed, skipped int
	for _, f := range o.Failures.Cells() {
		if f.Kind == "skipped" {
			skipped++
		} else {
			executed++
		}
	}
	if executed != 1 {
		t.Errorf("executed failures = %d, want 1 (budget)", executed)
	}
	if skipped == 0 {
		t.Error("budget exhaustion should mark remaining cells skipped")
	}
}
