package exp

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ldis/internal/costmodel"
)

// orgsGateOpts pins the acceptance-gate operating point. The gates
// below assert strict inequalities on deterministic simulations, so
// the access count is part of the contract: change it and the
// expected miss deltas move with it.
func orgsGateOpts() Options {
	return Options{Accesses: 500_000, WarmupFrac: 0.25}
}

// orgsGateRows runs the full orgs sweep once at the gate operating
// point and shares the rows across the three gate tests.
var orgsGateRows = sync.OnceValues(func() ([]OrgsRow, error) {
	return Orgs(orgsGateOpts())
})

func gateRows(t *testing.T) []OrgsRow {
	t.Helper()
	rows, err := orgsGateRows()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// orgCellByName avoids positional indexing in the gates.
func orgCellByName(t *testing.T, r OrgsRow, org string) orgCell {
	t.Helper()
	for i, name := range orgColumns {
		if name == org {
			return r.Cells[i]
		}
	}
	t.Fatalf("%s: no %q column", r.Benchmark, org)
	return orgCell{}
}

// TestOrgsToucheTagAreaGate is the first acceptance gate: Touché's
// compressed superblock tags must cost strictly less area than LDIS's
// per-word tags while holding the miss ratio within tolerance, and
// alias handling must stay safe — a signature collision may only add
// misses, never invent hits.
func TestOrgsToucheTagAreaGate(t *testing.T) {
	o := orgsGateOpts()
	ta, err := costmodel.ToucheTagArea(costmodel.Defaults(), o.orgToucheParams())
	if err != nil {
		t.Fatal(err)
	}
	ldisArea, err := costmodel.DistillStorage(costmodel.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if ta.TagBytes >= ldisArea.WOCTagBytes {
		t.Errorf("Touché tag area %d B not below LDIS per-word %d B", ta.TagBytes, ldisArea.WOCTagBytes)
	}
	if ta.SavingsPercent <= 0 {
		t.Errorf("Touché reports no tag-area savings: %+v", ta)
	}

	// Equal miss ratio ± tolerance: the compressed tags trade area for
	// occasional superblock evictions, so allow a small regression but
	// no more.
	const tol = 1.015
	for _, r := range gateRows(t) {
		ld := orgCellByName(t, r, "ldis")
		tc := orgCellByName(t, r, "touche")
		if tc.Touche.Lookups == 0 {
			t.Errorf("%s: Touché tags never consulted", r.Benchmark)
		}
		if lm, tm := ld.Totals.MPKI(), tc.Totals.MPKI(); tm > lm*tol {
			t.Errorf("%s: touche MPKI %.3f exceeds ldis %.3f by more than %.1f%%",
				r.Benchmark, tm, lm, 100*(tol-1))
		}
		// Alias safety: every alias event must be a safe miss; hits
		// cannot exceed lookups.
		if tc.Touche.Hits > tc.Touche.Lookups {
			t.Errorf("%s: Touché hits %d exceed lookups %d", r.Benchmark, tc.Touche.Hits, tc.Touche.Lookups)
		}
	}
}

// TestOrgsCopyBackReducesMisses is the second acceptance gate: on the
// reuse-heavy bundled benchmarks, reuse-distance-gated copy-back of
// clean L1 victims must strictly reduce L2 misses versus the plain
// distill cache, and must never blow past a small regression bound on
// any other benchmark. The deltas are deterministic at the pinned
// operating point.
func TestOrgsCopyBackReducesMisses(t *testing.T) {
	reuseHeavy := map[string]bool{"mcf": true, "twolf": true, "art": true}
	seen := 0
	for _, r := range gateRows(t) {
		ld := orgCellByName(t, r, "ldis")
		cb := orgCellByName(t, r, "copyback")
		t.Logf("%s: ldis %d, copyback %d misses (%d copybacks, %d far, %d cold)",
			r.Benchmark, ld.Totals.Misses, cb.Totals.Misses, cb.CopyBacks, cb.CopyBackFar, cb.CopyBackCold)
		if reuseHeavy[r.Benchmark] {
			seen++
			if cb.CopyBacks == 0 {
				t.Errorf("%s: no copy-backs admitted on a reuse-heavy benchmark", r.Benchmark)
			}
			if cb.Totals.Misses >= ld.Totals.Misses {
				t.Errorf("%s: copy-back did not reduce misses: %d >= %d",
					r.Benchmark, cb.Totals.Misses, ld.Totals.Misses)
			}
		} else if ld.Totals.Misses > 0 {
			// Elsewhere the predictor may not help, but it must stay
			// within a 1% miss regression.
			if float64(cb.Totals.Misses) > 1.01*float64(ld.Totals.Misses) {
				t.Errorf("%s: copy-back regressed misses beyond 1%%: %d vs %d",
					r.Benchmark, cb.Totals.Misses, ld.Totals.Misses)
			}
		}
	}
	if seen != len(reuseHeavy) {
		t.Errorf("only %d of %d reuse-heavy benchmarks present in the sweep", seen, len(reuseHeavy))
	}
}

// TestOrgsWayMemoEnergyGate is the third acceptance gate: way
// memoization must be functionally transparent (identical window
// totals to the base column on every benchmark) and its tag-probe
// energy must never exceed the memo-less baseline.
func TestOrgsWayMemoEnergyGate(t *testing.T) {
	for _, r := range gateRows(t) {
		base := orgCellByName(t, r, "base")
		wm := orgCellByName(t, r, "waymemo")
		if base.Totals != wm.Totals {
			t.Errorf("%s: way memo changed results: base %+v memo %+v", r.Benchmark, base.Totals, wm.Totals)
		}
		if wm.MemoRefs == 0 {
			t.Errorf("%s: memo never referenced", r.Benchmark)
		}
		e, err := costmodel.WayMemoEnergyFor(orgWays, wm.MemoRefs, wm.MemoHits)
		if err != nil {
			t.Fatalf("%s: %v", r.Benchmark, err)
		}
		if e.MemoNJ > e.BaselineNJ {
			t.Errorf("%s: memo tag energy %.1f nJ exceeds baseline %.1f nJ", r.Benchmark, e.MemoNJ, e.BaselineNJ)
		}
		t.Logf("%s: %d/%d memo hits, %.1f%% tag energy saved", r.Benchmark, wm.MemoHits, wm.MemoRefs, e.SavedPercent)
	}
}

// renderOrgs renders every orgs table into one string, the
// byte-identity unit of the determinism tests.
func renderOrgs(rows []OrgsRow, o Options) string {
	var b strings.Builder
	for _, t := range OrgsTables(rows, o) {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestOrgsDeterminism: the rendered tables are byte-identical across
// worker counts, batch sizes, and shard counts (the traditional
// columns shard; the distill columns fall back to sequential, which
// distill.Config.ShardExact declares).
func TestOrgsDeterminism(t *testing.T) {
	base := Options{Accesses: 60_000, WarmupFrac: 0.25, Benchmarks: []string{"mcf", "twolf"}}
	rows, err := Orgs(base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderOrgs(rows, base)

	variants := []Options{
		{Accesses: base.Accesses, WarmupFrac: base.WarmupFrac, Benchmarks: base.Benchmarks, Parallel: 4},
		{Accesses: base.Accesses, WarmupFrac: base.WarmupFrac, Benchmarks: base.Benchmarks, Parallel: 2, BatchSize: 512},
		{Accesses: base.Accesses, WarmupFrac: base.WarmupFrac, Benchmarks: base.Benchmarks, Shards: 4},
		{Accesses: base.Accesses, WarmupFrac: base.WarmupFrac, Benchmarks: base.Benchmarks, Parallel: 2, Shards: 2, BatchSize: 256},
	}
	for i, o := range variants {
		rows, err := Orgs(o)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderOrgs(rows, o); got != want {
			t.Errorf("variant %d (parallel=%d shards=%d batch=%d) diverged from sequential output",
				i, o.Parallel, o.Shards, o.BatchSize)
		}
	}
}

// TestOrgsCheckpointResume: a resumed orgs run replays every cell from
// the checkpoint and renders byte-identical tables.
func TestOrgsCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "orgs.ck")
	o := Options{Accesses: 60_000, WarmupFrac: 0.25, Benchmarks: []string{"mcf"}}

	ck, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Checkpoint = ck
	rows, err := Orgs(o)
	if err != nil {
		t.Fatal(err)
	}
	want := renderOrgs(rows, o)
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	o.Checkpoint = nil
	ck2, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	o.Checkpoint = ck2
	rows2, err := Orgs(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderOrgs(rows2, o); got != want {
		t.Error("resumed run diverged from the original")
	}
	if ck2.Replayed() != len(orgColumns) {
		t.Errorf("resumed run replayed %d cells, want all %d", ck2.Replayed(), len(orgColumns))
	}
}

// TestOrgsFingerprintCoversKnobs: every org knob must move the
// checkpoint fingerprint, and spelling out the defaults must not.
func TestOrgsFingerprintCoversKnobs(t *testing.T) {
	base := Options{Accesses: 60_000, WarmupFrac: 0.25}
	fp := base.Fingerprint()

	explicit := base
	explicit.OrgToucheSBLines = explicit.orgToucheSBLines()
	explicit.OrgCopyBackMaxReuse = explicit.orgCopyBackMaxReuse()
	explicit.OrgWayMemoEntries = explicit.orgWayMemoEntries()
	if explicit.Fingerprint() != fp {
		t.Error("explicit defaults changed the fingerprint")
	}

	mods := []func(*Options){
		func(o *Options) { o.OrgToucheSBLines = 8 },
		func(o *Options) { o.OrgCopyBackMaxReuse = 1 << 16 },
		func(o *Options) { o.OrgWayMemoEntries = 8 },
	}
	for i, mod := range mods {
		o := base
		mod(&o)
		if o.Fingerprint() == fp {
			t.Errorf("org knob %d does not affect the fingerprint", i)
		}
	}
}
