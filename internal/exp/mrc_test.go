package exp

import (
	"math"
	"path/filepath"
	"testing"

	"ldis/internal/cache"
	"ldis/internal/stats"
	"ldis/internal/workload"
)

// mrcFast returns options sized for test runs; 150k accesses keeps the
// SHARDS sample large enough for the 0.02 error budget.
func mrcFast(benchmarks ...string) Options {
	return Options{Accesses: 150_000, WarmupFrac: 0.25, Benchmarks: benchmarks}
}

// TestMRCShardsTolerance is the acceptance bound: on every registered
// benchmark — the paper's 16 and the cache-insensitive set alike — the
// SHARDS-sampled curve stays within 0.02 absolute miss ratio of the
// exact Mattson curve, at both granularities. make mrc-smoke runs this
// in CI.
func TestMRCShardsTolerance(t *testing.T) {
	rows, err := MRC(mrcFast(workload.Names()...))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.Names()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(workload.Names()))
	}
	for _, r := range rows {
		lineErr := stats.MaxAbsDiff(r.Exact.Line.Series(), r.Sampled.Line.Series())
		wordErr := stats.MaxAbsDiff(r.Exact.Word.Series(), r.Sampled.Word.Series())
		if math.IsNaN(lineErr) || math.IsNaN(wordErr) {
			t.Errorf("%s: empty curve (line err %v, word err %v)", r.Benchmark, lineErr, wordErr)
			continue
		}
		if lineErr > 0.02 {
			t.Errorf("%s: SHARDS line-grain error %.4f exceeds 0.02", r.Benchmark, lineErr)
		}
		if wordErr > 0.02 {
			t.Errorf("%s: SHARDS word-grain error %.4f exceeds 0.02", r.Benchmark, wordErr)
		}
		for _, c := range []struct {
			name string
			s    stats.Series
		}{
			{"exact line", r.Exact.Line.Series()},
			{"exact word", r.Exact.Word.Series()},
		} {
			if !c.s.NonIncreasing() {
				t.Errorf("%s: %s curve is not non-increasing", r.Benchmark, c.name)
			}
		}
		// Word grain dominates line grain: storing only used words can
		// never need more capacity for the same hit.
		for i, p := range r.Exact.Word.Points {
			if lp := r.Exact.Line.Points[i]; p.Y > lp.Y+1e-9 {
				t.Errorf("%s: word MR %.4f above line MR %.4f at %s",
					r.Benchmark, p.Y, lp.Y, stats.FormatBytes(p.X))
				break
			}
		}
	}
}

// simulatedMissRatio drives the same warmup/measure windows of a
// profile's data accesses through a real set-associative cache and
// returns the measured miss ratio — the independent ground truth for
// the curve spot check.
func simulatedMissRatio(t *testing.T, benchmark string, o Options, sizeMB float64) float64 {
	t.Helper()
	prof, err := workload.ByName(benchmark)
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(baselineConfig("spot", sizeMB))
	st := prof.Stream()
	var refs, misses float64
	for i := 0; i < o.Accesses; i++ {
		a, ok := st.Next()
		if !ok {
			break
		}
		if !a.Kind.IsData() {
			continue
		}
		hit := c.Access(a.Line(), a.Word(), a.IsWrite())
		if !hit {
			c.Install(a.Line(), a.Word(), a.IsWrite())
		}
		if i >= o.warmup() {
			refs++
			if !hit {
				misses++
			}
		}
	}
	if refs == 0 {
		t.Fatalf("%s: no measured references", benchmark)
	}
	return misses / refs
}

// TestMRCMatchesSimulation spot-checks the exact line-grain curve
// against full set-associative cache simulation at the paper's three
// capacities. The curve models a fully-associative LRU cache, so the
// simulated 2048-set cache can only be slightly worse (conflict
// misses); the tolerance covers that structural gap.
func TestMRCMatchesSimulation(t *testing.T) {
	benchmarks := []string{"sixtrack", "twolf", "health"}
	o := mrcFast(benchmarks...)
	rows, err := MRC(o)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.04
	for _, r := range rows {
		for _, sizeMB := range []float64{0.5, 1, 2} {
			curve := r.Exact.Line.MissRatioAt(sizeMB * (1 << 20))
			sim := simulatedMissRatio(t, r.Benchmark, o, sizeMB)
			if d := math.Abs(curve - sim); d > tol {
				t.Errorf("%s @ %gMB: curve MR %.4f vs simulated %.4f (|diff| %.4f > %.2f)",
					r.Benchmark, sizeMB, curve, sim, d, tol)
			}
		}
	}
}

// TestMRCDeterministic: two runs render byte-identical tables — the
// par fan-out and SHARDS hashing introduce no run-to-run variation.
func TestMRCDeterministic(t *testing.T) {
	render := func() string {
		rows, err := MRC(mrcFast("twolf", "vpr"))
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, tab := range MRCTables(rows) {
			out += tab.String() + "\n"
		}
		return out
	}
	if a, b := render(), render(); a != b {
		t.Error("mrc tables differ between identical runs")
	}
}

// TestMRCCheckpointResume: the mrc experiment round-trips its cells
// through the checkpoint — a resumed run replays instead of
// recomputing and renders identical output.
func TestMRCCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), CheckpointFile)
	o := mrcFast("twolf")
	run := func() ([]*stats.Table, *Checkpoint) {
		ck, err := OpenCheckpoint(path, o)
		if err != nil {
			t.Fatal(err)
		}
		ro := o
		ro.Checkpoint = ck
		tabs, err := Run("mrc", ro)
		if err != nil {
			t.Fatal(err)
		}
		if err := ck.Close(); err != nil {
			t.Fatal(err)
		}
		return tabs, ck
	}
	first, ck1 := run()
	if ck1.Recorded() != 2 {
		t.Fatalf("first run recorded %d cells, want 2", ck1.Recorded())
	}
	second, ck2 := run()
	if ck2.Replayed() != 2 {
		t.Fatalf("resumed run replayed %d cells, want 2", ck2.Replayed())
	}
	if len(first) != len(second) {
		t.Fatalf("table count changed across resume: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].String() != second[i].String() {
			t.Errorf("table %d differs after checkpoint replay", i)
		}
	}
}

// TestMRCOptionsValidate rejects broken MRC knobs with useful errors.
func TestMRCOptionsValidate(t *testing.T) {
	bad := []Options{
		{Accesses: 1000, MRCSampleRate: -0.5},
		{Accesses: 1000, MRCSampleRate: 1.5},
		{Accesses: 1000, MRCMaxSamples: -1},
		{Accesses: 1000, MRCResolution: -64},
		{Accesses: 1000, MRCMaxBytes: -1},
		{Accesses: 1000, MRCResolution: 1 << 20, MRCMaxBytes: 1 << 10},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: validate accepted %+v", i, o)
		}
	}
	ok := Options{Accesses: 1000, MRCSampleRate: 0.1, MRCMaxSamples: 100,
		MRCResolution: 64 << 10, MRCMaxBytes: 1 << 20}
	if err := ok.Validate(); err != nil {
		t.Errorf("validate rejected good options: %v", err)
	}
}

// TestMRCFingerprint: MRC knobs are result-affecting, so they must
// change the checkpoint fingerprint; explicit defaults must not.
func TestMRCFingerprint(t *testing.T) {
	base := Options{Accesses: 1000}
	explicit := Options{Accesses: 1000, MRCSampleRate: 0.1, MRCMaxSamples: 16 << 10,
		MRCResolution: 64 << 10, MRCMaxBytes: 4 << 20}
	if base.Fingerprint() != explicit.Fingerprint() {
		t.Error("explicit MRC defaults changed the fingerprint")
	}
	changed := base
	changed.MRCSampleRate = 0.2
	if base.Fingerprint() == changed.Fingerprint() {
		t.Error("MRCSampleRate change did not change the fingerprint")
	}
}
