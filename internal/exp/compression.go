package exp

import (
	"ldis/internal/cache"
	"ldis/internal/compress"
	"ldis/internal/hierarchy"
	"ldis/internal/mem"
	"ldis/internal/obs"
	"ldis/internal/stats"
	"ldis/internal/workload"
)

// Fig10Row is one benchmark's compressibility distribution (paper
// Figure 10): fractions of cache lines storable in 1/8, 1/4, 1/2, and
// full size, with (a) all words compressed and (b) only used words.
type Fig10Row struct {
	Benchmark string
	AllWords  [4]float64 // indexed by compress.Category
	UsedWords [4]float64
}

// Fig10 samples the baseline cache contents periodically (the paper
// samples every 10M instructions) and classifies every valid line under
// both whole-line and used-words-only compression.
func Fig10(o Options) ([]Fig10Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	const samples = 5
	_, rows, err := mapBenchmarks(o, func(prof *workload.Profile, co *obs.Cell) (Fig10Row, error) {
		vals := prof.Values()
		sys, c := tradSystem(cache.Config{Name: "base-1MB", SizeBytes: 1 << 20, Ways: 8}, co)
		st := prof.Stream()
		var all, used [4]uint64
		chunk := o.Accesses / samples
		if chunk == 0 {
			chunk = o.Accesses
		}
		for s := 0; s < samples; s++ {
			n := sys.Run(st, chunk)
			countSimAccesses(n)
			if n == 0 {
				break
			}
			c.VisitLines(func(la mem.LineAddr, fp mem.Footprint) {
				all[compress.Categorize(compress.LineBits(vals, la, mem.FullFootprint))]++
				mask := fp
				if mask == 0 {
					mask = mem.FootprintOfWord(0)
				}
				used[compress.Categorize(compress.LineBits(vals, la, mask))]++
			})
		}
		row := Fig10Row{Benchmark: prof.Name}
		var totAll, totUsed uint64
		for i := 0; i < 4; i++ {
			totAll += all[i]
			totUsed += used[i]
		}
		for i := 0; i < 4; i++ {
			if totAll > 0 {
				row.AllWords[i] = float64(all[i]) / float64(totAll)
			}
			if totUsed > 0 {
				row.UsedWords[i] = float64(used[i]) / float64(totUsed)
			}
		}
		return row, nil
	})
	return rows, err
}

func fig10Table(rows []Fig10Row) []*stats.Table {
	ta := stats.NewTable("Figure 10a: compressibility, all words",
		"benchmark", "1/8", "1/4", "1/2", "full")
	tb := stats.NewTable("Figure 10b: compressibility, used words only",
		"benchmark", "1/8", "1/4", "1/2", "full")
	for _, r := range rows {
		ta.AddRow(r.Benchmark, r.AllWords[0], r.AllWords[1], r.AllWords[2], r.AllWords[3])
		tb.AddRow(r.Benchmark, r.UsedWords[0], r.UsedWords[1], r.UsedWords[2], r.UsedWords[3])
	}
	return []*stats.Table{ta, tb}
}

// Fig11Row compares LDIS tag budgets, pure compression, and
// footprint-aware compression (paper Figure 11): % MPKI reduction.
type Fig11Row struct {
	Benchmark                     string
	LDIS3x, LDIS4x, CMPR4x, FAC4x float64
}

// Fig11 runs the four configurations of the compression study plus the
// shared baseline, one scheduler cell each.
func Fig11(o Options) ([]Fig11Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	names, grid, err := runGrid(o, 5, func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		switch col {
		case 0:
			base, _ := baselineMPKI(prof, o, co)
			return base.MPKI(), nil
		case 1:
			// LDIS-3xTags: 2 WOC ways (6+16 = 22 tags/set ~ 3x baseline).
			sys, _ := distillSystem(ldisMTRC(2, prof.Seed), co)
			return runWindowed(sys, prof, o, co).MPKI(), nil
		case 2:
			// LDIS-4xTags: 3 WOC ways (5+24 = 29 tags/set ~ 4x baseline).
			sys, _ := distillSystem(ldisMTRC(3, prof.Seed), co)
			return runWindowed(sys, prof, o, co).MPKI(), nil
		case 3:
			// CMPR-4xTags: compressed traditional cache, perfect LRU.
			sys, _ := hierarchy.Compressed(compress.DefaultCMPRConfig(), prof.Values())
			return runWindowed(sys, prof, o, co).MPKI(), nil
		default:
			// FAC-4xTags: distill cache with 3 WOC ways + compression.
			fcfg := ldisMTRC(3, prof.Seed)
			fcfg.Obs = co
			sys, _ := hierarchy.FAC(fcfg, prof.Values())
			return runWindowed(sys, prof, o, co).MPKI(), nil
		}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig11Row, len(grid))
	for i, name := range names {
		g := grid[i]
		rows[i] = Fig11Row{
			Benchmark: name,
			LDIS3x:    stats.PctReduction(g[0], g[1]),
			LDIS4x:    stats.PctReduction(g[0], g[2]),
			CMPR4x:    stats.PctReduction(g[0], g[3]),
			FAC4x:     stats.PctReduction(g[0], g[4]),
		}
	}
	return rows, nil
}

// SummarizeFig11 reduces the rows to the average % reduction of the
// arithmetic-mean MPKI, weighting by baseline MPKI like the paper's avg.
func SummarizeFig11(rows []Fig11Row, baselines map[string]float64) (ldis3, ldis4, cmpr, fac float64) {
	var base, s3, s4, sc, sf float64
	for _, r := range rows {
		b := baselines[r.Benchmark]
		base += b
		s3 += b * (1 - r.LDIS3x/100)
		s4 += b * (1 - r.LDIS4x/100)
		sc += b * (1 - r.CMPR4x/100)
		sf += b * (1 - r.FAC4x/100)
	}
	if base == 0 {
		return 0, 0, 0, 0
	}
	return 100 * (base - s3) / base, 100 * (base - s4) / base,
		100 * (base - sc) / base, 100 * (base - sf) / base
}

func fig11Table(rows []Fig11Row) *stats.Table {
	t := stats.NewTable("Figure 11: % MPKI reduction: LDIS vs compression vs FAC",
		"benchmark", "LDIS-3xTags", "LDIS-4xTags", "CMPR-4xTags", "FAC-4xTags")
	var a3, a4, ac, af float64
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.LDIS3x, r.LDIS4x, r.CMPR4x, r.FAC4x)
		a3 += r.LDIS3x
		a4 += r.LDIS4x
		ac += r.CMPR4x
		af += r.FAC4x
	}
	if n := float64(len(rows)); n > 0 {
		t.AddRow("mean", a3/n, a4/n, ac/n, af/n)
	}
	return t
}

func init() {
	registerExp("fig10", "compressibility of cache lines (all vs used words)", func(o Options) ([]*stats.Table, error) {
		rows, err := Fig10(o)
		if err != nil {
			return nil, err
		}
		return fig10Table(rows), nil
	})
	registerExp("fig11", "LDIS vs compression vs footprint-aware compression", func(o Options) ([]*stats.Table, error) {
		rows, err := Fig11(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{fig11Table(rows)}, nil
	})
}
