package exp

import (
	"fmt"

	"ldis/internal/cache"
	"ldis/internal/mem"
	"ldis/internal/obs"
	"ldis/internal/stats"
	"ldis/internal/workload"
)

// Fig1Row is one benchmark's words-used distribution in the baseline
// cache (paper Figure 1): fraction of evicted lines using 1..8 words,
// plus the mean.
type Fig1Row struct {
	Benchmark string
	Fractions [9]float64 // index = words used (0 unused)
	Mean      float64
}

// Fig1 measures the distribution of words used per cache line for the
// baseline 1MB 8-way L2.
func Fig1(o Options) ([]Fig1Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	_, rows, err := mapBenchmarks(o, func(prof *workload.Profile, co *obs.Cell) (Fig1Row, error) {
		_, c := baselineMPKI(prof, o, co)
		h := c.Stats().WordsUsedAtEvict
		row := Fig1Row{Benchmark: prof.Name, Mean: h.Mean()}
		for wi := 0; wi <= 8; wi++ {
			row.Fractions[wi] = h.Fraction(wi)
		}
		return row, nil
	})
	return rows, err
}

func fig1Table(rows []Fig1Row) *stats.Table {
	t := stats.NewTable("Figure 1: distribution of words used per cache line (baseline 1MB 8-way)",
		"benchmark", "1w", "2w", "3w", "4w", "5w", "6w", "7w", "8w", "avg words")
	for _, r := range rows {
		cells := []interface{}{r.Benchmark}
		for wi := 1; wi <= 8; wi++ {
			cells = append(cells, fmt.Sprintf("%.2f", r.Fractions[wi]))
		}
		cells = append(cells, r.Mean)
		t.AddRow(cells...)
	}
	return t
}

// Fig2Row is one benchmark's distribution of the maximum recency
// position before footprint-change (paper Figure 2).
type Fig2Row struct {
	Benchmark string
	Fractions [8]float64 // recency positions 0..7
}

// Pos0to3 returns the mass at positions 0-3 (the paper reports 83% on
// average).
func (r Fig2Row) Pos0to3() float64 {
	return r.Fractions[0] + r.Fractions[1] + r.Fractions[2] + r.Fractions[3]
}

// Pos6to7 returns the mass at positions 6-7 (paper: <12%).
func (r Fig2Row) Pos6to7() float64 { return r.Fractions[6] + r.Fractions[7] }

// Fig2 measures where in the LRU stack footprints stop changing.
func Fig2(o Options) ([]Fig2Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	_, rows, err := mapBenchmarks(o, func(prof *workload.Profile, co *obs.Cell) (Fig2Row, error) {
		_, c := baselineMPKI(prof, o, co)
		h := c.Stats().FPChangePos
		row := Fig2Row{Benchmark: prof.Name}
		for p := 0; p < 8; p++ {
			row.Fractions[p] = h.Fraction(p)
		}
		return row, nil
	})
	return rows, err
}

func fig2Table(rows []Fig2Row) *stats.Table {
	t := stats.NewTable("Figure 2: max recency position before footprint-change (0=MRU, 7=LRU)",
		"benchmark", "p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p0-3", "p6-7")
	var sum03, sum67 float64
	for _, r := range rows {
		cells := []interface{}{r.Benchmark}
		for p := 0; p < 8; p++ {
			cells = append(cells, fmt.Sprintf("%.2f", r.Fractions[p]))
		}
		cells = append(cells, fmt.Sprintf("%.2f", r.Pos0to3()), fmt.Sprintf("%.2f", r.Pos6to7()))
		t.AddRow(cells...)
		sum03 += r.Pos0to3()
		sum67 += r.Pos6to7()
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		t.AddRow("avg", "", "", "", "", "", "", "", "",
			fmt.Sprintf("%.2f", sum03/n), fmt.Sprintf("%.2f", sum67/n))
	}
	return t
}

// Table2Row is one benchmark's baseline MPKI and compulsory-miss
// fraction (paper Table 2).
type Table2Row struct {
	Benchmark     string
	MPKI          float64
	CompulsoryPct float64
	PaperMPKI     float64
}

// Table2 measures baseline MPKI and compulsory fraction.
func Table2(o Options) ([]Table2Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	_, rows, err := mapBenchmarks(o, func(prof *workload.Profile, co *obs.Cell) (Table2Row, error) {
		sys, _ := tradSystem(cache.Config{Name: "base-1MB", SizeBytes: 1 << 20, Ways: 8}, co)
		w := runWindowed(sys, prof, o, co)
		comp := 0.0
		if m := sys.L2.Misses(); m > 0 {
			// Compulsory fraction over the whole run, as the paper does.
			comp = 100 * float64(sys.CompulsoryMisses) / float64(m)
		}
		return Table2Row{
			Benchmark:     prof.Name,
			MPKI:          w.MPKI(),
			CompulsoryPct: comp,
			PaperMPKI:     prof.PaperMPKI,
		}, nil
	})
	return rows, err
}

func table2Table(rows []Table2Row) *stats.Table {
	t := stats.NewTable("Table 2: benchmark summary (baseline 1MB 8-way L2)",
		"benchmark", "MPKI", "compulsory %", "paper MPKI")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.MPKI, r.CompulsoryPct, r.PaperMPKI)
	}
	return t
}

// Table6Row is one benchmark's average words used at several cache
// sizes (paper Table 6 / Appendix B).
type Table6Row struct {
	Benchmark string
	// AvgWords maps size label -> mean words used at eviction.
	AvgWords map[string]float64
}

// Table6Sizes are the paper's capacities in MB.
var Table6Sizes = []float64{0.75, 1.0, 1.25, 1.5, 2.0}

// Table6 measures how word usage changes with cache capacity: one
// scheduler cell per (benchmark, cache size).
func Table6(o Options) ([]Table6Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	names, grid, err := runGrid(o, len(Table6Sizes), func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		sz := Table6Sizes[col]
		sys, c := tradSystem(baselineConfig(fmt.Sprintf("base-%.2fMB", sz), sz), co)
		runWindowed(sys, prof, o, co)
		// Prefer eviction-time footprints (the paper's metric); when
		// the working set fits and evictions are scarce, fall back to
		// the footprints of resident lines.
		avg := c.Stats().WordsUsedAtEvict.Mean()
		if c.Stats().WordsUsedAtEvict.Total() < 1000 {
			var sum, n float64
			c.VisitLines(func(_ mem.LineAddr, fp mem.Footprint) {
				sum += float64(fp.Count())
				n++
			})
			if n > 0 {
				avg = sum / n
			}
		}
		return avg, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table6Row, len(grid))
	for i, name := range names {
		row := Table6Row{Benchmark: name, AvgWords: map[string]float64{}}
		for col, sz := range Table6Sizes {
			row.AvgWords[sizeLabel(sz)] = grid[i][col]
		}
		rows[i] = row
	}
	return rows, nil
}

func sizeLabel(sz float64) string { return fmt.Sprintf("%.2fMB", sz) }

func table6Table(rows []Table6Row) *stats.Table {
	headers := []string{"benchmark"}
	for _, sz := range Table6Sizes {
		headers = append(headers, sizeLabel(sz))
	}
	t := stats.NewTable("Table 6: average words used per line vs cache size", headers...)
	for _, r := range rows {
		cells := []interface{}{r.Benchmark}
		for _, sz := range Table6Sizes {
			cells = append(cells, r.AvgWords[sizeLabel(sz)])
		}
		t.AddRow(cells...)
	}
	return t
}

func init() {
	registerExp("fig1", "distribution of words used per cache line (baseline)", func(o Options) ([]*stats.Table, error) {
		rows, err := Fig1(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{fig1Table(rows)}, nil
	})
	registerExp("fig2", "max recency position before footprint-change", func(o Options) ([]*stats.Table, error) {
		rows, err := Fig2(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{fig2Table(rows)}, nil
	})
	registerExp("table2", "baseline MPKI and compulsory misses", func(o Options) ([]*stats.Table, error) {
		rows, err := Table2(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{table2Table(rows)}, nil
	})
	registerExp("table6", "average words used vs cache size", func(o Options) ([]*stats.Table, error) {
		rows, err := Table6(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{table6Table(rows)}, nil
	})
}
