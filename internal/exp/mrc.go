package exp

import (
	"fmt"

	"ldis/internal/mrc"
	"ldis/internal/obs"
	"ldis/internal/stats"
	"ldis/internal/trace"
	"ldis/internal/workload"
)

// The mrc experiment builds whole miss-ratio curves in one trace pass
// per benchmark (internal/mrc): where fig8 probes three discrete
// (size, config) points with full simulations, the curve engine
// answers "what would the miss ratio be at capacity C?" for every C on
// the grid at once, at line grain and at distilled word grain. The
// horizontal gap between those two curves at equal miss ratio is the
// effective capacity distillation reclaims — the paper's central claim
// measured directly, per benchmark.
//
// Each benchmark runs two scheduler cells: column 0 is the exact
// Mattson stack, column 1 the SHARDS fixed-rate + fixed-size sampled
// variant, so the rendered tables double as a standing validation that
// sampling stays inside its error budget.

// mrcCell is one cell result: both granularities from one engine pass.
// Exported fields gob round-trip through the checkpoint.
type mrcCell struct {
	Line mrc.Curve
	Word mrc.Curve
}

// MRCResult is one benchmark's pair of cells.
type MRCResult struct {
	Benchmark      string
	Exact, Sampled mrcCell
}

// MRC computes the per-benchmark curves. Column 0 is exact, column 1
// SHARDS-sampled with Options.MRCSampleRate / MRCMaxSamples.
func MRC(o Options) ([]MRCResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	names, grid, err := runGrid(o, 2, func(prof *workload.Profile, col int, co *obs.Cell) (mrcCell, error) {
		cfg := mrc.Config{
			MaxBytes:        o.mrcMaxBytes(),
			ResolutionBytes: o.mrcResolution(),
			Obs:             co,
		}
		label := "exact"
		if col == 1 {
			cfg.SampleRate = o.mrcSampleRate()
			cfg.MaxSamples = o.mrcMaxSamples()
			cfg.Seed = prof.Seed ^ 0x5ac0ffee
			label = "shards"
		}
		eng, err := mrc.New(cfg, o.Accesses)
		if err != nil {
			return mrcCell{}, err
		}
		bs := cellStream(prof, co)
		buf := make([]trace.Record, o.batchSize())
		drive := func(n int) {
			done := 0
			for done < n {
				want := len(buf)
				if want > n-done {
					want = n - done
				}
				got := bs.NextBatch(buf[:want])
				eng.AccessBatch(buf[:got])
				done += got
				if got < want {
					return
				}
			}
		}
		drive(o.warmup())
		eng.ResetCounts()
		drive(o.measure())
		countSimAccesses(o.Accesses)
		return mrcCell{
			Line: eng.LineCurve("line " + label),
			Word: eng.WordCurve("word " + label),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]MRCResult, len(names))
	for i, name := range names {
		rows[i] = MRCResult{Benchmark: name, Exact: grid[i][0], Sampled: grid[i][1]}
	}
	return rows, nil
}

// EffectiveCapacityGain returns how much smaller a word-grain
// (distilled) cache can be while matching the line-grain miss ratio at
// the reference capacity: refBytes divided by the smallest curve
// capacity where the word curve's miss ratio is at or below the line
// curve's at refBytes. 1 means no gain; NaN/0 never occur on non-empty
// curves (the word curve at refBytes is never above the line curve by
// more than sampling noise, and the scan falls back to refBytes).
func EffectiveCapacityGain(line, word mrc.Curve, refBytes float64) float64 {
	target := line.MissRatioAt(refBytes)
	for _, p := range word.Points {
		if p.Y <= target+1e-12 {
			return refBytes / p.X
		}
	}
	return 1
}

// mrcSummaryTable renders the headline row per benchmark: exact miss
// ratios at the paper's three capacities, the word-grain ratio at 1MB,
// the effective-capacity gain at 1MB, and the SHARDS validation error.
func mrcSummaryTable(rows []MRCResult) *stats.Table {
	t := stats.NewTable(
		"MRC summary: exact line/word miss ratios, distilled capacity gain at 1MB, SHARDS max abs error",
		"benchmark", "line@0.5MB", "line@1MB", "line@2MB", "word@1MB",
		"gain@1MB", "err(line)", "err(word)")
	for _, r := range rows {
		line, word := r.Exact.Line, r.Exact.Word
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%.4f", line.MissRatioAt(0.5*(1<<20))),
			fmt.Sprintf("%.4f", line.MissRatioAt(1<<20)),
			fmt.Sprintf("%.4f", line.MissRatioAt(2<<20)),
			fmt.Sprintf("%.4f", word.MissRatioAt(1<<20)),
			fmt.Sprintf("%.2fx", EffectiveCapacityGain(line, word, 1<<20)),
			fmt.Sprintf("%.4f", stats.MaxAbsDiff(line.Series(), r.Sampled.Line.Series())),
			fmt.Sprintf("%.4f", stats.MaxAbsDiff(word.Series(), r.Sampled.Word.Series())))
	}
	return t
}

// MRCTables renders the summary plus one four-series curve table per
// benchmark.
func MRCTables(rows []MRCResult) []*stats.Table {
	tables := []*stats.Table{mrcSummaryTable(rows)}
	for _, r := range rows {
		tables = append(tables, stats.CurveTable(
			"MRC: "+r.Benchmark, "capacity", stats.FormatBytes,
			r.Exact.Line.Series(), r.Exact.Word.Series(),
			r.Sampled.Line.Series(), r.Sampled.Word.Series()))
	}
	return tables
}

func init() {
	registerExp("mrc", "miss-ratio curves: exact Mattson stack + SHARDS sampling, line vs distilled word grain", func(o Options) ([]*stats.Table, error) {
		rows, err := MRC(o)
		if err != nil {
			return nil, err
		}
		return MRCTables(rows), nil
	})
}
