// Package exp implements one experiment per figure and table of the
// paper's evaluation. Each experiment runs the calibrated synthetic
// benchmarks through the appropriate cache organizations and renders
// the same rows/series the paper reports. DESIGN.md maps experiment ids
// to paper content; EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ldis/internal/cache"
	"ldis/internal/distill"
	"ldis/internal/hierarchy"
	"ldis/internal/obs"
	"ldis/internal/partition"
	"ldis/internal/sampler"
	"ldis/internal/stats"
	"ldis/internal/trace"
	"ldis/internal/workload"
)

// Options control experiment scale. The defaults trade fidelity for
// runtime; benches and the CLI can raise Accesses.
type Options struct {
	// Accesses per benchmark per configuration.
	Accesses int
	// WarmupFrac is the fraction of accesses excluded from measurement.
	WarmupFrac float64
	// Benchmarks to run (defaults to the paper's 16).
	Benchmarks []string
	// Parallel caps the worker goroutines running (benchmark ×
	// configuration) simulation cells concurrently; 0 means GOMAXPROCS.
	// Results are deterministic regardless of the setting.
	Parallel int
	// Shards splits each shardable cell's cache state across this many
	// workers by line-address hash; 0 or 1 means sequential. Must be a
	// power of two at most hierarchy.MaxShards. Shard-exact
	// organizations produce byte-identical results at any setting (the
	// equivalence is enforced by tests), so Shards — like Parallel — is
	// a scheduling knob, excluded from Fingerprint and ManifestParams.
	Shards int
	// BatchSize is the record-block size of the batched access
	// pipeline; 0 means trace.DefaultBatchSize. It cannot change
	// results and is likewise excluded from the fingerprint.
	BatchSize int

	// KeepGoing runs every cell to completion instead of aborting the
	// sweep at the first failure. Failed cells are recorded in
	// Failures; benchmarks with a failed cell are pruned from the
	// results so healthy rows render exactly as in a fault-free run.
	KeepGoing bool
	// Retries gives each failing cell this many extra attempts before
	// its failure counts. Cells are pure functions of their inputs,
	// so retries only matter against injected or external transient
	// faults.
	Retries int
	// FailBudget, when positive and KeepGoing is set, abandons the
	// sweep once this many cells have failed; 0 means no limit.
	FailBudget int
	// Failures collects per-cell failures in keep-going mode. Left
	// nil, validate installs a fresh log; callers that want to read
	// the failures afterwards supply their own.
	Failures *FailureLog
	// Checkpoint, when non-nil, replays already-completed cells from
	// the checkpoint file and appends each newly completed cell to
	// it, making the sweep resumable after a crash or kill.
	Checkpoint *Checkpoint
	// FaultSeed, when nonzero, deterministically panics a seeded
	// subset of cells via internal/faultinject — the chaos-testing
	// hook. 0 disables injection.
	FaultSeed uint64

	// Obs, when non-nil, receives per-cell metrics, span timings,
	// scheduler counters, and progress for the whole sweep. A nil Obs
	// costs nothing: every handle downstream is a nil no-op. Obs is
	// reporting-only and deliberately excluded from Fingerprint —
	// toggling observability never invalidates a checkpoint.
	Obs *obs.Run

	// MRCSampleRate is the SHARDS spatial sampling rate in (0, 1) used
	// by the sampled column of the mrc experiment; 0 means the default
	// (see mrcSampleRate). The exact column ignores it.
	MRCSampleRate float64
	// MRCMaxSamples bounds concurrently tracked lines in the sampled
	// column (SHARDS fixed-size mode); 0 means the default.
	MRCMaxSamples int
	// MRCResolution is the capacity step of the miss-ratio curves in
	// bytes; 0 means the default (64KB).
	MRCResolution int
	// MRCMaxBytes is the largest curve capacity in bytes; 0 means the
	// default (4MB).
	MRCMaxBytes int

	// Tenants selects the co-running benchmarks of the partition
	// experiment's tenant mix (2..partition.MaxTenants workload names);
	// empty means the experiment's bundled scenarios. Other
	// experiments ignore it.
	Tenants []string
	// PartitionPolicy restricts the partition experiment to one policy
	// column ("static", "ucp", or "ldis"); empty runs all three.
	PartitionPolicy string
	// EpochAccesses is the partition controller's epoch length in
	// accesses; 0 means the default (see epochAccesses).
	EpochAccesses int

	// OrgToucheSBLines is the orgs experiment's Touché superblock size
	// in lines (power of two >= 2); 0 means the default (4).
	OrgToucheSBLines int
	// OrgCopyBackMaxReuse is the orgs experiment's copy-back admission
	// window in bytes; 0 means the shared cache's size (1MB).
	OrgCopyBackMaxReuse int
	// OrgWayMemoEntries is the orgs experiment's way-memo entries per
	// cache set (power of two in [1, 64]); 0 means the default (4).
	OrgWayMemoEntries int

	// expID is the registry id of the experiment being run, set by
	// Run; it keys checkpoint records and failure rows.
	expID string
}

// DefaultOptions returns a configuration good for interactive use.
func DefaultOptions() Options {
	return Options{Accesses: 1_000_000, WarmupFrac: 0.25}
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.MainNames
}

func (o Options) warmup() int  { return int(float64(o.Accesses) * o.WarmupFrac) }
func (o Options) measure() int { return o.Accesses - o.warmup() }

func (o Options) shards() int {
	if o.Shards <= 1 {
		return 1
	}
	return o.Shards
}

func (o Options) batchSize() int {
	if o.BatchSize == 0 {
		return trace.DefaultBatchSize
	}
	return o.BatchSize
}

// mrc option accessors: zero means "default", and the same defaulted
// values feed both the engine configs and the checkpoint fingerprint,
// so an explicit default and an implicit one fingerprint identically.

func (o Options) mrcSampleRate() float64 {
	if o.MRCSampleRate == 0 {
		// 0.1 keeps the SHARDS curve within the 0.02 error budget on
		// every registered benchmark even at short (150k-access) test
		// traces; production-scale MRC studies can lower it.
		return 0.1
	}
	return o.MRCSampleRate
}

func (o Options) mrcMaxSamples() int {
	if o.MRCMaxSamples == 0 {
		return 16 << 10
	}
	return o.MRCMaxSamples
}

func (o Options) mrcResolution() int {
	if o.MRCResolution == 0 {
		return 64 << 10
	}
	return o.MRCResolution
}

func (o Options) mrcMaxBytes() int {
	if o.MRCMaxBytes == 0 {
		return 4 << 20
	}
	return o.MRCMaxBytes
}

// orgs option accessors: zero means "default", and the defaulted
// values feed both the cell configs and the fingerprint, so explicit
// defaults and implicit ones checkpoint identically.

func (o Options) orgToucheSBLines() int {
	if o.OrgToucheSBLines == 0 {
		return 4
	}
	return o.OrgToucheSBLines
}

func (o Options) orgCopyBackMaxReuse() int {
	if o.OrgCopyBackMaxReuse == 0 {
		return orgSizeBytes
	}
	return o.OrgCopyBackMaxReuse
}

func (o Options) orgWayMemoEntries() int {
	if o.OrgWayMemoEntries == 0 {
		return 4
	}
	return o.OrgWayMemoEntries
}

func (o Options) epochAccesses() int {
	if o.EpochAccesses == 0 {
		// ~10 epochs inside a default 100k-access smoke run: enough
		// decisions for the agreement gate to be meaningful, short
		// enough that the controller adapts within a test trace.
		return 10_000
	}
	return o.EpochAccesses
}

// OptionError is one diagnosed problem with an Options value: the
// offending field plus a human-readable message. Validate returns all
// of them joined, so callers (both CLIs) can print the complete
// problem list in one pass instead of fixing flags one at a time.
type OptionError struct {
	Field string // Options field name ("Accesses", "MRCSampleRate", ...)
	Msg   string
}

func (e *OptionError) Error() string { return "exp: " + e.Field + ": " + e.Msg }

// Validate checks every option and normalizes the ones with sensible
// defaults (a KeepGoing run with no Failures log gets a fresh one).
// It returns nil or an errors.Join of *OptionError values — one per
// problem found, never just the first.
func (o *Options) Validate() error {
	var problems []error
	bad := func(field, format string, args ...any) {
		problems = append(problems, &OptionError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	if o.Accesses <= 0 {
		bad("Accesses", "must be positive, got %d", o.Accesses)
	}
	if o.WarmupFrac < 0 || o.WarmupFrac >= 1 {
		bad("WarmupFrac", "%v out of [0,1)", o.WarmupFrac)
	}
	if o.Parallel < 0 {
		bad("Parallel", "must be >= 0, got %d", o.Parallel)
	}
	if o.Shards < 0 || o.Shards > hierarchy.MaxShards || (o.Shards > 0 && o.Shards&(o.Shards-1) != 0) {
		bad("Shards", "must be a power of two in [1, %d], or 0 for sequential; got %d", hierarchy.MaxShards, o.Shards)
	}
	if o.BatchSize < 0 {
		bad("BatchSize", "must be >= 0, got %d", o.BatchSize)
	}
	if o.Retries < 0 {
		bad("Retries", "must be >= 0, got %d", o.Retries)
	}
	if o.FailBudget < 0 {
		bad("FailBudget", "must be >= 0, got %d", o.FailBudget)
	}
	if (o.MRCSampleRate < 0 || o.MRCSampleRate >= 1) && o.MRCSampleRate != 0 {
		bad("MRCSampleRate", "%v outside (0,1); the sampled column needs a real sampling rate", o.MRCSampleRate)
	}
	if o.MRCMaxSamples < 0 {
		bad("MRCMaxSamples", "must be >= 0, got %d", o.MRCMaxSamples)
	}
	if o.MRCResolution < 0 || o.MRCMaxBytes < 0 {
		bad("MRCResolution", "MRC curve geometry must be >= 0, got resolution %d max %d", o.MRCResolution, o.MRCMaxBytes)
	} else if o.mrcMaxBytes() < o.mrcResolution() {
		bad("MRCMaxBytes", "%d below MRCResolution %d", o.mrcMaxBytes(), o.mrcResolution())
	}
	if o.KeepGoing && o.Failures == nil {
		o.Failures = NewFailureLog()
	}
	for _, b := range o.Benchmarks {
		if _, err := workload.ByName(b); err != nil {
			problems = append(problems, err)
		}
	}
	if len(o.Tenants) > 0 {
		if len(o.Tenants) < 2 || len(o.Tenants) > partition.MaxTenants {
			bad("Tenants", "a tenant mix needs 2..%d workloads, got %d", partition.MaxTenants, len(o.Tenants))
		}
		for _, b := range o.Tenants {
			if _, err := workload.ByName(b); err != nil {
				problems = append(problems, err)
			}
		}
	}
	if o.PartitionPolicy != "" {
		if _, ok := partition.ByName(o.PartitionPolicy); !ok {
			bad("PartitionPolicy", "unknown policy %q (have %s)", o.PartitionPolicy, strings.Join(partition.PolicyNames, ", "))
		}
	}
	if o.EpochAccesses < 0 {
		bad("EpochAccesses", "must be >= 0, got %d", o.EpochAccesses)
	}
	if s := o.OrgToucheSBLines; s != 0 && (s < 2 || s&(s-1) != 0) {
		bad("OrgToucheSBLines", "superblock of %d lines not a power of two >= 2", s)
	}
	if o.OrgCopyBackMaxReuse < 0 {
		bad("OrgCopyBackMaxReuse", "must be >= 0, got %d", o.OrgCopyBackMaxReuse)
	}
	if e := o.OrgWayMemoEntries; e != 0 && (e < 1 || e > 64 || e&(e-1) != 0) {
		bad("OrgWayMemoEntries", "%d not a power of two in [1, 64]", e)
	}
	return errors.Join(problems...)
}

// baselineConfig builds a traditional cache config of the given size in
// megabytes: the paper grows capacity by adding ways at a fixed 2048
// sets (its 0.75MB LOC is 6 ways of 2048 sets), which keeps every size
// realizable with a power-of-two set count.
func baselineConfig(name string, sizeMB float64) cache.Config {
	const sets = 2048
	bytes := int(sizeMB * (1 << 20))
	ways := bytes / (64 * sets)
	return cache.Config{Name: name, SizeBytes: ways * 64 * sets, Ways: ways}
}

// LDIS configuration variants (Figure 6).
func ldisBase(wocWays int, seed uint64) distill.Config {
	return distill.Config{
		Name: "ldis-base", SizeBytes: 1 << 20, Ways: 8, WOCWays: wocWays, Seed: seed,
	}
}

func ldisMT(wocWays int, seed uint64) distill.Config {
	c := ldisBase(wocWays, seed)
	c.Name = "ldis-mt"
	c.MedianThreshold = true
	return c
}

func ldisMTRC(wocWays int, seed uint64) distill.Config {
	c := ldisMT(wocWays, seed)
	c.Name = "ldis-mt-rc"
	c.Reverter = true
	// The paper's PSEL hysteresis band (64..192) is tuned for 250M
	// instruction traces; our runs are 10-100x shorter, so low-MPKI
	// benchmarks would never accumulate enough leader-set misses to
	// cross it. A narrower band (±16 around the midpoint) preserves the
	// hysteresis mechanism while converging at our trace lengths.
	sc := sampler.DefaultConfig(c.Sets())
	sc.LowWatermark = 112
	sc.HighWatermark = 144
	c.SamplerConfig = &sc
	return c
}

// timedStream wraps a cell's record stream so every NextBatch refill is
// charged to the cell's decode span and the package-wide decode-time
// counter: manifests report record generation separately from
// simulation, and -throughput mode subtracts it from the simulate
// figure.
type timedStream struct {
	bs trace.BatchStream
	sp *obs.Spans
}

func (t *timedStream) NextBatch(dst []trace.Record) int {
	start := decodeClock.Nanos()
	tok := t.sp.Begin(obs.StageDecode)
	n := t.bs.NextBatch(dst)
	t.sp.End(obs.StageDecode, tok)
	countDecodeNanos(decodeClock.Nanos() - start)
	return n
}

// cellStream builds the timed batch stream for one cell.
func cellStream(prof *workload.Profile, co *obs.Cell) *timedStream {
	return &timedStream{bs: trace.Batched(prof.Stream()), sp: co.Spans()}
}

// driveBatches feeds up to n records from bs into sys in buf-sized
// blocks, returning the count actually driven (short on stream end).
func driveBatches(sys *hierarchy.System, bs trace.BatchStream, n int, buf []trace.Record) int {
	done := 0
	for done < n {
		want := len(buf)
		if want > n-done {
			want = n - done
		}
		got := bs.NextBatch(buf[:want])
		sys.DoBatch(buf[:got])
		done += got
		if got < want {
			break
		}
	}
	return done
}

// runWindowed drives a profile through a system with warmup, returning
// the measurement window. The drive is batched: records flow in
// o.batchSize() blocks from the stream into System.DoBatch, with the
// same block schedule — ceil(warmup/B) then ceil(measure/B) refills —
// as the sharded path, so manifests agree on span counts either way.
func runWindowed(sys *hierarchy.System, prof *workload.Profile, o Options, co *obs.Cell) *hierarchy.Window {
	bs := cellStream(prof, co)
	buf := make([]trace.Record, o.batchSize())
	n := driveBatches(sys, bs, o.warmup(), buf)
	w := sys.StartWindow()
	n += driveBatches(sys, bs, o.measure(), buf)
	countSimAccesses(n)
	return w
}

// runTradWindowed runs one traditional-cache cell, sharded across
// o.Shards workers when requested. The traditional organization is
// always shard-exact, so the sharded result is byte-identical to the
// sequential one; it returns the measurement-window totals and the
// (merged) cache.
func runTradWindowed(cfg cache.Config, prof *workload.Profile, o Options, co *obs.Cell) (hierarchy.WindowTotals, *cache.Cache) {
	if o.shards() == 1 {
		sys, c := tradSystem(cfg, co)
		return runWindowed(sys, prof, o, co).Totals(), c
	}
	run, err := hierarchy.RunSharded(o.shards(), o.batchSize(), o.warmup(), o.measure(), cellStream(prof, co),
		func(shard int) *hierarchy.System {
			sys, _ := tradSystem(cfg, co)
			return sys
		})
	if err != nil {
		// Options are validated and the traditional organization is
		// shard-exact, so only a panicking shard worker lands here; the
		// cell-isolation layer above turns the panic back into a cell
		// failure.
		panic(err)
	}
	countSimAccesses(run.Done)
	return run.Window, run.Systems[0].L2.(*hierarchy.TradL2).C
}

// tradSystem builds a traditional-cache system with the cell's
// observability wired in.
func tradSystem(cfg cache.Config, co *obs.Cell) (*hierarchy.System, *cache.Cache) {
	cfg.Obs = co
	return hierarchy.Traditional(cfg)
}

// distillSystem builds a distill-cache system with the cell's
// observability wired in.
func distillSystem(cfg distill.Config, co *obs.Cell) (*hierarchy.System, *distill.Cache) {
	cfg.Obs = co
	return hierarchy.Distill(cfg)
}

// baselineMPKI runs the 1MB 8-way baseline (sharded when o.Shards asks
// for it) and returns the measurement-window totals.
func baselineMPKI(prof *workload.Profile, o Options, co *obs.Cell) (hierarchy.WindowTotals, *cache.Cache) {
	return runTradWindowed(cache.Config{Name: "base-1MB", SizeBytes: 1 << 20, Ways: 8}, prof, o, co)
}

// Runner is an experiment entry: it produces one or more tables.
type Runner func(Options) ([]*stats.Table, error)

var experiments = map[string]struct {
	About string
	Run   Runner
}{}

func registerExp(id, about string, run Runner) {
	if _, dup := experiments[id]; dup {
		panic("exp: duplicate experiment " + id)
	}
	experiments[id] = struct {
		About string
		Run   Runner
	}{about, run}
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(experiments))
	//ldis:nondet-ok key collection only; the slice is sorted immediately below
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// About describes an experiment id.
func About(id string) (string, bool) {
	e, ok := experiments[id]
	if !ok {
		return "", false
	}
	return e.About, true
}

// Describe returns the one-line "id  description" text for an
// experiment, or false for an unknown id. `ldisexp -list` prints one
// line per id, and the unknown-experiment error reuses the exact same
// text, so the error doubles as the listing.
func Describe(id string) (string, bool) {
	e, ok := experiments[id]
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%-20s %s", id, e.About), true
}

// describeAll renders the full experiment listing, one Describe line
// per registered id.
func describeAll() string {
	var b strings.Builder
	for _, id := range IDs() {
		line, _ := Describe(id)
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// Run executes the experiment with the given id.
func Run(id string, o Options) ([]*stats.Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	e, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q; valid experiments:\n%s", id, describeAll())
	}
	o.expID = id
	return e.Run(o)
}

// ManifestParams returns the result-relevant options as strings, for
// the run manifest's params block. Scheduling knobs stay out — they
// cannot change results — mirroring the Fingerprint field set.
func (o Options) ManifestParams() map[string]string {
	return map[string]string{
		"accesses":               fmt.Sprint(o.Accesses),
		"warmup_frac":            fmt.Sprint(o.WarmupFrac),
		"benchmarks":             strings.Join(o.benchmarks(), ","),
		"mrc_sample_rate":        fmt.Sprint(o.mrcSampleRate()),
		"mrc_max_samples":        fmt.Sprint(o.mrcMaxSamples()),
		"mrc_resolution":         fmt.Sprint(o.mrcResolution()),
		"mrc_max_bytes":          fmt.Sprint(o.mrcMaxBytes()),
		"tenants":                strings.Join(o.Tenants, ","),
		"partition_policy":       o.PartitionPolicy,
		"epoch_accesses":         fmt.Sprint(o.epochAccesses()),
		"org_touche_sb_lines":    fmt.Sprint(o.orgToucheSBLines()),
		"org_copyback_max_reuse": fmt.Sprint(o.orgCopyBackMaxReuse()),
		"org_waymemo_entries":    fmt.Sprint(o.orgWayMemoEntries()),
	}
}
