// Package exp implements one experiment per figure and table of the
// paper's evaluation. Each experiment runs the calibrated synthetic
// benchmarks through the appropriate cache organizations and renders
// the same rows/series the paper reports. DESIGN.md maps experiment ids
// to paper content; EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"ldis/internal/cache"
	"ldis/internal/distill"
	"ldis/internal/hierarchy"
	"ldis/internal/sampler"
	"ldis/internal/stats"
	"ldis/internal/workload"
)

// Options control experiment scale. The defaults trade fidelity for
// runtime; benches and the CLI can raise Accesses.
type Options struct {
	// Accesses per benchmark per configuration.
	Accesses int
	// WarmupFrac is the fraction of accesses excluded from measurement.
	WarmupFrac float64
	// Benchmarks to run (defaults to the paper's 16).
	Benchmarks []string
	// Parallel caps the worker goroutines running (benchmark ×
	// configuration) simulation cells concurrently; 0 means GOMAXPROCS.
	// Results are deterministic regardless of the setting.
	Parallel int

	// KeepGoing runs every cell to completion instead of aborting the
	// sweep at the first failure. Failed cells are recorded in
	// Failures; benchmarks with a failed cell are pruned from the
	// results so healthy rows render exactly as in a fault-free run.
	KeepGoing bool
	// Retries gives each failing cell this many extra attempts before
	// its failure counts. Cells are pure functions of their inputs,
	// so retries only matter against injected or external transient
	// faults.
	Retries int
	// FailBudget, when positive and KeepGoing is set, abandons the
	// sweep once this many cells have failed; 0 means no limit.
	FailBudget int
	// Failures collects per-cell failures in keep-going mode. Left
	// nil, validate installs a fresh log; callers that want to read
	// the failures afterwards supply their own.
	Failures *FailureLog
	// Checkpoint, when non-nil, replays already-completed cells from
	// the checkpoint file and appends each newly completed cell to
	// it, making the sweep resumable after a crash or kill.
	Checkpoint *Checkpoint
	// FaultSeed, when nonzero, deterministically panics a seeded
	// subset of cells via internal/faultinject — the chaos-testing
	// hook. 0 disables injection.
	FaultSeed uint64

	// MRCSampleRate is the SHARDS spatial sampling rate in (0, 1) used
	// by the sampled column of the mrc experiment; 0 means the default
	// (see mrcSampleRate). The exact column ignores it.
	MRCSampleRate float64
	// MRCMaxSamples bounds concurrently tracked lines in the sampled
	// column (SHARDS fixed-size mode); 0 means the default.
	MRCMaxSamples int
	// MRCResolution is the capacity step of the miss-ratio curves in
	// bytes; 0 means the default (64KB).
	MRCResolution int
	// MRCMaxBytes is the largest curve capacity in bytes; 0 means the
	// default (4MB).
	MRCMaxBytes int

	// expID is the registry id of the experiment being run, set by
	// Run; it keys checkpoint records and failure rows.
	expID string
}

// DefaultOptions returns a configuration good for interactive use.
func DefaultOptions() Options {
	return Options{Accesses: 1_000_000, WarmupFrac: 0.25}
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.MainNames
}

func (o Options) warmup() int  { return int(float64(o.Accesses) * o.WarmupFrac) }
func (o Options) measure() int { return o.Accesses - o.warmup() }

// mrc option accessors: zero means "default", and the same defaulted
// values feed both the engine configs and the checkpoint fingerprint,
// so an explicit default and an implicit one fingerprint identically.

func (o Options) mrcSampleRate() float64 {
	if o.MRCSampleRate == 0 {
		// 0.1 keeps the SHARDS curve within the 0.02 error budget on
		// every registered benchmark even at short (150k-access) test
		// traces; production-scale MRC studies can lower it.
		return 0.1
	}
	return o.MRCSampleRate
}

func (o Options) mrcMaxSamples() int {
	if o.MRCMaxSamples == 0 {
		return 16 << 10
	}
	return o.MRCMaxSamples
}

func (o Options) mrcResolution() int {
	if o.MRCResolution == 0 {
		return 64 << 10
	}
	return o.MRCResolution
}

func (o Options) mrcMaxBytes() int {
	if o.MRCMaxBytes == 0 {
		return 4 << 20
	}
	return o.MRCMaxBytes
}

// validate normalizes pathological options.
func (o *Options) validate() error {
	if o.Accesses <= 0 {
		return fmt.Errorf("exp: Accesses must be positive, got %d", o.Accesses)
	}
	if o.WarmupFrac < 0 || o.WarmupFrac >= 1 {
		return fmt.Errorf("exp: WarmupFrac %v out of [0,1)", o.WarmupFrac)
	}
	if o.Parallel < 0 {
		return fmt.Errorf("exp: Parallel must be >= 0, got %d", o.Parallel)
	}
	if o.Retries < 0 {
		return fmt.Errorf("exp: Retries must be >= 0, got %d", o.Retries)
	}
	if o.FailBudget < 0 {
		return fmt.Errorf("exp: FailBudget must be >= 0, got %d", o.FailBudget)
	}
	if o.MRCSampleRate < 0 || o.MRCSampleRate >= 1 {
		if o.MRCSampleRate != 0 {
			return fmt.Errorf("exp: MRCSampleRate %v outside (0,1); the sampled column needs a real sampling rate", o.MRCSampleRate)
		}
	}
	if o.MRCMaxSamples < 0 {
		return fmt.Errorf("exp: MRCMaxSamples must be >= 0, got %d", o.MRCMaxSamples)
	}
	if o.MRCResolution < 0 || o.MRCMaxBytes < 0 {
		return fmt.Errorf("exp: MRC curve geometry must be >= 0, got resolution %d max %d", o.MRCResolution, o.MRCMaxBytes)
	}
	if o.mrcMaxBytes() < o.mrcResolution() {
		return fmt.Errorf("exp: MRCMaxBytes %d below MRCResolution %d", o.mrcMaxBytes(), o.mrcResolution())
	}
	if o.KeepGoing && o.Failures == nil {
		o.Failures = NewFailureLog()
	}
	for _, b := range o.Benchmarks {
		if _, err := workload.ByName(b); err != nil {
			return err
		}
	}
	return nil
}

// baselineConfig builds a traditional cache config of the given size in
// megabytes: the paper grows capacity by adding ways at a fixed 2048
// sets (its 0.75MB LOC is 6 ways of 2048 sets), which keeps every size
// realizable with a power-of-two set count.
func baselineConfig(name string, sizeMB float64) cache.Config {
	const sets = 2048
	bytes := int(sizeMB * (1 << 20))
	ways := bytes / (64 * sets)
	return cache.Config{Name: name, SizeBytes: ways * 64 * sets, Ways: ways}
}

// LDIS configuration variants (Figure 6).
func ldisBase(wocWays int, seed uint64) distill.Config {
	return distill.Config{
		Name: "ldis-base", SizeBytes: 1 << 20, Ways: 8, WOCWays: wocWays, Seed: seed,
	}
}

func ldisMT(wocWays int, seed uint64) distill.Config {
	c := ldisBase(wocWays, seed)
	c.Name = "ldis-mt"
	c.MedianThreshold = true
	return c
}

func ldisMTRC(wocWays int, seed uint64) distill.Config {
	c := ldisMT(wocWays, seed)
	c.Name = "ldis-mt-rc"
	c.Reverter = true
	// The paper's PSEL hysteresis band (64..192) is tuned for 250M
	// instruction traces; our runs are 10-100x shorter, so low-MPKI
	// benchmarks would never accumulate enough leader-set misses to
	// cross it. A narrower band (±16 around the midpoint) preserves the
	// hysteresis mechanism while converging at our trace lengths.
	sc := sampler.DefaultConfig(c.Sets())
	sc.LowWatermark = 112
	sc.HighWatermark = 144
	c.SamplerConfig = &sc
	return c
}

// runWindowed drives a profile through a system with warmup, returning
// the measurement window.
func runWindowed(sys *hierarchy.System, prof *workload.Profile, o Options) *hierarchy.Window {
	st := prof.Stream()
	n := sys.Run(st, o.warmup())
	w := sys.StartWindow()
	n += sys.Run(st, o.measure())
	countSimAccesses(n)
	return w
}

// baselineMPKI runs the 1MB 8-way baseline and returns the window.
func baselineMPKI(prof *workload.Profile, o Options) (*hierarchy.Window, *cache.Cache) {
	sys, c := hierarchy.Baseline("base-1MB", 1<<20, 8)
	w := runWindowed(sys, prof, o)
	return w, c
}

// Runner is an experiment entry: it produces one or more tables.
type Runner func(Options) ([]*stats.Table, error)

var experiments = map[string]struct {
	About string
	Run   Runner
}{}

func registerExp(id, about string, run Runner) {
	if _, dup := experiments[id]; dup {
		panic("exp: duplicate experiment " + id)
	}
	experiments[id] = struct {
		About string
		Run   Runner
	}{about, run}
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(experiments))
	//ldis:nondet-ok key collection only; the slice is sorted immediately below
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// About describes an experiment id.
func About(id string) (string, bool) {
	e, ok := experiments[id]
	if !ok {
		return "", false
	}
	return e.About, true
}

// Run executes the experiment with the given id.
func Run(id string, o Options) ([]*stats.Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	e, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q; valid ids: %s", id, strings.Join(IDs(), ", "))
	}
	o.expID = id
	return e.Run(o)
}
