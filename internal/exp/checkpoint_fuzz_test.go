package exp

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"testing"
)

// ckRecordBytes encodes one well-formed checkpoint record (length,
// CRC, gob payload) — the building block for fuzz seeds and torn-tail
// constructions.
func ckRecordBytes(t testing.TB, rec ckRecord) []byte {
	t.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8+payload.Len())
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(buf[8:], payload.Bytes())
	return buf
}

// FuzzCheckpointScan hammers the checkpoint record scanner with
// arbitrary bytes: hostile input must never panic, never claim a valid
// prefix longer than the input, and the claimed prefix must re-scan to
// the identical record sequence — the contract load relies on when it
// truncates a corrupt tail and appends after it.
func FuzzCheckpointScan(f *testing.F) {
	rec := func(exp, bench string, col int, data []byte) []byte {
		return ckRecordBytes(f, ckRecord{Exp: exp, Bench: bench, Col: col, Data: data})
	}
	// Seed the structural corners: empty, one record, two records, a
	// torn tail after a valid record, a CRC flip, an oversized length
	// prefix, and raw garbage.
	f.Add([]byte{})
	one := rec("mrc", "twolf", 0, []byte("cell"))
	f.Add(one)
	two := append(append([]byte{}, one...), rec("fig6", "mcf", 3, nil)...)
	f.Add(two)
	f.Add(append(append([]byte{}, one...), two[:11]...)) // torn second record
	flipped := append([]byte{}, one...)
	flipped[5] ^= 0xff // CRC mismatch
	f.Add(flipped)
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge[0:4], ckMaxPayload+1)
	f.Add(huge)
	f.Add([]byte("LDCKgarbage that is not a record stream at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []ckRecord
		n := scanRecords(bytes.NewReader(data), func(r ckRecord) { recs = append(recs, r) })
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", n, len(data))
		}
		// The valid prefix must be self-consistent: scanning just it
		// yields the same records and consumes exactly n bytes.
		var again []ckRecord
		m := scanRecords(bytes.NewReader(data[:n]), func(r ckRecord) { again = append(again, r) })
		if m != n {
			t.Fatalf("re-scan of valid prefix consumed %d bytes, want %d", m, n)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-scan found %d records, want %d", len(again), len(recs))
		}
		for i := range recs {
			if recs[i].Exp != again[i].Exp || recs[i].Bench != again[i].Bench ||
				recs[i].Col != again[i].Col || !bytes.Equal(recs[i].Data, again[i].Data) {
				t.Fatalf("record %d changed across re-scan", i)
			}
		}
	})
}

// TestScanRecordsTornTail pins the salvage semantics deterministically
// (the fuzz target only checks invariants): a valid prefix followed by
// any torn byte suffix yields exactly the prefix records.
func TestScanRecordsTornTail(t *testing.T) {
	a := ckRecordBytes(t, ckRecord{Exp: "mrc", Bench: "twolf", Col: 0, Data: []byte("A")})
	b := ckRecordBytes(t, ckRecord{Exp: "mrc", Bench: "twolf", Col: 1, Data: []byte("B")})
	whole := append(append([]byte{}, a...), b...)
	for cut := len(a) + 1; cut < len(whole); cut++ {
		var got []ckRecord
		n := scanRecords(bytes.NewReader(whole[:cut]), func(r ckRecord) { got = append(got, r) })
		if n != int64(len(a)) {
			t.Fatalf("cut %d: valid prefix %d, want %d", cut, n, len(a))
		}
		if len(got) != 1 || got[0].Col != 0 {
			t.Fatalf("cut %d: salvaged %d records", cut, len(got))
		}
	}
}
