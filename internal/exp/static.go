package exp

import (
	"fmt"

	"ldis/internal/compress"
	"ldis/internal/costmodel"
	"ldis/internal/stats"
)

// Table1 renders the baseline processor configuration (paper Table 1).
func Table1() *stats.Table {
	t := stats.NewTable("Table 1: baseline processor configuration", "component", "configuration")
	t.AddRow("Inst. Cache", "16kB, 64B line-size, 2-way (the traces carry its miss stream; L2 never distills instruction lines)")
	t.AddRow("Branch Predictor", "hybrid; min 15-cycle misprediction penalty (per-benchmark rates)")
	t.AddRow("Exec. Engine", "8-wide out-of-order window (interval timing model)")
	t.AddRow("Data Cache", "16kB, 64B line-size, 2-way, LRU, sectored, footprint-tracking")
	t.AddRow("Unified L2 Cache", "1MB, 64B line-size, 8-way, LRU, 15-cycle hit, 32-entry MSHR")
	t.AddRow("Memory", "32 DRAM banks, 400-cycle access, bank conflicts modelled")
	t.AddRow("Bus", "16B-wide split-transaction at 4:1 frequency ratio")
	t.AddRow("Distill Cache", "6 LOC ways + 2 WOC ways, +1 tag cycle, +2 cycles on WOC hits")
	return t
}

// Table3 renders the storage-overhead accounting.
func Table3() (*stats.Table, error) {
	s, err := costmodel.DistillStorage(costmodel.Defaults())
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table 3: storage overhead of line distillation", "item", "value")
	t.AddRow("Size of each tag-entry in WOC", fmt.Sprintf("%d bits", s.WOCTagEntryBits))
	t.AddRow("Total number of tag-entries in WOC", fmt.Sprintf("%dk", s.WOCTagEntries>>10))
	t.AddRow("Overhead of tag-entries in WOC", fmt.Sprintf("%dkB", s.WOCTagBytes>>10))
	t.AddRow("Total number of tag-entries in LOC", fmt.Sprintf("%dk", s.LOCLines>>10))
	t.AddRow("Overhead of footprint bits in LOC", fmt.Sprintf("%dkB", s.LOCFootprintBytes>>10))
	t.AddRow("Total number of lines in L1D cache", fmt.Sprintf("%d", s.L1DLines))
	t.AddRow("Overhead of footprint bits in L1D", fmt.Sprintf("%dB", s.L1DFootprintBytes))
	t.AddRow("Overhead for median threshold distillation", fmt.Sprintf("%dB", s.MedianCounterBytes))
	t.AddRow("Number of ATD entries", fmt.Sprintf("%d", s.ATDEntries))
	t.AddRow("Overhead of reverter circuit", fmt.Sprintf("%dkB", s.ATDBytes>>10))
	t.AddRow("Total storage overhead of distill-cache", fmt.Sprintf("%dkB", (s.TotalBytes+512)>>10))
	t.AddRow("Area of baseline L2 cache", fmt.Sprintf("%dkB", s.BaselineAreaBytes>>10))
	t.AddRow("% increase in L2 area with distill-cache", fmt.Sprintf("%.1f%%", s.OverheadPercent))
	return t, nil
}

// Table4 renders the 32-bit encoding scheme.
func Table4() *stats.Table {
	t := stats.NewTable("Table 4: encoding scheme for 32-bit data", "code", "value of the 32-bit data", "encoded bits")
	type row struct {
		v    uint32
		desc string
	}
	for _, r := range []row{
		{0, "0"},
		{1, "1"},
		{0x1234, "bits[31:16] are 0, only bits[15:0] stored"},
		{0xdeadbeef, "incompressible, all bits[31:0] stored"},
	} {
		code, bits := compress.Encode32(r.v)
		t.AddRow(fmt.Sprintf("%02b", code), r.desc, bits)
	}
	return t
}

// OverheadsTable renders the Section 7.5.2/7.5.3 latency and energy
// estimates.
func OverheadsTable() *stats.Table {
	l, e := costmodel.Overheads()
	t := stats.NewTable("Section 7.5: latency and energy overheads", "item", "value")
	t.AddRow("Extra tag delay (Cacti, 65nm)", fmt.Sprintf("%.2fns", l.ExtraTagDelayNS))
	t.AddRow("Extra tag access cycles charged", l.ExtraTagCycles)
	t.AddRow("WOC word-rearrangement cycles", l.WOCRearrangeCycles)
	t.AddRow("LOC tag energy per access", fmt.Sprintf("%.2fnJ", e.LOCTagNJ))
	t.AddRow("Extra WOC tag energy per access", fmt.Sprintf("%.2fnJ", e.WOCExtraNJ))
	t.AddRow("Total tag energy per access", fmt.Sprintf("%.2fnJ", e.TotalTagNJ))
	return t
}

func init() {
	registerExp("table1", "baseline processor configuration", func(Options) ([]*stats.Table, error) {
		return []*stats.Table{Table1()}, nil
	})
	registerExp("table3", "storage overhead of line distillation", func(Options) ([]*stats.Table, error) {
		t, err := Table3()
		if err != nil {
			return nil, err
		}
		return []*stats.Table{t}, nil
	})
	registerExp("table4", "32-bit encoding scheme", func(Options) ([]*stats.Table, error) {
		return []*stats.Table{Table4()}, nil
	})
	registerExp("overheads", "latency and energy overheads (Section 7.5)", func(Options) ([]*stats.Table, error) {
		return []*stats.Table{OverheadsTable()}, nil
	})
}
