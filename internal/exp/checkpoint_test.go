package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ckOptions are the small options the checkpoint tests sweep with:
// 2 benchmarks × 5 Table 6 sizes = 10 cells.
func ckOptions() Options {
	return Options{Accesses: 20_000, WarmupFrac: 0.25,
		Benchmarks: []string{"ammp", "mcf"}, Parallel: 2}
}

// TestCheckpointKillAndResume is the resumability contract: a sweep
// killed mid-run — simulated by truncating the checkpoint inside its
// final record, exactly what a SIGKILL during the append leaves behind
// — resumes by replaying the surviving cells and re-running only the
// remainder, and renders byte-identical tables to an uninterrupted run.
func TestCheckpointKillAndResume(t *testing.T) {
	o := ckOptions()
	want := renderAll(t, "table6", o)

	path := filepath.Join(t.TempDir(), CheckpointFile)
	ck, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	full := o
	full.Checkpoint = ck
	if got := renderAll(t, "table6", full); got != want {
		t.Fatalf("checkpointed run differs from plain run:\n%s\nvs\n%s", got, want)
	}
	if ck.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", ck.Recorded())
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill mid-append: tear the last record by chopping bytes off the
	// tail. The resumed run must discard the torn record, replay the
	// intact prefix, and re-simulate the rest.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if n := ck2.Loaded(); n != 9 {
		t.Fatalf("Loaded after torn tail = %d, want 9", n)
	}
	resume := o
	resume.Checkpoint = ck2
	if got := renderAll(t, "table6", resume); got != want {
		t.Fatalf("resumed run differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if ck2.Replayed() != 9 {
		t.Errorf("Replayed = %d, want 9", ck2.Replayed())
	}
	if ck2.Recorded() != 1 {
		t.Errorf("Recorded = %d, want 1 (only the torn cell re-ran)", ck2.Recorded())
	}
	if len(ck2.Cells()) != 10 {
		t.Errorf("Cells = %d, want 10", len(ck2.Cells()))
	}
}

// TestCheckpointGarbageTail: appended garbage (a corrupt tail that is
// not merely truncated) is detected by the CRC and truncated away.
func TestCheckpointGarbageTail(t *testing.T) {
	o := ckOptions()
	path := filepath.Join(t.TempDir(), CheckpointFile)
	ck, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	full := o
	full.Checkpoint = ck
	renderAll(t, "table6", full)
	ck.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	ck2, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if n := ck2.Loaded(); n != 10 {
		t.Errorf("Loaded = %d, want 10 intact records", n)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("corrupt tail not truncated: size %d -> %d", before.Size(), after.Size())
	}
}

// TestCheckpointRejectsDifferentOptions: resuming under options that
// change simulated results is refused via the header fingerprint.
func TestCheckpointRejectsDifferentOptions(t *testing.T) {
	o := ckOptions()
	path := filepath.Join(t.TempDir(), CheckpointFile)
	ck, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()

	other := o
	other.Accesses = 30_000
	if _, err := OpenCheckpoint(path, other); err == nil ||
		!strings.Contains(err.Error(), "different options") {
		t.Errorf("mismatched options: err = %v, want fingerprint refusal", err)
	}

	// Scheduling and resilience knobs do not change results and must
	// not invalidate a checkpoint.
	sched := o
	sched.Parallel = 7
	sched.KeepGoing = true
	sched.Retries = 3
	ck2, err := OpenCheckpoint(path, sched)
	if err != nil {
		t.Fatalf("scheduling knobs invalidated the checkpoint: %v", err)
	}
	ck2.Close()
}

// TestCheckpointFaultedSweepResumes: an actual mid-sweep crash — a
// deterministic injected panic aborting the fail-fast run — leaves a
// usable checkpoint; resuming after the "fix" (no injection) completes
// and matches the fault-free tables.
func TestCheckpointFaultedSweepResumes(t *testing.T) {
	o := ckOptions()
	o.Benchmarks = []string{"swim", "health"} // seed 1 faults one cell of each
	want := renderAll(t, "table6", o)

	path := filepath.Join(t.TempDir(), CheckpointFile)
	ck, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	crash := o
	crash.Checkpoint = ck
	crash.FaultSeed = 1
	if _, err := Run("table6", crash); err == nil {
		t.Fatal("injected fault should abort the fail-fast sweep")
	}
	recorded := ck.Recorded()
	ck.Close()

	ck2, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Loaded() != recorded {
		t.Errorf("Loaded = %d, want %d", ck2.Loaded(), recorded)
	}
	resume := o
	resume.Checkpoint = ck2
	if got := renderAll(t, "table6", resume); got != want {
		t.Fatalf("resume after crash differs from fault-free run:\n%s\nvs\n%s", got, want)
	}
}
