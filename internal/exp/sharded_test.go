package exp

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ldis/internal/obs"
)

// TestShardDeterminismMatrix is the PR's byte-identity contract made
// executable: rendered experiment output must not change when the
// scheduling knobs — shard count and record-block size — do. fig6
// mixes shardable (traditional) and sequential-only (distill) columns;
// table6 is all traditional, so every cell takes the sharded path.
func TestShardDeterminismMatrix(t *testing.T) {
	ids := []string{"fig6", "table6"}
	base := DefaultOptions()
	base.Accesses = 20_000
	base.Benchmarks = []string{"mcf", "art"}
	base.Parallel = 2

	render := func(o Options) string {
		out := ""
		for _, id := range ids {
			out += renderAll(t, id, o)
		}
		return out
	}
	want := render(base)

	for _, shards := range []int{1, 2, 4} {
		for _, batch := range []int{1, 64, 4096} {
			o := base
			o.Shards = shards
			o.BatchSize = batch
			if got := render(o); got != want {
				t.Errorf("shards=%d batch=%d: rendered output diverges from the sequential default", shards, batch)
			}
		}
	}
}

// TestManifestDeterministicAcrossShardCounts extends the manifest
// determinism contract to the sharded runner: at a fixed batch size
// the sharded sweep consumes the stream with the same NextBatch call
// schedule as the sequential one, so the stripped manifests — span
// call counts included — are deeply equal.
func TestManifestDeterministicAcrossShardCounts(t *testing.T) {
	ids := []string{"fig6"}
	build := func(shards int) *obs.Manifest {
		o := DefaultOptions()
		o.Accesses = 20_000
		o.Benchmarks = []string{"mcf", "art"}
		o.Parallel = 2
		o.Shards = shards
		o.BatchSize = 512
		o.Obs = obs.NewRun(nil)
		for _, id := range ids {
			if _, err := Run(id, o); err != nil {
				t.Fatalf("shards=%d %s: %v", shards, id, err)
			}
		}
		m := &obs.Manifest{
			Tool:        "exp-test",
			Workers:     o.Parallel,
			Fingerprint: o.Fingerprint(),
			Experiments: ids,
			Params:      o.ManifestParams(),
		}
		m.Snapshot(o.Obs)
		m.StripTimings()
		return m
	}
	seq := build(0)
	sharded := build(4)
	if !reflect.DeepEqual(seq, sharded) {
		t.Errorf("stripped manifests diverge between sequential and 4 shards:\n seq %+v\n sharded %+v", seq, sharded)
	}
	if len(seq.Cells) == 0 {
		t.Fatal("manifest recorded no cells")
	}
}

// TestCheckpointResumeAcrossShardCounts: Shards and BatchSize are
// scheduling knobs excluded from the options fingerprint, so a
// checkpoint written sequentially must replay — not re-run — under a
// sharded resume, and render identical tables.
func TestCheckpointResumeAcrossShardCounts(t *testing.T) {
	o := ckOptions()
	want := renderAll(t, "table6", o)

	path := filepath.Join(t.TempDir(), CheckpointFile)
	ck, err := OpenCheckpoint(path, o)
	if err != nil {
		t.Fatal(err)
	}
	seq := o
	seq.Checkpoint = ck
	if got := renderAll(t, "table6", seq); got != want {
		t.Fatal("checkpointed sequential run differs from plain run")
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	sharded := o
	sharded.Shards = 4
	sharded.BatchSize = 64
	if sharded.Fingerprint() != o.Fingerprint() {
		t.Fatal("Shards/BatchSize leaked into the options fingerprint")
	}
	ck2, err := OpenCheckpoint(path, sharded)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	sharded.Checkpoint = ck2
	if got := renderAll(t, "table6", sharded); got != want {
		t.Fatal("sharded resume differs from the sequential run")
	}
	if ck2.Recorded() != 0 {
		t.Errorf("Recorded = %d, want 0 (every cell should replay)", ck2.Recorded())
	}
	if ck2.Replayed() != 10 {
		t.Errorf("Replayed = %d, want 10", ck2.Replayed())
	}
}

// TestOptionsValidateShardKnobs: the scheduling knobs get the same
// eager validation as everything else in Options.
func TestOptionsValidateShardKnobs(t *testing.T) {
	ok := DefaultOptions()
	for _, s := range []int{0, 1, 2, 128} {
		o := ok
		o.Shards = s
		if err := o.Validate(); err != nil {
			t.Errorf("Shards=%d rejected: %v", s, err)
		}
	}
	for _, s := range []int{-1, 3, 6, 256} {
		o := ok
		o.Shards = s
		err := o.Validate()
		if err == nil || !strings.Contains(err.Error(), "Shards") {
			t.Errorf("Shards=%d: err = %v, want Shards validation error", s, err)
		}
	}
	o := ok
	o.BatchSize = -1
	if err := o.Validate(); err == nil {
		t.Error("negative BatchSize accepted")
	}
}
