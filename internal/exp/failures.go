package exp

import (
	"errors"
	"fmt"

	"ldis/internal/obs"
	"ldis/internal/par"
	"ldis/internal/stats"
	"sync"
)

// FailureLog collects per-cell failures across a keep-going sweep. It
// is safe for concurrent use by scheduler workers; Cells returns the
// failures in the canonical deterministic order, so a rendered failure
// report is byte-identical regardless of worker count or completion
// order.
type FailureLog struct {
	mu    sync.Mutex
	cells []stats.CellFailure
}

// NewFailureLog returns an empty log.
func NewFailureLog() *FailureLog { return &FailureLog{} }

// add records one failed cell, classifying the error. The reason is
// the deterministic message only — panic stacks stay out of the log so
// reports reproduce bit-for-bit.
func (l *FailureLog) add(experiment, benchmark string, col int, err error) {
	f := stats.CellFailure{
		Experiment: experiment,
		Benchmark:  benchmark,
		Col:        col,
		Attempts:   1,
		Kind:       "error",
		Reason:     err.Error(),
	}
	var te *par.TaskError
	if errors.As(err, &te) {
		f.Attempts = te.Attempts
		switch {
		case te.Attempts == 0:
			f.Kind = "skipped"
			f.Reason = "not run (fail-fast or failure budget exhausted)"
		case te.Panic != nil:
			f.Kind = "panic"
			f.Reason = fmt.Sprint(te.Panic)
		default:
			f.Reason = te.Err.Error()
		}
	}
	l.mu.Lock()
	l.cells = append(l.cells, f)
	l.mu.Unlock()
}

// Len reports how many cell failures have been recorded.
func (l *FailureLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.cells)
}

// Cells returns a sorted copy of the recorded failures.
func (l *FailureLog) Cells() []stats.CellFailure {
	l.mu.Lock()
	out := make([]stats.CellFailure, len(l.cells))
	copy(out, l.cells)
	l.mu.Unlock()
	stats.SortCellFailures(out)
	return out
}

// Table renders the failures as the canonical per-cell failure table.
func (l *FailureLog) Table() *stats.Table {
	return stats.FailureTable(l.Cells())
}

// Manifest converts the recorded failures to the run-manifest form, in
// the same canonical order as Cells.
func (l *FailureLog) Manifest() []obs.Failure {
	cells := l.Cells()
	if len(cells) == 0 {
		return nil
	}
	out := make([]obs.Failure, len(cells))
	for i, c := range cells {
		out[i] = obs.Failure{
			Experiment: c.Experiment,
			Benchmark:  c.Benchmark,
			Col:        c.Col,
			Attempts:   c.Attempts,
			Err:        c.Kind + ": " + c.Reason,
		}
	}
	return out
}
