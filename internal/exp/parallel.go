package exp

import (
	"runtime"
	"sync"

	"ldis/internal/workload"
)

// mapBenchmarks runs fn once per benchmark in o, in parallel up to
// o.Parallel workers (GOMAXPROCS when zero), and returns the results in
// benchmark order. Every simulator a worker touches is private to that
// worker, so no locking is needed beyond the fan-out itself; results
// stay deterministic because each (benchmark, config) simulation is
// seeded independently of scheduling.
func mapBenchmarks[T any](o Options, fn func(prof *workload.Profile) (T, error)) ([]T, error) {
	names := o.benchmarks()
	out := make([]T, len(names))
	errs := make([]error, len(names))

	workers := o.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				prof, err := workload.ByName(names[i])
				if err != nil {
					errs[i] = err
					continue
				}
				out[i], errs[i] = fn(prof)
			}
		}()
	}
	for i := range names {
		work <- i
	}
	close(work)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
