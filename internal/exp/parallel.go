package exp

import (
	"fmt"
	"sync/atomic"

	"ldis/internal/faultinject"
	"ldis/internal/obs"
	"ldis/internal/par"
	"ldis/internal/workload"
)

// The experiment engine fans out over (benchmark × configuration)
// cells: every cell is one full simulation — its own caches, its own
// deterministic stream — so a 16-benchmark, 6-configuration figure
// exposes 96 independent units of work to the scheduler instead of 16.
// Cells are pure functions of (benchmark, column), which keeps the
// assembled tables byte-identical at any worker count.
//
// The fan-out is also where the engine's resilience features hook in,
// from innermost to outermost wrapper around the cell function:
//
//   - fault injection (Options.FaultSeed): a deterministic, seeded
//     injector panics selected cells — the chaos-suite's way of
//     proving the layers above isolate failures;
//   - checkpointing (Options.Checkpoint): completed cells are
//     appended to the checkpoint file and replayed on resume instead
//     of re-simulated;
//   - panic isolation and policy (internal/par): a panicking cell
//     becomes a *par.TaskError; fail-fast aborts the sweep on the
//     smallest-index failure, keep-going runs every cell and reports
//     all failures deterministically.

// cellSep joins experiment, benchmark, and column into the cell site
// keys used by fault injection and error messages.
const cellSep = "/"

// runGrid runs one simulation cell per (benchmark, column) pair, up to
// o.Parallel workers (GOMAXPROCS when zero). It returns the surviving
// benchmark names and their result rows, aligned index-for-index: in
// the default fail-fast mode that is every requested benchmark or an
// error, while under Options.KeepGoing benchmarks with a failed cell
// are pruned from the results (and logged to Options.Failures) so the
// healthy rows still render exactly as in a fault-free run. fn must
// derive all randomness from the profile's seed so results are
// independent of scheduling.
//
// fn's co argument is the cell's observability surface (nil when
// Options.Obs is nil): fn wires it into the simulator configs it
// builds, so the cache/distill/mrc counters land on the right
// (experiment × benchmark × column) coordinates in the manifest.
func runGrid[T any](o Options, cols int, fn func(prof *workload.Profile, col int, co *obs.Cell) (T, error)) ([]string, [][]T, error) {
	return runNamedGrid(o, o.benchmarks(), cols, func(row, col int, co *obs.Cell) (T, error) {
		prof, err := workload.ByName(o.benchmarks()[row])
		if err != nil {
			var zero T
			return zero, err
		}
		return fn(prof, col, co)
	})
}

// runNamedGrid is the engine under runGrid with the row vocabulary
// generalized: rows are arbitrary names (single benchmarks for the
// classic figure sweeps, tenant-mix scenarios for the partition
// experiment), and fn receives the row index instead of a resolved
// workload profile. All the grid machinery — span wrapping, fault
// injection, checkpoint replay/record keyed (expID, name, col), panic
// isolation, fail-fast/keep-going row pruning — lives here, so every
// grid-shaped experiment shares one deterministic fan-out path.
func runNamedGrid[T any](o Options, names []string, cols int, fn func(row, col int, co *obs.Cell) (T, error)) ([]string, [][]T, error) {
	sim := fn
	cell := func(row, col int, co *obs.Cell) (T, error) {
		tok := co.Spans().Begin(obs.StageSimulate)
		v, err := sim(row, col, co)
		co.Spans().End(obs.StageSimulate, tok)
		return v, err
	}
	if o.FaultSeed != 0 {
		inj := faultinject.NewDefault(o.FaultSeed)
		inner := cell
		cell = func(row, col int, co *obs.Cell) (T, error) {
			inj.MaybePanic(o.expID + cellSep + names[row] + cellSep + fmt.Sprint(col))
			return inner(row, col, co)
		}
	}
	if o.Checkpoint != nil {
		inner := cell
		cell = func(row, col int, co *obs.Cell) (T, error) {
			if data, ok := o.Checkpoint.lookup(o.expID, names[row], col); ok {
				var v T
				if err := decodeCell(data, &v); err == nil {
					co.MarkReplayed()
					return v, nil
				}
				// Undecodable but CRC-valid record (e.g. a row type
				// changed shape): fall through and re-simulate.
			}
			v, err := inner(row, col, co)
			if err != nil {
				return v, err
			}
			data, err := encodeCell(v)
			if err != nil {
				return v, err
			}
			tok := co.Spans().Begin(obs.StageCheckpointWrite)
			err = o.Checkpoint.record(o.expID, names[row], col, data)
			co.Spans().End(obs.StageCheckpointWrite, tok)
			return v, err
		}
	}

	o.Obs.Progress().AddTotal(len(names) * cols)
	p := par.Policy{Retries: o.Retries, FailFast: !o.KeepGoing, Budget: o.FailBudget, Obs: o.Obs.Sched()}
	grid, errs := par.GridPolicy(p, o.Parallel, len(names), cols, func(row, col int) (T, error) {
		co := o.Obs.StartCell(o.expID, names[row], col)
		v, err := cell(row, col, co)
		status := obs.StatusOK
		switch {
		case err != nil:
			status = obs.StatusFailed
		case co.Replayed():
			status = obs.StatusReplayed
		}
		o.Obs.FinishCell(co, status)
		return v, err
	})
	if errs == nil {
		return names, grid, nil
	}
	if !o.KeepGoing {
		// Deterministic smallest-index failure, annotated with its
		// cell coordinates.
		prefix := ""
		if o.expID != "" {
			prefix = o.expID + cellSep
		}
		for r := range errs {
			for c, err := range errs[r] {
				te, ok := err.(*par.TaskError)
				if !ok || te == nil || te.Attempts == 0 {
					continue
				}
				if te.Panic == nil && te.Err != nil {
					return nil, nil, fmt.Errorf("cell %s%s%s%d: %w", prefix, names[r], cellSep, c, te.Err)
				}
				return nil, nil, fmt.Errorf("cell %s%s%s%d: %w", prefix, names[r], cellSep, c, te)
			}
		}
		return nil, nil, fmt.Errorf("exp: scheduler reported failure without an error")
	}
	// Keep-going: log every failed cell, keep only fully-healthy rows.
	keepNames := make([]string, 0, len(names))
	keep := make([][]T, 0, len(grid))
	for r, name := range names {
		healthy := true
		for c, err := range errs[r] {
			if err != nil {
				healthy = false
				o.Failures.add(o.expID, name, c, err)
			}
		}
		if healthy {
			keepNames = append(keepNames, name)
			keep = append(keep, grid[r])
		}
	}
	return keepNames, keep, nil
}

// mapBenchmarks runs fn once per benchmark: a one-column grid, kept
// for experiments whose unit of work is the whole benchmark (e.g. the
// Figure 10 content sampling). Like runGrid it returns the surviving
// benchmark names alongside the results.
func mapBenchmarks[T any](o Options, fn func(prof *workload.Profile, co *obs.Cell) (T, error)) ([]string, []T, error) {
	names, grid, err := runGrid(o, 1, func(prof *workload.Profile, _ int, co *obs.Cell) (T, error) {
		return fn(prof, co)
	})
	if err != nil {
		return nil, nil, err
	}
	out := make([]T, len(grid))
	for i := range grid {
		out[i] = grid[i][0]
	}
	return names, out, nil
}

// simAccesses counts processor-side accesses driven through simulated
// systems, across all workers, since the last reset. cmd/ldisexp's
// -throughput mode divides it by wall time for an accesses/sec figure.
var simAccesses atomic.Uint64

func countSimAccesses(n int) { simAccesses.Add(uint64(n)) }

// SimAccesses returns the cumulative simulated-access count.
func SimAccesses() uint64 { return simAccesses.Load() }

// ResetSimAccesses zeroes the counter (call before a measured run).
func ResetSimAccesses() { simAccesses.Store(0) }

// decodeClock times record generation; it is the observability clock,
// so timings stay out of simulation logic per the nowallclock rule.
var decodeClock = obs.SystemClock()

// decodeNanos accumulates time spent refilling record blocks (trace
// decode / synthetic record generation), across all workers, since the
// last reset. -throughput mode subtracts it from wall time so the
// reported accesses/sec measures simulation, not record generation.
var decodeNanos atomic.Int64

func countDecodeNanos(d int64) { decodeNanos.Add(d) }

// DecodeNanos returns the cumulative record-generation time.
func DecodeNanos() int64 { return decodeNanos.Load() }

// ResetDecodeNanos zeroes the counter (call before a measured run).
func ResetDecodeNanos() { decodeNanos.Store(0) }
