package exp

import (
	"sync/atomic"

	"ldis/internal/par"
	"ldis/internal/workload"
)

// The experiment engine fans out over (benchmark × configuration)
// cells: every cell is one full simulation — its own caches, its own
// deterministic stream — so a 16-benchmark, 6-configuration figure
// exposes 96 independent units of work to the scheduler instead of 16.
// Cells are pure functions of (benchmark, column), which keeps the
// assembled tables byte-identical at any worker count.

// runGrid runs one simulation cell per (benchmark, column) pair, up to
// o.Parallel workers (GOMAXPROCS when zero), and returns the results
// as [benchmark][column]. fn must derive all randomness from the
// profile's seed so results are independent of scheduling.
func runGrid[T any](o Options, cols int, fn func(prof *workload.Profile, col int) (T, error)) ([][]T, error) {
	names := o.benchmarks()
	return par.Grid(o.Parallel, len(names), cols, func(row, col int) (T, error) {
		prof, err := workload.ByName(names[row])
		if err != nil {
			var zero T
			return zero, err
		}
		return fn(prof, col)
	})
}

// mapBenchmarks runs fn once per benchmark: a one-column grid, kept
// for experiments whose unit of work is the whole benchmark (e.g. the
// Figure 10 content sampling).
func mapBenchmarks[T any](o Options, fn func(prof *workload.Profile) (T, error)) ([]T, error) {
	grid, err := runGrid(o, 1, func(prof *workload.Profile, _ int) (T, error) {
		return fn(prof)
	})
	if err != nil {
		return nil, err
	}
	out := make([]T, len(grid))
	for i := range grid {
		out[i] = grid[i][0]
	}
	return out, nil
}

// simAccesses counts processor-side accesses driven through simulated
// systems, across all workers, since the last reset. cmd/ldisexp's
// -throughput mode divides it by wall time for an accesses/sec figure.
var simAccesses atomic.Uint64

func countSimAccesses(n int) { simAccesses.Add(uint64(n)) }

// SimAccesses returns the cumulative simulated-access count.
func SimAccesses() uint64 { return simAccesses.Load() }

// ResetSimAccesses zeroes the counter (call before a measured run).
func ResetSimAccesses() { simAccesses.Store(0) }
