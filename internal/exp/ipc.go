package exp

import (
	"ldis/internal/cpu"
	"ldis/internal/hierarchy"
	"ldis/internal/stats"
	"ldis/internal/workload"
)

// Fig9Row is one benchmark's IPC under the baseline and the distill
// cache (paper Figure 9).
type Fig9Row struct {
	Benchmark          string
	BaseIPC, DistIPC   float64
	ImprovementPercent float64
}

// Fig9 runs the execution-driven IPC comparison: the baseline machine
// versus the same machine with a distill cache (which pays one extra
// tag cycle on every L2 access and two extra cycles on WOC hits).
func Fig9(o Options) ([]Fig9Row, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	return mapBenchmarks(o, func(prof *workload.Profile) (Fig9Row, error) {
		sysB, _ := hierarchy.Baseline("base-1MB", 1<<20, 8)
		rB := cpu.New(cpu.DefaultConfig()).Run(sysB, prof, prof.Stream(), o.Accesses)

		sysD, _ := hierarchy.Distill(ldisMTRC(2, prof.Seed))
		rD := cpu.New(cpu.DistillConfig()).Run(sysD, prof, prof.Stream(), o.Accesses)

		return Fig9Row{
			Benchmark:          prof.Name,
			BaseIPC:            rB.IPC(),
			DistIPC:            rD.IPC(),
			ImprovementPercent: stats.PctIncrease(rB.IPC(), rD.IPC()),
		}, nil
	})
}

// Fig9GMean returns the geometric mean of the per-benchmark IPC
// improvements, as the paper's gmean bar.
func Fig9GMean(rows []Fig9Row) float64 {
	pcts := make([]float64, len(rows))
	for i, r := range rows {
		pcts[i] = r.ImprovementPercent
	}
	return stats.GeoMeanPct(pcts)
}

func fig9Table(rows []Fig9Row) *stats.Table {
	t := stats.NewTable("Figure 9: system IPC improvement with distill cache",
		"benchmark", "base IPC", "distill IPC", "improvement %")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.BaseIPC, r.DistIPC, r.ImprovementPercent)
	}
	t.AddRow("gmean", "", "", Fig9GMean(rows))
	return t
}

func init() {
	registerExp("fig9", "IPC improvement with the distill cache", func(o Options) ([]*stats.Table, error) {
		rows, err := Fig9(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{fig9Table(rows)}, nil
	})
}
