package exp

import (
	"ldis/internal/cache"
	"ldis/internal/cpu"
	"ldis/internal/obs"
	"ldis/internal/stats"
	"ldis/internal/workload"
)

// Fig9Row is one benchmark's IPC under the baseline and the distill
// cache (paper Figure 9).
type Fig9Row struct {
	Benchmark          string
	BaseIPC, DistIPC   float64
	ImprovementPercent float64
}

// Fig9 runs the execution-driven IPC comparison: the baseline machine
// versus the same machine with a distill cache (which pays one extra
// tag cycle on every L2 access and two extra cycles on WOC hits).
// The two machines are independent scheduler cells.
func Fig9(o Options) ([]Fig9Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	names, grid, err := runGrid(o, 2, func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		if col == 0 {
			sysB, _ := tradSystem(cache.Config{Name: "base-1MB", SizeBytes: 1 << 20, Ways: 8}, co)
			r := cpu.New(cpu.DefaultConfig()).Run(sysB, prof, prof.Stream(), o.Accesses)
			countSimAccesses(o.Accesses)
			return r.IPC(), nil
		}
		sysD, _ := distillSystem(ldisMTRC(2, prof.Seed), co)
		r := cpu.New(cpu.DistillConfig()).Run(sysD, prof, prof.Stream(), o.Accesses)
		countSimAccesses(o.Accesses)
		return r.IPC(), nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig9Row, len(grid))
	for i, name := range names {
		g := grid[i]
		rows[i] = Fig9Row{
			Benchmark:          name,
			BaseIPC:            g[0],
			DistIPC:            g[1],
			ImprovementPercent: stats.PctIncrease(g[0], g[1]),
		}
	}
	return rows, nil
}

// Fig9GMean returns the geometric mean of the per-benchmark IPC
// improvements, as the paper's gmean bar.
func Fig9GMean(rows []Fig9Row) float64 {
	pcts := make([]float64, len(rows))
	for i, r := range rows {
		pcts[i] = r.ImprovementPercent
	}
	return stats.GeoMeanPct(pcts)
}

func fig9Table(rows []Fig9Row) *stats.Table {
	t := stats.NewTable("Figure 9: system IPC improvement with distill cache",
		"benchmark", "base IPC", "distill IPC", "improvement %")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.BaseIPC, r.DistIPC, r.ImprovementPercent)
	}
	t.AddRow("gmean", "", "", Fig9GMean(rows))
	return t
}

func init() {
	registerExp("fig9", "IPC improvement with the distill cache", func(o Options) ([]*stats.Table, error) {
		rows, err := Fig9(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{fig9Table(rows)}, nil
	})
}
