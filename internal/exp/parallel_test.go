package exp

import (
	"errors"
	"strings"
	"testing"

	"ldis/internal/obs"
	"ldis/internal/workload"
)

// renderAll runs an experiment and concatenates its rendered tables,
// the byte-level artifact the determinism guarantee covers.
func renderAll(t *testing.T, id string, o Options) string {
	t.Helper()
	tables, err := Run(id, o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := ""
	for _, tb := range tables {
		out += tb.String() + "\n" + tb.CSV() + "\n"
	}
	return out
}

// TestParallelDeterminism is the scheduler's core contract: the
// rendered experiment tables are byte-identical at any worker count,
// because every (benchmark × configuration) cell derives all of its
// randomness from the profile seed.
func TestParallelDeterminism(t *testing.T) {
	base := Options{Accesses: 40_000, WarmupFrac: 0.25,
		Benchmarks: []string{"ammp", "mcf", "swim"}}
	for _, id := range []string{"fig6", "fig8", "table6"} {
		seq := base
		seq.Parallel = 1
		par := base
		par.Parallel = 8
		got1 := renderAll(t, id, seq)
		got8 := renderAll(t, id, par)
		if got1 != got8 {
			t.Errorf("%s: Parallel=1 and Parallel=8 outputs differ:\n--- P=1 ---\n%s\n--- P=8 ---\n%s", id, got1, got8)
		}
	}
}

// TestParallelDefaultMatchesSequential covers Parallel=0 (GOMAXPROCS).
func TestParallelDefaultMatchesSequential(t *testing.T) {
	base := Options{Accesses: 40_000, WarmupFrac: 0.25, Benchmarks: []string{"health"}}
	seq := base
	seq.Parallel = 1
	if a, b := renderAll(t, "fig7", seq), renderAll(t, "fig7", base); a != b {
		t.Errorf("fig7: Parallel=0 differs from Parallel=1:\n%s\nvs\n%s", a, b)
	}
}

// TestGridErrorPropagates: a cell error aborts the grid and surfaces
// to the caller.
func TestGridErrorPropagates(t *testing.T) {
	o := Options{Accesses: 1000, Benchmarks: []string{"ammp", "mcf"}, Parallel: 2}
	boom := errors.New("boom")
	_, _, err := runGrid(o, 3, func(prof *workload.Profile, col int, _ *obs.Cell) (int, error) {
		if prof.Name == "mcf" && col == 1 {
			return 0, boom
		}
		return col, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("grid error = %v, want boom", err)
	}
}

// TestSimAccessCounter: runWindowed feeds the throughput counter.
func TestSimAccessCounter(t *testing.T) {
	ResetSimAccesses()
	o := Options{Accesses: 20_000, WarmupFrac: 0.25, Benchmarks: []string{"ammp"}}
	if _, err := Fig6(o); err != nil {
		t.Fatal(err)
	}
	// 4 cells (baseline + 3 configs), each driving Accesses through the
	// simulated system.
	want := uint64(4 * o.Accesses)
	if got := SimAccesses(); got != want {
		t.Errorf("SimAccesses = %d, want %d", got, want)
	}
	ResetSimAccesses()
	if SimAccesses() != 0 {
		t.Error("reset did not zero the counter")
	}
}

// TestNegativeParallelRejected: validate refuses Parallel < 0 instead
// of letting the scheduler misbehave.
func TestNegativeParallelRejected(t *testing.T) {
	o := Options{Accesses: 1000, Parallel: -1}
	err := o.Validate()
	if err == nil || !strings.Contains(err.Error(), "Parallel") {
		t.Errorf("negative Parallel: err = %v", err)
	}
}
