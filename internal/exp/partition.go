package exp

import (
	"fmt"
	"strings"

	"ldis/internal/cache"
	"ldis/internal/distill"
	"ldis/internal/obs"
	"ldis/internal/partition"
	"ldis/internal/stats"
	"ldis/internal/trace"
	"ldis/internal/workload"
)

// The partition experiment shares one L2 among N co-running benchmarks
// and lets an online controller (internal/partition) divide its ways.
// Rows are tenant-mix scenarios, columns the allocation policies:
//
//	col 0  static  equal split, never rebalanced — the baseline;
//	col 1  ucp     lookahead marginal utility over the live line-grain
//	               SHARDS curves (Qureshi & Patt's UCP);
//	col 2  ldis    the same lookahead over the distilled word-grain
//	               curves, enforced on a distilling (LOC+WOC) cache.
//
// The static and ucp columns drive a conventional 16-way cache
// (partitioned victim selection); the ldis column drives the distill
// organization, scaling the controller's allocation onto the 12 LOC
// ways and masking the 4 WOC ways per tenant. Every column runs the
// controller with shadow exact-Mattson engines, so the rendered tables
// double as a standing validation that the sampled allocator tracks
// the exact one.

// Shared-cache geometry: 1MB, 16 ways, 1024 sets. One way (64KB)
// equals the default MRC curve resolution, so allocations map
// one-to-one onto curve points.
const (
	partSizeBytes = 1 << 20
	partWays      = 16
	partWayBytes  = partSizeBytes / partWays
	partWOCWays   = 4

	// partSampleRate is the controller's SHARDS rate. It is a partition
	// constant, not Options.MRCSampleRate: with 10k-access epochs split
	// across tenants, the per-decision sample counts at the mrc
	// experiment's 0.1 default are too thin to keep the allocator
	// within a way of the exact one through allocation drifts. Halving
	// the stream is still cheap next to the shadow engines the
	// experiment runs anyway.
	partSampleRate = 0.5
)

// partitionScenario is one bundled tenant mix. The mixes pair
// capacity-hungry benchmarks with modest ones so utility-driven
// allocation has headroom to beat the equal split, and include a
// word-sparse tenant so the word-grain policy has something to see.
type partitionScenario struct {
	Name    string
	Tenants []string
}

func bundledScenarios() []partitionScenario {
	return []partitionScenario{
		{"twolf+mcf", []string{"twolf", "mcf"}},
		{"vpr+wupwise", []string{"vpr", "wupwise"}},
		{"art+health", []string{"art", "health"}},
		{"twolf+vpr+mcf+wupwise", []string{"twolf", "vpr", "mcf", "wupwise"}},
	}
}

// scenarios returns the scenario rows for one run: the caller's tenant
// mix when Options.Tenants is set, the bundled mixes otherwise.
func (o Options) scenarios() []partitionScenario {
	if len(o.Tenants) > 0 {
		return []partitionScenario{{Name: strings.Join(o.Tenants, "+"), Tenants: o.Tenants}}
	}
	return bundledScenarios()
}

// partitionPolicies returns the policy columns for one run.
func (o Options) partitionPolicies() []string {
	if o.PartitionPolicy != "" {
		return []string{o.PartitionPolicy}
	}
	return partition.PolicyNames
}

// partitionCell is one (scenario, policy) result. Fixed arrays gob
// round-trip through the checkpoint; entries beyond the tenant count
// stay zero.
type partitionCell struct {
	Policy  string
	Tenants int

	// Measurement-window reference and miss counts per tenant.
	Refs   [partition.MaxTenants]uint64
	Misses [partition.MaxTenants]uint64
	// FinalWays is the allocation in force when the run ended.
	FinalWays [partition.MaxTenants]uint8
	// EffGain is the per-tenant effective-capacity gain of word-grain
	// over line-grain at the tenant's final allocated capacity, from
	// the controller's online curves.
	EffGain [partition.MaxTenants]float64

	Epochs       int
	Rebalances   int
	AgreeEpochs  int
	ShadowEpochs int
	GrainDiffers int
}

// aggMissRatio returns the all-tenant miss ratio of the measurement
// window.
func (c partitionCell) aggMissRatio() float64 {
	var refs, misses uint64
	for t := 0; t < c.Tenants; t++ {
		refs += c.Refs[t]
		misses += c.Misses[t]
	}
	if refs == 0 {
		return 0
	}
	return float64(misses) / float64(refs)
}

// meanEffGain averages the per-tenant effective-capacity gains.
func (c partitionCell) meanEffGain() float64 {
	if c.Tenants == 0 {
		return 1
	}
	sum := 0.0
	for t := 0; t < c.Tenants; t++ {
		sum += c.EffGain[t]
	}
	return sum / float64(c.Tenants)
}

// PartitionResult is one scenario's row of policy cells.
type PartitionResult struct {
	Scenario string
	Tenants  []string
	Cells    []partitionCell
}

// Partition runs the multi-tenant partitioning sweep.
func Partition(o Options) ([]PartitionResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	scens := o.scenarios()
	policies := o.partitionPolicies()
	rowNames := make([]string, len(scens))
	for i, s := range scens {
		rowNames[i] = s.Name
	}
	names, grid, err := runNamedGrid(o, rowNames, len(policies), func(row, col int, co *obs.Cell) (partitionCell, error) {
		return partitionSim(o, scens[row], policies[col], co)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PartitionResult, len(names))
	for i, name := range names {
		var scen partitionScenario
		for _, s := range scens {
			if s.Name == name {
				scen = s
			}
		}
		rows[i] = PartitionResult{Scenario: name, Tenants: scen.Tenants, Cells: grid[i]}
	}
	return rows, nil
}

// partitionSim is one cell: the named scenario's tenants interleaved
// round-robin into one shared cache under the named policy.
func partitionSim(o Options, scen partitionScenario, policyName string, co *obs.Cell) (partitionCell, error) {
	n := len(scen.Tenants)
	profs := make([]*workload.Profile, n)
	streams := make([]trace.Stream, n)
	seed := uint64(0x9a2b_71c5)
	for t, name := range scen.Tenants {
		prof, err := workload.ByName(name)
		if err != nil {
			return partitionCell{}, err
		}
		profs[t] = prof
		streams[t] = prof.Stream()
		seed = seed*0x100000001b3 ^ prof.Seed
	}
	policy, ok := partition.ByName(policyName)
	if !ok {
		return partitionCell{}, fmt.Errorf("exp: unknown partition policy %q", policyName)
	}

	ctrl, err := partition.NewController(partition.Config{
		Tenants:       n,
		TotalWays:     partWays,
		WayBytes:      partWayBytes,
		EpochAccesses: o.epochAccesses(),
		Policy:        policy,
		SampleRate:    partSampleRate,
		MaxSamples:    o.mrcMaxSamples(),
		Seed:          seed,
		// Keep three-quarters of the histogram across epochs: short
		// epochs see few samples per tenant, and the longer effective
		// window is what keeps the sampled allocator within a way of
		// the exact one (the shadow engines decay identically, so the
		// agreement comparison stays apples-to-apples).
		DecayAlpha:   0.75,
		Shadow:       true,
		AccessBudget: o.Accesses,
		Obs:          co,
	})
	if err != nil {
		return partitionCell{}, err
	}

	// The ldis policy partitions the distilling organization; the
	// line-grain policies partition a conventional cache of the same
	// size and associativity.
	var (
		conv     *cache.Cache
		dist     *distill.Cache
		locQuota []int
		wocMask  []uint64
	)
	if policyName == "ldis" {
		dist = distill.New(distill.Config{
			Name: "ldis-part", SizeBytes: partSizeBytes, Ways: partWays,
			WOCWays: partWOCWays, Seed: seed,
		})
		locQuota = make([]int, n)
		wocMask = make([]uint64, n)
	} else {
		conv = cache.New(cache.Config{Name: policyName + "-part", SizeBytes: partSizeBytes, Ways: partWays})
	}
	apply := func() {
		alloc := ctrl.Alloc()
		if conv != nil {
			conv.SetPartition(alloc)
			return
		}
		partition.ScaleAlloc(alloc, partWays-partWOCWays, 1, locQuota)
		partition.WayMasks(alloc, partWOCWays, wocMask)
		dist.SetPartition(locQuota, wocMask)
	}
	apply()

	cell := partitionCell{Policy: policyName, Tenants: n}
	bs := trace.Batched(trace.NewInterleave(streams...))
	buf := make([]trace.Record, o.batchSize())
	warm := o.warmup()
	done := 0
	for done < o.Accesses {
		want := len(buf)
		if want > o.Accesses-done {
			want = o.Accesses - done
		}
		got := bs.NextBatch(buf[:want])
		for i := 0; i < got; i++ {
			// Workload profiles are infinite generators, so strict
			// round-robin interleaving never loses a dry stream and the
			// global position identifies the issuing tenant.
			tenant := (done + i) % n
			a := buf[i]
			var miss bool
			if conv != nil {
				miss = !conv.AccessInstallTenant(a.Line(), a.Word(), a.IsWrite(), tenant)
			} else {
				miss = dist.AccessTenant(a.Line(), a.Word(), a.IsWrite(), tenant).Outcome.IsMiss()
			}
			if done+i >= warm {
				cell.Refs[tenant]++
				if miss {
					cell.Misses[tenant]++
				}
			}
			if ctrl.Observe(tenant, a.Line(), a.Word()) {
				apply()
			}
		}
		done += got
		if got < want {
			return partitionCell{}, fmt.Errorf("exp: tenant stream ended after %d of %d accesses", done, o.Accesses)
		}
	}
	countSimAccesses(o.Accesses)

	for t, w := range ctrl.Alloc() {
		cell.FinalWays[t] = uint8(w)
		line, word := ctrl.Curves(t, scen.Tenants[t])
		cell.EffGain[t] = EffectiveCapacityGain(line, word, float64(w*partWayBytes))
	}
	cell.Epochs = ctrl.Epochs()
	cell.Rebalances = ctrl.Rebalances()
	cell.AgreeEpochs, cell.ShadowEpochs = ctrl.Agreement()
	cell.GrainDiffers = ctrl.GrainDisagreements()
	return cell, nil
}

// allocString renders an allocation as "10/4/2".
func allocString(c partitionCell) string {
	parts := make([]string, c.Tenants)
	for t := 0; t < c.Tenants; t++ {
		parts[t] = fmt.Sprint(c.FinalWays[t])
	}
	return strings.Join(parts, "/")
}

// partitionSummaryTable renders one row per (scenario, policy):
// aggregate miss ratio, final allocation, controller activity, the
// online-vs-exact agreement rate, and the word-grain effective-capacity
// gain.
func partitionSummaryTable(rows []PartitionResult) *stats.Table {
	t := stats.NewTable(
		"Partition summary: aggregate miss ratio, final ways, epochs/rebalances, online-vs-exact agreement, word-grain capacity gain",
		"scenario", "policy", "agg miss", "ways", "epochs", "rebal", "agree", "grain!=", "eff gain")
	for _, r := range rows {
		for _, c := range r.Cells {
			agree := "-"
			if c.ShadowEpochs > 0 {
				agree = fmt.Sprintf("%.0f%%", 100*float64(c.AgreeEpochs)/float64(c.ShadowEpochs))
			}
			t.AddRow(r.Scenario, c.Policy,
				fmt.Sprintf("%.4f", c.aggMissRatio()),
				allocString(c),
				fmt.Sprint(c.Epochs),
				fmt.Sprint(c.Rebalances),
				agree,
				fmt.Sprint(c.GrainDiffers),
				fmt.Sprintf("%.2fx", c.meanEffGain()))
		}
	}
	return t
}

// partitionTenantTable renders one scenario's per-tenant breakdown
// across policies.
func partitionTenantTable(r PartitionResult) *stats.Table {
	t := stats.NewTable(
		"Partition per-tenant: "+r.Scenario,
		"tenant", "policy", "refs", "misses", "miss ratio", "ways", "eff gain")
	for ti, name := range r.Tenants {
		for _, c := range r.Cells {
			mr := 0.0
			if c.Refs[ti] > 0 {
				mr = float64(c.Misses[ti]) / float64(c.Refs[ti])
			}
			t.AddRow(name, c.Policy,
				fmt.Sprint(c.Refs[ti]),
				fmt.Sprint(c.Misses[ti]),
				fmt.Sprintf("%.4f", mr),
				fmt.Sprint(c.FinalWays[ti]),
				fmt.Sprintf("%.2fx", c.EffGain[ti]))
		}
	}
	return t
}

// PartitionTables renders the summary plus one per-tenant table per
// scenario.
func PartitionTables(rows []PartitionResult) []*stats.Table {
	tables := []*stats.Table{partitionSummaryTable(rows)}
	for _, r := range rows {
		tables = append(tables, partitionTenantTable(r))
	}
	return tables
}

func init() {
	registerExp("partition", "multi-tenant way partitioning: static vs UCP vs LDIS-aware over online SHARDS curves", func(o Options) ([]*stats.Table, error) {
		rows, err := Partition(o)
		if err != nil {
			return nil, err
		}
		return PartitionTables(rows), nil
	})
}
