package exp

import (
	"ldis/internal/cache"
	"ldis/internal/distill"
	"ldis/internal/hierarchy"
	"ldis/internal/mem"
	"ldis/internal/obs"
	"ldis/internal/prefetch"
	"ldis/internal/sampler"
	"ldis/internal/stats"
	"ldis/internal/workload"
)

// This file registers the design-space ablations DESIGN.md calls out as
// first-class experiments, so `ldisexp ablation-...` regenerates them
// like any paper figure. The corresponding Benchmark* functions in
// bench_test.go run reduced versions of the same sweeps.

// AblationWOCWays sweeps the LOC/WOC way split: five scheduler cells
// per benchmark (baseline plus four splits).
func AblationWOCWays(o Options) ([]*stats.Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: WOC way count (MPKI, 1MB 8-way total)",
		"benchmark", "baseline", "1 WOC way", "2 WOC ways", "3 WOC ways", "4 WOC ways")
	names, rows, err := runGrid(o, 5, func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		if col == 0 {
			base, _ := baselineMPKI(prof, o, co)
			return base.MPKI(), nil
		}
		sys, _ := distillSystem(ldisMTRC(col, prof.Seed), co)
		return runWindowed(sys, prof, o, co).MPKI(), nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		t.AddRow(name, rows[i][0], rows[i][1], rows[i][2], rows[i][3], rows[i][4])
	}
	return []*stats.Table{t}, nil
}

// AblationThreshold sweeps the static distillation threshold K against
// the adaptive median (Section 5.4).
func AblationThreshold(o Options) ([]*stats.Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: distillation threshold K (MPKI, no reverter)",
		"benchmark", "K=1", "K=2", "K=4", "K=8", "median")
	names, rows, err := runGrid(o, 5, func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		var cfg distill.Config
		if col < 4 {
			cfg = ldisBase(2, prof.Seed)
			cfg.StaticThreshold = []int{1, 2, 4, 8}[col]
		} else {
			cfg = ldisMT(2, prof.Seed)
		}
		sys, _ := distillSystem(cfg, co)
		return runWindowed(sys, prof, o, co).MPKI(), nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		t.AddRow(name, rows[i][0], rows[i][1], rows[i][2], rows[i][3], rows[i][4])
	}
	return []*stats.Table{t}, nil
}

// AblationVictim isolates filtering from associativity: the same data
// budget as the WOC, used as a plain full-line victim buffer.
func AblationVictim(o Options) ([]*stats.Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: distillation vs full-line victim buffer (MPKI)",
		"benchmark", "baseline", "distill (LDIS-MT-RC)", "victim buffer")
	names, rows, err := runGrid(o, 3, func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		switch col {
		case 0:
			base, _ := baselineMPKI(prof, o, co)
			return base.MPKI(), nil
		case 1:
			sysD, _ := distillSystem(ldisMTRC(2, prof.Seed), co)
			return runWindowed(sysD, prof, o, co).MPKI(), nil
		default:
			vcfg := ldisBase(2, prof.Seed)
			vcfg.Slots = func(mem.LineAddr, mem.Footprint) int { return mem.WordsPerLine }
			sysV, _ := distillSystem(vcfg, co)
			return runWindowed(sysV, prof, o, co).MPKI(), nil
		}
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		t.AddRow(name, rows[i][0], rows[i][1], rows[i][2])
	}
	return []*stats.Table{t}, nil
}

// AblationPrefetch measures next-line prefetching over the baseline and
// the distill cache (the paper's Section 9 composition argument).
func AblationPrefetch(o Options) ([]*stats.Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: next-line prefetching composed with LDIS (MPKI)",
		"benchmark", "baseline", "baseline+pf2", "distill", "distill+pf2")
	names, rows, err := runGrid(o, 4, func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		var l2 hierarchy.L2
		switch col {
		case 0:
			l2 = hierarchy.NewTradL2(cache.New(cache.Config{Name: "b", SizeBytes: 1 << 20, Ways: 8, Obs: co}))
		case 1:
			inner := hierarchy.NewTradL2(cache.New(cache.Config{Name: "b", SizeBytes: 1 << 20, Ways: 8, Obs: co}))
			l2 = prefetch.Wrap(inner, prefetch.Config{Degree: 2})
		case 2:
			cfg := ldisMTRC(2, prof.Seed)
			cfg.Obs = co
			l2 = hierarchy.NewDistillL2(distill.New(cfg))
		default:
			cfg := ldisMTRC(2, prof.Seed)
			cfg.Obs = co
			inner := hierarchy.NewDistillL2(distill.New(cfg))
			l2 = prefetch.Wrap(inner, prefetch.Config{Degree: 2})
		}
		sys := hierarchy.NewSystem(l2)
		return runWindowed(sys, prof, o, co).MPKI(), nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		t.AddRow(name, rows[i][0], rows[i][1], rows[i][2], rows[i][3])
	}
	return []*stats.Table{t}, nil
}

// AblationLeaderSets sweeps the reverter's sampling density on the
// adversarial benchmarks.
func AblationLeaderSets(o Options) ([]*stats.Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = []string{"swim", "bzip2", "parser", "galgel"}
	}
	leaderCounts := []int{8, 32, 128}
	t := stats.NewTable("Ablation: reverter leader-set count (MPKI)",
		"benchmark", "baseline", "8 leaders", "32 leaders", "128 leaders")
	names, rows, err := runGrid(o, 1+len(leaderCounts), func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		if col == 0 {
			base, _ := baselineMPKI(prof, o, co)
			return base.MPKI(), nil
		}
		cfg := ldisMTRC(2, prof.Seed)
		sc := sampler.DefaultConfig(cfg.Sets())
		sc.LeaderSets = leaderCounts[col-1]
		sc.LowWatermark = 112
		sc.HighWatermark = 144
		cfg.SamplerConfig = &sc
		sys, _ := distillSystem(cfg, co)
		return runWindowed(sys, prof, o, co).MPKI(), nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		t.AddRow(name, rows[i][0], rows[i][1], rows[i][2], rows[i][3])
	}
	return []*stats.Table{t}, nil
}

// ProfilesTable documents every synthetic benchmark's parameters.
func ProfilesTable() *stats.Table {
	t := stats.NewTable("Synthetic benchmark profiles (see DESIGN.md for the substitution argument)",
		"benchmark", "refs/kinst", "store frac", "MLP", "L1I MPKI", "paper MPKI", "paper words")
	for _, name := range workload.Names() {
		p, err := workload.ByName(name)
		if err != nil {
			continue
		}
		t.AddRow(p.Name, p.MemRefsPerKInst, p.StoreFrac, p.MLP, p.L1IMPKI, p.PaperMPKI, p.PaperWordsUsed)
	}
	return t
}

func init() {
	registerExp("ablation-woc-ways", "sweep the LOC/WOC way split", AblationWOCWays)
	registerExp("ablation-threshold", "sweep the distillation threshold K vs median", AblationThreshold)
	registerExp("ablation-victim", "distillation vs a same-budget victim buffer", AblationVictim)
	registerExp("ablation-prefetch", "next-line prefetching composed with LDIS", AblationPrefetch)
	registerExp("ablation-leaders", "reverter leader-set density", AblationLeaderSets)
	registerExp("ablation-traffic", "off-chip traffic: fills + writebacks", AblationTraffic)
	registerExp("profiles", "synthetic benchmark parameter summary", func(Options) ([]*stats.Table, error) {
		return []*stats.Table{ProfilesTable()}, nil
	})
}

// AblationTraffic measures off-chip traffic (fills + writebacks, whole
// run): distillation trades extra refetches (hole misses) against the
// miss fills it saves, and its WOC evicts dirty words early.
func AblationTraffic(o Options) ([]*stats.Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: off-chip traffic in 64B transfers per kilo-instruction",
		"benchmark", "base fills", "base wbs", "distill fills", "distill wbs", "traffic delta %")
	// A cell returns {fills, writebacks} per kilo-instruction for its
	// configuration; the delta is assembled afterwards.
	names, rows, err := runGrid(o, 2, func(prof *workload.Profile, col int, co *obs.Cell) ([2]float64, error) {
		if col == 0 {
			sysB, cb := tradSystem(cache.Config{Name: "base-1MB", SizeBytes: 1 << 20, Ways: 8}, co)
			countSimAccesses(sysB.Run(prof.Stream(), o.Accesses))
			kinst := float64(sysB.Instructions) / 1000
			return [2]float64{
				float64(cb.Stats().Misses) / kinst,
				float64(cb.Stats().Writebacks) / kinst,
			}, nil
		}
		sysD, cd := distillSystem(ldisMTRC(2, prof.Seed), co)
		countSimAccesses(sysD.Run(prof.Stream(), o.Accesses))
		kinst := float64(sysD.Instructions) / 1000
		return [2]float64{
			float64(cd.Stats().Misses()) / kinst,
			float64(cd.Stats().Writebacks) / kinst,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		bf, bw := rows[i][0][0], rows[i][0][1]
		df, dw := rows[i][1][0], rows[i][1][1]
		delta := 0.0
		if bf+bw > 0 {
			delta = 100 * ((df + dw) - (bf + bw)) / (bf + bw)
		}
		t.AddRow(name, bf, bw, df, dw, delta)
	}
	return []*stats.Table{t}, nil
}
