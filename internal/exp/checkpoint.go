package exp

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Grid checkpointing: every completed (benchmark × configuration) cell
// is appended to a versioned, CRC-guarded record log, so a sweep
// killed at any point — including mid-write — can be resumed by
// replaying the completed cells and re-running only the remainder.
// Because each cell is a pure function of (benchmark, column, options),
// a resumed sweep renders byte-identical tables to an uninterrupted
// one.
//
// File format (<out>/checkpoint.ldisck), all little-endian:
//
//	header: magic "LDCK" | version u16 | reserved u16 | fingerprint u64
//	record: payload-length u32 | crc32(payload) u32 | payload
//	payload: gob{Exp, Bench string; Col int; Data []byte}
//
// The fingerprint pins the options that produced the cells (accesses,
// warmup fraction, benchmark set); opening a checkpoint with different
// options is refused rather than silently mixing incompatible results.
// The file contains simulated results only — no wall-clock timestamps
// — so checkpointed runs stay deterministic.
const (
	ckMagic      = "LDCK"
	ckVersion    = 1
	ckHeaderSize = 4 + 2 + 2 + 8
	// ckMaxPayload bounds one record; a longer length prefix marks a
	// corrupt tail.
	ckMaxPayload = 1 << 24

	// CheckpointFile is the file name the CLI uses inside its -out
	// directory.
	CheckpointFile = "checkpoint.ldisck"
)

// ckRecord is the gob payload of one checkpoint record.
type ckRecord struct {
	Exp   string
	Bench string
	Col   int
	Data  []byte
}

// Checkpoint is an append-only store of completed grid cells backed by
// a single file. It is safe for concurrent use by scheduler workers.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[string][]byte

	loaded   int
	replayed int
	recorded int
}

func ckKey(exp, bench string, col int) string {
	return exp + "\x00" + bench + "\x00" + fmt.Sprint(col)
}

// Fingerprint returns the checkpoint compatibility fingerprint of the
// options: a hash over every field that changes simulated results.
// Scheduling and resilience knobs (Parallel, KeepGoing, Retries, ...)
// are deliberately excluded — they do not change what a cell computes.
func (o Options) Fingerprint() uint64 {
	var b strings.Builder
	fmt.Fprintf(&b, "accesses=%d|warmup=%g|benchmarks=%s",
		o.Accesses, o.WarmupFrac, strings.Join(o.benchmarks(), ","))
	// MRC knobs change what the mrc experiment's cells compute. The
	// defaulted accessors are used so explicit-default and zero-value
	// options share a fingerprint.
	fmt.Fprintf(&b, "|mrc=%g/%d/%d/%d",
		o.mrcSampleRate(), o.mrcMaxSamples(), o.mrcResolution(), o.mrcMaxBytes())
	// Partition knobs change the partition experiment's scenarios,
	// columns, and epoch cadence.
	fmt.Fprintf(&b, "|tenants=%s|partition=%s/%d",
		strings.Join(o.Tenants, ","), o.PartitionPolicy, o.epochAccesses())
	// Org knobs change the orgs experiment's touche/copyback/waymemo
	// cell configurations.
	fmt.Fprintf(&b, "|orgs=%d/%d/%d",
		o.orgToucheSBLines(), o.orgCopyBackMaxReuse(), o.orgWayMemoEntries())
	h := uint64(14695981039346656037)
	for i := 0; i < b.Len(); i++ {
		h ^= uint64(b.String()[i])
		h *= 1099511628211
	}
	return h
}

// OpenCheckpoint opens (or creates) the checkpoint at path for the
// given options. An existing file is validated against the options
// fingerprint and scanned; a corrupt or partially-written tail — the
// signature of a run killed mid-append — is discarded and truncated
// away, keeping the valid record prefix. The caller must Close the
// returned checkpoint.
func OpenCheckpoint(path string, o Options) (*Checkpoint, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exp: opening checkpoint: %w", err)
	}
	c := &Checkpoint{f: f, path: path, done: make(map[string][]byte)}
	fp := o.Fingerprint()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	if size == 0 {
		var hdr [ckHeaderSize]byte
		copy(hdr[:4], ckMagic)
		binary.LittleEndian.PutUint16(hdr[4:6], ckVersion)
		binary.LittleEndian.PutUint64(hdr[8:16], fp)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("exp: writing checkpoint header: %w", err)
		}
		return c, nil
	}
	if err := c.load(fp); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// load validates the header, reads the valid record prefix, and
// truncates any corrupt tail so appends resume from a clean boundary.
func (c *Checkpoint) load(fingerprint uint64) error {
	if _, err := c.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var hdr [ckHeaderSize]byte
	if _, err := io.ReadFull(c.f, hdr[:]); err != nil {
		return fmt.Errorf("exp: checkpoint %s: truncated header: %v", c.path, err)
	}
	if string(hdr[:4]) != ckMagic {
		return fmt.Errorf("exp: checkpoint %s: bad magic %q", c.path, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != ckVersion {
		return fmt.Errorf("exp: checkpoint %s: unsupported version %d", c.path, v)
	}
	if fp := binary.LittleEndian.Uint64(hdr[8:16]); fp != fingerprint {
		return fmt.Errorf("exp: checkpoint %s was written with different options (fingerprint %016x, want %016x); rerun without -resume or delete it", c.path, fp, fingerprint)
	}
	valid := int64(ckHeaderSize) + scanRecords(c.f, func(rec ckRecord) {
		c.done[ckKey(rec.Exp, rec.Bench, rec.Col)] = rec.Data
		c.loaded++
	})
	if err := c.f.Truncate(valid); err != nil {
		return fmt.Errorf("exp: repairing checkpoint tail: %w", err)
	}
	if _, err := c.f.Seek(valid, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// scanRecords reads the checkpoint record log from r (positioned just
// past the header), invoking fn for each structurally valid record,
// and returns the byte length of the valid record prefix. The first
// torn, truncated, oversized, CRC-mismatched, or undecodable record
// ends the scan: everything from it onward is the corrupt tail the
// caller truncates away. It never fails — hostile input just shortens
// the valid prefix — which is the property the checkpoint fuzz target
// exercises.
func scanRecords(r io.Reader, fn func(rec ckRecord)) int64 {
	bc := newByteCounter(r)
	var valid int64
	for {
		var pre [8]byte
		if _, err := io.ReadFull(bc, pre[:]); err != nil {
			return valid // clean EOF or torn length prefix: stop at last valid record
		}
		n := binary.LittleEndian.Uint32(pre[0:4])
		sum := binary.LittleEndian.Uint32(pre[4:8])
		if n == 0 || n > ckMaxPayload {
			return valid
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(bc, payload); err != nil {
			return valid
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return valid
		}
		var rec ckRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return valid
		}
		fn(rec)
		valid = bc.n
	}
}

// byteCounter counts bytes consumed from an io.Reader.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// lookup returns the recorded payload for a cell, if present, and
// counts the replay.
func (c *Checkpoint) lookup(exp, bench string, col int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.done[ckKey(exp, bench, col)]
	if ok {
		c.replayed++
	}
	return data, ok
}

// record appends one completed cell. The record is written with a
// single Write call so a kill can at worst tear the final record —
// exactly the case load repairs.
func (c *Checkpoint) record(exp, bench string, col int, data []byte) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ckRecord{Exp: exp, Bench: bench, Col: col, Data: data}); err != nil {
		return fmt.Errorf("exp: encoding checkpoint record: %w", err)
	}
	if payload.Len() > ckMaxPayload {
		return fmt.Errorf("exp: checkpoint record for %s/%s/%d too large (%d bytes)", exp, bench, col, payload.Len())
	}
	buf := make([]byte, 8+payload.Len())
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(buf[8:], payload.Bytes())

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(buf); err != nil {
		return fmt.Errorf("exp: appending checkpoint record: %w", err)
	}
	c.done[ckKey(exp, bench, col)] = data
	c.recorded++
	return nil
}

// Loaded reports how many completed cells the checkpoint held when
// opened.
func (c *Checkpoint) Loaded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loaded
}

// Replayed reports how many cells have been served from the
// checkpoint instead of re-simulated since it was opened.
func (c *Checkpoint) Replayed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replayed
}

// Recorded reports how many newly completed cells have been appended
// since the checkpoint was opened.
func (c *Checkpoint) Recorded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recorded
}

// Cells returns the sorted keys of all completed cells — a debugging
// and test aid.
func (c *Checkpoint) Cells() []string {
	c.mu.Lock()
	keys := make([]string, 0, len(c.done))
	//ldis:nondet-ok key collection only; the slice is sorted immediately below
	for k := range c.done {
		keys = append(keys, strings.ReplaceAll(k, "\x00", "/"))
	}
	c.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Close flushes and closes the backing file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// encodeCell serializes one cell result for checkpointing.
func encodeCell[T any](v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeCell deserializes a checkpointed cell result.
func decodeCell[T any](data []byte, v *T) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
