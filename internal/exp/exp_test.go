package exp

import (
	"math"
	"strings"
	"testing"
)

// fast returns options small enough for unit tests while still
// exercising the full pipeline.
func fast(benchmarks ...string) Options {
	return Options{Accesses: 60_000, WarmupFrac: 0.25, Benchmarks: benchmarks}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Accesses: 0},
		{Accesses: 100, WarmupFrac: 1.0},
		{Accesses: 100, WarmupFrac: -0.1},
		{Accesses: 100, Benchmarks: []string{"nope"}},
		{Accesses: 100, Parallel: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, o)
		}
	}
	good := DefaultOptions()
	if err := good.Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	if len(good.benchmarks()) != 16 {
		t.Errorf("default benchmarks = %d", len(good.benchmarks()))
	}
}

func TestBaselineConfigSizes(t *testing.T) {
	for _, tt := range []struct {
		mb   float64
		ways int
	}{{0.75, 6}, {1, 8}, {1.25, 10}, {1.5, 12}, {2, 16}, {4, 32}} {
		cfg := baselineConfig("t", tt.mb)
		if cfg.Ways != tt.ways {
			t.Errorf("%.2fMB -> %d ways, want %d", tt.mb, cfg.Ways, tt.ways)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%.2fMB config invalid: %v", tt.mb, err)
		}
		if cfg.Sets() != 2048 {
			t.Errorf("%.2fMB sets = %d", tt.mb, cfg.Sets())
		}
	}
}

func TestLDISConfigVariants(t *testing.T) {
	b := ldisBase(2, 1)
	if b.MedianThreshold || b.Reverter {
		t.Error("ldisBase should have no MT/RC")
	}
	m := ldisMT(2, 1)
	if !m.MedianThreshold || m.Reverter {
		t.Error("ldisMT wrong")
	}
	r := ldisMTRC(2, 1)
	if !r.MedianThreshold || !r.Reverter || r.SamplerConfig == nil {
		t.Error("ldisMTRC wrong")
	}
	if r.SamplerConfig.LowWatermark >= r.SamplerConfig.HighWatermark {
		t.Error("sampler band inverted")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig13", "table1", "table2", "table3", "table4", "table5",
		"table6", "overheads",
		"ablation-woc-ways", "ablation-threshold", "ablation-victim",
		"ablation-prefetch", "ablation-leaders", "ablation-traffic", "profiles",
		"mrc", "partition", "orgs"}
	for _, id := range want {
		if _, ok := About(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestRunUnknown(t *testing.T) {
	_, err := Run("nope", DefaultOptions())
	if err == nil {
		t.Fatal("unknown id should error")
	}
	// The error lists every valid id so a typo is self-correcting.
	for _, id := range IDs() {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("unknown-id error %q does not mention valid id %q", err, id)
		}
	}
	if _, err := Run("fig1", Options{}); err == nil {
		t.Error("invalid options should error")
	}
}

func TestFig1(t *testing.T) {
	rows, err := Fig1(fast("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Benchmark != "mcf" {
		t.Fatalf("rows = %+v", rows)
	}
	// mcf: low spatial locality, mean words well under 3.
	if rows[0].Mean <= 0 || rows[0].Mean > 3 {
		t.Errorf("mcf mean words = %.2f", rows[0].Mean)
	}
	var sum float64
	for _, f := range rows[0].Fractions {
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("fractions sum to %.3f", sum)
	}
	if fig1Table(rows).NumRows() != 1 {
		t.Error("table rows wrong")
	}
}

func TestFig2MassAtTop(t *testing.T) {
	rows, err := Fig2(fast("twolf"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The paper's motivation: most footprint changes happen near MRU.
	if r.Pos0to3() < 0.5 {
		t.Errorf("positions 0-3 hold only %.2f of footprint changes", r.Pos0to3())
	}
	if r.Pos0to3()+r.Fractions[4]+r.Fractions[5]+r.Pos6to7() < 0.99 {
		t.Error("fractions do not sum to ~1")
	}
	if fig2Table(rows).NumRows() != 2 { // row + avg
		t.Error("table rows wrong")
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(fast("health"))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MPKI <= 0 || rows[0].CompulsoryPct < 0 || rows[0].CompulsoryPct > 100 {
		t.Errorf("row = %+v", rows[0])
	}
	if rows[0].PaperMPKI != 62 {
		t.Errorf("paper MPKI = %v", rows[0].PaperMPKI)
	}
	if table2Table(rows).NumRows() != 1 {
		t.Error("table rows wrong")
	}
}

func TestFig6AndSummary(t *testing.T) {
	rows, err := Fig6(fast("ammp"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.BaselineMPKI <= 0 {
		t.Fatalf("baseline MPKI = %v", r.BaselineMPKI)
	}
	// ammp is one of the paper's big winners; at least MT-RC should not
	// be catastrophically negative in a short run.
	if r.RC < -10 {
		t.Errorf("ammp RC reduction = %.1f", r.RC)
	}
	s := SummarizeFig6(rows)
	if s.Avg.RC != r.RC {
		t.Errorf("single-benchmark summary avg %.2f != row %.2f", s.Avg.RC, r.RC)
	}
	// avgNomcf over a set without mcf equals avg.
	if s.AvgNomcf != s.Avg {
		t.Error("avgNomcf should equal avg when mcf absent")
	}
	if fig6Table(rows).NumRows() != 3 {
		t.Error("fig6 table rows wrong")
	}
}

func TestFig7FractionsSum(t *testing.T) {
	rows, err := Fig7(fast("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	sum := r.LOCHit + r.WOCHit + r.HoleMiss + r.LineMiss
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("distill fractions sum to %.3f", sum)
	}
	if r.BaseHit < 0 || r.BaseHit > 1 {
		t.Errorf("base hit = %.3f", r.BaseHit)
	}
	if fig7Table(rows).NumRows() != 1 {
		t.Error("table rows wrong")
	}
}

func TestFig8BiggerCachesHelp(t *testing.T) {
	rows, err := Fig8(fast("health"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Monotone: 2MB reduces at least as much as 1.5MB for health.
	if r.MB20 < r.MB15-5 {
		t.Errorf("2MB (%.1f) worse than 1.5MB (%.1f)", r.MB20, r.MB15)
	}
	if fig8Table(rows).NumRows() != 1 {
		t.Error("table rows wrong")
	}
}

func TestFig9(t *testing.T) {
	rows, err := Fig9(fast("health"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.BaseIPC <= 0 || r.DistIPC <= 0 {
		t.Fatalf("IPCs: %+v", r)
	}
	if g := Fig9GMean(rows); math.Abs(g-r.ImprovementPercent) > 1e-9 {
		t.Errorf("single-row gmean %v != %v", g, r.ImprovementPercent)
	}
	if fig9Table(rows).NumRows() != 2 { // row + gmean
		t.Error("table rows wrong")
	}
}

func TestFig10(t *testing.T) {
	rows, err := Fig10(fast("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	var sa, su float64
	for i := 0; i < 4; i++ {
		sa += r.AllWords[i]
		su += r.UsedWords[i]
	}
	if sa < 0.99 || sa > 1.01 || su < 0.99 || su > 1.01 {
		t.Errorf("category fractions sum: all=%.3f used=%.3f", sa, su)
	}
	// Filtering unused words can only help compressibility: the
	// used-words 'full' fraction must not exceed the all-words one.
	if r.UsedWords[3] > r.AllWords[3]+0.01 {
		t.Errorf("used-words full %.2f > all-words full %.2f", r.UsedWords[3], r.AllWords[3])
	}
	if got := len(fig10Table(rows)); got != 2 {
		t.Errorf("fig10 produces %d tables", got)
	}
}

func TestFig11(t *testing.T) {
	rows, err := Fig11(fast("health"))
	if err != nil {
		t.Fatal(err)
	}
	if fig11Table(rows).NumRows() != 2 { // row + mean
		t.Error("table rows wrong")
	}
	l3, l4, cm, fac := SummarizeFig11(rows, map[string]float64{"health": 10})
	_ = l3
	_ = l4
	_ = cm
	if fac == 0 && rows[0].FAC4x != 0 {
		t.Error("summary lost FAC value")
	}
}

func TestFig13(t *testing.T) {
	rows, err := Fig13(fast("art"))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Benchmark != "art" {
		t.Fatalf("rows = %+v", rows)
	}
	if fig13Table(rows).NumRows() != 2 {
		t.Error("table rows wrong")
	}
}

func TestTable5DefaultsToInsensitive(t *testing.T) {
	o := fast()
	o.Benchmarks = nil
	o.Accesses = 40_000
	rows, err := Table5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Errorf("table5 rows = %d, want 11 (7 table rows + 4 text mentions)", len(rows))
	}
	if table5Table(rows).NumRows() != 11 {
		t.Error("table rows wrong")
	}
}

func TestTable6MeanWords(t *testing.T) {
	rows, err := Table6(fast("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.AvgWords) != len(Table6Sizes) {
		t.Fatalf("sizes measured: %v", r.AvgWords)
	}
	//ldis:nondet-ok per-entry assertions; no output depends on iteration order
	for label, v := range r.AvgWords {
		if v <= 0 || v > 8 {
			t.Errorf("%s words = %.2f", label, v)
		}
	}
	if table6Table(rows).NumRows() != 1 {
		t.Error("table rows wrong")
	}
}

func TestStaticTables(t *testing.T) {
	if Table1().NumRows() == 0 {
		t.Error("table1 empty")
	}
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t3.String(), "29 bits") || !strings.Contains(t3.String(), "12.") {
		t.Errorf("table3 content:\n%s", t3)
	}
	t4 := Table4()
	if t4.NumRows() != 4 {
		t.Errorf("table4 rows = %d", t4.NumRows())
	}
	if !strings.Contains(OverheadsTable().String(), "0.14ns") {
		t.Error("overheads missing latency")
	}
}

func TestRunDispatch(t *testing.T) {
	tables, err := Run("table4", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Errorf("table4 run produced %d tables", len(tables))
	}
}

// TestRunAllDynamicRegistrations exercises every registered experiment
// end-to-end through the dispatch path on a tiny budget.
func TestRunAllDynamicRegistrations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	o := Options{Accesses: 40_000, WarmupFrac: 0.25, Benchmarks: []string{"ammp"}}
	for _, id := range IDs() {
		tables, err := Run(id, o)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", id)
		}
		for _, tb := range tables {
			if tb.String() == "" || tb.Markdown() == "" || tb.CSV() == "" {
				t.Errorf("%s rendered empty output", id)
			}
		}
	}
}

// TestTable6ResidentFallback: when a cache size swallows the working
// set (no evictions), the words-used average falls back to resident
// lines instead of reporting zero.
func TestTable6ResidentFallback(t *testing.T) {
	o := Options{Accesses: 60_000, WarmupFrac: 0.25, Benchmarks: []string{"crafty"}}
	rows, err := Table6(o)
	if err != nil {
		t.Fatal(err)
	}
	//ldis:nondet-ok per-entry assertions; no output depends on iteration order
	for label, v := range rows[0].AvgWords {
		if v <= 0 {
			t.Errorf("crafty %s words = %v, want positive via resident fallback", label, v)
		}
	}
}

func TestAblationExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several configurations")
	}
	o := fast("health")
	for _, id := range []string{"ablation-woc-ways", "ablation-threshold", "ablation-victim", "ablation-prefetch", "ablation-leaders", "ablation-traffic"} {
		tables, err := Run(id, o)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(tables) != 1 || tables[0].NumRows() == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestProfilesTable(t *testing.T) {
	pt := ProfilesTable()
	if pt.NumRows() != 27 {
		t.Errorf("profiles table has %d rows, want 27", pt.NumRows())
	}
}
