package exp

import (
	"fmt"

	"ldis/internal/cache"
	"ldis/internal/distill"
	"ldis/internal/obs"
	"ldis/internal/stats"
	"ldis/internal/workload"
)

// Fig6Row is one benchmark's MPKI reduction under the three LDIS
// configurations (paper Figure 6).
type Fig6Row struct {
	Benchmark    string
	BaselineMPKI float64
	Base, MT, RC float64 // % MPKI reduction vs baseline
}

// Fig6 compares LDIS-Base, LDIS-MT, and LDIS-MT-RC against the 1MB
// baseline. Each of the four configurations is its own scheduler cell.
func Fig6(o Options) ([]Fig6Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	names, grid, err := runGrid(o, 4, func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		if col == 0 {
			base, _ := baselineMPKI(prof, o, co)
			return base.MPKI(), nil
		}
		cfgs := [...]distill.Config{
			ldisBase(2, prof.Seed),
			ldisMT(2, prof.Seed),
			ldisMTRC(2, prof.Seed),
		}
		sys, _ := distillSystem(cfgs[col-1], co)
		return runWindowed(sys, prof, o, co).MPKI(), nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, len(grid))
	for i, name := range names {
		g := grid[i]
		rows[i] = Fig6Row{
			Benchmark:    name,
			BaselineMPKI: g[0],
			Base:         stats.PctReduction(g[0], g[1]),
			MT:           stats.PctReduction(g[0], g[2]),
			RC:           stats.PctReduction(g[0], g[3]),
		}
	}
	return rows, nil
}

// Fig6Summary computes the paper's avg and avgNomcf bars: the reduction
// of the *arithmetic mean MPKI* across benchmarks.
type Fig6Summary struct {
	Avg, AvgNomcf struct{ Base, MT, RC float64 }
}

// SummarizeFig6 reduces the per-benchmark rows to the avg bars. The
// mean-MPKI reduction needs the absolute MPKIs, reconstructed from the
// baseline and the reduction percentages.
func SummarizeFig6(rows []Fig6Row) Fig6Summary {
	var s Fig6Summary
	type acc struct{ base, b, m, r float64 }
	var all, nomcf acc
	for _, row := range rows {
		b := row.BaselineMPKI
		add := func(a *acc) {
			a.base += b
			a.b += b * (1 - row.Base/100)
			a.m += b * (1 - row.MT/100)
			a.r += b * (1 - row.RC/100)
		}
		add(&all)
		if row.Benchmark != "mcf" {
			add(&nomcf)
		}
	}
	fill := func(a acc) struct{ Base, MT, RC float64 } {
		if a.base == 0 {
			return struct{ Base, MT, RC float64 }{}
		}
		return struct{ Base, MT, RC float64 }{
			Base: 100 * (a.base - a.b) / a.base,
			MT:   100 * (a.base - a.m) / a.base,
			RC:   100 * (a.base - a.r) / a.base,
		}
	}
	s.Avg = fill(all)
	s.AvgNomcf = fill(nomcf)
	return s
}

func fig6Table(rows []Fig6Row) *stats.Table {
	t := stats.NewTable("Figure 6: % reduction in MPKI over baseline",
		"benchmark", "base MPKI", "LDIS-Base", "LDIS-MT", "LDIS-MT-RC")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.BaselineMPKI, r.Base, r.MT, r.RC)
	}
	s := SummarizeFig6(rows)
	t.AddRow("avg", "", s.Avg.Base, s.Avg.MT, s.Avg.RC)
	t.AddRow("avgNomcf", "", s.AvgNomcf.Base, s.AvgNomcf.MT, s.AvgNomcf.RC)
	return t
}

// Fig7Row is one benchmark's hit-miss breakdown for the baseline and
// the distill cache (paper Figure 7), as fractions of L2 accesses.
type Fig7Row struct {
	Benchmark string
	// Baseline.
	BaseHit float64
	// Distill cache.
	LOCHit, WOCHit, HoleMiss, LineMiss float64
}

// Fig7 measures the four-outcome breakdown of the default distill
// cache against the baseline's hit rate. The baseline and distill runs
// are independent scheduler cells; a cell returns [baseHit, LOC, WOC,
// hole, line] with only the slots its configuration produces filled.
func Fig7(o Options) ([]Fig7Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	names, grid, err := runGrid(o, 2, func(prof *workload.Profile, col int, co *obs.Cell) ([5]float64, error) {
		var cell [5]float64
		if col == 0 {
			_, cb := runTradWindowed(cache.Config{Name: "base-1MB", SizeBytes: 1 << 20, Ways: 8}, prof, o, co)
			cell[0] = cb.Stats().HitRate()
			return cell, nil
		}
		sysD, cd := distillSystem(ldisMTRC(2, prof.Seed), co)
		runWindowed(sysD, prof, o, co)
		ds := cd.Stats()
		total := float64(ds.Accesses)
		if total == 0 {
			total = 1
		}
		cell[1] = float64(ds.LOCHits) / total
		cell[2] = float64(ds.WOCHits) / total
		cell[3] = float64(ds.HoleMisses) / total
		cell[4] = float64(ds.LineMisses) / total
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig7Row, len(grid))
	for i, name := range names {
		g := grid[i]
		rows[i] = Fig7Row{
			Benchmark: name,
			BaseHit:   g[0][0],
			LOCHit:    g[1][1],
			WOCHit:    g[1][2],
			HoleMiss:  g[1][3],
			LineMiss:  g[1][4],
		}
	}
	return rows, nil
}

func fig7Table(rows []Fig7Row) *stats.Table {
	t := stats.NewTable("Figure 7: hit-miss breakdown (fractions of L2 accesses)",
		"benchmark", "base hit", "LOC-hit", "WOC-hit", "hole-miss", "line-miss", "distill hit")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.BaseHit, r.LOCHit, r.WOCHit, r.HoleMiss, r.LineMiss, r.LOCHit+r.WOCHit)
	}
	return t
}

// Fig8Row compares the distill cache against bigger traditional caches
// (paper Figure 8): % MPKI reduction over the 1MB baseline.
type Fig8Row struct {
	Benchmark           string
	Distill, MB15, MB20 float64
}

// Fig8 runs the capacity analysis: four scheduler cells per benchmark
// (baseline, distill, and the two bigger traditional caches).
func Fig8(o Options) ([]Fig8Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	names, grid, err := runGrid(o, 4, func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		switch col {
		case 0:
			base, _ := baselineMPKI(prof, o, co)
			return base.MPKI(), nil
		case 1:
			sysD, _ := distillSystem(ldisMTRC(2, prof.Seed), co)
			return runWindowed(sysD, prof, o, co).MPKI(), nil
		default:
			sz := []float64{1.5, 2.0}[col-2]
			w, _ := runTradWindowed(baselineConfig(fmt.Sprintf("trad-%.1fMB", sz), sz), prof, o, co)
			return w.MPKI(), nil
		}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig8Row, len(grid))
	for i, name := range names {
		g := grid[i]
		rows[i] = Fig8Row{
			Benchmark: name,
			Distill:   stats.PctReduction(g[0], g[1]),
			MB15:      stats.PctReduction(g[0], g[2]),
			MB20:      stats.PctReduction(g[0], g[3]),
		}
	}
	return rows, nil
}

func fig8Table(rows []Fig8Row) *stats.Table {
	t := stats.NewTable("Figure 8: % MPKI reduction: distill vs bigger traditional caches",
		"benchmark", "DISTILL 1MB", "TRAD 1.5MB", "TRAD 2MB")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Distill, r.MB15, r.MB20)
	}
	return t
}

// Table5Row gives MPKI for the cache-insensitive benchmarks under four
// configurations (paper Table 5).
type Table5Row struct {
	Benchmark                          string
	Trad1MB, LDIS1MB, Trad2MB, Trad4MB float64
}

// Table5 runs the Appendix A sanity check: LDIS must track the
// traditional cache when capacity does not matter.
func Table5(o Options) ([]Table5Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(o.Benchmarks) == 0 {
		// The seven Table-5 rows plus the four benchmarks Appendix A
		// mentions in text as having unchanged MPKI.
		o.Benchmarks = []string{"equake", "lucas", "mgrid", "applu", "mesa", "crafty", "gap",
			"gzip", "fma3d", "perlbmk", "eon"}
	}
	names, grid, err := runGrid(o, 4, func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		switch col {
		case 0:
			base, _ := baselineMPKI(prof, o, co)
			return base.MPKI(), nil
		case 1:
			sysD, _ := distillSystem(ldisMTRC(2, prof.Seed), co)
			return runWindowed(sysD, prof, o, co).MPKI(), nil
		default:
			sz := []float64{2, 4}[col-2]
			w, _ := runTradWindowed(baselineConfig(fmt.Sprintf("trad-%gMB", sz), sz), prof, o, co)
			return w.MPKI(), nil
		}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table5Row, len(grid))
	for i, name := range names {
		g := grid[i]
		rows[i] = Table5Row{Benchmark: name, Trad1MB: g[0], LDIS1MB: g[1], Trad2MB: g[2], Trad4MB: g[3]}
	}
	return rows, nil
}

func table5Table(rows []Table5Row) *stats.Table {
	t := stats.NewTable("Table 5: MPKI for cache-insensitive benchmarks",
		"benchmark", "Trad 1MB", "LDIS 1MB", "Trad 2MB", "Trad 4MB")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Trad1MB, r.LDIS1MB, r.Trad2MB, r.Trad4MB)
	}
	return t
}

func init() {
	registerExp("fig6", "MPKI reduction: LDIS-Base / LDIS-MT / LDIS-MT-RC", func(o Options) ([]*stats.Table, error) {
		rows, err := Fig6(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{fig6Table(rows)}, nil
	})
	registerExp("fig7", "hit-miss breakdown: baseline vs distill cache", func(o Options) ([]*stats.Table, error) {
		rows, err := Fig7(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{fig7Table(rows)}, nil
	})
	registerExp("fig8", "capacity analysis: distill vs 1.5MB and 2MB traditional", func(o Options) ([]*stats.Table, error) {
		rows, err := Fig8(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{fig8Table(rows)}, nil
	})
	registerExp("table5", "cache-insensitive benchmarks (Appendix A)", func(o Options) ([]*stats.Table, error) {
		rows, err := Table5(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{table5Table(rows)}, nil
	})
}
