package exp

import (
	"ldis/internal/hierarchy"
	"ldis/internal/obs"
	"ldis/internal/sampler"
	"ldis/internal/sfp"
	"ldis/internal/stats"
	"ldis/internal/workload"
)

// Fig13Row compares spatial footprint prediction against line
// distillation (paper Figure 13): % MPKI reduction over the baseline.
type Fig13Row struct {
	Benchmark               string
	SFP64kB, SFP256kB, LDIS float64
}

// Fig13 runs SFP with 16k-entry (64kB) and 64k-entry (256kB) predictors
// — both reverter-wrapped, as in the paper — against LDIS-MT-RC. Each
// configuration (plus the baseline) is its own scheduler cell.
func Fig13(o Options) ([]Fig13Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	names, grid, err := runGrid(o, 4, func(prof *workload.Profile, col int, co *obs.Cell) (float64, error) {
		switch col {
		case 0:
			base, _ := baselineMPKI(prof, o, co)
			return base.MPKI(), nil
		case 1, 2:
			cfg := sfp.DefaultConfig()
			cfg.PredictorEntries = []int{16 << 10, 64 << 10}[col-1]
			cfg.Seed = prof.Seed
			// Same short-trace reverter band as ldisMTRC (see exp.go).
			sc := sampler.DefaultConfig(cfg.Sets())
			sc.LowWatermark = 112
			sc.HighWatermark = 144
			cfg.SamplerConfig = &sc
			sys, _ := hierarchy.SFP(cfg)
			return runWindowed(sys, prof, o, co).MPKI(), nil
		default:
			sysD, _ := distillSystem(ldisMTRC(2, prof.Seed), co)
			return runWindowed(sysD, prof, o, co).MPKI(), nil
		}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig13Row, len(grid))
	for i, name := range names {
		g := grid[i]
		rows[i] = Fig13Row{
			Benchmark: name,
			SFP64kB:   stats.PctReduction(g[0], g[1]),
			SFP256kB:  stats.PctReduction(g[0], g[2]),
			LDIS:      stats.PctReduction(g[0], g[3]),
		}
	}
	return rows, nil
}

func fig13Table(rows []Fig13Row) *stats.Table {
	t := stats.NewTable("Figure 13: % MPKI reduction: SFP vs LDIS (equal tag entries)",
		"benchmark", "SFP-64kB", "SFP-256kB", "LDIS")
	var a, b, c float64
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.SFP64kB, r.SFP256kB, r.LDIS)
		a += r.SFP64kB
		b += r.SFP256kB
		c += r.LDIS
	}
	if n := float64(len(rows)); n > 0 {
		t.AddRow("mean", a/n, b/n, c/n)
	}
	return t
}

func init() {
	registerExp("fig13", "SFP (spatial footprint predictor) vs LDIS", func(o Options) ([]*stats.Table, error) {
		rows, err := Fig13(o)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{fig13Table(rows)}, nil
	})
}
