package exp

import (
	"path/filepath"
	"reflect"
	"testing"

	"ldis/internal/obs"
)

// TestManifestDeterministicAcrossWorkerCounts pins the manifest
// determinism contract: two sweeps of the same options at different
// -parallel values must produce deeply equal manifests once
// StripTimings clears the fields that legitimately vary (timestamps,
// durations, worker count). Everything else — cell reports, span call
// counts, merged metrics, scheduler counters, progress counts — is a
// pure function of the configuration.
func TestManifestDeterministicAcrossWorkerCounts(t *testing.T) {
	ids := []string{"fig6", "table6"}
	build := func(workers int) *obs.Manifest {
		o := DefaultOptions()
		o.Accesses = 30_000
		o.Benchmarks = []string{"mcf", "art", "health"}
		o.Parallel = workers
		o.Obs = obs.NewRun(nil)
		for _, id := range ids {
			if _, err := Run(id, o); err != nil {
				t.Fatalf("workers=%d %s: %v", workers, id, err)
			}
		}
		m := &obs.Manifest{
			Tool:        "exp-test",
			Workers:     workers,
			Fingerprint: o.Fingerprint(),
			Experiments: ids,
			Params:      o.ManifestParams(),
		}
		m.Snapshot(o.Obs)
		m.StripTimings()
		return m
	}
	serial := build(1)
	fanned := build(4)
	if !reflect.DeepEqual(serial, fanned) {
		t.Errorf("stripped manifests diverge between 1 and 4 workers:\n serial %+v\n fanned %+v", serial, fanned)
	}
	if len(serial.Cells) == 0 {
		t.Fatal("manifest recorded no cells")
	}

	// The stripped manifest must also survive the validating
	// write/read round trip byte-for-byte.
	path := filepath.Join(t.TempDir(), obs.ManifestFile)
	if err := obs.WriteManifest(path, serial); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, back) {
		t.Errorf("manifest changed across write/read round trip:\n wrote %+v\n read %+v", serial, back)
	}
}
