// Package atest is an analysistest-style golden harness for the
// ldislint analyzers: fixture packages under an analyzer's testdata
// directory annotate the lines they expect to be flagged with
//
//	code() // want "regexp"
//
// comments, and the harness fails the test on any mismatch in either
// direction — a missing diagnostic or an unexpected one. Fixtures are
// real, compilable packages (they are loaded through the same `go
// list -export` pipeline as production lint runs), so a fixture that
// drifts out of sync with the language fails loudly.
package atest

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"

	"ldis/internal/analysis"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package at dir (a path relative to the
// calling test, e.g. "testdata/src/a"), applies the analyzer, and
// compares the diagnostics against the fixture's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := analysis.Load(".", []string{"./" + dir})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line, re: re, raw: pat,
						})
					}
				}
			}
		}
	}

	// Suppressed diagnostics are filtered like the drivers filter them:
	// a fixture line with a justified suppression directive expects no
	// // want comment, which is exactly the "fails without its
	// suppression directive" golden property.
	diags := analysis.Unsuppressed(analysis.Run([]*analysis.Analyzer{a}, pkgs))
	var unexpected []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, msg := range unexpected {
		t.Error(msg)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
