package analysis

import "sort"

// Run applies every analyzer to every loaded package, in the loader's
// dependency order so that facts flow bottom-up, and returns the
// diagnostics for the target (non-DepOnly) packages sorted by
// position. Packages loaded only as dependencies are still analyzed —
// their facts feed dependent packages — but their diagnostics are
// dropped, matching `go vet`'s per-target reporting.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	facts := NewFactStore()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		target := !pkg.DepOnly
		dirs := ParseDirectives(pkg.Fset, pkg.Syntax)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Syntax,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				Directives:  dirs,
				ModuleFacts: true,
				facts:       facts,
				report: func(d Diagnostic) {
					if target {
						diags = append(diags, d)
					}
				},
			}
			// Analyzer errors are programming errors in the analyzer
			// itself; surface them as diagnostics rather than aborting
			// the whole run.
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Message:  "internal error: " + err.Error(),
				})
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// RunSingle applies the analyzers to one package with no cross-package
// facts — the unitchecker (`go vet -vettool`) regime.
func RunSingle(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	dirs := ParseDirectives(pkg.Fset, pkg.Syntax)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Syntax,
			Pkg:         pkg.Types,
			TypesInfo:   pkg.Info,
			Directives:  dirs,
			ModuleFacts: false,
			facts:       NewFactStore(),
			report:      func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Message:  "internal error: " + err.Error(),
			})
		}
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
