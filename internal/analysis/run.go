package analysis

import "sort"

// Run applies every analyzer to every loaded package, in the loader's
// dependency order so that facts flow bottom-up, and returns the
// diagnostics for the target (non-DepOnly) packages sorted by
// position. Packages loaded only as dependencies are still analyzed —
// their facts feed dependent packages — but their diagnostics are
// dropped, matching `go vet`'s per-target reporting. Diagnostics
// silenced by a justified suppression directive are included with
// Suppressed set; filter with Unsuppressed for text output and exit
// codes.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	diags, _ := RunWithUsage(analyzers, pkgs)
	return diags
}

// RunWithUsage is Run plus the set of suppression directives the
// analyzers actually consulted, the input to StaleSuppressions.
func RunWithUsage(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, *UsedDirectives) {
	facts := NewFactStore()
	used := NewUsedDirectives()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		target := !pkg.DepOnly
		dirs := ParseDirectives(pkg.Fset, pkg.Syntax)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Syntax,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				Directives:  dirs,
				ModuleFacts: true,
				facts:       facts,
				used:        used,
				report: func(d Diagnostic) {
					if target {
						diags = append(diags, d)
					}
				},
			}
			// Analyzer errors are programming errors in the analyzer
			// itself; surface them as diagnostics rather than aborting
			// the whole run.
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Message:  "internal error: " + err.Error(),
				})
			}
		}
	}
	sortDiagnostics(diags)
	return diags, used
}

// RunSingle applies the analyzers to one package with no cross-package
// facts — the unitchecker (`go vet -vettool`) regime.
func RunSingle(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	dirs := ParseDirectives(pkg.Fset, pkg.Syntax)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Syntax,
			Pkg:         pkg.Types,
			TypesInfo:   pkg.Info,
			Directives:  dirs,
			ModuleFacts: false,
			facts:       NewFactStore(),
			used:        NewUsedDirectives(),
			report:      func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Message:  "internal error: " + err.Error(),
			})
		}
	}
	sortDiagnostics(diags)
	return diags
}

// StaleSuppressions runs the analyzers over the loaded packages and
// reports every suppression directive in a target package that no
// analyzer consulted — the directive's diagnostic is gone, so the
// suppression (and the invariant exception it documents) is stale —
// plus every //ldis: directive whose name no analyzer knows (a typo
// silently disables nothing but also enforces nothing). `make
// lint-fix-check` fails on any such finding.
func StaleSuppressions(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	_, used := RunWithUsage(analyzers, pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		dirs := ParseDirectives(pkg.Fset, pkg.Syntax)
		for _, dir := range dirs.All() {
			pos := pkg.Fset.Position(dir.Pos)
			switch {
			case !KnownDirective(dir.Name):
				diags = append(diags, Diagnostic{
					Analyzer: "stale",
					Pos:      pos,
					Message:  "unknown directive //ldis:" + dir.Name,
				})
			case SuppressionDirective(dir.Name) && dir.Reason != "" && !used.Used(pos):
				diags = append(diags, Diagnostic{
					Analyzer: "stale",
					Pos:      pos,
					Message:  "stale suppression //ldis:" + dir.Name + ": no analyzer diagnostic on this line needs it anymore; delete the directive",
				})
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
