// Package a is the detrange golden fixture.
package a

import "sort"

// Flagged iterates a map directly: the iteration order could reach the
// caller.
func Flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map`
		total += v
	}
	return total
}

// SortedKeys is the sanctioned pattern: collect (annotated), sort,
// then iterate the slice.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//ldis:nondet-ok key collection only; the slice is sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Slices ranges over ordered containers; never flagged.
func Slices(xs []int, s string) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	for _, r := range s {
		total += int(r)
	}
	for i := range 4 {
		total += i
	}
	return total
}

// Bare has a suppression without a justification: the suppression is
// void and both the directive and the range are reported.
func Bare(m map[string]int) {
	//ldis:nondet-ok // want `//ldis:nondet-ok requires a justification`
	for range m { // want `range over map`
		_ = m
	}
}
