package detrange_test

import (
	"testing"

	"ldis/internal/analysis/atest"
	"ldis/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	atest.Run(t, detrange.Analyzer, "testdata/src/a")
}
