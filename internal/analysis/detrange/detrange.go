// Package detrange forbids ranging over maps in the simulator's
// deterministic-output packages.
//
// The experiment engine's contract — byte-identical tables at any
// -parallel worker count — dies the moment map iteration order can
// reach an output row, a table cell, or a result-assembly index. In
// the packages that assemble output (internal/exp, internal/stats,
// internal/par), the benchmark registry that feeds row order
// (internal/workload), the chaos-suite fault injectors whose
// decisions must reproduce bit-for-bit (internal/faultinject), and
// the miss-ratio-curve engine whose SHARDS sampling must be a pure
// function of (address, seed) (internal/mrc), and the observability
// layer whose manifests must diff clean at any worker count
// (internal/obs), and the partition controller whose per-epoch
// allocation decisions feed experiment tables directly
// (internal/partition), a
// `for ... range m` over a map is therefore banned
// outright: either iterate a sorted key slice, or annotate the site
// with `//ldis:nondet-ok <why>` proving the order cannot reach any
// output (for example, a key collection that is sorted immediately
// below).
package detrange

import (
	"go/ast"
	"go/types"
	"strings"

	"ldis/internal/analysis"
)

// Packages lists the deterministic-output packages the check covers.
var Packages = []string{
	"ldis/internal/exp",
	"ldis/internal/stats",
	"ldis/internal/par",
	"ldis/internal/workload",
	"ldis/internal/faultinject",
	"ldis/internal/mrc",
	"ldis/internal/obs",
	// The shard scheduler and merge path: per-shard results must merge
	// identically at any scheduling, so map iteration is off-limits.
	"ldis/internal/hierarchy",
	// The partition controller: epoch decisions (allocations, agreement
	// counters) land in rendered tables, so iteration order is output
	// order.
	"ldis/internal/partition",
	// The energy model: way-memoization totals feed the orgs acceptance
	// gate and its rendered tables, so accumulation order must be fixed.
	"ldis/internal/costmodel",
}

// Analyzer is the detrange analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "forbid map iteration in deterministic-output packages (internal/exp, internal/stats, internal/par, internal/workload, internal/faultinject, internal/mrc, internal/obs, internal/hierarchy, internal/partition, internal/costmodel) unless annotated //ldis:nondet-ok",
	Run:  run,
}

func inScope(path string) bool {
	for _, p := range Packages {
		if path == p {
			return true
		}
	}
	// Fixture packages under this analyzer's own testdata tree are
	// always in scope so the golden tests exercise the real check.
	return strings.Contains(path, "/detrange/testdata/")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	pass.Directives.CheckJustifications(pass, analysis.DirNondetOK)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.ReportfSup(rs.Pos(), analysis.DirNondetOK, "range over map %s in deterministic-output package %s; iterate sorted keys instead, or annotate //ldis:nondet-ok with why the order cannot reach any output", types.ExprString(rs.X), pass.Pkg.Path())
			return true
		})
	}
	return nil
}
