package sharddisjoint_test

import (
	"testing"

	"ldis/internal/analysis/atest"
	"ldis/internal/analysis/sharddisjoint"
)

func TestShardDisjoint(t *testing.T) {
	atest.Run(t, sharddisjoint.Analyzer, "testdata/src/a")
}
