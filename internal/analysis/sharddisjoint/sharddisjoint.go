// Package sharddisjoint proves the sharded runner's ownership
// argument: functions reachable from hierarchy.RunSharded's shard
// workers touch only state owned by their shard, and merge functions
// fold sibling counters without ever writing the sibling.
//
// PR 6's intra-run sharding rests on a disjointness argument — shard s
// owns exactly the lines with la&(shards-1)==s, so per-shard cache
// state and counters never alias and summing them reproduces the
// sequential totals. That argument was prose in sharded.go; one
// package-level accumulator three calls below System.Do would
// silently break it, and the race detector only notices when two
// writes happen to collide during a test run. This analyzer makes the
// argument a compile-time invariant:
//
//   - Shard confinement. Every function is summarized bottom-up as
//     "confined" when its body touches only state reachable from its
//     own receiver, parameters, and locals: writing any package-level
//     variable, reading a package-level map (mutable and
//     iteration-order-unstable), launching a goroutine, or making a
//     dynamic call through anything not derived from the shard's own
//     state all break confinement, as does calling an unconfined (or
//     unverifiable) in-module function. Summaries are exported as
//     facts, so the hierarchy roots verify transitively into the
//     distill/cache/compress/sfp organization packages. Standard
//     library calls are exempt: they cannot name module globals.
//     Reads of non-map package-level variables are allowed — the tree
//     uses them as frozen-after-init lookup tables, and writes are
//     banned everywhere on shard paths, so they are constant there.
//
//   - Roots. hierarchy's doBatchShard (the per-shard worker body) and
//     every merge function are verification roots; violations
//     anywhere in their call graphs are reported with the root named,
//     noalloc-style.
//
//   - Merge discipline. A merge function (MergeShard, or Merge whose
//     parameter type equals its receiver type) may read the sibling
//     and write the receiver, never the reverse: writing through the
//     parameter would make merge order — and therefore worker
//     scheduling — observable. Merge functions are also held to
//     confinement, which is what "touches only disjoint counter
//     fields" compiles down to: receiver-derived fields only.
//
//   - Shard-owned fields. A struct field annotated //ldis:shard-owned
//     is a per-shard counter; only confined functions may write it.
//     An unconfined writer is exactly the aliasing hazard the
//     annotation documents against: code that mixes a per-shard
//     counter with package-global state.
//
// `//ldis:shard-ok <why>` suppresses one diagnostic; the
// justification is mandatory.
package sharddisjoint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ldis/internal/analysis"
)

// Analyzer is the sharddisjoint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sharddisjoint",
	Doc:  "functions reachable from hierarchy.RunSharded shard workers touch only shard-owned state; merge functions write the receiver only",
	Run:  run,
}

// Facts exported per function and per annotated field.
const (
	factConfined   = "confined"
	factShardOwned = "shardowned"
)

// shardRoots names the shard worker entry points per package: the
// functions whose whole call graphs must be shard-confined. Fixture
// packages under this analyzer's testdata tree match by function name
// alone, like the gridpure cell takers.
var shardRoots = map[string]map[string]bool{
	"ldis/internal/hierarchy": {
		"doBatchShard": true,
		"MergeShard":   true,
	},
}

func isRoot(pkg string, fn *ast.FuncDecl) bool {
	if names, ok := shardRoots[pkg]; ok {
		return names[fn.Name.Name]
	}
	if strings.Contains(pkg, "/sharddisjoint/testdata/") {
		for _, names := range shardRoots {
			if names[fn.Name.Name] {
				return true
			}
		}
	}
	return false
}

type finding struct {
	pos token.Pos
	msg string
}

type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// fieldWrite records one selector write for the shard-owned check.
type fieldWrite struct {
	pos token.Pos
	key string // "pkgpath.Struct.field"
}

type funcData struct {
	decl        *ast.FuncDecl
	obj         *types.Func
	findings    []finding
	calls       []callSite
	fieldWrites []fieldWrite
	// confined summary memoization: 0 unvisited, 1 in progress, 2 done.
	state    int
	confined bool
}

type checker struct {
	pass  *analysis.Pass
	funcs map[*types.Func]*funcData
	// ownedFields holds the //ldis:shard-owned field keys declared in
	// this package (imported packages' keys come through facts).
	ownedFields map[string]bool
}

func run(pass *analysis.Pass) error {
	pass.Directives.CheckJustifications(pass, analysis.DirShardOK)
	c := &checker{
		pass:        pass,
		funcs:       make(map[*types.Func]*funcData),
		ownedFields: make(map[string]bool),
	}

	// Pass 1: collect //ldis:shard-owned field annotations and export
	// them as keyed facts for importing packages.
	c.collectOwnedFields()

	// Pass 2: collect and scan every function declaration.
	var order []*funcData
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			data := &funcData{decl: fd, obj: obj}
			c.funcs[obj] = data
			order = append(order, data)
		}
	}
	for _, data := range order {
		c.scanBody(data)
	}

	// Pass 3: compute and export the confinement summary of every
	// function, so importing packages verify cross-package calls.
	for _, data := range order {
		pass.ExportFact(data.obj, factConfined, c.isConfined(data.obj))
	}

	// Pass 4: report transitively from the shard roots and the merge
	// functions, then apply the merge write discipline and the
	// shard-owned field check.
	reported := make(map[*types.Func]bool)
	for _, data := range order {
		if isRoot(pass.Pkg.Path(), data.decl) || isMergeFunc(pass.TypesInfo, data.decl) {
			c.report(data, data, reported)
		}
	}
	for _, data := range order {
		if isMergeFunc(pass.TypesInfo, data.decl) {
			c.checkMergeWrites(data)
		}
	}
	for _, data := range order {
		if c.isConfined(data.obj) {
			continue
		}
		for _, fw := range data.fieldWrites {
			if c.shardOwned(fw.key) {
				c.pass.ReportfSup(fw.pos, analysis.DirShardOK,
					"%s writes //ldis:shard-owned field %s but is not shard-confined; per-shard counters may only be written by code that touches no package-level state", data.obj.Name(), fw.key)
			}
		}
	}
	return nil
}

// collectOwnedFields records every struct field whose declaration
// carries //ldis:shard-owned (doc comment, same line, or line above).
func (c *checker) collectOwnedFields() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				annotated := analysis.DeclHas(field.Doc, analysis.DirShardOwned) ||
					analysis.DeclHas(field.Comment, analysis.DirShardOwned)
				if !annotated {
					if _, ok := c.pass.Directives.At(field.Pos(), analysis.DirShardOwned); ok {
						annotated = true
					}
				}
				if !annotated {
					continue
				}
				for _, name := range field.Names {
					key := c.pass.Pkg.Path() + "." + ts.Name.Name + "." + name.Name
					c.ownedFields[key] = true
					c.pass.ExportKeyedFact(key, factShardOwned, true)
				}
			}
			return true
		})
	}
}

func (c *checker) shardOwned(key string) bool {
	if c.ownedFields[key] {
		return true
	}
	v, ok := c.pass.ImportKeyedFact(key, factShardOwned)
	if !ok {
		return false
	}
	owned, _ := v.(bool)
	return owned
}

// fieldKey names a selected field as "pkgpath.Struct.field" using the
// selection's receiver type, matching collectOwnedFields' keys for
// direct (non-promoted) selections.
func fieldKey(sel *types.Selection) (string, bool) {
	v, ok := sel.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return "", false
	}
	t := sel.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	} else if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name(), true
}

// ---------------------------------------------------------------------
// Body scanning
// ---------------------------------------------------------------------

func (c *checker) scanBody(data *funcData) {
	info := c.pass.TypesInfo
	der := newDerivedTracker(c.pass, data.decl)
	add := func(pos token.Pos, format string, args ...any) {
		data.findings = append(data.findings, finding{pos, fmt.Sprintf(format, args...)})
	}

	// flagged dedupes the package-level map check against write
	// findings landing on the same identifier.
	flagged := make(map[token.Pos]bool)

	checkWrite := func(lhs ast.Expr) {
		// Record selector writes for the shard-owned field check.
		if selExpr, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			if sel, ok := info.Selections[selExpr]; ok {
				if key, ok := fieldKey(sel); ok {
					data.fieldWrites = append(data.fieldWrites, fieldWrite{selExpr.Sel.Pos(), key})
				}
			}
		}
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		if v, ok := info.Uses[root].(*types.Var); ok && pkgLevel(v) {
			flagged[root.Pos()] = true
			add(root.Pos(), "writes package-level variable %q; shard workers must touch only state reachable from their own shard's parameters", v.Name())
		}
	}

	ast.Inspect(data.decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if e.Tok == token.DEFINE {
					continue
				}
				checkWrite(lhs)
			}

		case *ast.IncDecStmt:
			checkWrite(e.X)

		case *ast.GoStmt:
			add(e.Pos(), "launches a goroutine; shard workers are scheduled by the runner and must stay single-threaded")

		case *ast.CallExpr:
			// Conversions and builtins are not calls: they cannot
			// reach module state.
			if tv, ok := info.Types[e.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
				return true
			}
			callee := staticCallee(info, e)
			if callee == nil {
				// Dynamic dispatch: sanctioned only through the shard's
				// own state (an interface field of the shard's system,
				// a parameter-derived func value) — the implementation
				// then answers for its own confinement via facts.
				if !der.derived(receiverOf(e)) {
					add(e.Pos(), "dynamic call through %s, which is not derived from the shard's own state", types.ExprString(e.Fun))
				}
				return true
			}
			if callee.Pkg() == nil || !inModule(callee.Pkg().Path()) {
				return true // stdlib cannot name module globals
			}
			data.calls = append(data.calls, callSite{e.Pos(), callee})
		}
		return true
	})

	// Package-level maps are mutable, shared, and iteration-unstable:
	// even reads are off-limits on shard paths.
	ast.Inspect(data.decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || flagged[id.Pos()] {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !pkgLevel(v) {
			return true
		}
		if _, isMap := v.Type().Underlying().(*types.Map); isMap {
			add(id.Pos(), "reads package-level map %q; map state is shared across shards and its iteration order is unstable", v.Name())
		}
		return true
	})
}

// report emits the findings of fn (and, recursively, of its in-module
// callees) in the context of the given verification root.
func (c *checker) report(root, fn *funcData, reported map[*types.Func]bool) {
	if reported[fn.obj] {
		return
	}
	reported[fn.obj] = true
	suffix := ""
	if fn != root {
		suffix = fmt.Sprintf(" (in %s, reachable from shard root %s)", fn.obj.Name(), root.obj.Name())
	}
	for _, f := range fn.findings {
		c.pass.ReportfSup(f.pos, analysis.DirShardOK, "%s%s", f.msg, suffix)
	}
	for _, call := range fn.calls {
		if data, ok := c.funcs[call.callee]; ok {
			c.report(root, data, reported)
			continue
		}
		if c.callConfined(call.callee) {
			continue
		}
		if !c.pass.ModuleFacts && !samePackage(c.pass.Pkg, call.callee) {
			// Unitchecker regime: no cross-package facts; the
			// standalone driver is the authoritative gate.
			continue
		}
		c.pass.ReportfSup(call.pos, analysis.DirShardOK, "call to %s cannot be verified shard-confined%s", qualifiedName(call.callee), suffix)
	}
}

// checkMergeWrites enforces the merge write discipline: a merge
// function folds the sibling's counters into the receiver; any write
// through the parameter makes merge order observable and breaks the
// commutativity the sharded runner's determinism rests on.
func (c *checker) checkMergeWrites(data *funcData) {
	info := c.pass.TypesInfo
	params := make(map[*types.Var]bool)
	if data.decl.Type.Params != nil {
		for _, field := range data.decl.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					params[v] = true
				}
			}
		}
	}
	checkWrite := func(lhs ast.Expr) {
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		// A write to the bare parameter itself (o = nil) is a local
		// rebind, not a write through it.
		if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
			return
		}
		if v, ok := info.Uses[root].(*types.Var); ok && params[v] {
			c.pass.ReportfSup(lhs.Pos(), analysis.DirShardOK,
				"merge function %s writes through its parameter %q; merges fold the sibling into the receiver only, so shard merges stay commutative", data.obj.Name(), v.Name())
		}
	}
	ast.Inspect(data.decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			if e.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range e.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(e.X)
		}
		return true
	})
}

// isMergeFunc reports whether fd is a merge function: a method named
// MergeShard, or one named Merge whose (single) parameter's type
// equals the receiver's type — the commutative fold shape the sharded
// runner and the obs registry use.
func isMergeFunc(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	switch fd.Name.Name {
	case "MergeShard":
		return true
	case "Merge":
		obj, ok := info.Defs[fd.Name].(*types.Func)
		if !ok {
			return false
		}
		sig := obj.Type().(*types.Signature)
		if sig.Params().Len() != 1 || sig.Recv() == nil {
			return false
		}
		return namedOf(sig.Params().At(0).Type()) != nil &&
			namedOf(sig.Params().At(0).Type()) == namedOf(sig.Recv().Type())
	}
	return false
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isConfined computes the bottom-up shard-confinement summary of fn.
// Cycles are resolved optimistically, like noalloc's clean summary.
func (c *checker) isConfined(fn *types.Func) bool {
	data, ok := c.funcs[fn]
	if !ok {
		return c.callConfined(fn)
	}
	switch data.state {
	case 1:
		return true // optimistic on cycles
	case 2:
		return data.confined
	}
	data.state = 1
	// The full loop (no early break) marks every live suppression used
	// for the stale sweep.
	confined := true
	for _, f := range data.findings {
		if !c.pass.Suppressed(f.pos, analysis.DirShardOK) {
			confined = false
		}
	}
	for _, call := range data.calls {
		if !confined {
			break
		}
		if sub, ok := c.funcs[call.callee]; ok {
			confined = c.isConfined(sub.obj)
		} else if !c.callConfined(call.callee) {
			if !c.pass.ModuleFacts && !samePackage(c.pass.Pkg, call.callee) {
				continue // unitchecker regime: degrade gracefully
			}
			confined = c.pass.Suppressed(call.pos, analysis.DirShardOK)
		}
	}
	data.state = 2
	data.confined = confined
	return confined
}

// callConfined reports whether a callee without a local body is known
// shard-confined via exported facts.
func (c *checker) callConfined(callee *types.Func) bool {
	v, ok := c.pass.ImportFact(callee, factConfined)
	if !ok {
		return false
	}
	confined, _ := v.(bool)
	return confined
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

func inModule(path string) bool {
	return path == "ldis" || strings.HasPrefix(path, "ldis/")
}

func samePackage(pkg *types.Package, fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == pkg.Path()
}

func qualifiedName(fn *types.Func) string {
	return strings.TrimPrefix(analysis.ObjectKey(fn), "ldis/")
}

// pkgLevel reports whether v is a package-level variable (of this or
// any imported package).
func pkgLevel(v *types.Var) bool {
	return v != nil && !v.IsField() && v.Pkg() != nil &&
		v.Parent() == v.Pkg().Scope()
}

// rootIdent walks to the base identifier of an lvalue chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// receiverOf returns the expression a dynamic call dispatches through:
// the selector base for method values, the call expression itself for
// func values.
func receiverOf(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return call.Fun
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv().Underlying()) {
				return nil // interface dispatch is dynamic
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return staticCallee(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return staticCallee(info, &ast.CallExpr{Fun: fun.X})
	}
	return nil
}

// ---------------------------------------------------------------------
// Derivation tracking
// ---------------------------------------------------------------------

// derivedTracker decides whether an expression derives from the
// function's own state: its receiver, parameters, named results,
// locals built from those, and fresh literals. Dynamic dispatch is
// sanctioned only through derived expressions — the object dispatched
// on then belongs to the shard, and the implementation's own
// confinement is enforced separately through facts.
type derivedTracker struct {
	pass  *analysis.Pass
	owned map[*types.Var]bool
	// assigns maps each local to every right-hand side assigned to it.
	assigns map[*types.Var][]ast.Expr
	lo, hi  token.Pos
	memo    map[*types.Var]int // 0 new, 1 visiting, 2 ok, 3 bad
}

func newDerivedTracker(pass *analysis.Pass, decl *ast.FuncDecl) *derivedTracker {
	t := &derivedTracker{
		pass:    pass,
		owned:   make(map[*types.Var]bool),
		assigns: make(map[*types.Var][]ast.Expr),
		lo:      decl.Pos(),
		hi:      decl.End(),
		memo:    make(map[*types.Var]int),
	}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					t.owned[v] = true
				}
			}
		}
	}
	collect(decl.Recv)
	collect(decl.Type.Params)
	collect(decl.Type.Results)

	record := func(lhs, rhs ast.Expr) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v := t.varOf(id); v != nil {
				t.assigns[v] = append(t.assigns[v], rhs)
			}
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					record(lhs, s.Rhs[i])
				}
			} else if len(s.Rhs) == 1 {
				// Comma-ok / multi-value: every LHS derives from the
				// single RHS (m, ok := x.(Iface); v, err := f()).
				for _, lhs := range s.Lhs {
					record(lhs, s.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					record(name, s.Values[i])
				}
			}
		}
		return true
	})
	return t
}

func (t *derivedTracker) varOf(id *ast.Ident) *types.Var {
	if v, ok := t.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := t.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

func (t *derivedTracker) derived(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := t.varOf(x)
		if v == nil {
			return false
		}
		return t.varDerived(v)
	case *ast.SelectorExpr:
		// A field of a derived value is derived; pkg.Var has a PkgName
		// base, which is not a derived expression.
		return t.derived(x.X)
	case *ast.IndexExpr:
		return t.derived(x.X)
	case *ast.StarExpr:
		return t.derived(x.X)
	case *ast.UnaryExpr:
		return t.derived(x.X)
	case *ast.TypeAssertExpr:
		return t.derived(x.X)
	case *ast.CompositeLit, *ast.BasicLit:
		return true // fresh values belong to the shard
	case *ast.CallExpr:
		// A conversion or builtin over derived operands yields a
		// derived value (uint64(s.N), s.lines[i:j]).
		if tv, ok := t.pass.TypesInfo.Types[x.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
			for _, arg := range x.Args {
				if !t.derived(arg) {
					return false
				}
			}
			return true
		}
		// The result of a method call on a derived receiver is derived
		// (sys.StartWindow(), s.L1D.Stats()).
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := t.pass.TypesInfo.Selections[sel]; isSel {
				return t.derived(sel.X)
			}
		}
		return false
	}
	return false
}

// varDerived reports whether a variable derives from function-owned
// state: a parameter/receiver/named result, or a local whose every
// recorded assignment derives. A local with no recorded assignments
// (range variables, zero-value declarations) is owned by construction.
func (t *derivedTracker) varDerived(v *types.Var) bool {
	if t.owned[v] {
		return true
	}
	if v.Pos() < t.lo || v.Pos() > t.hi {
		return false // captured from outside the function
	}
	switch t.memo[v] {
	case 1, 2:
		return true // optimistic on self-assignment cycles
	case 3:
		return false
	}
	rhss := t.assigns[v]
	t.memo[v] = 1
	ok := true
	for _, rhs := range rhss {
		if !t.derived(rhs) {
			ok = false
			break
		}
	}
	if ok {
		t.memo[v] = 2
	} else {
		t.memo[v] = 3
	}
	return ok
}
