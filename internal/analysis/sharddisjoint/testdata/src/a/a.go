// Package a is the sharddisjoint golden fixture: a fake shard worker
// committing every confinement violation the analyzer must flag, the
// merge write discipline, //ldis:shard-owned field protection, and the
// sanctioned patterns the analyzer must accept.
package a

import (
	b "ldis/internal/analysis/sharddisjoint/testdata/src/b"
)

var counter int
var table = map[int]int{1: 2}
var hook func(int) int

// Org stands in for a cache organization dispatched through the
// shard's own state.
type Org interface {
	Touch(n int)
}

// Shard is the per-worker state a shard worker owns.
type Shard struct {
	Org Org
	N   int
}

// doBatchShard matches the hierarchy shard-worker root by name, so its
// whole call graph is verified shard-confined.
func doBatchShard(s *Shard, n int) {
	counter++    // want `writes package-level variable "counter"`
	_ = table[n] // want `reads package-level map "table"`
	_ = hook(n)  // want `dynamic call through hook, which is not derived from the shard's own state`
	go spin()    // want `launches a goroutine`

	s.Org.Touch(n) // dispatch through shard-owned state: accepted
	s.N += n       // write through the shard's own parameter: accepted
	helper(s)

	_ = b.Confined(n) // verified via the exported fact: no diagnostic
	_ = b.Tainted(n)  // want `call to internal/analysis/sharddisjoint/testdata/src/b\.Tainted cannot be verified shard-confined`

	//ldis:shard-ok fixture: frozen-after-init gauge, single writer
	counter = n
}

func spin() {}

// helper is unannotated but reachable from the shard worker, so its
// body is checked transitively.
func helper(s *Shard) {
	counter++ // want `writes package-level variable "counter".*\(in helper, reachable from shard root doBatchShard\)`
	s.N++
}

// Stats is a merge-discipline target: MergeShard folds the sibling
// into the receiver.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// MergeShard reads the sibling and writes the receiver — except for
// the one flagged line that zeroes the sibling, which would make merge
// order observable.
func (s *Stats) MergeShard(o *Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	o.Hits = 0 // want `merge function MergeShard writes through its parameter "o"`
}

// Merge has the merge shape (parameter type equals receiver type), is
// held to the same discipline, and passes it.
func (s *Stats) Merge(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
}

// ShardState carries an annotated per-shard counter.
type ShardState struct {
	Hits uint64 //ldis:shard-owned
	// Misses is annotated through its doc comment instead.
	//
	//ldis:shard-owned
	Misses uint64
}

// bump is shard-confined, so it may write the owned counters.
func bump(s *ShardState) {
	s.Hits++
	s.Misses++
}

// Leak writes a package-level variable, so it is not shard-confined —
// and therefore may not touch a //ldis:shard-owned counter.
func Leak(s *ShardState, n int) {
	counter += n
	s.Hits++ // want `Leak writes //ldis:shard-owned field .*ShardState\.Hits but is not shard-confined`
}

func Unjustified() {
	//ldis:shard-ok // want `//ldis:shard-ok requires a justification`
	counter++
}
