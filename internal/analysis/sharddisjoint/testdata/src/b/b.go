// Package b exercises sharddisjoint's cross-package facts: package a
// calls both functions, and the confinement summary exported here is
// what lets the analyzer accept one call and reject the other.
package b

var total int

// Confined touches only its own state; its exported confined fact
// lets shard workers in importing packages call it.
func Confined(x int) int { return x * 2 }

// Tainted accumulates into a package-level variable, so it can never
// appear under a shard worker.
func Tainted(x int) int {
	total += x
	return total
}
