package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for loader error-path tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadOutsideModule(t *testing.T) {
	// A directory that is not inside a module: go list -e reports a
	// per-pattern error, which Load must surface with the go command
	// named and the cause intact.
	dir := t.TempDir()
	_, err := Load(dir, []string{"./..."})
	if err == nil {
		t.Fatal("Load succeeded outside a module")
	}
	for _, want := range []string{"go list", "main module"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not contain %q", err, want)
		}
	}
}

func TestLoadBadDir(t *testing.T) {
	// A working directory that does not exist: the go command itself
	// cannot start, and the error must name the command and patterns.
	_, err := Load(filepath.Join(t.TempDir(), "missing"), []string{"./..."})
	if err == nil {
		t.Fatal("Load succeeded in a nonexistent directory")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Errorf("error does not name the failing command: %v", err)
	}
}

func TestLoadMissingPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module loadtest\n\ngo 1.21\n",
	})
	_, err := Load(dir, []string{"./nonexistent"})
	if err == nil {
		t.Fatal("Load succeeded on a nonexistent package pattern")
	}
	if !strings.Contains(err.Error(), "nonexistent") {
		t.Errorf("error does not name the missing pattern: %v", err)
	}
}

func TestLoadBrokenTargetPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module loadtest\n\ngo 1.21\n",
		"a/a.go": "package a\n\nfunc Bad() { undefinedIdent }\n",
	})
	_, err := Load(dir, []string{"./a"})
	if err == nil {
		t.Fatal("Load succeeded on a package with a type error")
	}
	for _, want := range []string{"loadtest/a", "undefinedIdent"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not contain %q", err, want)
		}
	}
}

func TestLoadBrokenDependency(t *testing.T) {
	// The named package is fine; its import is broken. The error must
	// name the package the caller asked about, quote the dependency's
	// failure, and say what to run next — not just the bare stub error
	// of the unbuildable dep.
	dir := writeModule(t, map[string]string{
		"go.mod": "module loadtest\n\ngo 1.21\n",
		"a/a.go": "package a\n\nimport \"loadtest/b\"\n\nvar X = b.Y\n",
		"b/b.go": "package b\n\nfunc Bad() { undefinedIdent }\n\nvar Y = 1\n",
	})
	_, err := Load(dir, []string{"./a"})
	if err == nil {
		t.Fatal("Load succeeded with an unbuildable dependency")
	}
	for _, want := range []string{"loadtest/a", "dependency failed to build", "undefinedIdent", "go build"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not contain %q", err, want)
		}
	}
}

func TestTypeCheckMissingExportData(t *testing.T) {
	// When export data for an import cannot be opened, the type-check
	// error must name both the importing package and the lookup
	// failure. Exercised directly so the test does not depend on
	// constructing a half-built go cache.
	dir := writeModule(t, map[string]string{
		"c.go": "package c\n\nimport \"fmt\"\n\nfunc F() { fmt.Println() }\n",
	})
	imp := failingImporter{err: fmt.Errorf("no export data for %q", "fmt")}
	_, err := typeCheck(token.NewFileSet(), imp, &listPackage{
		ImportPath: "loadtest/c",
		Dir:        dir,
		GoFiles:    []string{"c.go"},
	})
	if err == nil {
		t.Fatal("typeCheck succeeded with no export data for imports")
	}
	for _, want := range []string{"type-checking loadtest/c", "no export data"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not contain %q", err, want)
		}
	}
}

func TestLoadParseError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module loadtest\n\ngo 1.21\n",
		"a/a.go": "package a\n\nfunc Bad( {\n",
	})
	_, err := Load(dir, []string{"./a"})
	if err == nil {
		t.Fatal("Load succeeded on a package with a syntax error")
	}
	if !strings.Contains(err.Error(), "a.go") {
		t.Errorf("error does not name the unparseable file: %v", err)
	}
}

// failingImporter is a types.Importer whose every lookup fails.
type failingImporter struct{ err error }

func (f failingImporter) Import(path string) (*types.Package, error) {
	return nil, f.err
}
