package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestParseDirectiveForms pins the comment forms the parser must get
// right. The regression of record: a tab after the directive name
// ("//ldis:alloc-ok\t") used to make the whole directive unparseable —
// it neither suppressed nor tripped the justification check — and
// block-comment forms were ignored entirely, so a bare
// "/*ldis:alloc-ok*/" was an invisible no-op instead of a reported
// bare suppression.
func TestParseDirectiveForms(t *testing.T) {
	tests := []struct {
		comment string
		ok      bool
		name    string
		reason  string
	}{
		// Line-comment forms.
		{"//ldis:alloc-ok", true, "alloc-ok", ""},
		{"//ldis:alloc-ok bounded scratch buffer", true, "alloc-ok", "bounded scratch buffer"},
		{"//ldis:alloc-ok ", true, "alloc-ok", ""},                // trailing space: bare
		{"//ldis:alloc-ok \t ", true, "alloc-ok", ""},             // trailing whitespace: bare
		{"//ldis:alloc-ok\t", true, "alloc-ok", ""},               // tab right after the name
		{"//ldis:alloc-ok\twhy not", true, "alloc-ok", "why not"}, // tab-separated justification
		{"//ldis:nondet-ok why // commentary", true, "nondet-ok", "why"},
		{"//ldis:nondet-ok // want `requires a justification`", true, "nondet-ok", ""},
		{"//ldis:noalloc", true, "noalloc", ""},
		// Block-comment forms.
		{"/*ldis:alloc-ok*/", true, "alloc-ok", ""},
		{"/*ldis:alloc-ok amortized growth*/", true, "alloc-ok", "amortized growth"},
		{"/*ldis:nondet-ok sorted below */", true, "nondet-ok", "sorted below"},
		// Non-directives.
		{"// ldis:alloc-ok spaced marker is prose, not a directive", false, "", ""},
		{"//plain comment", false, "", ""},
		{"/* plain block */", false, "", ""},
	}
	for _, tt := range tests {
		name, reason, ok := parseDirective(tt.comment)
		if ok != tt.ok || name != tt.name || reason != tt.reason {
			t.Errorf("parseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tt.comment, name, reason, ok, tt.name, tt.reason, tt.ok)
		}
	}
}

// TestBareDirectiveDoesNotSuppress proves the whitespace and block
// forms land in the justification machinery: a bare directive in any
// form must not suppress, and must be reported by
// CheckJustifications — before the parsing fix those forms were
// dropped on the floor and escaped both.
func TestBareDirectiveDoesNotSuppress(t *testing.T) {
	src := "package p\n\n" +
		"func f() {\n" +
		"\t_ = 0 //ldis:alloc-ok\t\n" + // line 4: tab-trailing bare form
		"\t_ = 1 /*ldis:alloc-ok*/\n" + // line 5: block bare form
		"\t_ = 2 //ldis:alloc-ok justified\n" + // line 6: real suppression
		"}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs := ParseDirectives(fset, []*ast.File{f})
	if got := len(dirs.All()); got != 3 {
		t.Fatalf("parsed %d directives, want 3: %+v", got, dirs.All())
	}

	posOnLine := func(line int) token.Pos {
		for _, dir := range dirs.All() {
			if fset.Position(dir.Pos).Line == line {
				return dir.Pos
			}
		}
		t.Fatalf("no directive on line %d", line)
		return token.NoPos
	}
	for _, line := range []int{4, 5} {
		if dirs.Suppressed(posOnLine(line), DirAllocOK) {
			t.Errorf("bare directive on line %d suppresses; it must not", line)
		}
	}
	if !dirs.Suppressed(posOnLine(6), DirAllocOK) {
		t.Error("justified directive on line 6 does not suppress")
	}

	var diags []Diagnostic
	pass := &Pass{
		Analyzer:   &Analyzer{Name: "test"},
		Fset:       fset,
		Directives: dirs,
		used:       NewUsedDirectives(),
		report:     func(d Diagnostic) { diags = append(diags, d) },
	}
	dirs.CheckJustifications(pass, DirAllocOK)
	if len(diags) != 2 {
		t.Fatalf("CheckJustifications reported %d bare directives, want 2 (lines 4 and 5): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Pos.Line != 4 && d.Pos.Line != 5 {
			t.Errorf("unexpected justification diagnostic at line %d: %s", d.Pos.Line, d.Message)
		}
	}
}
