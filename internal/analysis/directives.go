package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The ldislint directive grammar. Directives are ordinary line
// comments beginning with "//ldis:" (no space, mirroring //go:).
//
//	//ldis:noalloc
//	    On a function's doc comment: the function and everything it
//	    transitively calls within the module must not allocate.
//	//ldis:alloc-ok <justification>
//	    On (or immediately above) a flagged line: suppresses noalloc
//	    diagnostics for that line. The justification is mandatory.
//	//ldis:nondet-ok <justification>
//	    On (or immediately above) a flagged line: suppresses detrange,
//	    nowallclock, and gridpure diagnostics for that line. The
//	    justification is mandatory.
const (
	DirNoalloc   = "noalloc"
	DirAllocOK   = "alloc-ok"
	DirNondetOK  = "nondet-ok"
	directivePfx = "//ldis:"
)

// A Directive is one parsed //ldis: comment.
type Directive struct {
	Name   string // e.g. "noalloc", "alloc-ok"
	Reason string // trailing justification text, may be empty
	Pos    token.Pos
}

// Directives indexes the //ldis: comments of a package by file line.
type Directives struct {
	fset *token.FileSet
	// byLine maps file+line to the directives written on that line.
	byLine map[lineKey][]Directive
}

type lineKey struct {
	file string
	line int
}

// ParseDirectives scans every comment of files for //ldis: directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[lineKey][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePfx)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(text, " ")
				// A justification never contains "//": anything after one
				// is commentary about the directive (the golden-test
				// fixtures rely on this to pair a bare directive with a
				// // want expectation on the same line).
				reason, _, _ = strings.Cut(reason, "//")
				pos := fset.Position(c.Pos())
				d.byLine[lineKey{pos.Filename, pos.Line}] = append(
					d.byLine[lineKey{pos.Filename, pos.Line}],
					Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()},
				)
			}
		}
	}
	return d
}

// At returns the directive of the given name attached to pos's line —
// written either on the line itself or on the line directly above it
// (the conventional spot for a suppression comment).
func (d *Directives) At(pos token.Pos, name string) (Directive, bool) {
	p := d.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, dir := range d.byLine[lineKey{p.Filename, line}] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// Suppressed reports whether a diagnostic at pos is silenced by the
// given suppression directive. A suppression without a justification
// does not suppress — the analyzers flag it separately via
// CheckJustifications.
func (d *Directives) Suppressed(pos token.Pos, name string) bool {
	dir, ok := d.At(pos, name)
	return ok && dir.Reason != ""
}

// FuncHas reports whether fn's doc comment carries the named
// directive (e.g. //ldis:noalloc).
func (d *Directives) FuncHas(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text, ok := strings.CutPrefix(c.Text, directivePfx)
		if !ok {
			continue
		}
		got, _, _ := strings.Cut(text, " ")
		if got == name {
			return true
		}
	}
	return false
}

// CheckJustifications reports every suppression directive of the given
// name that lacks a justification. Analyzers call this so that a bare
// "//ldis:nondet-ok" cannot silently disable a check.
func (d *Directives) CheckJustifications(pass *Pass, name string) {
	for _, dirs := range d.byLine {
		for _, dir := range dirs {
			if dir.Name == name && dir.Reason == "" {
				pass.Reportf(dir.Pos, "//ldis:%s requires a justification (\"//ldis:%s <why>\")", name, name)
			}
		}
	}
}
