package analysis

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// The ldislint directive grammar. Directives are ordinary comments
// beginning with "ldis:" immediately after the comment marker (no
// space, mirroring //go:); both line ("//ldis:...") and block
// ("/*ldis:...*/") forms parse.
//
//	//ldis:noalloc
//	    On a function's doc comment: the function and everything it
//	    transitively calls within the module must not allocate.
//	//ldis:shard-owned
//	    On a struct field: the field is a per-shard counter — written
//	    only by shard-confined code, merged by the MergeShard
//	    discipline (see the sharddisjoint analyzer).
//	//ldis:alloc-ok <justification>
//	    On (or immediately above) a flagged line: suppresses noalloc
//	    diagnostics for that line. The justification is mandatory.
//	//ldis:nondet-ok <justification>
//	    On (or immediately above) a flagged line: suppresses detrange,
//	    nowallclock, and gridpure diagnostics for that line. The
//	    justification is mandatory.
//	//ldis:shard-ok <justification>
//	    Suppresses sharddisjoint diagnostics for that line.
//	//ldis:atomic-ok <justification>
//	    Suppresses atomicplain diagnostics for that line.
//	//ldis:goroutine-ok <justification>
//	    Suppresses boundedgo diagnostics for that line.
const (
	DirNoalloc     = "noalloc"
	DirShardOwned  = "shard-owned"
	DirAllocOK     = "alloc-ok"
	DirNondetOK    = "nondet-ok"
	DirShardOK     = "shard-ok"
	DirAtomicOK    = "atomic-ok"
	DirGoroutineOK = "goroutine-ok"
	directivePfx   = "ldis:"
)

// suppressionDirs are the directive names that silence one diagnostic
// on their line; each requires a justification and each is subject to
// the stale sweep (StaleSuppressions).
var suppressionDirs = map[string]bool{
	DirAllocOK:     true,
	DirNondetOK:    true,
	DirShardOK:     true,
	DirAtomicOK:    true,
	DirGoroutineOK: true,
}

// annotationDirs are the directive names that mark a declaration for
// an analyzer rather than suppressing a diagnostic.
var annotationDirs = map[string]bool{
	DirNoalloc:    true,
	DirShardOwned: true,
}

// SuppressionDirective reports whether name is a suppression
// directive (//ldis:<name> <justification> silencing one diagnostic).
func SuppressionDirective(name string) bool { return suppressionDirs[name] }

// KnownDirective reports whether name is part of the directive
// grammar. The stale sweep flags unknown names: a typo like
// //ldis:aloc-ok neither suppresses nor errors, which is the worst of
// both.
func KnownDirective(name string) bool {
	return suppressionDirs[name] || annotationDirs[name]
}

// A Directive is one parsed //ldis: comment.
type Directive struct {
	Name   string // e.g. "noalloc", "alloc-ok"
	Reason string // trailing justification text, may be empty
	Pos    token.Pos
}

// parseDirective extracts the directive from one comment's text
// (including its comment markers), handling both //ldis:... and
// /*ldis:...*/ forms. The name ends at the first whitespace of any
// kind — previously a tab after the name made the whole directive
// silently unrecognized, so "//ldis:alloc-ok\t" neither suppressed
// nor tripped the justification check.
func parseDirective(text string) (name, reason string, ok bool) {
	if rest, found := strings.CutPrefix(text, "/*"); found {
		text = strings.TrimSuffix(rest, "*/")
	} else if rest, found := strings.CutPrefix(text, "//"); found {
		text = rest
	}
	body, found := strings.CutPrefix(text, directivePfx)
	if !found {
		return "", "", false
	}
	name, reason = body, ""
	if i := strings.IndexFunc(body, unicode.IsSpace); i >= 0 {
		name, reason = body[:i], body[i+1:]
	}
	// A justification never contains "//": anything after one is
	// commentary about the directive (the golden-test fixtures rely on
	// this to pair a bare directive with a // want expectation on the
	// same line).
	reason, _, _ = strings.Cut(reason, "//")
	return name, strings.TrimSpace(reason), true
}

// Directives indexes the //ldis: comments of a package by file line.
type Directives struct {
	fset *token.FileSet
	// byLine maps file+line to the directives written on that line.
	byLine map[lineKey][]Directive
	all    []Directive
}

type lineKey struct {
	file string
	line int
}

// ParseDirectives scans every comment of files for //ldis: directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[lineKey][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				dir := Directive{Name: name, Reason: reason, Pos: c.Pos()}
				d.byLine[lineKey{pos.Filename, pos.Line}] = append(
					d.byLine[lineKey{pos.Filename, pos.Line}], dir)
				d.all = append(d.all, dir)
			}
		}
	}
	return d
}

// All returns every directive of the package in source order.
func (d *Directives) All() []Directive { return d.all }

// At returns the directive of the given name attached to pos's line —
// written either on the line itself or on the line directly above it
// (the conventional spot for a suppression comment).
func (d *Directives) At(pos token.Pos, name string) (Directive, bool) {
	p := d.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, dir := range d.byLine[lineKey{p.Filename, line}] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// Suppressed reports whether a diagnostic at pos is silenced by the
// given suppression directive. A suppression without a justification
// does not suppress — the analyzers flag it separately via
// CheckJustifications. Prefer Pass.Suppressed / Pass.ReportfSup, which
// also feed the stale-suppression sweep.
func (d *Directives) Suppressed(pos token.Pos, name string) bool {
	dir, ok := d.At(pos, name)
	return ok && dir.Reason != ""
}

// DeclHas reports whether the doc comment carries the named directive
// (e.g. //ldis:noalloc on a function, //ldis:shard-owned on a field).
func DeclHas(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if got, _, ok := parseDirective(c.Text); ok && got == name {
			return true
		}
	}
	return false
}

// FuncHas reports whether fn's doc comment carries the named
// directive (e.g. //ldis:noalloc).
func (d *Directives) FuncHas(fn *ast.FuncDecl, name string) bool {
	return DeclHas(fn.Doc, name)
}

// CheckJustifications reports every suppression directive of the given
// name that lacks a justification. Analyzers call this so that a bare
// "//ldis:nondet-ok" cannot silently disable a check.
func (d *Directives) CheckJustifications(pass *Pass, name string) {
	for _, dir := range d.all {
		if dir.Name == name && dir.Reason == "" {
			pass.Reportf(dir.Pos, "//ldis:%s requires a justification (\"//ldis:%s <why>\")", name, name)
		}
	}
}
