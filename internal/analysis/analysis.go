// Package analysis is a self-contained, stdlib-only miniature of
// golang.org/x/tools/go/analysis, hosting the ldislint analyzer suite.
//
// The simulator's two load-bearing properties — byte-identical
// experiment tables at any -parallel worker count, and zero-allocation
// access/workload hot paths — were previously guarded only by a
// handful of runtime tests sampling a few entry points. The analyzers
// in the subpackages (noalloc, detrange, nowallclock, gridpure) turn
// those properties into compile-time invariants enforced across the
// whole tree by `make lint` and `go vet -vettool`.
//
// The framework mirrors the x/tools API shape (Analyzer, Pass,
// Diagnostic, object facts) so the analyzers could be ported to the
// real go/analysis with mechanical changes, but it depends only on
// go/ast, go/types, and the go command — the build environment is
// fully offline.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one reported problem. A diagnostic silenced by a
// justified suppression directive is still recorded — with Suppressed
// set and SupPos naming the directive — so the JSON report can show
// what the directives are hiding and the stale-suppression sweep can
// prove every directive still earns its keep. Drivers filter
// suppressed diagnostics out of text output and exit codes via
// Unsuppressed.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	// SupPos is the position of the suppressing directive when
	// Suppressed is set.
	SupPos token.Position
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Unsuppressed returns the diagnostics not silenced by a directive —
// the set that renders to text and drives exit codes.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Directives holds the parsed //ldis: directives of the package's
	// files, used both for annotation lookup (e.g. //ldis:noalloc on a
	// function) and for line-level suppression (//ldis:nondet-ok,
	// //ldis:alloc-ok).
	Directives *Directives

	// ModuleFacts reports whether facts exported by module dependencies
	// are available. True under the standalone driver (which analyzes
	// the whole module in dependency order); false under `go vet
	// -vettool`, where each package is checked in isolation and
	// cross-package reasoning must degrade gracefully.
	ModuleFacts bool

	facts  *FactStore
	used   *UsedDirectives
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfSup records a diagnostic at pos unless a justified suppression
// directive of the given name covers the line; the suppressed
// diagnostic is still recorded (Suppressed=true, SupPos naming the
// directive) and the directive is marked used for the stale sweep.
func (p *Pass) ReportfSup(pos token.Pos, dirName, format string, args ...any) {
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
	if dir, ok := p.Directives.At(pos, dirName); ok && dir.Reason != "" {
		d.Suppressed = true
		d.SupPos = p.Fset.Position(dir.Pos)
		p.used.Use(d.SupPos)
	}
	p.report(d)
}

// Suppressed reports whether a justified suppression directive of the
// given name covers pos's line, marking the directive used. Analyzers
// call this where suppression changes analysis facts (for example a
// call-site //ldis:alloc-ok keeping a function's clean summary true)
// rather than just silencing a report.
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	dir, ok := p.Directives.At(pos, name)
	if !ok || dir.Reason == "" {
		return false
	}
	p.used.Use(p.Fset.Position(dir.Pos))
	return true
}

// UsedDirectives records which suppression directives actually
// silenced (or would have silenced) a diagnostic during a run, keyed
// by the directive's position. The stale sweep reports every justified
// suppression directive absent from this set: a suppression nothing
// needs anymore is a lie about the code's invariants.
type UsedDirectives struct {
	m map[token.Position]bool
}

// NewUsedDirectives returns an empty usage set.
func NewUsedDirectives() *UsedDirectives {
	return &UsedDirectives{m: make(map[token.Position]bool)}
}

// Use marks the directive at pos as live. Nil-safe.
func (u *UsedDirectives) Use(pos token.Position) {
	if u != nil {
		u.m[pos] = true
	}
}

// Used reports whether the directive at pos silenced anything.
func (u *UsedDirectives) Used(pos token.Position) bool {
	return u != nil && u.m[pos]
}

// ExportFact records a named fact about a function (or other object)
// for use by passes over importing packages. Facts are keyed by the
// object's stable string key, not object identity, because importing
// packages see the object through export data.
func (p *Pass) ExportFact(obj types.Object, name string, value any) {
	if p.facts != nil {
		p.facts.set(ObjectKey(obj), name, value)
	}
}

// ImportFact retrieves a fact exported by this or a previously
// analyzed package. ok is false if the fact is unknown (including
// always under the unitchecker driver, where ModuleFacts is false).
func (p *Pass) ImportFact(obj types.Object, name string) (any, bool) {
	if p.facts == nil {
		return nil, false
	}
	return p.facts.get(ObjectKey(obj), name)
}

// ExportKeyedFact records a fact under an explicit key, for objects
// ObjectKey cannot name unambiguously — struct fields, whose key must
// carry the struct's type name ("pkgpath.Struct.field") because two
// structs in one package may share a field name.
func (p *Pass) ExportKeyedFact(key, name string, value any) {
	if p.facts != nil {
		p.facts.set(key, name, value)
	}
}

// ImportKeyedFact retrieves a fact stored by ExportKeyedFact.
func (p *Pass) ImportKeyedFact(key, name string) (any, bool) {
	if p.facts == nil {
		return nil, false
	}
	return p.facts.get(key, name)
}

// ObjectKey returns a stable cross-package key for obj: the package
// path plus the qualified object name (with receiver type for
// methods), e.g. "ldis/internal/mem.Footprint.AppendWords".
func ObjectKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return pkg + "." + recvTypeName(recv.Type()) + "." + fn.Name()
		}
	}
	return pkg + "." + obj.Name()
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// A FactStore accumulates object facts across the packages of one
// driver run.
type FactStore struct {
	m map[string]map[string]any
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[string]any)}
}

func (s *FactStore) set(key, name string, value any) {
	byName := s.m[key]
	if byName == nil {
		byName = make(map[string]any)
		s.m[key] = byName
	}
	byName[name] = value
}

func (s *FactStore) get(key, name string) (any, bool) {
	v, ok := s.m[key][name]
	return v, ok
}
