package suite_test

import (
	"testing"

	"ldis/internal/analysis"
	"ldis/internal/analysis/suite"
)

// TestTreeIsLintClean runs the full analyzer suite over the module,
// exactly as `make lint` does. The tree being lint-clean is a merge
// invariant: the determinism and zero-allocation guarantees the
// experiment engine documents are only as good as this gate.
func TestTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	pkgs, err := analysis.Load("../../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, d := range analysis.Unsuppressed(analysis.Run(suite.All, pkgs)) {
		t.Errorf("%s", d)
	}
}

// TestTreeHasNoStaleSuppressions runs the stale-suppression sweep,
// exactly as `make lint-fix-check` does: every justified //ldis:*-ok
// directive in the tree must still silence a diagnostic, and every
// //ldis: name must be part of the grammar.
func TestTreeHasNoStaleSuppressions(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	pkgs, err := analysis.Load("../../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range analysis.StaleSuppressions(suite.All, pkgs) {
		t.Errorf("%s", d)
	}
}
