// Package suite registers the ldislint analyzers in the order the
// multichecker runs them.
package suite

import (
	"ldis/internal/analysis"
	"ldis/internal/analysis/atomicplain"
	"ldis/internal/analysis/boundedgo"
	"ldis/internal/analysis/detrange"
	"ldis/internal/analysis/gridpure"
	"ldis/internal/analysis/noalloc"
	"ldis/internal/analysis/nowallclock"
	"ldis/internal/analysis/sharddisjoint"
)

// All lists every analyzer ldislint runs, in reporting order.
var All = []*analysis.Analyzer{
	noalloc.Analyzer,
	detrange.Analyzer,
	nowallclock.Analyzer,
	gridpure.Analyzer,
	sharddisjoint.Analyzer,
	atomicplain.Analyzer,
	boundedgo.Analyzer,
}
