package atomicplain_test

import (
	"testing"

	"ldis/internal/analysis/atest"
	"ldis/internal/analysis/atomicplain"
)

func TestAtomicPlain(t *testing.T) {
	atest.Run(t, atomicplain.Analyzer, "testdata/src/a")
}
