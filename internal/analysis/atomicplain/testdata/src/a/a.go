// Package a is the atomicplain golden fixture: locations accessed via
// the function-style sync/atomic API, their flagged plain accesses,
// and the patterns the analyzer must accept (typed atomics, justified
// suppressions).
package a

import "sync/atomic"

// Counter mixes a function-style atomic field (n), a typed atomic
// (safe), and a plain field (plain).
type Counter struct {
	n     uint64
	safe  atomic.Uint64
	plain uint64
}

// Inc establishes that n is accessed atomically.
func (c *Counter) Inc() {
	atomic.AddUint64(&c.n, 1)
	c.safe.Add(1)
	c.plain++
}

func (c *Counter) Bad() uint64 {
	c.n++      // want `plain write of atomic field .*Counter\.n`
	return c.n // want `plain read of atomic field .*Counter\.n`
}

// Snapshot reads n plainly on a justified single-goroutine path.
func (c *Counter) Snapshot() uint64 {
	//ldis:atomic-ok fixture: single-goroutine teardown after the last Wait
	return c.n
}

var gauge uint64

func SetGauge(v uint64) { atomic.StoreUint64(&gauge, v) }

func ReadGauge() uint64 {
	return gauge // want `plain read of atomic variable "gauge"`
}

func Unjustified() uint64 {
	//ldis:atomic-ok // want `//ldis:atomic-ok requires a justification`
	return gauge // want `plain read of atomic variable "gauge"`
}
