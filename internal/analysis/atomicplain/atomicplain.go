// Package atomicplain enforces atomic-access consistency: once any
// code accesses a variable or struct field through the function-style
// sync/atomic API, every plain (non-atomic) read or write of that same
// location anywhere in the module is a diagnostic.
//
// Mixed atomic/plain access is the classic half-fixed data race: the
// atomic side establishes that the location is shared across
// goroutines, and the plain side then races with it — a bug the race
// detector only reports when the interleaving actually happens during
// a test run. The typed atomics (atomic.Uint64 and friends, which the
// simulator's obs counters already use) make this mistake
// unrepresentable, so they need no analyzer; the function-style API
// (atomic.AddUint64(&x, 1)) keeps the plain name accessible, and this
// analyzer closes that gap for the code the planned ldisd service
// layer will add.
//
// Locations are tracked cross-package through keyed facts
// ("pkgpath.Struct.field" for fields, the object key for package-level
// variables), so a package that plainly reads a counter its dependency
// updates atomically is still caught — in dependency order only, like
// every fact in this framework, and only under the standalone driver
// (ModuleFacts); `go vet` mode checks each package against its own
// atomic calls and its dependencies' exported facts.
//
// A deliberate plain access (for example a single-threaded teardown
// path after the last Wait) is justified with
// `//ldis:atomic-ok <why>`.
package atomicplain

import (
	"go/ast"
	"go/token"
	"go/types"

	"ldis/internal/analysis"
)

// Analyzer is the atomicplain analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicplain",
	Doc:  "flags plain reads/writes of variables and fields that are elsewhere accessed via sync/atomic",
	Run:  run,
}

const factAtomic = "atomic"

type checker struct {
	pass *analysis.Pass
	// atomicFields holds "pkgpath.Struct.field" keys of fields passed
	// by address to a sync/atomic function in this package.
	atomicFields map[string]bool
	// atomicVars holds package-level variables likewise passed to
	// sync/atomic (keyed for export; locals are tracked by identity).
	atomicVars map[*types.Var]bool
	// spans are the source ranges of sync/atomic calls; accesses
	// inside them are the sanctioned ones.
	spans []span
	// writes records which flagged positions are writes, for message
	// wording.
	writes map[token.Pos]bool
}

type span struct{ lo, hi token.Pos }

func run(pass *analysis.Pass) error {
	pass.Directives.CheckJustifications(pass, analysis.DirAtomicOK)
	c := &checker{
		pass:         pass,
		atomicFields: make(map[string]bool),
		atomicVars:   make(map[*types.Var]bool),
		writes:       make(map[token.Pos]bool),
	}
	// Pass 1: find every function-style sync/atomic call and record
	// which locations it addresses.
	for _, f := range pass.Files {
		c.collectAtomicCalls(f)
	}
	// Pass 2: flag every plain access of a recorded location outside
	// the atomic call sites themselves.
	for _, f := range pass.Files {
		c.collectWrites(f)
	}
	for _, f := range pass.Files {
		c.flagPlainAccesses(f)
	}
	return nil
}

// collectAtomicCalls records the target of every &operand passed to a
// function-style sync/atomic call, and the call's source span.
func (c *checker) collectAtomicCalls(f *ast.File) {
	info := c.pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			// Typed atomics (atomic.Uint64 methods) are safe by
			// construction: the plain value is not addressable.
			return true
		}
		c.spans = append(c.spans, span{call.Pos(), call.End()})
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			c.recordTarget(un.X)
		}
		return true
	})
}

// recordTarget marks the location behind one &expr atomic operand.
func (c *checker) recordTarget(e ast.Expr) {
	info := c.pass.TypesInfo
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if key, ok := fieldKey(sel); ok {
				c.atomicFields[key] = true
				c.pass.ExportKeyedFact(key, factAtomic, true)
			}
		}
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			return
		}
		c.atomicVars[v] = true
		if pkgLevel(v) {
			c.pass.ExportKeyedFact(analysis.ObjectKey(v), factAtomic, true)
		}
	case *ast.IndexExpr:
		// &arr[i]: track the backing variable — element granularity
		// would need alias analysis; whole-variable is the sound over-
		// approximation.
		c.recordTarget(x.X)
	}
}

// collectWrites records the positions written by assignments and
// inc/dec statements, so flagPlainAccesses can word reads and writes
// differently.
func (c *checker) collectWrites(f *ast.File) {
	mark := func(e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			c.writes[x.Pos()] = true
		case *ast.SelectorExpr:
			c.writes[x.Sel.Pos()] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(s.X)
		}
		return true
	})
}

func (c *checker) inAtomicCall(pos token.Pos) bool {
	for _, s := range c.spans {
		if s.lo <= pos && pos < s.hi {
			return true
		}
	}
	return false
}

func (c *checker) atomicField(key string) bool {
	if c.atomicFields[key] {
		return true
	}
	v, ok := c.pass.ImportKeyedFact(key, factAtomic)
	if !ok {
		return false
	}
	b, _ := v.(bool)
	return b
}

func (c *checker) atomicVar(v *types.Var) bool {
	if c.atomicVars[v] {
		return true
	}
	if !pkgLevel(v) {
		return false
	}
	fv, ok := c.pass.ImportKeyedFact(analysis.ObjectKey(v), factAtomic)
	if !ok {
		return false
	}
	b, _ := fv.(bool)
	return b
}

func (c *checker) flagPlainAccesses(f *ast.File) {
	info := c.pass.TypesInfo
	verb := func(pos token.Pos) string {
		if c.writes[pos] {
			return "write"
		}
		return "read"
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := info.Selections[x]
			if !ok {
				return true
			}
			key, ok := fieldKey(sel)
			if !ok || !c.atomicField(key) || c.inAtomicCall(x.Sel.Pos()) {
				return true
			}
			c.pass.ReportfSup(x.Sel.Pos(), analysis.DirAtomicOK,
				"plain %s of atomic field %s, which is elsewhere accessed via sync/atomic; use the atomic API or justify with //ldis:atomic-ok", verb(x.Sel.Pos()), key)
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok || v.IsField() || !c.atomicVar(v) || c.inAtomicCall(x.Pos()) {
				return true
			}
			c.pass.ReportfSup(x.Pos(), analysis.DirAtomicOK,
				"plain %s of atomic variable %q, which is elsewhere accessed via sync/atomic; use the atomic API or justify with //ldis:atomic-ok", verb(x.Pos()), v.Name())
		}
		return true
	})
}

// fieldKey names a selected field as "pkgpath.Struct.field" via the
// selection's receiver type.
func fieldKey(sel *types.Selection) (string, bool) {
	v, ok := sel.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return "", false
	}
	t := sel.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name(), true
}

func pkgLevel(v *types.Var) bool {
	return v != nil && !v.IsField() && v.Pkg() != nil &&
		v.Parent() == v.Pkg().Scope()
}
