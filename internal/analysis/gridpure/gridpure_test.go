package gridpure_test

import (
	"testing"

	"ldis/internal/analysis/atest"
	"ldis/internal/analysis/gridpure"
)

func TestGridpure(t *testing.T) {
	atest.Run(t, gridpure.Analyzer, "testdata/src/a")
}
