// Package gridpure checks that cell functions handed to the par
// scheduler are pure functions of their index.
//
// par.Map and par.Grid (and their MapPolicy/GridPolicy variants)
// promise results that are byte-identical at any worker count. That guarantee holds because every cell is a pure
// function of its task index and results are written only into the
// scheduler's own index-ordered slots. A cell closure that writes to
// a variable captured from the enclosing scope (an accumulator, a
// shared map, a "last row wins" scalar) reintroduces scheduling order
// into the results — the exact failure mode the scheduler exists to
// prevent, and one the race detector only catches when two writes
// happen to collide during the test run.
//
// Reads of captured state are fine (configuration, inputs); writes
// into distinct elements of a captured slice are fine too, because the
// idiomatic cell writes only its own index. Everything else needs a
// `//ldis:nondet-ok <why>` annotation.
//
// The check also covers internal/exp's wrappers over the scheduler
// (runGrid, mapBenchmarks): experiments hand their cells to those, not
// to par directly, and the purity contract rides through unchanged.
package gridpure

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ldis/internal/analysis"
)

// Analyzer is the gridpure analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "gridpure",
	Doc:  "cell functions passed to par.Map/Grid/MapPolicy/GridPolicy (or the exp.runGrid/runNamedGrid/mapBenchmarks wrappers and the hierarchy.RunSharded shard scheduler over them) must not write captured variables (except distinct slice elements)",
	Run:  run,
}

// cellTakers maps package path -> entry points whose final argument is
// a cell function handed to the scheduler. Besides par's own entry
// points this covers internal/exp's grid wrappers, so every experiment
// cell — including the mrc curve cells — is checked at its natural
// call site rather than only where par is invoked directly.
var cellTakers = map[string]map[string]bool{
	"ldis/internal/par": {
		"Map": true, "Grid": true, "MapPolicy": true, "GridPolicy": true,
	},
	"ldis/internal/exp": {
		"runGrid": true, "runNamedGrid": true, "mapBenchmarks": true,
		"runOrgGrid": true,
	},
	// The intra-run shard scheduler: its trailing build closure runs
	// once per shard and the systems it returns are driven
	// concurrently, so it carries the same purity contract as a grid
	// cell.
	"ldis/internal/hierarchy": {
		"RunSharded": true,
	},
}

// takesCell reports whether the callee is a scheduler entry point (or
// wrapper). Fixture packages under this analyzer's testdata tree match
// by function name alone so the golden tests can model wrappers
// without replicating real package paths.
func takesCell(callee *types.Func) bool {
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	path := callee.Pkg().Path()
	if names, ok := cellTakers[path]; ok {
		return names[callee.Name()]
	}
	if strings.Contains(path, "/gridpure/testdata/") {
		for _, names := range cellTakers {
			if names[callee.Name()] {
				return true
			}
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	pass.Directives.CheckJustifications(pass, analysis.DirNondetOK)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			callee := staticCallee(pass.TypesInfo, call)
			if !takesCell(callee) {
				return true
			}
			// The cell function is the final parameter of every
			// scheduler entry point.
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkCell(pass, callee.Pkg().Name()+"."+callee.Name(), lit)
			return true
		})
	}
	return nil
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit instantiation: par.Map[int](...)
		return staticCallee(info, &ast.CallExpr{Fun: fun.X})
	}
	return nil
}

// checkCell walks the cell closure's body and reports writes to
// variables captured from outside it.
func checkCell(pass *analysis.Pass, schedName string, lit *ast.FuncLit) {
	report := func(pos token.Pos, obj *types.Var, how string) {
		pass.ReportfSup(pos, analysis.DirNondetOK, "%s cell function %s captured variable %q; cells must be pure functions of their index so results are byte-identical at any worker count", schedName, how, obj.Name())
	}
	captured := func(id *ast.Ident) *types.Var {
		obj, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if obj == nil {
			return nil
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return nil // declared inside the cell
		}
		return obj
	}
	checkLHS := func(lhs ast.Expr) {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := captured(e); obj != nil {
				report(e.Pos(), obj, "writes")
			}
		case *ast.IndexExpr:
			root, isMap := rootIdent(pass.TypesInfo, e)
			if root == nil {
				return
			}
			if obj := captured(root); obj != nil && isMap {
				report(e.Pos(), obj, "writes a map element of")
			}
			// Slice-element writes to captured slices are the sanctioned
			// result pattern (each cell owns its index); not reported.
		case *ast.SelectorExpr:
			if root, _ := rootIdent(pass.TypesInfo, e); root != nil {
				if obj := captured(root); obj != nil {
					report(e.Pos(), obj, "writes a field of")
				}
			}
		case *ast.StarExpr:
			if root, _ := rootIdent(pass.TypesInfo, e); root != nil {
				if obj := captured(root); obj != nil {
					report(e.Pos(), obj, "writes through pointer")
				}
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if s.Tok == token.DEFINE {
					continue // new local
				}
				checkLHS(lhs)
			}
		case *ast.IncDecStmt:
			checkLHS(s.X)
		}
		return true
	})
}

// rootIdent walks to the base identifier of an lvalue chain and
// reports whether the innermost index step (if any) indexes a map.
func rootIdent(info *types.Info, e ast.Expr) (*ast.Ident, bool) {
	isMap := false
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, isMap
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok {
				if _, m := tv.Type.Underlying().(*types.Map); m {
					isMap = true
				}
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, isMap
		}
	}
}
