// Package a is the gridpure golden fixture: cell functions handed to
// par.Map/par.Grid must be pure functions of their index.
package a

import "ldis/internal/par"

// BadAccumulator folds into a captured scalar: the result depends on
// scheduling order.
func BadAccumulator(n int) int {
	total := 0
	_, _ = par.Map(0, n, func(i int) (int, error) {
		total += i // want `writes captured variable "total"`
		return i, nil
	})
	return total
}

// BadMapWrite writes a captured map: a data race and order-dependent.
func BadMapWrite(n int) map[int]int {
	m := map[int]int{}
	_, _ = par.Map(0, n, func(i int) (int, error) {
		m[i] = i // want `writes a map element of captured variable "m"`
		return i, nil
	})
	return m
}

type state struct{ n int }

// BadFieldWrite mutates a captured struct through a pointer.
func BadFieldWrite(s *state, rows, cols int) {
	_, _ = par.Grid(0, rows, cols, func(r, c int) (int, error) {
		s.n = r * c // want `writes a field of captured variable "s"`
		return 0, nil
	})
}

var counter int

// BadGlobal bumps package state from a cell.
func BadGlobal(n int) {
	_, _ = par.Map(0, n, func(i int) (int, error) {
		counter++ // want `writes captured variable "counter"`
		return i, nil
	})
}

// BadPolicyAccumulator: the policy-driven entry points carry the same
// purity contract as the plain ones.
func BadPolicyAccumulator(n int) int {
	total := 0
	_, _ = par.MapPolicy(par.Policy{}, 0, n, func(i int) (int, error) {
		total += i // want `writes captured variable "total"`
		return i, nil
	})
	return total
}

// BadGridPolicyWrite mutates a captured struct from a GridPolicy cell.
func BadGridPolicyWrite(s *state, rows, cols int) {
	_, _ = par.GridPolicy(par.Policy{FailFast: true}, 0, rows, cols, func(r, c int) (int, error) {
		s.n = r * c // want `writes a field of captured variable "s"`
		return 0, nil
	})
}

// Good shows the sanctioned shapes: cells read captured configuration,
// write only their own locals, and publish through the scheduler's
// index-ordered results (or distinct elements of a captured slice).
func Good(n, scale int) ([]int, error) {
	extra := make([]int, n)
	res, err := par.Map(0, n, func(i int) (int, error) {
		local := i * scale
		local++
		extra[i] = local // distinct slice element per cell: allowed
		return local, nil
	})
	_ = res
	return extra, err
}

// Suppressed documents why the captured write is acceptable.
func Suppressed(n int) int {
	last := 0
	_, _ = par.Map(1, n, func(i int) (int, error) {
		//ldis:nondet-ok fixture: exercises the suppression path
		last = i
		return i, nil
	})
	return last
}
