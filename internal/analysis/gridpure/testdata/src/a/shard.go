package a

// shardSystem is a stand-in for hierarchy.System in the fixtures.
type shardSystem struct{ id int }

// RunSharded models the hierarchy shard scheduler: the trailing build
// closure runs once per shard, and the systems it returns are driven
// concurrently, so it carries the grid-cell purity contract. Fixture
// packages match cell takers by name.
func RunSharded(shards int, build func(shard int) *shardSystem) []*shardSystem {
	out := make([]*shardSystem, shards)
	for i := range out {
		out[i] = build(i)
	}
	return out
}

// BadShardBuilder leaks shard-construction order into captured state:
// under the real scheduler the systems are driven concurrently and the
// count becomes scheduling-dependent.
func BadShardBuilder(shards int) int {
	built := 0
	_ = RunSharded(shards, func(shard int) *shardSystem {
		built++ // want `writes captured variable "built"`
		return &shardSystem{id: shard}
	})
	return built
}

// BadShardLastConfig: "last writer wins" on a captured pointer target.
func BadShardLastConfig(shards int) {
	var last *shardSystem
	_ = RunSharded(shards, func(shard int) *shardSystem {
		sys := &shardSystem{id: shard}
		last = sys // want `writes captured variable "last"`
		return sys
	})
	_ = last
}

// GoodShardBuilder is a pure function of its shard index; reads of
// captured configuration are fine.
func GoodShardBuilder(shards, ways int) []*shardSystem {
	return RunSharded(shards, func(shard int) *shardSystem {
		return &shardSystem{id: shard * ways}
	})
}
