package a

// runGrid models internal/exp's generic wrapper over the scheduler:
// the analyzer matches wrapper entry points by name inside fixture
// packages, so these cells carry the same purity contract as direct
// par calls.
func runGrid[T any](cols int, fn func(name string, col int) (T, error)) ([][]T, error) {
	out := make([][]T, 1)
	out[0] = make([]T, cols)
	for c := 0; c < cols; c++ {
		v, err := fn("bench", c)
		if err != nil {
			return nil, err
		}
		out[0][c] = v
	}
	return out, nil
}

func mapBenchmarks[T any](fn func(name string) (T, error)) ([]T, error) {
	v, err := fn("bench")
	if err != nil {
		return nil, err
	}
	return []T{v}, nil
}

// BadWrapperAccumulator folds into a captured scalar through the
// wrapper: still order-dependent once the real wrapper fans out.
func BadWrapperAccumulator(cols int) float64 {
	total := 0.0
	_, _ = runGrid(cols, func(name string, col int) (float64, error) {
		total += float64(col) // want `writes captured variable "total"`
		return total, nil
	})
	return total
}

// BadWrapperLastWins: "last writer wins" scalars are scheduling order
// leaking into results.
func BadWrapperLastWins(cols int) {
	last := ""
	_, _ = mapBenchmarks(func(name string) (int, error) {
		last = name // want `writes captured variable "last"`
		return 0, nil
	})
	_ = last
}

// GoodWrapperCell returns its result instead of mutating scope; reads
// of captured configuration are fine.
func GoodWrapperCell(cols int, scale float64) ([][]float64, error) {
	return runGrid(cols, func(name string, col int) (float64, error) {
		return scale * float64(col), nil
	})
}

// GoodWrapperSuppressed: an annotated write is accepted.
func GoodWrapperSuppressed(cols int) {
	n := 0
	_, _ = runGrid(cols, func(name string, col int) (int, error) {
		//ldis:nondet-ok fixture: demonstrating an annotated wrapper cell
		n++
		return n, nil
	})
}
