package boundedgo_test

import (
	"testing"

	"ldis/internal/analysis/atest"
	"ldis/internal/analysis/boundedgo"
)

func TestBoundedGo(t *testing.T) {
	atest.Run(t, boundedgo.Analyzer, "testdata/src/a")
}
