// Package a is the boundedgo golden fixture: WaitGroup-tracked
// launches the analyzer must accept, untracked and half-tracked ones
// it must flag, and the suppression forms.
package a

import "sync"

// Tracked is the internal/par launch shape: Add before go, Done in
// the goroutine, Wait before return.
func Tracked(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// TrackedField joins through a struct-held WaitGroup.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) Run() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
	}()
	p.wg.Wait()
}

func Untracked() {
	go leak() // want `go statement is not WaitGroup-tracked`
}

func leak() {}

// HalfTracked Adds but never Waits: the goroutine is counted, not
// joined.
func HalfTracked() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `go statement is not WaitGroup-tracked`
		defer wg.Done()
	}()
}

func Suppressed() {
	//ldis:goroutine-ok fixture: daemon bounded by channel close
	go leak()
}

func Unjustified() {
	//ldis:goroutine-ok // want `//ldis:goroutine-ok requires a justification`
	go leak() // want `go statement is not WaitGroup-tracked`
}
