// Package boundedgo enforces the simulator's goroutine discipline:
// under internal/ and cmd/, every `go` statement must be join-tracked
// — its enclosing function Adds to and Waits on a sync.WaitGroup — or
// carry a justified //ldis:goroutine-ok directive.
//
// The determinism and observability contracts both assume goroutine
// lifetimes nest inside the call that launched them: RunSharded and
// internal/par's Map bound their workers with a WaitGroup, so when Run
// returns, no concurrent writer of shard or counter state survives. A
// fire-and-forget `go` breaks that silently — the leaked goroutine
// races with the next run's state, shows up only under -race and only
// when the schedule cooperates, and caps -parallel scaling with an
// invisible writer. This analyzer makes the discipline structural:
// launch through internal/par's bounded helpers (themselves verified
// by this check), track the goroutine with an Add/Wait pair in the
// same function, or justify the exception where a daemon really is
// intended (the obs HTTP listener, the sharded runner's draining
// goroutine whose channel close bounds it).
//
// cmd/ entered the scope when ldisd arrived: a long-running service's
// listener and drainer goroutines carry exactly the leak risks the
// internal/ discipline exists for, so commands no longer get a pass.
//
// Test files are exempt: `go vet` analyzes *_test.go too, and tests
// legitimately launch helper goroutines bounded by the test's own
// lifetime.
package boundedgo

import (
	"go/ast"
	"go/types"
	"strings"

	"ldis/internal/analysis"
)

// Analyzer is the boundedgo analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "boundedgo",
	Doc:  "every go statement under internal/ and cmd/ is WaitGroup-tracked in its enclosing function or justified with //ldis:goroutine-ok",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Directives.CheckJustifications(pass, analysis.DirGoroutineOK)
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

// inScope covers internal/ and cmd/. Commands used to get a pass on
// the theory that main owns the process lifetime; ldisd ended that —
// a service binary's goroutines outlive any one request, and a leaked
// one is exactly as racy there as in the engine.
func inScope(path string) bool {
	return strings.HasPrefix(path, "ldis/internal/") ||
		strings.HasPrefix(path, "ldis/cmd/") ||
		strings.Contains(path, "/boundedgo/testdata/")
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	var bodies []*ast.BlockStmt
	var gos []*ast.GoStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				bodies = append(bodies, x.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, x.Body)
		case *ast.GoStmt:
			gos = append(gos, x)
		}
		return true
	})
	for _, g := range gos {
		var encl *ast.BlockStmt
		for _, b := range bodies {
			if b.Pos() <= g.Pos() && g.End() <= b.End() {
				if encl == nil || b.Pos() > encl.Pos() {
					encl = b // innermost containing body
				}
			}
		}
		if encl != nil && waitGroupTracked(pass, encl) {
			continue
		}
		pass.ReportfSup(g.Pos(), analysis.DirGoroutineOK,
			"go statement is not WaitGroup-tracked in its enclosing function; launch through internal/par, pair it with Add/Wait, or justify with //ldis:goroutine-ok")
	}
}

// waitGroupTracked reports whether body both Adds to and Waits on the
// same sync.WaitGroup variable — the join pattern that bounds every
// goroutine the body launches.
func waitGroupTracked(pass *analysis.Pass, body *ast.BlockStmt) bool {
	adds := make(map[*types.Var]bool)
	waits := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var set map[*types.Var]bool
		switch sel.Sel.Name {
		case "Add":
			set = adds
		case "Wait":
			set = waits
		default:
			return true
		}
		v := waitGroupVar(pass.TypesInfo, sel.X)
		if v != nil {
			set[v] = true
		}
		return true
	})
	for v := range adds {
		if waits[v] {
			return true
		}
	}
	return false
}

// waitGroupVar resolves e to a variable of type sync.WaitGroup (or
// pointer to it), walking selector chains (s.wg.Add(1)).
func waitGroupVar(info *types.Info, e ast.Expr) *types.Var {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
		return v
	}
	return nil
}
