package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Standard   bool // part of the Go standard library
	DepOnly    bool // reached only as a dependency, not named by a pattern
	GoFiles    []string
	Imports    []string

	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// listPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load lists patterns with the go command and type-checks every
// in-module package (targets and module dependencies alike) from
// source, resolving imports through compiled export data. The result
// is in dependency order — a package appears after everything it
// imports — so fact-producing analyzers can run bottom-up. Standard
// library packages are resolved from export data only and are not
// returned.
//
// The loader is fully offline: `go list -export` compiles with the
// local toolchain and never consults the network.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	byPath := make(map[string]*listPackage)
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		byPath[p.ImportPath] = &p
		order = append(order, p.ImportPath)
	}

	// Surface listing errors only after the full decode. A target
	// package's DepsErrors is reported first: it names both the package
	// the caller asked about and the dependency that failed, where the
	// failing dependency's own entry is just a stub error with no
	// context. Without export data for every import the type checker
	// cannot run, so there is nothing useful to do but stop.
	for _, path := range order {
		p := byPath[path]
		if !p.DepOnly && len(p.DepsErrors) > 0 {
			return nil, fmt.Errorf("go list: %s: a dependency failed to build: %s\tanalysis needs compiled export data for every import; `go build %s` shows the full error", p.ImportPath, p.DepsErrors[0].Err, p.ImportPath)
		}
	}
	for _, path := range order {
		if p := byPath[path]; p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
	}

	fset := token.NewFileSet()
	exportFor := func(path string) (io.ReadCloser, error) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}
	imp := importer.ForCompiler(fset, "gc", exportFor)

	// Dependency-order the in-module packages (go list emits deps
	// before dependents already, but make it explicit and stable).
	var modulePaths []string
	for _, path := range order {
		if !byPath[path].Standard {
			modulePaths = append(modulePaths, path)
		}
	}
	sorted := topoSort(modulePaths, func(path string) []string {
		var deps []string
		for _, dep := range byPath[path].Imports {
			if p, ok := byPath[dep]; ok && !p.Standard {
				deps = append(deps, dep)
			}
		}
		return deps
	})

	var pkgs []*Package
	for _, path := range sorted {
		lp := byPath[path]
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, typeErr)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Standard:   lp.Standard,
		DepOnly:    lp.DepOnly,
		GoFiles:    lp.GoFiles,
		Imports:    lp.Imports,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// topoSort orders paths so that dependencies precede dependents;
// within that constraint the order is deterministic (lexicographic
// tie-break), matching the suite's own determinism rules.
func topoSort(paths []string, depsOf func(string) []string) []string {
	in := make(map[string]bool, len(paths))
	for _, p := range paths {
		in[p] = true
	}
	sort.Strings(paths)
	var out []string
	state := make(map[string]int) // 0 new, 1 visiting, 2 done
	var visit func(string)
	visit = func(p string) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		deps := depsOf(p)
		sort.Strings(deps)
		for _, d := range deps {
			if in[d] {
				visit(d)
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range paths {
		visit(p)
	}
	return out
}
