// Package nowallclock bans wall-clock time and ambient randomness in
// the simulation packages.
//
// Every simulation under internal/ must be a pure function of its
// configuration and seed: the paper's reverter and MT-filter results
// are only meaningful if a run can be reproduced bit-for-bit. That
// rules out time.Now/time.Since (wall-clock dependence) and the
// global math/rand generators (process-wide mutable state, seeded
// from the clock) anywhere in the simulator. Seeded per-benchmark
// generators — xorshift/splitmix state threaded through structs, or a
// *rand.Rand constructed from an explicit seed — are the only
// sanctioned randomness. Wall-clock use stays legal in cmd/ (the
// profiling and report-stamping layer), which is outside internal/.
package nowallclock

import (
	"go/types"
	"strings"

	"ldis/internal/analysis"
)

// Analyzer is the nowallclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc:  "ban time.Now/time.Since and global math/rand state in simulation packages (internal/...)",
	Run:  run,
}

// bannedTimeFuncs are the wall-clock entry points; anything derived
// from them (time.Since calls time.Now) is non-reproducible.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func inScope(path string) bool {
	return strings.HasPrefix(path, "ldis/internal/") ||
		strings.Contains(path, "/nowallclock/testdata/")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	// The analyzers package itself is exempt: it is tooling, not
	// simulation, and shells out to the go command.
	if strings.HasPrefix(pass.Pkg.Path(), "ldis/internal/analysis") &&
		!strings.Contains(pass.Pkg.Path(), "/testdata/") {
		return nil
	}
	pass.Directives.CheckJustifications(pass, analysis.DirNondetOK)
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		// Package-level functions only: methods on a seeded *rand.Rand
		// instance are the sanctioned form of randomness.
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		var msg string
		switch fn.Pkg().Path() {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				msg = "wall-clock time." + fn.Name() + " in simulation package; simulations must be pure functions of configuration and seed (cmd/ is the place for timing)"
			}
		case "math/rand", "math/rand/v2":
			// Constructors (New, NewSource, NewPCG, ...) build the
			// sanctioned explicitly-seeded generators; only the global
			// top-level functions share process-wide state.
			if !strings.HasPrefix(fn.Name(), "New") {
				msg = "global " + fn.Pkg().Path() + "." + fn.Name() + " in simulation package; use a seeded per-benchmark generator (rand.New or the xorshift state already threaded through the simulators)"
			}
		}
		if msg == "" {
			continue
		}
		pass.ReportfSup(id.Pos(), analysis.DirNondetOK, "%s", msg)
	}
	return nil
}
