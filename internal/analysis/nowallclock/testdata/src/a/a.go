// Package a is the nowallclock golden fixture.
package a

import (
	"math/rand"
	"time"
)

// Flagged uses wall-clock time and the global generator.
func Flagged() int64 {
	t := time.Now() // want `wall-clock time.Now`
	d := time.Since(t) // want `wall-clock time.Since`
	return int64(d) + int64(rand.Intn(10)) // want `global math/rand.Intn`
}

// AsValue passes a banned function as a value; still flagged.
func AsValue() func() time.Time {
	return time.Now // want `wall-clock time.Now`
}

// Seeded is the sanctioned pattern: an explicitly seeded generator.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Durations only does arithmetic on time values; no clock reads.
func Durations(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

// Suppressed documents why the clock read is harmless.
func Suppressed() time.Time {
	//ldis:nondet-ok fixture: exercises the suppression path
	return time.Now()
}
