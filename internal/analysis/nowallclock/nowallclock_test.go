package nowallclock_test

import (
	"testing"

	"ldis/internal/analysis/atest"
	"ldis/internal/analysis/nowallclock"
)

func TestNowallclock(t *testing.T) {
	atest.Run(t, nowallclock.Analyzer, "testdata/src/a")
}
