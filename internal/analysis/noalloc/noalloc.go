// Package noalloc verifies that functions annotated //ldis:noalloc —
// and everything they transitively call within the module — contain
// no allocating constructs.
//
// PR 1 made the access and workload hot paths zero-allocation and
// guards them with testing.AllocsPerRun at a handful of entry points.
// This analyzer turns the property into a whole-module invariant: the
// flagged constructs are make/new, allocating composite literals,
// append into storage the caller did not provide, string
// concatenation and string<->byte conversions, closure literals,
// interface boxing of non-pointer-shaped values, variadic argument
// slices, map writes, goroutine launches, and calls that cannot be
// proven allocation-free (dynamic calls, unverifiable callees).
//
// The analysis is a conservative static approximation, so two escape
// hatches exist: constructs on a panic path (arguments to panic) are
// exempt — allocation while crashing is free — and a line may carry
// `//ldis:alloc-ok <why>` for sanctioned amortized allocation (for
// example a reusable eviction buffer that grows to a bounded high
// water mark).
//
// Verification is bottom-up: the analyzer computes a "clean" summary
// for every function of every module package and exports it as a
// fact, so a //ldis:noalloc function may call into other packages
// whenever the callees verify clean. Under `go vet -vettool`, which
// checks one package at a time without module facts, cross-package
// calls are skipped; `make lint` (the standalone driver) is the
// authoritative whole-module gate.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ldis/internal/analysis"
)

// Analyzer is the noalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //ldis:noalloc (and their in-module transitive callees) must not allocate",
	Run:  run,
}

// factClean is the exported per-function fact: true when the function
// body and its verified callees are allocation-free.
const factClean = "clean"

// cleanStdPkgs are standard-library packages whose exported functions
// are known allocation-free (pure bit/arithmetic kernels, and the
// lock-free atomics behind the obs metric hot paths).
var cleanStdPkgs = map[string]bool{
	"math/bits":   true,
	"math":        true,
	"sync/atomic": true,
}

type finding struct {
	pos token.Pos
	msg string
}

type callSite struct {
	pos    token.Pos
	callee *types.Func
}

type funcData struct {
	decl     *ast.FuncDecl
	obj      *types.Func
	findings []finding
	calls    []callSite
	// clean summary memoization: 0 unvisited, 1 in progress, 2 done.
	state int
	clean bool
}

type checker struct {
	pass  *analysis.Pass
	funcs map[*types.Func]*funcData
}

func run(pass *analysis.Pass) error {
	pass.Directives.CheckJustifications(pass, analysis.DirAllocOK)
	c := &checker{pass: pass, funcs: make(map[*types.Func]*funcData)}

	// Pass 1: collect every function declaration with a body.
	var order []*funcData
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			data := &funcData{decl: fd, obj: obj}
			c.funcs[obj] = data
			order = append(order, data)
		}
	}

	// Pass 2: scan bodies for allocating constructs and static calls.
	for _, data := range order {
		c.scanBody(data)
	}

	// Pass 3: compute and export the clean summary for every function,
	// so importing packages can verify their cross-package calls.
	for _, data := range order {
		clean := c.isClean(data.obj)
		pass.ExportFact(data.obj, factClean, clean)
	}

	// Pass 4: report, walking transitively from each annotated root.
	reported := make(map[*types.Func]bool)
	for _, data := range order {
		if pass.Directives.FuncHas(data.decl, analysis.DirNoalloc) {
			c.report(data, data, reported)
		}
	}
	return nil
}

// report emits the findings of fn (and, recursively, of its in-package
// callees) in the context of the //ldis:noalloc root.
func (c *checker) report(root, fn *funcData, reported map[*types.Func]bool) {
	if reported[fn.obj] {
		return
	}
	reported[fn.obj] = true
	suffix := ""
	if fn != root {
		suffix = fmt.Sprintf(" (in %s, reachable from //ldis:noalloc %s)", fn.obj.Name(), root.obj.Name())
	}
	for _, f := range fn.findings {
		c.pass.ReportfSup(f.pos, analysis.DirAllocOK, "%s%s", f.msg, suffix)
	}
	for _, call := range fn.calls {
		callee := call.callee
		if data, ok := c.funcs[callee]; ok {
			c.report(root, data, reported)
			continue
		}
		if c.callVerified(callee) {
			continue
		}
		if !c.pass.ModuleFacts && !samePackage(c.pass.Pkg, callee) {
			// Unitchecker regime: no cross-package facts; the
			// standalone driver is the authoritative gate.
			continue
		}
		c.pass.ReportfSup(call.pos, analysis.DirAllocOK, "call to %s cannot be verified allocation-free%s", qualifiedName(callee), suffix)
	}
}

func samePackage(pkg *types.Package, fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == pkg.Path()
}

// callVerified reports whether a callee without a local body is known
// allocation-free: via exported facts (module packages analyzed
// earlier in dependency order) or the standard-library allowlist.
func (c *checker) callVerified(callee *types.Func) bool {
	if callee.Pkg() != nil && cleanStdPkgs[callee.Pkg().Path()] {
		return true
	}
	if v, ok := c.pass.ImportFact(callee, factClean); ok {
		clean, _ := v.(bool)
		return clean
	}
	return false
}

// isClean computes the bottom-up allocation-freedom summary of fn.
// Cycles are resolved optimistically: a recursive function is clean
// if no function on the cycle contains an allocating construct.
func (c *checker) isClean(fn *types.Func) bool {
	data, ok := c.funcs[fn]
	if !ok {
		return c.callVerified(fn)
	}
	switch data.state {
	case 1:
		return true // optimistic on cycles
	case 2:
		return data.clean
	}
	data.state = 1
	// A suppressed finding keeps the summary clean; the full loop (no
	// early break) marks every live suppression used for the stale
	// sweep.
	clean := true
	for _, f := range data.findings {
		if !c.pass.Suppressed(f.pos, analysis.DirAllocOK) {
			clean = false
		}
	}
	for _, call := range data.calls {
		if !clean {
			break
		}
		if sub, ok := c.funcs[call.callee]; ok {
			clean = c.isClean(sub.obj)
		} else if !c.callVerified(call.callee) {
			// A call-site suppression keeps the function usable from
			// noalloc contexts even though the callee is unverified.
			clean = c.pass.Suppressed(call.pos, analysis.DirAllocOK)
		}
	}
	data.state = 2
	data.clean = clean
	return clean
}

// ---------------------------------------------------------------------
// Body scanning
// ---------------------------------------------------------------------

type posRange struct{ lo, hi token.Pos }

func (c *checker) scanBody(data *funcData) {
	info := c.pass.TypesInfo

	// Panic arguments are exempt: allocation while crashing is free.
	var panicRanges []posRange
	ast.Inspect(data.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				for _, arg := range call.Args {
					panicRanges = append(panicRanges, posRange{arg.Pos(), arg.End()})
				}
			}
		}
		return true
	})
	onPanicPath := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if pos >= r.lo && pos <= r.hi {
				return true
			}
		}
		return false
	}
	// Suppression is NOT consulted here: findings are always recorded,
	// isClean treats suppressed ones as clean (marking the directive
	// used), and the report walk emits them with Suppressed set so the
	// JSON report shows what each //ldis:alloc-ok hides.
	add := func(pos token.Pos, format string, args ...any) {
		if onPanicPath(pos) {
			return
		}
		data.findings = append(data.findings, finding{pos, fmt.Sprintf(format, args...)})
	}

	appendOK := newAppendTracker(c.pass, data.decl)

	ast.Inspect(data.decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			add(e.Pos(), "closure literal allocates")
			return false // the closure body runs in its own context

		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					add(e.Pos(), "slice literal allocates")
				case *types.Map:
					add(e.Pos(), "map literal allocates")
				}
			}

		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					add(e.Pos(), "address of composite literal may escape to the heap")
				}
			}

		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := info.Types[e]; ok && tv.Value == nil && isString(tv.Type) {
					add(e.Pos(), "string concatenation allocates")
				}
			}

		case *ast.GoStmt:
			add(e.Pos(), "go statement allocates a goroutine")

		case *ast.AssignStmt:
			if e.Tok == token.DEFINE {
				break
			}
			for i, lhs := range e.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if tv, ok := info.Types[idx.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							add(lhs.Pos(), "map assignment may allocate")
						}
					}
				}
				if i < len(e.Rhs) {
					c.checkBoxing(data, add, info.TypeOf(lhs), e.Rhs[i])
				}
			}

		case *ast.ValueSpec:
			if e.Type != nil {
				t := info.TypeOf(e.Type)
				for _, v := range e.Values {
					c.checkBoxing(data, add, t, v)
				}
			}

		case *ast.ReturnStmt:
			sig := data.obj.Type().(*types.Signature)
			if len(e.Results) == sig.Results().Len() {
				for i, res := range e.Results {
					c.checkBoxing(data, add, sig.Results().At(i).Type(), res)
				}
			}

		case *ast.CallExpr:
			c.scanCall(data, add, appendOK, e, onPanicPath)
		}
		return true
	})
}

func (c *checker) scanCall(data *funcData, add func(token.Pos, string, ...any), appendOK *appendTracker, call *ast.CallExpr, onPanicPath func(token.Pos) bool) {
	info := c.pass.TypesInfo

	// Type conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if src == nil {
			return
		}
		switch {
		case isString(dst) && !isString(src.Underlying()):
			add(call.Pos(), "conversion to string allocates")
		case isByteOrRuneSlice(dst) && isString(src.Underlying()):
			add(call.Pos(), "conversion of string to %s allocates", dst)
		case types.IsInterface(dst.Underlying()) && !pointerShaped(src):
			add(call.Pos(), "conversion of %s to interface allocates", src)
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !appendOK.callerProvided(call.Args[0]) {
					add(call.Pos(), "append may grow %s, which is not caller-provided or function-owned storage", types.ExprString(call.Args[0]))
				}
			}
			return
		}
	}

	callee := staticCallee(info, call)
	if callee == nil {
		// Dynamic: a func value or an interface method.
		if !onPanicPath(call.Pos()) {
			add(call.Pos(), "dynamic call of %s cannot be verified allocation-free", types.ExprString(call.Fun))
		}
		return
	}

	// Variadic calls materialize their argument slice.
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Variadic() &&
		call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		add(call.Pos(), "variadic call to %s allocates its argument slice", qualifiedName(callee))
	} else {
		// Interface boxing of arguments at non-variadic positions.
		if sig, ok := callee.Type().(*types.Signature); ok {
			n := sig.Params().Len()
			for i, arg := range call.Args {
				if i >= n {
					break
				}
				pt := sig.Params().At(i).Type()
				if sig.Variadic() && i == n-1 {
					break
				}
				c.checkBoxing(data, add, pt, arg)
			}
		}
	}

	if !onPanicPath(call.Pos()) {
		data.calls = append(data.calls, callSite{call.Pos(), callee})
	}
}

func (c *checker) checkBoxing(data *funcData, add func(token.Pos, string, ...any), dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	// A generic type parameter's underlying type is an interface, but
	// instantiation does not box.
	if _, isTP := dst.(*types.TypeParam); isTP {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return
	}
	if tv.IsNil() || pointerShaped(tv.Type) {
		return
	}
	add(src.Pos(), "implicit conversion of %s to interface allocates", tv.Type)
}

// pointerShaped reports whether values of t fit in an interface word
// without allocation: pointers, interfaces, channels, maps, funcs,
// unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv().Underlying()) {
				return nil // interface dispatch is dynamic
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return staticCallee(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return staticCallee(info, &ast.CallExpr{Fun: fun.X})
	}
	return nil
}

func qualifiedName(fn *types.Func) string {
	key := analysis.ObjectKey(fn)
	// Trim the module prefix for readability; diagnostics stay stable.
	return strings.TrimPrefix(key, "ldis/")
}

// ---------------------------------------------------------------------
// append base tracking
// ---------------------------------------------------------------------

// appendTracker decides whether the base of an append is
// caller-provided or function-owned storage — a parameter, the
// receiver, a field or element reached from one, a local fixed-size
// array, or a local slice derived from any of those. Appending into
// such storage is the sanctioned zero-allocation pattern (scratch
// buffers with capacity for the worst case, or reusable buffers with
// a bounded high-water mark); appending into anything else can force
// a fresh heap-allocated backing array on every call.
type appendTracker struct {
	pass   *analysis.Pass
	params map[*types.Var]bool
	// assigns maps each local variable to the right-hand sides
	// assigned to it anywhere in the function.
	assigns map[*types.Var][]ast.Expr
	// zeroInit marks locals declared without an initializer: their nil
	// zero value is not caller-provided storage, so a later
	// self-append (x = append(x, ...)) allocates.
	zeroInit map[*types.Var]bool
	memo     map[*types.Var]int // 0 new, 1 visiting, 2 ok, 3 bad
}

func newAppendTracker(pass *analysis.Pass, decl *ast.FuncDecl) *appendTracker {
	t := &appendTracker{
		pass:     pass,
		params:   make(map[*types.Var]bool),
		assigns:  make(map[*types.Var][]ast.Expr),
		zeroInit: make(map[*types.Var]bool),
		memo:     make(map[*types.Var]int),
	}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					t.params[v] = true
				}
			}
		}
	}
	collect(decl.Recv)
	collect(decl.Type.Params)
	collect(decl.Type.Results) // named results belong to the caller's frame

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if v := t.varOf(id); v != nil {
							t.assigns[v] = append(t.assigns[v], s.Rhs[i])
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				v, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if i < len(s.Values) {
					t.assigns[v] = append(t.assigns[v], s.Values[i])
				} else if len(s.Values) == 0 {
					t.zeroInit[v] = true
				}
			}
		}
		return true
	})
	return t
}

func (t *appendTracker) varOf(id *ast.Ident) *types.Var {
	if v, ok := t.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := t.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

func (t *appendTracker) callerProvided(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := t.varOf(x)
		if v == nil {
			return false
		}
		return t.varOK(v)
	case *ast.SliceExpr:
		return t.callerProvided(x.X)
	case *ast.SelectorExpr:
		return t.callerProvided(x.X)
	case *ast.IndexExpr:
		return t.callerProvided(x.X)
	case *ast.StarExpr:
		return t.callerProvided(x.X)
	case *ast.CallExpr:
		// append(append(base, ...), ...) chains.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := t.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 0 {
				return t.callerProvided(x.Args[0])
			}
		}
		return false
	}
	return false
}

func (t *appendTracker) varOK(v *types.Var) bool {
	if t.params[v] {
		return true
	}
	// A local fixed-size array is stack storage with a hard capacity.
	if _, isArray := v.Type().Underlying().(*types.Array); isArray {
		return true
	}
	if t.zeroInit[v] {
		return false
	}
	switch t.memo[v] {
	case 1:
		return true // optimistic on x = append(x, ...) self-cycles
	case 2:
		return true
	case 3:
		return false
	}
	rhss, ok := t.assigns[v]
	if !ok || len(rhss) == 0 {
		t.memo[v] = 3
		return false
	}
	t.memo[v] = 1
	ok = true
	for _, rhs := range rhss {
		if !t.callerProvided(rhs) {
			ok = false
			break
		}
	}
	if ok {
		t.memo[v] = 2
	} else {
		t.memo[v] = 3
	}
	return ok
}
