package noalloc_test

import (
	"testing"

	"ldis/internal/analysis/atest"
	"ldis/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	atest.Run(t, noalloc.Analyzer, "testdata/src/a")
}
