// Package b provides cross-package callees for the noalloc fixture:
// one function that verifies allocation-free, one that does not. The
// driver analyzes this package first (dependency order) and exports
// per-function cleanliness facts that package a's checks consume.
package b

// Clean is verified allocation-free.
func Clean(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Dirty allocates.
func Dirty(n int) []int {
	return make([]int, n)
}
