// Package a is the noalloc golden fixture: every construct the
// analyzer must flag, alongside the sanctioned zero-allocation
// patterns it must accept.
package a

import (
	"fmt"
	"math/bits"

	b "ldis/internal/analysis/noalloc/testdata/src/b"
)

var sink any

//ldis:noalloc
func Flagged(n int, buf []int) []int {
	m := make([]int, n) // want `make allocates`
	_ = m
	p := new(int) // want `new allocates`
	_ = p
	lit := []int{1, 2} // want `slice literal allocates`
	_ = lit
	ml := map[int]int{} // want `map literal allocates`
	_ = ml
	var grow []int
	grow = append(grow, n) // want `append may grow grow`
	_ = grow
	sink = n       // want `implicit conversion of int to interface allocates`
	f := func() {} // want `closure literal allocates`
	_ = f
	go spin()      // want `go statement allocates a goroutine`
	fmt.Println(n) // want `variadic call to fmt.Println allocates its argument slice` `call to fmt.Println cannot be verified allocation-free`
	return buf
}

func spin() {}

//ldis:noalloc
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//ldis:noalloc
func Bytes(s string) []byte {
	return []byte(s) // want `conversion of string to \[\]byte allocates`
}

//ldis:noalloc
func Root() int {
	return helper(3)
}

// helper is unannotated but reachable from the //ldis:noalloc Root,
// so its body is checked transitively.
func helper(n int) int {
	tmp := make([]int, n) // want `make allocates \(in helper, reachable from //ldis:noalloc Root\)`
	return len(tmp)
}

//ldis:noalloc
func Dynamic(fn func() int) int {
	return fn() // want `dynamic call of fn cannot be verified allocation-free`
}

//ldis:noalloc
func CrossPackage(x, y int) int {
	v := b.Clean(x, y) // verified via the exported fact: no diagnostic
	v += len(b.Dirty(x)) // want `call to internal/analysis/noalloc/testdata/src/b\.Dirty cannot be verified allocation-free`
	return v
}

type scratch struct {
	buf [8]int
	ev  []int
}

// Clean exercises every sanctioned pattern: appends into
// caller-provided or function-owned storage, pure std kernels, value
// composite literals, and panic-path allocation.
//
//ldis:noalloc
func (s *scratch) Clean(dst []int, v int) []int {
	dst = append(dst, v)
	tmp := s.buf[:0]
	tmp = append(tmp, v)
	w := s.ev[:0]
	w = append(w, v)
	s.ev = w
	var local [4]int
	l := local[:0]
	l = append(l, bits.OnesCount64(uint64(v)))
	_ = l
	type pair struct{ a, b int }
	pr := pair{v, v} // value composite literal: stack storage
	if pr.a < 0 {
		panic(fmt.Sprintf("negative %d", pr.a)) // panic path is exempt
	}
	return dst
}

//ldis:noalloc
func Suppressed(n int) {
	//ldis:alloc-ok fixture: sanctioned amortized growth
	buf := make([]int, n)
	_ = buf
}

func Unjustified() int {
	//ldis:alloc-ok // want `//ldis:alloc-ok requires a justification`
	return 0
}
