package costmodel

import (
	"math"
	"testing"
)

func TestTable3Baseline(t *testing.T) {
	s, err := DistillStorage(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// Every row of Table 3.
	if s.WOCTagEntryBits != 29 {
		t.Errorf("WOC tag entry = %d bits, want 29", s.WOCTagEntryBits)
	}
	if s.WOCTagEntries != 32<<10 {
		t.Errorf("WOC tag entries = %d, want 32k", s.WOCTagEntries)
	}
	if s.WOCTagBytes != 29*32<<10/8 { // 116kB (118784 B)
		t.Errorf("WOC tag bytes = %d", s.WOCTagBytes)
	}
	if s.LOCLines != 16<<10 {
		t.Errorf("LOC lines = %d, want 16k", s.LOCLines)
	}
	if s.LOCFootprintBytes != 16<<10 {
		t.Errorf("LOC footprint = %dB, want 16kB", s.LOCFootprintBytes)
	}
	if s.L1DLines != 256 || s.L1DFootprintBytes != 256 {
		t.Errorf("L1D footprint = %d lines / %dB, want 256/256", s.L1DLines, s.L1DFootprintBytes)
	}
	if s.MedianCounterBytes != 18 {
		t.Errorf("median counters = %dB, want 18", s.MedianCounterBytes)
	}
	if s.ATDEntries != 256 || s.ATDBytes != 1024 {
		t.Errorf("ATD = %d entries / %dB, want 256/1kB", s.ATDEntries, s.ATDBytes)
	}
	// Total: 116kB + 16kB + 256B + 18B + 1kB = 133kB (the paper rounds).
	wantTotal := s.WOCTagBytes + s.LOCFootprintBytes + 256 + 18 + 1024
	if s.TotalBytes != wantTotal {
		t.Errorf("total = %d, want %d", s.TotalBytes, wantTotal)
	}
	if kb := float64(s.TotalBytes) / 1024; math.Abs(kb-133) > 1.0 {
		t.Errorf("total = %.1fkB, want ~133kB", kb)
	}
	if s.BaselineTagBytes != 64<<10 {
		t.Errorf("baseline tags = %dB, want 64kB", s.BaselineTagBytes)
	}
	if s.BaselineAreaBytes != (64+1024)<<10 {
		t.Errorf("baseline area = %dB, want 1088kB", s.BaselineAreaBytes)
	}
	if math.Abs(s.OverheadPercent-12.2) > 0.3 {
		t.Errorf("overhead = %.2f%%, want ~12.2%%", s.OverheadPercent)
	}
}

func TestLineSizeReducesOverhead(t *testing.T) {
	// Section 7.5.1: 128B lines -> ~7%, 256B lines -> ~4%. The paper
	// keeps eight words per line (the word scales with the line), so
	// the footprint stays 8 bits and the WOC tag count shrinks.
	p128 := Defaults()
	p128.LineBytes = 128
	p128.WordBytes = 16
	s128, err := DistillStorage(p128)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s128.OverheadPercent-7) > 1.0 {
		t.Errorf("128B overhead = %.2f%%, want ~7%%", s128.OverheadPercent)
	}
	p256 := Defaults()
	p256.LineBytes = 256
	p256.WordBytes = 32
	s256, err := DistillStorage(p256)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s256.OverheadPercent-4) > 1.0 {
		t.Errorf("256B overhead = %.2f%%, want ~4%%", s256.OverheadPercent)
	}
	if !(s256.OverheadPercent < s128.OverheadPercent && s128.OverheadPercent < 12.5) {
		t.Error("overhead should fall with line size")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := Defaults()
	bad.WordBytes = 7
	if _, err := DistillStorage(bad); err == nil {
		t.Error("odd word size should fail")
	}
	bad2 := Defaults()
	bad2.WOCWays = 8
	if _, err := DistillStorage(bad2); err == nil {
		t.Error("WOCWays >= ways should fail")
	}
	bad3 := Defaults()
	bad3.L2Bytes = 0
	if _, err := DistillStorage(bad3); err == nil {
		t.Error("zero size should fail")
	}
}

func TestOverheadConstants(t *testing.T) {
	l, e := Overheads()
	if l.ExtraTagDelayNS != 0.14 || l.ExtraTagCycles != 1 || l.WOCRearrangeCycles != 2 {
		t.Errorf("latency constants wrong: %+v", l)
	}
	if e.LOCTagNJ != 3.06 || e.WOCExtraNJ != 3.76 || math.Abs(e.TotalTagNJ-6.82) > 1e-9 {
		t.Errorf("energy constants wrong: %+v", e)
	}
}

func TestToucheTagAreaBaseline(t *testing.T) {
	s, err := ToucheTagArea(Defaults(), ToucheDefaults())
	if err != nil {
		t.Fatal(err)
	}
	// Word entry: valid+dirty+head (3) + word-id (3) + member (2) +
	// signature pointer (3 over 8 entries/set) = 11 bits, against the
	// 29-bit LDIS entry.
	if s.WordEntryBits != 11 {
		t.Errorf("word entry = %d bits, want 11", s.WordEntryBits)
	}
	if s.WordEntries != 32<<10 {
		t.Errorf("word entries = %d, want 32k", s.WordEntries)
	}
	if s.SuperblockEntries != 16<<10 || s.SuperblockBits != 24 {
		t.Errorf("superblock table = %d entries x %d bits, want 16k x 24", s.SuperblockEntries, s.SuperblockBits)
	}
	if s.TagBytes != (11*32<<10+24*16<<10)/8 {
		t.Errorf("compressed tag bytes = %d", s.TagBytes)
	}
	if s.TagBytes >= s.LDISTagBytes {
		t.Errorf("compressed area %dB not below LDIS %dB", s.TagBytes, s.LDISTagBytes)
	}
	if s.SavingsPercent < 15 || s.SavingsPercent > 60 {
		t.Errorf("savings = %.1f%%, want a material reduction", s.SavingsPercent)
	}
}

func TestToucheTagAreaErrors(t *testing.T) {
	if _, err := ToucheTagArea(Defaults(), ToucheParams{SuperblockLines: 3, TagBits: 16, ChecksumBits: 8}); err == nil {
		t.Error("non-power-of-two superblock should fail")
	}
	if _, err := ToucheTagArea(Defaults(), ToucheParams{SuperblockLines: 4, TagBits: 0, ChecksumBits: 8}); err == nil {
		t.Error("zero signature width should fail")
	}
	bad := Defaults()
	bad.L2Bytes = 0
	if _, err := ToucheTagArea(bad, ToucheDefaults()); err == nil {
		t.Error("invalid Params should fail")
	}
}

func TestWayMemoEnergyNeverExceedsBaseline(t *testing.T) {
	_, e := Overheads()
	for _, hits := range []uint64{0, 1, 500_000, 1_000_000} {
		wm, err := WayMemoEnergyFor(8, 1_000_000, hits)
		if err != nil {
			t.Fatal(err)
		}
		if wm.MemoNJ > wm.BaselineNJ+1e-9 {
			t.Errorf("hits=%d: memo %.2fnJ exceeds baseline %.2fnJ", hits, wm.MemoNJ, wm.BaselineNJ)
		}
		if hits > 0 && wm.SavedNJ <= 0 {
			t.Errorf("hits=%d: no savings", hits)
		}
		want := float64(1_000_000-hits)*e.LOCTagNJ + float64(hits)*e.LOCTagNJ/8
		if math.Abs(wm.MemoNJ-want) > 1e-6 {
			t.Errorf("hits=%d: memo %.4f, want %.4f", hits, wm.MemoNJ, want)
		}
	}
	if _, err := WayMemoEnergyFor(0, 1, 0); err == nil {
		t.Error("zero ways should fail")
	}
	if _, err := WayMemoEnergyFor(8, 1, 2); err == nil {
		t.Error("hits > refs should fail")
	}
}
