// Package costmodel reproduces the paper's overhead analysis (Section
// 7.5): the storage cost of the distill cache (Table 3, measured in
// register-bit equivalents), its access-latency penalty, and the energy
// of the extra WOC tags. The storage numbers are pure arithmetic over
// the organization parameters; latency and energy use the constants the
// paper obtained from Cacti v3.2 at 65nm.
package costmodel

import (
	"fmt"
	"math/bits"

	"ldis/internal/mem"
)

// Params describe the organization being costed. Defaults() gives the
// paper's baseline; the line-size variants of Section 7.5.1 (128B ->
// ~7%, 256B -> ~4%) follow by changing LineBytes.
type Params struct {
	PhysAddrBits int // 40
	L2Bytes      int // 1MB
	L2Ways       int // 8
	WOCWays      int // 2
	LineBytes    int // 64
	WordBytes    int // 8
	L1DBytes     int // 16kB
	LeaderSets   int // 32
	ATDWays      int // 8
	ATDEntryB    int // 4 bytes per ATD entry
}

// Defaults returns the paper's baseline parameters.
func Defaults() Params {
	return Params{
		PhysAddrBits: mem.PhysAddrBits,
		L2Bytes:      1 << 20,
		L2Ways:       8,
		WOCWays:      2,
		LineBytes:    mem.LineSize,
		WordBytes:    mem.WordSize,
		L1DBytes:     16 << 10,
		LeaderSets:   32,
		ATDWays:      8,
		ATDEntryB:    4,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.LineBytes <= 0 || p.WordBytes <= 0 || p.LineBytes%p.WordBytes != 0 {
		return fmt.Errorf("costmodel: line %dB not divisible into %dB words", p.LineBytes, p.WordBytes)
	}
	if p.L2Ways <= 0 || p.WOCWays < 0 || p.WOCWays >= p.L2Ways {
		return fmt.Errorf("costmodel: ways %d / WOC ways %d invalid", p.L2Ways, p.WOCWays)
	}
	if p.L2Bytes <= 0 || p.L1DBytes <= 0 || p.PhysAddrBits <= 0 {
		return fmt.Errorf("costmodel: non-positive size parameter")
	}
	return nil
}

// WordsPerLine returns the footprint width.
func (p Params) WordsPerLine() int { return p.LineBytes / p.WordBytes }

// Sets returns the L2 set count.
func (p Params) Sets() int { return p.L2Bytes / (p.LineBytes * p.L2Ways) }

// log2 of a power of two.
func log2(n int) int { return bits.TrailingZeros(uint(n)) }

// Storage is the Table-3 breakdown, in bytes (except the per-entry bit
// fields, which are in bits as the paper reports them).
type Storage struct {
	WOCTagEntryBits int // 29 in the baseline
	WOCTagEntries   int // 32k
	WOCTagBytes     int // 116kB

	LOCLines          int // 16k (the paper counts all 1MB/64B lines)
	LOCFootprintBytes int // 16kB

	L1DLines          int // 256
	L1DFootprintBytes int // 256B

	MedianCounterBytes int // 18B (9 two-byte counters)

	ATDEntries int // 256
	ATDBytes   int // 1kB

	TotalBytes int // 133kB

	BaselineTagBytes  int // 64kB
	BaselineAreaBytes int // 1088kB (tags + data)
	OverheadPercent   float64
}

// DistillStorage computes the Table-3 storage overhead for the given
// parameters, following the paper's accounting exactly (footprint bits
// are charged for every line of the data array; the WOC tag covers
// valid + dirty + head + tag + word-id).
func DistillStorage(p Params) (Storage, error) {
	if err := p.Validate(); err != nil {
		return Storage{}, err
	}
	var s Storage
	wpl := p.WordsPerLine()
	sets := p.Sets()

	// WOC tag entry: valid + dirty + head + tag + word-id.
	tagBits := p.PhysAddrBits - log2(sets) - log2(p.LineBytes)
	wordIDBits := log2(wpl)
	s.WOCTagEntryBits = 3 + tagBits + wordIDBits
	s.WOCTagEntries = sets * p.WOCWays * wpl
	s.WOCTagBytes = s.WOCTagEntryBits * s.WOCTagEntries / 8

	// Footprint bits: the paper charges one footprint per line of the
	// whole data array (1MB/64B = 16k) and per L1D line.
	s.LOCLines = p.L2Bytes / p.LineBytes
	s.LOCFootprintBytes = wpl * s.LOCLines / 8
	s.L1DLines = p.L1DBytes / p.LineBytes
	s.L1DFootprintBytes = wpl * s.L1DLines / 8

	// Median-threshold distillation: one 2B counter per word count plus
	// the eviction-sum counter (9 counters in the baseline).
	s.MedianCounterBytes = (wpl + 1) * 2

	// Reverter ATD.
	s.ATDEntries = p.LeaderSets * p.ATDWays
	s.ATDBytes = s.ATDEntries * p.ATDEntryB

	s.TotalBytes = s.WOCTagBytes + s.LOCFootprintBytes + s.L1DFootprintBytes +
		s.MedianCounterBytes + s.ATDBytes

	// Baseline area: the paper uses 64kB of tags for the 1MB cache.
	baselineTagEntryBits := 32 // valid + dirty + tag + LRU state, 4B rounded
	s.BaselineTagBytes = baselineTagEntryBits * s.LOCLines / 8
	s.BaselineAreaBytes = s.BaselineTagBytes + p.L2Bytes
	s.OverheadPercent = 100 * float64(s.TotalBytes) / float64(s.BaselineAreaBytes)
	return s, nil
}

// Latency holds the Section 7.5.2 estimates.
type Latency struct {
	ExtraTagDelayNS    float64 // Cacti estimate at 65nm
	ExtraTagCycles     int     // charged in the IPC model
	WOCRearrangeCycles int
}

// Energy holds the Section 7.5.3 estimates (per L2 access).
type Energy struct {
	LOCTagNJ   float64
	WOCExtraNJ float64
	TotalTagNJ float64
}

// Overheads returns the paper's latency and energy constants.
func Overheads() (Latency, Energy) {
	l := Latency{ExtraTagDelayNS: 0.14, ExtraTagCycles: 1, WOCRearrangeCycles: 2}
	e := Energy{LOCTagNJ: 3.06, WOCExtraNJ: 3.76, TotalTagNJ: 3.06 + 3.76}
	return l, e
}
