// Package costmodel reproduces the paper's overhead analysis (Section
// 7.5): the storage cost of the distill cache (Table 3, measured in
// register-bit equivalents), its access-latency penalty, and the energy
// of the extra WOC tags. The storage numbers are pure arithmetic over
// the organization parameters; latency and energy use the constants the
// paper obtained from Cacti v3.2 at 65nm.
package costmodel

import (
	"fmt"
	"math/bits"

	"ldis/internal/mem"
)

// Params describe the organization being costed. Defaults() gives the
// paper's baseline; the line-size variants of Section 7.5.1 (128B ->
// ~7%, 256B -> ~4%) follow by changing LineBytes.
type Params struct {
	PhysAddrBits int // 40
	L2Bytes      int // 1MB
	L2Ways       int // 8
	WOCWays      int // 2
	LineBytes    int // 64
	WordBytes    int // 8
	L1DBytes     int // 16kB
	LeaderSets   int // 32
	ATDWays      int // 8
	ATDEntryB    int // 4 bytes per ATD entry
}

// Defaults returns the paper's baseline parameters.
func Defaults() Params {
	return Params{
		PhysAddrBits: mem.PhysAddrBits,
		L2Bytes:      1 << 20,
		L2Ways:       8,
		WOCWays:      2,
		LineBytes:    mem.LineSize,
		WordBytes:    mem.WordSize,
		L1DBytes:     16 << 10,
		LeaderSets:   32,
		ATDWays:      8,
		ATDEntryB:    4,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.LineBytes <= 0 || p.WordBytes <= 0 || p.LineBytes%p.WordBytes != 0 {
		return fmt.Errorf("costmodel: line %dB not divisible into %dB words", p.LineBytes, p.WordBytes)
	}
	if p.L2Ways <= 0 || p.WOCWays < 0 || p.WOCWays >= p.L2Ways {
		return fmt.Errorf("costmodel: ways %d / WOC ways %d invalid", p.L2Ways, p.WOCWays)
	}
	if p.L2Bytes <= 0 || p.L1DBytes <= 0 || p.PhysAddrBits <= 0 {
		return fmt.Errorf("costmodel: non-positive size parameter")
	}
	return nil
}

// WordsPerLine returns the footprint width.
func (p Params) WordsPerLine() int { return p.LineBytes / p.WordBytes }

// Sets returns the L2 set count.
func (p Params) Sets() int { return p.L2Bytes / (p.LineBytes * p.L2Ways) }

// log2 of a power of two.
func log2(n int) int { return bits.TrailingZeros(uint(n)) }

// Storage is the Table-3 breakdown, in bytes (except the per-entry bit
// fields, which are in bits as the paper reports them).
type Storage struct {
	WOCTagEntryBits int // 29 in the baseline
	WOCTagEntries   int // 32k
	WOCTagBytes     int // 116kB

	LOCLines          int // 16k (the paper counts all 1MB/64B lines)
	LOCFootprintBytes int // 16kB

	L1DLines          int // 256
	L1DFootprintBytes int // 256B

	MedianCounterBytes int // 18B (9 two-byte counters)

	ATDEntries int // 256
	ATDBytes   int // 1kB

	TotalBytes int // 133kB

	BaselineTagBytes  int // 64kB
	BaselineAreaBytes int // 1088kB (tags + data)
	OverheadPercent   float64
}

// DistillStorage computes the Table-3 storage overhead for the given
// parameters, following the paper's accounting exactly (footprint bits
// are charged for every line of the data array; the WOC tag covers
// valid + dirty + head + tag + word-id).
func DistillStorage(p Params) (Storage, error) {
	if err := p.Validate(); err != nil {
		return Storage{}, err
	}
	var s Storage
	wpl := p.WordsPerLine()
	sets := p.Sets()

	// WOC tag entry: valid + dirty + head + tag + word-id.
	tagBits := p.PhysAddrBits - log2(sets) - log2(p.LineBytes)
	wordIDBits := log2(wpl)
	s.WOCTagEntryBits = 3 + tagBits + wordIDBits
	s.WOCTagEntries = sets * p.WOCWays * wpl
	s.WOCTagBytes = s.WOCTagEntryBits * s.WOCTagEntries / 8

	// Footprint bits: the paper charges one footprint per line of the
	// whole data array (1MB/64B = 16k) and per L1D line.
	s.LOCLines = p.L2Bytes / p.LineBytes
	s.LOCFootprintBytes = wpl * s.LOCLines / 8
	s.L1DLines = p.L1DBytes / p.LineBytes
	s.L1DFootprintBytes = wpl * s.L1DLines / 8

	// Median-threshold distillation: one 2B counter per word count plus
	// the eviction-sum counter (9 counters in the baseline).
	s.MedianCounterBytes = (wpl + 1) * 2

	// Reverter ATD.
	s.ATDEntries = p.LeaderSets * p.ATDWays
	s.ATDBytes = s.ATDEntries * p.ATDEntryB

	s.TotalBytes = s.WOCTagBytes + s.LOCFootprintBytes + s.L1DFootprintBytes +
		s.MedianCounterBytes + s.ATDBytes

	// Baseline area: the paper uses 64kB of tags for the 1MB cache.
	baselineTagEntryBits := 32 // valid + dirty + tag + LRU state, 4B rounded
	s.BaselineTagBytes = baselineTagEntryBits * s.LOCLines / 8
	s.BaselineAreaBytes = s.BaselineTagBytes + p.L2Bytes
	s.OverheadPercent = 100 * float64(s.TotalBytes) / float64(s.BaselineAreaBytes)
	return s, nil
}

// Latency holds the Section 7.5.2 estimates.
type Latency struct {
	ExtraTagDelayNS    float64 // Cacti estimate at 65nm
	ExtraTagCycles     int     // charged in the IPC model
	WOCRearrangeCycles int
}

// Energy holds the Section 7.5.3 estimates (per L2 access).
type Energy struct {
	LOCTagNJ   float64
	WOCExtraNJ float64
	TotalTagNJ float64
}

// Overheads returns the paper's latency and energy constants.
func Overheads() (Latency, Energy) {
	l := Latency{ExtraTagDelayNS: 0.14, ExtraTagCycles: 1, WOCRearrangeCycles: 2}
	e := Energy{LOCTagNJ: 3.06, WOCExtraNJ: 3.76, TotalTagNJ: 3.06 + 3.76}
	return l, e
}

// ToucheParams describe a Touché-style compressed superblock tag
// layout for the WOC (arXiv 1909.00553): word entries stop repeating
// the full line tag and instead point at a shared per-set table of
// hashed superblock signatures.
type ToucheParams struct {
	SuperblockLines   int // lines sharing one signature entry (4)
	TagBits           int // signature width (16)
	ChecksumBits      int // disambiguation checksum width (8)
	SuperblockEntries int // provisioned signature entries per set; 0 = half the word entries
}

// ToucheDefaults mirrors wordstore.ToucheConfig's defaults.
func ToucheDefaults() ToucheParams {
	return ToucheParams{SuperblockLines: 4, TagBits: 16, ChecksumBits: 8}
}

// ToucheStorage is the compressed-tag counterpart of Storage's WOC tag
// block: per-word bookkeeping entries plus the shared signature table,
// against the LDIS per-word full-tag accounting on the same geometry.
type ToucheStorage struct {
	WordEntryBits     int // valid + dirty + head + word-id + member + signature pointer
	WordEntries       int
	SuperblockEntries int // signature entries across all sets
	SuperblockBits    int // signature + checksum
	TagBytes          int // total compressed tag area

	LDISTagBytes   int     // Storage.WOCTagBytes on the same Params
	SavingsPercent float64 // how much smaller the compressed area is
}

// ToucheTagArea prices the compressed layout. Per WOC word entry the
// layout keeps the LDIS bookkeeping that cannot be shared — valid,
// dirty, head, word-id — plus the member index within the superblock
// and a pointer into the set's signature table; the full tag field
// (the dominant term of the 29-bit LDIS entry) is replaced by one
// (signature + checksum) entry shared across every resident line of a
// superblock. The functional model in internal/wordstore enforces the
// matching residency constraint (at most SuperblockEntries distinct
// superblocks per set), so the area claim and the measured miss ratio
// describe the same machine.
func ToucheTagArea(p Params, t ToucheParams) (ToucheStorage, error) {
	if err := p.Validate(); err != nil {
		return ToucheStorage{}, err
	}
	if t.SuperblockLines == 0 {
		t = ToucheDefaults()
	}
	if t.SuperblockLines < 2 || t.SuperblockLines&(t.SuperblockLines-1) != 0 {
		return ToucheStorage{}, fmt.Errorf("costmodel: superblock of %d lines not a power of two >= 2", t.SuperblockLines)
	}
	if t.TagBits < 1 || t.ChecksumBits < 1 {
		return ToucheStorage{}, fmt.Errorf("costmodel: non-positive signature/checksum width")
	}
	wpl := p.WordsPerLine()
	sets := p.Sets()
	wordEntriesPerSet := p.WOCWays * wpl
	sbPerSet := t.SuperblockEntries
	if sbPerSet == 0 {
		sbPerSet = wordEntriesPerSet / 2
	}
	if sbPerSet < 1 {
		sbPerSet = 1
	}

	var s ToucheStorage
	memberBits := log2(t.SuperblockLines)
	ptrBits := bits.Len(uint(sbPerSet - 1))
	s.WordEntryBits = 3 + log2(wpl) + memberBits + ptrBits
	s.WordEntries = sets * wordEntriesPerSet
	s.SuperblockEntries = sets * sbPerSet
	s.SuperblockBits = t.TagBits + t.ChecksumBits
	s.TagBytes = (s.WordEntryBits*s.WordEntries + s.SuperblockBits*s.SuperblockEntries) / 8

	ldis, err := DistillStorage(p)
	if err != nil {
		return ToucheStorage{}, err
	}
	s.LDISTagBytes = ldis.WOCTagBytes
	s.SavingsPercent = 100 * (1 - float64(s.TagBytes)/float64(s.LDISTagBytes))
	return s, nil
}

// WayMemoEnergy prices way memoization (arXiv 0710.4703) over one run.
// The memo link rides along the data readout of the previous access —
// no extra dynamic energy per lookup — and a memo match reads and
// verifies exactly one way's tag instead of probing all of them, so a
// matched access costs LOCTagNJ/ways and every other access pays the
// full parallel probe. Memoized energy therefore never exceeds the
// baseline and the gate "energy <= baseline on every benchmark" is a
// property of the counters, not of workload luck.
type WayMemoEnergy struct {
	Refs         uint64
	MemoHits     uint64
	BaselineNJ   float64 // refs x full tag probe
	MemoNJ       float64 // misses x full probe + hits x single-way probe
	SavedNJ      float64
	SavedPercent float64
}

// WayMemoEnergyFor evaluates the model for a run's counters.
func WayMemoEnergyFor(ways int, refs, memoHits uint64) (WayMemoEnergy, error) {
	if ways <= 0 {
		return WayMemoEnergy{}, fmt.Errorf("costmodel: non-positive ways %d", ways)
	}
	if memoHits > refs {
		return WayMemoEnergy{}, fmt.Errorf("costmodel: memo hits %d exceed refs %d", memoHits, refs)
	}
	_, e := Overheads()
	wm := WayMemoEnergy{Refs: refs, MemoHits: memoHits}
	wm.BaselineNJ = float64(refs) * e.LOCTagNJ
	wm.MemoNJ = float64(refs-memoHits)*e.LOCTagNJ + float64(memoHits)*e.LOCTagNJ/float64(ways)
	wm.SavedNJ = wm.BaselineNJ - wm.MemoNJ
	if wm.BaselineNJ > 0 {
		wm.SavedPercent = 100 * wm.SavedNJ / wm.BaselineNJ
	}
	return wm, nil
}
