package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramAddCount(t *testing.T) {
	h := NewHistogram("words", 9)
	h.Add(0)
	h.Add(8)
	h.AddN(4, 3)
	if h.Count(0) != 1 || h.Count(8) != 1 || h.Count(4) != 3 {
		t.Errorf("counts wrong: %v", h)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram("x", 4)
	h.Add(-5)
	h.Add(99)
	h.AddN(-1, 2)
	h.AddN(7, 2)
	if h.Count(0) != 3 || h.Count(3) != 3 {
		t.Errorf("clamping failed: %v", h)
	}
}

func TestHistogramOutOfRangeCount(t *testing.T) {
	h := NewHistogram("x", 2)
	if h.Count(-1) != 0 || h.Count(5) != 0 {
		t.Error("out-of-range Count should be 0")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram("w", 9)
	h.AddN(2, 2)
	h.AddN(8, 2)
	if got := h.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	empty := NewHistogram("e", 3)
	if empty.Mean() != 0 {
		t.Error("empty Mean should be 0")
	}
}

func TestHistogramMedian(t *testing.T) {
	// The paper's hardware median: cumulative count reaching half the
	// eviction sum. 1-word:45, 8-words:55 -> half of 100 is 50, reached
	// at bucket 8.
	h := NewHistogram("words used", 9)
	h.AddN(1, 45)
	h.AddN(8, 55)
	if got := h.Median(); got != 8 {
		t.Errorf("Median = %d, want 8", got)
	}
	h2 := NewHistogram("w", 9)
	h2.AddN(1, 55)
	h2.AddN(8, 45)
	if got := h2.Median(); got != 1 {
		t.Errorf("Median = %d, want 1", got)
	}
	empty := NewHistogram("e", 9)
	if got := empty.Median(); got != 8 {
		t.Errorf("empty Median = %d, want last bucket", got)
	}
}

func TestHistogramFractions(t *testing.T) {
	h := NewHistogram("f", 4)
	h.AddN(1, 1)
	h.AddN(3, 3)
	fs := h.Fractions()
	if math.Abs(fs[1]-0.25) > 1e-12 || math.Abs(fs[3]-0.75) > 1e-12 {
		t.Errorf("Fractions = %v", fs)
	}
	if math.Abs(h.Fraction(3)-0.75) > 1e-12 {
		t.Errorf("Fraction(3) = %v", h.Fraction(3))
	}
	empty := NewHistogram("e", 2)
	if empty.Fraction(0) != 0 {
		t.Error("empty Fraction should be 0")
	}
}

func TestHistogramResetCloneMerge(t *testing.T) {
	h := NewHistogram("a", 3)
	h.AddN(1, 5)
	c := h.Clone()
	h.Reset()
	if h.Total() != 0 {
		t.Error("Reset failed")
	}
	if c.Count(1) != 5 {
		t.Error("Clone should be independent")
	}
	h.AddN(2, 2)
	h.Merge(c)
	if h.Count(1) != 5 || h.Count(2) != 2 {
		t.Errorf("Merge wrong: %v", h)
	}
}

func TestHistogramMergeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	NewHistogram("a", 2).Merge(NewHistogram("b", 3))
}

func TestNewHistogramPanicsOnZeroBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on 0 buckets")
		}
	}()
	NewHistogram("bad", 0)
}

func TestMPKI(t *testing.T) {
	if got := MPKI(500, 250_000_000); math.Abs(got-0.002) > 1e-12 {
		t.Errorf("MPKI = %v", got)
	}
	if MPKI(10, 0) != 0 {
		t.Error("MPKI with zero instructions should be 0")
	}
}

func TestPctReductionIncrease(t *testing.T) {
	if got := PctReduction(100, 70); math.Abs(got-30) > 1e-12 {
		t.Errorf("PctReduction = %v", got)
	}
	if got := PctIncrease(100, 112); math.Abs(got-12) > 1e-12 {
		t.Errorf("PctIncrease = %v", got)
	}
	if PctReduction(0, 5) != 0 || PctIncrease(0, 5) != 0 {
		t.Error("zero base should yield 0")
	}
}

func TestGeoMeanPct(t *testing.T) {
	// gmean of +10% and +21% ratios: sqrt(1.1*1.21)=1.1537... -> 15.37%
	got := GeoMeanPct([]float64{10, 21})
	want := 100 * (math.Sqrt(1.1*1.21) - 1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("GeoMeanPct = %v, want %v", got, want)
	}
	if GeoMeanPct(nil) != 0 {
		t.Error("empty GeoMeanPct should be 0")
	}
	// A -100% entry must not produce NaN.
	if v := GeoMeanPct([]float64{-100, 50}); math.IsNaN(v) {
		t.Error("GeoMeanPct produced NaN")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("empty Mean should be 0")
	}
}

func TestSatCounter(t *testing.T) {
	c := NewSatCounter(255)
	if c.Value() != 128 {
		t.Errorf("initial = %d, want midpoint 128", c.Value())
	}
	c.Set(254)
	c.Inc()
	c.Inc() // saturate
	if c.Value() != 255 {
		t.Errorf("saturated high = %d", c.Value())
	}
	c.Set(1)
	c.Dec()
	c.Dec() // saturate
	if c.Value() != 0 {
		t.Errorf("saturated low = %d", c.Value())
	}
	c.Set(999)
	if c.Value() != 255 {
		t.Errorf("Set should clamp, got %d", c.Value())
	}
	if c.Max() != 255 {
		t.Errorf("Max = %d", c.Max())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "mpki")
	tb.AddRow("mcf", 136.0)
	tb.AddRow("art", 38.3)
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "136.00") || !strings.Contains(s, "38.30") {
		t.Errorf("String output missing content:\n%s", s)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| name | mpki |") || !strings.Contains(md, "| mcf | 136.00 |") {
		t.Errorf("Markdown output wrong:\n%s", md)
	}
	if tb.Title() != "Demo" {
		t.Errorf("Title = %q", tb.Title())
	}
}

// Property: Median is always a valid bucket index and the cumulative
// count up to it is at least half the total.
func TestMedianProperty(t *testing.T) {
	f := func(counts [9]uint16) bool {
		h := NewHistogram("p", 9)
		for i, c := range counts {
			h.AddN(i, uint64(c))
		}
		m := h.Median()
		if m < 0 || m >= 9 {
			return false
		}
		if h.Total() == 0 {
			return m == 8
		}
		var cum uint64
		for i := 0; i <= m; i++ {
			cum += h.Count(i)
		}
		return 2*cum >= h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fractions sum to ~1 for non-empty histograms.
func TestFractionsSumProperty(t *testing.T) {
	f := func(counts [5]uint8) bool {
		h := NewHistogram("p", 5)
		total := uint64(0)
		for i, c := range counts {
			h.AddN(i, uint64(c))
			total += uint64(c)
		}
		fs := h.Fractions()
		var s float64
		for _, x := range fs {
			s += x
		}
		if total == 0 {
			return s == 0
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("plain", 1.5)
	tb.AddRow("with,comma", `quote"d`)
	got := tb.CSV()
	want := "name,value\nplain,1.50\n\"with,comma\",\"quote\"\"d\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// TestFailureTableDeterministic: the failure table sorts its rows by
// (experiment, benchmark, col) so reports are byte-identical no matter
// which order cells failed in.
func TestFailureTableDeterministic(t *testing.T) {
	fails := []CellFailure{
		{Experiment: "fig8", Benchmark: "mcf", Col: 1, Attempts: 2, Kind: "panic", Reason: "injected"},
		{Experiment: "fig6", Benchmark: "swim", Col: 3, Attempts: 1, Kind: "error", Reason: "boom"},
		{Experiment: "fig6", Benchmark: "ammp", Col: 2, Attempts: 0, Kind: "skipped", Reason: "budget exhausted"},
		{Experiment: "fig6", Benchmark: "ammp", Col: 0, Attempts: 1, Kind: "error", Reason: "boom"},
	}
	shuffled := []CellFailure{fails[2], fails[0], fails[3], fails[1]}
	a, b := FailureTable(fails).String(), FailureTable(shuffled).String()
	if a != b {
		t.Errorf("failure table depends on input order:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	// title + header + rule + 4 rows
	if len(lines) != 7 {
		t.Fatalf("table has %d lines:\n%s", len(lines), a)
	}
	wantOrder := [][2]string{{"fig6", "ammp"}, {"fig6", "ammp"}, {"fig6", "swim"}, {"fig8", "mcf"}}
	for i, want := range wantOrder {
		fields := strings.Fields(lines[3+i])
		if len(fields) < 2 || fields[0] != want[0] || fields[1] != want[1] {
			t.Errorf("row %d = %q, want %v first", i, lines[3+i], want)
		}
	}
	// The input slice must not be reordered in place.
	if fails[0].Experiment != "fig8" {
		t.Error("FailureTable mutated its input")
	}
}

// TestFailureTableEmpty renders headers only.
func TestFailureTableEmpty(t *testing.T) {
	if FailureTable(nil).NumRows() != 0 {
		t.Error("empty failure table has rows")
	}
}
