package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables, which is how every experiment
// in cmd/ldisexp reports the rows of the corresponding paper table or
// figure series.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells are stringified with %v; float64 cells are
// rendered with two decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(width) - 1
	for _, w := range width {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (RFC-4180 quoting
// for cells containing commas or quotes), headers first.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown, used when
// writing EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
