package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesAt(t *testing.T) {
	s := Series{Name: "s", Points: []Point{{64, 0.9}, {128, 0.5}, {256, 0.1}}}
	cases := []struct {
		x, want float64
	}{
		{32, 0.9},  // below domain: clamp to first
		{64, 0.9},  // exact hit
		{100, 0.9}, // step holds until next X
		{128, 0.5},
		{256, 0.1},
		{1 << 20, 0.1}, // above domain: clamp to last
	}
	for _, tc := range cases {
		if got := s.At(tc.x); got != tc.want {
			t.Errorf("At(%g) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestSeriesAtEmpty(t *testing.T) {
	var s Series
	if got := s.At(100); !math.IsNaN(got) {
		t.Errorf("empty Series.At = %v, want NaN", got)
	}
	if s.Len() != 0 {
		t.Errorf("empty Series.Len = %d", s.Len())
	}
}

func TestSeriesAtSinglePoint(t *testing.T) {
	s := Series{Points: []Point{{128, 0.42}}}
	for _, x := range []float64{0, 128, 1e9} {
		if got := s.At(x); got != 0.42 {
			t.Errorf("single-point At(%g) = %v, want 0.42", x, got)
		}
	}
	if !s.NonIncreasing() {
		t.Error("single-point series reported as increasing")
	}
}

func TestNonIncreasing(t *testing.T) {
	down := Series{Points: []Point{{1, 0.9}, {2, 0.9}, {3, 0.2}}}
	if !down.NonIncreasing() {
		t.Error("non-increasing series rejected")
	}
	up := Series{Points: []Point{{1, 0.2}, {2, 0.3}}}
	if up.NonIncreasing() {
		t.Error("increasing series accepted")
	}
	var empty Series
	if !empty.NonIncreasing() {
		t.Error("empty series should be vacuously non-increasing")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := Series{Points: []Point{{64, 0.8}, {128, 0.4}}}
	b := Series{Points: []Point{{64, 0.7}, {128, 0.45}}}
	if got, want := MaxAbsDiff(a, b), 0.1; math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxAbsDiff = %v, want %v", got, want)
	}
	if got := MaxAbsDiff(a, a); got != 0 {
		t.Errorf("MaxAbsDiff(a,a) = %v, want 0", got)
	}
	if got := MaxAbsDiff(a, Series{}); !math.IsNaN(got) {
		t.Errorf("MaxAbsDiff vs empty = %v, want NaN", got)
	}
	// Mismatched X grids: evaluated over the union of points.
	c := Series{Points: []Point{{96, 0.1}}}
	if got, want := MaxAbsDiff(a, c), 0.7; math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxAbsDiff across grids = %v, want %v", got, want)
	}
}

func TestCurveTable(t *testing.T) {
	a := Series{Name: "exact", Points: []Point{{64, 0.8}, {128, 0.4}}}
	b := Series{Name: "shards", Points: []Point{{64, 0.81}}}
	tab := CurveTable("MRC: demo", "capacity", FormatBytes, a, b)
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2 (union of X values)", tab.NumRows())
	}
	out := tab.String()
	for _, want := range []string{"capacity", "exact", "shards", "64KB" /* header check below */} {
		_ = want
	}
	for _, want := range []string{"capacity", "exact", "shards", "0.8000", "0.8100", "0.4000", "64B", "128B"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// b has no point at X=128: that cell must be blank, not 0.
	if strings.Contains(out, "0.0000") {
		t.Errorf("missing point rendered as zero:\n%s", out)
	}
}

func TestCurveTableEmpty(t *testing.T) {
	tab := CurveTable("empty", "x", nil, Series{Name: "s"})
	if tab.NumRows() != 0 {
		t.Errorf("empty series produced %d rows", tab.NumRows())
	}
	if !strings.Contains(tab.String(), "empty") {
		t.Error("title lost on empty table")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		x    float64
		want string
	}{
		{32, "32B"},
		{64 << 10, "64KB"},
		{1 << 20, "1MB"},
		{1<<20 + 1<<19, "1.5MB"},
		{4 << 20, "4MB"},
	}
	for _, tc := range cases {
		if got := FormatBytes(tc.x); got != tc.want {
			t.Errorf("FormatBytes(%g) = %q, want %q", tc.x, got, tc.want)
		}
	}
}
