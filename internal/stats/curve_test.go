package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesAt(t *testing.T) {
	s := Series{Name: "s", Points: []Point{{64, 0.9}, {128, 0.5}, {256, 0.1}}}
	cases := []struct {
		x, want float64
	}{
		{32, 0.9},  // below domain: clamp to first
		{64, 0.9},  // exact hit
		{100, 0.9}, // step holds until next X
		{128, 0.5},
		{256, 0.1},
		{1 << 20, 0.1}, // above domain: clamp to last
	}
	for _, tc := range cases {
		if got := s.At(tc.x); got != tc.want {
			t.Errorf("At(%g) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestSeriesAtEmpty(t *testing.T) {
	var s Series
	if got := s.At(100); !math.IsNaN(got) {
		t.Errorf("empty Series.At = %v, want NaN", got)
	}
	if s.Len() != 0 {
		t.Errorf("empty Series.Len = %d", s.Len())
	}
}

func TestSeriesAtSinglePoint(t *testing.T) {
	s := Series{Points: []Point{{128, 0.42}}}
	for _, x := range []float64{0, 128, 1e9} {
		if got := s.At(x); got != 0.42 {
			t.Errorf("single-point At(%g) = %v, want 0.42", x, got)
		}
	}
	if !s.NonIncreasing() {
		t.Error("single-point series reported as increasing")
	}
}

func TestNonIncreasing(t *testing.T) {
	down := Series{Points: []Point{{1, 0.9}, {2, 0.9}, {3, 0.2}}}
	if !down.NonIncreasing() {
		t.Error("non-increasing series rejected")
	}
	up := Series{Points: []Point{{1, 0.2}, {2, 0.3}}}
	if up.NonIncreasing() {
		t.Error("increasing series accepted")
	}
	var empty Series
	if !empty.NonIncreasing() {
		t.Error("empty series should be vacuously non-increasing")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := Series{Points: []Point{{64, 0.8}, {128, 0.4}}}
	b := Series{Points: []Point{{64, 0.7}, {128, 0.45}}}
	if got, want := MaxAbsDiff(a, b), 0.1; math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxAbsDiff = %v, want %v", got, want)
	}
	if got := MaxAbsDiff(a, a); got != 0 {
		t.Errorf("MaxAbsDiff(a,a) = %v, want 0", got)
	}
	if got := MaxAbsDiff(a, Series{}); !math.IsNaN(got) {
		t.Errorf("MaxAbsDiff vs empty = %v, want NaN", got)
	}
	// Mismatched X grids: evaluated over the union of points.
	c := Series{Points: []Point{{96, 0.1}}}
	if got, want := MaxAbsDiff(a, c), 0.7; math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxAbsDiff across grids = %v, want %v", got, want)
	}
}

// TestSeriesAtBelowSmallestSample pins the below-domain clamp the
// partition controller leans on: an allocation of very few ways can
// query a capacity below the curve's smallest SHARDS sample, and the
// answer must be the first sample's miss ratio — never zero, NaN, or
// an extrapolation.
func TestSeriesAtBelowSmallestSample(t *testing.T) {
	s := Series{Name: "mrc", Points: []Point{{4096, 0.95}, {8192, 0.6}, {65536, 0.05}}}
	for _, x := range []float64{0, 1, 64, 4095} {
		if got := s.At(x); got != 0.95 {
			t.Errorf("At(%g) below smallest sample = %v, want first sample 0.95", x, got)
		}
	}
	// The clamp must not bleed past the first sample's X.
	if got := s.At(4096); got != 0.95 {
		t.Errorf("At(first X) = %v, want 0.95", got)
	}
	if got := s.At(4097); got != 0.95 {
		t.Errorf("At just above first X = %v, want step value 0.95", got)
	}
}

// TestMaxAbsDiffUnequalLength evaluates the union-of-samples metric
// when one curve is much denser than the other — the shape of an
// exact-Mattson curve (every distinct capacity) against a thin SHARDS
// curve (few samples per epoch).
func TestMaxAbsDiffUnequalLength(t *testing.T) {
	dense := Series{Points: []Point{
		{64, 0.9}, {128, 0.8}, {192, 0.7}, {256, 0.3}, {320, 0.2}, {384, 0.1},
	}}
	sparse := Series{Points: []Point{{64, 0.9}, {256, 0.25}}}
	// At every dense X the sparse curve steps: [64,256) -> 0.9,
	// [256,inf) -> 0.25. The largest gap is at X=192: |0.7-0.9| = 0.2.
	if got, want := MaxAbsDiff(dense, sparse), 0.2; math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxAbsDiff(dense, sparse) = %v, want %v", got, want)
	}
	// The metric is symmetric even with unequal sample counts.
	if got, want := MaxAbsDiff(sparse, dense), 0.2; math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxAbsDiff(sparse, dense) = %v, want %v", got, want)
	}
	// One-point curve against a multi-point curve: the single step
	// value is compared at every union X.
	one := Series{Points: []Point{{64, 0.5}}}
	if got, want := MaxAbsDiff(dense, one), 0.4; math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxAbsDiff(dense, one-point) = %v, want %v", got, want)
	}
}

// TestNonIncreasingViolations is the table test for the curve-shape
// validator: where the rise sits and whether it clears the float
// tolerance decides the verdict.
func TestNonIncreasingViolations(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
		want bool
	}{
		{"strictly decreasing", []Point{{1, 0.9}, {2, 0.5}, {3, 0.1}}, true},
		{"flat", []Point{{1, 0.4}, {2, 0.4}, {3, 0.4}}, true},
		{"rise at front", []Point{{1, 0.1}, {2, 0.9}, {3, 0.05}}, false},
		{"rise in middle", []Point{{1, 0.9}, {2, 0.3}, {3, 0.5}, {4, 0.1}}, false},
		{"rise at tail", []Point{{1, 0.9}, {2, 0.3}, {3, 0.31}}, false},
		{"rise within tolerance", []Point{{1, 0.5}, {2, 0.5 + 5e-10}}, true},
		{"rise just past tolerance", []Point{{1, 0.5}, {2, 0.5 + 2e-9}}, false},
		{"single point", []Point{{1, 0.7}}, true},
		{"empty", nil, true},
	}
	for _, tc := range cases {
		s := Series{Name: tc.name, Points: tc.pts}
		if got := s.NonIncreasing(); got != tc.want {
			t.Errorf("%s: NonIncreasing = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCurveTable(t *testing.T) {
	a := Series{Name: "exact", Points: []Point{{64, 0.8}, {128, 0.4}}}
	b := Series{Name: "shards", Points: []Point{{64, 0.81}}}
	tab := CurveTable("MRC: demo", "capacity", FormatBytes, a, b)
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2 (union of X values)", tab.NumRows())
	}
	out := tab.String()
	for _, want := range []string{"capacity", "exact", "shards", "64KB" /* header check below */} {
		_ = want
	}
	for _, want := range []string{"capacity", "exact", "shards", "0.8000", "0.8100", "0.4000", "64B", "128B"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// b has no point at X=128: that cell must be blank, not 0.
	if strings.Contains(out, "0.0000") {
		t.Errorf("missing point rendered as zero:\n%s", out)
	}
}

func TestCurveTableEmpty(t *testing.T) {
	tab := CurveTable("empty", "x", nil, Series{Name: "s"})
	if tab.NumRows() != 0 {
		t.Errorf("empty series produced %d rows", tab.NumRows())
	}
	if !strings.Contains(tab.String(), "empty") {
		t.Error("title lost on empty table")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		x    float64
		want string
	}{
		{32, "32B"},
		{64 << 10, "64KB"},
		{1 << 20, "1MB"},
		{1<<20 + 1<<19, "1.5MB"},
		{4 << 20, "4MB"},
	}
	for _, tc := range cases {
		if got := FormatBytes(tc.x); got != tc.want {
			t.Errorf("FormatBytes(%g) = %q, want %q", tc.x, got, tc.want)
		}
	}
}
