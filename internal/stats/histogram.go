// Package stats provides the counting, histogram, and table-rendering
// utilities shared by the simulator components and the experiment
// harness. Everything here is plain arithmetic over uint64 counters so
// that simulations stay allocation-free on the hot path.
package stats

import "fmt"

// Histogram is a fixed-bucket histogram over small integer outcomes
// (words used per line, recency positions, compressibility classes...).
type Histogram struct {
	name    string
	buckets []uint64
}

// NewHistogram creates a histogram with n buckets labelled 0..n-1.
func NewHistogram(name string, n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("stats: histogram %q needs at least one bucket, got %d", name, n))
	}
	return &Histogram{name: name, buckets: make([]uint64, n)}
}

// Name returns the histogram's label.
func (h *Histogram) Name() string { return h.name }

// Len returns the number of buckets.
func (h *Histogram) Len() int { return len(h.buckets) }

// Add increments bucket i. Out-of-range values clamp to the end buckets
// so callers never lose samples.
func (h *Histogram) Add(i int) {
	switch {
	case i < 0:
		h.buckets[0]++
	case i >= len(h.buckets):
		h.buckets[len(h.buckets)-1]++
	default:
		h.buckets[i]++
	}
}

// AddN increments bucket i by n.
func (h *Histogram) AddN(i int, n uint64) {
	switch {
	case i < 0:
		h.buckets[0] += n
	case i >= len(h.buckets):
		h.buckets[len(h.buckets)-1] += n
	default:
		h.buckets[i] += n
	}
}

// Count returns the value of bucket i.
func (h *Histogram) Count(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Total returns the sum over all buckets.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, b := range h.buckets {
		t += b
	}
	return t
}

// Fraction returns bucket i as a fraction of the total, or 0 if empty.
func (h *Histogram) Fraction(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Count(i)) / float64(t)
}

// Fractions returns every bucket as a fraction of the total.
func (h *Histogram) Fractions() []float64 {
	fs := make([]float64, len(h.buckets))
	t := h.Total()
	if t == 0 {
		return fs
	}
	for i, b := range h.buckets {
		fs[i] = float64(b) / float64(t)
	}
	return fs
}

// Mean returns the average bucket index weighted by counts. For a
// words-used histogram indexed 0..8 this is the paper's "average number
// of words used".
func (h *Histogram) Mean() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	var sum uint64
	for i, b := range h.buckets {
		sum += uint64(i) * b
	}
	return float64(sum) / float64(t)
}

// Median returns the smallest bucket index at which the cumulative count
// reaches half the total, computed exactly the way the paper's
// median-threshold hardware does (Section 5.4): add counts from the
// first counter until one-half of the eviction-sum is reached.
func (h *Histogram) Median() int {
	t := h.Total()
	if t == 0 {
		return len(h.buckets) - 1
	}
	half := (t + 1) / 2
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= half {
			return i
		}
	}
	return len(h.buckets) - 1
}

// Reset zeroes all buckets.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
}

// Clone returns a copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram(h.name, len(h.buckets))
	copy(c.buckets, h.buckets)
	return c
}

// Merge adds other's buckets into h. The histograms must be the same size.
func (h *Histogram) Merge(other *Histogram) {
	if len(other.buckets) != len(h.buckets) {
		panic(fmt.Sprintf("stats: merging histogram %q (%d buckets) into %q (%d buckets)",
			other.name, len(other.buckets), h.name, len(h.buckets)))
	}
	for i, b := range other.buckets {
		h.buckets[i] += b
	}
}

// String renders the histogram compactly for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("%s%v", h.name, h.buckets)
}
