package stats

import "sort"

// CellFailure describes one failed (benchmark × configuration) cell of
// an experiment sweep: which unit of work failed, how many attempts it
// was given, and a deterministic reason string (panic value or error
// message — never a stack trace or timestamp, so the rendered table is
// byte-identical across reruns).
type CellFailure struct {
	// Experiment is the registry id of the experiment the cell
	// belongs to.
	Experiment string
	// Benchmark names the cell's row.
	Benchmark string
	// Col is the cell's configuration column index.
	Col int
	// Attempts is how many times the cell ran before being given up
	// on; 0 means it was never started (fail-fast or budget cutoff).
	Attempts int
	// Kind classifies the failure: "panic", "error", or "skipped".
	Kind string
	// Reason is the deterministic failure message.
	Reason string
}

// SortCellFailures orders failures by (experiment, benchmark, column):
// the canonical deterministic order every failure report uses.
func SortCellFailures(fails []CellFailure) {
	sort.Slice(fails, func(i, j int) bool {
		a, b := fails[i], fails[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		return a.Col < b.Col
	})
}

// FailureTable renders the per-cell failure report. The input is
// sorted (a copy is taken; the caller's slice is untouched), so the
// table is deterministic regardless of completion order.
func FailureTable(fails []CellFailure) *Table {
	sorted := make([]CellFailure, len(fails))
	copy(sorted, fails)
	SortCellFailures(sorted)
	t := NewTable("Failed cells",
		"experiment", "benchmark", "col", "attempts", "kind", "reason")
	for _, f := range sorted {
		t.AddRow(f.Experiment, f.Benchmark, f.Col, f.Attempts, f.Kind, f.Reason)
	}
	return t
}
