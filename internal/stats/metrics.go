package stats

import "math"

// MPKI returns misses per thousand instructions.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(instructions)
}

// PctReduction returns the percentage reduction of new relative to base:
// 100 * (base-new)/base. Positive means new is better (fewer misses).
func PctReduction(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - new) / base
}

// PctIncrease returns the percentage increase of new over base:
// 100 * (new-base)/base. Positive means new is larger (e.g. higher IPC).
func PctIncrease(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (new - base) / base
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMeanPct returns the geometric mean of percentage improvements: each
// x is a percentage (e.g. 12 for +12%); the result is the percentage
// corresponding to the geometric mean of the ratios (1+x/100). This is
// how the paper's "gmean" IPC bar is computed (Section 7.4).
func GeoMeanPct(pcts []float64) float64 {
	if len(pcts) == 0 {
		return 0
	}
	logSum := 0.0
	for _, p := range pcts {
		r := 1 + p/100
		if r <= 0 {
			// A total collapse: fall back to the arithmetic mean rather
			// than producing NaN.
			return Mean(pcts)
		}
		logSum += math.Log(r)
	}
	return 100 * (math.Exp(logSum/float64(len(pcts))) - 1)
}

// SatCounter is a saturating counter in [0, max], used by the reverter
// circuit's PSEL (8-bit, Section 5.5) and by branch predictor entries.
type SatCounter struct {
	v, max uint32
}

// NewSatCounter returns a counter saturating at max, initialized to the
// midpoint.
func NewSatCounter(max uint32) *SatCounter {
	return &SatCounter{v: (max + 1) / 2, max: max}
}

// Inc increments with saturation.
func (c *SatCounter) Inc() {
	if c.v < c.max {
		c.v++
	}
}

// Dec decrements with saturation.
func (c *SatCounter) Dec() {
	if c.v > 0 {
		c.v--
	}
}

// Value returns the current counter value.
func (c *SatCounter) Value() uint32 { return c.v }

// Set forces the counter to v, clamped to [0, max].
func (c *SatCounter) Set(v uint32) {
	if v > c.max {
		v = c.max
	}
	c.v = v
}

// Max returns the saturation bound.
func (c *SatCounter) Max() uint32 { return c.max }
