package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a curve: for miss-ratio curves x is a
// capacity in bytes and y a miss ratio.
type Point struct {
	X, Y float64
}

// Series is a named step curve: points sorted by ascending X, each
// holding the curve's value from its X until the next point's. It is
// the rendering currency between the miss-ratio-curve engine
// (internal/mrc) and the table output.
type Series struct {
	Name   string
	Points []Point
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.Points) }

// At evaluates the step curve at x: the Y of the last point whose X is
// <= x, clamped to the first point's Y below the domain and the last
// point's Y above it. An empty series returns NaN.
func (s Series) At(x float64) float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].X > x })
	if i == 0 {
		return s.Points[0].Y
	}
	return s.Points[i-1].Y
}

// NonIncreasing reports whether the series never rises (modulo a tiny
// float tolerance) as X grows — the shape every miss-ratio curve must
// have: more capacity can only remove misses.
func (s Series) NonIncreasing() bool {
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y > s.Points[i-1].Y+1e-9 {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest |a-b| over the union of both series'
// sample points — the metric behind the exact-vs-SHARDS validation. If
// either series is empty it returns NaN.
func MaxAbsDiff(a, b Series) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return math.NaN()
	}
	max := 0.0
	for _, s := range [2]Series{a, b} {
		for _, p := range s.Points {
			if d := math.Abs(a.At(p.X) - b.At(p.X)); d > max {
				max = d
			}
		}
	}
	return max
}

// CurveTable renders one or more series against a shared X axis: one
// row per distinct X (sorted union across series), one column per
// series. Cells are blank where a series has no point at that exact X;
// Y values render with four decimals (miss ratios need more precision
// than AddRow's two). formatX labels the X column; nil falls back to
// %g.
func CurveTable(title, xHeader string, formatX func(x float64) string, series ...Series) *Table {
	if formatX == nil {
		formatX = func(x float64) string { return fmt.Sprintf("%g", x) }
	}
	headers := make([]string, 0, len(series)+1)
	headers = append(headers, xHeader)
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	t := NewTable(title, headers...)

	xs := make([]float64, 0)
	seen := make(map[float64]bool)
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)

	for _, x := range xs {
		row := make([]string, 0, len(series)+1)
		row = append(row, formatX(x))
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.4f", p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		cells := make([]interface{}, len(row))
		for i, c := range row {
			cells[i] = c
		}
		t.AddRow(cells...)
	}
	return t
}

// FormatBytes renders a byte count as a compact capacity label (e.g.
// "64KB", "1MB", "1.5MB") for curve-table X columns.
func FormatBytes(x float64) string {
	switch {
	case x >= 1<<20:
		mb := strings.TrimRight(fmt.Sprintf("%.2f", x/(1<<20)), "0")
		return strings.TrimSuffix(mb, ".") + "MB"
	case x >= 1<<10:
		return fmt.Sprintf("%gKB", x/(1<<10))
	default:
		return fmt.Sprintf("%gB", x)
	}
}
