// Package sampler implements dynamic set sampling (Qureshi et al.,
// ISCA-33 [12]), the machinery behind the paper's reverter circuit
// (Section 5.5): a few leader sets always run the experimental policy
// while an Auxiliary Tag Directory (ATD) models the traditional cache
// for the same sets; an 8-bit PSEL saturating counter compares miss
// counts and, with hysteresis, enables or disables the policy for the
// remaining follower sets.
package sampler

import (
	"fmt"

	"ldis/internal/mem"
	"ldis/internal/stats"
)

// Config parameterizes the sampler. The paper's values: 32 leader sets
// out of 2048, an 8-way LRU ATD, an 8-bit PSEL, disable below 64 and
// enable above 192.
type Config struct {
	NumSets    int
	LeaderSets int
	ATDWays    int
	PSELBits   int
	// LowWatermark disables the policy when PSEL drops below it;
	// HighWatermark enables it when PSEL rises above it. Between the
	// two, the previous decision is retained (hysteresis).
	LowWatermark  uint32
	HighWatermark uint32
}

// DefaultConfig returns the paper's reverter parameters for a cache
// with numSets sets.
func DefaultConfig(numSets int) Config {
	leaders := 32
	if numSets < 64 {
		// Scale down for small test caches: 1 leader per 2 sets, min 1.
		leaders = numSets / 2
		if leaders == 0 {
			leaders = 1
		}
	}
	return Config{
		NumSets:       numSets,
		LeaderSets:    leaders,
		ATDWays:       8,
		PSELBits:      8,
		LowWatermark:  64,
		HighWatermark: 192,
	}
}

// Validate checks the sampler parameters.
func (c Config) Validate() error {
	if c.NumSets <= 0 || c.NumSets&(c.NumSets-1) != 0 {
		return fmt.Errorf("sampler: NumSets %d must be a positive power of two", c.NumSets)
	}
	if c.LeaderSets <= 0 || c.LeaderSets > c.NumSets {
		return fmt.Errorf("sampler: LeaderSets %d out of range (1..%d)", c.LeaderSets, c.NumSets)
	}
	if c.ATDWays <= 0 {
		return fmt.Errorf("sampler: ATDWays must be positive")
	}
	if c.PSELBits <= 0 || c.PSELBits > 31 {
		return fmt.Errorf("sampler: PSELBits %d out of range", c.PSELBits)
	}
	max := uint32(1)<<c.PSELBits - 1
	if c.LowWatermark > c.HighWatermark || c.HighWatermark > max {
		return fmt.Errorf("sampler: watermarks %d/%d invalid for %d-bit PSEL", c.LowWatermark, c.HighWatermark, c.PSELBits)
	}
	return nil
}

type atdEntry struct {
	valid bool
	tag   uint64
}

// Sampler tracks the leader-set ATD and the PSEL decision.
type Sampler struct {
	cfg      Config
	stride   int
	tagShift uint // precomputed log2(NumSets) for the ATD tag extraction
	psel     *stats.SatCounter
	enabled  bool
	atd      [][]atdEntry // one LRU tag list per leader set, MRU-first

	// Counters for observability.
	PolicyMisses uint64 // leader-set misses under the experimental policy
	ATDMisses    uint64 // leader-set misses the traditional cache would take
	Flips        uint64 // enable/disable transitions
}

// New builds a sampler; panics on invalid config.
func New(cfg Config) *Sampler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	atd := make([][]atdEntry, cfg.LeaderSets)
	for i := range atd {
		atd[i] = make([]atdEntry, cfg.ATDWays)
	}
	s := &Sampler{
		cfg:     cfg,
		stride:  cfg.NumSets / cfg.LeaderSets,
		psel:    stats.NewSatCounter(uint32(1)<<cfg.PSELBits - 1),
		enabled: true, // the experimental policy starts enabled
		atd:     atd,
	}
	for n := cfg.NumSets; n > 1; n >>= 1 {
		s.tagShift++
	}
	return s
}

// IsLeader reports whether setIdx is a leader set. Leaders are evenly
// spaced through the index space.
func (s *Sampler) IsLeader(setIdx int) bool {
	return setIdx%s.stride == 0 && setIdx/s.stride < s.cfg.LeaderSets
}

// leaderIndex maps a leader set index to its ATD slot.
func (s *Sampler) leaderIndex(setIdx int) int { return setIdx / s.stride }

// RecordPolicyMiss notes a miss in a leader set under the experimental
// policy (a distill-cache miss for the reverter). Calls for non-leader
// sets are ignored, so callers can invoke it unconditionally.
func (s *Sampler) RecordPolicyMiss(setIdx int) {
	if !s.IsLeader(setIdx) {
		return
	}
	s.PolicyMisses++
	s.psel.Dec()
	s.decide()
}

// ObserveATD replays the access in the traditional-cache tag directory
// for leader sets; an ATD miss increments PSEL. Non-leader sets are
// ignored.
func (s *Sampler) ObserveATD(setIdx int, line mem.LineAddr) {
	if !s.IsLeader(setIdx) {
		return
	}
	set := s.atd[s.leaderIndex(setIdx)]
	tag := uint64(line) >> s.tagShift
	for pos := range set {
		if set[pos].valid && set[pos].tag == tag {
			e := set[pos]
			copy(set[1:pos+1], set[0:pos])
			set[0] = e
			return
		}
	}
	s.ATDMisses++
	s.psel.Inc()
	s.decide()
	copy(set[1:], set[:len(set)-1])
	set[0] = atdEntry{valid: true, tag: tag}
}

// decide applies the hysteresis rule.
func (s *Sampler) decide() {
	v := s.psel.Value()
	switch {
	case v < s.cfg.LowWatermark:
		if s.enabled {
			s.Flips++
		}
		s.enabled = false
	case v > s.cfg.HighWatermark:
		if !s.enabled {
			s.Flips++
		}
		s.enabled = true
	}
}

// Enabled reports whether the experimental policy should currently be
// applied to follower sets. Leader sets always run the policy.
func (s *Sampler) Enabled() bool { return s.enabled }

// PSEL exposes the current counter value for diagnostics.
func (s *Sampler) PSEL() uint32 { return s.psel.Value() }

// StorageBits returns the hardware cost of the sampler: ATD tag entries
// (the paper charges 4B each, Table 3) plus the PSEL counter.
func (s *Sampler) StorageBits() int {
	return s.cfg.LeaderSets*s.cfg.ATDWays*32 + s.cfg.PSELBits
}
