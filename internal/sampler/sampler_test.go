package sampler

import (
	"testing"

	"ldis/internal/mem"
)

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(2048)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.LeaderSets != 32 || c.ATDWays != 8 || c.LowWatermark != 64 || c.HighWatermark != 192 {
		t.Errorf("paper parameters wrong: %+v", c)
	}
	small := DefaultConfig(8)
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if small.LeaderSets != 4 {
		t.Errorf("small-cache leaders = %d", small.LeaderSets)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := []Config{
		{NumSets: 0, LeaderSets: 1, ATDWays: 1, PSELBits: 8, HighWatermark: 10},
		{NumSets: 6, LeaderSets: 1, ATDWays: 1, PSELBits: 8, HighWatermark: 10},
		{NumSets: 8, LeaderSets: 0, ATDWays: 1, PSELBits: 8, HighWatermark: 10},
		{NumSets: 8, LeaderSets: 16, ATDWays: 1, PSELBits: 8, HighWatermark: 10},
		{NumSets: 8, LeaderSets: 2, ATDWays: 0, PSELBits: 8, HighWatermark: 10},
		{NumSets: 8, LeaderSets: 2, ATDWays: 1, PSELBits: 0},
		{NumSets: 8, LeaderSets: 2, ATDWays: 1, PSELBits: 8, LowWatermark: 200, HighWatermark: 100},
		{NumSets: 8, LeaderSets: 2, ATDWays: 1, PSELBits: 4, LowWatermark: 2, HighWatermark: 100},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
}

func TestLeaderSelection(t *testing.T) {
	s := New(Config{NumSets: 64, LeaderSets: 8, ATDWays: 2, PSELBits: 8, LowWatermark: 64, HighWatermark: 192})
	leaders := 0
	for i := 0; i < 64; i++ {
		if s.IsLeader(i) {
			leaders++
		}
	}
	if leaders != 8 {
		t.Errorf("found %d leaders, want 8", leaders)
	}
	if !s.IsLeader(0) || !s.IsLeader(8) || s.IsLeader(1) {
		t.Error("leader spacing wrong")
	}
}

func TestStartsEnabled(t *testing.T) {
	s := New(DefaultConfig(64))
	if !s.Enabled() {
		t.Error("sampler should start enabled")
	}
}

func TestDisablesWhenPolicyLoses(t *testing.T) {
	s := New(DefaultConfig(64))
	// Policy misses in a leader set drive PSEL down below the low
	// watermark -> disabled.
	for i := 0; i < 100; i++ {
		s.RecordPolicyMiss(0)
	}
	if s.Enabled() {
		t.Errorf("policy should be disabled (PSEL=%d)", s.PSEL())
	}
	if s.PolicyMisses != 100 {
		t.Errorf("PolicyMisses = %d", s.PolicyMisses)
	}
}

func TestEnablesWhenTraditionalLoses(t *testing.T) {
	s := New(DefaultConfig(64))
	for i := 0; i < 100; i++ {
		s.RecordPolicyMiss(0)
	}
	if s.Enabled() {
		t.Fatal("precondition: disabled")
	}
	// ATD misses (distinct lines thrash the 8-way ATD set) drive PSEL up.
	for i := 0; i < 300; i++ {
		s.ObserveATD(0, mem.LineAddr(uint64(i)*64))
	}
	if !s.Enabled() {
		t.Errorf("policy should be re-enabled (PSEL=%d)", s.PSEL())
	}
	if s.Flips != 2 {
		t.Errorf("Flips = %d, want 2", s.Flips)
	}
}

func TestHysteresisRetainsDecision(t *testing.T) {
	cfg := DefaultConfig(64)
	s := New(cfg)
	// Drive PSEL just below the high watermark from the middle: stays
	// at its previous (enabled) decision; then from disabled, a value in
	// the dead band must keep it disabled.
	for i := 0; i < 200; i++ {
		s.RecordPolicyMiss(0) // saturate to 0 -> disabled
	}
	if s.Enabled() {
		t.Fatal("should be disabled")
	}
	// Bring PSEL into the dead band (between 64 and 192): still disabled.
	for i := 0; i < 100; i++ {
		s.ObserveATD(0, mem.LineAddr(uint64(i)*64))
	}
	if s.PSEL() <= cfg.LowWatermark || s.PSEL() >= cfg.HighWatermark {
		t.Fatalf("PSEL %d not in dead band", s.PSEL())
	}
	if s.Enabled() {
		t.Error("dead band must retain the previous (disabled) decision")
	}
}

func TestNonLeaderIgnored(t *testing.T) {
	s := New(DefaultConfig(64))
	before := s.PSEL()
	s.RecordPolicyMiss(1)
	s.ObserveATD(1, 0)
	if s.PSEL() != before || s.PolicyMisses != 0 || s.ATDMisses != 0 {
		t.Error("non-leader sets must not affect the sampler")
	}
}

func TestATDModelsLRU(t *testing.T) {
	s := New(Config{NumSets: 8, LeaderSets: 8, ATDWays: 2, PSELBits: 8, LowWatermark: 64, HighWatermark: 192})
	// Lines mapping to set 0: multiples of 8.
	a, b, c := mem.LineAddr(0), mem.LineAddr(8), mem.LineAddr(16)
	s.ObserveATD(0, a) // miss
	s.ObserveATD(0, b) // miss
	s.ObserveATD(0, a) // hit (promotes a)
	s.ObserveATD(0, c) // miss, evicts b
	s.ObserveATD(0, a) // hit
	s.ObserveATD(0, b) // miss again (was evicted)
	if s.ATDMisses != 4 {
		t.Errorf("ATDMisses = %d, want 4", s.ATDMisses)
	}
}

func TestStorageBits(t *testing.T) {
	s := New(DefaultConfig(2048))
	// Paper Table 3: 32 sets * 8 ways * 4B = 1kB for the ATD.
	atdBits := 32 * 8 * 32
	if got := s.StorageBits(); got != atdBits+8 {
		t.Errorf("StorageBits = %d, want %d", got, atdBits+8)
	}
}
