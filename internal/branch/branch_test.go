package branch

import (
	"testing"

	"ldis/internal/mem"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{GshareEntries: 0, PAsEntries: 4, ChooserEntries: 4, PAsHistoryBits: 4},
		{GshareEntries: 3, PAsEntries: 4, ChooserEntries: 4, PAsHistoryBits: 4},
		{GshareEntries: 4, PAsEntries: 4, ChooserEntries: 4, PAsHistoryBits: 0},
		{GshareEntries: 4, PAsEntries: 4, ChooserEntries: 4, PAsHistoryBits: 20},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v should fail", c)
		}
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter2(0)
	c = c.update(false)
	if c != 0 {
		t.Error("should saturate at 0")
	}
	for i := 0; i < 5; i++ {
		c = c.update(true)
	}
	if c != 3 || !c.taken() {
		t.Errorf("should saturate at 3, got %d", c)
	}
}

func TestAlwaysTakenBranchLearned(t *testing.T) {
	p := New(DefaultConfig())
	pc := mem.Addr(0x400)
	miss := 0
	for i := 0; i < 1000; i++ {
		if p.PredictAndUpdate(pc, true) {
			miss++
		}
	}
	if miss > 2 {
		t.Errorf("always-taken branch mispredicted %d/1000 times", miss)
	}
}

func TestAlternatingBranchLearnedByLocalHistory(t *testing.T) {
	// A strict T/NT alternation defeats 2-bit counters but is perfectly
	// predictable from local history: the PAs side should capture it
	// after warmup.
	p := New(DefaultConfig())
	pc := mem.Addr(0x500)
	missLate := 0
	for i := 0; i < 4000; i++ {
		mis := p.PredictAndUpdate(pc, i%2 == 0)
		if i >= 2000 && mis {
			missLate++
		}
	}
	if rate := float64(missLate) / 2000; rate > 0.05 {
		t.Errorf("alternating branch mispredict rate %.3f after warmup", rate)
	}
}

func TestRandomBranchesMispredictHalf(t *testing.T) {
	// Outcomes must be decorrelated from anything a 16-bit history can
	// key on, so use a strong 64-bit mixer over the iteration index.
	// (A plain xorshift bit stream is actually *learnable* through the
	// global history — the hybrid gets it ~95% right.)
	mix := func(x uint64) uint64 {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	p := New(DefaultConfig())
	miss := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pc := mem.Addr(0x1000 + mix(uint64(i)^0xabc)%512*4)
		if p.PredictAndUpdate(pc, mix(uint64(i))>>33&1 == 0) {
			miss++
		}
	}
	rate := float64(miss) / n
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("random branches mispredict rate %.3f, want ~0.5", rate)
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		p.PredictAndUpdate(0x400, true)
	}
	st := p.Stats()
	if st.Branches != 100 {
		t.Errorf("branches = %d", st.Branches)
	}
	if st.GshareUsed+st.PAsUsed != 100 {
		t.Errorf("component usage %d+%d != 100", st.GshareUsed, st.PAsUsed)
	}
	if st.Rate() < 0 || st.Rate() > 1 {
		t.Errorf("rate = %v", st.Rate())
	}
	if (Stats{}).Rate() != 0 {
		t.Error("empty rate should be 0")
	}
}
