// Package branch implements the baseline machine's branch predictor
// (paper Table 1): a hybrid of a 64k-entry gshare and a 64k-entry
// per-address (PAs) predictor with a chooser, all built from 2-bit
// saturating counters. The CPU timing model drives it with a synthetic
// branch-outcome stream derived from each workload profile, so
// mispredictions (and their minimum 15-cycle penalty) are produced
// mechanistically rather than charged statistically.
package branch

import (
	"fmt"

	"ldis/internal/mem"
)

// Config sizes the predictor tables. Entries must be powers of two.
type Config struct {
	GshareEntries  int // 64k in the baseline
	PAsEntries     int // 64k pattern-history counters
	PAsHistoryBits int // per-address history length
	ChooserEntries int
}

// DefaultConfig returns the paper's 64k/64k hybrid.
func DefaultConfig() Config {
	return Config{
		GshareEntries:  64 << 10,
		PAsEntries:     64 << 10,
		PAsHistoryBits: 10,
		ChooserEntries: 16 << 10,
	}
}

// Validate checks the table geometry.
func (c Config) Validate() error {
	for _, n := range []int{c.GshareEntries, c.PAsEntries, c.ChooserEntries} {
		if n <= 0 || n&(n-1) != 0 {
			return fmt.Errorf("branch: table size %d must be a positive power of two", n)
		}
	}
	if c.PAsHistoryBits < 1 || c.PAsHistoryBits > 16 {
		return fmt.Errorf("branch: PAs history bits %d out of [1,16]", c.PAsHistoryBits)
	}
	return nil
}

// counter2 is a 2-bit saturating counter: 0,1 predict not-taken; 2,3
// predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Stats counts predictor behaviour.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
	GshareUsed  uint64
	PAsUsed     uint64
}

// Rate returns the misprediction rate.
func (s Stats) Rate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Predictor is the gshare/PAs hybrid.
type Predictor struct {
	cfg     Config
	gshare  []counter2
	pas     []counter2
	pasHist []uint16 // per-address local history
	chooser []counter2
	ghist   uint64
	st      Stats
}

// New builds the predictor with all counters weakly taken; panics on
// invalid config.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg:     cfg,
		gshare:  make([]counter2, cfg.GshareEntries),
		pas:     make([]counter2, cfg.PAsEntries),
		pasHist: make([]uint16, cfg.PAsEntries),
		chooser: make([]counter2, cfg.ChooserEntries),
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.pas {
		p.pas[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 2 // weakly prefer gshare
	}
	return p
}

// Stats returns the cumulative counters.
func (p *Predictor) Stats() Stats { return p.st }

func (p *Predictor) gshareIndex(pc mem.Addr) int {
	return int((uint64(pc)>>2 ^ p.ghist) & uint64(p.cfg.GshareEntries-1))
}

func (p *Predictor) pasIndex(pc mem.Addr) (hist int, pht int) {
	hi := int(uint64(pc) >> 2 & uint64(p.cfg.PAsEntries-1))
	mask := uint16(1)<<p.cfg.PAsHistoryBits - 1
	ph := int((uint64(p.pasHist[hi]&mask)<<6 ^ uint64(pc)>>2) & uint64(p.cfg.PAsEntries-1))
	return hi, ph
}

func (p *Predictor) chooserIndex(pc mem.Addr) int {
	return int(uint64(pc) >> 2 & uint64(p.cfg.ChooserEntries-1))
}

// PredictAndUpdate runs one branch through the hybrid: both components
// predict, the chooser arbitrates, every structure trains on the actual
// outcome, and the return value reports whether the final prediction
// was wrong.
func (p *Predictor) PredictAndUpdate(pc mem.Addr, taken bool) (mispredicted bool) {
	gi := p.gshareIndex(pc)
	hi, ph := p.pasIndex(pc)
	ci := p.chooserIndex(pc)

	gPred := p.gshare[gi].taken()
	lPred := p.pas[ph].taken()

	var pred bool
	if p.chooser[ci].taken() {
		pred = gPred
		p.st.GshareUsed++
	} else {
		pred = lPred
		p.st.PAsUsed++
	}

	// Train the chooser toward whichever component was right (only when
	// they disagree, the standard tournament rule).
	if gPred != lPred {
		p.chooser[ci] = p.chooser[ci].update(gPred == taken)
	}
	p.gshare[gi] = p.gshare[gi].update(taken)
	p.pas[ph] = p.pas[ph].update(taken)

	p.pasHist[hi] = p.pasHist[hi]<<1 | b2u(taken)
	p.ghist = p.ghist<<1 | uint64(b2u(taken))

	p.st.Branches++
	if pred != taken {
		p.st.Mispredicts++
		return true
	}
	return false
}

func b2u(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}
