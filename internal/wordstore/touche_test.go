package wordstore

import (
	"testing"

	"ldis/internal/mem"
)

// findAlias searches for two tags with the same member index and the
// same compressed signature but different superblocks. wantCkCollide
// additionally requires (or forbids) a checksum collision.
func findAlias(t *testing.T, tt *ToucheTags, wantCkCollide bool) (a, b uint64) {
	t.Helper()
	base := uint64(0x40) // member 0 of superblock 0x10
	sbA := base >> tt.sbShift
	for cand := base + uint64(tt.cfg.SuperblockLines); cand < base+1<<20; cand += uint64(tt.cfg.SuperblockLines) {
		sbB := cand >> tt.sbShift
		if sbB == sbA || tt.sig(sbB) != tt.sig(sbA) {
			continue
		}
		if (tt.checksum(sbB) == tt.checksum(sbA)) == wantCkCollide {
			return base, cand
		}
	}
	t.Fatalf("no alias pair found (wantCkCollide=%v)", wantCkCollide)
	return 0, 0
}

func installWhole(s *Set, tag uint64) {
	s.Install(Line{Tag: tag, Words: mem.FullFootprint, Slots: mem.WordsPerLine}, 0)
}

// A signature alias with a DIFFERING checksum must miss safely and be
// counted as a detected alias.
func TestToucheAliasChecksumDisambiguates(t *testing.T) {
	tt := NewToucheTags(ToucheConfig{TagBits: 6, ChecksumBits: 16, Seed: 7}, 2)
	s := NewSet(2)
	a, b := findAlias(t, tt, false)
	installWhole(&s, a)
	if got := tt.Find(&s, a); got < 0 || s.Lines[got].Tag != a {
		t.Fatalf("exact lookup of %x: got %d", a, got)
	}
	if got := tt.Find(&s, b); got != -1 {
		t.Fatalf("alias lookup of %x returned resident index %d (tag %x): false hit", b, got, s.Lines[got].Tag)
	}
	if tt.Stats.AliasSafeMisses != 1 || tt.Stats.ChecksumCollisions != 0 {
		t.Fatalf("stats = %+v, want 1 alias safe miss, 0 checksum collisions", tt.Stats)
	}
}

// A checksum collision on top of a signature alias — the deepest
// collision the scheme can suffer — must STILL be a safe miss, never a
// false hit: the final data-integrity verification catches it.
func TestToucheChecksumCollisionSafeMiss(t *testing.T) {
	tt := NewToucheTags(ToucheConfig{TagBits: 4, ChecksumBits: 1, Seed: 3}, 2)
	s := NewSet(2)
	a, b := findAlias(t, tt, true)
	installWhole(&s, a)
	if got := tt.Find(&s, b); got != -1 {
		t.Fatalf("checksum-colliding alias lookup returned %d: false hit", got)
	}
	if tt.Stats.ChecksumCollisions != 1 || tt.Stats.AliasSafeMisses != 1 {
		t.Fatalf("stats = %+v, want the collision counted", tt.Stats)
	}
}

// PrepareInstall must evict a resident (member, signature) alias so
// the compressed store stays single-match.
func TestTouchePrepareInstallEvictsAlias(t *testing.T) {
	tt := NewToucheTags(ToucheConfig{TagBits: 6, ChecksumBits: 8, Seed: 7}, 2)
	s := NewSet(2)
	a, b := findAlias(t, tt, false)
	installWhole(&s, a)
	ev := tt.PrepareInstall(&s, b)
	if len(ev) != 1 || ev[0].Tag != a {
		t.Fatalf("PrepareInstall evicted %v, want the alias %x", ev, a)
	}
	if tt.Stats.AliasEvictions != 1 {
		t.Fatalf("stats = %+v, want 1 alias eviction", tt.Stats)
	}
	installWhole(&s, b)
	if err := tt.CheckInvariants(&s); err != nil {
		t.Fatal(err)
	}
}

// Superblock-entry pressure evicts the fewest-words superblock whole.
func TestToucheSuperblockPressure(t *testing.T) {
	tt := NewToucheTags(ToucheConfig{SuperblockLines: 4, SuperblockEntries: 2, Seed: 1}, 4)
	s := NewSet(4)
	// Superblock 1: two lines, 4 words each. Superblock 2: one line,
	// 2 words — the cheapest victim.
	s.Install(Line{Tag: 4, Words: 0x0f, Slots: 4}, 0)
	s.Install(Line{Tag: 5, Words: 0x0f, Slots: 4}, 0)
	s.Install(Line{Tag: 8, Words: 0x03, Slots: 2}, 0)
	// Installing a line of superblock 3 exceeds the two-entry budget.
	ev := tt.PrepareInstall(&s, 12)
	if len(ev) != 1 || ev[0].Tag != 8 {
		t.Fatalf("evicted %v, want the 2-word line of superblock 2", ev)
	}
	if tt.Stats.SuperblockEvictions != 1 {
		t.Fatalf("stats = %+v, want 1 superblock eviction", tt.Stats)
	}
	installWhole(&s, 12)
	if err := tt.CheckInvariants(&s); err != nil {
		t.Fatal(err)
	}
	// Re-installing into a RESIDENT superblock must evict nothing.
	s.RemoveAt(s.Find(12))
	if ev := tt.PrepareInstall(&s, 13); len(ev) != 0 {
		t.Fatalf("resident-superblock install evicted %v", ev)
	}
}

// Randomized stress with deliberately tiny hashes: whatever collides,
// a compressed lookup must never resolve to a line with a different
// tag, and the representability invariants must hold after every
// install.
func TestToucheStressNeverFalseHit(t *testing.T) {
	tt := NewToucheTags(ToucheConfig{TagBits: 3, ChecksumBits: 1, SuperblockEntries: 4, Seed: 11}, 2)
	s := NewSet(2)
	rng := uint64(99)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	for i := 0; i < 20000; i++ {
		tag := next(512)
		if got := tt.Find(&s, tag); got >= 0 && s.Lines[got].Tag != tag {
			t.Fatalf("false hit: lookup %x resolved to %x", tag, s.Lines[got].Tag)
		}
		if s.Find(tag) < 0 {
			tt.PrepareInstall(&s, tag)
			words := mem.Footprint(1<<next(8)) | 1
			slots := mem.Pow2WordsFor(words.Count())
			s.Install(Line{Tag: tag, Words: words, Slots: slots}, next(1<<32))
			if err := tt.CheckInvariants(&s); err != nil {
				t.Fatalf("after installing %x: %v", tag, err)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tt.Stats.AliasSafeMisses == 0 || tt.Stats.AliasEvictions == 0 {
		t.Fatalf("stress produced no collisions (stats %+v); hashes not small enough", tt.Stats)
	}
}
