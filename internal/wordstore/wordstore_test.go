package wordstore

import (
	"testing"
	"testing/quick"

	"ldis/internal/mem"
)

func TestRegionMask(t *testing.T) {
	if RegionMask(0, 8) != mem.FullFootprint {
		t.Error("full region mask wrong")
	}
	if RegionMask(2, 2) != mem.Footprint(0b1100) {
		t.Errorf("RegionMask(2,2) = %08b", RegionMask(2, 2))
	}
	if RegionMask(4, 4) != mem.Footprint(0b11110000) {
		t.Errorf("RegionMask(4,4) = %08b", RegionMask(4, 4))
	}
}

func TestWOCInstallIntoFree(t *testing.T) {
	s := NewSet(2)
	ev := s.Install(Line{Tag: 1, Words: mem.FootprintOfWord(0), Slots: 1}, 0)
	if len(ev) != 0 {
		t.Fatalf("install into empty set evicted %d lines", len(ev))
	}
	if s.Find(1) < 0 {
		t.Fatal("line not findable")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWOCAlignment(t *testing.T) {
	s := NewSet(1)
	// Install descending sizes 4,2,1,1: the random pick always prefers
	// fully free regions, so nothing is evicted and the way packs full.
	sizes := []int{4, 2, 1, 1}
	for i, sz := range sizes {
		words := mem.Footprint(0)
		for w := 0; w < sz; w++ {
			words = words.Set(w)
		}
		ev := s.Install(Line{Tag: uint64(i + 1), Words: words, Slots: sz}, uint64(i*3+1))
		if len(ev) != 0 {
			t.Fatalf("install %d evicted %d lines prematurely", i, len(ev))
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// All 8 slots used.
	if s.occ[0] != mem.FullFootprint {
		t.Fatalf("occupancy %v", s.occ[0])
	}
	for _, l := range s.Lines {
		if l.Start%l.Slots != 0 {
			t.Errorf("line %d misaligned: start %d slots %d", l.Tag, l.Start, l.Slots)
		}
	}
}

func TestWOCReplacementEvictsWholeLines(t *testing.T) {
	s := NewSet(1)
	// Two 4-slot lines fill the way.
	s.Install(Line{Tag: 1, Words: mem.Footprint(0b1111), Slots: 4}, 0)
	s.Install(Line{Tag: 2, Words: mem.Footprint(0b1111), Slots: 4}, 0)
	// Installing an 8-slot line must evict both.
	ev := s.Install(Line{Tag: 3, Words: mem.FullFootprint, Slots: 8}, 5)
	if len(ev) != 2 {
		t.Fatalf("evicted %d lines, want 2", len(ev))
	}
	if s.Find(1) >= 0 || s.Find(2) >= 0 || s.Find(3) < 0 {
		t.Error("contents wrong after 8-slot install")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWOCSmallInstallEvictsContainingLine(t *testing.T) {
	s := NewSet(1)
	s.Install(Line{Tag: 1, Words: mem.FullFootprint, Slots: 8}, 0)
	// A 1-slot install: the only eligible candidate is the head (slot 0)
	// of the 8-slot line, which must be evicted whole (head-bit rule).
	ev := s.Install(Line{Tag: 2, Words: mem.FootprintOfWord(3), Slots: 1}, 9)
	if len(ev) != 1 || ev[0].Tag != 1 {
		t.Fatalf("evictions = %+v", ev)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The freed 7 slots are available for subsequent installs.
	for i := 0; i < 7; i++ {
		if ev := s.Install(Line{Tag: uint64(10 + i), Words: mem.FootprintOfWord(0), Slots: 1}, uint64(i)); len(ev) != 0 {
			t.Fatalf("install %d into freed space evicted %d lines", i, len(ev))
		}
	}
}

func TestWOCInstallPanicsOnBadSlots(t *testing.T) {
	s := NewSet(1)
	for _, bad := range []int{0, 3, 5, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("slots=%d should panic", bad)
				}
			}()
			s.Install(Line{Tag: 99, Words: 1, Slots: bad}, 0)
		}()
	}
}

func TestWOCDuplicateInstallPanics(t *testing.T) {
	s := NewSet(1)
	s.Install(Line{Tag: 7, Words: 1, Slots: 1}, 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate tag install should panic")
		}
	}()
	s.Install(Line{Tag: 7, Words: 1, Slots: 1}, 0)
}

func TestWOCClear(t *testing.T) {
	s := NewSet(2)
	s.Install(Line{Tag: 1, Words: 1, Slots: 1}, 0)
	s.Install(Line{Tag: 2, Words: 3, Dirty: 1, Slots: 2}, 0)
	removed := s.Clear()
	if len(removed) != 2 {
		t.Fatalf("clear removed %d", len(removed))
	}
	if len(s.Lines) != 0 || s.occ[0] != 0 || s.occ[1] != 0 {
		t.Error("set not empty after clear")
	}
}

// Property: any sequence of installs keeps the set structurally sound
// and never exceeds capacity.
func TestWOCStressInvariants(t *testing.T) {
	f := func(ops []struct {
		Tag   uint16
		Used  uint8
		Rnd   uint64
		Dirty bool
	}) bool {
		s := NewSet(2)
		for _, op := range ops {
			words := mem.Footprint(op.Used)
			if words == 0 {
				words = 1
			}
			tag := uint64(op.Tag)
			if s.Find(tag) >= 0 {
				continue
			}
			wl := Line{Tag: tag, Words: words, Slots: mem.Pow2WordsFor(words.Count())}
			if op.Dirty {
				wl.Dirty = words
			}
			s.Install(wl, op.Rnd)
			if err := s.CheckInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
			total := 0
			for _, l := range s.Lines {
				total += l.Slots
			}
			if total > 16 {
				t.Logf("capacity exceeded: %d slots", total)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWays(t *testing.T) {
	s := NewSet(3)
	if s.Ways() != 3 {
		t.Errorf("Ways = %d", s.Ways())
	}
}

func TestHasFreeRegion(t *testing.T) {
	s := NewSet(1)
	if !s.HasFreeRegion(8) {
		t.Fatal("empty set must have a free 8-region")
	}
	s.Install(Line{Tag: 1, Words: mem.FullFootprint, Slots: 8}, 0)
	if s.HasFreeRegion(1) {
		t.Error("full way should have no free region")
	}
	s2 := NewSet(1)
	s2.Install(Line{Tag: 2, Words: mem.Footprint(0b11), Slots: 2}, 0)
	if !s2.HasFreeRegion(4) {
		t.Error("half-empty way should have a free 4-region")
	}
	if s2.HasFreeRegion(8) {
		t.Error("partially used way has no free 8-region")
	}
}

func TestOccupiedSlots(t *testing.T) {
	s := NewSet(2)
	if s.OccupiedSlots() != 0 {
		t.Fatal("empty set should have 0 slots used")
	}
	s.Install(Line{Tag: 1, Words: 1, Slots: 1}, 0)
	s.Install(Line{Tag: 2, Words: 0b1111, Slots: 4}, 0)
	if got := s.OccupiedSlots(); got != 5 {
		t.Errorf("OccupiedSlots = %d, want 5", got)
	}
}

func TestInstallLRUPrefersOldest(t *testing.T) {
	s := NewSet(1)
	// Two 4-slot lines with distinct ages.
	s.Install(Line{Tag: 1, Words: 0b1111, Slots: 4, LastUse: 10}, 0)
	s.Install(Line{Tag: 2, Words: 0b1111, Slots: 4, LastUse: 20}, 0)
	// No free 4-region remains: LRU install must evict tag 1 (older).
	ev := s.InstallLRU(Line{Tag: 3, Words: 0b1111, Slots: 4, LastUse: 30})
	if len(ev) != 1 || ev[0].Tag != 1 {
		t.Errorf("evicted %+v, want tag 1", ev)
	}
	if s.Find(2) < 0 || s.Find(3) < 0 {
		t.Error("tags 2 and 3 should be resident")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInstallLRUUsesFreeRegionFirst(t *testing.T) {
	s := NewSet(1)
	s.Install(Line{Tag: 1, Words: 0b1111, Slots: 4, LastUse: 1}, 0)
	// Half the way is free: no eviction expected.
	if ev := s.InstallLRU(Line{Tag: 2, Words: 0b1111, Slots: 4, LastUse: 2}); len(ev) != 0 {
		t.Errorf("free region available but evicted %+v", ev)
	}
}

func TestInstallLRUChecksArguments(t *testing.T) {
	s := NewSet(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad slots")
		}
	}()
	s.InstallLRU(Line{Tag: 9, Words: 1, Slots: 3})
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	cases := []Line{
		{Tag: 1, Words: 0b111, Slots: 3, Start: 0},            // non-pow2 slots
		{Tag: 2, Words: 0b11, Slots: 2, Start: 1},             // misaligned
		{Tag: 3, Words: 0, Slots: 1, Start: 0},                // no words
		{Tag: 4, Words: 0b1, Dirty: 0b10, Slots: 1, Start: 0}, // dirty outside words
	}
	for i, bad := range cases {
		s := NewSet(1)
		s.Lines = append(s.Lines, bad)
		if err := s.CheckInvariants(); err == nil {
			t.Errorf("case %d: corruption not detected: %+v", i, bad)
		}
	}
	// Overlap detection.
	s := NewSet(1)
	s.Lines = append(s.Lines,
		Line{Tag: 1, Words: 0b11, Slots: 2, Start: 0},
		Line{Tag: 2, Words: 0b11, Slots: 2, Start: 0})
	if err := s.CheckInvariants(); err == nil {
		t.Error("overlap not detected")
	}
}
