// Package wordstore implements a word-organized cache set: a group of
// 64B data ways logically partitioned into 8B word entries, holding
// variable-size (power-of-two, aligned) groups of words per line. It is
// the storage substrate of the distill cache's WOC (paper Section 5.1)
// and of the decoupled-sectored store used by the SFP baseline
// (Section 9 / Figure 13).
package wordstore

import (
	"fmt"

	"ldis/internal/mem"
	"ldis/internal/obs"
)

// Line is one resident line: its stored words are packed into Slots
// consecutive word entries of way Way, starting at the aligned offset
// Start. The paper's head-bit corresponds to the Start slot.
type Line struct {
	Tag   uint64
	Words mem.Footprint // which words of the line are stored
	Dirty mem.Footprint // which stored words are dirty
	Way   int
	Start int
	Slots int // power-of-two entry count (>= stored payload)

	// LastUse is an optional recency stamp maintained by callers that
	// use InstallLRU (the paper's footnote 4 compares the WOC's random
	// replacement against such an LRU variant).
	LastUse uint64
}

// Set is the word-organized portion of one cache set.
type Set struct {
	Lines []Line
	occ   []mem.Footprint // per-way occupancy bitmap over the 8 slots
	// heads mirrors, per way, the Start slot of every resident line, so
	// the replacement scan answers "is this slot a head?" with one bit
	// test instead of walking Lines. Maintained by RemoveAt/Clear/place;
	// callers never move a line (they only touch Words/Dirty/LastUse),
	// so the bitmap cannot go stale.
	heads []mem.Footprint
	// evictBuf backs the slices returned by Install/InstallLRU/Clear.
	// Callers consume the returned lines before the next mutation, so
	// reusing one buffer keeps the install path allocation-free.
	evictBuf []Line

	// ObsInstallSlots, when non-nil, histograms the slot count of every
	// installed line (the distilled-line size distribution). The owning
	// cache shares one histogram across all its sets; a nil handle
	// no-ops.
	ObsInstallSlots *obs.Histogram
}

// NewSet returns an empty set with the given number of data ways.
// Lines is pre-sized to the hard capacity (one single-slot line per
// word entry) so steady-state installs never grow it.
func NewSet(ways int) Set {
	return Set{
		Lines: make([]Line, 0, ways*mem.WordsPerLine),
		occ:   make([]mem.Footprint, ways),
		heads: make([]mem.Footprint, ways),
	}
}

// NewSets returns n empty sets with the given number of data ways,
// carving every per-set slice out of three shared backing arrays. A
// cache with thousands of sets constructs in 3 allocations instead of
// 3n, and the contiguous layout keeps neighbouring sets on shared
// pages. Full-slice expressions pin each set's Lines capacity to its
// own region, so growth past the hard cap (which NewSet's sizing
// already rules out) could never bleed into a neighbour.
func NewSets(ways, n int) []Set {
	sets := make([]Set, n)
	lineCap := ways * mem.WordsPerLine
	lines := make([]Line, n*lineCap)
	occ := make([]mem.Footprint, n*ways)
	heads := make([]mem.Footprint, n*ways)
	for i := range sets {
		sets[i] = Set{
			Lines: lines[i*lineCap : i*lineCap : (i+1)*lineCap],
			occ:   occ[i*ways : (i+1)*ways : (i+1)*ways],
			heads: heads[i*ways : (i+1)*ways : (i+1)*ways],
		}
	}
	return sets
}

// Ways returns the number of data ways.
func (s *Set) Ways() int { return len(s.occ) }

// Find returns the index of the line with the given tag, or -1.
func (s *Set) Find(tag uint64) int {
	for i := range s.Lines {
		if s.Lines[i].Tag == tag {
			return i
		}
	}
	return -1
}

// RemoveAt deletes the line at index i and frees its slots.
func (s *Set) RemoveAt(i int) Line {
	l := s.Lines[i]
	s.occ[l.Way] &^= RegionMask(l.Start, l.Slots)
	s.heads[l.Way] &^= RegionMask(l.Start, 1)
	s.Lines[i] = s.Lines[len(s.Lines)-1]
	s.Lines = s.Lines[:len(s.Lines)-1]
	return l
}

// Clear removes every line, returning the removed lines so the caller
// can account for dirty writebacks. The returned slice is only valid
// until the next Install/InstallLRU/Clear on this set.
func (s *Set) Clear() []Line {
	s.evictBuf = append(s.evictBuf[:0], s.Lines...)
	s.Lines = s.Lines[:0]
	for i := range s.occ {
		s.occ[i] = 0
		s.heads[i] = 0
	}
	return s.evictBuf
}

// RegionMask returns the occupancy bits for slots [start, start+slots).
func RegionMask(start, slots int) mem.Footprint {
	return mem.Footprint(((1 << uint(slots)) - 1) << uint(start))
}

// candidate is one aligned region eligible for replacement.
type candidate struct {
	way, start int
}

// regionState classifies the aligned region (way, start): free means
// no slot is in use; eligible means it may be reclaimed — its first
// slot is invalid or carries a head-bit (paper Section 5.3).
func (s *Set) regionState(way, start, slots int) (free, eligible bool) {
	if s.occ[way]&RegionMask(start, slots) == 0 {
		return true, false
	}
	firstFree := s.occ[way]&RegionMask(start, 1) == 0
	return false, firstFree || s.isHead(way, start)
}

// countCandidates counts the free and eligible-occupied aligned regions
// for a line of the given slot count, in way-major/start-minor order —
// the enumeration Install's random pick indexes into.
func (s *Set) countCandidates(slots int) (nfree, nocc int) {
	for way := range s.occ {
		for start := 0; start+slots <= mem.WordsPerLine; start += slots {
			free, eligible := s.regionState(way, start, slots)
			switch {
			case free:
				nfree++
			case eligible:
				nocc++
			}
		}
	}
	return nfree, nocc
}

// nthCandidate returns the k-th free (or, with wantFree false, k-th
// eligible-occupied) region in the same enumeration order as
// countCandidates. The two-pass count-then-pick keeps replacement
// decisions identical to materializing the candidate lists while doing
// no allocation.
func (s *Set) nthCandidate(slots int, wantFree bool, k int) candidate {
	for way := range s.occ {
		for start := 0; start+slots <= mem.WordsPerLine; start += slots {
			free, eligible := s.regionState(way, start, slots)
			if free != wantFree || (!free && !eligible) {
				continue
			}
			if k == 0 {
				return candidate{way, start}
			}
			k--
		}
	}
	panic("wordstore: candidate index out of range")
}

// Install places nl (whose Slots field must be a power of two <= 8)
// into the set, evicting any lines overlapping the chosen region. The
// region is picked uniformly at random — via the caller-supplied rnd
// value — among the eligible aligned candidates (paper Section 5.3);
// fully free regions are preferred because they never cost an eviction.
// It returns the evicted lines, valid until the next mutation.
//
//ldis:noalloc
func (s *Set) Install(nl Line, rnd uint64) []Line {
	s.checkInstall(nl)
	nfree, nocc := s.countCandidates(nl.Slots)
	if nfree > 0 {
		return s.place(nl, s.nthCandidate(nl.Slots, true, int(rnd%uint64(nfree))))
	}
	if nocc == 0 {
		// Cannot happen: region (way, 0) is always eligible — slot 0 is
		// either free or the head of the line covering it; defend anyway.
		panic("wordstore: no replacement candidate")
	}
	return s.place(nl, s.nthCandidate(nl.Slots, false, int(rnd%uint64(nocc))))
}

// countCandidatesMasked is countCandidates restricted to the data ways
// whose bit is set in wayMask (same way-major/start-minor enumeration,
// masked ways skipped whole).
func (s *Set) countCandidatesMasked(slots int, wayMask uint64) (nfree, nocc int) {
	for way := range s.occ {
		if wayMask&(1<<uint(way)) == 0 {
			continue
		}
		for start := 0; start+slots <= mem.WordsPerLine; start += slots {
			free, eligible := s.regionState(way, start, slots)
			switch {
			case free:
				nfree++
			case eligible:
				nocc++
			}
		}
	}
	return nfree, nocc
}

// nthCandidateMasked is nthCandidate over the masked enumeration.
func (s *Set) nthCandidateMasked(slots int, wayMask uint64, wantFree bool, k int) candidate {
	for way := range s.occ {
		if wayMask&(1<<uint(way)) == 0 {
			continue
		}
		for start := 0; start+slots <= mem.WordsPerLine; start += slots {
			free, eligible := s.regionState(way, start, slots)
			if free != wantFree || (!free && !eligible) {
				continue
			}
			if k == 0 {
				return candidate{way, start}
			}
			k--
		}
	}
	panic("wordstore: masked candidate index out of range")
}

// InstallMasked places nl like Install but considers only the data
// ways whose bit is set in wayMask — the distill cache's way-partition
// enforcement: each tenant's distilled lines land in its own WOC ways.
// A zero mask, or one covering every way, behaves exactly like Install
// (and takes Install's unmasked hot path). The mask restricts where nl
// is placed, never which lines a placement may evict — alignment means
// a region's victims always live in the region's own way.
//
//ldis:noalloc
func (s *Set) InstallMasked(nl Line, rnd uint64, wayMask uint64) []Line {
	full := uint64(1)<<uint(len(s.occ)) - 1
	wayMask &= full
	if wayMask == 0 || wayMask == full {
		return s.Install(nl, rnd)
	}
	s.checkInstall(nl)
	nfree, nocc := s.countCandidatesMasked(nl.Slots, wayMask)
	if nfree > 0 {
		return s.place(nl, s.nthCandidateMasked(nl.Slots, wayMask, true, int(rnd%uint64(nfree))))
	}
	if nocc == 0 {
		// Cannot happen: region (way, 0) of any masked-in way is always
		// eligible; defend as Install does.
		panic("wordstore: no replacement candidate in masked ways")
	}
	return s.place(nl, s.nthCandidateMasked(nl.Slots, wayMask, false, int(rnd%uint64(nocc))))
}

// InstallLRU places nl like Install but, when no region is free, evicts
// the candidate region whose youngest resident line is oldest (a
// variable-size LRU approximation — the policy the paper's footnote 4
// says random replacement approximates).
//
//ldis:noalloc
func (s *Set) InstallLRU(nl Line) []Line {
	s.checkInstall(nl)
	var best candidate
	haveBest := false
	bestAge := ^uint64(0)
	for way := range s.occ {
		for start := 0; start+nl.Slots <= mem.WordsPerLine; start += nl.Slots {
			free, eligible := s.regionState(way, start, nl.Slots)
			if free {
				// First free region in enumeration order, as before.
				return s.place(nl, candidate{way, start})
			}
			if !eligible {
				continue
			}
			// Age of a region = the max LastUse of the lines it would evict.
			var youngest uint64
			for i := range s.Lines {
				l := &s.Lines[i]
				if l.Way == way && l.Start >= start && l.Start < start+nl.Slots {
					if l.LastUse > youngest {
						youngest = l.LastUse
					}
				}
			}
			if youngest < bestAge {
				best, bestAge, haveBest = candidate{way, start}, youngest, true
			}
		}
	}
	if !haveBest {
		panic("wordstore: no replacement candidate")
	}
	return s.place(nl, best)
}

func (s *Set) checkInstall(nl Line) {
	if nl.Slots <= 0 || nl.Slots > mem.WordsPerLine || nl.Slots&(nl.Slots-1) != 0 {
		panic(fmt.Sprintf("wordstore: installing line with %d slots", nl.Slots))
	}
	if s.Find(nl.Tag) >= 0 {
		panic("wordstore: set already holds this line")
	}
	s.ObsInstallSlots.Observe(uint64(nl.Slots))
}

// place evicts every line starting inside the chosen region (alignment
// guarantees such lines are fully contained or fully cover it; the
// paper's head-bit rule evicts them whole either way) and installs nl.
// The returned slice aliases the set's reusable eviction buffer.
func (s *Set) place(nl Line, c candidate) []Line {
	evicted := s.evictBuf[:0]
	// The head bitmap counts the lines starting inside the region, so a
	// free-region placement skips the eviction walk entirely and an
	// occupied one stops as soon as every victim is found.
	if want := (s.heads[c.way] & RegionMask(c.start, nl.Slots)).Count(); want > 0 {
		for i := 0; i < len(s.Lines) && want > 0; {
			l := s.Lines[i]
			if l.Way == c.way && l.Start >= c.start && l.Start < c.start+nl.Slots {
				evicted = append(evicted, s.RemoveAt(i))
				want--
				continue
			}
			i++
		}
	}
	s.evictBuf = evicted
	if s.occ[c.way]&RegionMask(c.start, nl.Slots) != 0 {
		panic("wordstore: region still occupied after eviction")
	}
	nl.Way, nl.Start = c.way, c.start
	s.occ[c.way] |= RegionMask(c.start, nl.Slots)
	s.heads[c.way] |= RegionMask(c.start, 1)
	s.Lines = append(s.Lines, nl)
	return evicted
}

// isHead reports whether (way, start) is the first slot of a resident
// line: one bit test against the maintained head bitmap.
func (s *Set) isHead(way, start int) bool {
	return s.heads[way]&RegionMask(start, 1) != 0
}

// HasFreeRegion reports whether some aligned region of the given
// power-of-two size is entirely free.
func (s *Set) HasFreeRegion(slots int) bool {
	for way := range s.occ {
		for start := 0; start+slots <= mem.WordsPerLine; start += slots {
			if s.occ[way]&RegionMask(start, slots) == 0 {
				return true
			}
		}
	}
	return false
}

// OccupiedSlots returns the total number of word entries in use.
func (s *Set) OccupiedSlots() int {
	n := 0
	for _, l := range s.Lines {
		n += l.Slots
	}
	return n
}

// CheckInvariants verifies occupancy bookkeeping; tests call it after
// stress runs.
func (s *Set) CheckInvariants() error {
	occ := make([]mem.Footprint, len(s.occ))
	heads := make([]mem.Footprint, len(s.occ))
	for _, l := range s.Lines {
		if l.Slots&(l.Slots-1) != 0 || l.Start%l.Slots != 0 {
			return fmt.Errorf("line %x misaligned: start %d slots %d", l.Tag, l.Start, l.Slots)
		}
		if l.Words == 0 {
			return fmt.Errorf("line %x stores no words", l.Tag)
		}
		if l.Dirty&^l.Words != 0 {
			return fmt.Errorf("line %x has dirty bits outside stored words", l.Tag)
		}
		mask := RegionMask(l.Start, l.Slots)
		if occ[l.Way]&mask != 0 {
			return fmt.Errorf("line %x overlaps another line", l.Tag)
		}
		occ[l.Way] |= mask
		heads[l.Way] |= RegionMask(l.Start, 1)
	}
	for w := range occ {
		if occ[w] != s.occ[w] {
			return fmt.Errorf("way %d occupancy %v, recorded %v", w, occ[w], s.occ[w])
		}
		if heads[w] != s.heads[w] {
			return fmt.Errorf("way %d heads %v, recorded %v", w, heads[w], s.heads[w])
		}
	}
	return nil
}
