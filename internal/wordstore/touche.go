// Touché-style compressed superblock tags for the word-organized set
// (arXiv 1909.00553). Instead of one full tag per word entry — the
// dominant storage cost the distill paper concedes in Section 5.1 —
// resident lines of the same superblock (a naturally aligned group of
// consecutive line addresses) share one compressed tag entry: a hashed
// signature plus a short checksum. Lookups compare signatures; a
// signature match with a differing full tag is disambiguated by the
// checksum, and when even the checksum collides the model's final
// data-integrity verification (the full tag residue folded into the
// entry's ECC bits, as in the Touché design) still catches it. A
// compressed lookup therefore NEVER returns a false hit: the worst a
// collision can cause is a safe miss, which the counters expose.
//
// The flip side of provisioning compressed entries is that a set can
// only name a bounded number of distinct superblocks at once.
// PrepareInstall enforces both invariants ahead of every install:
// no two resident lines may share a (member, signature) pair, and the
// set's distinct-superblock count stays within the provisioned entry
// budget. The tag-area arithmetic for this layout lives in
// internal/costmodel (ToucheTagArea), giving the LDIS per-word tag
// overhead a measured counter-scenario.
package wordstore

import (
	"fmt"

	"ldis/internal/mem"
)

// ToucheConfig parameterizes the compressed superblock tag store.
// The zero value of any field selects its default.
type ToucheConfig struct {
	// SuperblockLines is the number of consecutive lines sharing one
	// compressed tag entry (power of two; default 4).
	SuperblockLines int
	// TagBits is the width of the hashed superblock signature
	// (default 16).
	TagBits int
	// ChecksumBits is the width of the disambiguation checksum
	// (default 8).
	ChecksumBits int
	// SuperblockEntries is the number of compressed tag entries
	// provisioned per set — the maximum distinct superblocks resident
	// at once. Default: half the set's word entries, the provisioning
	// point the tag-area model in internal/costmodel prices.
	SuperblockEntries int
	// Seed perturbs the signature and checksum hashes.
	Seed uint64
}

// WithDefaults returns the config with zero fields replaced by their
// defaults (SuperblockEntries stays 0: it is resolved against the set
// geometry in NewToucheTags).
func (c ToucheConfig) WithDefaults() ToucheConfig {
	if c.SuperblockLines == 0 {
		c.SuperblockLines = 4
	}
	if c.TagBits == 0 {
		c.TagBits = 16
	}
	if c.ChecksumBits == 0 {
		c.ChecksumBits = 8
	}
	return c
}

// Validate rejects geometrically impossible configs.
func (c ToucheConfig) Validate() error {
	c = c.WithDefaults()
	if c.SuperblockLines < 2 || c.SuperblockLines&(c.SuperblockLines-1) != 0 {
		return fmt.Errorf("wordstore: SuperblockLines %d must be a power of two >= 2", c.SuperblockLines)
	}
	if c.TagBits < 1 || c.TagBits > 32 {
		return fmt.Errorf("wordstore: TagBits %d out of range [1,32]", c.TagBits)
	}
	if c.ChecksumBits < 1 || c.ChecksumBits > 32 {
		return fmt.Errorf("wordstore: ChecksumBits %d out of range [1,32]", c.ChecksumBits)
	}
	if c.SuperblockEntries < 0 {
		return fmt.Errorf("wordstore: SuperblockEntries %d negative", c.SuperblockEntries)
	}
	return nil
}

// ToucheStats counts compressed-lookup and install-filter events.
// All fields are owned by the simulating goroutine (one ToucheTags per
// cache, one cache per shard) and merged after the run.
type ToucheStats struct {
	Lookups             uint64 // demand lookups through the compressed path
	Hits                uint64 // signature match verified by the full tag
	AliasSafeMisses     uint64 // signature matched a different superblock: safe miss
	ChecksumCollisions  uint64 // alias where the checksum ALSO matched (caught by final verification)
	AliasEvictions      uint64 // resident lines evicted to keep (member, signature) unique
	SuperblockEvictions uint64 // resident lines evicted for superblock-entry pressure
}

// Merge accumulates b into s.
func (s *ToucheStats) Merge(b ToucheStats) {
	s.Lookups += b.Lookups
	s.Hits += b.Hits
	s.AliasSafeMisses += b.AliasSafeMisses
	s.ChecksumCollisions += b.ChecksumCollisions
	s.AliasEvictions += b.AliasEvictions
	s.SuperblockEvictions += b.SuperblockEvictions
}

// ToucheTags is the compressed-tag lookup/install filter shared by all
// sets of one word-organized cache. It holds no per-set state — the
// signature and checksum are pure functions of a line's tag — so it
// composes with set-interleaved sharding untouched.
type ToucheTags struct {
	cfg       ToucheConfig
	sbEntries int
	sbShift   uint
	sbMask    uint64
	sigMask   uint64
	ckMask    uint64

	// Stats points at the counter block the filter increments. It
	// defaults to a private block; the distill cache re-points it into
	// its own Stats so shard merging folds Touché counters for free.
	Stats *ToucheStats

	evictBuf  []Line
	sbScratch []sbCount
}

type sbCount struct {
	sb    uint64
	words int
}

// NewToucheTags builds the filter for sets with the given number of
// data ways. cfg.SuperblockEntries == 0 resolves to half the word
// entries per set (ways * WordsPerLine / 2), minimum 1.
func NewToucheTags(cfg ToucheConfig, ways int) *ToucheTags {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	entries := cfg.SuperblockEntries
	if entries == 0 {
		entries = ways * mem.WordsPerLine / 2
	}
	if entries < 1 {
		entries = 1
	}
	shift := uint(0)
	for 1<<shift != cfg.SuperblockLines {
		shift++
	}
	cap := ways * mem.WordsPerLine
	return &ToucheTags{
		cfg:       cfg,
		sbEntries: entries,
		sbShift:   shift,
		sbMask:    uint64(cfg.SuperblockLines - 1),
		sigMask:   1<<uint(cfg.TagBits) - 1,
		ckMask:    1<<uint(cfg.ChecksumBits) - 1,
		Stats:     new(ToucheStats),
		evictBuf:  make([]Line, 0, cap),
		sbScratch: make([]sbCount, 0, cap),
	}
}

// Config returns the resolved configuration.
func (t *ToucheTags) Config() ToucheConfig {
	c := t.cfg
	c.SuperblockEntries = t.sbEntries
	return c
}

// SuperblockEntries returns the per-set compressed tag entry budget.
func (t *ToucheTags) SuperblockEntries() int { return t.sbEntries }

// toucheMix is splitmix64's finalizer: the signature/checksum hash.
func toucheMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (t *ToucheTags) sig(sb uint64) uint64 {
	return toucheMix(sb^t.cfg.Seed) & t.sigMask
}

func (t *ToucheTags) checksum(sb uint64) uint64 {
	return toucheMix(sb^t.cfg.Seed^0x9e3779b97f4a7c15) & t.ckMask
}

// Find is the compressed-tag demand lookup: the hardware compares the
// requested line's member index and superblock signature against the
// resident entries, verifies a signature match with the checksum, and
// falls back to the final data-integrity verification when even the
// checksum collides. PrepareInstall keeps (member, signature) pairs
// unique within a set, so at most one resident line can match and the
// first signature match decides the lookup. A collision of any depth
// produces a safe miss, never a false hit.
//
//ldis:noalloc
func (t *ToucheTags) Find(s *Set, tag uint64) int {
	t.Stats.Lookups++
	member := tag & t.sbMask
	sb := tag >> t.sbShift
	sigWant := t.sig(sb)
	for i := range s.Lines {
		lt := s.Lines[i].Tag
		if lt&t.sbMask != member {
			continue
		}
		lsb := lt >> t.sbShift
		if t.sig(lsb) != sigWant {
			continue
		}
		if lsb == sb {
			t.Stats.Hits++
			return i
		}
		// Signature alias: a different superblock hashed to the same
		// signature. The checksum disambiguates; if it collides too,
		// the final verification still catches the mismatch. Either
		// way the lookup misses safely.
		if t.checksum(lsb) == t.checksum(sb) {
			t.Stats.ChecksumCollisions++
		}
		t.Stats.AliasSafeMisses++
		return -1
	}
	return -1
}

// PrepareInstall evicts whatever the compressed tag store cannot
// represent alongside an incoming line with the given tag, and returns
// the evicted lines (valid until the next PrepareInstall) so the
// caller can account writebacks. Two invariants are restored ahead of
// the install:
//
//  1. no resident line may share the incoming line's (member,
//     signature) pair with a different superblock — such an alias is
//     evicted (AliasEvictions), keeping Find single-match;
//  2. the set's distinct resident superblocks must leave room for the
//     incoming line's superblock within the provisioned entry budget —
//     under pressure the superblock storing the fewest words (ties to
//     the smallest superblock id) is evicted whole
//     (SuperblockEvictions).
//
//ldis:noalloc
func (t *ToucheTags) PrepareInstall(s *Set, tag uint64) []Line {
	evicted := t.evictBuf[:0]
	member := tag & t.sbMask
	sb := tag >> t.sbShift
	sigWant := t.sig(sb)

	// Invariant 1: evict (member, signature) aliases.
	for i := 0; i < len(s.Lines); {
		lt := s.Lines[i].Tag
		lsb := lt >> t.sbShift
		if lt&t.sbMask == member && lsb != sb && t.sig(lsb) == sigWant {
			evicted = append(evicted, s.RemoveAt(i))
			t.Stats.AliasEvictions++
			continue
		}
		i++
	}

	// Invariant 2: superblock-entry pressure. Count the distinct
	// resident superblocks and the words each stores.
	counts := t.sbScratch[:0]
	sbResident := false
	for i := range s.Lines {
		lsb := s.Lines[i].Tag >> t.sbShift
		if lsb == sb {
			sbResident = true
		}
		found := false
		for j := range counts {
			if counts[j].sb == lsb {
				counts[j].words += s.Lines[i].Words.Count()
				found = true
				break
			}
		}
		if !found {
			counts = append(counts, sbCount{sb: lsb, words: s.Lines[i].Words.Count()})
		}
	}
	t.sbScratch = counts
	if !sbResident && len(counts) >= t.sbEntries {
		// Evict the cheapest superblock whole: fewest stored words,
		// ties to the smallest superblock id — deterministic and a
		// pure function of the set's contents.
		victim := counts[0]
		for _, c := range counts[1:] {
			if c.words < victim.words || (c.words == victim.words && c.sb < victim.sb) {
				victim = c
			}
		}
		for i := 0; i < len(s.Lines); {
			if s.Lines[i].Tag>>t.sbShift == victim.sb {
				evicted = append(evicted, s.RemoveAt(i))
				t.Stats.SuperblockEvictions++
				continue
			}
			i++
		}
	}
	t.evictBuf = evicted
	return evicted
}

// CheckInvariants verifies the compressed-tag representability
// invariants PrepareInstall maintains; tests call it after stress
// runs.
func (t *ToucheTags) CheckInvariants(s *Set) error {
	for i := range s.Lines {
		ti := s.Lines[i].Tag
		for j := i + 1; j < len(s.Lines); j++ {
			tj := s.Lines[j].Tag
			if ti&t.sbMask != tj&t.sbMask {
				continue
			}
			si, sj := ti>>t.sbShift, tj>>t.sbShift
			if si != sj && t.sig(si) == t.sig(sj) {
				return fmt.Errorf("wordstore: lines %x and %x share (member, signature)", ti, tj)
			}
		}
	}
	distinct := t.sbScratch[:0]
	for i := range s.Lines {
		lsb := s.Lines[i].Tag >> t.sbShift
		found := false
		for _, d := range distinct {
			if d.sb == lsb {
				found = true
				break
			}
		}
		if !found {
			distinct = append(distinct, sbCount{sb: lsb})
		}
	}
	t.sbScratch = distinct
	if len(distinct) > t.sbEntries {
		return fmt.Errorf("wordstore: %d distinct superblocks resident, %d entries provisioned", len(distinct), t.sbEntries)
	}
	return nil
}
