// Package values models the contents of memory for the compression
// experiments (Section 8 of the paper). The paper compresses real cache
// line contents with a 32-bit significance encoding (Table 4); we have
// no SPEC memory images, so this package generates deterministic 32-bit
// values whose class mixture (zero / one / half-word / incompressible)
// is a per-benchmark calibration knob. Compression results depend only
// on that mixture, so the substitution preserves the experiment.
package values

import "ldis/internal/mem"

// Class is the compressibility class of a 32-bit datum, mirroring the
// paper's Table 4 encoding.
type Class uint8

const (
	// Zero: the datum is 0 (2-bit code, no payload).
	Zero Class = iota
	// One: the datum is 1 (2-bit code, no payload).
	One
	// Half: bits[31:16] are zero; only bits[15:0] are stored.
	Half
	// Full: incompressible; all 32 bits are stored.
	Full
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Zero:
		return "zero"
	case One:
		return "one"
	case Half:
		return "half"
	case Full:
		return "full"
	default:
		return "invalid"
	}
}

// Mix describes the fraction of 32-bit data in each class. Fractions
// need not sum exactly to one; they are normalized on use.
type Mix struct {
	Zero, One, Half, Full float64
}

// Incompressible is a mix where every datum needs all 32 bits.
var Incompressible = Mix{Full: 1}

// HighlyCompressible is a mix dominated by zeros, typical of sparse
// numeric data.
var HighlyCompressible = Mix{Zero: 0.7, One: 0.05, Half: 0.15, Full: 0.1}

// PointerLike models pointer-heavy integer data: many half-range values
// (heap offsets) and some nil pointers.
var PointerLike = Mix{Zero: 0.3, One: 0.05, Half: 0.35, Full: 0.3}

// FloatLike models double-precision numeric data, which rarely
// compresses under significance encoding.
var FloatLike = Mix{Zero: 0.12, Half: 0.05, Full: 0.83}

// Model deterministically assigns a Class and a concrete 32-bit value to
// every 32-bit-aligned address. The same (seed, mix, address) always
// produces the same datum, so cached copies and memory stay coherent
// without storing anything.
type Model struct {
	seed       uint64
	thresholds [numClasses]float64 // cumulative, normalized
}

// NewModel builds a model from a seed and a class mixture.
func NewModel(seed uint64, mix Mix) *Model {
	total := mix.Zero + mix.One + mix.Half + mix.Full
	if total <= 0 {
		mix = Incompressible
		total = 1
	}
	m := &Model{seed: seed}
	cum := 0.0
	for i, f := range []float64{mix.Zero, mix.One, mix.Half, mix.Full} {
		cum += f / total
		m.thresholds[i] = cum
	}
	m.thresholds[numClasses-1] = 1.0
	return m
}

// splitmix64 is a strong 64-bit mixer; deterministic hashing keeps the
// whole memory image implicit.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ClassAt returns the class of the 32-bit datum at byte address a
// (which is truncated to 4-byte alignment).
func (m *Model) ClassAt(a mem.Addr) Class {
	h := splitmix64(uint64(a)>>2 ^ m.seed)
	u := float64(h>>11) / (1 << 53) // uniform in [0,1)
	for c := Zero; c < numClasses; c++ {
		if u < m.thresholds[c] {
			return c
		}
	}
	return Full
}

// Word32 returns the concrete 32-bit value at byte address a, consistent
// with ClassAt: Zero->0, One->1, Half-> a value with zero upper half,
// Full-> a value with a nonzero upper half.
func (m *Model) Word32(a mem.Addr) uint32 {
	c := m.ClassAt(a)
	h := splitmix64(uint64(a)>>2 ^ m.seed ^ 0xabcdef)
	switch c {
	case Zero:
		return 0
	case One:
		return 1
	case Half:
		v := uint32(h) & 0xffff
		if v <= 1 {
			v = 2 // keep the class unambiguous
		}
		return v
	default:
		v := uint32(h)
		if v&0xffff0000 == 0 {
			v |= 0x00010000 // force a nonzero upper half
		}
		return v
	}
}

// Line returns the sixteen 32-bit values of the 64B line containing a.
func (m *Model) Line(l mem.LineAddr) [16]uint32 {
	var out [16]uint32
	base := l.Base()
	for i := 0; i < 16; i++ {
		out[i] = m.Word32(base + mem.Addr(i*4))
	}
	return out
}

// Word64 returns the 8-byte word w (0..7) of line l as two 32-bit halves.
func (m *Model) Word64(l mem.LineAddr, w int) (lo, hi uint32) {
	a := l.WordAddr(w)
	return m.Word32(a), m.Word32(a + 4)
}
