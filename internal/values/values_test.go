package values

import (
	"math"
	"testing"
	"testing/quick"

	"ldis/internal/mem"
)

func TestClassString(t *testing.T) {
	want := map[Class]string{Zero: "zero", One: "one", Half: "half", Full: "full", Class(9): "invalid"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestModelDeterminism(t *testing.T) {
	a := NewModel(42, PointerLike)
	b := NewModel(42, PointerLike)
	for i := 0; i < 1000; i++ {
		addr := mem.Addr(i * 4)
		if a.ClassAt(addr) != b.ClassAt(addr) || a.Word32(addr) != b.Word32(addr) {
			t.Fatalf("model not deterministic at %#x", uint64(addr))
		}
	}
}

func TestModelSeedsDiffer(t *testing.T) {
	a := NewModel(1, Mix{Zero: 0.5, Full: 0.5})
	b := NewModel(2, Mix{Zero: 0.5, Full: 0.5})
	same := 0
	for i := 0; i < 1000; i++ {
		if a.ClassAt(mem.Addr(i*4)) == b.ClassAt(mem.Addr(i*4)) {
			same++
		}
	}
	if same > 700 {
		t.Errorf("different seeds agree on %d/1000 classes; want ~500", same)
	}
}

func TestValueMatchesClass(t *testing.T) {
	m := NewModel(7, Mix{Zero: 0.25, One: 0.25, Half: 0.25, Full: 0.25})
	for i := 0; i < 4000; i++ {
		addr := mem.Addr(i * 4)
		v := m.Word32(addr)
		switch m.ClassAt(addr) {
		case Zero:
			if v != 0 {
				t.Fatalf("Zero class but value %#x", v)
			}
		case One:
			if v != 1 {
				t.Fatalf("One class but value %#x", v)
			}
		case Half:
			if v>>16 != 0 || v <= 1 {
				t.Fatalf("Half class but value %#x", v)
			}
		case Full:
			if v>>16 == 0 {
				t.Fatalf("Full class but value %#x", v)
			}
		}
	}
}

func TestMixFrequencies(t *testing.T) {
	mix := Mix{Zero: 0.5, One: 0.1, Half: 0.2, Full: 0.2}
	m := NewModel(99, mix)
	const n = 50000
	var counts [4]int
	for i := 0; i < n; i++ {
		counts[m.ClassAt(mem.Addr(i*4))]++
	}
	want := []float64{0.5, 0.1, 0.2, 0.2}
	for c, w := range want {
		got := float64(counts[c]) / n
		if math.Abs(got-w) > 0.02 {
			t.Errorf("class %v frequency %.3f, want ~%.2f", Class(c), got, w)
		}
	}
}

func TestDegenerateMixFallsBack(t *testing.T) {
	m := NewModel(1, Mix{}) // zero mix -> incompressible
	for i := 0; i < 100; i++ {
		if c := m.ClassAt(mem.Addr(i * 4)); c != Full {
			t.Fatalf("degenerate mix gave class %v", c)
		}
	}
}

func TestIncompressibleMix(t *testing.T) {
	m := NewModel(3, Incompressible)
	for i := 0; i < 200; i++ {
		if m.ClassAt(mem.Addr(i*4)) != Full {
			t.Fatal("Incompressible mix must always be Full")
		}
	}
}

func TestLineAndWord64(t *testing.T) {
	m := NewModel(5, HighlyCompressible)
	l := mem.LineAddr(100)
	line := m.Line(l)
	for w := 0; w < mem.WordsPerLine; w++ {
		lo, hi := m.Word64(l, w)
		if lo != line[2*w] || hi != line[2*w+1] {
			t.Fatalf("Word64(%d) = %#x,%#x; Line has %#x,%#x", w, lo, hi, line[2*w], line[2*w+1])
		}
	}
}

func TestAddressTruncation(t *testing.T) {
	m := NewModel(11, PointerLike)
	// All byte addresses within one 4-byte datum must agree.
	for base := 0; base < 64; base += 4 {
		c := m.ClassAt(mem.Addr(base))
		for off := 1; off < 4; off++ {
			if m.ClassAt(mem.Addr(base+off)) != c {
				t.Fatalf("class differs within 32-bit datum at %d+%d", base, off)
			}
		}
	}
}

// Property: Word32 is always consistent with ClassAt for arbitrary
// addresses and seeds.
func TestValueClassProperty(t *testing.T) {
	f := func(seed uint64, addr uint64) bool {
		m := NewModel(seed, PointerLike)
		a := mem.Addr(addr)
		v := m.Word32(a)
		switch m.ClassAt(a) {
		case Zero:
			return v == 0
		case One:
			return v == 1
		case Half:
			return v>>16 == 0 && v > 1
		case Full:
			return v>>16 != 0
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
