package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 50, func(i int) (int, error) {
			if i == 7 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

// TestMapSmallestIndexError: when several tasks fail, the reported
// error is the one with the smallest index regardless of scheduling.
func TestMapSmallestIndexError(t *testing.T) {
	_, err := Map(8, 40, func(i int) (int, error) {
		if i%3 == 1 {
			return 0, fmt.Errorf("task %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "task 1" {
		t.Fatalf("err = %v, want task 1", err)
	}
}

// TestMapEarlyCancel: after the first failure the runner must stop
// handing out tasks instead of draining the whole queue.
func TestMapEarlyCancel(t *testing.T) {
	var executed atomic.Int64
	_, err := Map(2, 10_000, func(i int) (int, error) {
		executed.Add(1)
		if i == 0 {
			return 0, errors.New("fail fast")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// A handful of in-flight tasks may still run; the queue must not.
	if n := executed.Load(); n > 100 {
		t.Errorf("%d tasks executed after early failure", n)
	}
}

func TestGrid(t *testing.T) {
	got, err := Grid(3, 4, 5, func(r, c int) (int, error) { return r*10 + c, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("rows = %d", len(got))
	}
	for r := range got {
		if len(got[r]) != 5 {
			t.Fatalf("row %d has %d cols", r, len(got[r]))
		}
		for c, v := range got[r] {
			if v != r*10+c {
				t.Errorf("got[%d][%d] = %d", r, c, v)
			}
		}
	}
}

func TestGridEmpty(t *testing.T) {
	if got, err := Grid(2, 0, 3, func(int, int) (int, error) { return 0, nil }); err != nil || got != nil {
		t.Fatalf("empty grid: %v, %v", got, err)
	}
}
