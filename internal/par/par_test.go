package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 50, func(i int) (int, error) {
			if i == 7 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

// TestMapSmallestIndexError: when several tasks fail, the reported
// error is the one with the smallest index regardless of scheduling.
func TestMapSmallestIndexError(t *testing.T) {
	_, err := Map(8, 40, func(i int) (int, error) {
		if i%3 == 1 {
			return 0, fmt.Errorf("task %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "task 1" {
		t.Fatalf("err = %v, want task 1", err)
	}
}

// TestMapEarlyCancel: after the first failure the runner must stop
// handing out tasks instead of draining the whole queue.
func TestMapEarlyCancel(t *testing.T) {
	var executed atomic.Int64
	_, err := Map(2, 10_000, func(i int) (int, error) {
		executed.Add(1)
		if i == 0 {
			return 0, errors.New("fail fast")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// A handful of in-flight tasks may still run; the queue must not.
	if n := executed.Load(); n > 100 {
		t.Errorf("%d tasks executed after early failure", n)
	}
}

func TestGrid(t *testing.T) {
	got, err := Grid(3, 4, 5, func(r, c int) (int, error) { return r*10 + c, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("rows = %d", len(got))
	}
	for r := range got {
		if len(got[r]) != 5 {
			t.Fatalf("row %d has %d cols", r, len(got[r]))
		}
		for c, v := range got[r] {
			if v != r*10+c {
				t.Errorf("got[%d][%d] = %d", r, c, v)
			}
		}
	}
}

func TestGridEmpty(t *testing.T) {
	if got, err := Grid(2, 0, 3, func(int, int) (int, error) { return 0, nil }); err != nil || got != nil {
		t.Fatalf("empty grid: %v, %v", got, err)
	}
}

// TestMapPanicIsolated: a panicking task must not crash the process;
// it surfaces as a *TaskError carrying the panic value and stack.
func TestMapPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 20, func(i int) (int, error) {
			if i == 3 {
				panic("cell exploded")
			}
			return i, nil
		})
		var te *TaskError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: err = %v, want *TaskError", workers, err)
		}
		if te.Index != 3 || te.Panic != "cell exploded" || te.Attempts != 1 {
			t.Errorf("workers=%d: TaskError = %+v", workers, te)
		}
		if len(te.Stack) == 0 {
			t.Errorf("workers=%d: panic stack not captured", workers)
		}
	}
}

// TestMapPolicyRunToCompletion: with FailFast off every task runs and
// every result-or-error comes back in index order.
func TestMapPolicyRunToCompletion(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, errs := MapPolicy(Policy{}, workers, 30, func(i int) (int, error) {
			switch {
			case i%5 == 2:
				return 0, fmt.Errorf("err %d", i)
			case i%7 == 3:
				panic(fmt.Sprintf("panic %d", i))
			}
			return i * 2, nil
		})
		if errs == nil {
			t.Fatalf("workers=%d: expected errors", workers)
		}
		for i := 0; i < 30; i++ {
			switch {
			case i%5 == 2:
				var te *TaskError
				if !errors.As(errs[i], &te) || te.Panic != nil || te.Err.Error() != fmt.Sprintf("err %d", i) {
					t.Errorf("workers=%d: errs[%d] = %v", workers, i, errs[i])
				}
			case i%7 == 3:
				var te *TaskError
				if !errors.As(errs[i], &te) || te.Panic == nil {
					t.Errorf("workers=%d: errs[%d] = %v, want panic", workers, i, errs[i])
				}
			default:
				if errs[i] != nil || out[i] != i*2 {
					t.Errorf("workers=%d: task %d: out=%d errs=%v", workers, i, out[i], errs[i])
				}
			}
		}
	}
}

// TestMapPolicyNoFailures: errs is nil when everything succeeds.
func TestMapPolicyNoFailures(t *testing.T) {
	out, errs := MapPolicy(Policy{}, 4, 10, func(i int) (int, error) { return i, nil })
	if errs != nil {
		t.Fatalf("errs = %v", errs)
	}
	if len(out) != 10 {
		t.Fatalf("out = %v", out)
	}
}

// TestMapPolicyRetries: a fault that clears after the first attempt is
// absorbed by Retries and never surfaces.
func TestMapPolicyRetries(t *testing.T) {
	var firstTries [12]atomic.Int32
	out, errs := MapPolicy(Policy{Retries: 1}, 3, 12, func(i int) (int, error) {
		if i%4 == 1 && firstTries[i].Add(1) == 1 {
			return 0, errors.New("transient")
		}
		return i, nil
	})
	if errs != nil {
		t.Fatalf("transient errors not retried away: %v", errs)
	}
	for i, v := range out {
		if v != i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

// TestMapPolicyRetriesExhausted reports the attempt count.
func TestMapPolicyRetriesExhausted(t *testing.T) {
	_, errs := MapPolicy(Policy{Retries: 2}, 1, 3, func(i int) (int, error) {
		if i == 1 {
			panic("always")
		}
		return i, nil
	})
	var te *TaskError
	if !errors.As(errs[1], &te) || te.Attempts != 3 {
		t.Fatalf("errs[1] = %v, want 3 attempts", errs[1])
	}
}

// TestMapPolicyBudget: after Budget failures no further tasks start;
// the untouched tail is marked skipped (Attempts == 0).
func TestMapPolicyBudget(t *testing.T) {
	var executed atomic.Int64
	_, errs := MapPolicy(Policy{Budget: 2}, 1, 1000, func(i int) (int, error) {
		executed.Add(1)
		if i < 2 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if n := executed.Load(); n != 2 { // tasks 0 and 1 fail, exhausting the budget
		t.Errorf("executed %d tasks, want 2", n)
	}
	var te *TaskError
	if !errors.As(errs[999], &te) || te.Attempts != 0 {
		t.Errorf("tail task not marked skipped: %v", errs[999])
	}
}

// TestGridPolicyShape: results and errors come back [row][col] with
// failures in deterministic cells.
func TestGridPolicyShape(t *testing.T) {
	out, errs := GridPolicy(Policy{}, 4, 3, 4, func(r, c int) (int, error) {
		if r == 1 && c == 2 {
			return 0, errors.New("cell boom")
		}
		return r*100 + c, nil
	})
	if len(out) != 3 || len(errs) != 3 {
		t.Fatalf("shape: %d rows, %d err rows", len(out), len(errs))
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if r == 1 && c == 2 {
				if errs[r][c] == nil {
					t.Error("failed cell has no error")
				}
				continue
			}
			if errs[r][c] != nil || out[r][c] != r*100+c {
				t.Errorf("cell [%d][%d]: out=%d errs=%v", r, c, out[r][c], errs[r][c])
			}
		}
	}
}

// TestTaskErrorUnwrap: errors.Is reaches the task's own error through
// the TaskError wrapper.
func TestTaskErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, errs := MapPolicy(Policy{}, 1, 1, func(int) (int, error) { return 0, sentinel })
	if !errors.Is(errs[0], sentinel) {
		t.Errorf("errs[0] = %v does not unwrap to sentinel", errs[0])
	}
}
