// Package par is the simulator's deterministic fan-out substrate: a
// bounded-worker task runner over index spaces. The experiment engine
// schedules one task per (benchmark × configuration) simulation, so a
// figure over 16 benchmarks and 6 configurations exposes 96 units of
// parallel work instead of 16. Results are returned in task-index
// order and every task is a pure function of its index, so the output
// is byte-identical at any worker count.
//
// The runner is also the engine's panic boundary: a panicking task
// never takes down the process or its sibling cells. The panic is
// recovered, captured with its stack as a *TaskError, and reported
// through the same per-index error channel as an ordinary task error.
// A Policy chooses between fail-fast (the default: stop handing out
// work at the first failure) and run-to-completion (every task runs;
// every result-or-error is returned in deterministic index order),
// with optional per-task retries for transient faults.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"ldis/internal/obs"
)

// TaskError records the failure of one task after all retry attempts
// were exhausted. Exactly one of Panic and Err is non-nil: Panic (with
// Stack) when the final attempt panicked, Err when it returned an
// error.
type TaskError struct {
	// Index is the task's position in the index space (row*cols+col
	// for grids).
	Index int
	// Attempts is how many times the task was run (1 + retries used).
	Attempts int
	// Panic is the recovered panic value of the final attempt, nil if
	// the task failed with an ordinary error.
	Panic any
	// Stack is the goroutine stack captured at the final panic.
	Stack []byte
	// Err is the error returned by the final attempt, nil on panic.
	Err error
}

// Error implements error. The stack is deliberately excluded so the
// message is deterministic and safe to render into output tables.
func (e *TaskError) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("task %d panicked after %d attempt(s): %v", e.Index, e.Attempts, e.Panic)
	}
	return fmt.Sprintf("task %d failed after %d attempt(s): %v", e.Index, e.Attempts, e.Err)
}

// Unwrap exposes the task's underlying error to errors.Is/As chains.
func (e *TaskError) Unwrap() error { return e.Err }

// Policy controls how Map/Grid respond to task failures.
type Policy struct {
	// Retries is the number of extra attempts a failing task gets
	// before its failure is recorded. Tasks are pure functions of
	// their index, so retries only help against injected or external
	// transient faults.
	Retries int
	// FailFast stops handing out new tasks after the first
	// unrecovered failure. In-flight tasks still finish.
	FailFast bool
	// Budget, when positive and FailFast is false, stops handing out
	// new tasks once this many tasks have failed; zero means
	// run-to-completion regardless of the failure count.
	Budget int
	// Obs, when non-nil, receives scheduler-level counts (tasks run,
	// retries, recovered panics, skipped tasks). The hooks are nil-safe
	// no-ops, so the scheduler never branches on observability.
	Obs *obs.SchedMetrics
}

// call runs one attempt of fn(i) with a panic boundary.
func call[T any](fn func(i int) (T, error), i int) (v T, err error, pv any, stack []byte) {
	defer func() {
		if r := recover(); r != nil {
			pv = r
			stack = debug.Stack()
		}
	}()
	v, err = fn(i)
	return
}

// attempt runs fn(i) under the policy's retry budget, storing the
// result into *out on success and returning a *TaskError on final
// failure.
func attempt[T any](p Policy, i int, fn func(i int) (T, error), out *T) *TaskError {
	for a := 0; ; a++ {
		v, err, pv, stack := call(fn, i)
		if pv != nil {
			p.Obs.Panic()
		}
		if pv == nil && err == nil {
			*out = v
			return nil
		}
		if a >= p.Retries {
			return &TaskError{Index: i, Attempts: a + 1, Panic: pv, Stack: stack, Err: err}
		}
		p.Obs.Retry()
	}
}

// MapPolicy runs fn(0), ..., fn(n-1) on up to workers goroutines
// (GOMAXPROCS when workers <= 0) under the given failure policy. It
// returns results and errors in task-index order: errs is nil when
// every task succeeded, otherwise errs[i] is nil for successful tasks
// and a *TaskError for failed ones. Tasks skipped by fail-fast or an
// exhausted budget report a *TaskError with Attempts == 0, so the
// caller can always distinguish "ran and failed" from "never ran".
func MapPolicy[T any](p Policy, workers, n int, fn func(i int) (T, error)) ([]T, []error) {
	if n <= 0 {
		return nil, nil
	}
	if p.Retries < 0 {
		p.Retries = 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	var failures atomic.Int64
	var minFail atomic.Int64
	minFail.Store(int64(n)) // n = no failure recorded yet
	stopped := func() bool {
		f := failures.Load()
		if f == 0 {
			return false
		}
		if p.FailFast {
			return true
		}
		return p.Budget > 0 && f >= int64(p.Budget)
	}
	runTask := func(i int) {
		if te := attempt(p, i, fn, &out[i]); te != nil {
			errs[i] = te
			failures.Add(1)
			for {
				m := minFail.Load()
				if int64(i) >= m || minFail.CompareAndSwap(m, int64(i)) {
					break
				}
			}
		}
		p.Obs.TaskDone()
	}
	// Under fail-fast the reported error must be the smallest-index
	// failure regardless of scheduling. A task already handed out when
	// the stop fired still runs if its index is below every failure
	// seen so far — otherwise a higher-indexed task racing to fail
	// first would get a lower-indexed, also-failing task skipped and
	// make the reported error depend on worker timing.
	skip := func(i int) bool {
		if !stopped() {
			return false
		}
		return !p.FailFast || int64(i) >= minFail.Load()
	}

	started := n
	if workers == 1 {
		// Run inline: same semantics, no goroutine overhead.
		for i := 0; i < n; i++ {
			if stopped() {
				started = i
				break
			}
			runTask(i)
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					if skip(i) {
						errs[i] = &TaskError{Index: i}
						p.Obs.Skipped()
						continue
					}
					runTask(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			if stopped() {
				started = i
				break
			}
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for i := started; i < n; i++ {
		errs[i] = &TaskError{Index: i}
		p.Obs.Skipped()
	}

	if failures.Load() == 0 {
		return out, nil
	}
	return out, errs
}

// Map runs fn(0), fn(1), ..., fn(n-1) on up to workers goroutines
// (GOMAXPROCS when workers <= 0) and returns the results in index
// order. After any task fails, no further tasks are handed out; the
// error with the smallest task index is returned, so the reported
// failure does not depend on scheduling. A panicking task does not
// crash the process: its panic is recovered and returned as a
// *TaskError carrying the panic value and stack.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out, errs := MapPolicy(Policy{FailFast: true}, workers, n, fn)
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// firstError returns the smallest-index real failure (skipping
// never-ran markers), unwrapping plain task errors so fail-fast
// callers see exactly what their task returned.
func firstError(errs []error) error {
	for _, err := range errs {
		if err == nil {
			continue
		}
		te := err.(*TaskError)
		if te.Attempts == 0 {
			continue // skipped, not failed
		}
		if te.Panic == nil && te.Err != nil {
			return te.Err
		}
		return te
	}
	return nil
}

// Grid runs fn over an rows×cols task matrix — one task per cell, all
// cells independent — and returns the results indexed [row][col]. The
// flattening is row-major, so neighbouring configurations of the same
// benchmark land on different workers as readily as different
// benchmarks do.
func Grid[T any](workers, rows, cols int, fn func(row, col int) (T, error)) ([][]T, error) {
	if rows <= 0 || cols <= 0 {
		return nil, nil
	}
	flat, err := Map(workers, rows*cols, func(i int) (T, error) {
		return fn(i/cols, i%cols)
	})
	if err != nil {
		return nil, err
	}
	out, _ := reshape(flat, nil, rows, cols)
	return out, nil
}

// GridPolicy is Grid under an explicit failure policy: it returns the
// cell results and errors indexed [row][col], errs nil when every cell
// succeeded. With FailFast false the whole grid runs to completion and
// every cell's result-or-error is reported in deterministic row-major
// order.
func GridPolicy[T any](p Policy, workers, rows, cols int, fn func(row, col int) (T, error)) ([][]T, [][]error) {
	if rows <= 0 || cols <= 0 {
		return nil, nil
	}
	flat, ferrs := MapPolicy(p, workers, rows*cols, func(i int) (T, error) {
		return fn(i/cols, i%cols)
	})
	return reshape(flat, ferrs, rows, cols)
}

// reshape slices a row-major flat result (and optional error) vector
// into [row][col] views.
func reshape[T any](flat []T, ferrs []error, rows, cols int) ([][]T, [][]error) {
	out := make([][]T, rows)
	for r := range out {
		out[r] = flat[r*cols : (r+1)*cols : (r+1)*cols]
	}
	if ferrs == nil {
		return out, nil
	}
	errs := make([][]error, rows)
	for r := range errs {
		errs[r] = ferrs[r*cols : (r+1)*cols : (r+1)*cols]
	}
	return out, errs
}
