// Package par is the simulator's deterministic fan-out substrate: a
// bounded-worker task runner over index spaces. The experiment engine
// schedules one task per (benchmark × configuration) simulation, so a
// figure over 16 benchmarks and 6 configurations exposes 96 units of
// parallel work instead of 16. Results are returned in task-index
// order and every task is a pure function of its index, so the output
// is byte-identical at any worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(0), fn(1), ..., fn(n-1) on up to workers goroutines
// (GOMAXPROCS when workers <= 0) and returns the results in index
// order. After any task fails, no further tasks are handed out; the
// error with the smallest task index is returned, so the reported
// failure does not depend on scheduling.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)

	if workers == 1 {
		// Run inline: same semantics, no goroutine overhead, and stack
		// traces from panicking simulations stay trivial to read.
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var failed atomic.Bool
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if failed.Load() {
					continue
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Grid runs fn over an rows×cols task matrix — one task per cell, all
// cells independent — and returns the results indexed [row][col]. The
// flattening is row-major, so neighbouring configurations of the same
// benchmark land on different workers as readily as different
// benchmarks do.
func Grid[T any](workers, rows, cols int, fn func(row, col int) (T, error)) ([][]T, error) {
	if rows <= 0 || cols <= 0 {
		return nil, nil
	}
	flat, err := Map(workers, rows*cols, func(i int) (T, error) {
		return fn(i/cols, i%cols)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, rows)
	for r := range out {
		out[r] = flat[r*cols : (r+1)*cols : (r+1)*cols]
	}
	return out, nil
}
