// Package prefetch provides a sequential (next-N-line) prefetcher that
// wraps any L2 organization. The paper's related-work section notes
// that spatial-pattern prefetchers operate at line granularity and so
// compose with LDIS, which removes unused words from both demand and
// prefetched lines; this wrapper lets the benchmarks quantify that
// composition.
//
// The wrapper is itself a hierarchy.L2: demand traffic passes through
// and, on each demand miss, the next Degree lines are fetched into the
// inner cache as prefetches. Demand MPKI is accounted at the wrapper,
// so prefetch traffic never inflates the miss statistics; prefetch
// accuracy emerges from whether prefetched lines catch later demand.
package prefetch

import (
	"fmt"

	"ldis/internal/hierarchy"
	"ldis/internal/mem"
)

// Config parameterizes the prefetcher.
type Config struct {
	// Degree is how many sequential lines are prefetched per demand
	// miss (1 = classic next-line).
	Degree int
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.Degree < 1 || c.Degree > 8 {
		return fmt.Errorf("prefetch: degree %d out of [1,8]", c.Degree)
	}
	return nil
}

// Stats counts prefetcher activity.
type Stats struct {
	DemandAccesses uint64
	DemandMisses   uint64
	Issued         uint64 // prefetches sent to the inner cache
	Useless        uint64 // prefetches that hit (line already present)
}

// L2 wraps an inner cache organization with sequential prefetching.
type L2 struct {
	inner hierarchy.L2
	cfg   Config
	st    Stats
}

// Wrap builds the prefetching wrapper; panics on invalid config.
func Wrap(inner hierarchy.L2, cfg Config) *L2 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &L2{inner: inner, cfg: cfg}
}

// Stats returns the live counters.
func (p *L2) Stats() *Stats { return &p.st }

// Access implements hierarchy.L2: demand access plus next-line
// prefetches on a miss.
func (p *L2) Access(la mem.LineAddr, word int, pc mem.Addr, write bool) (hierarchy.Class, mem.Footprint) {
	p.st.DemandAccesses++
	class, valid := p.inner.Access(la, word, pc, write)
	if class == hierarchy.L2Miss {
		p.st.DemandMisses++
		for d := 1; d <= p.cfg.Degree; d++ {
			p.st.Issued++
			// Prefetches fetch word 0 of the next line as clean loads;
			// a hit means the line was already resident (useless issue).
			if c, _ := p.inner.Access(la+mem.LineAddr(d), 0, pc, false); c != hierarchy.L2Miss {
				p.st.Useless++
			}
		}
	}
	return class, valid
}

// AccessInstr implements hierarchy.L2: instruction fetches pass
// through and trigger next-line prefetching like data misses.
func (p *L2) AccessInstr(la mem.LineAddr, pc mem.Addr) (hierarchy.Class, mem.Footprint) {
	p.st.DemandAccesses++
	class, valid := p.inner.AccessInstr(la, pc)
	if class == hierarchy.L2Miss {
		p.st.DemandMisses++
		for d := 1; d <= p.cfg.Degree; d++ {
			p.st.Issued++
			if c, _ := p.inner.AccessInstr(la+mem.LineAddr(d), pc); c != hierarchy.L2Miss {
				p.st.Useless++
			}
		}
	}
	return class, valid
}

// WritebackFromL1 implements hierarchy.L2.
func (p *L2) WritebackFromL1(la mem.LineAddr, footprint, dirty mem.Footprint) {
	p.inner.WritebackFromL1(la, footprint, dirty)
}

// Misses implements hierarchy.L2: demand misses only.
func (p *L2) Misses() uint64 { return p.st.DemandMisses }

// Accesses implements hierarchy.L2: demand accesses only.
func (p *L2) Accesses() uint64 { return p.st.DemandAccesses }

var _ hierarchy.L2 = (*L2)(nil)
