package prefetch

import (
	"testing"

	"ldis/internal/cache"
	"ldis/internal/distill"
	"ldis/internal/hierarchy"
	"ldis/internal/mem"
	"ldis/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	for _, d := range []int{0, 9, -1} {
		if err := (Config{Degree: d}).Validate(); err == nil {
			t.Errorf("degree %d should fail", d)
		}
	}
	if err := (Config{Degree: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNextLinePrefetchCatchesSequentialDemand(t *testing.T) {
	inner := hierarchy.NewTradL2(cache.New(cache.Config{Name: "i", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8}))
	p := Wrap(inner, Config{Degree: 1})
	// Sequential demand: line 0 misses and prefetches line 1; line 1's
	// demand access then hits.
	if c, _ := p.Access(0, 0, 0, false); c != hierarchy.L2Miss {
		t.Fatalf("first access class %v", c)
	}
	if c, _ := p.Access(1, 0, 0, false); c != hierarchy.L2Miss {
		if p.Misses() != 1 {
			t.Errorf("demand misses = %d, want 1", p.Misses())
		}
	} else {
		t.Fatal("prefetched line should hit")
	}
	if p.Stats().Issued == 0 {
		t.Error("no prefetches issued")
	}
}

func TestDemandAccountingExcludesPrefetches(t *testing.T) {
	innerCache := cache.New(cache.Config{Name: "i", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
	p := Wrap(hierarchy.NewTradL2(innerCache), Config{Degree: 4})
	p.Access(0, 0, 0, false)
	if p.Accesses() != 1 {
		t.Errorf("demand accesses = %d, want 1", p.Accesses())
	}
	// The inner cache saw the demand access plus 4 prefetches.
	if got := innerCache.Stats().Accesses; got != 5 {
		t.Errorf("inner accesses = %d, want 5", got)
	}
}

func TestUselessPrefetchCounted(t *testing.T) {
	inner := hierarchy.NewTradL2(cache.New(cache.Config{Name: "i", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8}))
	p := Wrap(inner, Config{Degree: 1})
	p.Access(1, 0, 0, false) // miss; prefetches line 2
	p.Access(0, 0, 0, false) // miss; prefetches line 1 -> already present: useless
	if p.Stats().Useless != 1 {
		t.Errorf("useless = %d, want 1", p.Stats().Useless)
	}
}

func TestPrefetchHelpsStreamingWorkload(t *testing.T) {
	prof, err := workload.ByName("wupwise") // pure sequential streaming
	if err != nil {
		t.Fatal(err)
	}
	run := func(degree int) uint64 {
		inner := hierarchy.NewTradL2(cache.New(cache.Config{Name: "i", SizeBytes: 1 << 20, Ways: 8}))
		var l2 hierarchy.L2 = inner
		if degree > 0 {
			l2 = Wrap(inner, Config{Degree: degree})
		}
		sys := hierarchy.NewSystem(l2)
		sys.Run(prof.Stream(), 150_000)
		return sys.L2.Misses()
	}
	noPf, pf := run(0), run(2)
	if pf >= noPf {
		t.Errorf("next-line prefetch did not help streaming: %d vs %d misses", pf, noPf)
	}
}

func TestPrefetchComposesWithDistill(t *testing.T) {
	prof, err := workload.ByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	dc := distill.New(distill.DefaultConfig())
	p := Wrap(hierarchy.NewDistillL2(dc), Config{Degree: 2})
	sys := hierarchy.NewSystem(p)
	sys.Run(prof.Stream(), 100_000)
	if p.Misses() == 0 || p.Stats().Issued == 0 {
		t.Errorf("composition degenerate: %+v", p.Stats())
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWritebackPassthrough(t *testing.T) {
	innerCache := cache.New(cache.Config{Name: "i", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
	p := Wrap(hierarchy.NewTradL2(innerCache), Config{Degree: 1})
	p.Access(0, 0, 0, false)
	p.WritebackFromL1(0, mem.FullFootprint, mem.FootprintOfWord(1))
	found := false
	innerCache.VisitLines(func(la mem.LineAddr, fp mem.Footprint) {
		if la == 0 {
			found = true
			if !fp.Has(1) {
				t.Error("writeback footprint not merged through the wrapper")
			}
		}
	})
	if !found {
		t.Fatal("line 0 missing")
	}
}
