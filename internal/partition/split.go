package partition

import "fmt"

// ScaleAlloc proportionally rescales a ways allocation onto a
// different total (e.g. a 16-way controller allocation onto the 12 LOC
// ways of a distilling cache), flooring every tenant at minWays and
// preserving the sum. Largest-remainder rounding keeps the result
// deterministic: remainders tie-break to the lowest tenant index. A
// zero source allocation degrades to the equal split.
func ScaleAlloc(alloc []int, targetWays, minWays int, out []int) {
	n := len(alloc)
	if len(out) != n {
		panic(fmt.Sprintf("partition: ScaleAlloc out length %d != %d tenants", len(out), n))
	}
	if targetWays < n*minWays {
		panic(fmt.Sprintf("partition: %d target ways cannot grant %d tenants %d each", targetWays, n, minWays))
	}
	total := 0
	for _, a := range alloc {
		total += a
	}
	if total <= 0 {
		equalSplit(targetWays, out)
		return
	}
	granted := 0
	for t := range out {
		out[t] = alloc[t] * targetWays / total // floor of the proportional share
		granted += out[t]
	}
	for rem := targetWays - granted; rem > 0; rem-- {
		// Award one way to the tenant with the largest remainder
		// alloc[t]*targetWays - out[t]*total (cross-multiplied to stay
		// in integers), lowest index on ties.
		best, bestRem := 0, -1
		for t := range out {
			if r := alloc[t]*targetWays - out[t]*total; r > bestRem {
				best, bestRem = t, r
			}
		}
		out[best]++
	}
	// Raise starved tenants to the floor, funding each raise from the
	// currently largest share.
	for t := range out {
		for out[t] < minWays {
			big := 0
			for u := range out {
				if out[u] > out[big] {
					big = u
				}
			}
			out[big]--
			out[t]++
		}
	}
}

// WayMasks converts a ways allocation into per-tenant contiguous way
// masks over a (possibly differently sized) set of ways — the
// word-organized cache's enforcement form, where quotas are per-way
// slot pools rather than victim-selection counts. Every tenant gets at
// least one way; when there are more tenants than ways, tenants share
// ways round-robin instead.
func WayMasks(alloc []int, ways int, out []uint64) {
	n := len(alloc)
	if len(out) != n {
		panic(fmt.Sprintf("partition: WayMasks out length %d != %d tenants", len(out), n))
	}
	if ways <= 0 || ways > 64 {
		panic(fmt.Sprintf("partition: WayMasks over %d ways", ways))
	}
	if ways < n {
		for t := range out {
			out[t] = 1 << uint(t%ways)
		}
		return
	}
	var scaled [MaxTenants]int
	ScaleAlloc(alloc, ways, 1, scaled[:n])
	start := 0
	for t := 0; t < n; t++ {
		w := scaled[t]
		out[t] = ((uint64(1) << uint(w)) - 1) << uint(start)
		start += w
	}
}
