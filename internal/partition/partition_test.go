package partition

import (
	"math/bits"
	"testing"

	"ldis/internal/mem"
)

func TestEqualSplit(t *testing.T) {
	cases := []struct {
		ways int
		n    int
		want []int
	}{
		{16, 2, []int{8, 8}},
		{16, 3, []int{6, 5, 5}},
		{7, 4, []int{2, 2, 2, 1}},
	}
	for _, tc := range cases {
		out := make([]int, tc.n)
		equalSplit(tc.ways, out)
		for i, w := range tc.want {
			if out[i] != w {
				t.Errorf("equalSplit(%d, n=%d) = %v, want %v", tc.ways, tc.n, out, tc.want)
				break
			}
		}
	}
}

func TestStaticShares(t *testing.T) {
	out := make([]int, 3)
	Static{}.Allocate(nil, 10, 1, out)
	if out[0]+out[1]+out[2] != 10 {
		t.Fatalf("equal static allocation %v does not sum to 10", out)
	}
	Static{Shares: []int{7, 2, 1}}.Allocate(nil, 10, 1, out)
	if out[0] != 7 || out[1] != 2 || out[2] != 1 {
		t.Fatalf("fixed static allocation %v, want [7 2 1]", out)
	}
}

// flatCurve returns a demand curve with constant misses (no benefit
// from extra ways); cliffCurve drops all misses once `knee` ways are
// granted.
func flatCurve(ways int, misses float64) []float64 {
	d := make([]float64, ways+1)
	for i := range d {
		d[i] = misses
	}
	return d
}

func cliffCurve(ways, knee int, misses float64) []float64 {
	d := make([]float64, ways+1)
	for i := range d {
		if i < knee {
			d[i] = misses
		}
	}
	return d
}

func TestLookaheadPrefersUtility(t *testing.T) {
	// Tenant 0 stops missing entirely at 6 ways; tenant 1 gains nothing
	// from capacity. Lookahead must push tenant 0 to its knee and leave
	// tenant 1 at the floor.
	const ways = 8
	demands := [][]float64{cliffCurve(ways, 6, 1000), flatCurve(ways, 1000)}
	out := make([]int, 2)
	lookahead(demands, ways, 1, out)
	if out[0] < 6 {
		t.Errorf("lookahead granted tenant 0 only %d ways, want >= its knee 6 (alloc %v)", out[0], out)
	}
	if out[0]+out[1] != ways {
		t.Errorf("allocation %v does not sum to %d", out, ways)
	}
	if out[1] < 1 {
		t.Errorf("tenant 1 starved below the floor: %v", out)
	}
}

func TestLookaheadSeesPastFlatRegions(t *testing.T) {
	// The curve is flat until a cliff at 5 ways: one-way-at-a-time
	// marginal utility would see zero gain everywhere and split the
	// ways arbitrarily; lookahead's multi-way blocks see the cliff.
	const ways = 8
	demands := [][]float64{cliffCurve(ways, 5, 100), flatCurve(ways, 100)}
	out := make([]int, 2)
	lookahead(demands, ways, 1, out)
	if out[0] < 5 {
		t.Errorf("lookahead missed the distant cliff: alloc %v, want tenant 0 >= 5", out)
	}
}

func TestLookaheadDeterministicTies(t *testing.T) {
	// Identical curves: ties must break identically on every run.
	const ways = 9
	demands := [][]float64{cliffCurve(ways, 3, 10), cliffCurve(ways, 3, 10), cliffCurve(ways, 3, 10)}
	first := make([]int, 3)
	lookahead(demands, ways, 1, first)
	sum := 0
	for _, w := range first {
		sum += w
	}
	if sum != ways {
		t.Fatalf("tie allocation %v does not sum to %d", first, ways)
	}
	out := make([]int, 3)
	for i := 0; i < 10; i++ {
		lookahead(demands, ways, 1, out)
		for t2 := range out {
			if out[t2] != first[t2] {
				t.Fatalf("run %d allocation %v differs from first %v", i, out, first)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range PolicyNames {
		p, ok := ByName(name)
		if !ok || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown policy")
	}
}

func TestScaleAlloc(t *testing.T) {
	cases := []struct {
		alloc  []int
		target int
		min    int
		want   []int
	}{
		{[]int{8, 8}, 12, 1, []int{6, 6}},
		{[]int{12, 4}, 12, 1, []int{9, 3}},      // exact 3:1 proportions
		{[]int{16, 0}, 4, 1, []int{3, 1}},       // zero share still gets the floor
		{[]int{0, 0, 0}, 6, 1, []int{2, 2, 2}},  // zero total degrades to equal
		{[]int{4, 4, 8}, 4, 1, []int{1, 1, 2}},  // heavy compression keeps proportions
		{[]int{15, 1}, 16, 1, []int{15, 1}},     // identity when sizes match
		{[]int{5, 5, 6}, 16, 1, []int{5, 5, 6}}, // identity across remainders
	}
	for _, tc := range cases {
		out := make([]int, len(tc.alloc))
		ScaleAlloc(tc.alloc, tc.target, tc.min, out)
		sum := 0
		for i, w := range out {
			sum += w
			if w < tc.min {
				t.Errorf("ScaleAlloc(%v, %d) = %v: tenant %d below floor %d", tc.alloc, tc.target, out, i, tc.min)
			}
		}
		if sum != tc.target {
			t.Errorf("ScaleAlloc(%v, %d) = %v: sums to %d", tc.alloc, tc.target, out, sum)
		}
		for i := range tc.want {
			if out[i] != tc.want[i] {
				t.Errorf("ScaleAlloc(%v, %d) = %v, want %v", tc.alloc, tc.target, out, tc.want)
				break
			}
		}
	}
}

func TestWayMasksDisjointCover(t *testing.T) {
	alloc := []int{10, 4, 2}
	out := make([]uint64, 3)
	WayMasks(alloc, 4, out)
	var union uint64
	for i, m := range out {
		if m == 0 {
			t.Fatalf("tenant %d got an empty mask: %v", i, out)
		}
		if union&m != 0 {
			t.Fatalf("masks overlap: %v", out)
		}
		union |= m
	}
	if union != (1<<4)-1 {
		t.Fatalf("masks %v do not cover all 4 ways", out)
	}
	// The dominant tenant keeps the most ways after compression.
	if bits.OnesCount64(out[0]) < bits.OnesCount64(out[1]) {
		t.Fatalf("mask compression lost the demand ordering: %v", out)
	}
}

func TestWayMasksMoreTenantsThanWays(t *testing.T) {
	alloc := []int{4, 4, 4, 4, 4}
	out := make([]uint64, 5)
	WayMasks(alloc, 2, out)
	for i, m := range out {
		if bits.OnesCount64(m) != 1 {
			t.Fatalf("tenant %d mask %b not a single shared way: %v", i, m, out)
		}
		if m != 1<<uint(i%2) {
			t.Fatalf("round-robin sharing broken: %v", out)
		}
	}
}

// drive feeds each tenant a cyclic working set of the given line count
// (full-line word usage unless words[t] restricts it) for total
// accesses, round-robin across tenants.
func drive(c *Controller, lines []int, words []int, total int) {
	n := len(lines)
	pos := make([]int, n)
	for i := 0; i < total; i++ {
		t := i % n
		line := mem.LineAddr(uint64(t)<<32 | uint64(pos[t]%lines[t]))
		w := pos[t] % mem.WordsPerLine
		if words != nil && words[t] > 0 {
			w = pos[t] % words[t]
		}
		c.Observe(t, line, w)
		pos[t]++
	}
}

func testConfig(policy Policy) Config {
	return Config{
		Tenants:       2,
		TotalWays:     8,
		WayBytes:      1024, // 16 lines per way
		EpochAccesses: 2048,
		Policy:        policy,
		SampleRate:    1, // exact online engines: deterministic small-N tests
		AccessBudget:  1 << 16,
	}
}

func TestControllerRebalances(t *testing.T) {
	cfg := testConfig(UCP{})
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant 0 cycles 96 lines (6 ways of reuse), tenant 1 cycles 16
	// (1 way): utility partitioning must move ways from 1 to 0.
	drive(c, []int{96, 16}, nil, 1<<14)
	if c.Epochs() == 0 {
		t.Fatal("no epochs elapsed")
	}
	if c.Rebalances() == 0 {
		t.Fatal("skewed demand never triggered a rebalance")
	}
	alloc := c.Alloc()
	if alloc[0] <= alloc[1] {
		t.Fatalf("allocation %v did not favor the large working set", alloc)
	}
	if alloc[0]+alloc[1] != cfg.TotalWays {
		t.Fatalf("allocation %v does not sum to %d ways", alloc, cfg.TotalWays)
	}
	// Every logged decision must conserve ways too.
	for _, d := range c.Decisions() {
		if int(d.Adopted[0])+int(d.Adopted[1]) != cfg.TotalWays {
			t.Fatalf("epoch %d adopted %v ways", d.Epoch, d.Adopted)
		}
	}
}

func TestControllerHysteresisHolds(t *testing.T) {
	cfg := testConfig(UCP{})
	// The skewed streams offer a near-total predicted saving (the large
	// tenant stops missing entirely once it fits), so any band below 1
	// is cleared legitimately; a band above 1 is unclearable.
	cfg.Hysteresis = 1.1
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(c, []int{96, 16}, nil, 1<<14)
	if c.Epochs() == 0 {
		t.Fatal("no epochs elapsed")
	}
	if c.Rebalances() != 0 {
		t.Fatalf("%d rebalances adopted through a 0.99 hysteresis band", c.Rebalances())
	}
	a := c.Alloc()
	if a[0] != 4 || a[1] != 4 {
		t.Fatalf("allocation drifted to %v despite hysteresis", a)
	}
	// The decisions still record what the policy wanted.
	last := c.Decisions()[len(c.Decisions())-1]
	if last.Proposed[0] <= last.Proposed[1] {
		t.Fatalf("proposal %v did not favor the large working set", last.Proposed)
	}
}

func TestControllerShadowAgrees(t *testing.T) {
	cfg := testConfig(UCP{})
	cfg.Shadow = true
	// Online engines are exact here (SampleRate 1), so the shadow
	// comparison must agree perfectly.
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(c, []int{96, 16}, nil, 1<<14)
	agree, total := c.Agreement()
	if total != c.Epochs() {
		t.Fatalf("validated %d epochs of %d", total, c.Epochs())
	}
	if agree != total {
		t.Fatalf("exact online engines disagreed with exact shadow: %d/%d", agree, total)
	}
}

func TestControllerGrainsDiffer(t *testing.T) {
	// Tenant 0 cycles 96 lines but only ever touches word 0: at line
	// grain it needs 6 of the 8 ways (and, with the nearer cliff, wins
	// the contested ways from tenant 1's 111-line set, whose cliff at 7
	// ways is more expensive to reach). At word grain tenant 0's
	// distilled footprint fits in one way, so the same lookahead hands
	// the ways to tenant 1 instead. The per-epoch log must show the
	// grains disagreeing, and the word-grain policy must adopt the
	// tenant-1-heavy split.
	cfg := testConfig(LDISAware{})
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(c, []int{96, 111}, []int{1, 0}, 1<<14)
	if c.GrainDisagreements() == 0 {
		t.Fatal("word-sparse tenant never changed the word-grain allocation")
	}
	alloc := c.Alloc()
	if alloc[1] <= alloc[0] {
		t.Fatalf("word-grain policy allocation %v did not favor the full-word tenant", alloc)
	}
}

func TestControllerSampledTracksExact(t *testing.T) {
	// Default SHARDS sampling with a realistic seed must land within
	// one way of the exact allocation on most epochs — the property the
	// partition smoke gate asserts at experiment scale.
	cfg := testConfig(UCP{})
	cfg.SampleRate = 0.25
	cfg.Shadow = true
	cfg.Seed = 42
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(c, []int{96, 16}, nil, 1<<15)
	agree, total := c.Agreement()
	if total == 0 {
		t.Fatal("no validated epochs")
	}
	if float64(agree) < 0.9*float64(total) {
		t.Fatalf("sampled allocation agreed with exact on only %d/%d epochs", agree, total)
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(UCP{})
	bad := []func(*Config){
		func(c *Config) { c.Tenants = 1 },
		func(c *Config) { c.Tenants = MaxTenants + 1 },
		func(c *Config) { c.TotalWays = 1 },
		func(c *Config) { c.WayBytes = 32 },
		func(c *Config) { c.EpochAccesses = 0 },
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.Hysteresis = -0.5 },
		func(c *Config) { c.DecayAlpha = 1.5 },
		func(c *Config) { c.AccessBudget = 0 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := NewController(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewController(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestEpochDecisionAllocs pins the controller's per-epoch decision
// path: once constructed, a full epoch of Observe calls — including
// the endEpoch boundary with curve fills, both policy runs, hysteresis
// and the decision append — performs zero heap allocations.
func TestEpochDecisionAllocs(t *testing.T) {
	cfg := testConfig(UCP{})
	cfg.EpochAccesses = 256
	cfg.Shadow = true
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm one epoch so the engines' tables reach steady state.
	drive(c, []int{96, 16}, nil, cfg.EpochAccesses)
	pos := 0
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < cfg.EpochAccesses; i++ {
			tn := i % 2
			lines := 96
			if tn == 1 {
				lines = 16
			}
			c.Observe(tn, mem.LineAddr(uint64(tn)<<32|uint64(pos%lines)), pos%mem.WordsPerLine)
			pos++
		}
	})
	if avg != 0 {
		t.Errorf("epoch decision path allocates %.2f times per epoch, want 0", avg)
	}
}
