// Package partition implements online way-partitioning of one shared
// L2 across N tenants, driven by live per-tenant miss-ratio curves.
//
// The Controller samples every tenant's reference stream through a
// SHARDS miss-ratio-curve engine (internal/mrc) and, at the end of
// each epoch, converts the curves into per-tenant demand vectors —
// expected epoch misses as a function of granted ways — which a Policy
// turns into a ways allocation. A hysteresis band keeps the allocation
// stable unless the predicted saving is worth the churn, and the
// adopted allocation is enforced by the cache organizations' victim
// selection (cache.SetPartition / distill.SetPartition): partitioning
// constrains replacement, never lookup, matching way-partitioned
// hardware.
//
// Three policies ship behind the Policy interface:
//
//   - Static: fixed equal (or caller-specified) shares, the baseline
//     every utility-driven allocator must beat;
//   - UCP: Qureshi & Patt's lookahead marginal-utility algorithm over
//     the line-grain curves — the conventional utility-based cache
//     partitioning;
//   - LDISAware: the same lookahead over the distilled word-grain
//     curves, so a tenant whose lines distill densely (few used words)
//     presents a smaller effective demand and frees ways for its
//     neighbours.
package partition

// Grain selects which of the dual-grain miss-ratio curves feeds a
// policy: line grain prices every cached line at 64B (a conventional
// cache), word grain at its distilled word-slot allocation.
type Grain uint8

const (
	// GrainLine is the conventional line-grain curve.
	GrainLine Grain = iota
	// GrainWord is the distilled word-grain curve.
	GrainWord
)

// String returns the grain's display name.
func (g Grain) String() string {
	if g == GrainWord {
		return "word"
	}
	return "line"
}

// Policy maps per-tenant demand curves to a ways allocation.
// demands[t][w] is tenant t's expected epoch misses were it granted w
// ways (length totalWays+1, non-increasing in w). Allocate writes the
// chosen allocation into out (one entry per tenant): every entry at
// least minWays, entries summing to totalWays. Implementations must be
// deterministic and allocation-free — Allocate sits on the
// controller's per-epoch decision path, which is AllocsPerRun-pinned.
type Policy interface {
	Name() string
	Grain() Grain
	Allocate(demands [][]float64, totalWays, minWays int, out []int)
}

// Static partitions the ways once and ignores the curves: equal shares
// by default, or the fixed Shares when provided (must sum to the total
// ways, one entry per tenant). It is the paper-style baseline the
// utility-driven policies are measured against.
type Static struct {
	Shares []int
}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Grain implements Policy (the curves are unused; line is reported).
func (Static) Grain() Grain { return GrainLine }

// Allocate implements Policy.
func (s Static) Allocate(demands [][]float64, totalWays, minWays int, out []int) {
	if len(s.Shares) == len(out) {
		copy(out, s.Shares)
		return
	}
	equalSplit(totalWays, out)
}

// equalSplit writes an equal division of totalWays into out, handing
// the remainder to the lowest tenant indices.
func equalSplit(totalWays int, out []int) {
	n := len(out)
	base := totalWays / n
	rem := totalWays - base*n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
}

// UCP is utility-based cache partitioning (Qureshi & Patt): the
// lookahead algorithm repeatedly grants the block of ways with the
// highest marginal utility — misses saved per way — until the ways run
// out, over the conventional line-grain curves.
type UCP struct{}

// Name implements Policy.
func (UCP) Name() string { return "ucp" }

// Grain implements Policy.
func (UCP) Grain() Grain { return GrainLine }

// Allocate implements Policy.
func (UCP) Allocate(demands [][]float64, totalWays, minWays int, out []int) {
	lookahead(demands, totalWays, minWays, out)
}

// LDISAware is the lookahead allocation over the distilled word-grain
// curves: distillation shrinks a tenant's effective demand (unused
// words are never stored), so the allocator sees how few ways a
// densely-distilling tenant really needs and reassigns the rest.
type LDISAware struct{}

// Name implements Policy.
func (LDISAware) Name() string { return "ldis" }

// Grain implements Policy.
func (LDISAware) Grain() Grain { return GrainWord }

// Allocate implements Policy.
func (LDISAware) Allocate(demands [][]float64, totalWays, minWays int, out []int) {
	lookahead(demands, totalWays, minWays, out)
}

// lookahead is the UCP lookahead algorithm: start every tenant at
// minWays, then repeatedly award the (tenant, block-size) pair with
// the maximum marginal utility (d[cur]-d[cur+b])/b until the balance
// is spent. Looking ahead across block sizes — not just one way at a
// time — lets it see past the flat regions of saturating-utility
// curves. Ties break to the lowest tenant index and smallest block, so
// the result is deterministic. Demand curves are non-increasing, so
// utilities are never negative; when every remaining utility is zero
// the balance goes to the first tenant able to hold it.
func lookahead(demands [][]float64, totalWays, minWays int, out []int) {
	n := len(out)
	for i := range out {
		out[i] = minWays
	}
	balance := totalWays - n*minWays
	for balance > 0 {
		best, bestB := -1, 0
		bestMU := -1.0
		for t := 0; t < n; t++ {
			d := demands[t]
			cur := out[t]
			maxB := balance
			if cur+maxB > len(d)-1 {
				maxB = len(d) - 1 - cur
			}
			for b := 1; b <= maxB; b++ {
				if mu := (d[cur] - d[cur+b]) / float64(b); mu > bestMU {
					best, bestB, bestMU = t, b, mu
				}
			}
		}
		if best < 0 {
			// Every tenant is at its curve's end; hand the leftovers out
			// round-robin so the allocation still sums to totalWays.
			for t := 0; balance > 0; t = (t + 1) % n {
				out[t]++
				balance--
			}
			return
		}
		out[best] += bestB
		balance -= bestB
	}
}

// ByName returns the registered policy with the given name ("static",
// "ucp", or "ldis"), or false.
func ByName(name string) (Policy, bool) {
	switch name {
	case "static":
		return Static{}, true
	case "ucp":
		return UCP{}, true
	case "ldis":
		return LDISAware{}, true
	}
	return nil, false
}

// PolicyNames lists the registered policy names in column order.
var PolicyNames = []string{"static", "ucp", "ldis"}
