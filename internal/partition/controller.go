package partition

import (
	"fmt"

	"ldis/internal/mem"
	"ldis/internal/mrc"
	"ldis/internal/obs"
)

// MaxTenants bounds the tenants one controller can manage; it matches
// cache.MaxPartitionTenants so every allocation the controller emits
// is enforceable, and lets the per-epoch Decision record use fixed
// arrays instead of allocating.
const MaxTenants = 8

// Config parameterizes one Controller.
type Config struct {
	// Tenants is the number of sharers (2..MaxTenants).
	Tenants int
	// TotalWays is the shared cache's associativity being divided.
	TotalWays int
	// WayBytes is the capacity one way represents (sets × 64B); it is
	// also the resolution of the demand curves, so allocations map
	// one-to-one onto curve points.
	WayBytes int
	// EpochAccesses is the epoch length in Observe calls summed across
	// tenants; every epoch ends with one allocation decision.
	EpochAccesses int
	// Policy converts demand curves into allocations.
	Policy Policy
	// MinWays floors every tenant's allocation; 0 means 1 (no tenant is
	// ever starved to zero ways).
	MinWays int
	// Hysteresis is the minimum predicted fractional miss saving a new
	// allocation must offer before it is adopted; 0 means the default
	// 0.02. Repartitioning is not free in hardware (quota drain churns
	// the sets), so allocations within the band stay put.
	Hysteresis float64
	// DecayAlpha scales the curve histograms at each epoch boundary
	// (exponential sliding window); 0 means the default 0.5.
	DecayAlpha float64
	// Shadow additionally runs exact-Mattson engines beside the sampled
	// ones and records, per epoch, the allocation the exact curves
	// would pick — the online-vs-exact validation the partition smoke
	// gate asserts on.
	Shadow bool
	// SampleRate is the SHARDS rate of the online engines; 0 means the
	// default 0.1.
	SampleRate float64
	// MaxSamples bounds concurrently tracked lines per online engine
	// (SHARDS fixed-size mode); 0 means the default 16384.
	MaxSamples int
	// Seed perturbs the engines' spatial hashes; each tenant's engine
	// is salted independently from it.
	Seed uint64
	// AccessBudget is the maximum total Observe calls over the
	// controller's lifetime; it sizes the engines and the decision log.
	AccessBudget int
	// Obs, when non-nil, receives the epoch/rebalance counters and the
	// rebalance span timings for the owning grid cell.
	Obs *obs.Cell
}

func (c Config) minWays() int {
	if c.MinWays == 0 {
		return 1
	}
	return c.MinWays
}

func (c Config) hysteresis() float64 {
	if c.Hysteresis == 0 {
		return 0.02
	}
	return c.Hysteresis
}

func (c Config) decayAlpha() float64 {
	if c.DecayAlpha == 0 {
		return 0.5
	}
	return c.DecayAlpha
}

func (c Config) sampleRate() float64 {
	if c.SampleRate == 0 {
		return 0.1
	}
	return c.SampleRate
}

func (c Config) maxSamples() int {
	if c.MaxSamples == 0 {
		return 16 << 10
	}
	return c.MaxSamples
}

func (c Config) validate() error {
	if c.Tenants < 2 || c.Tenants > MaxTenants {
		return fmt.Errorf("partition: %d tenants outside [2, %d]", c.Tenants, MaxTenants)
	}
	if c.TotalWays < c.Tenants*c.minWays() {
		return fmt.Errorf("partition: %d ways cannot grant %d tenants %d each", c.TotalWays, c.Tenants, c.minWays())
	}
	if c.WayBytes < mem.LineSize {
		return fmt.Errorf("partition: way capacity %dB below the line size", c.WayBytes)
	}
	if c.EpochAccesses <= 0 {
		return fmt.Errorf("partition: non-positive epoch length %d", c.EpochAccesses)
	}
	if c.Policy == nil {
		return fmt.Errorf("partition: nil policy")
	}
	if c.Hysteresis < 0 || c.DecayAlpha < 0 || c.DecayAlpha > 1 {
		return fmt.Errorf("partition: hysteresis %g / decay %g out of range", c.Hysteresis, c.DecayAlpha)
	}
	if c.AccessBudget <= 0 {
		return fmt.Errorf("partition: non-positive access budget %d", c.AccessBudget)
	}
	return nil
}

// Decision records one epoch boundary: what the policy proposed from
// the online curves, what is in force after hysteresis, and (under
// Shadow) what the exact curves would have picked. Fixed arrays keep
// the record allocation-free; entries beyond the tenant count are zero.
type Decision struct {
	Epoch int
	// Proposed is the policy's allocation from the online (sampled)
	// curves; Adopted is the allocation in force afterwards.
	Proposed [MaxTenants]uint8
	Adopted  [MaxTenants]uint8
	// Exact is the policy's allocation from the shadow exact curves
	// (valid only when the controller runs with Shadow).
	Exact [MaxTenants]uint8
	// LineAlloc and WordAlloc are the lookahead allocations at each
	// grain — the per-epoch evidence of where distillation changes the
	// decision.
	LineAlloc [MaxTenants]uint8
	WordAlloc [MaxTenants]uint8
	// Changed reports whether Proposed cleared the hysteresis band and
	// was adopted.
	Changed bool
	// AgreeWithin1 reports whether Proposed and Exact agree within one
	// way on every tenant (valid under Shadow).
	AgreeWithin1 bool
	// GrainsDiffer reports whether LineAlloc and WordAlloc differ.
	GrainsDiffer bool
	// PredictedSaving is the fractional miss reduction Proposed
	// promised over keeping the current allocation.
	PredictedSaving float64
}

// Controller drives the epoch loop: Observe feeds tenant accesses
// through the curve engines; every EpochAccesses accesses it re-runs
// the policy and, past hysteresis, adopts a new allocation. All state
// is preallocated at construction — the per-epoch decision path does
// not allocate (pinned by AllocsPerRun) — and nothing here uses
// goroutines, maps, or the wall clock, so controllers are
// deterministic at any scheduling.
type Controller struct {
	cfg     Config
	n       int
	engines []*mrc.Engine // online SHARDS-sampled, one per tenant
	exact   []*mrc.Engine // shadow exact engines (nil unless Shadow)

	alloc     []int // allocation in force
	epochRefs []float64
	seen      int
	epoch     int

	rebalances   int
	shadowEpochs int
	agreeEpochs  int
	grainDiffers int

	decisions []Decision

	// Per-epoch scratch, preallocated: miss-ratio and demand vectors
	// (length TotalWays+1 each) and proposal slices.
	lineRatios, wordRatios [][]float64
	lineDemand, wordDemand [][]float64
	exactDemand            [][]float64
	proposed, exactProp    []int
	lineProp, wordProp     []int

	spans         *obs.Spans
	obsEpochs     *obs.Counter
	obsRebalances *obs.Counter
	obsAgree      *obs.Counter
}

// NewController builds a controller with the initial allocation set to
// the equal split.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Tenants
	c := &Controller{
		cfg:       cfg,
		n:         n,
		engines:   make([]*mrc.Engine, n),
		alloc:     make([]int, n),
		epochRefs: make([]float64, n),
		decisions: make([]Decision, 0, cfg.AccessBudget/cfg.EpochAccesses+2),
		proposed:  make([]int, n),
		lineProp:  make([]int, n),
		wordProp:  make([]int, n),
	}
	ecfg := mrc.Config{
		MaxBytes:        cfg.TotalWays * cfg.WayBytes,
		ResolutionBytes: cfg.WayBytes,
		SampleRate:      cfg.sampleRate(),
	}
	if ecfg.SampleRate < 1 {
		// Fixed-size SHARDS only applies below rate 1; an exact online
		// engine (SampleRate ≥ 1, used by tests) takes no sample cap.
		ecfg.MaxSamples = cfg.maxSamples()
	}
	// Engines are sized with the full budget: interleaving usually
	// splits accesses evenly, but nothing stops one tenant's stream
	// from dominating, and an undersized Fenwick tree panics.
	for t := 0; t < n; t++ {
		ecfg.Seed = cfg.Seed + uint64(t)*0x9e3779b97f4a7c15
		eng, err := mrc.New(ecfg, cfg.AccessBudget)
		if err != nil {
			return nil, err
		}
		c.engines[t] = eng
	}
	if cfg.Shadow {
		c.exact = make([]*mrc.Engine, n)
		xcfg := mrc.Config{MaxBytes: ecfg.MaxBytes, ResolutionBytes: ecfg.ResolutionBytes}
		for t := 0; t < n; t++ {
			eng, err := mrc.New(xcfg, cfg.AccessBudget)
			if err != nil {
				return nil, err
			}
			c.exact[t] = eng
		}
		c.exactDemand = makeVectors(n, cfg.TotalWays+1)
		c.exactProp = make([]int, n)
	}
	c.lineRatios = makeVectors(n, cfg.TotalWays+1)
	c.wordRatios = makeVectors(n, cfg.TotalWays+1)
	c.lineDemand = makeVectors(n, cfg.TotalWays+1)
	c.wordDemand = makeVectors(n, cfg.TotalWays+1)
	equalSplit(cfg.TotalWays, c.alloc)
	c.spans = cfg.Obs.Spans()
	c.obsEpochs = cfg.Obs.Counter("partition_epochs")
	c.obsRebalances = cfg.Obs.Counter("partition_rebalances")
	c.obsAgree = cfg.Obs.Counter("partition_agree_epochs")
	return c, nil
}

// makeVectors carves n float64 vectors of the given width out of one
// backing array.
func makeVectors(n, width int) [][]float64 {
	backing := make([]float64, n*width)
	out := make([][]float64, n)
	for i := range out {
		out[i] = backing[i*width : (i+1)*width : (i+1)*width]
	}
	return out
}

// Observe feeds one data access by the given tenant through its curve
// engines and advances the epoch clock. It returns true when this
// access closed an epoch whose decision changed the allocation — the
// caller's cue to re-read Alloc and push new quotas into the enforced
// caches.
func (c *Controller) Observe(tenant int, line mem.LineAddr, word int) bool {
	c.engines[tenant].Access(line, word)
	if c.exact != nil {
		c.exact[tenant].Access(line, word)
	}
	c.epochRefs[tenant]++
	c.seen++
	if c.seen >= c.cfg.EpochAccesses {
		return c.endEpoch()
	}
	return false
}

// endEpoch runs one allocation decision: fill both grains' miss-ratio
// vectors, scale them by the epoch's per-tenant reference counts into
// expected-miss demands, run the policy, and adopt its proposal iff it
// differs and clears the hysteresis band. The shadow engines (when
// present) re-run the policy on exact curves for the agreement metric,
// and both engines decay so the next epoch sees a recency-weighted
// window.
func (c *Controller) endEpoch() bool {
	tok := c.spans.Begin(obs.StageRebalance)
	c.epoch++
	min := c.cfg.minWays()
	for t := 0; t < c.n; t++ {
		c.engines[t].FillLineMissRatios(c.lineRatios[t], c.cfg.WayBytes)
		c.engines[t].FillWordMissRatios(c.wordRatios[t], c.cfg.WayBytes)
		refs := c.epochRefs[t]
		for w := range c.lineDemand[t] {
			c.lineDemand[t][w] = c.lineRatios[t][w] * refs
			c.wordDemand[t][w] = c.wordRatios[t][w] * refs
		}
	}
	demands := c.lineDemand
	if c.cfg.Policy.Grain() == GrainWord {
		demands = c.wordDemand
	}
	c.cfg.Policy.Allocate(demands, c.cfg.TotalWays, min, c.proposed)
	lookahead(c.lineDemand, c.cfg.TotalWays, min, c.lineProp)
	lookahead(c.wordDemand, c.cfg.TotalWays, min, c.wordProp)

	keep, move := 0.0, 0.0
	differs := false
	for t := 0; t < c.n; t++ {
		keep += demands[t][c.alloc[t]]
		move += demands[t][c.proposed[t]]
		if c.proposed[t] != c.alloc[t] {
			differs = true
		}
	}
	saving := 0.0
	if keep > 0 {
		saving = (keep - move) / keep
	}
	changed := differs && saving >= c.cfg.hysteresis()

	d := Decision{Epoch: c.epoch, PredictedSaving: saving, Changed: changed}
	for t := 0; t < c.n; t++ {
		d.Proposed[t] = uint8(c.proposed[t])
		d.LineAlloc[t] = uint8(c.lineProp[t])
		d.WordAlloc[t] = uint8(c.wordProp[t])
		if c.lineProp[t] != c.wordProp[t] {
			d.GrainsDiffer = true
		}
	}
	if d.GrainsDiffer {
		c.grainDiffers++
	}
	if changed {
		copy(c.alloc, c.proposed)
		c.rebalances++
		c.obsRebalances.Inc()
	}
	for t := 0; t < c.n; t++ {
		d.Adopted[t] = uint8(c.alloc[t])
	}

	if c.exact != nil {
		for t := 0; t < c.n; t++ {
			if c.cfg.Policy.Grain() == GrainWord {
				c.exact[t].FillWordMissRatios(c.exactDemand[t], c.cfg.WayBytes)
			} else {
				c.exact[t].FillLineMissRatios(c.exactDemand[t], c.cfg.WayBytes)
			}
			refs := c.epochRefs[t]
			for w := range c.exactDemand[t] {
				c.exactDemand[t][w] *= refs
			}
		}
		c.cfg.Policy.Allocate(c.exactDemand, c.cfg.TotalWays, min, c.exactProp)
		agree := true
		for t := 0; t < c.n; t++ {
			d.Exact[t] = uint8(c.exactProp[t])
			if diff := c.exactProp[t] - c.proposed[t]; diff > 1 || diff < -1 {
				agree = false
			}
		}
		d.AgreeWithin1 = agree
		c.shadowEpochs++
		if agree {
			c.agreeEpochs++
			c.obsAgree.Inc()
		}
	}

	if len(c.decisions) == cap(c.decisions) {
		panic("partition: decision log overflow; size Config.AccessBudget with the full trace length")
	}
	c.decisions = append(c.decisions, d)

	alpha := c.cfg.decayAlpha()
	for t := 0; t < c.n; t++ {
		c.engines[t].DecayCounts(alpha)
		if c.exact != nil {
			c.exact[t].DecayCounts(alpha)
		}
		c.epochRefs[t] = 0
	}
	c.seen = 0
	c.obsEpochs.Inc()
	c.spans.End(obs.StageRebalance, tok)
	return changed
}

// Alloc returns the allocation currently in force (live slice; callers
// must not modify it).
func (c *Controller) Alloc() []int { return c.alloc }

// Decisions returns every epoch decision so far (live slice).
func (c *Controller) Decisions() []Decision { return c.decisions }

// Epochs returns how many epoch decisions have run.
func (c *Controller) Epochs() int { return c.epoch }

// Rebalances returns how many decisions changed the allocation.
func (c *Controller) Rebalances() int { return c.rebalances }

// Agreement returns the shadow validation tally: epochs where the
// online proposal matched the exact one within one way on every
// tenant, over the epochs validated (zero-zero without Shadow).
func (c *Controller) Agreement() (agree, total int) {
	return c.agreeEpochs, c.shadowEpochs
}

// GrainDisagreements returns how many epochs picked different
// allocations at line vs word grain — where distillation changed the
// decision.
func (c *Controller) GrainDisagreements() int { return c.grainDiffers }

// Curves returns the named line- and word-grain curves of one tenant's
// online engine (the decayed sliding-window view at the current
// moment).
func (c *Controller) Curves(tenant int, name string) (line, word mrc.Curve) {
	return c.engines[tenant].LineCurve(name + " line"), c.engines[tenant].WordCurve(name + " word")
}
