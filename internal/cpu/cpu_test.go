package cpu

import (
	"testing"

	"ldis/internal/distill"
	"ldis/internal/hierarchy"
	"ldis/internal/mem"
	"ldis/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero issue width should fail")
	}
	bad2 := DefaultConfig()
	bad2.L2HitExposedFrac = 1.5
	if err := bad2.Validate(); err == nil {
		t.Error("exposure > 1 should fail")
	}
}

func TestDistillConfigExtras(t *testing.T) {
	c := DistillConfig()
	if c.L2ExtraTagCycles != 1 || c.WOCRearrangeCycles != 2 {
		t.Errorf("distill timing extras wrong: %+v", c)
	}
}

func run(t *testing.T, sys *hierarchy.System, profName string, n int, cfg Config) Result {
	t.Helper()
	prof, err := workload.ByName(profName)
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg).Run(sys, prof, prof.Stream(), n)
}

func TestIPCBoundedByIssueWidth(t *testing.T) {
	sys, _ := hierarchy.Baseline("b", 1<<20, 8)
	r := run(t, sys, "twolf", 20000, DefaultConfig())
	if r.Instructions == 0 || r.Cycles <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if ipc := r.IPC(); ipc <= 0 || ipc > 8 {
		t.Errorf("IPC = %.2f outside (0, 8]", ipc)
	}
}

func TestFewerMissesMeansHigherIPC(t *testing.T) {
	// The same workload on a 4x cache must not be slower.
	sysSmall, _ := hierarchy.Baseline("small", 1<<20, 8)
	sysBig, _ := hierarchy.Baseline("big", 4<<20, 8)
	rSmall := run(t, sysSmall, "health", 150000, DefaultConfig())
	rBig := run(t, sysBig, "health", 150000, DefaultConfig())
	if rBig.IPC() < rSmall.IPC() {
		t.Errorf("bigger cache slower: %.3f vs %.3f", rBig.IPC(), rSmall.IPC())
	}
	if rBig.MissStall >= rSmall.MissStall {
		t.Errorf("bigger cache should stall less: %.0f vs %.0f", rBig.MissStall, rSmall.MissStall)
	}
}

func TestLowMLPStallsMore(t *testing.T) {
	// Two profiles differing only in MLP: the serial one must stall more
	// per miss. Use the same stream (mcf) but patch MLP.
	base, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	serial := *base
	serial.MLP = 1
	parallel := *base
	parallel.MLP = 8

	sysA, _ := hierarchy.Baseline("a", 1<<20, 8)
	sysB, _ := hierarchy.Baseline("b", 1<<20, 8)
	rA := New(DefaultConfig()).Run(sysA, &serial, serial.Stream(), 50000)
	rB := New(DefaultConfig()).Run(sysB, &parallel, parallel.Stream(), 50000)
	if rA.MissStall <= rB.MissStall {
		t.Errorf("MLP=1 should stall more than MLP=8: %.0f vs %.0f", rA.MissStall, rB.MissStall)
	}
}

func TestExtraTagCycleCostsIFetchHeavyWorkloads(t *testing.T) {
	// With identical cache behaviour, the distill timing (extra tag
	// cycle) must not increase IPC for an icache-intensive profile.
	sysA, _ := hierarchy.Baseline("a", 1<<20, 8)
	sysB, _ := hierarchy.Baseline("b", 1<<20, 8)
	rBase := run(t, sysA, "gcc", 50000, DefaultConfig())
	rDist := run(t, sysB, "gcc", 50000, DistillConfig())
	if rDist.IPC() > rBase.IPC() {
		t.Errorf("extra tag cycle should not speed gcc up: %.3f vs %.3f", rDist.IPC(), rBase.IPC())
	}
}

func TestBankConflictsAddLatency(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	// Two back-to-back misses to the same bank (lines 3 and 35 with 32
	// banks): the second waits.
	s1 := m.missStall(0, 3, 1)
	s2 := m.missStall(0, 35, 1)
	if s2 <= s1 {
		t.Errorf("bank conflict not modelled: %.0f then %.0f", s1, s2)
	}
	// A different bank at a much later time is cheaper.
	s3 := m.missStall(2000, 4, 1)
	if s3 >= s2 {
		t.Errorf("unconflicted miss should be cheaper: %.0f vs %.0f", s3, s2)
	}
	if m.MemoryStats().BankConflicts == 0 {
		t.Error("dram stats should record the conflict")
	}
}

func TestMLPDividesExposure(t *testing.T) {
	m1 := New(DefaultConfig())
	m8 := New(DefaultConfig())
	a := m1.missStall(0, 0, 1)
	b := m8.missStall(0, 0, 8)
	if b >= a {
		t.Errorf("MLP=8 exposure %.0f should be below MLP=1 %.0f", b, a)
	}
	if b < a*DefaultConfig().MissExposedBaseline-1 {
		t.Errorf("exposure %.0f below the baseline floor", b)
	}
}

func TestDistillSystemEndToEnd(t *testing.T) {
	// Smoke test: a distill cache + distill timing on a favourable
	// workload produces a valid result and a higher IPC than the same
	// trace on the baseline when misses drop substantially.
	prof, err := workload.ByName("health")
	if err != nil {
		t.Fatal(err)
	}
	sysBase, _ := hierarchy.Baseline("base", 1<<20, 8)
	dcfg := distill.DefaultConfig()
	dcfg.Seed = 42
	sysDist, _ := hierarchy.Distill(dcfg)

	rBase := New(DefaultConfig()).Run(sysBase, prof, prof.Stream(), 200000)
	rDist := New(DistillConfig()).Run(sysDist, prof, prof.Stream(), 200000)
	if rBase.IPC() <= 0 || rDist.IPC() <= 0 {
		t.Fatalf("degenerate IPCs: %.3f / %.3f", rBase.IPC(), rDist.IPC())
	}
	baseMPKI := float64(sysBase.L2.Misses()) / float64(rBase.Instructions) * 1000
	distMPKI := float64(sysDist.L2.Misses()) / float64(rDist.Instructions) * 1000
	if distMPKI < baseMPKI*0.9 && rDist.IPC() < rBase.IPC() {
		t.Errorf("misses dropped (%.1f -> %.1f MPKI) but IPC fell (%.3f -> %.3f)",
			baseMPKI, distMPKI, rBase.IPC(), rDist.IPC())
	}
}

func TestEmptyStream(t *testing.T) {
	sys, _ := hierarchy.Baseline("b", 1<<20, 8)
	prof, _ := workload.ByName("twolf")
	r := New(DefaultConfig()).Run(sys, prof, emptyStream{}, 100)
	if r.Accesses != 0 || r.Cycles != 0 {
		t.Errorf("empty stream result: %+v", r)
	}
	if r.IPC() != 0 {
		t.Error("empty-run IPC should be 0")
	}
}

type emptyStream struct{}

func (emptyStream) Next() (mem.Access, bool) { return mem.Access{}, false }

func TestBranchStreamEmergentRate(t *testing.T) {
	// The synthetic branch stream's emergent misprediction rate should
	// track the profile's configured rate within a factor of ~2.
	for _, name := range []string{"gcc", "swim"} {
		prof, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		bs := newBranchStream(prof)
		miss := 0
		for i := 0; i < 40000; i++ {
			miss += bs.run(25) // 1M instructions total
		}
		branches := bs.pred.Stats().Branches
		if branches == 0 {
			t.Fatalf("%s: no branches synthesized", name)
		}
		rate := float64(miss) / float64(branches)
		// The emergent rate carries a predictor warm-up floor on top of
		// the configured data-dependent component, so the tolerance is
		// loose; the absolute CPI impact of the gap is < 0.02.
		if rate < prof.MispredictRate*0.3 || rate > prof.MispredictRate*3+0.01 {
			t.Errorf("%s: emergent mispredict rate %.4f vs configured %.4f",
				name, rate, prof.MispredictRate)
		}
	}
}
