// Package cpu implements the execution-driven timing model used for the
// paper's IPC results (Section 7.4). The paper uses an in-house
// out-of-order Alpha simulator; we substitute an interval-style cycle
// accounting model in the spirit of Karkhanis & Smith [8] — which the
// paper itself cites for miss-tolerance behaviour — driven by the same
// access streams as the cache experiments:
//
//   - base work: instructions retire at the pipeline's base CPI;
//   - branches: mispredictions each cost the minimum 15-cycle penalty
//     (Table 1), scaled by the profile's branch and misprediction rates;
//   - instruction fetch: L1I misses stall for the L2 hit latency
//     (distill caches add their extra tag cycle here too — this is what
//     costs gcc its IPC in Figure 9);
//   - L2 hits: mostly hidden by the out-of-order window; a configurable
//     fraction of the latency is exposed;
//   - L2 misses: a 32-bank DRAM with 400-cycle access latency and a
//     16B-wide 4:1 bus (Table 1); bank conflicts and bus occupancy are
//     modelled with per-resource free-at times, and the exposed stall
//     divides by the workload's memory-level parallelism, bounded by
//     the 32-entry MSHR.
package cpu

import (
	"fmt"

	"ldis/internal/branch"
	"ldis/internal/dram"
	"ldis/internal/hierarchy"
	"ldis/internal/mem"
	"ldis/internal/trace"
	"ldis/internal/workload"
)

// Config holds the machine timing parameters (paper Table 1) plus the
// L2-organization-dependent extras (Section 7.4).
type Config struct {
	IssueWidth          int     // 8-wide
	BranchPenalty       int     // 15 cycles minimum
	L2HitLatency        int     // 15 cycles
	L2ExtraTagCycles    int     // +1 for the distill cache's bigger tag store
	WOCRearrangeCycles  int     // +2 for WOC hits
	L2HitExposedFrac    float64 // fraction of L2 hit latency the window cannot hide
	MemLatency          int     // 400 cycles
	DRAMBanks           int     // 32
	BankBusy            int     // cycles a bank stays busy per request
	BusCycles           int     // 64B line over a 16B bus at 4:1 ratio = 16 CPU cycles
	MSHREntries         int     // 32
	MissExposedBaseline float64 // floor on the exposed fraction of a miss
}

// DefaultConfig returns the paper's processor configuration.
func DefaultConfig() Config {
	return Config{
		IssueWidth:          8,
		BranchPenalty:       15,
		L2HitLatency:        15,
		L2ExtraTagCycles:    0,
		WOCRearrangeCycles:  0,
		L2HitExposedFrac:    0.3,
		MemLatency:          400,
		DRAMBanks:           32,
		BankBusy:            40,
		BusCycles:           16,
		MSHREntries:         32,
		MissExposedBaseline: 0.15,
	}
}

// DistillConfig returns the timing for a processor with a distill
// cache: one extra tag cycle on every L2 access and two extra cycles of
// word rearrangement on WOC hits (Section 7.4).
func DistillConfig() Config {
	c := DefaultConfig()
	c.L2ExtraTagCycles = 1
	c.WOCRearrangeCycles = 2
	return c
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 || c.MemLatency <= 0 || c.DRAMBanks <= 0 || c.MSHREntries <= 0 {
		return fmt.Errorf("cpu: non-positive core parameter: %+v", c)
	}
	if c.L2HitExposedFrac < 0 || c.L2HitExposedFrac > 1 || c.MissExposedBaseline < 0 || c.MissExposedBaseline > 1 {
		return fmt.Errorf("cpu: exposure fractions out of [0,1]: %+v", c)
	}
	return nil
}

// Result reports a timing run.
type Result struct {
	Instructions uint64
	Cycles       float64
	Accesses     uint64
	MissStall    float64 // cycles attributed to L2 misses
	HitStall     float64 // cycles attributed to exposed L2 hit latency
	FrontStall   float64 // branch misprediction + L1I miss cycles
	BaseCycles   float64 // issue-limited work
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / r.Cycles
}

// Model runs a workload through a memory hierarchy and accounts cycles.
type Model struct {
	cfg Config
	mem *dram.Memory
}

// New builds a timing model; panics on invalid config.
func New(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Model{cfg: cfg, mem: dram.New(cfg.memoryConfig())}
}

// memoryConfig assembles the dram parameters from the Table-1 fields.
func (c Config) memoryConfig() dram.Config {
	return dram.Config{
		Banks:          c.DRAMBanks,
		AccessLatency:  c.MemLatency,
		BankBusy:       c.BankBusy,
		BusCycles:      c.BusCycles,
		MaxOutstanding: c.MSHREntries,
	}
}

// MemoryStats exposes the DRAM model's counters (bank conflicts, MSHR
// stalls) for diagnostics.
func (m *Model) MemoryStats() dram.Stats { return m.mem.Stats() }

// Run drives up to n accesses of the stream through the system,
// charging cycles per the profile's rates. The profile supplies the
// non-memory CPI, branch behaviour, instruction-cache pressure, and
// memory-level parallelism.
func (m *Model) Run(sys *hierarchy.System, prof *workload.Profile, st trace.Stream, n int) Result {
	var r Result
	cfg := m.cfg

	// Branch mispredictions are simulated mechanistically: the Table-1
	// gshare/PAs hybrid predicts a synthetic branch stream whose mix of
	// predictable and random branches is derived from the profile's
	// misprediction rate (see branchStream).
	bs := newBranchStream(prof)
	baseCPI := prof.BaseCPI
	if min := 1 / float64(cfg.IssueWidth); baseCPI < min {
		baseCPI = min
	}

	mlp := prof.MLP
	if mlp < 1 {
		mlp = 1
	}
	if mlp > float64(cfg.MSHREntries) {
		mlp = float64(cfg.MSHREntries)
	}

	cycle := 0.0
	for done := 0; n <= 0 || done < n; done++ {
		a, ok := st.Next()
		if !ok {
			break
		}
		r.Accesses++
		r.Instructions += uint64(a.Instret)
		inst := float64(a.Instret)
		base := inst * baseCPI
		front := float64(bs.run(a.Instret)) * float64(cfg.BranchPenalty)
		r.BaseCycles += base
		r.FrontStall += front
		cycle += base + front

		class := sys.Do(a)
		if a.Kind == mem.IFetch {
			// Front-end stalls are fully exposed: fetch cannot proceed
			// past a missing instruction line.
			var stall float64
			switch class {
			case hierarchy.L2Miss:
				stall = m.missStall(cycle, a.Line(), 1)
			default:
				stall = float64(cfg.L2HitLatency + cfg.L2ExtraTagCycles)
			}
			r.FrontStall += stall
			cycle += stall
			continue
		}
		switch class {
		case hierarchy.L1Hit:
			// Fully pipelined.
		case hierarchy.L2Hit:
			stall := float64(cfg.L2HitLatency+cfg.L2ExtraTagCycles) * cfg.L2HitExposedFrac
			r.HitStall += stall
			cycle += stall
		case hierarchy.L2WOCHit:
			stall := float64(cfg.L2HitLatency+cfg.L2ExtraTagCycles+cfg.WOCRearrangeCycles) * cfg.L2HitExposedFrac
			r.HitStall += stall
			cycle += stall
		case hierarchy.L2Miss:
			stall := m.missStall(cycle, a.Line(), mlp)
			r.MissStall += stall
			cycle += stall
		}
	}
	r.Cycles = cycle
	return r
}

// missStall models one memory access through the dram package (bank
// conflicts, MSHR back-pressure, bus occupancy); the exposed stall is
// the total latency divided by the workload's MLP (overlapped misses)
// but never below the baseline exposure floor.
func (m *Model) missStall(now float64, la mem.LineAddr, mlp float64) float64 {
	latency := m.mem.Access(now, la) - now
	exposed := latency / mlp
	if floor := latency * m.cfg.MissExposedBaseline; exposed < floor {
		exposed = floor
	}
	return exposed
}

// branchStream synthesizes the conditional-branch stream implied by a
// profile's rates and drives the hybrid predictor with it. Branch sites
// split into three populations: strongly biased (taken), loop-like
// alternating patterns (predictable from local history), and
// data-dependent branches with random outcomes. The random share is
// sized so the emergent misprediction rate tracks the profile's
// configured rate.
type branchStream struct {
	pred       *branch.Predictor
	acc        float64 // fractional branches owed
	perInst    float64
	randFrac   float64
	pcs        int
	rng        uint64
	siteVisits []uint32
}

func newBranchStream(prof *workload.Profile) *branchStream {
	randFrac := 2 * prof.MispredictRate
	if randFrac > 1 {
		randFrac = 1
	}
	const sites = 256
	return &branchStream{
		pred:       branch.New(branch.DefaultConfig()),
		perInst:    prof.BranchPerKInst / 1000,
		randFrac:   randFrac,
		pcs:        sites,
		rng:        prof.Seed | 1,
		siteVisits: make([]uint32, sites),
	}
}

func (b *branchStream) next() uint64 {
	x := b.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	b.rng = x
	return x * 0x2545f4914f6cdd1d
}

// run advances the stream by instret instructions and returns the number
// of mispredicted branches.
func (b *branchStream) run(instret uint32) int {
	b.acc += float64(instret) * b.perInst
	miss := 0
	for b.acc >= 1 {
		b.acc--
		site := b.next() % uint64(b.pcs)
		b.siteVisits[site]++
		pc := mem.Addr(0x700000 + site*4)
		var taken bool
		switch {
		case float64(site) < b.randFrac*float64(b.pcs):
			taken = b.next()>>33&1 == 0 // data-dependent: unpredictable
		case site%8 == 0:
			// Loop branch: a per-site alternating pattern, learnable
			// from the PAs side's local history after warmup.
			taken = b.siteVisits[site]%2 != 0
		default:
			taken = true // strongly biased
		}
		if b.pred.PredictAndUpdate(pc, taken) {
			miss++
		}
	}
	return miss
}
