package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"ldis/internal/obs"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("hits") != c {
		t.Fatal("re-registering a counter returned a different handle")
	}
	g := r.Gauge("mr")
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Fatalf("gauge = %v, want 0.25", got)
	}
	h := r.Histogram("words", []uint64{1, 4, 8})
	for _, v := range []uint64{0, 1, 2, 5, 8, 9, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 2, 2} // <=1: {0,1}; <=4: {2}; <=8: {5,8}; overflow: {9,100}
	if got := h.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("histogram counts = %v, want %v", got, want)
	}
}

func TestNilSafety(t *testing.T) {
	// Every hot-path and accessor method must be callable on nil: this
	// is the entire "disabled observability" mode.
	var c *obs.Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *obs.Gauge
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *obs.Histogram
	h.Observe(1)
	if h.Counts() != nil || h.Bounds() != nil {
		t.Fatal("nil histogram snapshot")
	}
	var reg *obs.Registry
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x", nil) != nil {
		t.Fatal("nil registry handed out a live handle")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot")
	}
	reg.Merge(obs.NewRegistry())

	var sp *obs.Spans
	if tok := sp.Begin(obs.StageSimulate); tok != -1 {
		t.Fatalf("nil spans Begin = %d, want -1", tok)
	}
	sp.End(obs.StageSimulate, -1)
	if sp.Report() != nil {
		t.Fatal("nil spans report")
	}

	var run *obs.Run
	if run.Registry() != nil || run.Live() != nil || run.Clock() != nil ||
		run.Progress() != nil || run.Sched() != nil {
		t.Fatal("nil run handed out live components")
	}
	cell := run.StartCell("fig6", "gcc", 0)
	if cell != nil {
		t.Fatal("nil run started a live cell")
	}
	if cell.Counter("x") != nil || cell.Gauge("x") != nil || cell.Histogram("x", nil) != nil ||
		cell.Spans() != nil || cell.LiveGauge("x") != nil {
		t.Fatal("nil cell handed out live handles")
	}
	cell.MarkReplayed()
	if cell.Replayed() {
		t.Fatal("nil cell claims replayed")
	}
	run.FinishCell(cell, obs.StatusOK)
	if run.CellReports() != nil {
		t.Fatal("nil run cell reports")
	}

	var sm *obs.SchedMetrics
	sm.TaskDone()
	sm.Retry()
	sm.Panic()
	sm.Skipped()
	if sm.Snapshot() != nil {
		t.Fatal("nil sched snapshot")
	}

	var p *obs.Progress
	p.AddTotal(3)
	if p.Snapshot() != (obs.ProgressReport{}) {
		t.Fatal("nil progress snapshot")
	}
}

// TestHotPathZeroAllocs pins the enabled hot paths at zero allocations
// under contention: background goroutines hammer the same handles
// while AllocsPerRun measures the foreground. This is the
// observability half of the repo's zero-alloc contract; the analyzer
// half is //ldis:noalloc on the same methods.
func TestHotPathZeroAllocs(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("contended")
	g := r.Gauge("contended")
	h := r.Histogram("contended", []uint64{1, 8, 64, 512})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				c.Inc()
				g.Set(0.5)
				h.Observe(7)
			}
		}()
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
	}); n != 0 {
		t.Errorf("Counter.Inc/Add allocates %.1f/op under contention, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		g.Set(3.14)
	}); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op under contention, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(600)
	}); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op under contention, want 0", n)
	}

	sp := obs.NewSpans(&obs.ManualClock{})
	if n := testing.AllocsPerRun(1000, func() {
		tok := sp.Begin(obs.StageWOCLookup)
		sp.End(obs.StageWOCLookup, tok)
	}); n != 0 {
		t.Errorf("Spans.Begin/End allocates %.1f/op, want 0", n)
	}
}

func TestSnapshotSortedAndMergeCommutative(t *testing.T) {
	build := func(order []string) *obs.Registry {
		r := obs.NewRegistry()
		for _, n := range order {
			r.Counter(n).Add(uint64(len(n)))
		}
		r.Gauge("g").Set(2)
		r.Histogram("h", []uint64{10}).Observe(3)
		return r
	}
	a := build([]string{"zeta", "alpha", "mid"})
	b := build([]string{"mid", "zeta", "alpha"})
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("snapshot depends on registration order")
	}

	// Merging the same parts in either order must give identical
	// snapshots: counters/histograms add, gauges take the max.
	part1 := build([]string{"alpha"})
	part1.Gauge("g").Set(5)
	part2 := build([]string{"zeta", "alpha"})

	m1 := obs.NewRegistry()
	m1.Merge(part1)
	m1.Merge(part2)
	m2 := obs.NewRegistry()
	m2.Merge(part2)
	m2.Merge(part1)
	if !reflect.DeepEqual(m1.Snapshot(), m2.Snapshot()) {
		t.Fatal("merge is not commutative")
	}
	if got := m1.Gauge("g").Value(); got != 5 {
		t.Fatalf("merged gauge = %v, want max 5", got)
	}
	if got := m1.Counter("alpha").Value(); got != 10 {
		t.Fatalf("merged counter = %d, want 10", got)
	}
}

func TestSpansSampling(t *testing.T) {
	clk := &obs.ManualClock{}
	sp := obs.NewSpans(clk)

	// Coarse stages time every call.
	tok := sp.Begin(obs.StageSimulate)
	if tok < 0 {
		t.Fatal("coarse stage call 1 not sampled")
	}
	clk.Advance(100)
	sp.End(obs.StageSimulate, tok)

	// The WOC lookup stage samples 1/256: call 1 is timed, calls
	// 2..256 are not, call 257 is timed again.
	timed := 0
	for i := 0; i < 512; i++ {
		tok := sp.Begin(obs.StageWOCLookup)
		if tok >= 0 {
			timed++
			clk.Advance(7)
		}
		sp.End(obs.StageWOCLookup, tok)
	}
	if timed != 2 {
		t.Fatalf("timed %d of 512 woc lookups, want 2 (1/256 sampling)", timed)
	}

	rep := sp.Report()
	want := []obs.SpanReport{
		{Stage: "simulate", Calls: 1, Timed: 1, Nanos: 100},
		{Stage: "woc_lookup", Calls: 512, Timed: 2, Nanos: 14},
	}
	if !reflect.DeepEqual(rep, want) {
		t.Fatalf("report = %+v, want %+v", rep, want)
	}
}

func TestRunCellLifecycle(t *testing.T) {
	clk := &obs.ManualClock{}
	run := obs.NewRun(clk)
	run.Progress().AddTotal(2)

	c1 := run.StartCell("fig6", "gcc", 1)
	c1.Counter("misses").Add(10)
	clk.Advance(1e9)
	run.FinishCell(c1, obs.StatusOK)

	c2 := run.StartCell("fig6", "art", 0)
	c2.Counter("misses").Add(5)
	run.FinishCell(c2, obs.StatusReplayed)

	reports := run.CellReports()
	if len(reports) != 2 {
		t.Fatalf("got %d cell reports, want 2", len(reports))
	}
	// Sorted by (experiment, benchmark, col): art before gcc.
	if reports[0].Benchmark != "art" || reports[1].Benchmark != "gcc" {
		t.Fatalf("reports out of order: %s, %s", reports[0].Benchmark, reports[1].Benchmark)
	}
	if reports[0].Status != obs.StatusReplayed || reports[1].Status != obs.StatusOK {
		t.Fatal("statuses not recorded")
	}
	if got := run.Registry().Counter("misses").Value(); got != 15 {
		t.Fatalf("run-level merged misses = %d, want 15", got)
	}
	p := run.Progress().Snapshot()
	if p.Done != 2 || p.Total != 2 || p.Replayed != 1 {
		t.Fatalf("progress = %+v", p)
	}

	// A retried cell finishes twice under the same coordinates: the
	// second report replaces the first, and progress counts it once.
	f1 := run.StartCell("fig6", "gcc", 1)
	run.FinishCell(f1, obs.StatusFailed)
	f2 := run.StartCell("fig6", "gcc", 1)
	f2.Counter("misses").Add(1)
	run.FinishCell(f2, obs.StatusOK)
	p = run.Progress().Snapshot()
	if p.Done != 2 || p.Failed != 0 {
		t.Fatalf("progress after retry = %+v, want done 2 failed 0", p)
	}
	reports = run.CellReports()
	if len(reports) != 2 || reports[1].Status != obs.StatusOK {
		t.Fatalf("retried cell not overwritten: %+v", reports)
	}
}

func TestProgressETA(t *testing.T) {
	clk := &obs.ManualClock{}
	run := obs.NewRun(clk)
	run.Progress().AddTotal(4)
	for i := 0; i < 2; i++ {
		c := run.StartCell("fig6", "gcc", i)
		clk.Advance(1e9) // 1s per cell
		run.FinishCell(c, obs.StatusOK)
	}
	p := run.Progress().Snapshot()
	if p.ElapsedSeconds != 2 {
		t.Fatalf("elapsed = %v, want 2", p.ElapsedSeconds)
	}
	if p.ETASeconds != 2 { // 1s/cell × 2 remaining
		t.Fatalf("eta = %v, want 2", p.ETASeconds)
	}
}

func TestManifestRoundTripAndStrip(t *testing.T) {
	clk := &obs.ManualClock{}
	run := obs.NewRun(clk)
	run.Progress().AddTotal(1)
	c := run.StartCell("fig6", "gcc", 0)
	c.Counter("misses").Add(3)
	tok := c.Spans().Begin(obs.StageSimulate)
	clk.Advance(42)
	c.Spans().End(obs.StageSimulate, tok)
	run.FinishCell(c, obs.StatusOK)

	m := &obs.Manifest{
		Tool:        "ldisexp-test",
		GoVersion:   "go1.24",
		Generated:   "2026-01-01T00:00:00Z",
		Workers:     8,
		Fingerprint: 0xdeadbeef,
		Experiments: []string{"fig6"},
		Params:      map[string]string{"accesses": "1000"},
	}
	m.Snapshot(run)

	dir := t.TempDir()
	path := filepath.Join(dir, obs.ManifestFile)
	if err := obs.WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}

	got.StripTimings()
	if got.Generated != "" || got.Workers != 0 {
		t.Fatal("StripTimings kept environment fields")
	}
	if got.Progress.ElapsedSeconds != 0 || got.Progress.ETASeconds != 0 {
		t.Fatal("StripTimings kept progress timing")
	}
	for _, cell := range got.Cells {
		for _, s := range cell.Spans {
			if s.Nanos != 0 {
				t.Fatal("StripTimings kept span nanos")
			}
			if s.Calls == 0 {
				t.Fatal("StripTimings dropped deterministic span calls")
			}
		}
	}
}

func TestReadManifestRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not-json":    "{",
		"bad-version": `{"version": 99, "tool": "x", "experiments": ["fig6"]}`,
		"no-tool":     `{"version": 1, "experiments": ["fig6"]}`,
		"no-exps":     `{"version": 1, "tool": "x"}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".json")
		if err := writeFile(path, content); err != nil {
			t.Fatal(err)
		}
		if _, err := obs.ReadManifest(path); err == nil {
			t.Errorf("%s: ReadManifest accepted invalid manifest", name)
		}
	}
	if _, err := obs.ReadManifest(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("ReadManifest accepted a missing file")
	}
}

func TestHTTPServer(t *testing.T) {
	run := obs.NewRun(&obs.ManualClock{})
	run.Progress().AddTotal(3)
	c := run.StartCell("fig6", "gcc", 0)
	c.Counter("misses").Add(9)
	run.FinishCell(c, obs.StatusOK)

	srv, err := obs.StartServer("127.0.0.1:0", run)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var prog obs.ProgressReport
	getJSON(t, "http://"+srv.Addr()+"/progress", &prog)
	if prog.Done != 1 || prog.Total != 3 {
		t.Fatalf("progress = %+v", prog)
	}

	var metrics struct {
		Metrics []obs.Metric `json:"metrics"`
	}
	getJSON(t, "http://"+srv.Addr()+"/metrics", &metrics)
	found := false
	for _, m := range metrics.Metrics {
		if m.Name == "misses" && m.Count == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged misses counter missing from /metrics: %+v", metrics.Metrics)
	}

	var cells []obs.CellReport
	getJSON(t, "http://"+srv.Addr()+"/cells", &cells)
	if len(cells) != 1 || cells[0].Benchmark != "gcc" {
		t.Fatalf("cells = %+v", cells)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
