package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Slowloris guards for the observability listener: a client must send
// its headers promptly and cannot hold an idle connection forever.
// WriteTimeout stays generous because /debug/pprof/profile and
// /debug/pprof/trace stream for their requested duration (30s by
// default) before the first meaningful byte.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = time.Minute
	writeTimeout      = 5 * time.Minute
	idleTimeout       = 2 * time.Minute
)

// Server serves a run's live state over HTTP: progress and ETA,
// metric snapshots, per-cell reports, and the standard pprof
// endpoints. It exists for watching multi-hour sweeps; nothing in the
// simulation path ever touches it.
type Server struct {
	run *Run
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (e.g. "localhost:6060") and serves:
//
//	/            endpoint index
//	/progress    cells done/total, replayed, elapsed, ETA (JSON)
//	/metrics     run-level merged metric snapshot + scheduler counters (JSON)
//	/cells       per-cell reports recorded so far (JSON)
//	/debug/pprof standard pprof index, profile, trace, symbol handlers
func StartServer(addr string, run *Run) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ldis observability endpoint\n\n/progress\n/metrics\n/cells\n/debug/pprof/\n")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, run.Progress().Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Metrics []Metric `json:"metrics"`
			Live    []Metric `json:"live,omitempty"`
			Sched   []Metric `json:"sched,omitempty"`
		}{run.Registry().Snapshot(), run.Live().Snapshot(), run.Sched().Snapshot()})
	})
	mux.HandleFunc("/cells", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, run.CellReports())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{run: run, ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}}
	//ldis:goroutine-ok deliberate daemon: Serve runs until Close, whose shutdown joins it via the listener error
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful when addr requested port 0).
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Close shuts the listener down.
func (s *Server) Close() error {
	return s.srv.Close()
}
