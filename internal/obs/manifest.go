package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// ManifestVersion is bumped whenever the manifest schema changes
// incompatibly; ReadManifest rejects versions it does not understand.
const ManifestVersion = 1

// ManifestFile is the file name written next to experiment output.
const ManifestFile = "manifest.json"

// CellReport is one grid cell's entry in the manifest: its
// coordinates, outcome, span aggregates, and metric snapshot.
type CellReport struct {
	Experiment string       `json:"experiment"`
	Benchmark  string       `json:"benchmark"`
	Col        int          `json:"col"`
	Status     string       `json:"status"`
	Spans      []SpanReport `json:"spans,omitempty"`
	Metrics    []Metric     `json:"metrics,omitempty"`
}

// Failure is one failed cell in the manifest's failure table.
type Failure struct {
	Experiment string `json:"experiment,omitempty"`
	Benchmark  string `json:"benchmark"`
	Col        int    `json:"col"`
	Attempts   int    `json:"attempts"`
	Err        string `json:"error"`
}

// Manifest is the versioned record written next to each experiment
// run: enough to identify what ran (tool, git describe, config
// fingerprint, parameters), what happened (per-cell reports, failure
// table, merged metrics), and how long it took. Every field except
// the ones cleared by StripTimings is a pure function of the
// configuration, so manifests from the same sweep diff clean at any
// worker count.
type Manifest struct {
	Version     int      `json:"version"`
	Tool        string   `json:"tool"`
	GoVersion   string   `json:"go_version,omitempty"`
	GitDescribe string   `json:"git_describe,omitempty"`
	Generated   string   `json:"generated,omitempty"` // RFC3339; timing field
	Workers     int      `json:"workers,omitempty"`   // environment field
	Fingerprint uint64   `json:"fingerprint"`
	Experiments []string `json:"experiments"`

	// Params records the result-relevant option values (accesses,
	// warmup, benchmark subset, mrc knobs) as printable strings.
	Params map[string]string `json:"params,omitempty"`

	Cells    []CellReport   `json:"cells,omitempty"`
	Failures []Failure      `json:"failures,omitempty"`
	Metrics  []Metric       `json:"metrics,omitempty"` // run-level merged snapshot
	Sched    []Metric       `json:"sched,omitempty"`   // scheduler counters
	Progress ProgressReport `json:"progress"`
}

// Snapshot assembles the run's current state into m: cell reports,
// merged metrics, scheduler counters, and progress.
func (m *Manifest) Snapshot(r *Run) {
	m.Version = ManifestVersion
	m.Cells = r.CellReports()
	m.Metrics = r.Registry().Snapshot()
	m.Sched = r.Sched().Snapshot()
	m.Progress = r.Progress().Snapshot()
}

// StripTimings clears every field that legitimately varies between
// runs of the same configuration — timestamps, durations, ETA, worker
// count — leaving only the deterministic skeleton. Two sweeps of the
// same options at different -parallel values must be deeply equal
// after StripTimings; the determinism tests pin exactly that.
func (m *Manifest) StripTimings() {
	m.Generated = ""
	m.Workers = 0
	m.Progress.ElapsedSeconds = 0
	m.Progress.ETASeconds = 0
	for i := range m.Cells {
		for j := range m.Cells[i].Spans {
			m.Cells[i].Spans[j].Nanos = 0
		}
	}
}

// WriteManifest writes m as indented JSON to path.
func WriteManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// ReadManifest reads and validates a manifest written by
// WriteManifest. It rejects unknown schema versions and manifests
// missing required identity fields, so round-tripping through it is a
// real integrity check, not just a parse.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("obs: manifest %s: unsupported version %d (want %d)", path, m.Version, ManifestVersion)
	}
	if m.Tool == "" {
		return nil, fmt.Errorf("obs: manifest %s: missing tool", path)
	}
	if len(m.Experiments) == 0 {
		return nil, fmt.Errorf("obs: manifest %s: no experiments recorded", path)
	}
	return &m, nil
}
