package obs

import "sync/atomic"

// Stage identifies one instrumented pipeline stage. Stages are a fixed
// enum (not free-form strings) so span bookkeeping is a fixed-size
// array with no per-call lookups or allocation.
type Stage int

const (
	// StageDecode covers trace decoding (distillsim -trace replay).
	StageDecode Stage = iota
	// StageSimulate covers a cell's full simulate pass.
	StageSimulate
	// StageDistillEvict covers the distill evict/pack path (LOC
	// eviction through WOC install).
	StageDistillEvict
	// StageWOCLookup covers word-organized-cache lookups on the LOC
	// miss path.
	StageWOCLookup
	// StageCheckpointWrite covers checkpoint record appends.
	StageCheckpointWrite
	// StageRebalance covers the partition controller's epoch decision:
	// curve fills, policy allocation, and hysteresis adoption.
	StageRebalance
	numStages
)

var stageNames = [numStages]string{
	"decode",
	"simulate",
	"distill_evict",
	"woc_lookup",
	"checkpoint_write",
	"rebalance",
}

// String returns the stage's manifest name.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "unknown"
	}
	return stageNames[s]
}

// stageMasks control sampled timing: a stage's span is timed when
// callIndex&mask == 0. Coarse stages (one span per cell or per
// checkpoint record) time every call; the distill-evict and WOC-lookup
// stages fire around once per LOC miss, so they are sampled (1/64 and
// 1/256) to keep clock reads off the per-access budget. Call counts
// are always exact and — because sampling keys off the count, never
// the clock — the number of timed calls is itself deterministic; only
// the nanoseconds vary run to run.
var stageMasks = [numStages]uint64{
	StageDecode:          0,
	StageSimulate:        0,
	StageDistillEvict:    63,
	StageWOCLookup:       255,
	StageCheckpointWrite: 0,
	StageRebalance:       0, // epoch boundaries are rare; time them all
}

type stageAgg struct {
	calls atomic.Uint64
	timed atomic.Uint64
	nanos atomic.Int64
}

// Spans aggregates per-stage timing for one grid cell. A nil *Spans
// no-ops, so disabled cells pay one branch per instrumentation point.
type Spans struct {
	clock  Clock
	stages [numStages]stageAgg
}

// NewSpans returns a span aggregator reading the given clock.
func NewSpans(clock Clock) *Spans {
	if clock == nil {
		clock = SystemClock()
	}
	return &Spans{clock: clock}
}

// Begin enters a stage and returns the start token to pass to End. It
// returns -1 when timing is disabled or this call is not sampled; End
// ignores that sentinel, so call sites never branch on it.
//
//ldis:noalloc
func (s *Spans) Begin(stage Stage) int64 {
	if s == nil {
		return -1
	}
	n := s.stages[stage].calls.Add(1)
	if (n-1)&stageMasks[stage] != 0 {
		return -1
	}
	//ldis:alloc-ok Clock is an interface so tests can inject time; both implementations are pointer-receiver and allocation-free
	return s.clock.Nanos()
}

// End exits a stage begun with Begin. A -1 start (disabled or
// unsampled) is a no-op.
//
//ldis:noalloc
func (s *Spans) End(stage Stage, start int64) {
	if s == nil || start < 0 {
		return
	}
	//ldis:alloc-ok Clock is an interface so tests can inject time; both implementations are pointer-receiver and allocation-free
	now := s.clock.Nanos()
	s.stages[stage].timed.Add(1)
	s.stages[stage].nanos.Add(now - start)
}

// SpanReport is one stage's aggregate in a manifest cell report.
// Calls and Timed are deterministic (sampling keys off the call
// count); Nanos is a timing field cleared by Manifest.StripTimings.
type SpanReport struct {
	Stage string `json:"stage"`
	Calls uint64 `json:"calls"`
	Timed uint64 `json:"timed"`
	Nanos int64  `json:"nanos"`
}

// Report returns the per-stage aggregates in fixed stage order,
// omitting stages that were never entered.
func (s *Spans) Report() []SpanReport {
	if s == nil {
		return nil
	}
	var out []SpanReport
	for st := Stage(0); st < numStages; st++ {
		calls := s.stages[st].calls.Load()
		if calls == 0 {
			continue
		}
		out = append(out, SpanReport{
			Stage: st.String(),
			Calls: calls,
			Timed: s.stages[st].timed.Load(),
			Nanos: s.stages[st].nanos.Load(),
		})
	}
	return out
}
