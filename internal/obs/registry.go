// Package obs is the simulator's observability layer: a typed metrics
// registry (counters, gauges, fixed-bucket histograms), per-stage span
// timing, live run progress, a versioned JSON run manifest, and an
// optional HTTP endpoint serving all of it.
//
// The layer is built around two invariants the rest of the engine
// already enforces:
//
//   - Zero overhead when disabled. Every hot-path entry point
//     (Counter.Inc/Add, Gauge.Set, Histogram.Observe, Spans.Begin/End)
//     is a method on a possibly-nil receiver: a disabled simulator
//     holds nil metric handles and the calls reduce to a nil check.
//     Enabled, the paths are atomic and allocation-free, pinned by
//     AllocsPerRun tests and the //ldis:noalloc analyzer.
//
//   - Determinism. Counts are pure functions of the simulated work, so
//     two sweeps of the same configuration produce identical metric
//     values at any worker count; only durations differ. Everything
//     that reads a clock goes through the injectable Clock interface,
//     keeping the nowallclock analyzer's guarantee for simulation
//     logic, and every aggregate (registry snapshots, collector cell
//     reports) is emitted in sorted order so output never depends on
//     scheduling.
//
// Wiring: cmd-level code builds a Run (NewRun); the experiment engine
// derives one Cell per (benchmark × configuration) grid cell
// (Run.StartCell) and hands it to the simulators via their Config.Obs
// fields; completed cells are folded back into the run
// (Run.FinishCell) — per-cell counters merge into the run registry and
// the cell's metric/span snapshot is recorded for the manifest.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value
// is ready to use; a nil *Counter is a sanctioned no-op so disabled
// instrumentation costs one branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//ldis:noalloc
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
//
//ldis:noalloc
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric holding the latest observation (stored as
// atomic bits, so readers never see a torn value). Nil gauges no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//ldis:noalloc
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the latest observation (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram over uint64 observations.
// Bucket i counts observations v with v <= Bounds[i] (first match);
// observations above the last bound land in the implicit overflow
// bucket. Bounds are fixed at registration, so Observe is a linear
// scan over a handful of comparisons plus one atomic add — no
// allocation, no locks.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
}

// Observe records one value.
//
//ldis:noalloc
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []uint64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Counts returns a snapshot of the bucket counts (len(Bounds())+1, the
// last being the overflow bucket).
func (h *Histogram) Counts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Registry is a named collection of metrics. Registration (Counter,
// Gauge, Histogram) takes a lock and may allocate — callers register
// once at construction and keep the returned handles; the handles'
// hot paths never touch the registry again. All accessors are nil-safe
// and return nil handles on a nil registry, so a simulator wired to a
// nil registry is fully disabled.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	histos map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		histos: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// bucket upper bounds on first use. Re-registering an existing name
// returns the existing histogram (its original bounds win).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histos[name]
	if !ok {
		h = &Histogram{
			bounds: append([]uint64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.histos[name] = h
	}
	return h
}

// Metric is one snapshotted metric value — the unit of the manifest's
// metric tables and the HTTP endpoint's JSON.
type Metric struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge", or "histogram"
	// Count is the counter value (counters only).
	Count uint64 `json:"count,omitempty"`
	// Value is the gauge value (gauges only).
	Value float64 `json:"value,omitempty"`
	// Bounds/Buckets describe a histogram: Buckets[i] counts
	// observations <= Bounds[i]; the final bucket is overflow.
	Bounds  []uint64 `json:"bounds,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric sorted by (kind, name), so
// two snapshots of identical state are deeply equal regardless of
// registration or scheduling order. Zero-valued counters and gauges
// are included: a metric's presence documents the instrumentation
// point.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counts)+len(r.gauges)+len(r.histos))
	for _, name := range sortedKeys(r.counts) {
		out = append(out, Metric{Name: name, Kind: "counter", Count: r.counts[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.histos) {
		h := r.histos[name]
		out = append(out, Metric{Name: name, Kind: "histogram", Bounds: h.Bounds(), Buckets: h.Counts()})
	}
	return out
}

// Merge folds another registry into this one: counters and histogram
// buckets add (commutative, so merge order — and therefore worker
// scheduling — cannot change the result), gauges take the maximum of
// the two values (the only commutative choice that keeps "latest
// high-water" semantics). Histograms merge bucket-for-bucket only when
// the bounds agree; mismatched bounds keep the receiver's buckets.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	for _, m := range other.Snapshot() {
		switch m.Kind {
		case "counter":
			if m.Count > 0 {
				r.Counter(m.Name).Add(m.Count)
			}
		case "gauge":
			g := r.Gauge(m.Name)
			if m.Value > g.Value() {
				g.Set(m.Value)
			}
		case "histogram":
			h := r.Histogram(m.Name, m.Bounds)
			if len(h.bounds) != len(m.Bounds) {
				continue
			}
			same := true
			for i := range h.bounds {
				if h.bounds[i] != m.Bounds[i] {
					same = false
					break
				}
			}
			if !same {
				continue
			}
			for i, n := range m.Buckets {
				if n > 0 {
					h.counts[i].Add(n)
				}
			}
		}
	}
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//ldis:nondet-ok key collection only; the slice is sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
