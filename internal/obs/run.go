package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Run is the per-process observability root: a run-level registry,
// the progress tracker, the cell-report collector, and the scheduler
// metrics. A nil *Run disables everything downstream — StartCell
// returns a nil *Cell, whose accessors return nil handles, whose hot
// paths no-op.
type Run struct {
	reg       *Registry
	live      *Registry
	clock     Clock
	collector *Collector
	progress  *Progress
	sched     SchedMetrics
}

// NewRun builds an enabled observability run. A nil clock selects the
// system monotonic clock.
func NewRun(clock Clock) *Run {
	if clock == nil {
		clock = SystemClock()
	}
	col := &Collector{cells: make(map[cellKey]CellReport)}
	return &Run{
		reg:       NewRegistry(),
		live:      NewRegistry(),
		clock:     clock,
		collector: col,
		progress:  newProgress(clock, col),
	}
}

// Registry returns the run-level registry (nil when disabled).
func (r *Run) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Live returns the run's live registry: gauges written directly by
// mid-flight cells for the HTTP endpoint. Direct writes race across
// workers (latest wins), so the live registry is deliberately excluded
// from the manifest — it exists for watching, not for records.
func (r *Run) Live() *Registry {
	if r == nil {
		return nil
	}
	return r.live
}

// Clock returns the run's clock (nil when disabled).
func (r *Run) Clock() Clock {
	if r == nil {
		return nil
	}
	return r.clock
}

// Progress returns the run's progress tracker (nil when disabled).
func (r *Run) Progress() *Progress {
	if r == nil {
		return nil
	}
	return r.progress
}

// Sched returns the scheduler metrics block for wiring into
// par.Policy (nil when disabled).
func (r *Run) Sched() *SchedMetrics {
	if r == nil {
		return nil
	}
	return &r.sched
}

// StartCell opens observability for one (experiment × benchmark ×
// column) grid cell: a private registry and span set that the cell's
// simulators update without contending with any other worker.
func (r *Run) StartCell(experiment, benchmark string, col int) *Cell {
	if r == nil {
		return nil
	}
	return &Cell{
		run:        r,
		experiment: experiment,
		benchmark:  benchmark,
		col:        col,
		reg:        NewRegistry(),
		spans:      NewSpans(r.clock),
	}
}

// FinishCell folds a completed cell back into the run: its counters
// and histograms merge into the run registry (commutative, so worker
// scheduling cannot change the totals), and its snapshot is recorded
// for the manifest. Progress derives from the recorded cells, keyed by
// coordinates, so a retried cell (finish-failed, then finish-ok)
// advances the done count exactly once. Safe on nil run or cell.
func (r *Run) FinishCell(c *Cell, status string) {
	if r == nil || c == nil {
		return
	}
	r.reg.Merge(c.reg)
	r.collector.record(CellReport{
		Experiment: c.experiment,
		Benchmark:  c.benchmark,
		Col:        c.col,
		Status:     status,
		Spans:      c.spans.Report(),
		Metrics:    c.reg.Snapshot(),
	})
}

// CellReports returns every recorded cell report sorted by
// (experiment, benchmark, col).
func (r *Run) CellReports() []CellReport {
	if r == nil {
		return nil
	}
	return r.collector.reports()
}

// Cell statuses recorded in the manifest.
const (
	StatusOK       = "ok"
	StatusReplayed = "replayed" // served from a checkpoint, not simulated
	StatusFailed   = "failed"
)

// Cell is one grid cell's private observability surface. All methods
// are nil-safe; a nil *Cell hands out nil metric handles, so a fully
// disabled simulator is wired with zero-cost no-ops end to end.
type Cell struct {
	run        *Run
	experiment string
	benchmark  string
	col        int
	reg        *Registry
	spans      *Spans
	replayed   bool
}

// NewCell returns a stand-alone cell recording into reg, for
// simulators built outside an experiment run (the public ldis facade's
// WithObserver). A nil reg yields a nil cell, i.e. observability off.
func NewCell(reg *Registry) *Cell {
	if reg == nil {
		return nil
	}
	return &Cell{reg: reg, spans: NewSpans(nil)}
}

// MarkReplayed records that the cell's result was served from a
// checkpoint rather than simulated. Cells are single-worker, so a
// plain bool suffices.
func (c *Cell) MarkReplayed() {
	if c == nil {
		return
	}
	c.replayed = true
}

// Replayed reports whether MarkReplayed was called.
func (c *Cell) Replayed() bool {
	return c != nil && c.replayed
}

// Counter returns the cell's named counter (nil when disabled).
func (c *Cell) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	return c.reg.Counter(name)
}

// Gauge returns the cell's named gauge (nil when disabled).
func (c *Cell) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	return c.reg.Gauge(name)
}

// Histogram returns the cell's named histogram (nil when disabled).
func (c *Cell) Histogram(name string, bounds []uint64) *Histogram {
	if c == nil {
		return nil
	}
	return c.reg.Histogram(name, bounds)
}

// Spans returns the cell's span aggregator (nil when disabled).
func (c *Cell) Spans() *Spans {
	if c == nil {
		return nil
	}
	return c.spans
}

// LiveGauge returns a gauge on the run's live registry, for values
// (e.g. SHARDS miss ratios) that should be visible on the HTTP
// endpoint while the cell is still mid-flight. Live gauges never enter
// the manifest: the latest writer wins, which is the right semantics
// for a dashboard and the wrong one for a deterministic record.
func (c *Cell) LiveGauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	if c.run == nil {
		// Stand-alone cell (NewCell): no run-level live registry, so
		// live values land in the cell's own registry instead.
		return c.reg.Gauge(name)
	}
	return c.run.live.Gauge(name)
}

// SchedMetrics counts scheduler-level events. The experiment engine
// wires one into par.Policy; a nil *SchedMetrics no-ops so the
// scheduler never branches on whether observability is on.
type SchedMetrics struct {
	tasks   Counter
	retries Counter
	panics  Counter
	skipped Counter
}

// TaskDone counts one completed task attempt chain.
//
//ldis:noalloc
func (m *SchedMetrics) TaskDone() {
	if m == nil {
		return
	}
	m.tasks.Inc()
}

// Retry counts one task re-attempt after a failure.
//
//ldis:noalloc
func (m *SchedMetrics) Retry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

// Panic counts one recovered task panic.
//
//ldis:noalloc
func (m *SchedMetrics) Panic() {
	if m == nil {
		return
	}
	m.panics.Inc()
}

// Skipped counts one task cancelled before it ran (fail-fast).
//
//ldis:noalloc
func (m *SchedMetrics) Skipped() {
	if m == nil {
		return
	}
	m.skipped.Inc()
}

// Snapshot returns the scheduler counters as metrics.
func (m *SchedMetrics) Snapshot() []Metric {
	if m == nil {
		return nil
	}
	return []Metric{
		{Name: "sched_tasks", Kind: "counter", Count: m.tasks.Value()},
		{Name: "sched_retries", Kind: "counter", Count: m.retries.Value()},
		{Name: "sched_panics", Kind: "counter", Count: m.panics.Value()},
		{Name: "sched_skipped", Kind: "counter", Count: m.skipped.Value()},
	}
}

// Collector accumulates finished-cell reports keyed by coordinates, so
// a replayed-then-rerun cell overwrites rather than duplicates.
type Collector struct {
	mu    sync.Mutex
	cells map[cellKey]CellReport
}

type cellKey struct {
	experiment string
	benchmark  string
	col        int
}

func (c *Collector) record(r CellReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells[cellKey{r.Experiment, r.Benchmark, r.Col}] = r
}

// counts tallies recorded cells by status. Counting over the map is
// commutative, so iteration order cannot matter.
func (c *Collector) counts() (done, replayed, failed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//ldis:nondet-ok commutative counting; no per-element output depends on order
	for _, r := range c.cells {
		done++
		switch r.Status {
		case StatusReplayed:
			replayed++
		case StatusFailed:
			failed++
		}
	}
	return done, replayed, failed
}

func (c *Collector) reports() []CellReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]cellKey, 0, len(c.cells))
	//ldis:nondet-ok key collection only; the slice is sorted immediately below
	for k := range c.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.experiment != b.experiment {
			return a.experiment < b.experiment
		}
		if a.benchmark != b.benchmark {
			return a.benchmark < b.benchmark
		}
		return a.col < b.col
	})
	out := make([]CellReport, 0, len(keys))
	for _, k := range keys {
		out = append(out, c.cells[k])
	}
	return out
}

// Progress tracks cells done vs total for the live endpoint and the
// manifest tail. Done/replayed/failed counts derive from the recorded
// cell reports (keyed by coordinates), so re-finished cells stay
// idempotent. All methods are nil-safe.
type Progress struct {
	clock     Clock
	start     int64
	total     atomic.Int64
	collector *Collector
}

func newProgress(clock Clock, col *Collector) *Progress {
	return &Progress{clock: clock, start: clock.Nanos(), collector: col}
}

// AddTotal grows the expected cell count (each experiment adds its
// grid before running).
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.total.Add(int64(n))
}

// ProgressReport is the progress snapshot served over HTTP and
// embedded in the manifest. ElapsedSeconds and ETASeconds are timing
// fields; the counts are deterministic.
type ProgressReport struct {
	Done           int64   `json:"done"`
	Total          int64   `json:"total"`
	Replayed       int64   `json:"replayed"`
	Failed         int64   `json:"failed"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ETASeconds     float64 `json:"eta_seconds"`
}

// Snapshot returns the current progress. The ETA is a straight-line
// extrapolation from simulated (non-replayed) cell throughput.
func (p *Progress) Snapshot() ProgressReport {
	if p == nil {
		return ProgressReport{}
	}
	done, replayed, failed := p.collector.counts()
	r := ProgressReport{
		Done:     done,
		Total:    p.total.Load(),
		Replayed: replayed,
		Failed:   failed,
	}
	r.ElapsedSeconds = float64(p.clock.Nanos()-p.start) / 1e9
	if fresh := r.Done - r.Replayed; fresh > 0 && r.Done < r.Total {
		perCell := r.ElapsedSeconds / float64(fresh)
		r.ETASeconds = perCell * float64(r.Total-r.Done)
	}
	return r
}
