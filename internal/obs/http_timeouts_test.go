package obs

// This file is an internal (package obs) test: the regression it pins
// — the -obs-addr listener carrying slowloris-safe timeouts — lives on
// the unexported http.Server inside Server, which the external
// obs_test package cannot see.

import "testing"

// TestServerHasTimeouts guards against the observability listener
// regressing to a timeout-less http.Server, where one slow client
// could hold connections (and their goroutines) open indefinitely.
func TestServerHasTimeouts(t *testing.T) {
	s, err := StartServer("127.0.0.1:0", NewRun(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout not set: header-dribbling clients are unbounded")
	}
	if s.srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout not set: slow request bodies are unbounded")
	}
	if s.srv.WriteTimeout <= 0 {
		t.Error("WriteTimeout not set: stalled readers hold responses forever")
	}
	if s.srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout not set: idle keep-alive connections never close")
	}
	// The profile endpoints stream for up to their requested duration
	// (default 30s) before completing; the write timeout must not be so
	// tight that it kills a default CPU profile mid-stream.
	if s.srv.WriteTimeout < readTimeout {
		t.Errorf("WriteTimeout %v tighter than ReadTimeout %v: pprof profile streams would be cut off",
			s.srv.WriteTimeout, s.srv.ReadTimeout)
	}
}
