package obs

import "time"

// Clock is the observability layer's only source of wall-clock time.
// Simulation logic never reads the clock; spans and progress reporting
// do, and they do it through this interface so tests can inject a
// manual clock and the nowallclock analyzer's guarantee — no
// time.Now in simulation logic — survives with a single audited
// exception below.
type Clock interface {
	// Nanos returns monotonic elapsed nanoseconds since an arbitrary
	// fixed origin. Only differences are meaningful.
	Nanos() int64
}

// systemClock reads the host monotonic clock relative to a fixed base,
// so Nanos is immune to wall-clock jumps.
type systemClock struct {
	base time.Time
}

// SystemClock returns a Clock backed by the host monotonic clock. This
// is the one place in internal/ that reads real time; everything else
// takes a Clock.
func SystemClock() Clock {
	//ldis:nondet-ok observability clock: timings are reporting-only fields, excluded from deterministic output by StripTimings
	return &systemClock{base: time.Now()}
}

func (c *systemClock) Nanos() int64 {
	//ldis:nondet-ok observability clock: timings are reporting-only fields, excluded from deterministic output by StripTimings
	return int64(time.Since(c.base))
}

// ManualClock is a test clock advanced by hand.
type ManualClock struct {
	now int64
}

// Nanos returns the manually set time.
func (c *ManualClock) Nanos() int64 { return c.now }

// Advance moves the clock forward by d nanoseconds.
func (c *ManualClock) Advance(d int64) { c.now += d }
