package dram

import (
	"testing"

	"ldis/internal/mem"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := OpenPageConfig(150).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Banks: 0, AccessLatency: 400, MaxOutstanding: 32},
		{Banks: 32, AccessLatency: 0, MaxOutstanding: 32},
		{Banks: 32, AccessLatency: 400, MaxOutstanding: 0},
		{Banks: 32, AccessLatency: 400, MaxOutstanding: 32, BankBusy: -1},
		{Banks: 32, AccessLatency: 400, MaxOutstanding: 32, RowHitLatency: 500},
		{Banks: 32, AccessLatency: 400, MaxOutstanding: 32, RowHitLatency: 100, LinesPerRow: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
}

func TestUncontendedLatency(t *testing.T) {
	m := New(DefaultConfig())
	done := m.Access(0, 0)
	want := float64(400 + 16) // array access + bus transfer
	if done != want {
		t.Errorf("completion = %v, want %v", done, want)
	}
}

func TestBankConflictQueues(t *testing.T) {
	m := New(DefaultConfig())
	// Lines 0 and 32 share bank 0 (32 banks).
	first := m.Access(0, 0)
	second := m.Access(0, 32)
	if second <= first {
		t.Errorf("conflicting request finished at %v, first at %v", second, first)
	}
	if m.Stats().BankConflicts != 1 {
		t.Errorf("bank conflicts = %d", m.Stats().BankConflicts)
	}
	// Different banks at the same time: only bus serialization applies.
	m2 := New(DefaultConfig())
	a := m2.Access(0, 0)
	b := m2.Access(0, 1)
	if b != a+16 {
		t.Errorf("parallel banks should serialize only on the bus: %v then %v", a, b)
	}
	if m2.Stats().BankConflicts != 0 {
		t.Error("different banks should not conflict")
	}
}

func TestBusSerializesResponses(t *testing.T) {
	m := New(DefaultConfig())
	var last float64
	for i := 0; i < 8; i++ {
		done := m.Access(0, mem.LineAddr(i)) // 8 different banks
		if done <= last {
			t.Fatalf("bus order violated: %v after %v", done, last)
		}
		last = done
	}
	// 8 transfers of 16 cycles each after the common 400-cycle access.
	if want := float64(400 + 8*16); last != want {
		t.Errorf("last completion %v, want %v", last, want)
	}
}

func TestMSHRBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxOutstanding = 2
	m := New(cfg)
	m.Access(0, 0)
	m.Access(0, 1)
	// Third request at time 0 must wait for the first to complete.
	done := m.Access(0, 2)
	if m.Stats().MSHRStalls != 1 {
		t.Errorf("MSHR stalls = %d", m.Stats().MSHRStalls)
	}
	if done <= 416 {
		t.Errorf("third request completed at %v despite full MSHR", done)
	}
}

func TestRowBufferHits(t *testing.T) {
	m := New(OpenPageConfig(100))
	// Same bank, same row: lines 0 and 32 (bank 0, row 0 with 64
	// lines/row covering lines 0..2047 of bank 0).
	first := m.Access(0, 0)
	second := m.Access(first+1000, 32)
	if got := second - (first + 1000); got != 100+16 {
		t.Errorf("row hit latency = %v, want 116", got)
	}
	if m.Stats().RowHits != 1 {
		t.Errorf("row hits = %d", m.Stats().RowHits)
	}
	// A different row closes the page.
	far := mem.LineAddr(32 * 64 * 10) // bank 0, row 10
	third := m.Access(second+1000, far)
	if got := third - (second + 1000); got != 400+16 {
		t.Errorf("row miss latency = %v, want 416", got)
	}
}

func TestClosedPageNeverRowHits(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0, 0)
	m.Access(1000, 0)
	if m.Stats().RowHits != 0 {
		t.Error("closed-page config should record no row hits")
	}
	if m.Stats().Requests != 2 {
		t.Errorf("requests = %d", m.Stats().Requests)
	}
}

func TestCompletionMonotoneUnderLoad(t *testing.T) {
	m := New(DefaultConfig())
	now, last := 0.0, 0.0
	for i := 0; i < 5000; i++ {
		done := m.Access(now, mem.LineAddr(i*7))
		if done < now {
			t.Fatalf("completion %v before issue %v", done, now)
		}
		if done <= last && i > 0 {
			// The shared bus must serialize all responses.
			t.Fatalf("bus order violated at %d: %v after %v", i, done, last)
		}
		last = done
		now += 3
	}
}
