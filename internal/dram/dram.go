// Package dram models the paper's main-memory system (Table 1): 32
// DRAM banks with a 400-cycle access latency and modelled bank
// conflicts, a cap of 32 outstanding requests (the MSHR), and a
// 16B-wide split-transaction bus at a 4:1 frequency ratio (16 CPU
// cycles per 64B line). On top of the paper's parameters it can model
// open-page row buffers, which the ablation benches use; the paper's
// configuration is the closed-page default.
package dram

import (
	"fmt"

	"ldis/internal/mem"
)

// Config holds the memory-system timing parameters (CPU cycles).
type Config struct {
	Banks          int // 32
	AccessLatency  int // 400, the full array access
	BankBusy       int // cycles a bank stays busy per request
	BusCycles      int // 64B over a 16B bus at 4:1 = 16 CPU cycles
	MaxOutstanding int // 32 (Table 1: maximum 32 outstanding requests)

	// RowHitLatency, when nonzero, enables open-page row buffers: a
	// request to the currently open row of its bank completes in this
	// many cycles instead of AccessLatency.
	RowHitLatency int
	// LinesPerRow is the row-buffer size in cache lines (per bank);
	// only used when RowHitLatency > 0. Typical DRAM rows hold 64-128
	// 64B lines.
	LinesPerRow int
}

// DefaultConfig returns the paper's memory system (closed page).
func DefaultConfig() Config {
	return Config{
		Banks:          32,
		AccessLatency:  400,
		BankBusy:       40,
		BusCycles:      16,
		MaxOutstanding: 32,
	}
}

// OpenPageConfig returns the paper's memory system with a 64-line
// open-page row buffer whose hits cost the given latency.
func OpenPageConfig(rowHit int) Config {
	c := DefaultConfig()
	c.RowHitLatency = rowHit
	c.LinesPerRow = 64
	return c
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.AccessLatency <= 0 || c.MaxOutstanding <= 0 {
		return fmt.Errorf("dram: non-positive core parameter: %+v", c)
	}
	if c.BankBusy < 0 || c.BusCycles < 0 {
		return fmt.Errorf("dram: negative occupancy parameter: %+v", c)
	}
	if c.RowHitLatency < 0 || c.RowHitLatency > c.AccessLatency {
		return fmt.Errorf("dram: row-hit latency %d out of [0, %d]", c.RowHitLatency, c.AccessLatency)
	}
	if c.RowHitLatency > 0 && c.LinesPerRow <= 0 {
		return fmt.Errorf("dram: open-page mode needs LinesPerRow > 0")
	}
	return nil
}

// Stats counts memory-system behaviour.
type Stats struct {
	Requests      uint64
	BankConflicts uint64 // requests that waited for a busy bank
	RowHits       uint64
	MSHRStalls    uint64 // requests that waited for an outstanding slot
}

// Memory is the timing model. It is not safe for concurrent use; each
// simulated core owns one.
type Memory struct {
	cfg      Config
	bankFree []float64
	openRow  []uint64 // per bank; ^0 = closed
	busFree  float64
	inflight []float64 // completion times occupying MSHR slots
	st       Stats
}

// New builds the memory system; panics on invalid config.
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Memory{
		cfg:      cfg,
		bankFree: make([]float64, cfg.Banks),
		openRow:  make([]uint64, cfg.Banks),
		inflight: make([]float64, 0, cfg.MaxOutstanding),
	}
	for i := range m.openRow {
		m.openRow[i] = ^uint64(0)
	}
	return m
}

// Stats returns the cumulative counters.
func (m *Memory) Stats() Stats { return m.st }

// bankOf maps a line to its bank: consecutive lines interleave across
// banks, the standard layout.
func (m *Memory) bankOf(la mem.LineAddr) int { return int(uint64(la) % uint64(m.cfg.Banks)) }

// rowOf maps a line to its row within the bank.
func (m *Memory) rowOf(la mem.LineAddr) uint64 {
	return uint64(la) / uint64(m.cfg.Banks) / uint64(m.cfg.LinesPerRow)
}

// Access issues a line fetch at CPU cycle `now` and returns the cycle
// at which the line has fully arrived over the bus.
func (m *Memory) Access(now float64, la mem.LineAddr) (completion float64) {
	m.st.Requests++
	start := now

	// MSHR back-pressure: wait for a free outstanding slot.
	if len(m.inflight) >= m.cfg.MaxOutstanding {
		oldestIdx, oldest := 0, m.inflight[0]
		for i, c := range m.inflight {
			if c < oldest {
				oldestIdx, oldest = i, c
			}
		}
		if oldest > start {
			m.st.MSHRStalls++
			start = oldest
		}
		m.inflight[oldestIdx] = m.inflight[len(m.inflight)-1]
		m.inflight = m.inflight[:len(m.inflight)-1]
	}

	bank := m.bankOf(la)
	if m.bankFree[bank] > start {
		m.st.BankConflicts++
		start = m.bankFree[bank]
	}

	latency := float64(m.cfg.AccessLatency)
	if m.cfg.RowHitLatency > 0 {
		if row := m.rowOf(la); m.openRow[bank] == row {
			latency = float64(m.cfg.RowHitLatency)
			m.st.RowHits++
		} else {
			m.openRow[bank] = row
		}
	}
	ready := start + latency
	m.bankFree[bank] = start + float64(m.cfg.BankBusy)

	// Split-transaction bus: the response occupies it for the transfer.
	if m.busFree > ready {
		ready = m.busFree
	}
	ready += float64(m.cfg.BusCycles)
	m.busFree = ready

	m.inflight = append(m.inflight, ready)
	return ready
}
