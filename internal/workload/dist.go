// Package workload generates the synthetic memory reference streams that
// stand in for the paper's SPEC CPU2000 Alpha traces (see DESIGN.md for
// the substitution argument). Each paper benchmark becomes a named
// Profile whose knobs — working-set structure, per-line word masks,
// reuse pattern, value mixture, and CPU-side rates — are calibrated to
// the statistics the paper publishes (Table 2 MPKI, Table 6 words used,
// Figure 1 footprint histograms).
package workload

import (
	"fmt"

	"ldis/internal/mem"
)

// WordCountDist is a distribution over the number of words used per
// line: Weights[i] is the relative weight of (i+1) words. It drives the
// per-line footprint masks and therefore the paper's Figure 1 histogram.
type WordCountDist struct {
	Weights [mem.WordsPerLine]float64
}

// UniformWords gives every count 1..8 equal weight.
func UniformWords() WordCountDist {
	var d WordCountDist
	for i := range d.Weights {
		d.Weights[i] = 1
	}
	return d
}

// SingleCount puts all weight on exactly n words used.
func SingleCount(n int) WordCountDist {
	if n < 1 || n > mem.WordsPerLine {
		panic(fmt.Sprintf("workload: SingleCount(%d) out of range", n))
	}
	var d WordCountDist
	d.Weights[n-1] = 1
	return d
}

// Counts builds a distribution from weights for 1..8 words; missing
// entries are zero.
func Counts(w ...float64) WordCountDist {
	var d WordCountDist
	copy(d.Weights[:], w)
	return d
}

// Mean returns the expected number of words used.
func (d WordCountDist) Mean() float64 {
	var sum, tot float64
	for i, w := range d.Weights {
		sum += float64(i+1) * w
		tot += w
	}
	if tot == 0 {
		return 0
	}
	return sum / tot
}

// sample picks a count (1..8) given a uniform u in [0,1).
func (d WordCountDist) sample(u float64) int {
	var tot float64
	for _, w := range d.Weights {
		tot += w
	}
	if tot <= 0 {
		return mem.WordsPerLine
	}
	acc := 0.0
	for i, w := range d.Weights {
		acc += w / tot
		if u < acc {
			return i + 1
		}
	}
	return mem.WordsPerLine
}

// MaskStyle controls which words form a line's mask once its count is
// chosen. Different styles matter: contiguous masks compact well in the
// WOC and mimic record fields; strided masks mimic large-struct column
// access; scattered masks mimic hash/pointer data.
type MaskStyle uint8

const (
	// MaskContig places the used words in a contiguous run at a
	// line-dependent offset (wrapping).
	MaskContig MaskStyle = iota
	// MaskStride spreads the used words at the largest stride that fits.
	MaskStride
	// MaskScatter picks a line-dependent random subset.
	MaskScatter
)

// maskFor deterministically derives the footprint mask of a line from
// the profile seed, so every visit to the same line agrees on its mask.
func maskFor(seed uint64, line mem.LineAddr, d WordCountDist, style MaskStyle) mem.Footprint {
	h := splitmix64(uint64(line) ^ seed)
	u := float64(h>>11) / (1 << 53)
	n := d.sample(u)
	if n >= mem.WordsPerLine {
		return mem.FullFootprint
	}
	h2 := splitmix64(h)
	var f mem.Footprint
	switch style {
	case MaskContig:
		start := int(h2 % mem.WordsPerLine)
		for i := 0; i < n; i++ {
			f = f.Set((start + i) % mem.WordsPerLine)
		}
	case MaskStride:
		stride := mem.WordsPerLine / n
		if stride < 1 {
			stride = 1
		}
		off := int(h2) & (stride - 1)
		for i := 0; i < n; i++ {
			f = f.Set((off + i*stride) % mem.WordsPerLine)
		}
	case MaskScatter:
		// Select n distinct words via a per-line permutation.
		perm := h2
		chosen := 0
		for chosen < n {
			w := int(perm % mem.WordsPerLine)
			perm = splitmix64(perm)
			if !f.Has(w) {
				f = f.Set(w)
				chosen++
			}
		}
	}
	return f
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// LinesPerMB is the number of 64B lines in one megabyte.
const LinesPerMB = 1 << 20 / mem.LineSize

// MB converts a size in megabytes to a line count.
func MB(x float64) int { return int(x * LinesPerMB) }
