package workload

import (
	"fmt"
	"sort"

	"ldis/internal/mem"
	"ldis/internal/trace"
	"ldis/internal/values"
)

// Profile is a complete synthetic benchmark: an access pattern plus the
// scalar rates the CPU timing model needs. One Profile corresponds to
// one benchmark row in the paper's tables.
type Profile struct {
	Name string
	Seed uint64

	// BaseLine is the first line of the benchmark's address region.
	BaseLine mem.LineAddr

	// Pattern is the data access pattern.
	Pattern VisitorSpec

	// MemRefsPerKInst is the number of data references per 1000
	// instructions; it spaces the Instret gaps in the trace.
	MemRefsPerKInst float64

	// StoreFrac is the fraction of data references that are stores.
	StoreFrac float64

	// ValueMix drives the compression experiments (Section 8).
	ValueMix values.Mix

	// CPU-side rates for the execution-driven IPC model (Section 7.4).
	BaseCPI        float64 // non-memory CPI (issue/dependency limits)
	BranchPerKInst float64 // conditional branches per 1000 instructions
	MispredictRate float64 // fraction of branches mispredicted
	MLP            float64 // average overlappable L2 misses (>=1)
	L1IMPKI        float64 // instruction-cache misses per 1000 instructions

	// CodeLines is the instruction footprint (in 64B lines) that the
	// L1I-miss stream cycles over. The stream itself is emitted as
	// IFetch accesses at L1IMPKI per 1000 instructions — the paper's
	// unified L2 serves them but never distills instruction lines
	// (Section 4). Zero defaults to 256kB of code.

	CodeLines int

	// PaperMPKI and PaperWordsUsed record the paper's published values
	// (Table 2 and Table 6 at 1MB) for calibration and EXPERIMENTS.md.
	PaperMPKI      float64
	PaperWordsUsed float64
}

// Validate checks the profile for obviously broken parameters.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without a name")
	}
	if p.Pattern == nil {
		return fmt.Errorf("workload: profile %s has no pattern", p.Name)
	}
	if err := validateSpec(p.Pattern); err != nil {
		return fmt.Errorf("workload: profile %s: %v", p.Name, err)
	}
	if p.MemRefsPerKInst <= 0 {
		return fmt.Errorf("workload: profile %s needs MemRefsPerKInst > 0", p.Name)
	}
	if p.StoreFrac < 0 || p.StoreFrac > 1 {
		return fmt.Errorf("workload: profile %s has StoreFrac %v", p.Name, p.StoreFrac)
	}
	if p.MLP < 1 && p.MLP != 0 {
		return fmt.Errorf("workload: profile %s has MLP %v < 1", p.Name, p.MLP)
	}
	if p.L1IMPKI < 0 {
		return fmt.Errorf("workload: profile %s has negative L1IMPKI", p.Name)
	}
	if p.CodeLines < 0 || p.CodeLines > MB(2) {
		return fmt.Errorf("workload: profile %s CodeLines %d out of [0, 2MB]", p.Name, p.CodeLines)
	}
	return nil
}

// codeLines returns the instruction footprint, defaulting to 256kB.
func (p *Profile) codeLines() int {
	if p.CodeLines > 0 {
		return p.CodeLines
	}
	return MB(0.25)
}

// codeBase places the code region near the top of the profile's 64MB
// address window, clear of every data component.
func (p *Profile) codeBase() mem.LineAddr {
	return p.BaseLine + mem.LineAddr(MB(62))
}

// Stream returns a fresh deterministic access stream for the profile.
// Successive calls return identical streams.
func (p *Profile) Stream() trace.Stream {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &profileStream{
		prof:    p,
		visitor: p.Pattern.build(p.Seed, p.BaseLine),
		gap:     1000 / p.MemRefsPerKInst,
		rng:     splitmix64(p.Seed ^ 0x57ea),
	}
}

// Trace materializes n accesses of the profile's stream.
func (p *Profile) Trace(n int) []mem.Access {
	return trace.Collect(p.Stream(), n)
}

// Values returns the deterministic memory-content model for the profile.
func (p *Profile) Values() *values.Model {
	return values.NewModel(p.Seed^0xda7a, p.ValueMix)
}

// profileStream expands line visits into word accesses, paces Instret so
// the configured references-per-kilo-instruction rate holds, and marks a
// StoreFrac fraction of accesses as writes.
type profileStream struct {
	prof    *Profile
	visitor visitor
	pending visit
	idx     int
	gap     float64 // instructions per access
	gapAcc  float64
	rng     uint64

	// Instruction-fetch state: ifetchAcc accumulates expected L1I
	// misses (L1IMPKI per 1000 instructions); when it crosses 1, the
	// next access emitted is an instruction fetch cycling over the code
	// region.
	ifetchAcc float64
	codePos   int
}

// Next emits the stream's next access. This is the workload side of
// the simulation hot path: one call per simulated access, so it must
// stay allocation-free.
//
//ldis:noalloc
func (s *profileStream) Next() (mem.Access, bool) {
	if s.ifetchAcc >= 1 {
		s.ifetchAcc--
		line := s.prof.codeBase() + mem.LineAddr(s.codePos)
		s.codePos++
		if s.codePos >= s.prof.codeLines() {
			s.codePos = 0
		}
		a := line.WordAddr(0)
		return mem.Access{Addr: a, PC: a, Kind: mem.IFetch}, true
	}
	if s.idx >= len(s.pending.words) {
		//ldis:alloc-ok interface dispatch; every next implementation carries its own //ldis:noalloc annotation below
		s.pending = s.visitor.next()
		s.idx = 0
		if len(s.pending.words) == 0 {
			// Defensive: a visit must touch at least one word.
			s.pending.words = firstWordOnly
		}
	}
	w := s.pending.words[s.idx]
	s.idx++

	s.gapAcc += s.gap
	instret := uint32(s.gapAcc)
	s.gapAcc -= float64(instret)
	s.ifetchAcc += float64(instret) * s.prof.L1IMPKI / 1000

	s.rng = splitmix64(s.rng)
	kind := mem.Load
	if float64(s.rng>>11)/(1<<53) < s.prof.StoreFrac {
		kind = mem.Store
	}
	return mem.Access{
		Addr:    s.pending.line.WordAddr(w),
		PC:      s.pending.pc,
		Kind:    kind,
		Instret: instret,
	}, true
}

// NextBatch implements trace.BatchStream natively: the batched
// pipeline calls the concrete Next in a loop, so the per-access
// interface dispatch of the scalar Stream path disappears.
//
//ldis:noalloc
func (s *profileStream) NextBatch(dst []mem.Access) int {
	for i := range dst {
		a, ok := s.Next()
		if !ok {
			return i
		}
		dst[i] = a
	}
	return len(dst)
}

// registry of named profiles, populated in benchmarks.go.
var registry = map[string]*Profile{}

func register(p *Profile) *Profile {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate profile %q", p.Name))
	}
	registry[p.Name] = p
	return p
}

// ByName returns the named profile, or an error listing what exists.
func ByName(name string) (*Profile, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return p, nil
}

// Names lists all registered profiles in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	//ldis:nondet-ok key collection only; the slice is sorted immediately below
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
