package workload

import (
	"ldis/internal/mem"
	"ldis/internal/values"
)

// This file declares one synthetic profile per paper benchmark. The
// shapes are chosen to reproduce, per benchmark, the statistics the
// paper publishes: MPKI and compulsory fraction (Table 2), words used
// per line vs cache size (Figure 1, Table 6), cache-size sensitivity
// (Figure 8, Table 5), and value compressibility (Figure 10a). Absolute
// numbers are approximate by design; the experiments compare *shapes*.
//
// Address regions are spaced 64MB apart per benchmark (the profiles are
// only ever simulated one at a time, but distinct bases exercise tags).

func baseFor(i int) mem.LineAddr { return mem.LineAddr(i) * mem.LineAddr(MB(64)) }

// Paper-ordered benchmark name lists.
var (
	// MainNames are the 16 memory-intensive benchmarks of Table 2, in
	// the paper's column order.
	MainNames = []string{
		"art", "mcf", "twolf", "vpr", "ammp", "galgel", "bzip2", "facerec",
		"parser", "sixtrack", "apsi", "swim", "vortex", "gcc", "wupwise", "health",
	}
	// InsensitiveNames are the cache-insensitive benchmarks of
	// Appendix A (Table 5 plus the four with unchanged MPKI).
	InsensitiveNames = []string{
		"equake", "lucas", "mgrid", "applu", "mesa", "crafty", "gap",
		"gzip", "fma3d", "perlbmk", "eon",
	}
)

// Main returns the 16 memory-intensive profiles in paper order.
func Main() []*Profile {
	out := make([]*Profile, len(MainNames))
	for i, n := range MainNames {
		p, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[i] = p
	}
	return out
}

// Insensitive returns the Appendix A profiles in paper order.
func Insensitive() []*Profile {
	out := make([]*Profile, len(InsensitiveNames))
	for i, n := range InsensitiveNames {
		p, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[i] = p
	}
	return out
}

var (
	// art: a streaming neural-net kernel whose 1.6MB dataset thrashes a
	// 1MB LRU cache, plus a hot 0.4MB kernel. Masks average ~4 words but
	// each visit touches only 2, so words-used grows once lines live
	// longer (Table 6: 1.81 at 1MB -> 3.63 at 2MB) and distilled lines
	// suffer hole-misses (Figure 7).
	_ = register(&Profile{
		Name: "art", Seed: 101, BaseLine: baseFor(0),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.35, RegionLines: MB(1), Spec: TierSpec{
				Tiers: []Tier{{Frac: 1, Lines: MB(0.4)}},
				Words: Counts(0.30, 0.40, 0.15, 0.15), Style: MaskContig, Burst: 2, PCs: 64,
			}},
			{Frac: 0.65, RegionLines: MB(4), Spec: ScanSpec{
				Lines: MB(1.6),
				Words: Counts(0.10, 0.25, 0.25, 0.30, 0.05, 0.05), Style: MaskScatter, Burst: 2, PCs: 32,
			}},
		}},
		MemRefsPerKInst: 105, StoreFrac: 0.12,
		ValueMix: values.Mix{Zero: 0.30, One: 0.02, Half: 0.18, Full: 0.50},
		BaseCPI:  0.28, BranchPerKInst: 60, MispredictRate: 0.02, MLP: 4.5, L1IMPKI: 0.1,
		PaperMPKI: 38.3, PaperWordsUsed: 1.81,
	})

	// mcf: pointer-chasing over an 8MB graph; very low spatial locality
	// (1.83 words), nearly every access misses (MPKI 136), and misses
	// barely overlap (MLP ~1.3).
	_ = register(&Profile{
		Name: "mcf", Seed: 102, BaseLine: baseFor(1),
		Pattern: TierSpec{
			Tiers: []Tier{{Frac: 0.10, Lines: MB(0.5)}, {Frac: 0.90, Lines: MB(8)}},
			Words: Counts(0.60, 0.25, 0.07, 0.04, 0, 0, 0, 0.04), Style: MaskScatter, PCs: 128,
		},
		MemRefsPerKInst: 285, StoreFrac: 0.10,
		ValueMix: values.Mix{Zero: 0.62, One: 0.06, Half: 0.22, Full: 0.10},
		BaseCPI:  0.30, BranchPerKInst: 180, MispredictRate: 0.05, MLP: 1.3, L1IMPKI: 0.1,
		PaperMPKI: 136, PaperWordsUsed: 1.83,
	})

	// twolf: place-and-route with a ~0.9MB hot core and a 1.8MB total
	// set; moderate spatial locality (3.24 words).
	_ = register(&Profile{
		Name: "twolf", Seed: 103, BaseLine: baseFor(2),
		Pattern: TierSpec{
			Tiers: []Tier{{Frac: 0.90, Lines: MB(0.85)}, {Frac: 0.10, Lines: MB(1.6)}},
			Words: Counts(0.20, 0.25, 0.20, 0.17, 0.10, 0.08), Style: MaskScatter, PCs: 256,
		},
		MemRefsPerKInst: 125, StoreFrac: 0.20,
		ValueMix: values.Mix{Zero: 0.25, One: 0.05, Half: 0.30, Full: 0.40},
		BaseCPI:  0.35, BranchPerKInst: 160, MispredictRate: 0.06, MLP: 1.8, L1IMPKI: 0.3,
		PaperMPKI: 3.6, PaperWordsUsed: 3.24,
	})

	// vpr: like twolf but word usage grows strongly with residency
	// (3.71 -> 6.09): masks average ~6 words, visits touch 2.
	_ = register(&Profile{
		Name: "vpr", Seed: 104, BaseLine: baseFor(3),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.90, RegionLines: MB(1), Spec: TierSpec{
				Tiers: []Tier{{Frac: 1, Lines: MB(0.45)}},
				Words: Counts(0.05, 0.15, 0.20, 0.20, 0.15, 0.10, 0.05, 0.10), Style: MaskContig, Burst: 3, PCs: 256,
			}},
			{Frac: 0.10, RegionLines: MB(3), Spec: ScanSpec{
				Lines: MB(1.3), Words: Counts(0.07, 0.22, 0.23, 0.18, 0.12, 0.08, 0.05, 0.05), Style: MaskContig, Burst: 3, PCs: 64,
			}},
		}},
		MemRefsPerKInst: 85, StoreFrac: 0.18,
		ValueMix: values.Mix{Zero: 0.25, One: 0.04, Half: 0.26, Full: 0.45},
		BaseCPI:  0.35, BranchPerKInst: 150, MispredictRate: 0.07, MLP: 1.8, L1IMPKI: 0.2,
		PaperMPKI: 2.2, PaperWordsUsed: 3.71,
	})

	// ammp: molecular dynamics; low words used (2.40), working set a
	// little over 1MB, large LDIS gain (Figure 6).
	_ = register(&Profile{
		Name: "ammp", Seed: 105, BaseLine: baseFor(4),
		Pattern: TierSpec{
			Tiers: []Tier{{Frac: 0.90, Lines: MB(0.85)}, {Frac: 0.10, Lines: MB(1.7)}},
			Words: Counts(0.40, 0.25, 0.20, 0.10, 0.05), Style: MaskScatter, PCs: 128,
		},
		MemRefsPerKInst: 70, StoreFrac: 0.15,
		ValueMix: values.Mix{Zero: 0.20, One: 0.02, Half: 0.18, Full: 0.60},
		BaseCPI:  0.32, BranchPerKInst: 80, MispredictRate: 0.02, MLP: 2.2, L1IMPKI: 0.1,
		PaperMPKI: 2.8, PaperWordsUsed: 2.40,
	})

	// galgel: dense FP kernels, nearly every word used (7.60); LDIS has
	// little to filter.
	_ = register(&Profile{
		Name: "galgel", Seed: 106, BaseLine: baseFor(5),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.86, RegionLines: MB(1), Spec: TierSpec{
				Tiers: []Tier{{Frac: 1, Lines: MB(0.45)}},
				Words: Counts(0, 0, 0, 0.10, 0, 0.05, 0.10, 0.75), Style: MaskContig, PCs: 64,
			}},
			{Frac: 0.14, RegionLines: MB(4), Spec: ScanSpec{
				Lines: MB(2.2), Words: Counts(0, 0, 0, 0.10, 0, 0.05, 0.10, 0.75), Style: MaskContig, PCs: 16,
			}},
		}},
		MemRefsPerKInst: 260, StoreFrac: 0.25,
		ValueMix: values.FloatLike,
		BaseCPI:  0.30, BranchPerKInst: 40, MispredictRate: 0.01, MLP: 5.0, L1IMPKI: 0.05,
		PaperMPKI: 4.7, PaperWordsUsed: 7.60,
	})

	// bzip2: word usage grows with capacity (4.13 -> 6.13) so eager
	// distillation backfires; the reverter must step in (Figure 6).
	_ = register(&Profile{
		Name: "bzip2", Seed: 107, BaseLine: baseFor(6),
		Pattern: TierSpec{
			Tiers: []Tier{{Frac: 0.94, Lines: MB(0.8)}, {Frac: 0.06, Lines: MB(2.0)}},
			Words: Counts(0.03, 0.07, 0.10, 0.10, 0.10, 0.15, 0.15, 0.30), Style: MaskContig, Burst: 3, PCs: 128,
		},
		MemRefsPerKInst: 110, StoreFrac: 0.25,
		ValueMix: values.Mix{Zero: 0.15, One: 0.05, Half: 0.25, Full: 0.55},
		BaseCPI:  0.33, BranchPerKInst: 140, MispredictRate: 0.05, MLP: 2.5, L1IMPKI: 0.05,
		PaperMPKI: 2.4, PaperWordsUsed: 4.13,
	})

	// facerec: FP streaming with high words used (7.01) and 18%
	// compulsory misses; distill ~ a 1.5MB traditional cache (Figure 8).
	_ = register(&Profile{
		Name: "facerec", Seed: 108, BaseLine: baseFor(7),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.85, RegionLines: MB(1), Spec: TierSpec{
				Tiers: []Tier{{Frac: 1, Lines: MB(0.45)}},
				Words: Counts(0.04, 0.04, 0.04, 0.04, 0.04, 0.05, 0.15, 0.60), Style: MaskContig, PCs: 64,
			}},
			{Frac: 0.12, RegionLines: MB(2), Spec: ScanSpec{
				Lines: MB(1.2), Words: Counts(0.04, 0.04, 0.04, 0.04, 0.04, 0.05, 0.15, 0.60), Style: MaskContig, PCs: 16,
			}},
			{Frac: 0.03, RegionLines: MB(32), Spec: ScanSpec{
				Lines: MB(24), Words: Counts(0, 0, 0, 0.1, 0, 0, 0.2, 0.7), Style: MaskContig, PCs: 16,
			}},
		}},
		MemRefsPerKInst: 230, StoreFrac: 0.15,
		ValueMix: values.FloatLike,
		BaseCPI:  0.30, BranchPerKInst: 50, MispredictRate: 0.015, MLP: 4.0, L1IMPKI: 0.05,
		PaperMPKI: 4.8, PaperWordsUsed: 7.01,
	})

	// parser: dictionary walks; words used grows 6.01 -> 7.59, another
	// reverter client.
	_ = register(&Profile{
		Name: "parser", Seed: 109, BaseLine: baseFor(8),
		Pattern: TierSpec{
			Tiers: []Tier{{Frac: 0.88, Lines: MB(0.8)}, {Frac: 0.12, Lines: MB(1.8)}},
			Words: Counts(0.02, 0.03, 0.05, 0.10, 0.10, 0.15, 0.20, 0.35), Style: MaskContig, Burst: 4, PCs: 256,
		},
		MemRefsPerKInst: 95, StoreFrac: 0.20,
		ValueMix: values.HighlyCompressible,
		BaseCPI:  0.35, BranchPerKInst: 170, MispredictRate: 0.06, MLP: 1.6, L1IMPKI: 0.2,
		PaperMPKI: 1.6, PaperWordsUsed: 6.42,
	})

	// sixtrack: small working set just over 1MB with moderate word use
	// (4.34, stable) — LDIS shines (Figure 6, >40%).
	_ = register(&Profile{
		Name: "sixtrack", Seed: 110, BaseLine: baseFor(9),
		Pattern: TierSpec{
			Tiers: []Tier{{Frac: 0.94, Lines: MB(0.85)}, {Frac: 0.06, Lines: MB(1.4)}},
			Words: Counts(0.15, 0.25, 0.15, 0.20, 0.10, 0.05, 0.05, 0.05), Style: MaskContig, PCs: 64,
		},
		MemRefsPerKInst: 60, StoreFrac: 0.20,
		ValueMix: values.HighlyCompressible,
		BaseCPI:  0.30, BranchPerKInst: 60, MispredictRate: 0.02, MLP: 2.0, L1IMPKI: 0.05,
		PaperMPKI: 0.4, PaperWordsUsed: 4.34,
	})

	// apsi: high words used (7.80), small miss rate, modest LDIS effect.
	_ = register(&Profile{
		Name: "apsi", Seed: 111, BaseLine: baseFor(10),
		// apsi: a hot set that fits even the smallest LOC under study
		// (5 ways = 0.625MB) plus a long compulsory stream. This keeps
		// LDIS neutral at every configuration, matching the paper's
		// near-zero apsi bars, while the stream's evictions supply the
		// words-used statistics (7.8 words on average).
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.988, RegionLines: MB(1), Spec: TierSpec{
				Tiers: []Tier{{Frac: 1, Lines: MB(0.58)}},
				Words: Counts(0.02, 0.02, 0.02, 0.04, 0, 0.05, 0.10, 0.75), Style: MaskContig, PCs: 64,
			}},
			{Frac: 0.012, RegionLines: MB(16), Spec: ScanSpec{
				Lines: MB(14), Words: Counts(0.02, 0.02, 0.02, 0.04, 0, 0.05, 0.10, 0.75), Style: MaskContig, PCs: 8,
			}},
		}},
		MemRefsPerKInst: 200, StoreFrac: 0.25,
		ValueMix: values.FloatLike,
		BaseCPI:  0.30, BranchPerKInst: 45, MispredictRate: 0.012, MLP: 4.5, L1IMPKI: 0.1,
		PaperMPKI: 0.3, PaperWordsUsed: 7.80,
	})

	// swim: the adversarial two-phase pattern described in Section 7.1 —
	// first touch uses one word, a ~0.7MB/~1.1MB reuse distance later a
	// second touch uses all eight. Distillation discards words that are
	// about to be used; the reverter must disable LDIS.
	_ = register(&Profile{
		Name: "swim", Seed: 112, BaseLine: baseFor(11),
		Pattern: TwoPhaseSpec{
			// Both phases promote lines, so the LRU reuse distance is
			// about twice the gap: 0.35MB ~ fits a 1MB cache, 0.55MB
			// needs ~1.25MB (Table 6: swim's words jump to 7.98 there).
			Lines:         MB(4),
			GapShortLines: MB(0.35),
			GapLongLines:  MB(0.55),
			LongFrac:      0.20,
			PCs:           16,
		},
		MemRefsPerKInst: 175, StoreFrac: 0.30,
		ValueMix: values.FloatLike,
		BaseCPI:  0.28, BranchPerKInst: 25, MispredictRate: 0.01, MLP: 6.0, L1IMPKI: 0.02,
		PaperMPKI: 26.6, PaperWordsUsed: 6.91,
	})

	// vortex: OO database, 53% compulsory, low words used (3.04).
	_ = register(&Profile{
		Name: "vortex", Seed: 113, BaseLine: baseFor(12),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.992, RegionLines: MB(1.5), Spec: TierSpec{
				Tiers: []Tier{{Frac: 0.97, Lines: MB(0.55)}, {Frac: 0.03, Lines: MB(1.15)}},
				Words: Counts(0.30, 0.25, 0.20, 0.10, 0.05, 0.05, 0, 0.05), Style: MaskScatter, PCs: 512,
			}},
			{Frac: 0.008, RegionLines: MB(48), Spec: ScanSpec{
				Lines: MB(40), Words: Counts(0.30, 0.25, 0.20, 0.10, 0.05, 0.05, 0, 0.05),
				Style: MaskScatter, PCs: 64,
			}},
		}},
		MemRefsPerKInst: 100, StoreFrac: 0.30,
		ValueMix: values.PointerLike,
		BaseCPI:  0.35, BranchPerKInst: 160, MispredictRate: 0.03, MLP: 1.8, L1IMPKI: 0.4,
		PaperMPKI: 0.7, PaperWordsUsed: 3.04,
	})

	// gcc: 77% compulsory, instruction-cache intensive (its IPC dips
	// with the distill cache's extra tag cycle, Section 7.4).
	_ = register(&Profile{
		Name: "gcc", Seed: 114, BaseLine: baseFor(13),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.975, RegionLines: MB(1), Spec: TierSpec{
				Tiers: []Tier{{Frac: 1, Lines: MB(0.4)}},
				Words: Counts(0.05, 0.05, 0.05, 0.10, 0.10, 0.15, 0.20, 0.30), Style: MaskContig, PCs: 512,
			}},
			{Frac: 0.025, RegionLines: MB(32), Spec: ScanSpec{
				Lines: MB(28), Words: Counts(0.05, 0.05, 0.05, 0.10, 0.10, 0.15, 0.20, 0.30),
				Style: MaskContig, PCs: 128,
			}},
		}},
		MemRefsPerKInst: 90, StoreFrac: 0.30, CodeLines: MB(0.125),
		ValueMix: values.HighlyCompressible,
		BaseCPI:  0.40, BranchPerKInst: 200, MispredictRate: 0.05, MLP: 2.0, L1IMPKI: 8.0,
		PaperMPKI: 0.4, PaperWordsUsed: 6.38,
	})

	// wupwise: pure streaming, 83% compulsory, 7.01 words used at every
	// cache size — nothing for LDIS to win or lose.
	_ = register(&Profile{
		Name: "wupwise", Seed: 115, BaseLine: baseFor(14),
		Pattern: ScanSpec{
			Lines: MB(48), Words: Counts(0, 0, 0, 0.05, 0.05, 0.10, 0.45, 0.35),
			Style: MaskContig, PCs: 16,
		},
		MemRefsPerKInst: 18, StoreFrac: 0.20,
		ValueMix: values.FloatLike,
		BaseCPI:  0.28, BranchPerKInst: 30, MispredictRate: 0.008, MLP: 5.0, L1IMPKI: 0.05,
		PaperMPKI: 2.3, PaperWordsUsed: 7.01,
	})

	// health (olden): linked-list hospital simulation; tiny words used
	// (2.44 at every size), ~2.75MB of lists, serial chase (MLP ~1.1).
	// Distillation beats even a 2MB traditional cache (Figure 8).
	_ = register(&Profile{
		Name: "health", Seed: 116, BaseLine: baseFor(15),
		Pattern: TierSpec{
			Tiers: []Tier{{Frac: 0.15, Lines: MB(0.25)}, {Frac: 0.85, Lines: MB(3.0)}},
			Words: Counts(0.50, 0.23, 0.12, 0.09, 0.03, 0.03), Style: MaskScatter, PCs: 32,
		},
		MemRefsPerKInst: 205, StoreFrac: 0.15,
		ValueMix: values.PointerLike,
		BaseCPI:  0.32, BranchPerKInst: 150, MispredictRate: 0.03, MLP: 1.1, L1IMPKI: 0.02,
		PaperMPKI: 62, PaperWordsUsed: 2.44,
	})
)

// Cache-insensitive benchmarks (Appendix A). Streaming profiles whose
// misses are compulsory (so capacity does not matter) or tiny working
// sets that always fit.
var (
	_ = register(&Profile{
		Name: "equake", Seed: 201, BaseLine: baseFor(16),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.92, RegionLines: MB(56), Spec: ScanSpec{Lines: MB(56), Words: Counts(0, 0, 0, 0.2, 0, 0.2, 0.2, 0.4), Style: MaskContig, PCs: 16}},
			{Frac: 0.08, RegionLines: MB(8), Spec: TierSpec{Tiers: []Tier{{Frac: 1, Lines: MB(6)}}, Words: SingleCount(8), PCs: 16}},
		}},
		MemRefsPerKInst: 140, StoreFrac: 0.2, ValueMix: values.FloatLike,
		BaseCPI: 0.3, BranchPerKInst: 40, MispredictRate: 0.01, MLP: 5, L1IMPKI: 0.05,
		PaperMPKI: 18.42, PaperWordsUsed: 7,
	})
	_ = register(&Profile{
		Name: "lucas", Seed: 202, BaseLine: baseFor(17),
		Pattern:         ScanSpec{Lines: MB(60), Words: SingleCount(8), PCs: 8},
		MemRefsPerKInst: 130, StoreFrac: 0.25, ValueMix: values.FloatLike,
		BaseCPI: 0.28, BranchPerKInst: 20, MispredictRate: 0.005, MLP: 6, L1IMPKI: 0.02,
		PaperMPKI: 16.17, PaperWordsUsed: 8,
	})
	_ = register(&Profile{
		Name: "mgrid", Seed: 203, BaseLine: baseFor(18),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.95, RegionLines: MB(54), Spec: ScanSpec{Lines: MB(54), Words: SingleCount(8), PCs: 8}},
			{Frac: 0.05, RegionLines: MB(8), Spec: TierSpec{Tiers: []Tier{{Frac: 1, Lines: MB(5)}}, Words: SingleCount(8), PCs: 8}},
		}},
		MemRefsPerKInst: 62, StoreFrac: 0.2, ValueMix: values.FloatLike,
		BaseCPI: 0.28, BranchPerKInst: 15, MispredictRate: 0.005, MLP: 6, L1IMPKI: 0.02,
		PaperMPKI: 7.73, PaperWordsUsed: 8,
	})
	_ = register(&Profile{
		Name: "applu", Seed: 204, BaseLine: baseFor(19),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.94, RegionLines: MB(54), Spec: ScanSpec{Lines: MB(54), Words: SingleCount(8), PCs: 8}},
			{Frac: 0.06, RegionLines: MB(8), Spec: TierSpec{Tiers: []Tier{{Frac: 1, Lines: MB(6)}}, Words: SingleCount(8), PCs: 8}},
		}},
		MemRefsPerKInst: 110, StoreFrac: 0.25, ValueMix: values.FloatLike,
		BaseCPI: 0.28, BranchPerKInst: 20, MispredictRate: 0.005, MLP: 5.5, L1IMPKI: 0.02,
		PaperMPKI: 13.75, PaperWordsUsed: 8,
	})
	_ = register(&Profile{
		Name: "mesa", Seed: 205, BaseLine: baseFor(20),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.97, RegionLines: MB(1), Spec: TierSpec{Tiers: []Tier{{Frac: 1, Lines: MB(0.4)}}, Words: Counts(0, 0, 0, 0.3, 0, 0.3, 0, 0.4), Style: MaskContig, PCs: 64}},
			{Frac: 0.03, RegionLines: MB(32), Spec: ScanSpec{Lines: MB(24), Words: SingleCount(8), PCs: 8}},
		}},
		MemRefsPerKInst: 150, StoreFrac: 0.3, ValueMix: values.Mix{Zero: 0.2, Half: 0.2, Full: 0.6},
		BaseCPI: 0.32, BranchPerKInst: 90, MispredictRate: 0.02, MLP: 3, L1IMPKI: 0.3,
		PaperMPKI: 0.62, PaperWordsUsed: 6.5,
	})
	_ = register(&Profile{
		Name: "crafty", Seed: 206, BaseLine: baseFor(21),
		Pattern: TierSpec{Tiers: []Tier{{Frac: 1, Lines: MB(0.6)}},
			Words: Counts(0.1, 0.2, 0.2, 0.2, 0.1, 0.1, 0.05, 0.05), Style: MaskScatter, PCs: 512},
		MemRefsPerKInst: 120, StoreFrac: 0.2, ValueMix: values.PointerLike,
		BaseCPI: 0.35, BranchPerKInst: 180, MispredictRate: 0.06, MLP: 1.5, L1IMPKI: 1.5,
		PaperMPKI: 0.09, PaperWordsUsed: 4,
	})
	_ = register(&Profile{
		Name: "gap", Seed: 207, BaseLine: baseFor(22),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.9, RegionLines: MB(1), Spec: TierSpec{Tiers: []Tier{{Frac: 1, Lines: MB(0.5)}}, Words: Counts(0.1, 0.2, 0.2, 0.2, 0.1, 0.1, 0.05, 0.05), Style: MaskScatter, PCs: 128}},
			{Frac: 0.1, RegionLines: MB(48), Spec: ScanSpec{Lines: MB(40), Words: Counts(0, 0.3, 0, 0.4, 0, 0, 0, 0.3), Style: MaskContig, PCs: 16}},
		}},
		MemRefsPerKInst: 130, StoreFrac: 0.25, ValueMix: values.PointerLike,
		BaseCPI: 0.33, BranchPerKInst: 130, MispredictRate: 0.03, MLP: 2, L1IMPKI: 0.2,
		PaperMPKI: 1.65, PaperWordsUsed: 4,
	})
	_ = register(&Profile{
		Name: "gzip", Seed: 208, BaseLine: baseFor(23),
		Pattern: MixSpec{Components: []Component{
			{Frac: 0.85, RegionLines: MB(1), Spec: TierSpec{Tiers: []Tier{{Frac: 1, Lines: MB(0.3)}}, Words: Counts(0, 0.1, 0.1, 0.2, 0.1, 0.2, 0.1, 0.2), Style: MaskContig, PCs: 64}},
			{Frac: 0.15, RegionLines: MB(48), Spec: ScanSpec{Lines: MB(40), Words: SingleCount(8), PCs: 8}},
		}},
		MemRefsPerKInst: 120, StoreFrac: 0.25, ValueMix: values.Mix{Zero: 0.1, Half: 0.2, Full: 0.7},
		BaseCPI: 0.32, BranchPerKInst: 140, MispredictRate: 0.04, MLP: 2.5, L1IMPKI: 0.05,
		PaperMPKI: 1.45, PaperWordsUsed: 6,
	})
	_ = register(&Profile{
		Name: "fma3d", Seed: 209, BaseLine: baseFor(24),
		Pattern:         ScanSpec{Lines: MB(56), Words: Counts(0, 0, 0, 0.2, 0, 0.2, 0.2, 0.4), Style: MaskContig, PCs: 16},
		MemRefsPerKInst: 40, StoreFrac: 0.25, ValueMix: values.FloatLike,
		BaseCPI: 0.3, BranchPerKInst: 40, MispredictRate: 0.01, MLP: 4, L1IMPKI: 0.4,
		PaperMPKI: 4.61, PaperWordsUsed: 7,
	})
	_ = register(&Profile{
		Name: "perlbmk", Seed: 210, BaseLine: baseFor(25),
		Pattern: TierSpec{Tiers: []Tier{{Frac: 1, Lines: MB(0.4)}},
			Words: Counts(0.1, 0.2, 0.2, 0.2, 0.1, 0.1, 0.05, 0.05), Style: MaskScatter, PCs: 512},
		MemRefsPerKInst: 140, StoreFrac: 0.3, ValueMix: values.PointerLike,
		BaseCPI: 0.35, BranchPerKInst: 170, MispredictRate: 0.04, MLP: 1.5, L1IMPKI: 1.0,
		PaperMPKI: 0.04, PaperWordsUsed: 4,
	})
	_ = register(&Profile{
		Name: "eon", Seed: 211, BaseLine: baseFor(26),
		Pattern: TierSpec{Tiers: []Tier{{Frac: 1, Lines: MB(0.3)}},
			Words: Counts(0, 0.1, 0.1, 0.2, 0.2, 0.2, 0.1, 0.1), Style: MaskContig, PCs: 256},
		MemRefsPerKInst: 150, StoreFrac: 0.3, ValueMix: values.Mix{Zero: 0.15, Half: 0.2, Full: 0.65},
		BaseCPI: 0.33, BranchPerKInst: 120, MispredictRate: 0.03, MLP: 2, L1IMPKI: 0.8,
		PaperMPKI: 0.01, PaperWordsUsed: 5,
	})
)
