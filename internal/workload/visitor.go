package workload

import (
	"fmt"

	"ldis/internal/mem"
)

// A visit is one touch of a line: the words accessed (in order) and the
// PC of the instruction stream region issuing it.
type visit struct {
	line  mem.LineAddr
	words []int
	pc    mem.Addr
}

// visitor produces an endless sequence of line visits. Implementations
// are deterministic given their construction seed.
type visitor interface {
	next() visit
}

// VisitorSpec describes an access pattern; build instantiates it against
// a seed and region base. Specs are plain data so profiles can be
// declared as literals.
type VisitorSpec interface {
	build(seed uint64, base mem.LineAddr) visitor
}

// burstState tracks, per visitor, which portion of a line's mask each
// visit touches. With Burst >= 8 a visit touches the whole mask; smaller
// bursts rotate through the mask across visits, modelling references
// that discover a line's words gradually (this is what makes footprints
// change at deeper recency positions in Figure 2).
type burstState struct {
	seed  uint64
	dist  WordCountDist
	style MaskStyle
	burst int
	// visitCount rotates the burst window per line without per-line
	// storage: the rotation is derived from a global counter so repeated
	// visits see different windows.
	visitCount uint64
	// Scratch buffers reused across visits; callers consume the returned
	// slice before the next call, so the visit hot path never allocates.
	maskBuf [mem.WordsPerLine]int
	winBuf  [mem.WordsPerLine]int
}

func (b *burstState) wordsOf(line mem.LineAddr) []int {
	mask := maskFor(b.seed, line, b.dist, b.style)
	ws := mask.AppendWords(b.maskBuf[:0])
	b.visitCount++
	if b.burst <= 0 || b.burst >= len(ws) {
		return ws
	}
	// Rotate a window of size burst through the mask, advancing with
	// each visit so successive visits to a line touch fresh words.
	start := int((b.visitCount ^ splitmix64(uint64(line))) % uint64(len(ws)))
	out := b.winBuf[:0]
	for i := 0; i < b.burst; i++ {
		out = append(out, ws[(start+i)%len(ws)])
	}
	return out
}

// ---------------------------------------------------------------------
// Tiered working set
// ---------------------------------------------------------------------

// Tier is one nested level of a tiered working set: Frac of the visits
// go to the first Lines lines of the region. Tiers should be ordered
// hottest (smallest) first; any residual probability falls through to
// the last tier.
type Tier struct {
	Frac  float64
	Lines int
}

// TierSpec models a skewed working set (the common shape of the SPEC
// integer benchmarks): a hierarchy of nested hot sets. Cache-size
// sensitivity comes from tier sizes straddling the cache capacities
// under study.
type TierSpec struct {
	Tiers []Tier
	Words WordCountDist
	Style MaskStyle
	Burst int // words touched per visit; 0 or >=8 means the whole mask
	PCs   int // distinct PC values attributed to visits (min 1)
}

func (s TierSpec) build(seed uint64, base mem.LineAddr) visitor {
	if len(s.Tiers) == 0 {
		panic("workload: TierSpec needs at least one tier")
	}
	return &tierVisitor{
		spec: s,
		base: base,
		bs:   burstState{seed: seed, dist: s.Words, style: s.Style, burst: s.Burst},
		rng:  splitmix64(seed ^ 0x7115),
	}
}

type tierVisitor struct {
	spec TierSpec
	base mem.LineAddr
	bs   burstState
	rng  uint64
}

func (v *tierVisitor) nextU64() uint64 {
	v.rng = splitmix64(v.rng)
	return v.rng
}

//ldis:noalloc
func (v *tierVisitor) next() visit {
	u := float64(v.nextU64()>>11) / (1 << 53)
	tier := v.spec.Tiers[len(v.spec.Tiers)-1]
	acc := 0.0
	for _, t := range v.spec.Tiers {
		acc += t.Frac
		if u < acc {
			tier = t
			break
		}
	}
	n := tier.Lines
	if n < 1 {
		n = 1
	}
	line := v.base + mem.LineAddr(v.nextU64()%uint64(n))
	pcs := v.spec.PCs
	if pcs < 1 {
		pcs = 1
	}
	pc := mem.Addr(0x400000) + mem.Addr(splitmix64(uint64(line))%uint64(pcs))*4
	return visit{line: line, words: v.bs.wordsOf(line), pc: pc}
}

// ---------------------------------------------------------------------
// Cyclic scan
// ---------------------------------------------------------------------

// ScanSpec models streaming/array codes: a sequential pass over Lines
// lines repeated cyclically (thrashing an LRU cache whenever the region
// exceeds capacity). Stride skips lines, modelling large-element
// traversal.
type ScanSpec struct {
	Lines  int
	Stride int // in lines; 0 means 1
	Words  WordCountDist
	Style  MaskStyle
	Burst  int
	PCs    int
}

func (s ScanSpec) build(seed uint64, base mem.LineAddr) visitor {
	if s.Lines <= 0 {
		panic("workload: ScanSpec needs Lines > 0")
	}
	stride := s.Stride
	if stride <= 0 {
		stride = 1
	}
	return &scanVisitor{
		spec:   s,
		stride: stride,
		base:   base,
		bs:     burstState{seed: seed, dist: s.Words, style: s.Style, burst: s.Burst},
	}
}

type scanVisitor struct {
	spec   ScanSpec
	stride int
	base   mem.LineAddr
	pos    int
	lap    uint64
	bs     burstState
}

//ldis:noalloc
func (v *scanVisitor) next() visit {
	line := v.base + mem.LineAddr(v.pos)
	v.pos += v.stride
	if v.pos >= v.spec.Lines {
		v.pos = 0
		v.lap++
	}
	pcs := v.spec.PCs
	if pcs < 1 {
		pcs = 1
	}
	pc := mem.Addr(0x500000) + mem.Addr(splitmix64(uint64(line)>>4)%uint64(pcs))*4
	return visit{line: line, words: v.bs.wordsOf(line), pc: pc}
}

// ---------------------------------------------------------------------
// Two-phase footprint growth (the swim pattern)
// ---------------------------------------------------------------------

// TwoPhaseSpec reproduces the behaviour the paper singles out for swim
// (Section 7.1): a first touch uses one word of a line, and a second
// touch — a reuse distance later — uses all of them. When the second
// touch arrives before eviction the line's footprint becomes full; when
// the cache is too small, lines are evicted showing a single used word,
// which is exactly the situation where distillation backfires (the
// discarded words are referenced soon after, causing hole-misses).
//
// A LongFrac fraction of lines get the long reuse gap (GapLongLines),
// the rest the short gap (GapShortLines). Gaps are measured in lines of
// the scan, i.e. roughly in bytes/64 of reuse distance.
type TwoPhaseSpec struct {
	Lines         int
	GapShortLines int
	GapLongLines  int
	LongFrac      float64
	PCs           int
}

func (s TwoPhaseSpec) build(seed uint64, base mem.LineAddr) visitor {
	if s.Lines <= 0 {
		panic("workload: TwoPhaseSpec needs Lines > 0")
	}
	return &twoPhaseVisitor{spec: s, base: base, seed: seed}
}

type twoPhaseVisitor struct {
	spec  TwoPhaseSpec
	base  mem.LineAddr
	seed  uint64
	pos   int
	phase bool // alternate first-touch / full-touch visits
}

// Shared read-only word lists for the two-phase visitor's two visit
// shapes; consumers never mutate visit.words.
var (
	firstWordOnly = []int{0}
	fullLineWords = []int{0, 1, 2, 3, 4, 5, 6, 7}
)

//ldis:noalloc
func (v *twoPhaseVisitor) next() visit {
	pcs := v.spec.PCs
	if pcs < 1 {
		pcs = 1
	}
	if !v.phase {
		// First touch of line at pos: one word.
		v.phase = true
		line := v.base + mem.LineAddr(v.pos%v.spec.Lines)
		pc := mem.Addr(0x600000)
		return visit{line: line, words: firstWordOnly, pc: pc}
	}
	// Full touch of the line a gap behind.
	v.phase = false
	gap := v.spec.GapShortLines
	lineIdx := v.pos - gap
	h := splitmix64(uint64(v.pos-v.spec.GapLongLines) ^ v.seed)
	if float64(h>>11)/(1<<53) < v.spec.LongFrac {
		gap = v.spec.GapLongLines
		lineIdx = v.pos - gap
	}
	v.pos++
	if lineIdx < 0 {
		lineIdx += v.spec.Lines // wrap during warm-up
	}
	line := v.base + mem.LineAddr(lineIdx%v.spec.Lines)
	pc := mem.Addr(0x600100) + mem.Addr(splitmix64(uint64(line))%uint64(pcs))*4
	return visit{line: line, words: fullLineWords, pc: pc}
}

// ---------------------------------------------------------------------
// Mixtures
// ---------------------------------------------------------------------

// Component weights one sub-pattern of a mixture.
type Component struct {
	Frac float64
	Spec VisitorSpec
	// BaseOffsetLines places this component's region after the previous
	// component regions; if zero the component starts at the profile
	// base plus the cumulative offset chosen by MixSpec.
	RegionLines int
}

// MixSpec interleaves several sub-patterns, each in its own address
// region, chosen per visit with the given probabilities. It models
// programs with distinct phases/data structures (e.g. art's thrashing
// scan plus a hot computation kernel).
type MixSpec struct {
	Components []Component
}

func (s MixSpec) build(seed uint64, base mem.LineAddr) visitor {
	if len(s.Components) == 0 {
		panic("workload: MixSpec needs components")
	}
	mv := &mixVisitor{seed: splitmix64(seed ^ 0xa11ce)}
	offset := mem.LineAddr(0)
	for i, c := range s.Components {
		mv.fracs = append(mv.fracs, c.Frac)
		mv.subs = append(mv.subs, c.Spec.build(splitmix64(seed+uint64(i)*0x9e37), base+offset))
		region := c.RegionLines
		if region <= 0 {
			region = MB(16) // generous default separation
		}
		offset += mem.LineAddr(region)
	}
	return mv
}

type mixVisitor struct {
	fracs []float64
	subs  []visitor
	seed  uint64
}

//ldis:noalloc
func (v *mixVisitor) next() visit {
	v.seed = splitmix64(v.seed)
	u := float64(v.seed>>11) / (1 << 53)
	acc := 0.0
	for i, f := range v.fracs {
		acc += f
		if u < acc {
			//ldis:alloc-ok interface dispatch; every visitor's next carries its own //ldis:noalloc annotation
			return v.subs[i].next()
		}
	}
	//ldis:alloc-ok interface dispatch; every visitor's next carries its own //ldis:noalloc annotation
	return v.subs[len(v.subs)-1].next()
}

// validateSpec sanity-checks a spec tree; used by tests and the profile
// registry.
func validateSpec(s VisitorSpec) error {
	switch t := s.(type) {
	case TierSpec:
		if len(t.Tiers) == 0 {
			return fmt.Errorf("TierSpec without tiers")
		}
		for _, tier := range t.Tiers {
			if tier.Lines <= 0 {
				return fmt.Errorf("tier with %d lines", tier.Lines)
			}
		}
	case ScanSpec:
		if t.Lines <= 0 {
			return fmt.Errorf("ScanSpec with %d lines", t.Lines)
		}
	case TwoPhaseSpec:
		if t.Lines <= 0 {
			return fmt.Errorf("TwoPhaseSpec with %d lines", t.Lines)
		}
		if t.GapShortLines < 0 || t.GapLongLines < 0 {
			return fmt.Errorf("TwoPhaseSpec with negative gap")
		}
	case MixSpec:
		if len(t.Components) == 0 {
			return fmt.Errorf("MixSpec without components")
		}
		for _, c := range t.Components {
			if err := validateSpec(c.Spec); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown spec type %T", s)
	}
	return nil
}
