package workload

import (
	"math"
	"testing"

	"ldis/internal/mem"
	"ldis/internal/trace"
)

func TestWordCountDistMean(t *testing.T) {
	if got := SingleCount(8).Mean(); got != 8 {
		t.Errorf("SingleCount(8).Mean = %v", got)
	}
	if got := UniformWords().Mean(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("UniformWords.Mean = %v, want 4.5", got)
	}
	if got := (WordCountDist{}).Mean(); got != 0 {
		t.Errorf("zero dist Mean = %v", got)
	}
}

func TestSingleCountPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SingleCount(0)
}

func TestDistSample(t *testing.T) {
	d := Counts(0.5, 0, 0, 0, 0, 0, 0, 0.5)
	if got := d.sample(0.2); got != 1 {
		t.Errorf("sample(0.2) = %d, want 1", got)
	}
	if got := d.sample(0.9); got != 8 {
		t.Errorf("sample(0.9) = %d, want 8", got)
	}
	var empty WordCountDist
	if got := empty.sample(0.5); got != mem.WordsPerLine {
		t.Errorf("empty sample = %d", got)
	}
}

func TestMaskForDeterministicAndSized(t *testing.T) {
	d := Counts(0.3, 0.3, 0.2, 0.2)
	for line := mem.LineAddr(0); line < 500; line++ {
		for _, style := range []MaskStyle{MaskContig, MaskStride, MaskScatter} {
			a := maskFor(7, line, d, style)
			b := maskFor(7, line, d, style)
			if a != b {
				t.Fatalf("mask not deterministic for line %d style %d", line, style)
			}
			if a.Count() < 1 || a.Count() > 4 {
				t.Fatalf("mask count %d outside distribution support [1,4]", a.Count())
			}
		}
	}
}

func TestMaskMeanTracksDistribution(t *testing.T) {
	d := Counts(0.5, 0, 0, 0, 0, 0, 0, 0.5) // mean 4.5
	var sum int
	const n = 20000
	for line := mem.LineAddr(0); line < n; line++ {
		sum += maskFor(3, line, d, MaskScatter).Count()
	}
	got := float64(sum) / n
	if math.Abs(got-4.5) > 0.15 {
		t.Errorf("empirical mask mean %.3f, want ~4.5", got)
	}
}

func TestMaskContigIsContiguous(t *testing.T) {
	d := SingleCount(3)
	for line := mem.LineAddr(0); line < 200; line++ {
		f := maskFor(11, line, d, MaskContig)
		ws := f.Words()
		if len(ws) != 3 {
			t.Fatalf("count = %d", len(ws))
		}
		// Contiguous modulo 8: the gaps pattern must be a single run when
		// rotated; check that some rotation makes it consecutive.
		ok := false
		for r := 0; r < mem.WordsPerLine; r++ {
			if f.Has(r) && f.Has((r+1)%8) && f.Has((r+2)%8) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("mask %v not a contiguous run", f)
		}
	}
}

func TestBurstRotationCoversMask(t *testing.T) {
	bs := burstState{seed: 5, dist: SingleCount(8), style: MaskContig, burst: 2}
	line := mem.LineAddr(77)
	seen := mem.Footprint(0)
	for i := 0; i < 64; i++ {
		for _, w := range bs.wordsOf(line) {
			seen = seen.Set(w)
		}
	}
	if seen != mem.FullFootprint {
		t.Errorf("64 burst-2 visits covered only %v", seen)
	}
	// Each visit returns exactly burst words.
	if got := len(bs.wordsOf(line)); got != 2 {
		t.Errorf("burst visit touched %d words", got)
	}
}

func TestProfileStreamDeterminism(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	a := p.Trace(5000)
	b := p.Trace(5000)
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("trace lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestProfileInstretRate(t *testing.T) {
	p, err := ByName("twolf")
	if err != nil {
		t.Fatal(err)
	}
	accs := p.Trace(20000)
	inst := trace.CountInstructions(accs)
	refsPerK := float64(len(accs)) * 1000 / float64(inst)
	if math.Abs(refsPerK-p.MemRefsPerKInst)/p.MemRefsPerKInst > 0.02 {
		t.Errorf("refs/kinst = %.1f, want ~%.1f", refsPerK, p.MemRefsPerKInst)
	}
}

func TestProfileStoreFraction(t *testing.T) {
	p, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	accs := p.Trace(30000)
	stores := 0
	for _, a := range accs {
		if a.Kind == mem.Store {
			stores++
		}
	}
	got := float64(stores) / float64(len(accs))
	if math.Abs(got-p.StoreFrac) > 0.02 {
		t.Errorf("store fraction %.3f, want ~%.2f", got, p.StoreFrac)
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, name := range append(append([]string{}, MainNames...), InsensitiveNames...) {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("missing profile %s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Streams must produce accesses inside the profile's 64MB
		// region window; instruction fetches appear at roughly the
		// profile's L1I miss rate.
		ifetches := 0
		accs := p.Trace(20000)
		for i, a := range accs {
			if a.Line() < p.BaseLine || a.Line() >= p.BaseLine+mem.LineAddr(MB(64)) {
				t.Fatalf("%s access %d outside region window: %v", name, i, a.Line())
			}
			if a.Kind == mem.IFetch {
				ifetches++
			}
		}
		inst := trace.CountInstructions(accs)
		wantIF := float64(inst) * p.L1IMPKI / 1000
		if wantIF > 50 && math.Abs(float64(ifetches)-wantIF)/wantIF > 0.2 {
			t.Errorf("%s: %d ifetches, want ~%.0f", name, ifetches, wantIF)
		}
	}
}

func TestMainAndInsensitiveLists(t *testing.T) {
	if got := len(Main()); got != 16 {
		t.Errorf("Main returned %d profiles", got)
	}
	if got := len(Insensitive()); got != 11 {
		t.Errorf("Insensitive returned %d profiles", got)
	}
	if Main()[0].Name != "art" || Main()[15].Name != "health" {
		t.Error("Main order wrong")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 27 {
		t.Errorf("registry has %d profiles, want 27", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	// Profiles occupy disjoint 64MB windows.
	type span struct {
		name string
		lo   mem.LineAddr
	}
	var spans []span
	for _, n := range Names() {
		p, _ := ByName(n)
		spans = append(spans, span{n, p.BaseLine})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo == spans[j].lo {
				t.Errorf("%s and %s share a base region", spans[i].name, spans[j].name)
			}
		}
	}
}

func TestTwoPhasePattern(t *testing.T) {
	spec := TwoPhaseSpec{Lines: 1000, GapShortLines: 100, GapLongLines: 400, LongFrac: 0.5}
	v := spec.build(3, 0)
	oneWord, fullWord := 0, 0
	for i := 0; i < 2000; i++ {
		vis := v.next()
		switch len(vis.words) {
		case 1:
			oneWord++
		case mem.WordsPerLine:
			fullWord++
		default:
			t.Fatalf("visit with %d words", len(vis.words))
		}
		if vis.line >= mem.LineAddr(spec.Lines) {
			t.Fatalf("visit outside region: %v", vis.line)
		}
	}
	if oneWord != fullWord {
		t.Errorf("phases unbalanced: %d one-word vs %d full", oneWord, fullWord)
	}
}

func TestScanWraps(t *testing.T) {
	spec := ScanSpec{Lines: 10, Words: SingleCount(1)}
	v := spec.build(1, 100)
	seen := map[mem.LineAddr]int{}
	for i := 0; i < 30; i++ {
		seen[v.next().line]++
	}
	if len(seen) != 10 {
		t.Errorf("scan covered %d distinct lines, want 10", len(seen))
	}
	//ldis:nondet-ok per-entry assertions; no output depends on iteration order
	for l, c := range seen {
		if c != 3 {
			t.Errorf("line %v visited %d times, want 3", l, c)
		}
	}
}

func TestTierVisitorRespectsTierSizes(t *testing.T) {
	spec := TierSpec{
		Tiers: []Tier{{Frac: 0.8, Lines: 10}, {Frac: 0.2, Lines: 1000}},
		Words: SingleCount(1),
	}
	v := spec.build(9, 0)
	inHot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if v.next().line < 10 {
			inHot++
		}
	}
	// Hot tier gets its 80% plus the ~1% of cold picks landing there.
	frac := float64(inHot) / n
	if frac < 0.75 || frac > 0.87 {
		t.Errorf("hot tier fraction %.3f, want ~0.8", frac)
	}
}

func TestValidateSpecErrors(t *testing.T) {
	bad := []VisitorSpec{
		TierSpec{},
		TierSpec{Tiers: []Tier{{Frac: 1, Lines: 0}}},
		ScanSpec{},
		TwoPhaseSpec{},
		TwoPhaseSpec{Lines: 10, GapShortLines: -1},
		MixSpec{},
		MixSpec{Components: []Component{{Frac: 1, Spec: ScanSpec{}}}},
	}
	for i, s := range bad {
		if err := validateSpec(s); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestProfileValuesDeterministic(t *testing.T) {
	p, _ := ByName("mcf")
	a, b := p.Values(), p.Values()
	for i := 0; i < 100; i++ {
		if a.Word32(mem.Addr(i*4)) != b.Word32(mem.Addr(i*4)) {
			t.Fatal("Values model not deterministic")
		}
	}
}
