package workload

import "testing"

// TestStreamNextZeroAllocs pins workload generation at zero allocations
// per access: the burst-window scratch buffers in burstState and the
// shared word lists of the two-phase visitor replaced the per-visit
// slices that previously made Next() the second-largest garbage source
// in the simulator.
func TestStreamNextZeroAllocs(t *testing.T) {
	for _, name := range []string{"mcf", "swim", "art"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		st := p.Stream()
		// Warm the stream past first-visit setup.
		for i := 0; i < 10_000; i++ {
			if _, ok := st.Next(); !ok {
				t.Fatal("stream dried up")
			}
		}
		if n := testing.AllocsPerRun(10_000, func() {
			st.Next()
		}); n != 0 {
			t.Errorf("%s: stream Next allocates %.2f/op", name, n)
		}
	}
}
