package cache

import (
	"testing"
	"testing/quick"

	"ldis/internal/mem"
)

func small() *Cache {
	// 4 sets x 2 ways.
	return New(Config{Name: "t", SizeBytes: 4 * 2 * mem.LineSize, Ways: 2})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "l2", SizeBytes: 1 << 20, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("baseline config invalid: %v", err)
	}
	if good.Sets() != 2048 {
		t.Errorf("baseline Sets = %d, want 2048", good.Sets())
	}
	bad := []Config{
		{Name: "w0", SizeBytes: 1024, Ways: 0},
		{Name: "odd", SizeBytes: 3 * 64, Ways: 2},                // sets=0 -> invalid
		{Name: "np2", SizeBytes: 3 * 64 * 2, Ways: 2},            // 3 sets
		{Name: "frac", SizeBytes: 4*2*mem.LineSize + 1, Ways: 2}, // not line divisible
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestMissThenInstallThenHit(t *testing.T) {
	c := small()
	l := mem.LineAddr(0x40)
	if c.Access(l, 0, false) {
		t.Fatal("cold access should miss")
	}
	if _, had := c.Install(l, 0, false); had {
		t.Fatal("install into empty set should not evict")
	}
	if !c.Access(l, 1, false) {
		t.Fatal("second access should hit")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to set 0 of a 4-set cache: line addresses
	// congruent mod 4.
	a, b, d := mem.LineAddr(0), mem.LineAddr(4), mem.LineAddr(8)
	c.Access(a, 0, false)
	c.Install(a, 0, false)
	c.Access(b, 0, false)
	c.Install(b, 0, false)
	// a is LRU; touch a to promote it, then install d: b must be victim.
	c.Access(a, 0, false)
	v, had := c.Install(d, 0, false)
	if !had || v.Line != b {
		t.Fatalf("victim = %+v (had=%v), want line %v", v, had, b)
	}
	if !c.Lookup(a) || !c.Lookup(d) || c.Lookup(b) {
		t.Error("post-eviction contents wrong")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := small()
	a, b, d := mem.LineAddr(0), mem.LineAddr(4), mem.LineAddr(8)
	c.Install(a, 0, true) // dirty install (write miss fill)
	c.Install(b, 0, false)
	v, had := c.Install(d, 0, false) // evicts a (LRU)
	if !had || v.Line != a || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty line %v", v, a)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := small()
	a, b, d := mem.LineAddr(0), mem.LineAddr(4), mem.LineAddr(8)
	c.Install(a, 0, false)
	c.Access(a, 0, true) // write hit
	c.Install(b, 0, false)
	v, _ := c.Install(d, 0, false)
	if v.Line != a || !v.Dirty {
		t.Fatalf("write hit should have dirtied %v, victim %+v", a, v)
	}
}

func TestFootprintAccumulates(t *testing.T) {
	c := small()
	a := mem.LineAddr(0)
	c.Install(a, 2, false)
	c.Access(a, 5, false)
	c.Access(a, 5, false) // repeated word: no new bit
	c.Install(mem.LineAddr(4), 0, false)
	v, _ := c.Install(mem.LineAddr(8), 0, false)
	if v.Line != a {
		t.Fatalf("victim %v, want %v", v.Line, a)
	}
	if v.Footprint.Count() != 2 || !v.Footprint.Has(2) || !v.Footprint.Has(5) {
		t.Errorf("evicted footprint = %v", v.Footprint)
	}
	if c.Stats().WordsUsedAtEvict.Count(2) != 1 {
		t.Error("words-used histogram not updated")
	}
}

func TestMergeFootprint(t *testing.T) {
	c := small()
	a := mem.LineAddr(0)
	c.Install(a, 0, false)
	c.MergeFootprint(a, mem.FootprintOfWord(7).Or(mem.FootprintOfWord(0)))
	c.Install(mem.LineAddr(4), 0, false)
	v, _ := c.Install(mem.LineAddr(8), 0, false)
	if v.Footprint.Count() != 2 {
		t.Errorf("merged footprint = %v", v.Footprint)
	}
	// Merging into an absent line is a no-op.
	c.MergeFootprint(mem.LineAddr(0x7777), mem.FullFootprint)
}

func TestMaxFPPosTracking(t *testing.T) {
	// 1 set, 4 ways: place a, then bury it to position 2, then touch a
	// new word -> MaxFPPos should be 2.
	c := New(Config{Name: "p", SizeBytes: 4 * mem.LineSize, Ways: 4})
	a := mem.LineAddr(0)
	c.Install(a, 0, false)
	c.Install(mem.LineAddr(1), 0, false)
	c.Install(mem.LineAddr(2), 0, false)
	if pos := c.RecencyPosition(a); pos != 2 {
		t.Fatalf("a at position %d, want 2", pos)
	}
	c.Access(a, 3, false) // footprint change at position 2
	c.Install(mem.LineAddr(3), 0, false)
	c.Install(mem.LineAddr(4), 0, false)
	c.Install(mem.LineAddr(5), 0, false)
	// a is LRU now; next install evicts it.
	c.Install(mem.LineAddr(6), 0, false)
	if c.Lookup(a) {
		t.Fatal("a should have been evicted")
	}
	if got := c.Stats().FPChangePos.Count(2); got != 1 {
		t.Errorf("FPChangePos[2] = %d, want 1 (%v)", got, c.Stats().FPChangePos)
	}
}

func TestAccessSameWordDoesNotRaiseMaxPos(t *testing.T) {
	c := New(Config{Name: "p", SizeBytes: 4 * mem.LineSize, Ways: 4})
	a := mem.LineAddr(0)
	c.Install(a, 0, false)
	c.Install(mem.LineAddr(1), 0, false)
	c.Install(mem.LineAddr(2), 0, false)
	c.Access(a, 0, false) // same word at depth: footprint unchanged
	for i := 3; i < 7; i++ {
		c.Install(mem.LineAddr(i), 0, false)
	}
	h := c.Stats().FPChangePos
	if h.Total() != h.Count(0) {
		t.Errorf("all footprint changes should be at position 0: %v", h)
	}
}

func TestDoubleInstallPanics(t *testing.T) {
	c := small()
	c.Install(0, 0, false)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double install")
		}
	}()
	c.Install(0, 0, false)
}

func TestVisitLines(t *testing.T) {
	c := small()
	want := map[mem.LineAddr]bool{1: true, 2: true, 5: true}
	for l := range want {
		c.Install(l, 0, false)
	}
	got := map[mem.LineAddr]bool{}
	c.VisitLines(func(l mem.LineAddr, fp mem.Footprint) {
		got[l] = true
		if fp.Count() != 1 {
			t.Errorf("line %v footprint %v", l, fp)
		}
	})
	if len(got) != len(want) {
		t.Errorf("visited %v, want %v", got, want)
	}
	for l := range want {
		if !got[l] {
			t.Errorf("line %v not visited", l)
		}
	}
}

func TestSetDirty(t *testing.T) {
	c := small()
	a := mem.LineAddr(0)
	c.Install(a, 0, false)
	c.SetDirty(a)
	c.Install(mem.LineAddr(4), 0, false)
	v, _ := c.Install(mem.LineAddr(8), 0, false)
	if !v.Dirty {
		t.Error("SetDirty did not stick")
	}
	c.SetDirty(mem.LineAddr(0x999)) // absent: no-op
}

func TestHitRate(t *testing.T) {
	c := small()
	c.Access(0, 0, false)
	c.Install(0, 0, false)
	c.Access(0, 0, false)
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", hr)
	}
	var empty Stats
	if empty.HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
}

// Property: after any access sequence, each set holds at most Ways valid
// lines and Lookup agrees with a shadow map of the most recent Ways
// distinct lines per set under LRU.
func TestLRUMatchesReferenceModel(t *testing.T) {
	f := func(seq []uint16) bool {
		const sets, ways = 4, 2
		c := New(Config{Name: "ref", SizeBytes: sets * ways * mem.LineSize, Ways: ways})
		// Reference: per set, slice of lines MRU-first.
		ref := make([][]mem.LineAddr, sets)
		for _, raw := range seq {
			line := mem.LineAddr(raw % 64)
			si := line.SetIndex(sets)
			// reference access
			found := -1
			for i, l := range ref[si] {
				if l == line {
					found = i
					break
				}
			}
			hit := c.Access(line, 0, false)
			if (found >= 0) != hit {
				return false
			}
			if found >= 0 {
				ref[si] = append([]mem.LineAddr{line}, append(ref[si][:found], ref[si][found+1:]...)...)
			} else {
				c.Install(line, 0, false)
				ref[si] = append([]mem.LineAddr{line}, ref[si]...)
				if len(ref[si]) > ways {
					ref[si] = ref[si][:ways]
				}
			}
		}
		// Final contents agree.
		for si := 0; si < sets; si++ {
			for _, l := range ref[si] {
				if !c.Lookup(l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
