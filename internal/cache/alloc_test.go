package cache

import (
	"testing"

	"ldis/internal/mem"
)

// The simulation hot path — Access hits, and the miss+Install refill
// cycle — must not allocate: the experiment engine drives hundreds of
// millions of accesses per run, and per-access garbage dominated the
// profile before histograms were made eager and the set geometry was
// precomputed.

func TestAccessHitPathZeroAllocs(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
	line := mem.LineAddr(5)
	c.Install(line, 0, false)
	if n := testing.AllocsPerRun(1000, func() {
		if !c.Access(line, 1, true) {
			t.Fatal("expected hit")
		}
	}); n != 0 {
		t.Errorf("Access hit path allocates %.1f/op", n)
	}
}

func TestMissInstallPathZeroAllocs(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
	i := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		l := mem.LineAddr(i*64 + 3) // march through tags of one set
		i++
		if !c.Access(l, 0, false) {
			c.Install(l, 0, false)
		}
	}); n != 0 {
		t.Errorf("miss+install path allocates %.1f/op", n)
	}
}
