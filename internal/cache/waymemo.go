package cache

import (
	"fmt"
)

// WayMemoConfig enables way memoization (arXiv 0710.4703): a small
// per-set memo buffer remembers the tag that last hit (or filled) each
// of its entries, so an access whose memo entry matches can read its
// one remembered way directly — verifying a single tag instead of
// probing all Ways of them. The memo is accounting-only here: lookups,
// LRU movement, and miss behaviour are byte-identical with and without
// it (a memo entry is invalidated the moment its line leaves the set,
// so a memo match always implies residency and therefore a hit). What
// it changes is the energy story, priced by costmodel.WayMemoEnergy
// from the hit/skip counters.
//
// The memo is strictly per-set state keyed by a pure tag hash, so a
// memoized traditional cache remains shard-exact: set-interleaved
// sharding reproduces the sequential counters bit for bit.
type WayMemoConfig struct {
	// EntriesPerSet is the memo buffer's entry count per cache set
	// (power of two in [1, 64]; default 4). An incoming tag maps to
	// one entry by hash; the entry remembers the most recent tag that
	// hit or filled under it.
	EntriesPerSet int
}

func (c WayMemoConfig) withDefaults() WayMemoConfig {
	if c.EntriesPerSet == 0 {
		c.EntriesPerSet = 4
	}
	return c
}

// Validate rejects impossible memo geometries.
func (c WayMemoConfig) Validate() error {
	c = c.withDefaults()
	if c.EntriesPerSet < 1 || c.EntriesPerSet > 64 || c.EntriesPerSet&(c.EntriesPerSet-1) != 0 {
		return fmt.Errorf("cache: way-memo entries per set %d must be a power of two in [1, 64]", c.EntriesPerSet)
	}
	return nil
}

// memoSlot maps a tag to its memo entry within a set: a fixed
// multiplicative hash, so the mapping is a pure function of the tag
// and sharding cannot perturb it.
func (c *Cache) memoSlot(tag uint64) int {
	return int((tag * 0x9e3779b97f4a7c15) >> c.memoShift)
}

// memoLookup consults the memo buffer for an incoming access and
// counts the outcome. A match means the remembered way will be read
// directly — Ways-1 tag probes skipped — and, by the invalidate-on-
// evict invariant, guarantees the access hits.
//
//ldis:noalloc
func (c *Cache) memoLookup(si int, tag uint64) {
	if c.memoTags == nil {
		return
	}
	c.st.MemoRefs++
	slot := c.memoSlot(tag)
	if c.memoValid[si]&(1<<uint(slot)) != 0 && c.memoTags[si*c.memoEPS+slot] == tag {
		c.st.MemoHits++
		c.st.MemoProbesSkipped += uint64(c.cfg.Ways - 1)
		c.obsMemoHits.Inc()
		c.obsMemoSkipped.Add(uint64(c.cfg.Ways - 1))
	}
}

// memoRecord remembers the tag that just hit or filled.
//
//ldis:noalloc
func (c *Cache) memoRecord(si int, tag uint64) {
	if c.memoTags == nil {
		return
	}
	slot := c.memoSlot(tag)
	c.memoTags[si*c.memoEPS+slot] = tag
	c.memoValid[si] |= 1 << uint(slot)
}

// memoInvalidate drops the memo entry for an evicted tag — unless a
// different tag has since claimed the slot, in which case that entry
// is still truthful and stays.
//
//ldis:noalloc
func (c *Cache) memoInvalidate(si int, tag uint64) {
	if c.memoTags == nil {
		return
	}
	slot := c.memoSlot(tag)
	if c.memoTags[si*c.memoEPS+slot] == tag {
		c.memoValid[si] &^= 1 << uint(slot)
	}
}

// CheckMemoInvariants verifies that every valid memo entry names a
// line resident in its set — the property that makes a memo match a
// guaranteed hit; tests call it after stress runs.
func (c *Cache) CheckMemoInvariants() error {
	if c.memoTags == nil {
		return nil
	}
	for si := range c.sets {
		for slot := 0; slot < c.memoEPS; slot++ {
			if c.memoValid[si]&(1<<uint(slot)) == 0 {
				continue
			}
			tag := c.memoTags[si*c.memoEPS+slot]
			if c.memoSlot(tag) != slot {
				return fmt.Errorf("cache %q: set %d memo slot %d holds tag %x hashing elsewhere", c.cfg.Name, si, slot, tag)
			}
			if !c.Lookup(c.lineFromTag(tag, si)) {
				return fmt.Errorf("cache %q: set %d memo slot %d names absent tag %x", c.cfg.Name, si, slot, tag)
			}
		}
	}
	return nil
}
