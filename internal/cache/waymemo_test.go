package cache

import (
	"testing"

	"ldis/internal/mem"
)

func memoCfg() Config {
	return Config{
		Name: "wm", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8,
		WayMemo: &WayMemoConfig{EntriesPerSet: 4},
	}
}

// The memo is accounting-only: every functional counter must match a
// memo-less twin access for access, and a memo match must always be a
// hit (MemoHits never exceeds Hits).
func TestWayMemoFunctionallyTransparent(t *testing.T) {
	base := New(Config{Name: "b", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
	memo := New(memoCfg())
	rng := uint64(7)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	for i := 0; i < 200_000; i++ {
		la := mem.LineAddr(next(64 * 24))
		word := int(next(8))
		write := next(4) == 0
		if base.AccessInstall(la, word, write) != memo.AccessInstall(la, word, write) {
			t.Fatalf("access %d: outcomes diverge", i)
		}
		if i%10_000 == 0 {
			if err := memo.CheckMemoInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
	b, m := base.Stats(), memo.Stats()
	if b.Hits != m.Hits || b.Misses != m.Misses || b.Evictions != m.Evictions || b.Writebacks != m.Writebacks {
		t.Fatalf("functional counters diverge: base %+v memo %+v", b, m)
	}
	if m.MemoRefs != m.Accesses {
		t.Fatalf("memo consulted on %d of %d accesses", m.MemoRefs, m.Accesses)
	}
	if m.MemoHits == 0 || m.MemoHits > m.Hits {
		t.Fatalf("memo hits %d outside (0, hits=%d]", m.MemoHits, m.Hits)
	}
	if want := m.MemoHits * uint64(memo.Config().Ways-1); m.MemoProbesSkipped != want {
		t.Fatalf("probes skipped %d, want %d", m.MemoProbesSkipped, want)
	}
}

// Re-touching the MRU line must be a memo hit; an evicted line's memo
// entry must not survive (no stale match after eviction).
func TestWayMemoInvalidateOnEvict(t *testing.T) {
	c := New(memoCfg())
	la := mem.LineAddr(3)
	c.AccessInstall(la, 0, false) // miss + fill records the memo
	c.AccessInstall(la, 1, false) // must match
	if c.Stats().MemoHits != 1 {
		t.Fatalf("memo hits %d after refill+retouch, want 1", c.Stats().MemoHits)
	}
	// March 8 distinct tags through the set to evict la.
	for i := 1; i <= 8; i++ {
		c.AccessInstall(la+mem.LineAddr(i*64), 0, false)
	}
	if c.Lookup(la) {
		t.Fatal("victim still resident; widen the march")
	}
	if err := c.CheckMemoInvariants(); err != nil {
		t.Fatal(err)
	}
	hitsBefore := c.Stats().MemoHits
	c.AccessInstall(la, 0, false) // miss: memo must not claim it
	if c.Stats().MemoHits != hitsBefore {
		t.Fatal("memo matched an absent line")
	}
}

// The memo sits on the fused access+install hot path; it must not add
// an allocation.
func TestWayMemoAccessInstallZeroAllocs(t *testing.T) {
	c := New(memoCfg())
	i := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		l := mem.LineAddr(i*64 + 3)
		i++
		c.AccessInstall(l, 0, false)
		c.AccessInstall(l, 1, true) // memo hit path
	}); n != 0 {
		t.Errorf("memoized access path allocates %.1f/op", n)
	}
}
