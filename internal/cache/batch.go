package cache

import "ldis/internal/trace"

// AccessBatch drives a record block through the cache as a standalone
// L2: each record performs a demand access for its word, and a miss
// installs the line, modelling the fill. Instruction fetches are
// ordinary lines in a traditional cache. It returns the number of
// hits. This is the bulk half of the batched pipeline; the scalar
// Access/Install pair stays as the compatibility surface.
//
//ldis:noalloc
func (c *Cache) AccessBatch(recs []trace.Record) (hits int) {
	for i := range recs {
		la, word, write := recs[i].Line(), recs[i].Word(), recs[i].IsWrite()
		if c.AccessInstall(la, word, write) {
			hits++
		}
	}
	return hits
}
