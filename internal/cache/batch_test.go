package cache

import (
	"reflect"
	"testing"

	"ldis/internal/mem"
	"ldis/internal/trace"
)

func batchRecords(n, lines int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		k := mem.Load
		if i%5 == 0 {
			k = mem.Store
		}
		recs[i] = trace.Record{Addr: mem.LineAddr(i % lines).WordAddr(i % 8), Kind: k, Instret: 1}
	}
	return recs
}

// AccessBatch must be exactly the scalar access/install loop in bulk:
// same hit count, same final stats.
func TestAccessBatchMatchesScalar(t *testing.T) {
	cfg := Config{Name: "t", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8}
	recs := batchRecords(10_000, 1024)

	batched := New(cfg)
	gotHits := batched.AccessBatch(recs)

	scalar := New(cfg)
	wantHits := 0
	for i := range recs {
		la, word, write := recs[i].Line(), recs[i].Word(), recs[i].IsWrite()
		if scalar.Access(la, word, write) {
			wantHits++
		} else {
			scalar.Install(la, word, write)
		}
	}
	if gotHits != wantHits {
		t.Errorf("AccessBatch hits = %d, scalar loop %d", gotHits, wantHits)
	}
	if !reflect.DeepEqual(batched.Stats(), scalar.Stats()) {
		t.Errorf("stats diverged: %+v vs %+v", *batched.Stats(), *scalar.Stats())
	}
}

func TestAccessBatchZeroAllocs(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
	recs := batchRecords(256, 2048)
	c.AccessBatch(recs) // steady state: sets at capacity
	if n := testing.AllocsPerRun(500, func() { c.AccessBatch(recs) }); n != 0 {
		t.Errorf("AccessBatch allocates %.1f/op", n)
	}
}
