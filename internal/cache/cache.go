// Package cache implements a traditional set-associative cache with LRU
// replacement — the paper's baseline L2 organization (Table 1) — plus
// the per-line footprint instrumentation the motivation experiments need
// (Figures 1 and 2) and an auxiliary tag-directory mode used by the
// reverter circuit and set-sampling machinery.
package cache

import (
	"fmt"

	"ldis/internal/mem"
	"ldis/internal/obs"
	"ldis/internal/stats"
)

// Config describes a traditional cache.
type Config struct {
	// Name labels the cache in stats output.
	Name string
	// SizeBytes is the data capacity (must be sets*ways*64).
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// WayMemo, when non-nil, enables the way-memoization memo buffer
	// (see WayMemoConfig): per-set last-hit-way tracking whose hit/skip
	// counters feed costmodel.WayMemoEnergy. Functional behaviour is
	// unchanged.
	WayMemo *WayMemoConfig
	// Obs, when non-nil, receives eviction/writeback counters for the
	// owning grid cell. Counters land on the install (miss) path only —
	// the per-access hit path stays untouched — and the handles no-op
	// when Obs is nil, so disabled observability costs one branch per
	// eviction.
	Obs *obs.Cell
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() int { return c.SizeBytes / (mem.LineSize * c.Ways) }

// Validate checks structural invariants: power-of-two set count, at
// least one way.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return fmt.Errorf("cache %q: ways must be positive, got %d", c.Name, c.Ways)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*mem.LineSize != c.SizeBytes {
		return fmt.Errorf("cache %q: size %dB not divisible into %d ways of 64B lines", c.Name, c.SizeBytes, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	if c.WayMemo != nil {
		if err := c.WayMemo.Validate(); err != nil {
			return fmt.Errorf("cache %q: %v", c.Name, err)
		}
	}
	return nil
}

// MaxPartitionTenants bounds the tenants a partitioned cache can
// distinguish; way-quota bookkeeping fits fixed stack arrays at this
// size, keeping the enforcement path allocation-free.
const MaxPartitionTenants = 8

// Line is one tag entry. MaxFPPos tracks the maximum recency position
// the line occupied at any access that changed its footprint — the
// statistic behind the paper's Figure 2. Tenant records which sharer
// installed the line (always 0 outside partitioned mode).
type Line struct {
	Valid     bool
	Dirty     bool
	Tag       uint64
	Footprint mem.Footprint
	MaxFPPos  uint8
	Tenant    uint8
}

// Stats aggregates the cache's behaviour.
type Stats struct {
	Accesses   uint64 //ldis:shard-owned
	Hits       uint64 //ldis:shard-owned
	Misses     uint64 //ldis:shard-owned
	Evictions  uint64 //ldis:shard-owned
	Writebacks uint64 //ldis:shard-owned

	// Way-memoization counters (Config.WayMemo; zero otherwise). The
	// memo buffer is per-set state, so these stay shard-owned and sum
	// exactly under the shard merge.
	MemoRefs          uint64 //ldis:shard-owned
	MemoHits          uint64 //ldis:shard-owned
	MemoProbesSkipped uint64 //ldis:shard-owned

	// WordsUsedAtEvict histograms footprint popcounts of evicted lines
	// (buckets 0..8); bucket 0 stays empty because installs mark the
	// demand word. This is Figure 1 and Table 6.
	WordsUsedAtEvict *stats.Histogram

	// FPChangePos histograms, per evicted line, the maximum recency
	// position at which its footprint changed (Figure 2).
	FPChangePos *stats.Histogram
}

// HitRate returns hits/accesses.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative LRU cache over 64B lines.
type Cache struct {
	cfg  Config
	sets [][]Line // sets[i] ordered MRU-first
	st   Stats

	// Set-indexing geometry, precomputed at construction so the access
	// path does not rederive it (Config.Sets divides; LineAddr.Tag
	// shift-loops) on every access.
	setMask  uint64
	tagShift uint

	// Per-tenant way quotas (nil when unpartitioned). Installed by
	// SetPartition and consulted only on the AccessInstallTenant miss
	// path: hits are never restricted, matching way-partitioned
	// hardware, where partitioning constrains replacement, not lookup.
	quota []int32

	// Way-memoization state (Config.WayMemo; nil when disabled): one
	// tag arena of EntriesPerSet slots per set, plus a per-set validity
	// bitmask. Strictly per-set, so sharding composes untouched.
	memoTags  []uint64
	memoValid []uint64
	memoEPS   int
	memoShift uint

	// Observability handles, registered once at construction; nil when
	// the config carries no obs cell.
	obsEvictions   *obs.Counter
	obsWritebacks  *obs.Counter
	obsMemoHits    *obs.Counter
	obsMemoSkipped *obs.Counter
}

// New builds a cache; it panics on an invalid config (configs are
// programmer-supplied constants, not user input).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.Sets()
	sets := make([][]Line, numSets)
	for i := range sets {
		sets[i] = make([]Line, cfg.Ways)
	}
	c := &Cache{cfg: cfg, sets: sets, setMask: uint64(numSets - 1)}
	for n := numSets; n > 1; n >>= 1 {
		c.tagShift++
	}
	// Histograms are allocated eagerly so Access/Install never test for
	// them on the hot path.
	c.st.WordsUsedAtEvict = stats.NewHistogram(cfg.Name+" words used", mem.WordsPerLine+1)
	c.st.FPChangePos = stats.NewHistogram(cfg.Name+" fp-change pos", cfg.Ways)
	if cfg.WayMemo != nil {
		wm := cfg.WayMemo.withDefaults()
		c.memoEPS = wm.EntriesPerSet
		c.memoTags = make([]uint64, numSets*c.memoEPS)
		c.memoValid = make([]uint64, numSets)
		c.memoShift = 64
		for n := c.memoEPS; n > 1; n >>= 1 {
			c.memoShift--
		}
	}
	c.obsEvictions = cfg.Obs.Counter("cache_evictions")
	c.obsWritebacks = cfg.Obs.Counter("cache_writebacks")
	c.obsMemoHits = cfg.Obs.Counter("cache_waymemo_hits")
	c.obsMemoSkipped = cfg.Obs.Counter("cache_waymemo_skipped_probes")
	return c
}

// setIndexOf and tagOf are the precomputed equivalents of
// mem.LineAddr.SetIndex/Tag for this cache's geometry.
func (c *Cache) setIndexOf(line mem.LineAddr) int { return int(uint64(line) & c.setMask) }
func (c *Cache) tagOf(line mem.LineAddr) uint64   { return uint64(line) >> c.tagShift }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a pointer to the live statistics.
func (c *Cache) Stats() *Stats { return &c.st }

// Victim describes a line evicted by an install.
type Victim struct {
	Line      mem.LineAddr
	Dirty     bool
	Footprint mem.Footprint
}

// Lookup reports whether the line is present without touching LRU state
// or stats (used by auxiliary structures and tests).
func (c *Cache) Lookup(line mem.LineAddr) bool {
	set := c.sets[c.setIndexOf(line)]
	tag := c.tagOf(line)
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			return true
		}
	}
	return false
}

// Access performs a demand access for one word of a line. On a hit the
// line moves to MRU and its footprint is updated; the access counts in
// the stats. On a miss nothing is installed — callers model the fill
// with Install, mirroring how the simulated hierarchy overlaps fills
// with memory latency.
//
//ldis:noalloc
func (c *Cache) Access(line mem.LineAddr, word int, write bool) bool {
	st := &c.st
	st.Accesses++
	si := c.setIndexOf(line)
	set := c.sets[si]
	tag := c.tagOf(line)
	c.memoLookup(si, tag)
	// MRU fast path: a hit on way 0 needs no promotion (and cannot
	// raise MaxFPPos), so it updates the line in place.
	if l := &set[0]; l.Valid && l.Tag == tag {
		st.Hits++
		l.Footprint = l.Footprint.Set(word)
		if write {
			l.Dirty = true
		}
		c.memoRecord(si, tag)
		return true
	}
	for pos := 1; pos < len(set); pos++ {
		if !set[pos].Valid || set[pos].Tag != tag {
			continue
		}
		st.Hits++
		l := set[pos]
		if !l.Footprint.Has(word) {
			l.Footprint = l.Footprint.Set(word)
			if uint8(pos) > l.MaxFPPos {
				l.MaxFPPos = uint8(pos)
			}
		}
		if write {
			l.Dirty = true
		}
		c.promote(set, pos, l)
		c.memoRecord(si, tag)
		return true
	}
	st.Misses++
	return false
}

// AccessInstall fuses Access with the Install that follows a miss: the
// lookup scan that proves the line absent doubles as Install's
// presence check, so the miss path walks the set once instead of
// twice. Counters and LRU state evolve exactly as Access-then-Install;
// the victim (unused by the traditional L2, which counts writebacks
// internally) is not materialized. Returns whether the access hit.
//
//ldis:noalloc
func (c *Cache) AccessInstall(line mem.LineAddr, word int, write bool) bool {
	st := &c.st
	st.Accesses++
	si := c.setIndexOf(line)
	set := c.sets[si]
	tag := c.tagOf(line)
	c.memoLookup(si, tag)
	// MRU fast path, as in Access.
	if l := &set[0]; l.Valid && l.Tag == tag {
		st.Hits++
		l.Footprint = l.Footprint.Set(word)
		if write {
			l.Dirty = true
		}
		c.memoRecord(si, tag)
		return true
	}
	for pos := 1; pos < len(set); pos++ {
		if !set[pos].Valid || set[pos].Tag != tag {
			continue
		}
		st.Hits++
		l := set[pos]
		if !l.Footprint.Has(word) {
			l.Footprint = l.Footprint.Set(word)
			if uint8(pos) > l.MaxFPPos {
				l.MaxFPPos = uint8(pos)
			}
		}
		if write {
			l.Dirty = true
		}
		c.promote(set, pos, l)
		c.memoRecord(si, tag)
		return true
	}
	st.Misses++
	victimPos := len(set) - 1
	if v := set[victimPos]; v.Valid {
		st.Evictions++
		c.obsEvictions.Inc()
		st.WordsUsedAtEvict.Add(v.Footprint.Count())
		st.FPChangePos.Add(int(v.MaxFPPos))
		if v.Dirty {
			st.Writebacks++
			c.obsWritebacks.Inc()
		}
		c.memoInvalidate(si, v.Tag)
	}
	c.promote(set, victimPos, Line{
		Valid:     true,
		Dirty:     write,
		Tag:       tag,
		Footprint: mem.FootprintOfWord(word),
	})
	c.memoRecord(si, tag)
	return false
}

// promote moves the entry at pos to MRU, shifting the more recent
// entries down one position.
func (c *Cache) promote(set []Line, pos int, l Line) {
	copy(set[1:pos+1], set[0:pos])
	set[0] = l
}

// SetPartition installs per-tenant way quotas for AccessInstallTenant.
// quota[t] is the number of ways tenant t may occupy per set; the sum
// must not exceed the associativity. A nil or empty quota disables
// partitioning. Quotas may change at any time (the epoch re-balancer
// does): lines installed under the old allocation drain out through
// the over-quota victim rule rather than being flushed.
func (c *Cache) SetPartition(quota []int) {
	if len(quota) == 0 {
		c.quota = nil
		return
	}
	if len(quota) > MaxPartitionTenants {
		panic(fmt.Sprintf("cache %q: %d tenants exceed MaxPartitionTenants", c.cfg.Name, len(quota)))
	}
	sum := 0
	for t, q := range quota {
		if q < 0 {
			panic(fmt.Sprintf("cache %q: negative quota %d for tenant %d", c.cfg.Name, q, t))
		}
		sum += q
	}
	if sum > c.cfg.Ways {
		panic(fmt.Sprintf("cache %q: quota sum %d exceeds %d ways", c.cfg.Name, sum, c.cfg.Ways))
	}
	if c.quota == nil {
		c.quota = make([]int32, 0, MaxPartitionTenants)
	}
	c.quota = c.quota[:0]
	for _, q := range quota {
		c.quota = append(c.quota, int32(q))
	}
}

// AccessInstallTenant is AccessInstall with way-partition enforcement:
// the hit path is identical (any tenant hits any resident line), but a
// miss selects its victim under the quotas installed by SetPartition —
// a tenant at or over its quota evicts its own LRU-most line, a tenant
// under it evicts the LRU-most line of an over-quota tenant. Without a
// partition installed it degenerates to plain LRU.
//
//ldis:noalloc
func (c *Cache) AccessInstallTenant(line mem.LineAddr, word int, write bool, tenant int) bool {
	st := &c.st
	st.Accesses++
	si := c.setIndexOf(line)
	set := c.sets[si]
	tag := c.tagOf(line)
	c.memoLookup(si, tag)
	// MRU fast path, as in Access. Hits never transfer ownership: the
	// installing tenant keeps the line against its quota.
	if l := &set[0]; l.Valid && l.Tag == tag {
		st.Hits++
		l.Footprint = l.Footprint.Set(word)
		if write {
			l.Dirty = true
		}
		c.memoRecord(si, tag)
		return true
	}
	for pos := 1; pos < len(set); pos++ {
		if !set[pos].Valid || set[pos].Tag != tag {
			continue
		}
		st.Hits++
		l := set[pos]
		if !l.Footprint.Has(word) {
			l.Footprint = l.Footprint.Set(word)
			if uint8(pos) > l.MaxFPPos {
				l.MaxFPPos = uint8(pos)
			}
		}
		if write {
			l.Dirty = true
		}
		c.promote(set, pos, l)
		c.memoRecord(si, tag)
		return true
	}
	st.Misses++
	victimPos := c.partitionVictim(set, tenant)
	if v := set[victimPos]; v.Valid {
		st.Evictions++
		c.obsEvictions.Inc()
		st.WordsUsedAtEvict.Add(v.Footprint.Count())
		st.FPChangePos.Add(int(v.MaxFPPos))
		if v.Dirty {
			st.Writebacks++
			c.obsWritebacks.Inc()
		}
		c.memoInvalidate(si, v.Tag)
	}
	c.promote(set, victimPos, Line{
		Valid:     true,
		Dirty:     write,
		Tag:       tag,
		Footprint: mem.FootprintOfWord(word),
		Tenant:    uint8(tenant),
	})
	c.memoRecord(si, tag)
	return false
}

// partitionVictim picks the way to replace for a missing tenant under
// the installed quotas (plain LRU when unpartitioned). Invalid ways
// fill first; then the quota rule above. The global-LRU fallbacks are
// unreachable when quotas sum to the associativity and every tenant's
// quota is at least one, but a transient quota shrink can leave every
// other tenant exactly at its new quota — falling back to global LRU
// keeps the install total even then.
//
//ldis:noalloc
func (c *Cache) partitionVictim(set []Line, tenant int) int {
	if c.quota == nil {
		return len(set) - 1
	}
	var occ [MaxPartitionTenants]int32
	invalid := -1
	for pos := range set {
		if !set[pos].Valid {
			invalid = pos
			continue
		}
		occ[set[pos].Tenant]++
	}
	if invalid >= 0 {
		return invalid
	}
	if tenant < len(c.quota) && occ[tenant] >= c.quota[tenant] {
		for pos := len(set) - 1; pos >= 0; pos-- {
			if int(set[pos].Tenant) == tenant {
				return pos
			}
		}
		return len(set) - 1 // quota 0 and no resident line: take global LRU
	}
	for pos := len(set) - 1; pos >= 0; pos-- {
		t := set[pos].Tenant
		if int(t) >= len(c.quota) || occ[t] > c.quota[t] {
			return pos
		}
	}
	return len(set) - 1
}

// Install fills a line (after a miss) as MRU with the demand word's
// footprint bit set, evicting the LRU entry if the set is full. It
// returns the victim, if any. Installing a line that is already present
// is a programming error and panics.
//
//ldis:noalloc
func (c *Cache) Install(line mem.LineAddr, word int, write bool) (Victim, bool) {
	si := c.setIndexOf(line)
	set := c.sets[si]
	tag := c.tagOf(line)
	for pos := range set {
		if set[pos].Valid && set[pos].Tag == tag {
			panic(fmt.Sprintf("cache %q: installing already-present %v", c.cfg.Name, line))
		}
	}
	st := &c.st
	victimPos := len(set) - 1
	var victim Victim
	had := false
	if v := set[victimPos]; v.Valid {
		st.Evictions++
		c.obsEvictions.Inc()
		st.WordsUsedAtEvict.Add(v.Footprint.Count())
		st.FPChangePos.Add(int(v.MaxFPPos))
		if v.Dirty {
			st.Writebacks++
			c.obsWritebacks.Inc()
		}
		victim = Victim{
			Line:      c.lineFromTag(v.Tag, si),
			Dirty:     v.Dirty,
			Footprint: v.Footprint,
		}
		had = true
		c.memoInvalidate(si, v.Tag)
	}
	nl := Line{
		Valid:     true,
		Dirty:     write,
		Tag:       tag,
		Footprint: mem.FootprintOfWord(word),
	}
	c.promote(set, victimPos, nl)
	c.memoRecord(si, tag)
	return victim, had
}

// lineFromTag reconstructs a line address from a tag and set index.
func (c *Cache) lineFromTag(tag uint64, setIdx int) mem.LineAddr {
	return mem.LineAddr(tag<<c.tagShift | uint64(setIdx))
}

// MergeFootprint ORs fp into the line's footprint if present (the LOC
// does this with footprints arriving from L1D evictions; the baseline
// cache does it too so its Figure 1/2 statistics see the full word-usage
// information). Position tracking: if new bits appear, the line's
// current recency position competes for MaxFPPos.
func (c *Cache) MergeFootprint(line mem.LineAddr, fp mem.Footprint) {
	set := c.sets[c.setIndexOf(line)]
	tag := c.tagOf(line)
	for pos := range set {
		if set[pos].Valid && set[pos].Tag == tag {
			if merged := set[pos].Footprint.Or(fp); merged != set[pos].Footprint {
				set[pos].Footprint = merged
				if uint8(pos) > set[pos].MaxFPPos {
					set[pos].MaxFPPos = uint8(pos)
				}
			}
			return
		}
	}
}

// MergeWriteback is the fused MergeFootprint + SetDirty the hierarchy
// uses for L1D eviction notices: one set scan merges the footprint and
// marks the line dirty (when the writeback carries dirty words),
// instead of two.
//
//ldis:noalloc
func (c *Cache) MergeWriteback(line mem.LineAddr, fp, dirty mem.Footprint) {
	set := c.sets[c.setIndexOf(line)]
	tag := c.tagOf(line)
	for pos := range set {
		if set[pos].Valid && set[pos].Tag == tag {
			e := &set[pos]
			if merged := e.Footprint.Or(fp); merged != e.Footprint {
				e.Footprint = merged
				if uint8(pos) > e.MaxFPPos {
					e.MaxFPPos = uint8(pos)
				}
			}
			if dirty != 0 {
				e.Dirty = true
			}
			return
		}
	}
}

// SetDirty marks the line dirty if present (used when a dirty L1D line
// is written back into a clean L2 copy).
func (c *Cache) SetDirty(line mem.LineAddr) {
	set := c.sets[c.setIndexOf(line)]
	tag := c.tagOf(line)
	for pos := range set {
		if set[pos].Valid && set[pos].Tag == tag {
			set[pos].Dirty = true
			return
		}
	}
}

// VisitLines calls fn for every valid line (used by the compressibility
// sampling of Figure 10). The footprint passed is the line's current
// footprint.
func (c *Cache) VisitLines(fn func(line mem.LineAddr, fp mem.Footprint)) {
	for si, set := range c.sets {
		for _, l := range set {
			if l.Valid {
				fn(c.lineFromTag(l.Tag, si), l.Footprint)
			}
		}
	}
}

// RecencyPosition returns the LRU-stack position of the line (0 = MRU)
// or -1 if absent; exposed for tests and the distill cache's auxiliary
// structures.
func (c *Cache) RecencyPosition(line mem.LineAddr) int {
	set := c.sets[c.setIndexOf(line)]
	tag := c.tagOf(line)
	for pos := range set {
		if set[pos].Valid && set[pos].Tag == tag {
			return pos
		}
	}
	return -1
}

// Merge folds a sibling shard's counters into s: shards partition the
// line-address space, so plain sums (and bucket-wise histogram sums)
// reproduce the sequential totals exactly.
//
//ldis:noalloc
func (s *Stats) Merge(o *Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Writebacks += o.Writebacks
	s.MemoRefs += o.MemoRefs
	s.MemoHits += o.MemoHits
	s.MemoProbesSkipped += o.MemoProbesSkipped
	s.WordsUsedAtEvict.Merge(o.WordsUsedAtEvict)
	s.FPChangePos.Merge(o.FPChangePos)
}
