package hierarchy

import "ldis/internal/mem"

// lineSet is an open-addressed hash set of line addresses backing the
// compulsory-miss bookkeeping. It replaces a map[mem.LineAddr]struct{}
// on the hot path: one mix + linear probe instead of a runtime map
// lookup, and zero allocation in steady state (the table doubles only
// when it passes ~70% load).
//
// Slots store la+1 so the zero word can mean "empty"; line addresses
// near the top of the 64-bit space cannot occur (they would overflow
// the byte address space), so the +1 bias is safe.
type lineSet struct {
	slots []uint64
	used  int
}

const lineSetInitial = 1 << 10

func newLineSet() lineSet {
	return lineSet{slots: make([]uint64, lineSetInitial)}
}

// lineSetMix is splitmix64's finalizer: it spreads the low-entropy
// line-address bits across the table.
func lineSetMix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// testAndSet reports whether la was already present, inserting it if
// not (so the first call for a line returns false, all later ones
// true).
//
//ldis:noalloc
func (s *lineSet) testAndSet(la mem.LineAddr) bool {
	key := uint64(la) + 1
	mask := uint64(len(s.slots) - 1)
	i := lineSetMix(uint64(la)) & mask
	for {
		switch v := s.slots[i]; v {
		case key:
			return true
		case 0:
			s.slots[i] = key
			s.used++
			if uint64(s.used)*10 > uint64(len(s.slots))*7 {
				s.grow()
			}
			return false
		}
		i = (i + 1) & mask
	}
}

// grow quadruples the table and rehashes every resident key. The ×4
// factor keeps the total rehash work under 1.4 moves per resident key
// (a geometric series), versus 2 for doubling — measurable on the
// simulation hot path, where the compulsory set grows with the trace's
// working set.
func (s *lineSet) grow() {
	old := s.slots
	//ldis:alloc-ok amortized growth: geometric growth keeps steady-state inserts allocation-free
	s.slots = make([]uint64, len(old)*4)
	mask := uint64(len(s.slots) - 1)
	for _, v := range old {
		if v == 0 {
			continue
		}
		i := lineSetMix(v-1) & mask
		for s.slots[i] != 0 {
			i = (i + 1) & mask
		}
		s.slots[i] = v
	}
}
