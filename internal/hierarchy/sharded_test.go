package hierarchy

import (
	"reflect"
	"testing"

	"ldis/internal/cache"
	"ldis/internal/distill"
	"ldis/internal/mem"
	"ldis/internal/sfp"
	"ldis/internal/trace"
	"ldis/internal/values"
	"ldis/internal/workload"

	ccompress "ldis/internal/compress"
)

// seqWindowed is the sequential reference the sharded runner must
// reproduce byte-for-byte: the same NextBatch call schedule (ceil(n/B)
// chunks per phase), the same snapshot boundary, the same zero-delta
// window when the stream dries up during warmup.
func seqWindowed(sys *System, bs trace.BatchStream, batchSize, warmup, measure int) (WindowTotals, int) {
	buf := make([]trace.Record, batchSize)
	done := 0
	drive := func(n int) bool {
		for n > 0 {
			want := batchSize
			if want > n {
				want = n
			}
			got := bs.NextBatch(buf[:want])
			sys.DoBatch(buf[:got])
			done += got
			n -= got
			if got < want {
				return false
			}
		}
		return true
	}
	var w *Window
	if drive(warmup) {
		w = sys.StartWindow()
		drive(measure)
	} else {
		w = sys.StartWindow()
	}
	return w.Totals(), done
}

func streamFor(t *testing.T, name string) trace.BatchStream {
	t.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Batched(prof.Stream())
}

// requireSameSystem compares every counter the experiments read:
// hierarchy-level totals, the L1D, and the L2 organization's stats.
func requireSameSystem(t *testing.T, label string, got, want *System) {
	t.Helper()
	if got.Instructions != want.Instructions || got.DemandAccesses != want.DemandAccesses ||
		got.CompulsoryMisses != want.CompulsoryMisses {
		t.Errorf("%s: system totals = (%d, %d, %d), want (%d, %d, %d)", label,
			got.Instructions, got.DemandAccesses, got.CompulsoryMisses,
			want.Instructions, want.DemandAccesses, want.CompulsoryMisses)
	}
	if !reflect.DeepEqual(got.Classes, want.Classes) {
		t.Errorf("%s: class histogram diverged", label)
	}
	if !reflect.DeepEqual(got.L1D.Stats(), want.L1D.Stats()) {
		t.Errorf("%s: L1D stats diverged: %+v vs %+v", label, *got.L1D.Stats(), *want.L1D.Stats())
	}
	switch g := got.L2.(type) {
	case *TradL2:
		if !reflect.DeepEqual(g.C.Stats(), want.L2.(*TradL2).C.Stats()) {
			t.Errorf("%s: trad L2 stats diverged", label)
		}
	case *DistillL2:
		if !reflect.DeepEqual(g.C.Stats(), want.L2.(*DistillL2).C.Stats()) {
			t.Errorf("%s: distill L2 stats diverged", label)
		}
	case *CMPRL2:
		if !reflect.DeepEqual(g.C.Stats(), want.L2.(*CMPRL2).C.Stats()) {
			t.Errorf("%s: CMPR L2 stats diverged", label)
		}
	default:
		t.Fatalf("%s: unhandled L2 type %T", label, got.L2)
	}
}

// The equivalence matrix the PR's determinism claim rests on: a
// traditional system run sharded must reproduce the sequential window
// totals, done count, and every merged counter exactly, at every shard
// count and batch size.
func TestRunShardedMatchesSequentialTrad(t *testing.T) {
	const warmup, measure = 6_000, 18_000
	cfg := cache.Config{Name: "t", SizeBytes: 256 * 1024, Ways: 8}
	build := func(shard int) *System {
		sys, _ := Traditional(cfg)
		return sys
	}

	refSys, _ := Traditional(cfg)
	refWin, refDone := seqWindowed(refSys, streamFor(t, "twolf"), trace.DefaultBatchSize, warmup, measure)

	for _, shards := range []int{1, 2, 4, 8, MaxShards} {
		for _, batch := range []int{1, 64, 4096} {
			run, err := RunSharded(shards, batch, warmup, measure, streamFor(t, "twolf"), build)
			if err != nil {
				t.Fatalf("shards=%d batch=%d: %v", shards, batch, err)
			}
			name := "shards=" + itoa(shards) + " batch=" + itoa(batch)
			if run.Window != refWin {
				t.Errorf("%s: window %+v, want %+v", name, run.Window, refWin)
			}
			if run.Done != refDone {
				t.Errorf("%s: done %d, want %d", name, run.Done, refDone)
			}
			requireSameSystem(t, name, run.Systems[0], refSys)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// A shard-exact distill configuration (WOC-LRU, no median filter, no
// reverter, no noise, no slots hook) must also shard exactly — this is
// the configuration class merge.go certifies via Config.ShardExact.
func TestRunShardedMatchesSequentialDistill(t *testing.T) {
	const warmup, measure = 4_000, 12_000
	cfg := distill.Config{
		Name: "d", SizeBytes: 128 * 1024, Ways: 4, WOCWays: 1, Seed: 3, WOCLRU: true,
	}
	if !cfg.ShardExact() {
		t.Fatal("test config must be shard-exact")
	}
	build := func(shard int) *System {
		sys, _ := Distill(cfg)
		return sys
	}
	refSys, _ := Distill(cfg)
	refWin, refDone := seqWindowed(refSys, streamFor(t, "mcf"), 512, warmup, measure)

	run, err := RunSharded(4, 512, warmup, measure, streamFor(t, "mcf"), build)
	if err != nil {
		t.Fatal(err)
	}
	if run.Window != refWin || run.Done != refDone {
		t.Errorf("window/done = %+v/%d, want %+v/%d", run.Window, run.Done, refWin, refDone)
	}
	requireSameSystem(t, "distill", run.Systems[0], refSys)
}

func TestRunShardedMatchesSequentialCMPR(t *testing.T) {
	const warmup, measure = 4_000, 12_000
	cfg := ccompress.CMPRConfig{Name: "c", SizeBytes: 128 * 1024, Ways: 8, TagFactor: 2}
	model := func() *values.Model { return values.NewModel(7, values.Mix{Zero: 0.4, Half: 0.3, Full: 0.3}) }
	build := func(shard int) *System {
		sys, _ := Compressed(cfg, model())
		return sys
	}
	refSys, _ := Compressed(cfg, model())
	refWin, refDone := seqWindowed(refSys, streamFor(t, "art"), 256, warmup, measure)

	run, err := RunSharded(2, 256, warmup, measure, streamFor(t, "art"), build)
	if err != nil {
		t.Fatal(err)
	}
	if run.Window != refWin || run.Done != refDone {
		t.Errorf("window/done = %+v/%d, want %+v/%d", run.Window, run.Done, refWin, refDone)
	}
	requireSameSystem(t, "cmpr", run.Systems[0], refSys)
}

func TestRunShardedRejectsBadParameters(t *testing.T) {
	build := func(shard int) *System {
		sys, _ := Traditional(cache.Config{Name: "t", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
		return sys
	}
	empty := trace.NewSliceStream(nil)
	cases := []struct {
		name                           string
		shards, batch, warmup, measure int
	}{
		{"zero shards", 0, 64, 10, 10},
		{"non-power-of-two", 3, 64, 10, 10},
		{"too many shards", 2 * MaxShards, 64, 10, 10},
		{"zero batch", 2, 0, 10, 10},
		{"negative warmup", 2, 64, -1, 10},
		{"negative measure", 2, 64, 10, -1},
	}
	for _, c := range cases {
		if _, err := RunSharded(c.shards, c.batch, c.warmup, c.measure, empty, build); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestRunShardedRejectsNonShardable(t *testing.T) {
	build := func(shard int) *System {
		sys, _ := SFP(sfp.Config{Name: "s", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8,
			PredictorEntries: 256, TagsPerSet: 22, Seed: 3})
		return sys
	}
	_, err := RunSharded(2, 64, 10, 10, trace.NewSliceStream(nil), build)
	if err == nil {
		t.Fatal("SFP (global predictor) must not be accepted for sharding")
	}
}

func TestRunShardedDryStream(t *testing.T) {
	build := func(shard int) *System {
		sys, _ := Traditional(cache.Config{Name: "t", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
		return sys
	}
	run, err := RunSharded(4, 64, 1000, 1000, trace.NewSliceStream(nil), build)
	if err != nil {
		t.Fatal(err)
	}
	if run.Done != 0 {
		t.Errorf("done = %d on an empty stream", run.Done)
	}
	if run.Window != (WindowTotals{}) {
		t.Errorf("window = %+v, want zero", run.Window)
	}
}

// When the stream dries up mid-warmup the measurement boundary never
// arrives; the sharded run must report the same zero-delta window the
// sequential path does, while still accounting every driven record.
func TestRunShardedStreamEndsDuringWarmup(t *testing.T) {
	accs := make([]mem.Access, 100)
	for i := range accs {
		accs[i] = access(i, i%8, i%3 == 0, 1)
	}
	build := func(shard int) *System {
		sys, _ := Traditional(cache.Config{Name: "t", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
		return sys
	}
	refSys, _ := Traditional(cache.Config{Name: "t", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
	refWin, refDone := seqWindowed(refSys, trace.NewSliceStream(accs), 32, 1000, 1000)

	run, err := RunSharded(2, 32, 1000, 1000, trace.NewSliceStream(accs), build)
	if err != nil {
		t.Fatal(err)
	}
	if run.Done != refDone || run.Done != 100 {
		t.Errorf("done = %d, want %d", run.Done, refDone)
	}
	if run.Window != refWin || run.Window != (WindowTotals{}) {
		t.Errorf("window = %+v, want zero (%+v)", run.Window, refWin)
	}
	requireSameSystem(t, "short stream", run.Systems[0], refSys)
}

// A worker that panics mid-run must surface through par's recovery as
// an error — and the producer and sibling workers must still terminate
// (the refcounted drain keeps the pipeline from deadlocking).
func TestRunShardedWorkerPanicSurfaces(t *testing.T) {
	accs := make([]mem.Access, 4096)
	for i := range accs {
		accs[i] = access(i, 0, false, 1)
	}
	build := func(shard int) *System {
		sys, _ := Traditional(cache.Config{Name: "t", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
		if shard == 1 {
			// A nil inner cache makes the first L2-reaching access on this
			// shard dereference nil — a stand-in for any worker fault.
			sys.L2 = &TradL2{C: nil}
		}
		return sys
	}
	_, err := RunSharded(2, 64, 2048, 2048, trace.NewSliceStream(accs), build)
	if err == nil {
		t.Fatal("worker panic did not surface as an error")
	}
}

// The steady-state sharded/batched hot paths must not allocate.

func warmTradSystem() (*System, []trace.Record) {
	sys, _ := Traditional(cache.Config{Name: "t", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8})
	recs := make([]trace.Record, 256)
	for i := range recs {
		recs[i] = access(i%64, i%8, i%5 == 0, 1)
	}
	sys.DoBatch(recs) // populate caches and the compulsory line set
	return sys, recs
}

func TestDoBatchZeroAllocs(t *testing.T) {
	sys, recs := warmTradSystem()
	if n := testing.AllocsPerRun(500, func() { sys.DoBatch(recs) }); n != 0 {
		t.Errorf("DoBatch allocates %.1f/op", n)
	}
}

func TestDoBatchShardZeroAllocs(t *testing.T) {
	sys, recs := warmTradSystem()
	if n := testing.AllocsPerRun(500, func() { sys.doBatchShard(recs, 3, 1) }); n != 0 {
		t.Errorf("doBatchShard allocates %.1f/op", n)
	}
}

func TestMergeShardZeroAllocs(t *testing.T) {
	a, recs := warmTradSystem()
	b, _ := warmTradSystem()
	_ = recs
	if n := testing.AllocsPerRun(500, func() { a.MergeShard(b) }); n != 0 {
		t.Errorf("MergeShard allocates %.1f/op", n)
	}
}

// BenchmarkRunSharded measures the intra-run scaling the PR claims:
// the same materialized trace driven at increasing shard counts.
func BenchmarkRunSharded(b *testing.B) {
	prof, err := workload.ByName("twolf")
	if err != nil {
		b.Fatal(err)
	}
	const n = 200_000
	accs := make([]mem.Access, n)
	st := prof.Stream()
	for i := range accs {
		a, ok := st.Next()
		if !ok {
			b.Fatal("workload stream dried up")
		}
		accs[i] = a
	}
	cfg := cache.Config{Name: "t", SizeBytes: 1 << 20, Ways: 8}
	for _, shards := range []int{1, 2, 4} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			b.SetBytes(n)
			for i := 0; i < b.N; i++ {
				run, err := RunSharded(shards, trace.DefaultBatchSize, n/4, n-n/4,
					trace.NewSliceStream(accs), func(shard int) *System {
						sys, _ := Traditional(cfg)
						return sys
					})
				if err != nil {
					b.Fatal(err)
				}
				if run.Done != n {
					b.Fatalf("done = %d", run.Done)
				}
			}
		})
	}
}
