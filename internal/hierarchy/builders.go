package hierarchy

import (
	"ldis/internal/cache"
	"ldis/internal/compress"
	"ldis/internal/distill"
	"ldis/internal/sfp"
	"ldis/internal/values"
)

// Traditional builds an L1D + traditional L2 system from a full cache
// config (the general form of Baseline, used when the caller needs to
// set more than geometry — e.g. an observability cell).
func Traditional(cfg cache.Config) (*System, *cache.Cache) {
	c := cache.New(cfg)
	return NewSystem(NewTradL2(c)), c
}

// Baseline builds an L1D + traditional L2 system of the given data
// capacity and associativity.
func Baseline(name string, sizeBytes, ways int) (*System, *cache.Cache) {
	return Traditional(cache.Config{Name: name, SizeBytes: sizeBytes, Ways: ways})
}

// Distill builds an L1D + distill-cache system.
func Distill(cfg distill.Config) (*System, *distill.Cache) {
	c := distill.New(cfg)
	return NewSystem(NewDistillL2(c)), c
}

// Compressed builds an L1D + compressed-traditional-cache system over
// the given value model.
func Compressed(cfg compress.CMPRConfig, vals *values.Model) (*System, *compress.CMPR) {
	c := compress.NewCMPR(cfg, vals)
	return NewSystem(NewCMPRL2(c)), c
}

// SFP builds an L1D + spatial-footprint-predictor system.
func SFP(cfg sfp.Config) (*System, *sfp.Cache) {
	c := sfp.New(cfg)
	return NewSystem(NewSFPL2(c)), c
}

// FAC builds a distill-cache system whose WOC installs use
// footprint-aware compression over the given value model (Section 8.2).
func FAC(cfg distill.Config, vals *values.Model) (*System, *distill.Cache) {
	cfg.Slots = compress.FACSlots(vals)
	return Distill(cfg)
}
