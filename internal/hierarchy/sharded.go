package hierarchy

import (
	"fmt"
	"sync/atomic"

	"ldis/internal/par"
	"ldis/internal/trace"
)

// Intra-run sharding: one trace, k cache-state shards, byte-identical
// results.
//
// The line-address low bits select both the shard and (a suffix of)
// every cache's set index, so shard s owns exactly the sets whose
// index is ≡ s (mod shards): no set is ever touched by two shards, and
// each shard sees its sets' accesses in program order. For a
// shard-exact organization (see merge.go) that per-set prefix property
// makes every shard's state and counters identical to the sequential
// run's restriction to those sets; summing the disjoint counters
// reproduces the sequential totals exactly.
//
// The engine is a single-producer broadcast pipeline: task 0 fills
// fixed-size record blocks from the batch stream and broadcasts each
// block to every shard's channel; shard workers filter the block down
// to their own lines. Blocks are refcounted and recycled through a
// free pool, so the steady state allocates nothing.

// MaxShards bounds the shard count: the smallest structure sharded is
// the paper's 128-set L1D, and exactness needs every set owned by one
// shard, so the mask may cover at most its 7 index bits.
const MaxShards = 128

// shardBlock is one record block in flight from the producer to the
// shard workers.
type shardBlock struct {
	recs []trace.Record
	n    int
	// snapshotFirst marks the first block of the measurement phase:
	// each worker snapshots its window immediately before processing
	// it, which splits warmup from measurement at exactly the same
	// record boundary as the sequential path.
	snapshotFirst bool
	refs          atomic.Int32
}

// ShardRun is the outcome of a sharded run. Systems[0] holds the
// merged counters (MergeShard folds every sibling in before the run
// returns); the full slice is retained so tests can inspect per-shard
// state.
type ShardRun struct {
	Systems []*System
	Window  WindowTotals
	Done    int
}

// MPKI returns the measurement window's misses per kilo-instruction.
func (r *ShardRun) MPKI() float64 { return r.Window.MPKI() }

// shardResult is one par task's contribution: the producer reports the
// record count, each worker its window deltas.
type shardResult struct {
	win  WindowTotals
	done int
}

// RunSharded drives warmup+measure records from bs through shards
// independent systems built by build (a pure function of its shard
// index), snapshots each shard's measurement window at the warmup
// boundary, and merges windows and counters. The batch stream is
// consumed with exactly the same NextBatch call sequence as the
// sequential windowed runner — ceil(warmup/batchSize) then
// ceil(measure/batchSize) calls — so even span call counts in obs
// manifests match the sequential path.
//
// The caller's build closure must not write captured state: it runs
// once per shard on the caller's goroutine, but the systems it returns
// are driven concurrently, and the purity contract (enforced by the
// gridpure analyzer) keeps results independent of scheduling.
func RunSharded(shards, batchSize, warmup, measure int, bs trace.BatchStream, build func(shard int) *System) (*ShardRun, error) {
	if shards < 1 || shards > MaxShards || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("hierarchy: shard count %d must be a power of two in [1, %d]", shards, MaxShards)
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("hierarchy: batch size %d must be positive", batchSize)
	}
	if warmup < 0 || measure < 0 {
		return nil, fmt.Errorf("hierarchy: negative window (warmup %d, measure %d)", warmup, measure)
	}
	systems := make([]*System, shards)
	for i := range systems {
		systems[i] = build(i)
		if !Shardable(systems[i]) {
			return nil, fmt.Errorf("hierarchy: L2 organization %T is not shard-exact", systems[i].L2)
		}
	}
	mask := uint64(shards - 1)

	// Block pool: enough blocks that the producer stays ahead of slow
	// workers without unbounded buffering. The free channel holds every
	// block, so returning one never blocks a worker.
	nblocks := 2*shards + 4
	if nblocks > 32 {
		nblocks = 32
	}
	free := make(chan *shardBlock, nblocks)
	for i := 0; i < nblocks; i++ {
		free <- &shardBlock{recs: make([]trace.Record, batchSize)}
	}
	chans := make([]chan *shardBlock, shards)
	for i := range chans {
		chans[i] = make(chan *shardBlock, nblocks)
	}

	produce := func() (shardResult, error) {
		// Closing every shard channel on the way out — panic included —
		// guarantees the workers always terminate.
		defer func() {
			for _, ch := range chans {
				close(ch)
			}
		}()
		done := 0
		for phase, total := range [2]int{warmup, measure} {
			remaining := total
			first := phase == 1
			for remaining > 0 {
				want := batchSize
				if want > remaining {
					want = remaining
				}
				blk := <-free
				blk.n = bs.NextBatch(blk.recs[:want])
				blk.snapshotFirst = first
				first = false
				blk.refs.Store(int32(shards))
				for _, ch := range chans {
					ch <- blk
				}
				done += blk.n
				remaining -= blk.n
				if blk.n < want {
					// Stream exhausted mid-phase; workers snapshot at
					// close if the measurement boundary never arrived,
					// matching the sequential path's zero-delta window.
					return shardResult{done: done}, nil
				}
			}
		}
		return shardResult{done: done}, nil
	}

	consume := func(shard int) (shardResult, error) {
		sys := systems[shard]
		ch := chans[shard]
		// If this worker panics, a drainer goroutine keeps consuming
		// (and releasing) its blocks so the producer and the sibling
		// workers finish; the panic is then re-raised for par's
		// recovery boundary.
		defer func() {
			if r := recover(); r != nil {
				//ldis:goroutine-ok drainer is bounded by the producer closing ch; joining it here would deadlock the panic path
				go drainBlocks(ch, free)
				panic(r)
			}
		}()
		var win *Window
		for blk := range ch {
			if blk.snapshotFirst {
				win = sys.StartWindow()
			}
			sys.doBatchShard(blk.recs[:blk.n], mask, uint64(shard))
			if blk.refs.Add(-1) == 0 {
				free <- blk
			}
		}
		if win == nil {
			win = sys.StartWindow()
		}
		return shardResult{win: win.Totals()}, nil
	}

	// Task 0 is the producer, tasks 1..shards the workers. Asking for
	// shards+1 workers over shards+1 tasks guarantees every task has a
	// goroutine from the start — the pipeline deadlocks if the producer
	// had to wait for a worker slot.
	results, err := par.Map(shards+1, shards+1, func(i int) (shardResult, error) {
		if i == 0 {
			return produce()
		}
		return consume(i - 1)
	})
	if err != nil {
		return nil, err
	}

	run := &ShardRun{Systems: systems, Done: results[0].done}
	for _, r := range results[1:] {
		run.Window.Add(r.win)
	}
	for _, sys := range systems[1:] {
		systems[0].MergeShard(sys)
	}
	return run, nil
}

// drainBlocks releases the blocks of a dead worker until its channel
// closes, keeping the refcount protocol (and therefore the producer)
// alive.
func drainBlocks(ch chan *shardBlock, free chan *shardBlock) {
	for blk := range ch {
		if blk.refs.Add(-1) == 0 {
			free <- blk
		}
	}
}
