// Package hierarchy wires a sectored L1D to one of the L2
// organizations under study (traditional, distill, compressed, SFP) and
// runs access streams through the stack, collecting the statistics the
// paper's experiments report. Inclusion is not enforced (Table 1).
package hierarchy

import (
	"fmt"

	"ldis/internal/cache"
	"ldis/internal/compress"
	"ldis/internal/distill"
	"ldis/internal/l1"
	"ldis/internal/mem"
	"ldis/internal/sfp"
	"ldis/internal/stats"
	"ldis/internal/trace"
)

// Class classifies one processor access by where it was served; the
// CPU timing model assigns latencies per class.
type Class uint8

const (
	// L1Hit: served by the L1D.
	L1Hit Class = iota
	// L2Hit: L1D miss served by the L2 (LOC hit for a distill cache).
	L2Hit
	// L2WOCHit: served by the WOC — same as L2Hit plus the two-cycle
	// word-rearrangement latency (Section 7.4).
	L2WOCHit
	// L2Miss: went to memory.
	L2Miss
	// NumClasses is the class count.
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case L1Hit:
		return "l1-hit"
	case L2Hit:
		return "l2-hit"
	case L2WOCHit:
		return "l2-woc-hit"
	case L2Miss:
		return "l2-miss"
	default:
		return "invalid"
	}
}

// L2 is the second-level cache seen by the hierarchy. Implementations
// perform the complete access (including the fill on a miss) and report
// the service class and the valid-word mask handed to the L1D.
type L2 interface {
	Access(la mem.LineAddr, word int, pc mem.Addr, write bool) (Class, mem.Footprint)
	// AccessInstr serves an instruction fetch (an L1I miss). The
	// distill cache places such lines in the LOC but never distills
	// them (paper Section 4); other organizations treat them normally.
	AccessInstr(la mem.LineAddr, pc mem.Addr) (Class, mem.Footprint)
	WritebackFromL1(la mem.LineAddr, footprint, dirty mem.Footprint)
	// Misses returns the cumulative demand-miss count (for MPKI).
	Misses() uint64
	// Accesses returns the cumulative demand-access count.
	Accesses() uint64
}

// System is an L1D + L2 stack with a run harness.
type System struct {
	L1D *l1.Cache
	L2  L2

	// Instructions counts retired instructions (from Instret fields).
	Instructions uint64 //ldis:shard-owned
	// Classes histograms accesses by service class.
	Classes *stats.Histogram
	// DemandAccesses counts processor-side references.
	DemandAccesses uint64 //ldis:shard-owned
	// CompulsoryMisses counts L2 misses to never-before-touched lines
	// (the Table 2 "Compulsory Misses" column).
	CompulsoryMisses uint64 //ldis:shard-owned

	seen     lineSet
	batchBuf []trace.Record
}

// NewSystem builds a hierarchy with the paper's default L1D.
func NewSystem(l2 L2) *System {
	return &System{
		L1D:     l1.New(l1.DefaultConfig()),
		L2:      l2,
		Classes: stats.NewHistogram("access classes", int(NumClasses)),
		seen:    newLineSet(),
	}
}

// Do performs one processor access end to end and returns its class.
// The compulsory-miss set is consulted only on L2 misses: lines enter
// every L2 organization exclusively through this path, so a line's
// first L2-reaching access always misses and records it — an L2 hit
// therefore implies the line was already seen, and the hit paths skip
// the hash probe entirely.
//
//ldis:noalloc
func (s *System) Do(a mem.Access) Class {
	s.Instructions += uint64(a.Instret)
	s.DemandAccesses++
	la, word, write := a.Line(), a.Word(), a.IsWrite()
	if a.Kind == mem.IFetch {
		// The trace carries the L1I *miss* stream directly, so fetches
		// bypass the (not separately modelled) L1I and hit the L2.
		//ldis:alloc-ok interface dispatch into the L2 organization; every implementation is annotated noalloc
		class, _ := s.L2.AccessInstr(la, a.PC)
		if class == L2Miss && !s.seen.testAndSet(la) {
			s.CompulsoryMisses++
		}
		s.Classes.Add(int(class))
		return class
	}
	out, ev, had := s.L1D.AccessEvict(la, word, write)
	if out == l1.Hit {
		s.Classes.Add(int(L1Hit))
		return L1Hit
	}
	// Line miss or sector miss: the L1D victim's writeback (footprint +
	// dirty words) is issued with the miss request, as from a victim
	// buffer, so the L2 has the usage information before it distills.
	if had {
		//ldis:alloc-ok interface dispatch into the L2 organization; every implementation is annotated noalloc
		s.L2.WritebackFromL1(ev.Line, ev.Footprint, ev.Dirty)
	}
	// Consult the L2 (with the sector id, per Section 4.2 — our word
	// index plays that role).
	//ldis:alloc-ok interface dispatch into the L2 organization; every implementation is annotated noalloc
	class, valid := s.L2.Access(la, word, a.PC, write)
	if class == L2Miss && !s.seen.testAndSet(la) {
		s.CompulsoryMisses++
	}
	if out == l1.LineMiss {
		// The line is absent (AccessEvict just said so), so the fill can
		// skip the presence scan; it may displace a line whose slot was
		// freed by an unrelated Invalidate.
		if fev, fhad := s.L1D.FillNew(la, valid, word, write); fhad {
			//ldis:alloc-ok interface dispatch into the L2 organization; every implementation is annotated noalloc
			s.L2.WritebackFromL1(fev.Line, fev.Footprint, fev.Dirty)
		}
	} else {
		// Sector fill: the line is present, so Fill merges valid bits and
		// never evicts.
		s.L1D.Fill(la, valid, word, write)
	}
	s.Classes.Add(int(class))
	return class
}

// DoBatch drives one record block through the system: the bulk half of
// the batched pipeline. The scalar Do stays as the compatibility entry
// point (the CPU timing model still paces accesses one by one).
//
//ldis:noalloc
func (s *System) DoBatch(recs []trace.Record) {
	for i := range recs {
		s.Do(recs[i])
	}
}

// doBatchShard drives only the records owned by one shard — those
// whose line address satisfies la&mask == shard — through the system.
// Skipped records belong to (and are processed by) sibling shards, so
// summing any counter across all shards reproduces the sequential
// total exactly.
//
//ldis:noalloc
func (s *System) doBatchShard(recs []trace.Record, mask, shard uint64) {
	for i := range recs {
		if uint64(recs[i].Line())&mask != shard {
			continue
		}
		s.Do(recs[i])
	}
}

// Run drives up to n accesses from the stream through the system (all
// of them if n <= 0) and returns how many were performed. The stream
// is consumed through the batched bulk path, so every Run caller —
// including the root facade and the CLIs — gets block-at-a-time record
// filling for free.
func (s *System) Run(st trace.Stream, n int) int {
	return s.RunBatch(trace.Batched(st), n)
}

// RunBatch drives up to n accesses from the batch stream (all until
// exhaustion if n <= 0) and returns how many were performed. It never
// reads past n records, so chunked callers can keep consuming the same
// stream afterwards.
func (s *System) RunBatch(bs trace.BatchStream, n int) int {
	if s.batchBuf == nil {
		s.batchBuf = make([]trace.Record, trace.DefaultBatchSize)
	}
	done := 0
	for n <= 0 || done < n {
		want := len(s.batchBuf)
		if n > 0 && n-done < want {
			want = n - done
		}
		got := bs.NextBatch(s.batchBuf[:want])
		s.DoBatch(s.batchBuf[:got])
		done += got
		if got < want {
			break
		}
	}
	return done
}

// Window captures a measurement window: counter snapshots taken after
// warmup so MPKI excludes cold-start effects.
type Window struct {
	startInstructions uint64
	startMisses       uint64
	startAccesses     uint64
	sys               *System
}

// StartWindow begins a measurement window.
func (s *System) StartWindow() *Window {
	return &Window{
		startInstructions: s.Instructions,
		startMisses:       s.L2.Misses(),
		startAccesses:     s.L2.Accesses(),
		sys:               s,
	}
}

// Instructions returns instructions retired inside the window.
func (w *Window) Instructions() uint64 { return w.sys.Instructions - w.startInstructions }

// Misses returns L2 misses inside the window.
func (w *Window) Misses() uint64 { return w.sys.L2.Misses() - w.startMisses }

// L2Accesses returns L2 accesses inside the window.
func (w *Window) L2Accesses() uint64 { return w.sys.L2.Accesses() - w.startAccesses }

// MPKI returns the window's misses per kilo-instruction.
func (w *Window) MPKI() float64 { return stats.MPKI(w.Misses(), w.Instructions()) }

// WindowTotals is a window's counter deltas in plain integer form, the
// unit the sharded runner merges: per-shard deltas sum commutatively to
// exactly the sequential deltas, so derived floats (MPKI) come out
// byte-identical.
type WindowTotals struct {
	Instructions uint64
	Misses       uint64
	L2Accesses   uint64
}

// Totals snapshots the window's deltas.
func (w *Window) Totals() WindowTotals {
	return WindowTotals{
		Instructions: w.Instructions(),
		Misses:       w.Misses(),
		L2Accesses:   w.L2Accesses(),
	}
}

// Add folds another shard's deltas in.
//
//ldis:noalloc
func (t *WindowTotals) Add(o WindowTotals) {
	t.Instructions += o.Instructions
	t.Misses += o.Misses
	t.L2Accesses += o.L2Accesses
}

// MPKI returns the merged misses per kilo-instruction.
func (t WindowTotals) MPKI() float64 { return stats.MPKI(t.Misses, t.Instructions) }

// ---------------------------------------------------------------------
// L2 adapters
// ---------------------------------------------------------------------

// TradL2 adapts the traditional set-associative cache.
type TradL2 struct {
	C *cache.Cache
}

// NewTradL2 wraps a traditional cache.
func NewTradL2(c *cache.Cache) *TradL2 { return &TradL2{C: c} }

// Access implements L2. The fused lookup+install walks the set once on
// the miss path; the cache counts the victim's writeback internally.
func (t *TradL2) Access(la mem.LineAddr, word int, _ mem.Addr, write bool) (Class, mem.Footprint) {
	if t.C.AccessInstall(la, word, write) {
		return L2Hit, mem.FullFootprint
	}
	return L2Miss, mem.FullFootprint
}

// AccessInstr implements L2: instruction lines are ordinary lines in a
// traditional cache.
func (t *TradL2) AccessInstr(la mem.LineAddr, pc mem.Addr) (Class, mem.Footprint) {
	return t.Access(la, 0, pc, false)
}

// WritebackFromL1 implements L2: one fused scan merges the footprint
// and dirties the resident copy.
func (t *TradL2) WritebackFromL1(la mem.LineAddr, footprint, dirty mem.Footprint) {
	t.C.MergeWriteback(la, footprint.Or(dirty), dirty)
}

// Misses implements L2.
func (t *TradL2) Misses() uint64 { return t.C.Stats().Misses }

// Accesses implements L2.
func (t *TradL2) Accesses() uint64 { return t.C.Stats().Accesses }

// DistillL2 adapts the distill cache.
type DistillL2 struct {
	C *distill.Cache
}

// NewDistillL2 wraps a distill cache.
func NewDistillL2(c *distill.Cache) *DistillL2 { return &DistillL2{C: c} }

// Access implements L2.
func (d *DistillL2) Access(la mem.LineAddr, word int, _ mem.Addr, write bool) (Class, mem.Footprint) {
	r := d.C.Access(la, word, write)
	switch r.Outcome {
	case distill.LOCHit:
		return L2Hit, r.ValidBits
	case distill.WOCHit:
		return L2WOCHit, r.ValidBits
	default:
		return L2Miss, r.ValidBits
	}
}

// AccessInstr implements L2: instruction lines enter the LOC but are
// never distilled.
func (d *DistillL2) AccessInstr(la mem.LineAddr, _ mem.Addr) (Class, mem.Footprint) {
	r := d.C.AccessInstruction(la, 0, false)
	switch r.Outcome {
	case distill.LOCHit:
		return L2Hit, r.ValidBits
	case distill.WOCHit:
		return L2WOCHit, r.ValidBits
	default:
		return L2Miss, r.ValidBits
	}
}

// WritebackFromL1 implements L2.
func (d *DistillL2) WritebackFromL1(la mem.LineAddr, footprint, dirty mem.Footprint) {
	d.C.WritebackFromL1(la, footprint, dirty)
}

// Misses implements L2.
func (d *DistillL2) Misses() uint64 { return d.C.Stats().Misses() }

// Accesses implements L2.
func (d *DistillL2) Accesses() uint64 { return d.C.Stats().Accesses }

// CMPRL2 adapts the compressed traditional cache.
type CMPRL2 struct {
	C *compress.CMPR
}

// NewCMPRL2 wraps a compressed cache.
func NewCMPRL2(c *compress.CMPR) *CMPRL2 { return &CMPRL2{C: c} }

// Access implements L2.
func (c *CMPRL2) Access(la mem.LineAddr, word int, _ mem.Addr, write bool) (Class, mem.Footprint) {
	if c.C.Access(la, word, write) {
		return L2Hit, mem.FullFootprint
	}
	return L2Miss, mem.FullFootprint
}

// AccessInstr implements L2.
func (c *CMPRL2) AccessInstr(la mem.LineAddr, pc mem.Addr) (Class, mem.Footprint) {
	return c.Access(la, 0, pc, false)
}

// WritebackFromL1 implements L2. The compressed cache stores whole
// lines, so a dirty writeback just dirties the resident copy.
func (c *CMPRL2) WritebackFromL1(la mem.LineAddr, _, dirty mem.Footprint) {
	if dirty != 0 && c.C.Present(la) {
		// Mark dirty by a write access that will hit.
		c.C.Access(la, dirty.Words()[0], true)
	}
}

// Misses implements L2.
func (c *CMPRL2) Misses() uint64 { return c.C.Stats().Misses }

// Accesses implements L2.
func (c *CMPRL2) Accesses() uint64 { return c.C.Stats().Accesses }

// SFPL2 adapts the spatial-footprint-predictor cache.
type SFPL2 struct {
	C *sfp.Cache
}

// NewSFPL2 wraps an SFP cache.
func NewSFPL2(c *sfp.Cache) *SFPL2 { return &SFPL2{C: c} }

// Access implements L2.
func (s *SFPL2) Access(la mem.LineAddr, word int, pc mem.Addr, write bool) (Class, mem.Footprint) {
	hit, valid := s.C.Access(la, word, pc, write)
	if hit {
		return L2Hit, valid
	}
	return L2Miss, valid
}

// AccessInstr implements L2: instruction fetches are predicted like
// data (the SFP's default full-line prediction makes cold code behave
// traditionally).
func (s *SFPL2) AccessInstr(la mem.LineAddr, pc mem.Addr) (Class, mem.Footprint) {
	return s.Access(la, 0, pc, false)
}

// WritebackFromL1 implements L2.
func (s *SFPL2) WritebackFromL1(la mem.LineAddr, footprint, dirty mem.Footprint) {
	s.C.WritebackFromL1(la, footprint, dirty)
}

// Misses implements L2.
func (s *SFPL2) Misses() uint64 { return s.C.Stats().Misses() }

// Accesses implements L2.
func (s *SFPL2) Accesses() uint64 { return s.C.Stats().Accesses }

// Check that the adapters satisfy the interface.
var (
	_ L2 = (*TradL2)(nil)
	_ L2 = (*DistillL2)(nil)
	_ L2 = (*CMPRL2)(nil)
	_ L2 = (*SFPL2)(nil)
)

// Describe returns a one-line summary of a system's state, useful in
// examples and CLI output.
func (s *System) Describe() string {
	return fmt.Sprintf("%d accesses, %d instructions, L2 misses %d (MPKI %.2f)",
		s.DemandAccesses, s.Instructions, s.L2.Misses(),
		stats.MPKI(s.L2.Misses(), s.Instructions))
}
