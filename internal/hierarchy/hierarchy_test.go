package hierarchy

import (
	"testing"

	"ldis/internal/distill"
	"ldis/internal/mem"
	"ldis/internal/sfp"
	"ldis/internal/trace"
	"ldis/internal/values"
	"ldis/internal/workload"

	ccompress "ldis/internal/compress"
)

func access(line int, word int, write bool, instret uint32) mem.Access {
	k := mem.Load
	if write {
		k = mem.Store
	}
	return mem.Access{Addr: mem.LineAddr(line).WordAddr(word), Kind: k, Instret: instret, PC: 0x400}
}

func TestL1FiltersRepeatAccesses(t *testing.T) {
	sys, l2 := Baseline("b", 64*8*mem.LineSize, 8)
	// Two accesses to the same line: second is an L1 hit, L2 sees one.
	if got := sys.Do(access(5, 0, false, 3)); got != L2Miss {
		t.Fatalf("first access class %v", got)
	}
	if got := sys.Do(access(5, 1, false, 3)); got != L1Hit {
		t.Fatalf("second access class %v", got)
	}
	if l2.Stats().Accesses != 1 {
		t.Errorf("L2 saw %d accesses, want 1", l2.Stats().Accesses)
	}
	if sys.Instructions != 6 {
		t.Errorf("instructions = %d", sys.Instructions)
	}
}

func TestFootprintFlowsToL2OnL1Eviction(t *testing.T) {
	sys, l2 := Baseline("b", 64*8*mem.LineSize, 8)
	// Touch two words of line 0 (one L2 access + one L1 hit), then evict
	// it from the tiny L1D by filling its set (L1D: 128 sets, 2 ways —
	// lines 0, 128, 256 share L1 set 0).
	sys.Do(access(0, 0, false, 1))
	sys.Do(access(0, 5, false, 1))
	sys.Do(access(128, 0, false, 1))
	sys.Do(access(256, 0, false, 1)) // evicts line 0 from L1D
	// L2 line 0 footprint must now include word 5 (merged from L1).
	found := false
	l2.VisitLines(func(la mem.LineAddr, fp mem.Footprint) {
		if la == 0 {
			found = true
			if !fp.Has(0) || !fp.Has(5) {
				t.Errorf("L2 footprint for line 0 = %v, want words 0 and 5", fp)
			}
		}
	})
	if !found {
		t.Fatal("line 0 missing from L2")
	}
}

func TestSectorMissGoesBackToL2(t *testing.T) {
	cfg := distill.Config{
		Name: "d", SizeBytes: 64 * 4 * mem.LineSize, Ways: 4, WOCWays: 1, Seed: 3,
	}
	sys, dc := Distill(cfg)
	// Distill line 0 with only word 0 used: fill LOC set 0 (3 ways).
	// Lines 128 and 256 also map to L1D set 0, evicting line 0 from the
	// L1D so later accesses reach the L2.
	sys.Do(access(0, 0, false, 1))
	for _, ln := range []int{64, 128, 256} {
		sys.Do(access(ln, 0, false, 1)) // same L2 set
	}
	if dc.Present(0) != "woc" {
		t.Fatalf("line 0 in %q, want woc", dc.Present(0))
	}
	// WOC hit: the L1D receives only word 0.
	if got := sys.Do(access(0, 0, false, 1)); got != L2WOCHit {
		t.Fatalf("WOC access class %v", got)
	}
	if vb := sys.L1D.ValidBits(0); vb != mem.FootprintOfWord(0) {
		t.Fatalf("L1D valid bits %v, want word 0 only", vb)
	}
	// Accessing word 3 sector-misses in L1D and hole-misses in L2.
	before := dc.Stats().HoleMisses
	if got := sys.Do(access(0, 3, false, 1)); got != L2Miss {
		t.Fatalf("hole access class %v", got)
	}
	if dc.Stats().HoleMisses != before+1 {
		t.Error("hole miss not recorded")
	}
	// After the refetch the L1D holds the full line.
	if vb := sys.L1D.ValidBits(0); vb != mem.FullFootprint {
		t.Errorf("L1D valid bits after hole fill = %v", vb)
	}
	if sys.L1D.Stats().SectorMisses != 1 {
		t.Errorf("sector misses = %d", sys.L1D.Stats().SectorMisses)
	}
}

func TestWindowMeasuresDeltas(t *testing.T) {
	sys, _ := Baseline("b", 64*8*mem.LineSize, 8)
	prof, err := workload.ByName("twolf")
	if err != nil {
		t.Fatal(err)
	}
	st := prof.Stream()
	sys.Run(st, 2000)
	w := sys.StartWindow()
	if w.Misses() != 0 || w.Instructions() != 0 {
		t.Fatal("fresh window should be empty")
	}
	sys.Run(st, 2000)
	if w.Instructions() == 0 || w.L2Accesses() == 0 {
		t.Error("window did not observe the second run")
	}
	if w.MPKI() < 0 {
		t.Error("negative MPKI")
	}
}

func TestRunStopsAtStreamEnd(t *testing.T) {
	sys, _ := Baseline("b", 64*8*mem.LineSize, 8)
	accs := []mem.Access{access(0, 0, false, 1), access(1, 0, false, 1)}
	if n := sys.Run(trace.NewSliceStream(accs), 100); n != 2 {
		t.Errorf("Run did %d accesses, want 2", n)
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{L1Hit: "l1-hit", L2Hit: "l2-hit", L2WOCHit: "l2-woc-hit", L2Miss: "l2-miss", Class(9): "invalid"}
	//ldis:nondet-ok iteration order only affects t.Errorf attribution, not any experiment output
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestCMPRSystem(t *testing.T) {
	cfg := ccompress.CMPRConfig{Name: "c", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8, TagFactor: 4}
	sys, cc := Compressed(cfg, values.NewModel(1, values.Mix{Zero: 1}))
	sys.Do(access(0, 0, false, 1))
	if got := sys.Do(access(0, 7, false, 1)); got != L1Hit {
		t.Fatalf("second word class %v (full line in L1)", got)
	}
	sys.Do(access(128, 0, false, 1))
	sys.Do(access(256, 0, false, 1)) // evict line 0 from L1D
	if got := sys.Do(access(0, 3, false, 1)); got != L2Hit {
		t.Fatalf("compressed L2 should hit, got %v", got)
	}
	if cc.Stats().Hits == 0 {
		t.Error("CMPR hits not counted")
	}
}

func TestSFPSystem(t *testing.T) {
	cfg := sfp.Config{
		Name: "s", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8,
		PredictorEntries: 256, TagsPerSet: 22, Seed: 3,
	}
	sys, sc := SFP(cfg)
	sys.Do(access(0, 0, false, 1))
	if sc.Stats().LineMisses != 1 {
		t.Errorf("SFP line misses = %d", sc.Stats().LineMisses)
	}
	if got := sys.Do(access(0, 5, false, 1)); got != L1Hit {
		t.Fatalf("full cold install should leave the line in L1, got %v", got)
	}
}

func TestFACSystem(t *testing.T) {
	cfg := distill.Config{
		Name: "fac", SizeBytes: 64 * 4 * mem.LineSize, Ways: 4, WOCWays: 1, Seed: 3,
	}
	sys, dc := FAC(cfg, values.NewModel(1, values.Mix{Zero: 1}))
	// Distill a 4-word line: with all-zero values it compresses into a
	// single WOC slot instead of four.
	for w := 0; w < 4; w++ {
		sys.Do(access(0, w, false, 1))
	}
	// Fillers 128 and 256 evict line 0 from the L1D first, so its full
	// footprint reaches the LOC before distillation.
	for _, ln := range []int{64, 128, 256} {
		sys.Do(access(ln, 0, false, 1))
	}
	if dc.Present(0) != "woc" {
		t.Fatalf("line in %q", dc.Present(0))
	}
	if vb := dc.WOCValidBits(0); vb.Count() != 4 {
		t.Errorf("FAC WOC words = %v", vb)
	}
}

func TestDescribe(t *testing.T) {
	sys, _ := Baseline("b", 64*8*mem.LineSize, 8)
	sys.Do(access(0, 0, false, 5))
	if s := sys.Describe(); s == "" {
		t.Error("empty description")
	}
}

func TestInstructionFetchPath(t *testing.T) {
	// IFetch accesses bypass the L1D and reach the L2 directly; the
	// distill cache must never distill instruction lines.
	cfg := distill.Config{
		Name: "d", SizeBytes: 64 * 4 * mem.LineSize, Ways: 4, WOCWays: 1, Seed: 3,
	}
	sys, dc := Distill(cfg)
	ifetch := func(line int) Class {
		return sys.Do(mem.Access{Addr: mem.LineAddr(line).WordAddr(0), Kind: mem.IFetch, Instret: 1})
	}
	if got := ifetch(0); got != L2Miss {
		t.Fatalf("cold ifetch class %v", got)
	}
	if got := ifetch(0); got != L2Hit {
		t.Fatalf("warm ifetch class %v", got)
	}
	if sys.L1D.Present(0) {
		t.Error("instruction line must not enter the L1D")
	}
	// Push the instruction line out of the LOC: it must be evicted, not
	// distilled into the WOC.
	for i := 1; i <= 3; i++ {
		ifetch(i * 64)
	}
	if got := dc.Present(0); got != "" {
		t.Errorf("evicted instruction line in %q, want gone", got)
	}
	if dc.Stats().InstrEvictions == 0 {
		t.Error("instruction eviction not counted")
	}
}

func TestInstructionFetchOtherL2s(t *testing.T) {
	ia := mem.Access{Addr: mem.LineAddr(7).WordAddr(0), Kind: mem.IFetch, Instret: 1}
	// Traditional.
	sysT, _ := Baseline("t", 64*8*mem.LineSize, 8)
	if got := sysT.Do(ia); got != L2Miss {
		t.Errorf("trad cold ifetch = %v", got)
	}
	if got := sysT.Do(ia); got != L2Hit {
		t.Errorf("trad warm ifetch = %v", got)
	}
	// CMPR.
	sysC, _ := Compressed(ccompress.CMPRConfig{Name: "c", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8, TagFactor: 4},
		values.NewModel(1, values.Mix{Zero: 1}))
	if got := sysC.Do(ia); got != L2Miss {
		t.Errorf("cmpr cold ifetch = %v", got)
	}
	if got := sysC.Do(ia); got != L2Hit {
		t.Errorf("cmpr warm ifetch = %v", got)
	}
	// SFP.
	sysS, _ := SFP(sfp.Config{Name: "s", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8,
		PredictorEntries: 256, TagsPerSet: 22, Seed: 3})
	if got := sysS.Do(ia); got != L2Miss {
		t.Errorf("sfp cold ifetch = %v", got)
	}
	if got := sysS.Do(ia); got != L2Hit {
		t.Errorf("sfp warm ifetch = %v", got)
	}
}

func TestCompulsoryTracking(t *testing.T) {
	sys, _ := Baseline("b", 64*8*mem.LineSize, 8)
	sys.Do(access(0, 0, false, 1))   // compulsory
	sys.Do(access(0, 1, false, 1))   // L1 hit
	sys.Do(access(128, 0, false, 1)) // compulsory
	if sys.CompulsoryMisses != 2 {
		t.Errorf("compulsory = %d, want 2", sys.CompulsoryMisses)
	}
	if sys.L2.Misses() != 2 || sys.L2.Accesses() != 2 {
		t.Errorf("L2 misses/accesses = %d/%d", sys.L2.Misses(), sys.L2.Accesses())
	}
}
