package hierarchy

// Shard-exactness and commutative stat merging: the hooks the sharded
// runner (sharded.go) uses to decide whether an L2 organization can be
// partitioned by line address and to fold per-shard counters back into
// one aggregate.

// shardExact is implemented by L2 adapters that can certify their
// results are a pure function of per-set access order. Line-address
// sharding preserves exactly the per-set program order (a set's lines
// all share the address low bits the shard mask selects), so such an
// organization produces byte-identical state and counters at any shard
// count. Organizations with cross-set coupling — a shared predictor
// table, a global RNG stream, a global median filter or PSEL — must
// report false and run sequentially.
type shardExact interface{ ShardExact() bool }

// shardMerger is implemented by L2 adapters that can fold a sibling
// shard's counters into their own.
type shardMerger interface{ MergeShard(o L2) }

// Shardable reports whether the system's L2 organization produces
// byte-identical results under line-address sharding.
func Shardable(sys *System) bool {
	se, ok := sys.L2.(shardExact)
	return ok && se.ShardExact()
}

// MergeShard folds a sibling shard's counters into s. Shards partition
// the line-address space, so every counter is a disjoint sum and plain
// addition reproduces the sequential totals exactly.
//
//ldis:noalloc
func (s *System) MergeShard(o *System) {
	s.Instructions += o.Instructions
	s.DemandAccesses += o.DemandAccesses
	s.CompulsoryMisses += o.CompulsoryMisses
	s.Classes.Merge(o.Classes)
	s.L1D.Stats().Merge(o.L1D.Stats())
	if m, ok := s.L2.(shardMerger); ok {
		//ldis:alloc-ok interface dispatch into the merge hook; the implementations below are annotated noalloc
		m.MergeShard(o.L2)
	}
}

// ShardExact implements shardExact: the traditional cache keeps purely
// per-set state (tags, LRU order, footprints), so any per-set access
// order equal to program order reproduces it exactly.
func (t *TradL2) ShardExact() bool { return true }

// MergeShard implements shardMerger.
//
//ldis:noalloc
func (t *TradL2) MergeShard(o L2) { t.C.Stats().Merge(o.(*TradL2).C.Stats()) }

// ShardExact implements shardExact: the compressed cache's state is
// per-set and its compressed sizes come from the values model, a pure
// function of (seed, address), so sharding is exact.
func (c *CMPRL2) ShardExact() bool { return true }

// MergeShard implements shardMerger.
//
//ldis:noalloc
func (c *CMPRL2) MergeShard(o L2) { c.C.Stats().Merge(o.(*CMPRL2).C.Stats()) }

// ShardExact implements shardExact: exactness depends on the distill
// configuration (see distill.Config.ShardExact).
func (d *DistillL2) ShardExact() bool { return d.C.Config().ShardExact() }

// MergeShard implements shardMerger.
//
//ldis:noalloc
func (d *DistillL2) MergeShard(o L2) { d.C.Stats().Merge(o.(*DistillL2).C.Stats()) }

// ShardExact implements shardExact: the SFP's footprint history table
// is global — predictions on one line depend on evictions of lines in
// other sets that alias into the same entry — so per-shard runs would
// see different predictor contents. Never exact.
func (s *SFPL2) ShardExact() bool { return false }
