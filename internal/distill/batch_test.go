package distill

import (
	"reflect"
	"testing"

	"ldis/internal/mem"
	"ldis/internal/trace"
)

func batchRecords(n, lines int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		k := mem.Load
		switch {
		case i%7 == 0:
			k = mem.IFetch // exercises the never-distill path
		case i%5 == 0:
			k = mem.Store
		}
		recs[i] = trace.Record{Addr: mem.LineAddr(i % lines).WordAddr(i % 8), Kind: k, Instret: 1}
	}
	return recs
}

// AccessBatch must route instruction fetches through the never-distill
// path and everything else through the demand path — exactly what the
// equivalent scalar loop does.
func TestAccessBatchMatchesScalar(t *testing.T) {
	cfg := Config{Name: "d", SizeBytes: 64 * 4 * mem.LineSize, Ways: 4, WOCWays: 1, Seed: 3}
	recs := batchRecords(10_000, 512)

	batched := New(cfg)
	gotHits := batched.AccessBatch(recs)

	scalar := New(cfg)
	wantHits := 0
	for i := range recs {
		la, word, write := recs[i].Line(), recs[i].Word(), recs[i].IsWrite()
		var r AccessResult
		if recs[i].Kind == mem.IFetch {
			r = scalar.AccessInstruction(la, word, write)
		} else {
			r = scalar.Access(la, word, write)
		}
		if !r.Outcome.IsMiss() {
			wantHits++
		}
	}
	if gotHits != wantHits {
		t.Errorf("AccessBatch hits = %d, scalar loop %d", gotHits, wantHits)
	}
	if !reflect.DeepEqual(batched.Stats(), scalar.Stats()) {
		t.Errorf("stats diverged")
	}
}

func TestAccessBatchZeroAllocs(t *testing.T) {
	c := New(Config{Name: "d", SizeBytes: 64 * 4 * mem.LineSize, Ways: 4, WOCWays: 1, Seed: 3})
	recs := batchRecords(256, 1024)
	c.AccessBatch(recs) // steady state: LOC/WOC churn begins
	if n := testing.AllocsPerRun(500, func() { c.AccessBatch(recs) }); n != 0 {
		t.Errorf("AccessBatch allocates %.1f/op", n)
	}
}
