package distill

import (
	"ldis/internal/mem"
	"ldis/internal/trace"
)

// AccessBatch drives a record block through the distill cache as a
// standalone L2: instruction fetches take the never-distill
// AccessInstruction path (Section 4), everything else the ordinary
// demand path. Both include the fill on a miss, so no install step is
// needed. It returns the number of hits (LOC or WOC).
//
//ldis:noalloc
func (c *Cache) AccessBatch(recs []trace.Record) (hits int) {
	for i := range recs {
		la, word, write := recs[i].Line(), recs[i].Word(), recs[i].IsWrite()
		var r AccessResult
		if recs[i].Kind == mem.IFetch {
			r = c.AccessInstruction(la, word, write)
		} else {
			r = c.Access(la, word, write)
		}
		if !r.Outcome.IsMiss() {
			hits++
		}
	}
	return hits
}
