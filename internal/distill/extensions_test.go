package distill

import (
	"testing"

	"ldis/internal/mem"
)

func TestConfigExtensionValidation(t *testing.T) {
	bad := []Config{
		func() Config { c := tinyConfig(); c.StaticThreshold = -1; return c }(),
		func() Config { c := tinyConfig(); c.StaticThreshold = 9; return c }(),
		func() Config {
			c := tinyConfig()
			c.StaticThreshold = 2
			c.MedianThreshold = true
			return c
		}(),
		func() Config { c := tinyConfig(); c.FootprintNoise = -0.1; return c }(),
		func() Config { c := tinyConfig(); c.FootprintNoise = 1.5; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
}

func TestStaticThresholdFilters(t *testing.T) {
	cfg := tinyConfig()
	cfg.StaticThreshold = 2
	d := New(cfg)
	lines := setLines(9)
	// 3 words used -> filtered out.
	d.Access(lines[0], 0, false)
	d.Access(lines[0], 1, false)
	d.Access(lines[0], 2, false)
	for _, l := range lines[1:4] {
		d.Access(l, 0, false)
	}
	if got := d.Present(lines[0]); got != "" {
		t.Errorf("3-word line in %q under K=2", got)
	}
	if d.Stats().ThresholdSkips != 1 {
		t.Errorf("ThresholdSkips = %d", d.Stats().ThresholdSkips)
	}
	// 2 words used -> admitted.
	d.Access(lines[4], 0, false)
	d.Access(lines[4], 1, false)
	for _, l := range lines[5:8] {
		d.Access(l, 0, false)
	}
	if got := d.Present(lines[4]); got != "woc" {
		t.Errorf("2-word line in %q under K=2", got)
	}
}

func TestWOCLRUKeepsRecentlyHitLines(t *testing.T) {
	cfg := tinyConfig()
	cfg.WOCLRU = true
	d := New(cfg)
	lines := setLines(16)
	// Distill lines[0] and lines[1] (1 word each) into the WOC.
	d.Access(lines[0], 0, false)
	d.Access(lines[1], 0, false)
	for _, l := range lines[2:5] {
		d.Access(l, 0, false)
	}
	if d.Present(lines[0]) != "woc" || d.Present(lines[1]) != "woc" {
		t.Skip("prerequisite distillation did not land both lines in WOC")
	}
	// Touch lines[0] in the WOC: it becomes the most recently used.
	d.Access(lines[0], 0, false)
	// Distill a full 8-slot line: with one way holding {0,1} and... the
	// LRU policy must prefer evicting regions with the oldest lines.
	// Fill the LOC with a line that used all 8 words, then push it out.
	for w := 0; w < 8; w++ {
		d.Access(lines[5], w, false)
	}
	for _, l := range lines[6:9] {
		d.Access(l, 0, false)
	}
	// lines[5] (8 slots) displaced one whole WOC way; the way holding
	// the most-recently-used lines[0] must survive if the other way was
	// older or empty.
	if d.Present(lines[0]) != "woc" {
		t.Logf("note: lines[0] displaced; acceptable only if it shared the chosen way")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWOCLRUAgainstRandomSimilarMisses(t *testing.T) {
	// The paper's footnote 4: random replacement performs similarly to
	// LRU in the WOC. Run the same pseudo-random workload under both
	// policies and require the miss counts to be within 15%.
	run := func(lru bool) uint64 {
		cfg := Config{
			Name: "p", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8, WOCWays: 2,
			MedianThreshold: true, Seed: 9, WOCLRU: lru,
		}
		d := New(cfg)
		rng := uint64(42)
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for i := 0; i < 300000; i++ {
			d.Access(mem.LineAddr(next()%2048), int(next()%3), false)
		}
		return d.Stats().Misses()
	}
	rnd, lru := run(false), run(true)
	lo, hi := float64(rnd)*0.85, float64(rnd)*1.15
	if float64(lru) < lo || float64(lru) > hi {
		t.Errorf("LRU misses %d not within 15%% of random %d", lru, rnd)
	}
}

func TestFootprintNoiseWidensFootprints(t *testing.T) {
	clean := tinyConfig()
	noisy := tinyConfig()
	noisy.FootprintNoise = 1.0 // always add one extra word
	dClean, dNoisy := New(clean), New(noisy)
	rng := uint64(7)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 50000; i++ {
		la := mem.LineAddr(next() % 64)
		dClean.Access(la, 0, false)
		dNoisy.Access(la, 0, false)
	}
	mc := dClean.Stats().WordsUsedAtEvict.Mean()
	mn := dNoisy.Stats().WordsUsedAtEvict.Mean()
	if mn <= mc {
		t.Errorf("noise did not widen footprints: clean %.2f, noisy %.2f", mc, mn)
	}
	if err := dNoisy.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessInstructionNeverDistills(t *testing.T) {
	d := New(tinyConfig())
	lines := setLines(5)
	// Instruction line enters the LOC.
	if r := d.AccessInstruction(lines[0], 0, false); r.Outcome != LineMiss {
		t.Fatalf("cold ifetch outcome %v", r.Outcome)
	}
	if r := d.AccessInstruction(lines[0], 0, false); r.Outcome != LOCHit {
		t.Fatalf("warm ifetch outcome %v", r.Outcome)
	}
	// Evict it with three data lines: it must vanish, not reach the WOC.
	for _, l := range lines[1:4] {
		d.Access(l, 0, false)
	}
	if got := d.Present(lines[0]); got != "" {
		t.Errorf("instruction line in %q, want gone", got)
	}
	if d.Stats().InstrEvictions != 1 {
		t.Errorf("InstrEvictions = %d", d.Stats().InstrEvictions)
	}
	// Instruction evictions stay out of the footprint statistics.
	if d.Stats().WordsUsedAtEvict.Total() != 0 {
		t.Errorf("instruction eviction polluted words-used histogram: %v", d.Stats().WordsUsedAtEvict)
	}
}

func TestDirtyInstructionLineWritesBack(t *testing.T) {
	// Self-modifying code corner: a dirty instruction line must write
	// back on eviction.
	d := New(tinyConfig())
	lines := setLines(5)
	d.AccessInstruction(lines[0], 0, true)
	before := d.Stats().Writebacks
	for _, l := range lines[1:4] {
		d.Access(l, 0, false)
	}
	if d.Stats().Writebacks != before+1 {
		t.Error("dirty instruction line dropped without writeback")
	}
}

func TestConfigAccessor(t *testing.T) {
	cfg := tinyConfig()
	d := New(cfg)
	if d.Config().Name != cfg.Name || d.Config().WOCWays != cfg.WOCWays {
		t.Errorf("Config() = %+v", d.Config())
	}
	if d.MedianThreshold() != 8 {
		t.Errorf("MT disabled should report threshold 8, got %d", d.MedianThreshold())
	}
	mtCfg := tinyConfig()
	mtCfg.MedianThreshold = true
	if got := New(mtCfg).MedianThreshold(); got != 8 {
		t.Errorf("fresh MT threshold = %d, want permissive 8", got)
	}
}

func TestWOCValidBitsEdges(t *testing.T) {
	d := New(tinyConfig())
	if d.WOCValidBits(0) != 0 {
		t.Error("absent line should report zero WOC bits")
	}
	// In traditional mode the WOC reports nothing.
	cfg := Config{
		Name: "rev", SizeBytes: 8 * 4 * mem.LineSize, Ways: 4, WOCWays: 1,
		Reverter: true, Seed: 3,
	}
	dr := New(cfg)
	for i := 0; i < 300; i++ {
		dr.Sampler().RecordPolicyMiss(0)
	}
	dr.Access(mem.LineAddr(1), 0, false) // follower set 1 switches to trad
	if dr.WOCValidBits(mem.LineAddr(1)) != 0 {
		t.Error("traditional-mode set should have no WOC contents")
	}
}

// TestInstructionOnlyEquivalentToLOCWayLRU is a differential test: with
// only instruction fetches (never distilled, WOC never used), a distill
// cache must behave exactly like a traditional LRU cache with LOCWays
// associativity.
func TestInstructionOnlyEquivalentToLOCWayLRU(t *testing.T) {
	const sets, ways, wocWays = 16, 8, 2
	d := New(Config{Name: "d", SizeBytes: sets * ways * mem.LineSize, Ways: ways, WOCWays: wocWays, Seed: 1})

	// Reference: per-set LRU lists with LOCWays capacity.
	ref := make([][]mem.LineAddr, sets)
	refMisses := 0
	refAccess := func(la mem.LineAddr) {
		si := la.SetIndex(sets)
		for i, l := range ref[si] {
			if l == la {
				ref[si] = append([]mem.LineAddr{la}, append(ref[si][:i], ref[si][i+1:]...)...)
				return
			}
		}
		refMisses++
		ref[si] = append([]mem.LineAddr{la}, ref[si]...)
		if len(ref[si]) > ways-wocWays {
			ref[si] = ref[si][:ways-wocWays]
		}
	}

	rng := uint64(77)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 100000; i++ {
		la := mem.LineAddr(next() % 256)
		d.AccessInstruction(la, int(next()%8), false)
		refAccess(la)
	}
	if got := int(d.Stats().Misses()); got != refMisses {
		t.Errorf("distill instruction-only misses %d != %d of a %d-way LRU reference",
			got, refMisses, ways-wocWays)
	}
	if d.Stats().WOCHits != 0 || d.Stats().HoleMisses != 0 || d.Stats().Distilled != 0 {
		t.Errorf("WOC activity on an instruction-only stream: %+v", d.Stats())
	}
}
