package distill

import (
	"testing"

	"ldis/internal/mem"
)

// TestAccessPathZeroAllocs pins the distill cache's steady-state access
// path — LOC/WOC lookups, LOC installs, distillation into the WOC, WOC
// evictions — at zero allocations per access. Before the wordstore's
// two-pass candidate selection and reusable eviction buffer, every
// distillation allocated candidate and eviction slices, dominating the
// simulator's profile.
func TestAccessPathZeroAllocs(t *testing.T) {
	const sets, ways = 64, 8
	c := New(Config{
		Name: "d", SizeBytes: sets * ways * mem.LineSize, Ways: ways,
		WOCWays: 2, Seed: 1, MedianThreshold: true,
	})
	// Warm up so the WOC churns (installs displace resident lines).
	rng := uint64(12345)
	next := func() mem.LineAddr {
		rng = rng*6364136223846793005 + 1442695040888963407
		return mem.LineAddr(rng % (sets * 40))
	}
	for i := 0; i < 50_000; i++ {
		c.Access(next(), int(rng%8), rng%4 == 0)
	}
	if n := testing.AllocsPerRun(5000, func() {
		c.Access(next(), int(rng%8), rng%4 == 0)
	}); n != 0 {
		t.Errorf("distill access path allocates %.1f/op", n)
	}
}
