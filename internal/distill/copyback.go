package distill

import (
	"fmt"

	"ldis/internal/mem"
	"ldis/internal/mrc"
)

// CopyBackConfig parameterizes reuse-distance-gated clean copy-back
// (arXiv 2105.14442). A conventional exclusive-ish hierarchy drops a
// clean L1 victim that the L2 no longer holds; with copy-back enabled
// the distill cache instead asks a per-line reuse predictor — the
// existing Mattson/SHARDS stack from internal/mrc, fed with every L2
// demand access — whether the line is likely to return soon. Victims
// whose current stack distance fits MaxReuseBytes have their used
// words installed into the WOC (clean, footprint-sized), turning a
// would-be memory fetch into a WOC hit.
type CopyBackConfig struct {
	// MaxReuseBytes admits a victim iff its predicted line-grain stack
	// distance is at most this. Default: the cache's SizeBytes — "would
	// it still hit if the whole cache were one LRU stack".
	MaxReuseBytes int
	// SampleRate is the predictor's SHARDS spatial sampling rate in
	// (0, 1). Default 0.25. Victims outside the sample are cold
	// (never copied back) and counted as such.
	SampleRate float64
	// MaxSamples bounds the predictor's tracked lines (SHARDS
	// fixed-size mode). Default 8192.
	MaxSamples int
	// AccessBudget sizes the predictor's logical clock. Default 1<<22
	// observed accesses; past the budget the predictor freezes (stops
	// observing, keeps answering) instead of growing.
	AccessBudget int
	// Seed perturbs the predictor's spatial hash.
	Seed uint64
}

func (c CopyBackConfig) withDefaults(cacheBytes int) CopyBackConfig {
	if c.MaxReuseBytes == 0 {
		c.MaxReuseBytes = cacheBytes
	}
	if c.SampleRate == 0 {
		c.SampleRate = 0.25
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 8192
	}
	if c.AccessBudget == 0 {
		c.AccessBudget = 1 << 22
	}
	return c
}

// Validate rejects impossible configurations; zero fields are defaults.
func (c CopyBackConfig) Validate() error {
	if c.MaxReuseBytes < 0 {
		return fmt.Errorf("copy-back: negative MaxReuseBytes %d", c.MaxReuseBytes)
	}
	if c.SampleRate < 0 || c.SampleRate >= 1 {
		return fmt.Errorf("copy-back: sample rate %g outside [0, 1)", c.SampleRate)
	}
	if c.MaxSamples < 0 {
		return fmt.Errorf("copy-back: negative MaxSamples %d", c.MaxSamples)
	}
	if c.AccessBudget < 0 {
		return fmt.Errorf("copy-back: negative AccessBudget %d", c.AccessBudget)
	}
	return nil
}

// copyBack is the runtime predictor: one SHARDS-sampled Mattson stack
// observing the cache's demand stream, queried read-only at L1
// clean-victim time. Global across sets — the reason CopyBack
// disqualifies Config.ShardExact.
type copyBack struct {
	eng      *mrc.Engine
	maxBytes float64
	seen     int
	budget   int
}

func newCopyBack(cfg CopyBackConfig, cacheBytes int) *copyBack {
	cfg = cfg.withDefaults(cacheBytes)
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	eng, err := mrc.New(mrc.Config{
		SampleRate: cfg.SampleRate,
		MaxSamples: cfg.MaxSamples,
		Seed:       cfg.Seed,
	}, cfg.AccessBudget)
	if err != nil {
		panic(fmt.Sprintf("copy-back: %v", err))
	}
	return &copyBack{
		eng:      eng,
		maxBytes: float64(cfg.MaxReuseBytes),
		budget:   cfg.AccessBudget,
	}
}

// observe feeds one demand access into the predictor's stack; past the
// access budget the stack freezes rather than growing its clock.
//
//ldis:noalloc
func (cb *copyBack) observe(la mem.LineAddr, word int) {
	if cb.seen >= cb.budget {
		return
	}
	cb.seen++
	cb.eng.Access(la, word)
}

// predict returns whether the predictor has information about the line
// (false = cold: unsampled, evicted from the sample, or never seen)
// and, if so, whether its current stack distance is within the
// admission window.
//
//ldis:noalloc
func (cb *copyBack) predict(la mem.LineAddr) (within, known bool) {
	d, ok := cb.eng.CurrentLineDistanceBytes(la)
	if !ok {
		return false, false
	}
	return d <= cb.maxBytes, true
}
