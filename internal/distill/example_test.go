package distill_test

import (
	"fmt"

	"ldis/internal/distill"
	"ldis/internal/mem"
)

// Example walks the four access outcomes of Section 5.2 on a minimal
// distill cache: a line miss fills the LOC, eviction distills the used
// word into the WOC, a WOC hit serves it, and touching a discarded word
// hole-misses.
func Example() {
	cfg := distill.Config{
		Name:      "demo",
		SizeBytes: 4 * 4 * mem.LineSize, // 4 sets x 4 ways
		Ways:      4,
		WOCWays:   1,
		Seed:      7,
	}
	d := distill.New(cfg)

	// All lines map to set 0 (multiples of 4).
	line := func(i int) mem.LineAddr { return mem.LineAddr(i * 4) }

	fmt.Println(d.Access(line(0), 2, false).Outcome) // cold
	for i := 1; i <= 3; i++ {
		d.Access(line(i), 0, false) // fill the 3 LOC ways; line 0 distilled
	}
	fmt.Println(d.Present(line(0)))                  // its used word lives on
	fmt.Println(d.Access(line(0), 2, false).Outcome) // served from the WOC
	fmt.Println(d.Access(line(0), 6, false).Outcome) // word was discarded

	// Output:
	// line-miss
	// woc
	// woc-hit
	// hole-miss
}

// ExampleConfig_Validate shows the structural checks on configurations.
func ExampleConfig_Validate() {
	bad := distill.Config{Name: "bad", SizeBytes: 1 << 20, Ways: 8, WOCWays: 8}
	fmt.Println(bad.Validate())
	// Output:
	// distill "bad": WOCWays 8 must be in [1, 7]
}
