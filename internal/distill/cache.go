package distill

import (
	"fmt"

	"ldis/internal/mem"
	"ldis/internal/obs"
	"ldis/internal/sampler"
	"ldis/internal/stats"
	"ldis/internal/wordstore"
)

// Outcome classifies a distill-cache access (paper Section 5.2).
type Outcome uint8

const (
	// LOCHit: the line is in the line-organized ways.
	LOCHit Outcome = iota
	// WOCHit: line hit and word hit in the word-organized ways.
	WOCHit
	// HoleMiss: line hit in the WOC but the requested word was
	// distilled away; the WOC copy is invalidated and the line refetched.
	HoleMiss
	// LineMiss: the line is in neither structure.
	LineMiss
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case LOCHit:
		return "loc-hit"
	case WOCHit:
		return "woc-hit"
	case HoleMiss:
		return "hole-miss"
	case LineMiss:
		return "line-miss"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// IsMiss reports whether the outcome required a memory fetch.
func (o Outcome) IsMiss() bool { return o == HoleMiss || o == LineMiss }

// AccessResult is what the L1 receives: the outcome and the valid-word
// mask of the returned line (partial only for WOC hits, Section 4.2).
type AccessResult struct {
	Outcome   Outcome
	ValidBits mem.Footprint
}

// Stats aggregates distill-cache behaviour; the four outcome counters
// are the paper's Figure 7 breakdown.
type Stats struct {
	Accesses   uint64
	LOCHits    uint64
	WOCHits    uint64
	HoleMisses uint64
	LineMisses uint64

	Writebacks uint64 // dirty data leaving the cache toward memory

	Distilled      uint64 // LOC victims whose words entered the WOC
	ThresholdSkips uint64 // LOC victims filtered out by MT
	TradEvictions  uint64 // LOC victims evicted while a set ran traditional
	InstrEvictions uint64 // instruction-line victims (never distilled)
	WOCEvictions   uint64 // WOC lines displaced by installs
	ModeSwitches   uint64 // follower sets toggling distill/traditional

	// Touche aggregates the compressed-tag filter's counters
	// (lookups, alias safe misses, alias/superblock evictions) when
	// Config.Touche is set; zero otherwise.
	Touche wordstore.ToucheStats

	// Clean copy-back outcomes (Config.CopyBack): every clean L1
	// victim absent from both structures lands in exactly one bucket.
	CopyBacks    uint64 // predicted near: used words installed into the WOC
	CopyBackFar  uint64 // predicted reuse distance beyond the window
	CopyBackCold uint64 // no prediction: unsampled, evicted from the sample, or never seen

	// WordsUsedAtEvict histograms the footprint popcount of LOC
	// victims (Figure 1 / Table 6 for the distill cache).
	WordsUsedAtEvict *stats.Histogram
	// FPChangePos histograms the maximum recency position at
	// footprint-change of LOC victims (Figure 2).
	FPChangePos *stats.Histogram
}

// Misses returns the total miss count.
func (s *Stats) Misses() uint64 { return s.HoleMisses + s.LineMisses }

// Hits returns the total hit count.
func (s *Stats) Hits() uint64 { return s.LOCHits + s.WOCHits }

// maxTenants bounds the tenants a partitioned distill cache can
// distinguish; it matches cache.MaxPartitionTenants so the two
// organizations accept the same controller allocations.
const maxTenants = 8

// locEntry is a LOC tag entry: tag, per-word footprint and dirty mask,
// and the Figure-2 recency instrumentation. tenant records which
// sharer installed the line (always 0 outside partitioned mode) and
// follows the line into the WOC to pick its install-way mask.
type locEntry struct {
	valid    bool
	instr    bool // instruction lines are never distilled (Section 4)
	tag      uint64
	fp       mem.Footprint
	dirty    mem.Footprint
	maxFPPos uint8
	tenant   uint8
}

// set is one distill-cache set. In distill mode loc has LOCWays entries
// and woc is active; in traditional mode (reverter fallback) loc has
// Ways entries and woc is empty.
type set struct {
	loc  []locEntry // MRU-first
	woc  wordstore.Set
	trad bool
}

// Cache is the distill cache.
type Cache struct {
	cfg  Config
	sets []set
	smp  *sampler.Sampler
	mt   *medianFilter
	st   Stats
	rng  uint64
	tick uint64

	// touche, when non-nil, is the compressed superblock tag filter the
	// WOC lookup and install paths route through (Config.Touche).
	touche *wordstore.ToucheTags
	// cb, when non-nil, is the clean copy-back reuse predictor
	// (Config.CopyBack).
	cb *copyBack

	// Set-indexing geometry, precomputed at construction so the access
	// path does not rederive it per access.
	setMask  uint64
	tagShift uint

	// Way-partition state (nil when unpartitioned): per-tenant LOC way
	// quotas enforced at victim selection, and per-tenant WOC way masks
	// threaded into the distilled-line installs. See SetPartition.
	locQuota []int32
	wocMask  []uint64

	// Observability handles, registered once at construction; all nil
	// (and therefore no-ops) when the config carries no obs cell. They
	// sit on the miss/evict paths only — the LOC hit path is untouched.
	obsSpans           *obs.Spans
	obsDistilled       *obs.Counter
	obsThresholdSkips  *obs.Counter
	obsHoleMisses      *obs.Counter
	obsWOCEvictions    *obs.Counter
	obsModeSwitches    *obs.Counter
	obsToucheAliasMiss *obs.Counter
	obsCopyBacks       *obs.Counter
	obsCopyBackRejects *obs.Counter
}

// New builds a distill cache; panics on invalid config.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, rng: cfg.Seed | 1}
	c.setMask = uint64(cfg.Sets() - 1)
	for n := cfg.Sets(); n > 1; n >>= 1 {
		c.tagShift++
	}
	// Per-set slices are carved from shared backing arrays: thousands of
	// sets construct in a handful of allocations, and the full-slice
	// expression caps each LOC at its own region so the traditional-mode
	// regrow (switchMode extends loc to cfg.Ways) stays in place.
	numSets := cfg.Sets()
	c.sets = make([]set, numSets)
	locArena := make([]locEntry, numSets*cfg.Ways)
	wocSets := wordstore.NewSets(cfg.WOCWays, numSets)
	for i := range c.sets {
		c.sets[i] = set{
			loc: locArena[i*cfg.Ways : i*cfg.Ways+cfg.LOCWays() : (i+1)*cfg.Ways],
			woc: wocSets[i],
		}
	}
	if cfg.Reverter {
		sc := sampler.DefaultConfig(cfg.Sets())
		if cfg.SamplerConfig != nil {
			sc = *cfg.SamplerConfig
		}
		c.smp = sampler.New(sc)
	}
	if cfg.MedianThreshold {
		c.mt = newMedianFilter()
	}
	if cfg.Touche != nil {
		c.touche = wordstore.NewToucheTags(*cfg.Touche, cfg.WOCWays)
		// Route the filter's counters into this cache's Stats so shard
		// merging folds them like every other counter.
		c.touche.Stats = &c.st.Touche
	}
	if cfg.CopyBack != nil {
		c.cb = newCopyBack(*cfg.CopyBack, cfg.SizeBytes)
	}
	c.st.WordsUsedAtEvict = stats.NewHistogram(cfg.Name+" words used", mem.WordsPerLine+1)
	c.st.FPChangePos = stats.NewHistogram(cfg.Name+" fp-change pos", cfg.Ways)
	c.obsSpans = cfg.Obs.Spans()
	c.obsDistilled = cfg.Obs.Counter("distill_lines_distilled")
	c.obsThresholdSkips = cfg.Obs.Counter("distill_threshold_skips")
	c.obsHoleMisses = cfg.Obs.Counter("distill_hole_misses")
	c.obsWOCEvictions = cfg.Obs.Counter("distill_woc_evictions")
	c.obsModeSwitches = cfg.Obs.Counter("distill_mode_switches")
	c.obsToucheAliasMiss = cfg.Obs.Counter("distill_touche_alias_misses")
	c.obsCopyBacks = cfg.Obs.Counter("distill_copybacks")
	c.obsCopyBackRejects = cfg.Obs.Counter("distill_copyback_rejects")
	if slotsHist := cfg.Obs.Histogram("woc_install_slots", []uint64{1, 2, 4}); slotsHist != nil {
		for i := range c.sets {
			c.sets[i].woc.ObsInstallSlots = slotsHist
		}
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the live statistics.
func (c *Cache) Stats() *Stats { return &c.st }

// Sampler exposes the reverter's sampler (nil when disabled).
func (c *Cache) Sampler() *sampler.Sampler { return c.smp }

// MedianThreshold returns the current distillation threshold K, or 8
// when MT filtering is disabled.
func (c *Cache) MedianThreshold() int {
	if c.mt == nil {
		return mem.WordsPerLine
	}
	return c.mt.Threshold()
}

func (c *Cache) nextRand() uint64 {
	// xorshift64*: cheap, deterministic, good enough for replacement.
	x := c.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rng = x
	return x * 0x2545f4914f6cdd1d
}

// Access performs a complete demand data access for one word,
// including the fill on a miss (the timing of the memory fetch is
// modelled separately by the CPU simulator). The returned ValidBits
// tell the L1D which words of the line it receives.
//
//ldis:noalloc
func (c *Cache) Access(la mem.LineAddr, word int, write bool) AccessResult {
	return c.access(la, word, write, false, 0)
}

// AccessTenant is Access tagged with the requesting tenant: hits are
// never restricted, but LOC victim selection respects the quotas
// installed by SetPartition and the victim's distilled words go to the
// tenant's own WOC ways. Without a partition installed it is Access.
//
//ldis:noalloc
func (c *Cache) AccessTenant(la mem.LineAddr, word int, write bool, tenant int) AccessResult {
	return c.access(la, word, write, false, tenant)
}

// AccessInstruction performs an instruction-fetch access. Instruction
// lines live in the LOC like any line but are never distilled into the
// WOC on eviction — the paper performs LDIS only for data lines
// (Section 4).
//
//ldis:noalloc
func (c *Cache) AccessInstruction(la mem.LineAddr, word int, write bool) AccessResult {
	return c.access(la, word, write, true, 0)
}

// setIndexOf and tagOf are the precomputed equivalents of
// mem.LineAddr.SetIndex/Tag for this cache's geometry.
func (c *Cache) setIndexOf(la mem.LineAddr) int { return int(uint64(la) & c.setMask) }
func (c *Cache) tagOf(la mem.LineAddr) uint64   { return uint64(la) >> c.tagShift }

func (c *Cache) access(la mem.LineAddr, word int, write, instr bool, tenant int) AccessResult {
	c.st.Accesses++
	if c.cb != nil {
		c.cb.observe(la, word)
	}
	si := c.setIndexOf(la)
	s := &c.sets[si]
	leader := false
	if c.smp != nil {
		leader = c.smp.IsLeader(si)
		c.smp.ObserveATD(si, la)
		if !leader {
			// Followers lazily adopt the sampler's decision.
			if wantTrad := !c.smp.Enabled(); wantTrad != s.trad {
				c.switchMode(s, si, wantTrad)
			}
		}
	}
	tag := c.tagOf(la)

	// LOC lookup. MRU fast path first: a hit on way 0 needs no
	// promotion (and cannot raise maxFPPos), so it updates in place.
	if e := &s.loc[0]; e.valid && e.tag == tag {
		e.fp = e.fp.Set(word)
		if write {
			e.dirty = e.dirty.Set(word)
		}
		c.st.LOCHits++
		return AccessResult{Outcome: LOCHit, ValidBits: mem.FullFootprint}
	}
	for pos := 1; pos < len(s.loc); pos++ {
		if !s.loc[pos].valid || s.loc[pos].tag != tag {
			continue
		}
		e := s.loc[pos]
		if !e.fp.Has(word) {
			e.fp = e.fp.Set(word)
			if uint8(pos) > e.maxFPPos {
				e.maxFPPos = uint8(pos)
			}
		}
		if write {
			e.dirty = e.dirty.Set(word)
		}
		copy(s.loc[1:pos+1], s.loc[0:pos])
		s.loc[0] = e
		c.st.LOCHits++
		return AccessResult{Outcome: LOCHit, ValidBits: mem.FullFootprint}
	}

	// WOC lookup (inactive in traditional mode).
	if !s.trad {
		tok := c.obsSpans.Begin(obs.StageWOCLookup)
		var idx int
		if c.touche != nil {
			aliases := c.st.Touche.AliasSafeMisses
			idx = c.touche.Find(&s.woc, tag)
			if c.st.Touche.AliasSafeMisses != aliases {
				c.obsToucheAliasMiss.Inc()
			}
		} else {
			idx = s.woc.Find(tag)
		}
		c.obsSpans.End(obs.StageWOCLookup, tok)
		if idx >= 0 {
			wl := &s.woc.Lines[idx]
			if wl.Words.Has(word) {
				if write {
					wl.Dirty = wl.Dirty.Set(word)
				}
				c.tick++
				wl.LastUse = c.tick
				c.st.WOCHits++
				return AccessResult{Outcome: WOCHit, ValidBits: wl.Words}
			}
			// Hole miss: invalidate the WOC copy, keep its dirty words,
			// refetch from memory, install in the LOC (Section 5.2).
			removed := s.woc.RemoveAt(idx)
			c.st.HoleMisses++
			c.obsHoleMisses.Inc()
			if leader {
				c.smp.RecordPolicyMiss(si)
			}
			c.installLOC(s, si, tag, word, write, instr, removed.Dirty, tenant)
			return AccessResult{Outcome: HoleMiss, ValidBits: mem.FullFootprint}
		}
	}

	// Line miss.
	c.st.LineMisses++
	if leader {
		c.smp.RecordPolicyMiss(si)
	}
	c.installLOC(s, si, tag, word, write, instr, 0, tenant)
	return AccessResult{Outcome: LineMiss, ValidBits: mem.FullFootprint}
}

// lineFromTag reconstructs a line address from a tag and set index.
func (c *Cache) lineFromTag(tag uint64, setIdx int) mem.LineAddr {
	return mem.LineAddr(tag<<c.tagShift | uint64(setIdx))
}

// installLOC fills the line as MRU in the LOC, distilling the LRU
// victim if the set is full (under the tenant's way quota when a
// partition is installed). mergedDirty carries dirty words recovered
// from a hole-missed WOC copy.
func (c *Cache) installLOC(s *set, si int, tag uint64, word int, write, instr bool, mergedDirty mem.Footprint, tenant int) {
	victimPos := len(s.loc) - 1
	if c.locQuota != nil {
		victimPos = c.locVictim(s.loc, tenant)
	}
	if v := s.loc[victimPos]; v.valid {
		tok := c.obsSpans.Begin(obs.StageDistillEvict)
		c.evictLOC(s, si, v)
		c.obsSpans.End(obs.StageDistillEvict, tok)
	}
	e := locEntry{
		valid:  true,
		instr:  instr,
		tag:    tag,
		fp:     mem.FootprintOfWord(word).Or(mergedDirty),
		dirty:  mergedDirty,
		tenant: uint8(tenant),
	}
	if write {
		e.dirty = e.dirty.Set(word)
	}
	if c.cfg.FootprintNoise > 0 {
		// Wrong-path pollution (paper footnote 8): a speculative access
		// may mark an extra word used.
		r := c.nextRand()
		if float64(r>>11)/(1<<53) < c.cfg.FootprintNoise {
			e.fp = e.fp.Set(int(r % mem.WordsPerLine))
		}
	}
	copy(s.loc[1:victimPos+1], s.loc[0:victimPos])
	s.loc[0] = e
}

// evictLOC handles a LOC victim: record statistics, then either distill
// its used words into the WOC or evict it entirely (traditional mode or
// filtered by MT).
func (c *Cache) evictLOC(s *set, si int, v locEntry) {
	if v.instr {
		// Instruction lines bypass distillation and the data-footprint
		// statistics (Section 4: LDIS only for data lines).
		c.st.InstrEvictions++
		if v.dirty != 0 {
			c.st.Writebacks++
		}
		return
	}
	used := v.fp.Count()
	c.st.WordsUsedAtEvict.Add(used)
	c.st.FPChangePos.Add(int(v.maxFPPos))

	if s.trad {
		c.st.TradEvictions++
		if v.dirty != 0 {
			c.st.Writebacks++
		}
		return
	}
	if !c.admit(used) {
		c.st.ThresholdSkips++
		c.obsThresholdSkips.Inc()
		if v.dirty != 0 {
			c.st.Writebacks++
		}
		return
	}
	slots := mem.Pow2WordsFor(used)
	if c.cfg.Slots != nil {
		//ldis:alloc-ok Slots is an ablation extension hook; configs that install one own its allocation behaviour
		slots = c.cfg.Slots(c.lineFromTag(v.tag, si), v.fp)
	}
	c.installWOC(s, wordstore.Line{Tag: v.tag, Words: v.fp, Dirty: v.dirty, Slots: slots}, v.tenant)
}

// installWOC places a distilled line and accounts for displaced lines.
// Under a partition the line is confined to its owning tenant's WOC
// ways, so tenants evict only their own distilled words.
func (c *Cache) installWOC(s *set, wl wordstore.Line, tenant uint8) {
	c.st.Distilled++
	c.obsDistilled.Inc()
	c.wocInsert(s, wl, tenant)
}

// wocInsert is installWOC without the distillation accounting — shared
// by the distill path and the clean copy-back path, which installs
// lines that were never LOC victims.
func (c *Cache) wocInsert(s *set, wl wordstore.Line, tenant uint8) {
	c.tick++
	wl.LastUse = c.tick
	if c.touche != nil {
		// Evict whatever the compressed tag store cannot represent next
		// to wl: (member, signature) aliases and superblocks beyond the
		// provisioned entry budget.
		for _, ev := range c.touche.PrepareInstall(&s.woc, wl.Tag) {
			c.st.WOCEvictions++
			c.obsWOCEvictions.Inc()
			if ev.Dirty != 0 {
				c.st.Writebacks++
			}
		}
	}
	var evicted []wordstore.Line
	switch {
	case c.cfg.WOCLRU:
		evicted = s.woc.InstallLRU(wl)
	case c.wocMask != nil && int(tenant) < len(c.wocMask):
		evicted = s.woc.InstallMasked(wl, c.nextRand(), c.wocMask[tenant])
	default:
		evicted = s.woc.Install(wl, c.nextRand())
	}
	for _, ev := range evicted {
		c.st.WOCEvictions++
		c.obsWOCEvictions.Inc()
		if ev.Dirty != 0 {
			c.st.Writebacks++
		}
	}
}

// locVictim picks the LOC way to replace for a missing tenant under
// the installed quotas: invalid ways fill first, a tenant at or over
// its quota evicts its own LRU-most line, one under it evicts the
// LRU-most line of an over-quota tenant. The global-LRU fallbacks
// mirror cache.(*Cache).partitionVictim: unreachable when quotas sum
// to the LOC associativity with every tenant granted at least one way,
// but a transient quota shrink mid-drain lands there safely.
//
//ldis:noalloc
func (c *Cache) locVictim(loc []locEntry, tenant int) int {
	var occ [maxTenants]int32
	invalid := -1
	for pos := range loc {
		if !loc[pos].valid {
			invalid = pos
			continue
		}
		occ[loc[pos].tenant]++
	}
	if invalid >= 0 {
		return invalid
	}
	if tenant < len(c.locQuota) && occ[tenant] >= c.locQuota[tenant] {
		for pos := len(loc) - 1; pos >= 0; pos-- {
			if int(loc[pos].tenant) == tenant {
				return pos
			}
		}
		return len(loc) - 1
	}
	for pos := len(loc) - 1; pos >= 0; pos-- {
		t := loc[pos].tenant
		if int(t) >= len(c.locQuota) || occ[t] > c.locQuota[t] {
			return pos
		}
	}
	return len(loc) - 1
}

// SetPartition installs per-tenant LOC way quotas and WOC way masks
// for the AccessTenant path. locQuota[t] is the number of LOC ways
// tenant t may occupy per set (sum at most the LOC associativity);
// wocMask[t] is the bitmask of WOC data ways its distilled lines may
// occupy (zero means all ways). Empty slices disable partitioning.
// Partitioning composes with neither the reverter (whose mode switches
// resize the LOC under the quotas) nor WOCLRU (whose age scan ignores
// masks); both combinations panic rather than silently mis-enforce.
func (c *Cache) SetPartition(locQuota []int, wocMask []uint64) {
	if len(locQuota) == 0 {
		c.locQuota, c.wocMask = nil, nil
		return
	}
	if c.cfg.Reverter {
		panic(fmt.Sprintf("distill %q: SetPartition with the reverter enabled is unsupported", c.cfg.Name))
	}
	if c.cfg.WOCLRU {
		panic(fmt.Sprintf("distill %q: SetPartition with WOCLRU is unsupported", c.cfg.Name))
	}
	if len(locQuota) > maxTenants {
		panic(fmt.Sprintf("distill %q: %d tenants exceed %d", c.cfg.Name, len(locQuota), maxTenants))
	}
	if len(wocMask) != len(locQuota) {
		panic(fmt.Sprintf("distill %q: %d WOC masks for %d LOC quotas", c.cfg.Name, len(wocMask), len(locQuota)))
	}
	sum := 0
	for t, q := range locQuota {
		if q < 0 {
			panic(fmt.Sprintf("distill %q: negative quota %d for tenant %d", c.cfg.Name, q, t))
		}
		sum += q
	}
	if sum > c.cfg.LOCWays() {
		panic(fmt.Sprintf("distill %q: quota sum %d exceeds %d LOC ways", c.cfg.Name, sum, c.cfg.LOCWays()))
	}
	if c.locQuota == nil {
		c.locQuota = make([]int32, 0, maxTenants)
		c.wocMask = make([]uint64, 0, maxTenants)
	}
	c.locQuota = c.locQuota[:0]
	c.wocMask = c.wocMask[:0]
	for i, q := range locQuota {
		c.locQuota = append(c.locQuota, int32(q))
		c.wocMask = append(c.wocMask, wocMask[i])
	}
}

// switchMode toggles a follower set between distill and traditional
// organization (reverter fallback). Entering traditional mode empties
// the WOC (writing back dirty words) and widens the LOC to all ways;
// returning to distill mode narrows the LOC, distilling the overflow.
func (c *Cache) switchMode(s *set, si int, trad bool) {
	c.st.ModeSwitches++
	c.obsModeSwitches.Inc()
	if trad {
		for _, wl := range s.woc.Clear() {
			if wl.Dirty != 0 {
				c.st.Writebacks++
			}
		}
		// Expose the full-width LOC; the extra entries were zeroed at
		// allocation or by the previous narrow step.
		s.loc = s.loc[:c.cfg.Ways]
	} else {
		// Distill the entries that no longer fit, LRU-most first.
		for i := len(s.loc) - 1; i >= c.cfg.LOCWays(); i-- {
			if s.loc[i].valid {
				c.evictLOCNarrow(s, si, s.loc[i])
			}
			s.loc[i] = locEntry{}
		}
		s.loc = s.loc[:c.cfg.LOCWays()]
	}
	s.trad = trad
}

// evictLOCNarrow distills a line displaced by a traditional->distill
// mode switch. The set's trad flag is still true at this point, so it
// bypasses the trad check in evictLOC.
func (c *Cache) evictLOCNarrow(s *set, si int, v locEntry) {
	if v.instr {
		c.st.InstrEvictions++
		if v.dirty != 0 {
			c.st.Writebacks++
		}
		return
	}
	used := v.fp.Count()
	c.st.WordsUsedAtEvict.Add(used)
	c.st.FPChangePos.Add(int(v.maxFPPos))
	if !c.admit(used) {
		c.st.ThresholdSkips++
		c.obsThresholdSkips.Inc()
		if v.dirty != 0 {
			c.st.Writebacks++
		}
		return
	}
	slots := mem.Pow2WordsFor(used)
	if c.cfg.Slots != nil {
		//ldis:alloc-ok Slots is an ablation extension hook; configs that install one own its allocation behaviour
		slots = c.cfg.Slots(c.lineFromTag(v.tag, si), v.fp)
	}
	c.installWOC(s, wordstore.Line{Tag: v.tag, Words: v.fp, Dirty: v.dirty, Slots: slots}, v.tenant)
}

// admit applies the configured distillation threshold: the running
// median (LDIS-MT), a static K, or everything.
func (c *Cache) admit(used int) bool {
	switch {
	case c.mt != nil:
		ok := c.mt.admit(used)
		c.mt.record(used)
		return ok
	case c.cfg.StaticThreshold > 0:
		return used <= c.cfg.StaticThreshold
	default:
		return true
	}
}

// WritebackFromL1 accepts an L1D eviction notice: the accumulated
// footprint is ORed into the LOC entry (Section 4.1) and dirty words
// update whichever structure holds the line; dirty data for an absent
// line goes to memory.
func (c *Cache) WritebackFromL1(la mem.LineAddr, footprint, dirty mem.Footprint) {
	footprint = footprint.Or(dirty) // written words are used words
	si := c.setIndexOf(la)
	s := &c.sets[si]
	tag := c.tagOf(la)
	for pos := range s.loc {
		if s.loc[pos].valid && s.loc[pos].tag == tag {
			e := &s.loc[pos]
			if merged := e.fp.Or(footprint); merged != e.fp {
				e.fp = merged
				if uint8(pos) > e.maxFPPos {
					e.maxFPPos = uint8(pos)
				}
			}
			e.dirty = e.dirty.Or(dirty)
			return
		}
	}
	if !s.trad {
		if idx := s.woc.Find(tag); idx >= 0 {
			wl := &s.woc.Lines[idx]
			// Dirty words the WOC copy stores stay with it; words it
			// discarded must go to memory now.
			kept := dirty & wl.Words
			wl.Dirty = wl.Dirty.Or(kept)
			if dirty&^wl.Words != 0 {
				c.st.Writebacks++
			}
			return
		}
	}
	if dirty != 0 {
		c.st.Writebacks++
		return
	}
	// Clean victim absent from both structures. With copy-back enabled
	// (Config.CopyBack) the reuse predictor decides whether its used
	// words are worth a WOC slot; otherwise — as in the base design —
	// the line is dropped.
	if c.cb != nil && !s.trad && footprint != 0 {
		within, known := c.cb.predict(la)
		switch {
		case !known:
			c.st.CopyBackCold++
			c.obsCopyBackRejects.Inc()
		case !within:
			c.st.CopyBackFar++
			c.obsCopyBackRejects.Inc()
		default:
			c.st.CopyBacks++
			c.obsCopyBacks.Inc()
			c.wocInsert(s, wordstore.Line{
				Tag:   tag,
				Words: footprint,
				Slots: mem.Pow2WordsFor(footprint.Count()),
			}, 0)
		}
	}
}

// Present reports where the line currently resides ("loc", "woc", or
// ""); exposed for tests.
func (c *Cache) Present(la mem.LineAddr) string {
	si := c.setIndexOf(la)
	s := &c.sets[si]
	tag := c.tagOf(la)
	for pos := range s.loc {
		if s.loc[pos].valid && s.loc[pos].tag == tag {
			return "loc"
		}
	}
	if !s.trad && s.woc.Find(tag) >= 0 {
		return "woc"
	}
	return ""
}

// WOCValidBits returns the stored-word mask of a WOC-resident line
// (zero if not in the WOC).
func (c *Cache) WOCValidBits(la mem.LineAddr) mem.Footprint {
	si := c.setIndexOf(la)
	s := &c.sets[si]
	if s.trad {
		return 0
	}
	if idx := s.woc.Find(c.tagOf(la)); idx >= 0 {
		return s.woc.Lines[idx].Words
	}
	return 0
}

// CheckInvariants validates internal consistency of every set; tests
// call it after stress runs.
func (c *Cache) CheckInvariants() error {
	// One reusable tag list instead of a map per set: a set holds at most
	// Ways LOC tags plus WOCWays*WordsPerLine WOC tags, so a linear dup
	// scan is both cheaper and allocation-free across the loop.
	seen := make([]uint64, 0, c.cfg.Ways+c.cfg.WOCWays*mem.WordsPerLine)
	contains := func(tag uint64) bool {
		for _, t := range seen {
			if t == tag {
				return true
			}
		}
		return false
	}
	for i := range c.sets {
		s := &c.sets[i]
		if err := s.woc.CheckInvariants(); err != nil {
			return fmt.Errorf("set %d: %v", i, err)
		}
		if c.touche != nil {
			if err := c.touche.CheckInvariants(&s.woc); err != nil {
				return fmt.Errorf("set %d: %v", i, err)
			}
		}
		want := c.cfg.LOCWays()
		if s.trad {
			want = c.cfg.Ways
		}
		if len(s.loc) != want {
			return fmt.Errorf("set %d: loc width %d, want %d", i, len(s.loc), want)
		}
		if s.trad && len(s.woc.Lines) != 0 {
			return fmt.Errorf("set %d: traditional mode with %d WOC lines", i, len(s.woc.Lines))
		}
		seen = seen[:0]
		for _, e := range s.loc {
			if !e.valid {
				continue
			}
			if contains(e.tag) {
				return fmt.Errorf("set %d: duplicate LOC tag %x", i, e.tag)
			}
			seen = append(seen, e.tag)
			if e.dirty&^e.fp != 0 {
				return fmt.Errorf("set %d: LOC dirty outside footprint", i)
			}
		}
		for _, wl := range s.woc.Lines {
			if contains(wl.Tag) {
				return fmt.Errorf("set %d: tag %x in both LOC and WOC", i, wl.Tag)
			}
			seen = append(seen, wl.Tag)
		}
	}
	return nil
}

// Merge folds a sibling shard's counters into s: shards partition the
// line-address space, so plain sums (and bucket-wise histogram sums)
// reproduce the sequential totals exactly. Only shard-exact
// configurations (Config.ShardExact) are ever run sharded.
//
//ldis:noalloc
func (s *Stats) Merge(o *Stats) {
	s.Accesses += o.Accesses
	s.LOCHits += o.LOCHits
	s.WOCHits += o.WOCHits
	s.HoleMisses += o.HoleMisses
	s.LineMisses += o.LineMisses
	s.Writebacks += o.Writebacks
	s.Distilled += o.Distilled
	s.ThresholdSkips += o.ThresholdSkips
	s.TradEvictions += o.TradEvictions
	s.InstrEvictions += o.InstrEvictions
	s.WOCEvictions += o.WOCEvictions
	s.ModeSwitches += o.ModeSwitches
	s.Touche.Merge(o.Touche)
	s.CopyBacks += o.CopyBacks
	s.CopyBackFar += o.CopyBackFar
	s.CopyBackCold += o.CopyBackCold
	s.WordsUsedAtEvict.Merge(o.WordsUsedAtEvict)
	s.FPChangePos.Merge(o.FPChangePos)
}
