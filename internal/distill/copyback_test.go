package distill

import (
	"testing"

	"ldis/internal/mem"
)

func copyBackCfg(maxReuse int) Config {
	return Config{
		Name: "cb", SizeBytes: 4 * 4 * mem.LineSize, Ways: 4, WOCWays: 2, Seed: 1,
		CopyBack: &CopyBackConfig{MaxReuseBytes: maxReuse, SampleRate: 0.9},
	}
}

// A predictor that has never observed the line must say "cold", and a
// cold victim is never copied back — the conservative default the
// paper's gated copy-back relies on at startup.
func TestCopyBackColdStart(t *testing.T) {
	c := New(copyBackCfg(1 << 20))
	la := mem.LineAddr(7)
	c.WritebackFromL1(la, mem.FootprintOfWord(0), 0)
	st := c.Stats()
	if st.CopyBackCold != 1 {
		t.Fatalf("cold rejects = %d, want 1", st.CopyBackCold)
	}
	if st.CopyBacks != 0 || st.CopyBackFar != 0 {
		t.Fatalf("cold victim acted on: %+v", st)
	}
	if got := c.Present(la); got != "" {
		t.Fatalf("cold victim installed in %q", got)
	}
}

// Victims the predictor has tracked at short stack distance are copied
// back into the WOC; with the admission window shrunk to one line the
// same victims are rejected as far. Candidates the sampler skipped stay
// cold in both configurations.
func TestCopyBackGatesOnReuseDistance(t *testing.T) {
	run := func(maxReuse int) (*Stats, *Cache) {
		c := New(copyBackCfg(maxReuse))
		// Touch the candidates once, then flush them out of LOC and WOC
		// with a march of distinct lines.
		for i := 0; i < 8; i++ {
			c.Access(mem.LineAddr(i), 0, false)
		}
		for i := 0; i < 200; i++ {
			c.Access(mem.LineAddr(1000+i), 0, false)
		}
		for i := 0; i < 8; i++ {
			la := mem.LineAddr(i)
			if c.Present(la) != "" {
				continue // march too small for this set; skip
			}
			c.WritebackFromL1(la, mem.FootprintOfWord(0), 0)
		}
		return c.Stats(), c
	}

	wide, c := run(1 << 20) // 200-line march ≈ 13kB, well inside
	if wide.CopyBacks == 0 {
		t.Fatalf("no victim admitted under a wide window: %+v", wide)
	}
	if wide.CopyBackFar != 0 {
		t.Fatalf("wide window rejected %d victims as far", wide.CopyBackFar)
	}
	found := false
	for i := 0; i < 8; i++ {
		if c.Present(mem.LineAddr(i)) == "woc" {
			found = true
		}
	}
	if !found {
		t.Fatal("admitted victim not resident in the WOC")
	}

	narrow, _ := run(mem.LineSize)
	if narrow.CopyBacks != 0 {
		t.Fatalf("one-line window admitted %d victims", narrow.CopyBacks)
	}
	if narrow.CopyBackFar == 0 {
		t.Fatal("one-line window rejected nothing as far")
	}
	if narrow.CopyBackCold != wide.CopyBackCold {
		t.Fatalf("cold count depends on the window: %d vs %d", narrow.CopyBackCold, wide.CopyBackCold)
	}
}

// Copy-back sits on the access path (every access feeds the predictor)
// and on the L1-writeback path; neither may allocate in steady state.
func TestCopyBackPathZeroAllocs(t *testing.T) {
	const sets, ways = 64, 8
	c := New(Config{
		Name: "cba", SizeBytes: sets * ways * mem.LineSize, Ways: ways,
		WOCWays: 2, Seed: 1,
		CopyBack: &CopyBackConfig{SampleRate: 0.5, MaxSamples: 512},
	})
	rng := uint64(99)
	next := func() mem.LineAddr {
		rng = rng*6364136223846793005 + 1442695040888963407
		return mem.LineAddr(rng % (sets * 40))
	}
	for i := 0; i < 50_000; i++ {
		c.Access(next(), int(rng%8), rng%4 == 0)
	}
	if n := testing.AllocsPerRun(5000, func() {
		la := next()
		c.Access(la, int(rng%8), false)
		c.WritebackFromL1(next(), mem.FootprintOfWord(int(rng%8)), 0)
	}); n != 0 {
		t.Errorf("copy-back path allocates %.1f/op", n)
	}
}
