package distill

import (
	"testing"

	"ldis/internal/mem"
	"ldis/internal/sampler"
)

// tinyConfig: 4 sets, 4 ways (3 LOC + 1 WOC), no MT, no reverter.
func tinyConfig() Config {
	return Config{
		Name:      "tiny",
		SizeBytes: 4 * 4 * mem.LineSize,
		Ways:      4,
		WOCWays:   1,
		Seed:      7,
	}
}

// setLines returns n distinct lines all mapping to set 0 of a 4-set cache.
func setLines(n int) []mem.LineAddr {
	out := make([]mem.LineAddr, n)
	for i := range out {
		out[i] = mem.LineAddr(i * 4)
	}
	return out
}

func TestDefaultConfigIsPaperBaseline(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Sets() != 2048 || c.LOCWays() != 6 || c.WOCWays != 2 || c.WOCEntries() != 16 {
		t.Errorf("baseline geometry wrong: %+v", c)
	}
	if !c.MedianThreshold || !c.Reverter {
		t.Error("default should be LDIS-MT-RC")
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 1 << 20, Ways: 1, WOCWays: 0},
		{Name: "b", SizeBytes: 1 << 20, Ways: 8, WOCWays: 0},
		{Name: "c", SizeBytes: 1 << 20, Ways: 8, WOCWays: 8},
		{Name: "d", SizeBytes: 1<<20 + 64, Ways: 8, WOCWays: 2},
		{Name: "e", SizeBytes: 3 * 8 * 64, Ways: 8, WOCWays: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v should be invalid", c)
		}
	}
}

func TestLineMissThenLOCHit(t *testing.T) {
	d := New(tinyConfig())
	l := mem.LineAddr(0)
	if r := d.Access(l, 0, false); r.Outcome != LineMiss || r.ValidBits != mem.FullFootprint {
		t.Fatalf("first access = %+v", r)
	}
	if r := d.Access(l, 1, false); r.Outcome != LOCHit {
		t.Fatalf("second access = %+v", r)
	}
	if d.Present(l) != "loc" {
		t.Errorf("line in %q", d.Present(l))
	}
	st := d.Stats()
	if st.Accesses != 2 || st.LOCHits != 1 || st.LineMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDistillationOnLOCEviction(t *testing.T) {
	d := New(tinyConfig())
	lines := setLines(5)
	// Fill the 3 LOC ways; touch two words of the first line.
	d.Access(lines[0], 0, false)
	d.Access(lines[0], 5, false)
	d.Access(lines[1], 0, false)
	d.Access(lines[2], 0, false)
	// Fourth distinct line evicts lines[0] (LRU) into the WOC.
	d.Access(lines[3], 0, false)
	if got := d.Present(lines[0]); got != "woc" {
		t.Fatalf("victim in %q, want woc", got)
	}
	if vb := d.WOCValidBits(lines[0]); vb.Count() != 2 || !vb.Has(0) || !vb.Has(5) {
		t.Errorf("WOC stored words %v", vb)
	}
	if d.Stats().Distilled != 1 {
		t.Errorf("Distilled = %d", d.Stats().Distilled)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWOCHit(t *testing.T) {
	d := New(tinyConfig())
	lines := setLines(5)
	d.Access(lines[0], 2, false)
	for _, l := range lines[1:4] {
		d.Access(l, 0, false)
	}
	// lines[0] distilled with word 2; accessing word 2 is a WOC hit.
	r := d.Access(lines[0], 2, false)
	if r.Outcome != WOCHit {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if r.ValidBits != mem.FootprintOfWord(2) {
		t.Errorf("valid bits = %v", r.ValidBits)
	}
	if d.Stats().WOCHits != 1 {
		t.Errorf("WOCHits = %d", d.Stats().WOCHits)
	}
	// The line stays in the WOC (no promotion on WOC hits).
	if d.Present(lines[0]) != "woc" {
		t.Errorf("line in %q after WOC hit", d.Present(lines[0]))
	}
}

func TestHoleMiss(t *testing.T) {
	d := New(tinyConfig())
	lines := setLines(5)
	d.Access(lines[0], 2, false)
	for _, l := range lines[1:4] {
		d.Access(l, 0, false)
	}
	// Word 6 was distilled away: hole miss, refetch into LOC.
	r := d.Access(lines[0], 6, false)
	if r.Outcome != HoleMiss {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if r.ValidBits != mem.FullFootprint {
		t.Errorf("hole miss must return the full line, got %v", r.ValidBits)
	}
	if d.Present(lines[0]) != "loc" {
		t.Errorf("line in %q after hole miss, want loc", d.Present(lines[0]))
	}
	if d.Stats().HoleMisses != 1 {
		t.Errorf("HoleMisses = %d", d.Stats().HoleMisses)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHoleMissPreservesDirtyWords(t *testing.T) {
	d := New(tinyConfig())
	lines := setLines(5)
	d.Access(lines[0], 2, true) // dirty word 2
	for _, l := range lines[1:4] {
		d.Access(l, 0, false)
	}
	if d.Present(lines[0]) != "woc" {
		t.Fatal("precondition: line distilled")
	}
	// Hole miss on word 6: the dirty word 2 must survive into the LOC
	// copy so it is eventually written back, not lost.
	d.Access(lines[0], 6, false)
	// Evict lines[0] again with three fresh lines; its dirty mask must
	// include word 2, so the eventual WOC copy carries the dirt.
	more := setLines(9)
	for _, l := range more[6:9] {
		d.Access(l, 0, false)
	}
	if d.Present(lines[0]) != "woc" {
		t.Fatal("line should be distilled again")
	}
	// Push it out of the WOC entirely and count the writeback.
	before := d.Stats().Writebacks
	for i := 10; i < 30; i++ {
		d.Access(mem.LineAddr(i*4), 0, false)
	}
	if d.Present(lines[0]) == "woc" {
		t.Skip("line survived WOC churn; dirty propagation not exercised")
	}
	if d.Stats().Writebacks == before {
		t.Error("dirty data silently dropped")
	}
}

func TestWriteInWOCThenEvictWritesBack(t *testing.T) {
	d := New(tinyConfig())
	lines := setLines(5)
	d.Access(lines[0], 2, false)
	for _, l := range lines[1:4] {
		d.Access(l, 0, false)
	}
	// Dirty the WOC copy via a WOC write hit.
	if r := d.Access(lines[0], 2, true); r.Outcome != WOCHit {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	// Churn the WOC until the line is displaced.
	before := d.Stats().Writebacks
	for i := 10; i < 40 && d.Present(lines[0]) == "woc"; i++ {
		d.Access(mem.LineAddr(i*4), 0, false)
	}
	if d.Present(lines[0]) == "woc" {
		t.Skip("line survived WOC churn")
	}
	if d.Stats().Writebacks == before {
		t.Error("dirty WOC line evicted without writeback")
	}
}

func TestMedianThresholdFiltersFatLines(t *testing.T) {
	cfg := tinyConfig()
	cfg.MedianThreshold = true
	d := New(cfg)
	// Drive the median filter directly to a threshold of 1.
	for i := 0; i < medianWindowEvictions; i++ {
		d.mt.record(1)
	}
	if d.MedianThreshold() != 1 {
		t.Fatalf("threshold = %d, want 1", d.MedianThreshold())
	}
	lines := setLines(5)
	// A line with 3 words used must be filtered, not installed.
	d.Access(lines[0], 0, false)
	d.Access(lines[0], 1, false)
	d.Access(lines[0], 2, false)
	for _, l := range lines[1:4] {
		d.Access(l, 0, false)
	}
	if got := d.Present(lines[0]); got != "" {
		t.Errorf("fat line in %q, want evicted", got)
	}
	if d.Stats().ThresholdSkips == 0 {
		t.Error("ThresholdSkips not counted")
	}
	// A 1-word line is admitted. Flush it out of the LOC with three
	// fresh lines (accessing WOC-resident lines would not displace it).
	more := setLines(8)
	d.Access(more[4], 0, false)
	for _, l := range more[5:8] {
		d.Access(l, 0, false)
	}
	if got := d.Present(more[4]); got != "woc" {
		t.Errorf("thin line in %q, want woc", got)
	}
}

func TestMedianFilterWindow(t *testing.T) {
	m := newMedianFilter()
	if m.Threshold() != 8 {
		t.Fatalf("initial threshold = %d", m.Threshold())
	}
	// 60% one-word, 40% eight-word evictions -> median 1.
	for i := 0; i < medianWindowEvictions; i++ {
		if i%5 < 3 {
			m.record(1)
		} else {
			m.record(8)
		}
	}
	if m.Threshold() != 1 {
		t.Errorf("threshold = %d, want 1", m.Threshold())
	}
	// Clamping.
	m.record(0)
	m.record(99)
	if m.counts[0] == 0 || m.counts[7] == 0 {
		t.Error("out-of-range counts not clamped")
	}
}

func TestWritebackFromL1(t *testing.T) {
	d := New(tinyConfig())
	l := mem.LineAddr(0)
	d.Access(l, 0, false)
	// L1D eviction reports words 0 and 3 used, word 3 dirty.
	d.WritebackFromL1(l, mem.FootprintOfWord(0).Or(mem.FootprintOfWord(3)), mem.FootprintOfWord(3))
	// Evict: the distilled line must store both words.
	lines := setLines(4)
	for _, x := range lines[1:4] {
		d.Access(x, 0, false)
	}
	vb := d.WOCValidBits(l)
	if vb.Count() != 2 || !vb.Has(0) || !vb.Has(3) {
		t.Errorf("WOC words = %v, want {0,3}", vb)
	}
}

func TestWritebackFromL1AbsentLine(t *testing.T) {
	d := New(tinyConfig())
	before := d.Stats().Writebacks
	d.WritebackFromL1(mem.LineAddr(123), mem.FullFootprint, mem.FootprintOfWord(1))
	if d.Stats().Writebacks != before+1 {
		t.Error("dirty writeback for absent line must go to memory")
	}
	// Clean notice for an absent line: no writeback.
	d.WritebackFromL1(mem.LineAddr(456), mem.FullFootprint, 0)
	if d.Stats().Writebacks != before+1 {
		t.Error("clean notice must not count as writeback")
	}
}

func TestWritebackFromL1ToWOCCopy(t *testing.T) {
	d := New(tinyConfig())
	lines := setLines(5)
	d.Access(lines[0], 2, false)
	for _, l := range lines[1:4] {
		d.Access(l, 0, false)
	}
	if d.Present(lines[0]) != "woc" {
		t.Fatal("precondition failed")
	}
	// Dirty word 2 (stored in WOC): stays with the WOC copy.
	before := d.Stats().Writebacks
	d.WritebackFromL1(lines[0], mem.FootprintOfWord(2), mem.FootprintOfWord(2))
	if d.Stats().Writebacks != before {
		t.Error("stored dirty word should stay in WOC, not write back")
	}
	// Dirty word 7 (not stored): must write back to memory.
	d.WritebackFromL1(lines[0], mem.FootprintOfWord(7), mem.FootprintOfWord(7))
	if d.Stats().Writebacks != before+1 {
		t.Error("unstored dirty word must write back")
	}
}

func TestReverterDisablesLDISUnderHoleMissStorm(t *testing.T) {
	// 8 sets, leaders every 2nd set. Adversarial pattern: lines get one
	// word touched, evicted, then other words referenced -> hole misses
	// that a traditional cache would have avoided... simplified: make
	// the distill cache lose by always accessing distilled-away words.
	cfg := Config{
		Name: "rev", SizeBytes: 8 * 4 * mem.LineSize, Ways: 4, WOCWays: 1,
		Reverter: true, Seed: 3,
	}
	d := New(cfg)
	if d.Sampler() == nil {
		t.Fatal("sampler missing")
	}
	// Working set of 4 lines per set: fits in 4 traditional ways but
	// not in 3 LOC ways. Rotate touching different words so WOC copies
	// always hole-miss.
	for round := 0; round < 4000; round++ {
		word := round % mem.WordsPerLine
		for i := 0; i < 4; i++ {
			d.Access(mem.LineAddr(i*8), word, false) // set 0 (leader)
			d.Access(mem.LineAddr(i*8+1), word, false)
		}
	}
	if d.Sampler().Enabled() {
		t.Errorf("reverter should have disabled LDIS (PSEL=%d)", d.Sampler().PSEL())
	}
	if d.Stats().ModeSwitches == 0 {
		t.Error("follower sets never switched mode")
	}
	// Follower set 1 now behaves traditionally: 4 lines fit.
	missesBefore := d.Stats().Misses()
	for round := 0; round < 100; round++ {
		for i := 0; i < 4; i++ {
			d.Access(mem.LineAddr(i*8+1), round%8, false)
		}
	}
	if got := d.Stats().Misses() - missesBefore; got != 0 {
		t.Errorf("traditional-mode follower still missing: %d misses", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaderSetsAlwaysDistill(t *testing.T) {
	cfg := Config{
		Name: "lead", SizeBytes: 8 * 4 * mem.LineSize, Ways: 4, WOCWays: 1,
		Reverter: true, Seed: 3,
	}
	d := New(cfg)
	// Force the sampler to disable LDIS.
	for i := 0; i < 300; i++ {
		d.Sampler().RecordPolicyMiss(0)
	}
	if d.Sampler().Enabled() {
		t.Fatal("precondition: disabled")
	}
	// Leader set 0 still distills: fill its 3 LOC ways + overflow.
	lines := []mem.LineAddr{0, 8, 16, 24}
	for _, l := range lines {
		d.Access(l, 0, false)
	}
	if d.Present(lines[0]) != "woc" {
		t.Errorf("leader set victim in %q, want woc", d.Present(lines[0]))
	}
}

func TestModeSwitchRoundTrip(t *testing.T) {
	cfg := Config{
		Name: "rt", SizeBytes: 8 * 4 * mem.LineSize, Ways: 4, WOCWays: 1,
		Reverter: true, Seed: 3,
		SamplerConfig: &sampler.Config{
			NumSets: 8, LeaderSets: 4, ATDWays: 4, PSELBits: 8,
			LowWatermark: 64, HighWatermark: 192,
		},
	}
	d := New(cfg)
	// Follower set 1: fill 4 lines in traditional mode.
	for i := 0; i < 300; i++ {
		d.Sampler().RecordPolicyMiss(0) // disable
	}
	for i := 0; i < 4; i++ {
		d.Access(mem.LineAddr(i*8+1), 0, false)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Re-enable: thrash the ATD of leader set 0.
	for i := 0; i < 400; i++ {
		d.Sampler().ObserveATD(0, mem.LineAddr(uint64(i)*8))
	}
	if !d.Sampler().Enabled() {
		t.Fatal("sampler should be enabled")
	}
	// Next access to follower set 1 narrows it back; the overflow lines
	// are distilled into the WOC.
	d.Access(mem.LineAddr(100*8+1), 0, false)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().ModeSwitches < 2 {
		t.Errorf("ModeSwitches = %d, want >= 2", d.Stats().ModeSwitches)
	}
}

func TestCustomSlotsFunc(t *testing.T) {
	cfg := tinyConfig()
	var sawFP mem.Footprint
	cfg.Slots = func(line mem.LineAddr, used mem.Footprint) int {
		sawFP = used
		return 1 // pretend everything compresses to one slot
	}
	d := New(cfg)
	lines := setLines(5)
	// 4 words used -> would need 4 slots uncompressed.
	d.Access(lines[0], 0, false)
	d.Access(lines[0], 1, false)
	d.Access(lines[0], 2, false)
	d.Access(lines[0], 3, false)
	for _, l := range lines[1:4] {
		d.Access(l, 0, false)
	}
	if sawFP.Count() != 4 {
		t.Errorf("slots func saw footprint %v", sawFP)
	}
	if d.Present(lines[0]) != "woc" {
		t.Fatal("line not distilled")
	}
	// All 4 words retrievable from a single slot (compressed).
	if vb := d.WOCValidBits(lines[0]); vb.Count() != 4 {
		t.Errorf("valid bits = %v", vb)
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{LOCHit: "loc-hit", WOCHit: "woc-hit", HoleMiss: "hole-miss", LineMiss: "line-miss"}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
	if !HoleMiss.IsMiss() || !LineMiss.IsMiss() || LOCHit.IsMiss() || WOCHit.IsMiss() {
		t.Error("IsMiss classification wrong")
	}
	if Outcome(9).String() == "" {
		t.Error("unknown outcome should render")
	}
}

func TestStatsAggregates(t *testing.T) {
	st := Stats{LOCHits: 3, WOCHits: 2, HoleMisses: 1, LineMisses: 4}
	if st.Hits() != 5 || st.Misses() != 5 {
		t.Errorf("aggregates wrong: %+v", st)
	}
}

// Stress: a pseudo-random access pattern must keep all invariants and
// conserve line residency (a line is never in LOC and WOC at once —
// CheckInvariants covers it).
func TestStressInvariants(t *testing.T) {
	cfg := Config{
		Name: "stress", SizeBytes: 16 * 8 * mem.LineSize, Ways: 8, WOCWays: 2,
		MedianThreshold: true, Reverter: true, Seed: 11,
	}
	d := New(cfg)
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 200000; i++ {
		line := mem.LineAddr(next() % 256)
		word := int(next() % 8)
		write := next()%4 == 0
		d.Access(line, word, write)
		if next()%16 == 0 {
			d.WritebackFromL1(line, mem.Footprint(next()), mem.Footprint(next())&mem.Footprint(next()))
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Accesses != 200000 {
		t.Errorf("accesses = %d", st.Accesses)
	}
	if st.Hits()+st.Misses() != st.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", st.Hits(), st.Misses(), st.Accesses)
	}
}
