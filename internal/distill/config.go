// Package distill implements the paper's primary contribution: the
// Distill Cache (Section 5). Each set splits into a Line-Organized
// Cache (LOC) — ordinary ways whose tag entries carry a footprint — and
// a Word-Organized Cache (WOC) whose ways are logically partitioned
// into 8B word entries. Lines evicted from the LOC are *distilled*:
// their used words move to the WOC at a power-of-two aligned position
// and the unused words are discarded. Median-threshold filtering
// (Section 5.4) and the reverter circuit (Section 5.5) are both
// implemented here.
package distill

import (
	"fmt"

	"ldis/internal/mem"
	"ldis/internal/obs"
	"ldis/internal/sampler"
	"ldis/internal/wordstore"
)

// SlotsFunc computes how many 8B WOC entries a distilled line occupies.
// The default is the smallest power of two covering the used-word count;
// footprint-aware compression (Section 8.2) plugs in a function that
// compresses the used words first.
type SlotsFunc func(line mem.LineAddr, used mem.Footprint) int

// Config describes a distill cache. The paper's default (Section 6.1):
// 1MB, 8 ways, 64B lines, 6 ways LOC + 2 ways WOC, LRU in the LOC,
// random aligned replacement in the WOC.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	WOCWays   int

	// MedianThreshold enables LDIS-MT filtering (Section 5.4).
	MedianThreshold bool

	// StaticThreshold, when nonzero, applies a fixed distillation
	// threshold K (Section 5.4's general threshold-based distillation):
	// only lines with at most K used words enter the WOC. Mutually
	// exclusive with MedianThreshold.
	StaticThreshold int

	// WOCLRU switches the WOC's replacement from the paper's random
	// candidate selection to a variable-size LRU approximation; the
	// paper's footnote 4 claims the two perform similarly, which the
	// BenchmarkAblationWOCReplacement ablation checks.
	WOCLRU bool

	// FootprintNoise models wrong-path pollution of footprints (the
	// paper's footnote 8): with this probability an install marks one
	// random extra word as used, diluting distillation.
	FootprintNoise float64

	// Reverter enables the reverter circuit (Section 5.5). Follower
	// sets fall back to a traditional (Ways)-way LRU organization when
	// the sampler decides LDIS is losing.
	Reverter bool

	// Seed drives the WOC's random replacement choices.
	Seed uint64

	// Slots overrides the WOC allocation size (used by FAC). Nil means
	// the uncompressed power-of-two rule.
	Slots SlotsFunc

	// Touche, when non-nil, replaces the WOC's per-word full tags with
	// Touché-style compressed superblock tags (arXiv 1909.00553):
	// demand lookups go through the hashed-signature/checksum path and
	// installs evict whatever the compressed store cannot represent.
	// The tag-area win is priced by costmodel.ToucheTagArea.
	Touche *wordstore.ToucheConfig

	// CopyBack, when non-nil, enables reuse-distance-gated copy-back of
	// clean L1 victims into the WOC (arXiv 2105.14442): an L1D eviction
	// notice for a clean line absent from both structures consults a
	// SHARDS-fed Mattson predictor and, if the line's current stack
	// distance fits the configured window, its used words are installed
	// into the WOC instead of being dropped.
	CopyBack *CopyBackConfig

	// SamplerConfig overrides the reverter's sampler parameters; zero
	// value means sampler.DefaultConfig for this cache's set count.
	SamplerConfig *sampler.Config

	// Obs, when non-nil, receives the owning grid cell's distillation
	// counters (distilled lines, threshold skips, hole misses, WOC
	// evictions, mode switches), the WOC-lookup and distill-evict
	// spans, and the WOC install-size histogram. All handles no-op when
	// Obs is nil; nothing lands on the per-access hit path.
	Obs *obs.Cell
}

// DefaultConfig returns the paper's baseline distill cache: a 1MB 8-way
// cache with 2 WOC ways, median-threshold filtering and the reverter
// (the LDIS-MT-RC configuration used throughout Section 7).
func DefaultConfig() Config {
	return Config{
		Name:            "distill",
		SizeBytes:       1 << 20,
		Ways:            8,
		WOCWays:         2,
		MedianThreshold: true,
		Reverter:        true,
		Seed:            1,
	}
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (mem.LineSize * c.Ways) }

// LOCWays returns the number of line-organized ways.
func (c Config) LOCWays() int { return c.Ways - c.WOCWays }

// WOCEntries returns the number of word entries per set.
func (c Config) WOCEntries() int { return c.WOCWays * mem.WordsPerLine }

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.Ways <= 1 {
		return fmt.Errorf("distill %q: need at least 2 ways, got %d", c.Name, c.Ways)
	}
	if c.WOCWays < 1 || c.WOCWays >= c.Ways {
		return fmt.Errorf("distill %q: WOCWays %d must be in [1, %d]", c.Name, c.WOCWays, c.Ways-1)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*mem.LineSize != c.SizeBytes {
		return fmt.Errorf("distill %q: size %dB not divisible into %d ways of 64B lines", c.Name, c.SizeBytes, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("distill %q: set count %d not a power of two", c.Name, sets)
	}
	if c.StaticThreshold < 0 || c.StaticThreshold > mem.WordsPerLine {
		return fmt.Errorf("distill %q: static threshold %d out of [0,%d]", c.Name, c.StaticThreshold, mem.WordsPerLine)
	}
	if c.StaticThreshold > 0 && c.MedianThreshold {
		return fmt.Errorf("distill %q: StaticThreshold and MedianThreshold are mutually exclusive", c.Name)
	}
	if c.FootprintNoise < 0 || c.FootprintNoise > 1 {
		return fmt.Errorf("distill %q: footprint noise %v out of [0,1]", c.Name, c.FootprintNoise)
	}
	if c.Touche != nil {
		if err := c.Touche.Validate(); err != nil {
			return fmt.Errorf("distill %q: %v", c.Name, err)
		}
	}
	if c.CopyBack != nil {
		if err := c.CopyBack.Validate(); err != nil {
			return fmt.Errorf("distill %q: %v", c.Name, err)
		}
	}
	return nil
}

// ShardExact reports whether this configuration's results are a pure
// function of per-set access order, i.e. whether line-address sharding
// reproduces the sequential run byte for byte. The disqualifiers are
// the features that couple sets through global state:
//
//   - MedianThreshold: one median filter fed by every set's evictions
//     in global order.
//   - Reverter: a global PSEL counter and sampler fed by leader sets.
//   - FootprintNoise: consumes the cache-global RNG stream, whose
//     sequence depends on cross-set interleaving.
//   - random WOC replacement (WOCLRU false): same RNG coupling on
//     every distill.
//   - Slots: an extension hook whose purity this package cannot see.
//   - CopyBack: its reuse predictor is one Mattson stack fed by every
//     set's accesses in global order, so predictions (and therefore
//     WOC contents) depend on cross-set interleaving.
//
// The WOC-LRU tick counter is global but harmless: only the relative
// order of LastUse stamps within one set matters, and per-shard
// processing preserves per-set program order. Touché compressed tags
// are likewise shard-neutral: signatures and checksums are pure
// functions of (tag, seed), and the install filter touches only the
// accessed set.
func (c Config) ShardExact() bool {
	return !c.MedianThreshold && !c.Reverter && c.FootprintNoise == 0 &&
		c.WOCLRU && c.Slots == nil && c.CopyBack == nil
}
