package distill

import "ldis/internal/mem"

// medianWindowEvictions is how often the median threshold is
// recomputed: once every 4k LOC evictions (paper Section 5.4).
const medianWindowEvictions = 4096

// medianFilter implements median-threshold (MT) filtering with the
// paper's hardware: eight counters (one per used-word count), an
// eviction-sum counter, and a median recomputed by accumulating counts
// until half the eviction-sum is reached.
type medianFilter struct {
	counts    [mem.WordsPerLine]uint64
	sum       uint64
	threshold int
}

// newMedianFilter starts with the permissive threshold (8), which makes
// the first window behave like LDIS-Base.
func newMedianFilter() *medianFilter {
	return &medianFilter{threshold: mem.WordsPerLine}
}

// record notes a LOC eviction with n used words (clamped to 1..8) and
// recomputes the threshold at window boundaries.
func (m *medianFilter) record(n int) {
	if n < 1 {
		n = 1
	}
	if n > mem.WordsPerLine {
		n = mem.WordsPerLine
	}
	m.counts[n-1]++
	m.sum++
	if m.sum >= medianWindowEvictions {
		m.threshold = m.median()
		m.counts = [mem.WordsPerLine]uint64{}
		m.sum = 0
	}
}

// median adds counts from the first counter until half the eviction-sum
// is reached, exactly as the paper's hardware does.
func (m *medianFilter) median() int {
	half := (m.sum + 1) / 2
	var cum uint64
	for i, c := range m.counts {
		cum += c
		if cum >= half {
			return i + 1
		}
	}
	return mem.WordsPerLine
}

// admit reports whether a line with n used words may be installed in
// the WOC: at most the median number of words used.
func (m *medianFilter) admit(n int) bool { return n <= m.threshold }

// Threshold exposes the current distillation threshold K.
func (m *medianFilter) Threshold() int { return m.threshold }
