package compress

import (
	"reflect"
	"testing"

	"ldis/internal/mem"
	"ldis/internal/trace"
	"ldis/internal/values"
)

func batchRecords(n, lines int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		k := mem.Load
		if i%5 == 0 {
			k = mem.Store
		}
		recs[i] = trace.Record{Addr: mem.LineAddr(i % lines).WordAddr(i % 8), Kind: k, Instret: 1}
	}
	return recs
}

func testModel() *values.Model { return values.NewModel(7, values.Mix{Zero: 0.4, Half: 0.3, Full: 0.3}) }

func TestAccessBatchMatchesScalar(t *testing.T) {
	cfg := CMPRConfig{Name: "c", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8, TagFactor: 2}
	recs := batchRecords(10_000, 1024)

	batched := NewCMPR(cfg, testModel())
	gotHits := batched.AccessBatch(recs)

	scalar := NewCMPR(cfg, testModel())
	wantHits := 0
	for i := range recs {
		if scalar.Access(recs[i].Line(), recs[i].Word(), recs[i].IsWrite()) {
			wantHits++
		}
	}
	if gotHits != wantHits {
		t.Errorf("AccessBatch hits = %d, scalar loop %d", gotHits, wantHits)
	}
	if !reflect.DeepEqual(batched.Stats(), scalar.Stats()) {
		t.Errorf("stats diverged")
	}
}

func TestAccessBatchZeroAllocs(t *testing.T) {
	c := NewCMPR(CMPRConfig{Name: "c", SizeBytes: 64 * 8 * mem.LineSize, Ways: 8, TagFactor: 2}, testModel())
	recs := batchRecords(256, 1024)
	c.AccessBatch(recs) // steady state: sets at tag capacity
	if n := testing.AllocsPerRun(500, func() { c.AccessBatch(recs) }); n != 0 {
		t.Errorf("AccessBatch allocates %.1f/op", n)
	}
}
