package compress

import (
	"testing"
	"testing/quick"

	"ldis/internal/mem"
	"ldis/internal/values"
)

func TestEncode32(t *testing.T) {
	tests := []struct {
		v    uint32
		code Code
		bits int
	}{
		{0, CodeZero, 2},
		{1, CodeOne, 2},
		{2, CodeHalf, 18},
		{0xffff, CodeHalf, 18},
		{0x10000, CodeFull, 34},
		{0xdeadbeef, CodeFull, 34},
	}
	for _, tt := range tests {
		code, bits := Encode32(tt.v)
		if code != tt.code || bits != tt.bits {
			t.Errorf("Encode32(%#x) = %v,%d; want %v,%d", tt.v, code, bits, tt.code, tt.bits)
		}
	}
}

func TestCategorize(t *testing.T) {
	tests := []struct {
		bits int
		cat  Category
	}{
		{0, OneEighth},
		{64, OneEighth},
		{65, OneFourth},
		{128, OneFourth},
		{129, OneHalf},
		{256, OneHalf},
		{257, Full},
		{16 * 34, Full},
	}
	for _, tt := range tests {
		if got := Categorize(tt.bits); got != tt.cat {
			t.Errorf("Categorize(%d) = %v, want %v", tt.bits, got, tt.cat)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	if OneEighth.String() != "one-eighth" || Full.String() != "full" || Category(9).String() != "invalid" {
		t.Error("Category.String wrong")
	}
}

func TestSegmentsFor(t *testing.T) {
	tests := map[int]int{0: 1, 1: 1, 64: 1, 65: 2, 128: 2, 129: 4, 256: 4, 257: 8, 544: 8}
	for bits, segs := range tests {
		if got := SegmentsFor(bits); got != segs {
			t.Errorf("SegmentsFor(%d) = %d, want %d", bits, got, segs)
		}
	}
}

func TestLineBitsAllZeros(t *testing.T) {
	m := values.NewModel(1, values.Mix{Zero: 1})
	// 16 zero data at 2 bits each.
	if got := LineBits(m, 0, mem.FullFootprint); got != 32 {
		t.Errorf("all-zero line bits = %d, want 32", got)
	}
	// Used words only: 2 words -> 4 data -> 8 bits.
	fp := mem.FootprintOfWord(0).Or(mem.FootprintOfWord(5))
	if got := LineBits(m, 0, fp); got != 8 {
		t.Errorf("two-word bits = %d, want 8", got)
	}
}

func TestLineBitsIncompressible(t *testing.T) {
	m := values.NewModel(1, values.Incompressible)
	if got := LineBits(m, 7, mem.FullFootprint); got != 16*34 {
		t.Errorf("incompressible line bits = %d, want %d", got, 16*34)
	}
	if Categorize(LineBits(m, 7, mem.FullFootprint)) != Full {
		t.Error("incompressible line should be Full category")
	}
}

func TestWordBitsConsistency(t *testing.T) {
	m := values.NewModel(3, values.PointerLike)
	total := 0
	for w := 0; w < mem.WordsPerLine; w++ {
		total += WordBits(m, 42, w)
	}
	if got := LineBits(m, 42, mem.FullFootprint); got != total {
		t.Errorf("LineBits %d != sum of WordBits %d", got, total)
	}
}

func tinyCMPR(mix values.Mix) *CMPR {
	cfg := CMPRConfig{Name: "t", SizeBytes: 4 * 2 * mem.LineSize, Ways: 2, TagFactor: 4}
	return NewCMPR(cfg, values.NewModel(9, mix))
}

func TestCMPRConfigValidate(t *testing.T) {
	if err := DefaultCMPRConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultCMPRConfig()
	if c.Sets() != 2048 || c.SegmentsPerSet() != 64 || c.TagsPerSet() != 32 {
		t.Errorf("geometry wrong: %+v", c)
	}
	bad := []CMPRConfig{
		{Name: "a", SizeBytes: 1024, Ways: 0, TagFactor: 4},
		{Name: "b", SizeBytes: 1024, Ways: 2, TagFactor: 0},
		{Name: "c", SizeBytes: 100, Ways: 2, TagFactor: 4},
		{Name: "d", SizeBytes: 3 * 2 * 64, Ways: 2, TagFactor: 4},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%+v should be invalid", cfg)
		}
	}
}

func TestCMPRMissFillHit(t *testing.T) {
	c := tinyCMPR(values.Mix{Zero: 1})
	if c.Access(0, 0, false) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0, 3, false) {
		t.Fatal("second access should hit (whole line stored)")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCMPRCapacityBenefit(t *testing.T) {
	// All-zero lines compress to 1 segment: a 2-way set (16 segments,
	// 8 tags) holds 8 lines instead of 2.
	c := tinyCMPR(values.Mix{Zero: 1})
	for i := 0; i < 8; i++ {
		c.Access(mem.LineAddr(i*4), 0, false) // all map to set 0
	}
	if got := c.LinesResident(0); got != 8 {
		t.Errorf("resident lines = %d, want 8 (tag limited)", got)
	}
	// All still hit.
	for i := 0; i < 8; i++ {
		if !c.Access(mem.LineAddr(i*4), 1, false) {
			t.Errorf("line %d evicted despite compression", i)
		}
	}
}

func TestCMPRIncompressibleBehavesLikeBaseline(t *testing.T) {
	c := tinyCMPR(values.Incompressible)
	// Full-size lines: set capacity is 2 lines, LRU.
	c.Access(0, 0, false)
	c.Access(4, 0, false)
	c.Access(8, 0, false) // evicts line 0
	if c.Present(0) {
		t.Error("LRU line should have been evicted")
	}
	if !c.Present(4) || !c.Present(8) {
		t.Error("recent lines missing")
	}
}

func TestCMPRTagLimit(t *testing.T) {
	cfg := CMPRConfig{Name: "t", SizeBytes: 4 * 2 * mem.LineSize, Ways: 2, TagFactor: 2}
	c := NewCMPR(cfg, values.NewModel(9, values.Mix{Zero: 1}))
	for i := 0; i < 10; i++ {
		c.Access(mem.LineAddr(i*4), 0, false)
	}
	if got := c.LinesResident(0); got != cfg.TagsPerSet() {
		t.Errorf("resident = %d, want tag limit %d", got, cfg.TagsPerSet())
	}
}

func TestCMPRDirtyWriteback(t *testing.T) {
	c := tinyCMPR(values.Incompressible)
	c.Access(0, 0, true)
	c.Access(4, 0, false)
	c.Access(8, 0, false) // evicts dirty line 0
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestFACSlots(t *testing.T) {
	m := values.NewModel(1, values.Mix{Zero: 1})
	slots := FACSlots(m)
	// 8 zero words compress into 1 slot.
	if got := slots(0, mem.FullFootprint); got != 1 {
		t.Errorf("FAC slots for zero line = %d, want 1", got)
	}
	mInc := values.NewModel(1, values.Incompressible)
	slotsInc := FACSlots(mInc)
	// 2 incompressible words: 4 data * 34 bits = 136 bits -> 3 segs -> 4 slots.
	fp := mem.FootprintOfWord(0).Or(mem.FootprintOfWord(1))
	if got := slotsInc(0, fp); got != 4 {
		t.Errorf("FAC slots for 2 incompressible words = %d, want 4", got)
	}
	// FAC never exceeds 8 slots even for a full incompressible line.
	if got := slotsInc(0, mem.FullFootprint); got != 8 {
		t.Errorf("FAC slots full line = %d, want 8", got)
	}
}

// Property: Encode32 sizes are monotone with the value class and always
// one of the four legal sizes; Categorize(SegmentsFor) relationships hold.
func TestEncodingProperties(t *testing.T) {
	f := func(v uint32) bool {
		code, bits := Encode32(v)
		switch code {
		case CodeZero:
			return v == 0 && bits == 2
		case CodeOne:
			return v == 1 && bits == 2
		case CodeHalf:
			return v > 1 && v>>16 == 0 && bits == 18
		case CodeFull:
			return v>>16 != 0 && bits == 34
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(rawBits uint16) bool {
		bits := int(rawBits) % 600
		segs := SegmentsFor(bits)
		if segs < 1 || segs > 8 || segs&(segs-1) != 0 {
			return false
		}
		return segs*64 >= bits || segs == 8
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// TestIncompressibleCMPREquivalentToLRU is a differential test: with
// incompressible values every line needs 8 segments, so the compressed
// cache degenerates to a Ways-way LRU cache and must match a reference
// model miss for miss.
func TestIncompressibleCMPREquivalentToLRU(t *testing.T) {
	const sets, ways = 8, 2
	cfg := CMPRConfig{Name: "ref", SizeBytes: sets * ways * mem.LineSize, Ways: ways, TagFactor: 4}
	c := NewCMPR(cfg, values.NewModel(3, values.Incompressible))

	ref := make([][]mem.LineAddr, sets)
	refMisses := 0
	refAccess := func(la mem.LineAddr) {
		si := la.SetIndex(sets)
		for i, l := range ref[si] {
			if l == la {
				ref[si] = append([]mem.LineAddr{la}, append(ref[si][:i], ref[si][i+1:]...)...)
				return
			}
		}
		refMisses++
		ref[si] = append([]mem.LineAddr{la}, ref[si]...)
		if len(ref[si]) > ways {
			ref[si] = ref[si][:ways]
		}
	}

	rng := uint64(5)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 50000; i++ {
		la := mem.LineAddr(next() % 64)
		c.Access(la, int(next()%8), next()%4 == 0)
		refAccess(la)
	}
	if got := int(c.Stats().Misses); got != refMisses {
		t.Errorf("incompressible CMPR misses %d != LRU reference %d", got, refMisses)
	}
}
