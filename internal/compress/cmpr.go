package compress

import (
	"fmt"

	"ldis/internal/mem"
	"ldis/internal/stats"
	"ldis/internal/values"
)

// CMPRConfig describes a compressed traditional cache (the paper's
// CMPR-4xTags comparator in Figure 11): the baseline data array, each
// set holding compressed lines in 8B segments, with TagFactor times as
// many tag entries as a traditional cache and *perfect LRU* replacement
// — the paper's words — meaning lines are evicted strictly in LRU order
// until the incoming line fits, with no placement constraints.
type CMPRConfig struct {
	Name      string
	SizeBytes int
	Ways      int // baseline associativity (data ways per set)
	TagFactor int // tag entries per set = TagFactor * Ways
}

// DefaultCMPRConfig is CMPR-4xTags over the paper's 1MB 8-way baseline.
func DefaultCMPRConfig() CMPRConfig {
	return CMPRConfig{Name: "cmpr", SizeBytes: 1 << 20, Ways: 8, TagFactor: 4}
}

// Sets returns the number of sets.
func (c CMPRConfig) Sets() int { return c.SizeBytes / (mem.LineSize * c.Ways) }

// SegmentsPerSet returns the data capacity of a set in 8B segments.
func (c CMPRConfig) SegmentsPerSet() int { return c.Ways * mem.WordsPerLine }

// TagsPerSet returns the tag-entry budget of a set.
func (c CMPRConfig) TagsPerSet() int { return c.TagFactor * c.Ways }

// Validate checks structural invariants.
func (c CMPRConfig) Validate() error {
	if c.Ways <= 0 || c.TagFactor <= 0 {
		return fmt.Errorf("cmpr %q: ways %d and tag factor %d must be positive", c.Name, c.Ways, c.TagFactor)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*mem.LineSize != c.SizeBytes {
		return fmt.Errorf("cmpr %q: size %dB not divisible into %d ways of 64B lines", c.Name, c.SizeBytes, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cmpr %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

type cmprLine struct {
	tag      uint64
	segments int
	dirty    bool
}

// CMPRStats counts compressed-cache behaviour.
type CMPRStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	// SegmentsHist histograms the compressed size (in segments) of
	// installed lines.
	SegmentsHist *stats.Histogram
}

// HitRate returns hits/accesses.
func (s *CMPRStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// CMPR is the compressed traditional cache. Whole lines are compressed
// with the Table-4 encoding (using the workload's value model) and
// stored in 8B segments; a set holds at most TagsPerSet lines and
// SegmentsPerSet segments.
type CMPR struct {
	cfg  CMPRConfig
	vals *values.Model
	sets [][]cmprLine // MRU-first
	st   CMPRStats

	// Set-indexing geometry, precomputed at construction so the access
	// path does not rederive it per access.
	setMask  uint64
	tagShift uint
}

// NewCMPR builds the compressed cache over the given value model;
// panics on invalid config.
func NewCMPR(cfg CMPRConfig, vals *values.Model) *CMPR {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.Sets()
	sets := make([][]cmprLine, numSets)
	for i := range sets {
		// Full tag-budget capacity up front: install's in-place prepend
		// then never grows the slice, keeping the miss path
		// allocation-free.
		sets[i] = make([]cmprLine, 0, cfg.TagsPerSet())
	}
	c := &CMPR{cfg: cfg, vals: vals, sets: sets, setMask: uint64(numSets - 1)}
	for n := numSets; n > 1; n >>= 1 {
		c.tagShift++
	}
	c.st.SegmentsHist = stats.NewHistogram(cfg.Name+" segments", mem.WordsPerLine+1)
	return c
}

// setIndexOf and tagOf are the precomputed equivalents of
// mem.LineAddr.SetIndex/Tag for this cache's geometry.
func (c *CMPR) setIndexOf(la mem.LineAddr) int { return int(uint64(la) & c.setMask) }
func (c *CMPR) tagOf(la mem.LineAddr) uint64   { return uint64(la) >> c.tagShift }

// Stats returns the live counters.
func (c *CMPR) Stats() *CMPRStats { return &c.st }

// Config returns the cache's configuration.
func (c *CMPR) Config() CMPRConfig { return c.cfg }

// Access performs a demand access; on a miss the line is compressed and
// installed, evicting LRU lines until both the segment and tag budgets
// are satisfied. All words of a stored line are valid (compression
// keeps the whole line), so there are no hole misses.
//ldis:noalloc
func (c *CMPR) Access(la mem.LineAddr, word int, write bool) bool {
	c.st.Accesses++
	si := c.setIndexOf(la)
	set := c.sets[si]
	tag := c.tagOf(la)
	for pos := range set {
		if set[pos].tag != tag {
			continue
		}
		c.st.Hits++
		l := set[pos]
		if write {
			l.dirty = true
		}
		copy(set[1:pos+1], set[0:pos])
		set[0] = l
		return true
	}
	c.st.Misses++
	c.install(si, la, write)
	return false
}

func (c *CMPR) install(si int, la mem.LineAddr, write bool) {
	segs := SegmentsFor(LineBits(c.vals, la, mem.FullFootprint))
	c.st.SegmentsHist.Add(segs)
	set := c.sets[si]
	used := 0
	for _, l := range set {
		used += l.segments
	}
	// Perfect LRU: evict from the tail until the line fits in both the
	// segment budget and the tag budget.
	for len(set) > 0 && (used+segs > c.cfg.SegmentsPerSet() || len(set)+1 > c.cfg.TagsPerSet()) {
		v := set[len(set)-1]
		set = set[:len(set)-1]
		used -= v.segments
		c.st.Evictions++
		if v.dirty {
			c.st.Writebacks++
		}
	}
	// In-place MRU prepend: the eviction loop guarantees len(set)+1 is
	// within the tag budget, and the set was allocated at full capacity,
	// so the append never grows the backing array.
	set = append(set, cmprLine{})
	copy(set[1:], set)
	set[0] = cmprLine{tag: c.tagOf(la), segments: segs, dirty: write}
	c.sets[si] = set
}

// Present reports whether the line is resident (for tests).
func (c *CMPR) Present(la mem.LineAddr) bool {
	set := c.sets[c.setIndexOf(la)]
	tag := c.tagOf(la)
	for _, l := range set {
		if l.tag == tag {
			return true
		}
	}
	return false
}

// LinesResident returns the number of lines in the set holding la; used
// to verify the compression capacity benefit in tests.
func (c *CMPR) LinesResident(la mem.LineAddr) int {
	return len(c.sets[c.setIndexOf(la)])
}

// FACSlots returns a distill.SlotsFunc-compatible sizing function
// implementing footprint-aware compression (Section 8.2): only the used
// words are compressed, and the result is rounded to the power-of-two
// slot count the WOC requires.
func FACSlots(vals *values.Model) func(line mem.LineAddr, used mem.Footprint) int {
	return func(line mem.LineAddr, used mem.Footprint) int {
		return SegmentsFor(LineBits(vals, line, used))
	}
}

// Merge folds a sibling shard's counters into s: shards partition the
// line-address space, so plain sums (and bucket-wise histogram sums)
// reproduce the sequential totals exactly.
//
//ldis:noalloc
func (s *CMPRStats) Merge(o *CMPRStats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Writebacks += o.Writebacks
	s.SegmentsHist.Merge(o.SegmentsHist)
}
