// Package compress implements the paper's cache-compression study
// (Section 8): the 32-bit significance encoding of Table 4, line
// compressibility classification (Figure 10), a compressed traditional
// cache (CMPR), and footprint-aware compression (FAC) for the distill
// cache's WOC.
package compress

import (
	"ldis/internal/mem"
	"ldis/internal/values"
)

// Code is the 2-bit encoding of one 32-bit datum (paper Table 4).
type Code uint8

const (
	// CodeZero: the datum is 0; no payload.
	CodeZero Code = 0b00
	// CodeOne: the datum is 1; no payload.
	CodeOne Code = 0b01
	// CodeHalf: bits[31:16] are 0; only bits[15:0] stored.
	CodeHalf Code = 0b10
	// CodeFull: incompressible; all 32 bits stored.
	CodeFull Code = 0b11
)

// Encode32 classifies a 32-bit datum and returns its code and total
// encoded size in bits (2-bit code + payload).
func Encode32(v uint32) (Code, int) {
	switch {
	case v == 0:
		return CodeZero, 2
	case v == 1:
		return CodeOne, 2
	case v>>16 == 0:
		return CodeHalf, 2 + 16
	default:
		return CodeFull, 2 + 32
	}
}

// WordBits returns the encoded size in bits of the 8B word w of line l
// under the value model (two 32-bit data).
func WordBits(m *values.Model, l mem.LineAddr, w int) int {
	lo, hi := m.Word64(l, w)
	_, a := Encode32(lo)
	_, b := Encode32(hi)
	return a + b
}

// LineBits returns the encoded size in bits of the words of line l
// selected by mask (FullFootprint for whole-line compression).
func LineBits(m *values.Model, l mem.LineAddr, mask mem.Footprint) int {
	bits := 0
	for w := 0; w < mem.WordsPerLine; w++ {
		if mask.Has(w) {
			bits += WordBits(m, l, w)
		}
	}
	return bits
}

// Category classifies a compressed size the way Figure 10 does: can the
// line be stored in at most one-eighth, one-fourth, one-half of its
// original 64B, or does it need full size.
type Category uint8

const (
	// OneEighth: fits in 8 bytes.
	OneEighth Category = iota
	// OneFourth: fits in 16 bytes.
	OneFourth
	// OneHalf: fits in 32 bytes.
	OneHalf
	// Full: needs more than half the original line.
	Full
	// NumCategories is the category count (for histograms).
	NumCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case OneEighth:
		return "one-eighth"
	case OneFourth:
		return "one-fourth"
	case OneHalf:
		return "one-half"
	case Full:
		return "full"
	default:
		return "invalid"
	}
}

// Categorize maps an encoded bit count to its Figure-10 category.
func Categorize(bits int) Category {
	switch bytes := (bits + 7) / 8; {
	case bytes <= mem.LineSize/8:
		return OneEighth
	case bytes <= mem.LineSize/4:
		return OneFourth
	case bytes <= mem.LineSize/2:
		return OneHalf
	default:
		return Full
	}
}

// SegmentsFor returns the number of 8B segments (1, 2, 4, or 8) a
// compressed payload of the given bit count occupies, rounded up to a
// power of two to satisfy the aligned-placement rule.
func SegmentsFor(bits int) int {
	segs := (bits + 63) / 64
	return mem.Pow2WordsFor(segs)
}
