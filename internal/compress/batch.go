package compress

import "ldis/internal/trace"

// AccessBatch drives a record block through the compressed cache as a
// standalone L2. Access already performs the compressed install on a
// miss, so each record is a single call; instruction fetches are
// ordinary lines here. It returns the number of hits.
//
//ldis:noalloc
func (c *CMPR) AccessBatch(recs []trace.Record) (hits int) {
	for i := range recs {
		if c.Access(recs[i].Line(), recs[i].Word(), recs[i].IsWrite()) {
			hits++
		}
	}
	return hits
}
