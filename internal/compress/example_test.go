package compress_test

import (
	"fmt"

	"ldis/internal/compress"
)

// ExampleEncode32 demonstrates the paper's Table-4 significance codes.
func ExampleEncode32() {
	for _, v := range []uint32{0, 1, 0x00001234, 0xdeadbeef} {
		code, bits := compress.Encode32(v)
		fmt.Printf("%08x -> code %02b, %d bits\n", v, code, bits)
	}
	// Output:
	// 00000000 -> code 00, 2 bits
	// 00000001 -> code 01, 2 bits
	// 00001234 -> code 10, 18 bits
	// deadbeef -> code 11, 34 bits
}

// ExampleCategorize maps compressed sizes to the Figure-10 buckets.
func ExampleCategorize() {
	fmt.Println(compress.Categorize(32))  // 4 bytes
	fmt.Println(compress.Categorize(100)) // 13 bytes
	fmt.Println(compress.Categorize(250)) // 32 bytes
	fmt.Println(compress.Categorize(544)) // 68 bytes
	// Output:
	// one-eighth
	// one-fourth
	// one-half
	// full
}
