package l1

import (
	"testing"

	"ldis/internal/mem"
)

func tiny() *Cache {
	// 2 sets x 2 ways = 256B.
	return New(Config{SizeBytes: 2 * 2 * mem.LineSize, Ways: 2})
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Sets() != 128 {
		t.Errorf("default L1D sets = %d, want 128", c.Sets())
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := []Config{
		{SizeBytes: 128, Ways: 0},
		{SizeBytes: 64 * 3 * 2, Ways: 2}, // 3 sets
		{SizeBytes: 100, Ways: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v should fail validation", c)
		}
	}
}

func TestMissFillHit(t *testing.T) {
	c := tiny()
	l := mem.LineAddr(10)
	if got := c.Access(l, 3, false); got != LineMiss {
		t.Fatalf("cold access = %v", got)
	}
	if _, had := c.Fill(l, mem.FullFootprint, 3, false); had {
		t.Fatal("fill into empty set evicted")
	}
	if got := c.Access(l, 3, false); got != Hit {
		t.Fatalf("after fill = %v", got)
	}
	if got := c.Access(l, 6, false); got != Hit {
		t.Fatalf("other word = %v", got)
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.LineMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSectorMiss(t *testing.T) {
	c := tiny()
	l := mem.LineAddr(4)
	// Fill with only words 0 and 1 valid (a partial WOC response).
	partial := mem.FootprintOfWord(0).Or(mem.FootprintOfWord(1))
	c.Access(l, 0, false)
	c.Fill(l, partial, 0, false)
	if got := c.Access(l, 1, false); got != Hit {
		t.Fatalf("valid word = %v", got)
	}
	if got := c.Access(l, 5, false); got != SectorMiss {
		t.Fatalf("invalid word = %v", got)
	}
	if c.Stats().SectorMisses != 1 {
		t.Errorf("sector misses = %d", c.Stats().SectorMisses)
	}
	// Sector fill merges valid bits without losing footprint.
	if _, had := c.Fill(l, mem.FullFootprint, 5, false); had {
		t.Fatal("sector fill must not evict")
	}
	if got := c.ValidBits(l); got != mem.FullFootprint {
		t.Errorf("valid bits after merge = %v", got)
	}
	if got := c.Access(l, 5, false); got != Hit {
		t.Fatalf("after sector fill = %v", got)
	}
}

func TestFootprintHandoffOnEviction(t *testing.T) {
	c := tiny()
	// Lines 0, 2, 4 all map to set 0 (2 sets).
	a, b, d := mem.LineAddr(0), mem.LineAddr(2), mem.LineAddr(4)
	c.Fill(a, mem.FullFootprint, 1, false)
	c.Access(a, 4, false)
	c.Access(a, 4, true) // write word 4
	c.Fill(b, mem.FullFootprint, 0, false)
	ev, had := c.Fill(d, mem.FullFootprint, 0, false) // evicts a
	if !had || ev.Line != a {
		t.Fatalf("eviction = %+v (had=%v)", ev, had)
	}
	if ev.Footprint.Count() != 2 || !ev.Footprint.Has(1) || !ev.Footprint.Has(4) {
		t.Errorf("footprint = %v", ev.Footprint)
	}
	if ev.Dirty != mem.FootprintOfWord(4) {
		t.Errorf("dirty = %v", ev.Dirty)
	}
	if c.Stats().Evictions != 1 || c.Stats().Writebacks != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := tiny()
	a, b, d := mem.LineAddr(0), mem.LineAddr(2), mem.LineAddr(4)
	c.Fill(a, mem.FullFootprint, 0, false)
	c.Fill(b, mem.FullFootprint, 0, false)
	ev, had := c.Fill(d, mem.FullFootprint, 0, false)
	if !had || ev.Dirty != 0 {
		t.Fatalf("clean eviction = %+v", ev)
	}
	if c.Stats().Writebacks != 0 {
		t.Error("clean eviction counted as writeback")
	}
}

func TestLRUPromotionOnHit(t *testing.T) {
	c := tiny()
	a, b, d := mem.LineAddr(0), mem.LineAddr(2), mem.LineAddr(4)
	c.Fill(a, mem.FullFootprint, 0, false)
	c.Fill(b, mem.FullFootprint, 0, false)
	c.Access(a, 0, false) // promote a
	ev, _ := c.Fill(d, mem.FullFootprint, 0, false)
	if ev.Line != b {
		t.Errorf("victim %v, want %v", ev.Line, b)
	}
	if !c.Present(a) || c.Present(b) {
		t.Error("contents wrong after eviction")
	}
}

func TestFillDemandWordMustBeValid(t *testing.T) {
	c := tiny()
	defer func() {
		if recover() == nil {
			t.Error("expected panic when fill lacks demand word")
		}
	}()
	c.Fill(0, mem.FootprintOfWord(0), 5, false)
}

func TestWriteOnFillSetsDirty(t *testing.T) {
	c := tiny()
	a, b, d := mem.LineAddr(0), mem.LineAddr(2), mem.LineAddr(4)
	c.Fill(a, mem.FullFootprint, 2, true)
	c.Fill(b, mem.FullFootprint, 0, false)
	ev, _ := c.Fill(d, mem.FullFootprint, 0, false)
	if ev.Line != a || ev.Dirty != mem.FootprintOfWord(2) {
		t.Errorf("eviction = %+v", ev)
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	a := mem.LineAddr(0)
	c.Fill(a, mem.FullFootprint, 3, true)
	ev, ok := c.Invalidate(a)
	if !ok || ev.Dirty != mem.FootprintOfWord(3) || ev.Footprint != mem.FootprintOfWord(3) {
		t.Errorf("invalidate = %+v ok=%v", ev, ok)
	}
	if c.Present(a) {
		t.Error("line still present after invalidate")
	}
	if _, ok := c.Invalidate(a); ok {
		t.Error("double invalidate reported ok")
	}
}

func TestValidBitsAbsent(t *testing.T) {
	c := tiny()
	if c.ValidBits(123) != 0 {
		t.Error("absent line should have zero valid bits")
	}
}

func TestSectorMissDoesNotTouchLRU(t *testing.T) {
	c := tiny()
	a, b := mem.LineAddr(0), mem.LineAddr(2)
	c.Fill(a, mem.FootprintOfWord(0), 0, false)
	c.Fill(b, mem.FullFootprint, 0, false)
	// Sector-missing on a must not promote it...
	if got := c.Access(a, 7, false); got != SectorMiss {
		t.Fatalf("access = %v", got)
	}
	// ...so a is still LRU and gets evicted by the next fill.
	ev, _ := c.Fill(mem.LineAddr(4), mem.FullFootprint, 0, false)
	if ev.Line != a {
		t.Errorf("victim %v, want %v (sector miss must not promote)", ev.Line, a)
	}
}

func TestOutcomeString(t *testing.T) {
	if Hit.String() != "hit" || SectorMiss.String() != "sector-miss" || LineMiss.String() != "line-miss" {
		t.Error("Outcome.String wrong")
	}
	if Outcome(9).String() == "" {
		t.Error("unknown outcome should render")
	}
}

func TestEvictFor(t *testing.T) {
	c := tiny()
	a, b := mem.LineAddr(0), mem.LineAddr(2)
	// Empty set: no eviction needed.
	if _, had := c.EvictFor(a); had {
		t.Fatal("empty set should not evict")
	}
	c.Fill(a, mem.FullFootprint, 1, true)
	// Line present (sector fill): no eviction.
	if _, had := c.EvictFor(a); had {
		t.Fatal("present line should not trigger eviction")
	}
	c.Fill(b, mem.FullFootprint, 0, false)
	// Set full, new line: the LRU victim (a) is evicted early with its
	// footprint and dirty words.
	ev, had := c.EvictFor(mem.LineAddr(4))
	if !had || ev.Line != a {
		t.Fatalf("eviction = %+v (had=%v)", ev, had)
	}
	if ev.Dirty != mem.FootprintOfWord(1) {
		t.Errorf("dirty = %v", ev.Dirty)
	}
	if c.Present(a) {
		t.Error("victim still present")
	}
	// The follow-up fill must not evict again.
	if _, had := c.Fill(mem.LineAddr(4), mem.FullFootprint, 0, false); had {
		t.Error("fill evicted despite EvictFor")
	}
}
