// Package l1 implements the first-level data cache of the paper's
// framework (Section 4): a small set-associative cache that is
// *sectored* at word granularity — lines filled from the WOC may hold
// only a subset of valid words — and that tracks a per-line footprint
// which is handed to the L2 when the line is evicted (Section 4.1).
package l1

import (
	"fmt"

	"ldis/internal/mem"
)

// Config describes the L1D. The paper's baseline is 16kB, 2-way, 64B
// lines with LRU replacement (Table 1).
type Config struct {
	SizeBytes int
	Ways      int
}

// DefaultConfig is the paper's baseline L1D.
func DefaultConfig() Config { return Config{SizeBytes: 16 << 10, Ways: 2} }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (mem.LineSize * c.Ways) }

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return fmt.Errorf("l1: ways must be positive, got %d", c.Ways)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*mem.LineSize != c.SizeBytes {
		return fmt.Errorf("l1: size %dB not divisible into %d ways of 64B lines", c.SizeBytes, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("l1: set count %d not a power of two", sets)
	}
	return nil
}

type line struct {
	valid     bool
	tag       uint64
	validBits mem.Footprint // which words hold data (sectored fill)
	dirty     mem.Footprint // which words have been written
	footprint mem.Footprint // which words the processor accessed
}

// Outcome classifies an L1D access.
type Outcome uint8

const (
	// Hit: the word is present.
	Hit Outcome = iota
	// SectorMiss: the line is present but the requested word's sector is
	// invalid (it was filled from a partial WOC line). The request must
	// go to the L2 with the sector id (paper Section 4.2).
	SectorMiss
	// LineMiss: the line is absent.
	LineMiss
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case SectorMiss:
		return "sector-miss"
	case LineMiss:
		return "line-miss"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Eviction carries the information an evicted line sends to the L2: the
// accumulated footprint (ORed into the LOC entry) and the dirty words
// (written back).
type Eviction struct {
	Line      mem.LineAddr
	Footprint mem.Footprint
	Dirty     mem.Footprint
}

// Stats counts L1D behaviour.
type Stats struct {
	Accesses     uint64
	Hits         uint64
	SectorMisses uint64
	LineMisses   uint64
	Evictions    uint64
	Writebacks   uint64 // evictions carrying at least one dirty word
}

// Cache is the sectored, footprint-tracking L1D.
type Cache struct {
	cfg  Config
	sets [][]line // MRU-first
	st   Stats

	// Set-indexing geometry, precomputed at construction so the access
	// path does not rederive it (Config.Sets divides; LineAddr.Tag
	// shift-loops) on every access.
	setMask  uint64
	tagShift uint
}

// New builds the L1D; panics on invalid config.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.Sets()
	sets := make([][]line, numSets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	c := &Cache{cfg: cfg, sets: sets, setMask: uint64(numSets - 1)}
	for n := numSets; n > 1; n >>= 1 {
		c.tagShift++
	}
	return c
}

// setIndexOf and tagOf are the precomputed equivalents of
// mem.LineAddr.SetIndex/Tag for this cache's geometry.
func (c *Cache) setIndexOf(la mem.LineAddr) int { return int(uint64(la) & c.setMask) }
func (c *Cache) tagOf(la mem.LineAddr) uint64   { return uint64(la) >> c.tagShift }

// Stats returns the live counters.
func (c *Cache) Stats() *Stats { return &c.st }

// Access performs a processor load/store of one word. On Hit the
// footprint and dirty bits update and the line moves to MRU. On
// SectorMiss or LineMiss the caller must consult the L2 and then call
// Fill.
func (c *Cache) Access(la mem.LineAddr, word int, write bool) Outcome {
	c.st.Accesses++
	set := c.sets[c.setIndexOf(la)]
	tag := c.tagOf(la)
	// MRU fast path: a hit on way 0 needs no reordering, so it updates
	// the line in place instead of copying it out and back.
	if l := &set[0]; l.valid && l.tag == tag {
		if !l.validBits.Has(word) {
			c.st.SectorMisses++
			// Keep LRU state untouched until the fill arrives.
			return SectorMiss
		}
		c.st.Hits++
		l.footprint = l.footprint.Set(word)
		if write {
			l.dirty = l.dirty.Set(word)
		}
		return Hit
	}
	for pos := 1; pos < len(set); pos++ {
		if !set[pos].valid || set[pos].tag != tag {
			continue
		}
		l := set[pos]
		if !l.validBits.Has(word) {
			c.st.SectorMisses++
			// Keep LRU state untouched until the fill arrives.
			return SectorMiss
		}
		c.st.Hits++
		l.footprint = l.footprint.Set(word)
		if write {
			l.dirty = l.dirty.Set(word)
		}
		copy(set[1:pos+1], set[0:pos])
		set[0] = l
		return Hit
	}
	c.st.LineMisses++
	return LineMiss
}

// AccessEvict fuses Access with EvictFor's victim selection: one set
// scan serves the hit/sector-miss paths, and a line miss in a full set
// evicts the LRU way immediately — exactly the Access-then-EvictFor
// sequence the hierarchy performs, without the second scan. The victim
// (if any) must be written back to the L2 before the miss request, as
// EvictFor's contract describes.
//
//ldis:noalloc
func (c *Cache) AccessEvict(la mem.LineAddr, word int, write bool) (Outcome, Eviction, bool) {
	c.st.Accesses++
	si := c.setIndexOf(la)
	set := c.sets[si]
	tag := c.tagOf(la)
	// MRU fast path, as in Access.
	free := false
	if l := &set[0]; l.valid && l.tag == tag {
		if !l.validBits.Has(word) {
			c.st.SectorMisses++
			return SectorMiss, Eviction{}, false
		}
		c.st.Hits++
		l.footprint = l.footprint.Set(word)
		if write {
			l.dirty = l.dirty.Set(word)
		}
		return Hit, Eviction{}, false
	} else if !l.valid {
		free = true
	}
	for pos := 1; pos < len(set); pos++ {
		if !set[pos].valid {
			free = true
			continue
		}
		if set[pos].tag != tag {
			continue
		}
		l := set[pos]
		if !l.validBits.Has(word) {
			c.st.SectorMisses++
			return SectorMiss, Eviction{}, false
		}
		c.st.Hits++
		l.footprint = l.footprint.Set(word)
		if write {
			l.dirty = l.dirty.Set(word)
		}
		copy(set[1:pos+1], set[0:pos])
		set[0] = l
		return Hit, Eviction{}, false
	}
	c.st.LineMisses++
	if free {
		return LineMiss, Eviction{}, false
	}
	v := set[len(set)-1]
	set[len(set)-1] = line{}
	c.st.Evictions++
	if v.dirty != 0 {
		c.st.Writebacks++
	}
	return LineMiss, Eviction{Line: c.lineFromTag(v.tag, si), Footprint: v.footprint, Dirty: v.dirty}, true
}

// Fill installs the response to a miss: the line with validBits valid
// words (FullFootprint when served by the LOC or memory, possibly
// partial when served by the WOC). word is the demand word — it is
// recorded in the footprint (and dirty mask if write). If the line is
// already present (sector miss fill) the valid bits are merged and
// footprint/dirty state is preserved. Returns the eviction the fill
// displaced, if any.
func (c *Cache) Fill(la mem.LineAddr, validBits mem.Footprint, word int, write bool) (Eviction, bool) {
	if !validBits.Has(word) {
		panic(fmt.Sprintf("l1: fill of %v lacks demand word %d (valid %v)", la, word, validBits))
	}
	si := c.setIndexOf(la)
	set := c.sets[si]
	tag := c.tagOf(la)
	for pos := range set {
		if set[pos].valid && set[pos].tag == tag {
			l := set[pos]
			l.validBits = l.validBits.Or(validBits)
			l.footprint = l.footprint.Set(word)
			if write {
				l.dirty = l.dirty.Set(word)
			}
			copy(set[1:pos+1], set[0:pos])
			set[0] = l
			return Eviction{}, false
		}
	}
	var ev Eviction
	had := false
	if v := set[len(set)-1]; v.valid {
		c.st.Evictions++
		if v.dirty != 0 {
			c.st.Writebacks++
		}
		ev = Eviction{Line: c.lineFromTag(v.tag, si), Footprint: v.footprint, Dirty: v.dirty}
		had = true
	}
	nl := line{valid: true, tag: tag, validBits: validBits, footprint: mem.FootprintOfWord(word)}
	if write {
		nl.dirty = mem.FootprintOfWord(word)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = nl
	return ev, had
}

// FillNew installs a miss response for a line the caller knows is
// absent (AccessEvict just returned LineMiss and nothing has touched
// the set since), skipping Fill's presence scan. Semantics otherwise
// match Fill's install path exactly.
//
//ldis:noalloc
func (c *Cache) FillNew(la mem.LineAddr, validBits mem.Footprint, word int, write bool) (Eviction, bool) {
	if !validBits.Has(word) {
		panic(fmt.Sprintf("l1: fill of %v lacks demand word %d (valid %v)", la, word, validBits))
	}
	si := c.setIndexOf(la)
	set := c.sets[si]
	var ev Eviction
	had := false
	if v := set[len(set)-1]; v.valid {
		c.st.Evictions++
		if v.dirty != 0 {
			c.st.Writebacks++
		}
		ev = Eviction{Line: c.lineFromTag(v.tag, si), Footprint: v.footprint, Dirty: v.dirty}
		had = true
	}
	nl := line{valid: true, tag: c.tagOf(la), validBits: validBits, footprint: mem.FootprintOfWord(word)}
	if write {
		nl.dirty = mem.FootprintOfWord(word)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = nl
	return ev, had
}

// EvictFor frees a slot for an incoming fill of la, returning the
// victim's eviction record. It is a no-op when the line is already
// present (sector fill) or its set has a free way. Callers use it to
// send the victim's footprint and dirty words to the L2 *before* the
// miss request, as a victim buffer would, so the LOC has the usage
// information when it distills.
func (c *Cache) EvictFor(la mem.LineAddr) (Eviction, bool) {
	si := c.setIndexOf(la)
	set := c.sets[si]
	tag := c.tagOf(la)
	for pos := range set {
		if !set[pos].valid || set[pos].tag == tag {
			return Eviction{}, false // free way, or sector fill
		}
	}
	v := set[len(set)-1]
	set[len(set)-1] = line{}
	c.st.Evictions++
	if v.dirty != 0 {
		c.st.Writebacks++
	}
	return Eviction{Line: c.lineFromTag(v.tag, si), Footprint: v.footprint, Dirty: v.dirty}, true
}

// Invalidate removes the line if present, returning its eviction record
// (footprint + dirty words) so the L2 still learns the usage. Used when
// the L2 needs exclusivity (e.g. tests and future coherence hooks).
func (c *Cache) Invalidate(la mem.LineAddr) (Eviction, bool) {
	si := c.setIndexOf(la)
	set := c.sets[si]
	tag := c.tagOf(la)
	for pos := range set {
		if set[pos].valid && set[pos].tag == tag {
			v := set[pos]
			set[pos] = line{}
			ev := Eviction{Line: la, Footprint: v.footprint, Dirty: v.dirty}
			return ev, true
		}
	}
	return Eviction{}, false
}

// Present reports whether the line (any sector) is cached.
func (c *Cache) Present(la mem.LineAddr) bool {
	set := c.sets[c.setIndexOf(la)]
	tag := c.tagOf(la)
	for pos := range set {
		if set[pos].valid && set[pos].tag == tag {
			return true
		}
	}
	return false
}

// ValidBits returns the valid-word mask of the line (0 if absent).
func (c *Cache) ValidBits(la mem.LineAddr) mem.Footprint {
	set := c.sets[c.setIndexOf(la)]
	tag := c.tagOf(la)
	for pos := range set {
		if set[pos].valid && set[pos].tag == tag {
			return set[pos].validBits
		}
	}
	return 0
}

func (c *Cache) lineFromTag(tag uint64, setIdx int) mem.LineAddr {
	return mem.LineAddr(tag<<c.tagShift | uint64(setIdx))
}

// Merge folds a sibling shard's counters into s: shards partition the
// line-address space, so plain sums reproduce the sequential totals.
//
//ldis:noalloc
func (s *Stats) Merge(o *Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.SectorMisses += o.SectorMisses
	s.LineMisses += o.LineMisses
	s.Evictions += o.Evictions
	s.Writebacks += o.Writebacks
}
