package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"ldis/internal/exp"
	"ldis/internal/obs"
	"ldis/internal/trace"
)

// Retry-After seconds for the two back-pressure responses: shed load
// clears on the order of a queue slot, a draining server needs a
// restart behind it.
const (
	retryAfterShed  = 5
	retryAfterDrain = 30
)

// route is one v1 API endpoint: the single source of truth that both
// registers the mux pattern and documents the endpoint in
// /v1/openapi.json, so the served spec can never drift from the
// routing table.
type route struct {
	method  string
	path    string // mux pattern under /v1 (may contain {id} wildcards)
	summary string
	handler http.HandlerFunc
}

// routes returns the complete v1 API surface.
func (s *Server) routes() []route {
	return []route{
		{"GET", "/v1/healthz", "liveness and queue occupancy; status \"draining\" tells balancers to stop routing here", s.handleHealth},
		{"GET", "/v1/openapi.json", "this document: the machine-readable v1 route table", s.handleOpenAPI},
		{"GET", "/v1/experiments", "registered experiment ids and descriptions", s.handleExperiments},
		{"POST", "/v1/jobs", "submit a job spec; 202 on admit, 409 on live duplicate, 429/503 under pressure", s.handleSubmit},
		{"GET", "/v1/jobs", "all jobs in submission order", s.handleJobList},
		{"GET", "/v1/jobs/{id}", "one job's state", s.handleJobStatus},
		{"GET", "/v1/jobs/{id}/result", "stream rendered tables; ?wait=1 long-polls to a terminal state", s.handleJobResult},
		{"GET", "/v1/jobs/{id}/manifest", "the job's validated run manifest", s.handleJobManifest},
		{"POST", "/v1/traces", "upload one binary trace; strict decode with corruption diagnosis", s.handleTraceUpload},
		{"GET", "/v1/traces/{id}", "a stored trace's metadata", s.handleTraceInfo},
	}
}

// Handler assembles the routed API behind the hardening middleware
// chain (outermost first: request-id/log, panic recovery, path guard,
// body limit, per-request deadline). Every resource lives under /v1/;
// the unversioned spellings answer 301 (GET/HEAD, preserving the
// query) or 410, never content.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.HandleFunc(rt.method+" "+rt.path, rt.handler)
	}
	mux.HandleFunc("/", s.handleLegacy)
	var h http.Handler = mux
	h = s.withDeadline(h)
	h = s.withBodyLimit(h)
	h = s.withPathGuard(h)
	h = s.withRecovery(h)
	h = s.withRequestID(h)
	return h
}

// handleOpenAPI serves the machine-readable v1 route table as a
// minimal OpenAPI 3.0 document built from the same routes slice the
// mux is wired from.
func (s *Server) handleOpenAPI(w http.ResponseWriter, r *http.Request) {
	paths := map[string]map[string]any{}
	for _, rt := range s.routes() {
		p := paths[rt.path]
		if p == nil {
			p = map[string]any{}
			paths[rt.path] = p
		}
		p[strings.ToLower(rt.method)] = map[string]any{
			"summary":   rt.summary,
			"responses": map[string]any{"default": map[string]any{"description": "see summary"}},
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"openapi": "3.0.3",
		"info": map[string]any{
			"title":   "ldisd cache-analysis service",
			"version": "v1",
		},
		"paths": paths,
	})
}

// handleLegacy is the catch-all for everything outside /v1/: a known
// resource spelled without the prefix answers 301 (GET/HEAD, with the
// query preserved) pointing at its /v1 home, or 410 for methods where
// a silent redirect could replay a mutation against the wrong
// contract; anything else is a plain 404.
func (s *Server) handleLegacy(w http.ResponseWriter, r *http.Request) {
	seg := strings.TrimPrefix(r.URL.Path, "/")
	if i := strings.IndexByte(seg, '/'); i >= 0 {
		seg = seg[:i]
	}
	known := false
	for _, rt := range s.routes() {
		root := strings.TrimPrefix(rt.path, "/v1/")
		if j := strings.IndexByte(root, '/'); j >= 0 {
			root = root[:j]
		}
		if seg == root && seg != "" {
			known = true
			break
		}
	}
	if !known {
		writeError(w, r, http.StatusNotFound, apiError{Error: "unknown path " + r.URL.Path})
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		target := "/v1" + r.URL.Path
		if r.URL.RawQuery != "" {
			target += "?" + r.URL.RawQuery
		}
		http.Redirect(w, r, target, http.StatusMovedPermanently)
	default:
		writeError(w, r, http.StatusGone, apiError{
			Error: fmt.Sprintf("unversioned path %s is gone; use /v1%s", r.URL.Path, r.URL.Path),
		})
	}
}

// handleHealth reports liveness and queue occupancy; "draining" tells
// load balancers to stop routing here.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	queued, running, done, failed := s.store.counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status, "queued": queued, "running": running,
		"done": done, "failed": failed, "queue_depth": s.cfg.QueueDepth,
	})
}

// handleExperiments lists the registered experiment ids — the valid
// values of a job spec's experiments field.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		About string `json:"about"`
	}
	var out []entry
	for _, id := range exp.IDs() {
		about, _ := exp.About(id)
		out = append(out, entry{ID: id, About: about})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSubmit admits one job: strict spec decode, full-problem-list
// validation, then the bounded queue. 429 + Retry-After sheds load
// when the queue is full; 503 + Retry-After refuses work while
// draining; 409 points at a live equivalent job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeSpec(r.Body)
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, r, code, apiError{Error: err.Error()})
		return
	}
	if err := spec.Validate(&s.cfg); err != nil {
		writeError(w, r, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	j, fresh, err := s.Submit(spec, requestID(r))
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, r, http.StatusServiceUnavailable,
			apiError{Error: err.Error(), RetryAfter: retryAfterDrain})
	case errors.Is(err, ErrQueueFull):
		writeError(w, r, http.StatusTooManyRequests,
			apiError{Error: err.Error(), RetryAfter: retryAfterShed})
	case err != nil:
		var conflict *ConflictError
		if errors.As(err, &conflict) {
			writeError(w, r, http.StatusConflict, apiError{Error: err.Error()})
			return
		}
		writeError(w, r, http.StatusInternalServerError, apiError{Error: err.Error()})
	case fresh:
		writeJSON(w, http.StatusAccepted, j.status())
	default:
		// Idempotent resubmission of a live or completed job.
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleJobList returns every job in submission order.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	out := []JobStatus{}
	for _, j := range s.store.list() {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

// jobFromPath resolves the {id} path segment, rejecting malformed ids
// before they touch the store.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	if !jobIDPattern.MatchString(id) {
		writeError(w, r, http.StatusBadRequest, apiError{Error: fmt.Sprintf("malformed job id %q", id)})
		return nil, false
	}
	j, ok := s.store.get(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, apiError{Error: "unknown job " + id})
		return nil, false
	}
	return j, true
}

// handleJobStatus reports one job's state.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobResult streams the job's rendered tables. Each experiment's
// output is flushed as soon as it completes; with ?wait=1 the handler
// long-polls (bounded by the request deadline) until the job reaches a
// terminal state. Every response — complete, partial, or failed —
// carries the X-Ldisd-Status / X-Ldisd-Error trailers and a final
// status line, so a truncated or failed stream is never mistakable
// for a clean result.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	w.Header().Set("Trailer", "X-Ldisd-Status, X-Ldisd-Error")
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	next := 0
	for {
		fresh, state, errMsg, changed := j.progress(next)
		for _, res := range fresh {
			io.WriteString(w, res.Text)
			next++
		}
		if len(fresh) > 0 {
			flush()
		}
		if state.terminal() {
			finishResult(w, j, state, errMsg)
			return
		}
		if !wait {
			finishResult(w, j, state, "job still "+string(state)+"; poll again or use ?wait=1")
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			finishResult(w, j, state, "request deadline before job finished; poll again")
			return
		}
	}
}

// finishResult writes the result stream's trailer and status line.
func finishResult(w http.ResponseWriter, j *Job, state JobState, errMsg string) {
	if errMsg != "" {
		fmt.Fprintf(w, "# ldisd: job %s %s: %s\n", j.ID, state, errMsg)
	} else {
		fmt.Fprintf(w, "# ldisd: job %s %s\n", j.ID, state)
	}
	w.Header().Set("X-Ldisd-Status", string(state))
	w.Header().Set("X-Ldisd-Error", errMsg)
}

// handleJobManifest serves the per-job run manifest through the
// validating parser, so a half-written file reads as an error rather
// than as truth.
func (s *Server) handleJobManifest(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	m, err := obs.ReadManifest(filepath.Join(j.dir, obs.ManifestFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, r, http.StatusNotFound, apiError{Error: "no manifest yet for job " + j.ID})
			return
		}
		writeError(w, r, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handleTraceUpload validates and stores one binary trace. The decode
// is strict: a corrupt upload is refused with the corruption's byte
// offset and record index — the hardened decoder's diagnosis — rather
// than stored and discovered mid-job.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, r, code, apiError{Error: "reading upload: " + err.Error()})
		return
	}
	accs, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		e := apiError{Error: err.Error()}
		var ce *trace.CorruptError
		if errors.As(err, &ce) {
			e.Corrupt = &corruptInfo{Offset: ce.Offset, Record: ce.Record, Reason: ce.Reason}
		}
		writeError(w, r, http.StatusBadRequest, e)
		return
	}
	id := "t" + fnvHex(data)
	path := s.tracePath(id)
	if _, statErr := os.Stat(path); statErr != nil {
		// Write-then-rename so a crash mid-store can never leave a
		// half-written trace under a valid id.
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			writeError(w, r, http.StatusInternalServerError, apiError{Error: err.Error(), Retryable: true})
			return
		}
		if err := os.Rename(tmp, path); err != nil {
			writeError(w, r, http.StatusInternalServerError, apiError{Error: err.Error(), Retryable: true})
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id": id, "records": len(accs), "bytes": len(data),
	})
}

// handleTraceInfo reports a stored trace's metadata.
func (s *Server) handleTraceInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !traceIDPattern.MatchString(id) {
		writeError(w, r, http.StatusBadRequest, apiError{Error: fmt.Sprintf("malformed trace id %q", id)})
		return
	}
	f, err := os.Open(s.tracePath(id))
	if err != nil {
		writeError(w, r, http.StatusNotFound, apiError{Error: "unknown trace " + id})
		return
	}
	defer f.Close()
	br, err := trace.NewBatchReader(f)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	st, _ := f.Stat()
	var size int64
	if st != nil {
		size = st.Size()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "records": br.Count(), "bytes": size,
	})
}
