package server

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ldis"
	"ldis/internal/exp"
	"ldis/internal/obs"
	"ldis/internal/stats"
	"ldis/internal/trace"
)

// runExperiments executes an exp-kind job: every requested experiment
// through the engine's cell scheduler, with the job's work directory
// holding the CRC-guarded checkpoint and the per-job manifest. The
// returned retryable flag is true only for failures that an identical
// resubmission can complete (drain abandonment) — cell failures are
// deterministic and rerunning them without change would fail again.
func (s *Server) runExperiments(j *Job) (err error, retryable bool) {
	if mkErr := os.MkdirAll(j.dir, 0o755); mkErr != nil {
		return fmt.Errorf("job workdir: %w", mkErr), true
	}
	o := j.Spec.expOptions(&s.cfg)
	run := obs.NewRun(nil)
	o.Obs = run
	if o.KeepGoing {
		o.Failures = exp.NewFailureLog()
	}
	ck, ckErr := exp.OpenCheckpoint(filepath.Join(j.dir, exp.CheckpointFile), o)
	if ckErr != nil {
		return fmt.Errorf("opening checkpoint: %w", ckErr), false
	}
	defer ck.Close()
	o.Checkpoint = ck
	if n := ck.Loaded(); n > 0 {
		s.logf("job %s req %s: resuming with %d checkpointed cell(s)", j.ID, j.RequestID, n)
	}

	// The manifest is written on every exit path — success, failure,
	// abandonment — so a poller always finds the run's observable
	// state next to its checkpoint.
	defer func() {
		j.setReplayed(ck.Replayed())
		if mErr := s.writeManifest(j, run, o); mErr != nil && err == nil {
			err = mErr
		}
	}()

	for _, id := range j.Spec.Experiments {
		if s.abandoned() {
			return fmt.Errorf("job abandoned at drain deadline before experiment %s (completed cells are checkpointed; resubmit to resume)", id), true
		}
		tables, runErr := exp.Run(id, o)
		if runErr != nil {
			return fmt.Errorf("%s: %w", id, runErr), false
		}
		var out strings.Builder
		for _, t := range tables {
			out.WriteString(renderTable(t, j.Spec.Format))
			out.WriteByte('\n')
		}
		j.appendResult(id, out.String())
	}
	if o.Failures != nil && o.Failures.Len() > 0 {
		j.setFailures(o.Failures.Len())
		return fmt.Errorf("%d cell(s) failed; healthy benchmarks rendered, failures recorded in the manifest", o.Failures.Len()), false
	}
	return nil, false
}

// renderTable applies the job's output format.
func renderTable(t *stats.Table, format string) string {
	switch format {
	case "csv":
		return t.CSV()
	case "markdown":
		return t.Markdown()
	default:
		return t.String()
	}
}

// writeManifest emits the per-job run manifest, request id included,
// and re-reads it through the validating parser so a torn write can
// never masquerade as a result.
func (s *Server) writeManifest(j *Job, run *obs.Run, o exp.Options) error {
	params := o.ManifestParams()
	params["job_id"] = j.ID
	params["request_id"] = j.RequestID
	m := &obs.Manifest{
		Tool:        "ldisd",
		GoVersion:   runtime.Version(),
		Workers:     s.cfg.CellWorkers,
		Fingerprint: o.Fingerprint(),
		Experiments: j.Spec.Experiments,
		Params:      params,
	}
	m.Snapshot(run)
	if o.Failures != nil {
		m.Failures = o.Failures.Manifest()
	}
	path := filepath.Join(j.dir, obs.ManifestFile)
	if err := obs.WriteManifest(path, m); err != nil {
		return err
	}
	if _, err := obs.ReadManifest(path); err != nil {
		return fmt.Errorf("manifest verification: %w", err)
	}
	return nil
}

// runTraceSim replays an uploaded trace through one cache
// organization, streaming the decode so replay memory stays flat in
// the trace length. Mid-replay corruption is a structured failure,
// never a silent short result.
func (s *Server) runTraceSim(j *Job) error {
	path := s.tracePath(j.Spec.Trace)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("trace %s not found; upload it first via POST /v1/traces", j.Spec.Trace)
		}
		return err
	}
	defer f.Close()
	br, err := trace.NewBatchReader(f)
	if err != nil {
		return fmt.Errorf("trace %s: %w", j.Spec.Trace, err)
	}
	reg := ldis.NewObserver()
	sim, err := buildTraceSim(j.Spec.Cache, reg)
	if err != nil {
		return err
	}
	n := j.Spec.Accesses
	if c := br.Count(); uint64(n) > c {
		n = int(c)
	}
	res := sim.RunStream(j.Spec.Trace, br, n)
	if cerr := br.Err(); cerr != nil {
		return fmt.Errorf("trace %s corrupt mid-replay: %w", j.Spec.Trace, cerr)
	}
	var out strings.Builder
	fmt.Fprintf(&out, "trace %s via %s\n%s\n", j.Spec.Trace, j.Spec.Cache, res)
	if ds := sim.DistillStats(); ds != nil {
		fmt.Fprintf(&out, "distilled=%d threshold-skips=%d woc-evictions=%d mode-switches=%d writebacks=%d\n",
			ds.Distilled, ds.ThresholdSkips, ds.WOCEvictions, ds.ModeSwitches, ds.Writebacks)
	}
	j.appendResult("tracesim", out.String())

	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return err
	}
	m := &obs.Manifest{
		Version:     obs.ManifestVersion,
		Tool:        "ldisd",
		GoVersion:   runtime.Version(),
		Experiments: []string{"tracesim"},
		Params: map[string]string{
			"job_id": j.ID, "request_id": j.RequestID,
			"trace": j.Spec.Trace, "cache": j.Spec.Cache,
			"accesses": fmt.Sprint(n),
		},
		Metrics: reg.Snapshot(),
	}
	return obs.WriteManifest(filepath.Join(j.dir, obs.ManifestFile), m)
}

// buildTraceSim maps the spec's cache name onto the public facade.
func buildTraceSim(kind string, reg *ldis.Observer) (*ldis.Sim, error) {
	var org ldis.Option
	switch kind {
	case "baseline", "trad":
		org = ldis.WithTraditional(1<<20, 8)
	case "distill":
		org = ldis.WithDistill(ldis.DefaultDistillConfig())
	default:
		return nil, fmt.Errorf("unknown cache organization %q", kind)
	}
	return ldis.New(org, ldis.WithObserver(reg))
}

// tracePath maps a validated trace id onto its storage path.
func (s *Server) tracePath(id string) string {
	return filepath.Join(s.cfg.DataDir, "traces", id+".ldtr")
}
