package server

import (
	"context"
	"errors"
	"log"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// testConfig returns a small, fast server config rooted in a temp dir.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		DataDir:         t.TempDir(),
		QueueDepth:      2,
		Workers:         1,
		DefaultAccesses: 20_000,
		Log:             log.New(new(strings.Builder), "", 0),
	}
}

// smallSpec is a fast two-benchmark fig6 job; vary bench to get
// distinct jobs (distinct ids and work directories).
func smallSpec(t *testing.T, cfg *Config, bench string) *Spec {
	t.Helper()
	s := &Spec{Kind: "exp", Experiments: []string{"fig6"}, Benchmarks: []string{bench}, Accesses: 20_000}
	if err := s.Validate(cfg); err != nil {
		t.Fatalf("spec: %v", err)
	}
	return s
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		_, state, errMsg, _ := j.progress(0)
		if state == want {
			return
		}
		if state.terminal() {
			t.Fatalf("job %s reached %s (%s), want %s", j.ID, state, errMsg, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", j.ID, want)
}

// waitQueueDrained polls until the (single) worker has pulled the next
// job off the channel, so subsequent submissions deterministically fill
// the queue rather than racing the dequeue.
func waitQueueDrained(t *testing.T, s *Server) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if len(s.queue) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("worker never drained the queue")
}

// TestShutdownDrainsInFlight pins the graceful-drain contract: the
// in-flight job runs to completion, the queued-but-unstarted job is
// rejected with a retryable status, and submissions during the drain
// are refused with ErrDraining.
func TestShutdownDrainsInFlight(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.testHold = make(chan struct{})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	inflight, _, err := s.Submit(smallSpec(t, &s.cfg, "mcf"), "r-inflight")
	if err != nil {
		t.Fatal(err)
	}
	// The single worker pulls the job and parks on testHold — in
	// flight, not yet running.
	waitQueueDrained(t, s)
	queued, _, err := s.Submit(smallSpec(t, &s.cfg, "health"), "r-queued")
	if err != nil {
		t.Fatal(err)
	}

	// Drain with the worker still parked: the shed loop must reject the
	// queued job without touching the in-flight one.
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	waitState(t, queued, StateRejected)
	_, _, errMsg, _ := queued.progress(0)
	if !queued.status().Retryable {
		t.Errorf("shed job not marked retryable (err %q)", errMsg)
	}

	if _, _, err := s.Submit(smallSpec(t, &s.cfg, "swim"), "r-late"); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain: err = %v, want ErrDraining", err)
	}

	// Release the worker: the in-flight job must now run to completion
	// inside the drain window.
	close(s.testHold)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	results, state, errMsg, _ := inflight.progress(0)
	if state != StateDone || len(results) != 1 {
		t.Fatalf("in-flight job: state %s err %q results %d, want done with 1 result", state, errMsg, len(results))
	}
}

// TestShutdownTwiceErrors pins that a second Shutdown reports instead
// of double-closing the queue.
func TestShutdownTwiceErrors(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("second Shutdown should error")
	}
}

// TestRunSignalsCleanDrain pins exit code 0 for a first-signal drain
// with nothing in flight.
func TestRunSignalsCleanDrain(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 2)
	codes := make(chan int, 1)
	sig <- os.Interrupt
	RunSignals(s, sig, 30*time.Second, func(code int) { codes <- code })
	if code := <-codes; code != 0 {
		t.Fatalf("clean drain exit code %d, want 0", code)
	}
}

// TestRunSignalsSecondSignalForcesExit pins the fast-exit path: with a
// job pinned in flight the drain cannot finish, and a second signal
// must exit code 2 immediately (abandoning, not waiting out, the
// drain).
func TestRunSignalsSecondSignalForcesExit(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.testHold = make(chan struct{})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(smallSpec(t, &s.cfg, "mcf"), "r-pinned"); err != nil {
		t.Fatal(err)
	}
	waitQueueDrained(t, s)

	sig := make(chan os.Signal, 2)
	codes := make(chan int, 2)
	ret := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunSignals(s, sig, time.Hour, func(code int) { codes <- code })
		close(ret)
	}()
	sig <- os.Interrupt
	sig <- os.Interrupt
	if code := <-codes; code != 2 {
		t.Fatalf("second-signal exit code %d, want 2", code)
	}
	if !s.abandoned() {
		t.Error("second signal should set the abandon flag")
	}
	// Unpark the worker so the background drain can finish and
	// RunSignals can join it; the abandoned job must fail retryable at
	// its first experiment boundary, not complete.
	close(s.testHold)
	select {
	case <-ret:
	case <-time.After(30 * time.Second):
		t.Fatal("RunSignals did not return after the drain unblocked")
	}
	wg.Wait()
	select {
	case extra := <-codes:
		t.Fatalf("exit called twice (second code %d)", extra)
	default:
	}
}
