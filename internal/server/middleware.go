package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
)

// ctxKey keys request-scoped values.
type ctxKey int

const ctxRequestID ctxKey = iota

// requestID returns the id assigned to r by the middleware chain.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ctxRequestID).(string)
	return id
}

// statusWriter records the response status so the recovery middleware
// knows whether a panic escaped before or after the header was sent,
// and the access log can report what actually went out. Flush is
// forwarded so the streaming result handler keeps working through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// apiError is the structured error body every non-2xx response
// carries: the service never answers with an empty error page, and
// the request id lets a client line its failure up with the server
// log.
type apiError struct {
	Error      string `json:"error"`
	RequestID  string `json:"request_id,omitempty"`
	Retryable  bool   `json:"retryable,omitempty"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
	// Corrupt pins upload corruption to its location, straight from
	// the hardened trace decoder.
	Corrupt *corruptInfo `json:"corrupt,omitempty"`
}

type corruptInfo struct {
	Offset int64  `json:"offset"`
	Record int64  `json:"record"`
	Reason string `json:"reason"`
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders a structured error; retryAfter > 0 additionally
// sets the Retry-After header (the load-shedding contract).
func writeError(w http.ResponseWriter, r *http.Request, code int, e apiError) {
	e.RequestID = requestID(r)
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(e.RetryAfter))
		e.Retryable = true
	}
	writeJSON(w, code, e)
}

// withRequestID assigns every request an id (honouring a well-formed
// inbound X-Request-Id so callers can thread their own correlation
// keys), reflects it in the response, and writes the access log line.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = fmt.Sprintf("r%d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		r = r.WithContext(context.WithValue(r.Context(), ctxRequestID, id))
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.logf("req %s %s %s -> %d", id, r.Method, r.URL.Path, sw.status)
	})
}

// sanitizeRequestID accepts only short, log-safe inbound ids.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// withRecovery converts a panicking handler into a structured 500 —
// stack to the log under the request id, never to the client — so one
// bad request cannot take a connection's goroutine down with an
// unhandled panic.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.logf("req %s handler panicked: %v\n%s", requestID(r), rec, debug.Stack())
				if sw, ok := w.(*statusWriter); !ok || sw.status == 0 {
					writeError(w, r, http.StatusInternalServerError,
						apiError{Error: fmt.Sprintf("internal error: %v", rec)})
				}
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withPathGuard bounds request-path length and depth before any
// routing happens — a hostile path never reaches a handler, the
// filesystem, or the mux's pattern matcher.
func (s *Server) withPathGuard(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(r.URL.Path) > s.cfg.MaxPathBytes {
			writeError(w, r, http.StatusRequestURITooLong,
				apiError{Error: fmt.Sprintf("path longer than %d bytes", s.cfg.MaxPathBytes)})
			return
		}
		if depth := strings.Count(r.URL.Path, "/"); depth > s.cfg.MaxPathDepth {
			writeError(w, r, http.StatusBadRequest,
				apiError{Error: fmt.Sprintf("path deeper than %d segments", s.cfg.MaxPathDepth)})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withBodyLimit caps request bodies: the large allowance on the trace
// upload endpoint, the small one everywhere else. MaxBytesReader makes
// an oversized body a read error inside the handler rather than an
// unbounded allocation.
func (s *Server) withBodyLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			limit := s.cfg.MaxSpecBytes
			if r.URL.Path == "/v1/traces" {
				limit = s.cfg.MaxBodyBytes
			}
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		next.ServeHTTP(w, r)
	})
}

// withDeadline attaches the per-request deadline. Handlers that wait
// (the result long-poll) select on the context, so a stuck client or a
// never-finishing job cannot pin a handler goroutine forever.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
