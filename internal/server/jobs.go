package server

import (
	"sort"
	"sync"
)

// JobState is a job's position in its lifecycle. Transitions are
// queued → running → done|failed, with queued → rejected when a
// draining server sheds the job before it ever starts. rejected and
// failed-with-retryable carry Retryable=true: the work is intact (any
// checkpoint survives) and an identical resubmission picks it back up.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateRejected JobState = "rejected"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateRejected
}

// ExpResult is one experiment's rendered output within a job, appended
// as soon as that experiment completes so the result endpoint can
// stream it while later experiments are still running.
type ExpResult struct {
	ID   string `json:"id"`
	Text string `json:"-"`
}

// Job is one admitted unit of work. The immutable identity fields are
// set at admission; everything mutable is guarded by mu and published
// to pollers through the changed channel (closed and replaced on every
// update — a broadcast that never blocks the writer).
type Job struct {
	ID        string
	Seq       int
	RequestID string
	Spec      *Spec
	dir       string
	workKey   string

	mu        sync.Mutex
	state     JobState
	err       string
	retryable bool
	results   []ExpResult
	replayed  int
	failures  int
	changed   chan struct{}
}

func newJob(spec *Spec, seq int, requestID, dir string) *Job {
	return &Job{
		ID: spec.ID(), Seq: seq, RequestID: requestID, Spec: spec,
		dir: dir, workKey: spec.workKey(),
		state: StateQueued, changed: make(chan struct{}),
	}
}

// notifyLocked wakes every waiter; callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// begin moves the job queued → running. It returns false when the job
// was rejected between admission and pickup (the shutdown drain path),
// in which case the worker must not run it.
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.notifyLocked()
	return true
}

// finish moves the job to a terminal state with a structured outcome.
func (j *Job) finish(state JobState, errMsg string, retryable bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = state
	j.err = errMsg
	j.retryable = retryable
	j.notifyLocked()
}

// reject sheds a still-queued job with a retryable status; it is a
// no-op once the job has started.
func (j *Job) reject(reason string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRejected
	j.err = reason
	j.retryable = true
	j.notifyLocked()
	return true
}

// appendResult publishes one completed experiment's rendered tables.
func (j *Job) appendResult(id, text string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results = append(j.results, ExpResult{ID: id, Text: text})
	j.notifyLocked()
}

// setReplayed records how many cells the job's checkpoint served.
func (j *Job) setReplayed(n int) {
	j.mu.Lock()
	j.replayed = n
	j.mu.Unlock()
}

// setFailures records the keep-going failure count.
func (j *Job) setFailures(n int) {
	j.mu.Lock()
	j.failures = n
	j.mu.Unlock()
}

// progress returns the results appended since index from, the current
// state, and the channel that closes on the next change — everything
// the streaming result handler needs to either emit or wait.
func (j *Job) progress(from int) (fresh []ExpResult, state JobState, errMsg string, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.results) {
		fresh = append(fresh, j.results[from:]...)
	}
	return fresh, j.state, j.err, j.changed
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID            string   `json:"id"`
	State         JobState `json:"state"`
	Kind          string   `json:"kind"`
	RequestID     string   `json:"request_id,omitempty"`
	Experiments   []string `json:"experiments,omitempty"`
	Completed     []string `json:"completed,omitempty"`
	Error         string   `json:"error,omitempty"`
	Retryable     bool     `json:"retryable,omitempty"`
	ReplayedCells int      `json:"replayed_cells,omitempty"`
	FailedCells   int      `json:"failed_cells,omitempty"`
	ResultURL     string   `json:"result_url"`
	ManifestURL   string   `json:"manifest_url"`
}

// status snapshots the job for JSON rendering.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, State: j.state, Kind: j.Spec.Kind, RequestID: j.RequestID,
		Experiments: j.Spec.Experiments, Error: j.err, Retryable: j.retryable,
		ReplayedCells: j.replayed, FailedCells: j.failures,
		ResultURL:   "/v1/jobs/" + j.ID + "/result",
		ManifestURL: "/v1/jobs/" + j.ID + "/manifest",
	}
	for _, r := range j.results {
		st.Completed = append(st.Completed, r.ID)
	}
	return st
}

// store is the in-memory job registry. Work directories are exclusive
// while a job holding them is live: two jobs whose specs map to the
// same checkpoint may not run concurrently (their appends would
// interleave), so admission returns a conflict instead.
type store struct {
	mu    sync.Mutex
	jobs  map[string]*Job
	order []string          // insertion order, for deterministic listings
	dirs  map[string]string // workKey → live job id
	seq   int
}

func newStore() *store {
	return &store{jobs: make(map[string]*Job), dirs: make(map[string]string)}
}

// ConflictError reports a submission whose work directory is held by a
// live equivalent job.
type ConflictError struct{ ActiveID string }

func (e *ConflictError) Error() string {
	return "an equivalent job is already in flight: " + e.ActiveID
}

// admit registers the job, enforcing id idempotency and work-directory
// exclusivity. It returns (existing, nil) when an identical live or
// completed job already exists — submission is idempotent — and
// replaces terminally failed or rejected entries so a retry actually
// reruns.
func (st *store) admit(spec *Spec, requestID, dir string) (*Job, bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	id := spec.ID()
	if cur, ok := st.jobs[id]; ok {
		cur.mu.Lock()
		state := cur.state
		cur.mu.Unlock()
		if state == StateDone || !state.terminal() {
			return cur, false, nil
		}
		// failed or rejected: fall through and replace with a fresh run.
	}
	key := spec.workKey()
	if holder, busy := st.dirs[key]; busy && holder != id {
		return nil, false, &ConflictError{ActiveID: holder}
	}
	st.seq++
	j := newJob(spec, st.seq, requestID, dir)
	if _, known := st.jobs[id]; !known {
		st.order = append(st.order, id)
	}
	st.jobs[id] = j
	st.dirs[key] = id
	return j, true, nil
}

// forget removes a just-admitted job that never made the queue (the
// load-shedding path), so a post-backoff retry is admitted cleanly.
func (st *store) forget(j *Job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dirs[j.workKey] == j.ID {
		delete(st.dirs, j.workKey)
	}
	if st.jobs[j.ID] == j {
		delete(st.jobs, j.ID)
		if n := len(st.order); n > 0 && st.order[n-1] == j.ID {
			st.order = st.order[:n-1]
		}
	}
}

// release frees the job's work directory once it reaches a terminal
// state.
func (st *store) release(j *Job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dirs[j.workKey] == j.ID {
		delete(st.dirs, j.workKey)
	}
}

// get looks a job up by id.
func (st *store) get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// list returns every job in submission order.
func (st *store) list() []*Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Job, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, st.jobs[id])
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// counts tallies jobs by lifecycle bucket for the health endpoint.
func (st *store) counts() (queued, running, done, failed int) {
	for _, j := range st.list() {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		case StateDone:
			done++
		case StateFailed, StateRejected:
			failed++
		}
	}
	return
}
