package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"ldis/internal/faultinject"
	"ldis/internal/mem"
	"ldis/internal/trace"
)

// fig6Benches is the chaos grid: fig6 (4 configuration columns) over
// four benchmarks, 16 cells.
var fig6Benches = []string{"ammp", "mcf", "swim", "health"}

// findCellFaultSeed scans for a fault seed whose injected panics hit at
// least one fig6 cell but not all of them, so a faulted run both fails
// and checkpoints healthy cells. Site() is a pure function of (seed,
// key), so the scan is exact, not probabilistic.
func findCellFaultSeed(t *testing.T) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 10_000; seed++ {
		inj := faultinject.NewDefault(seed)
		faulty := 0
		for _, b := range fig6Benches {
			for col := 0; col < 4; col++ {
				if f, _ := inj.Site(fmt.Sprintf("fig6/%s/%d", b, col)); f {
					faulty++
				}
			}
		}
		if faulty > 0 && faulty < len(fig6Benches)*4 {
			return seed
		}
	}
	t.Fatal("no usable cell fault seed in scan range")
	return 0
}

// TestInjectedJobPanicIsStructuredFailure drives the worker panic
// boundary: a chaos seed chosen to panic a specific job must yield a
// structured job failure (the par.TaskError rendering, with the
// injection site named) while the server keeps serving and completes a
// subsequent clean job.
func TestInjectedJobPanicIsStructuredFailure(t *testing.T) {
	cfg := testConfig(t).withDefaults()
	doomed := smallSpec(t, &cfg, "mcf")
	key := "job/" + doomed.ID()
	seed := uint64(0)
	for c := uint64(1); c < 10_000; c++ {
		if f, _ := faultinject.NewDefault(c).Site(key); f {
			seed = c
			break
		}
	}
	if seed == 0 {
		t.Fatal("no fault seed hits the job site in scan range")
	}
	cfg.FaultSeed = seed
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	j, _, err := s.Submit(doomed, "r-doomed")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	_, _, errMsg, _ := j.progress(0)
	if !strings.Contains(errMsg, "panicked") || !strings.Contains(errMsg, "injected panic at "+key) {
		t.Errorf("panic failure not structured: %q", errMsg)
	}

	// The panic must not have taken a worker down with it: a clean job
	// submitted afterwards still completes.
	clean, _, err := s.Submit(smallSpec(t, &s.cfg, "swim"), "r-clean")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, clean, StateDone)
}

// TestQueueFullSheds429 pins the admission-control contract over real
// HTTP: with one worker pinned and the queue full, the next submission
// is shed with 429 + Retry-After and a retryable JSON body — and after
// the backlog clears, the identical spec is admitted cleanly (the shed
// registration left no ghost behind).
func TestQueueFullSheds429(t *testing.T) {
	cfg := testConfig(t) // QueueDepth 2, Workers 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.testHold = make(chan struct{})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + s.Addr()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	post := func(bench string) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"kind":"exp","experiments":["fig6"],"benchmarks":[%q],"accesses":20000}`, bench)
		resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for i, bench := range []string{"mcf", "health", "swim"} {
		resp := post(bench)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, want 202", i, resp.StatusCode)
		}
		resp.Body.Close()
		if i == 0 {
			waitQueueDrained(t, s) // worker holds job 0; jobs 1,2 fill the queue
		}
	}

	resp := post("ammp")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submission: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	var e struct {
		Error      string `json:"error"`
		Retryable  bool   `json:"retryable"`
		RetryAfter int    `json:"retry_after_seconds"`
		RequestID  string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("429 body not structured JSON: %v", err)
	}
	if !e.Retryable || e.RetryAfter <= 0 || e.Error == "" || e.RequestID == "" {
		t.Errorf("429 body incomplete: %+v", e)
	}

	// Clear the backlog, then the shed spec must be admitted fresh.
	close(s.testHold)
	for i := 0; i < 1000; i++ {
		q, r, _, _ := s.store.counts()
		if q+r == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp2 := post("ammp")
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp2.Body)
		t.Fatalf("post-backoff resubmit: status %d, want 202 (body %s)", resp2.StatusCode, b)
	}
}

// TestCorruptUploadRejectedStructured pins the upload door: a
// bit-flipped trace is refused with a 400 whose body carries the
// decoder's structured diagnosis (offset, record, reason) — never
// stored, never an empty error.
func TestCorruptUploadRejectedStructured(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + s.Addr()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	accs := make([]mem.Access, 8)
	for i := range accs {
		accs[i] = mem.Access{Addr: mem.Addr(0x1000 + i*64), Kind: mem.Load}
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, accs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Header is 16 bytes, records 24; the kind byte sits 16 bytes into
	// a record. Poison record 1's kind.
	data[16+24+16] = 0xFF

	resp, err := client.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload: status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error   string `json:"error"`
		Corrupt *struct {
			Offset int64  `json:"offset"`
			Record int64  `json:"record"`
			Reason string `json:"reason"`
		} `json:"corrupt"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("400 body not structured JSON: %v", err)
	}
	if e.Corrupt == nil {
		t.Fatalf("corrupt upload response missing corruption info: %+v", e)
	}
	if e.Corrupt.Record != 1 || e.Corrupt.Offset != 16+24 || e.Corrupt.Reason == "" {
		t.Errorf("corruption not pinned to record 1 at offset 40: %+v", *e.Corrupt)
	}
}

// TestKillMidSweepResumesByteIdentical is the chaos gate's recovery
// leg. A seeded fault kills part of a fig6 sweep (server A); the
// failed job's result stream still carries the error trailer. A clean
// respin of the same spec on a fresh server over the same data
// directory (server B — the restart) must replay the surviving cells
// from the checkpoint and render output byte-identical to a
// never-faulted run on a pristine directory (server C).
func TestKillMidSweepResumesByteIdentical(t *testing.T) {
	seed := findCellFaultSeed(t)
	mkSpec := func(cfg *Config, faultSeed uint64) *Spec {
		s := &Spec{Kind: "exp", Experiments: []string{"fig6"}, Benchmarks: fig6Benches,
			Accesses: 20_000, KeepGoing: true, FaultSeed: faultSeed}
		if err := s.Validate(cfg); err != nil {
			t.Fatalf("spec: %v", err)
		}
		return s
	}

	dataDir := t.TempDir()
	cfgA := testConfig(t)
	cfgA.DataDir = dataDir
	a, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	faulted, _, err := a.Submit(mkSpec(&a.cfg, seed), "r-faulted")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, faulted, StateFailed)
	st := faulted.status()
	if st.FailedCells == 0 || st.FailedCells == len(fig6Benches)*4 {
		t.Fatalf("faulted run failed %d/16 cells; the seed scan promised a partial failure", st.FailedCells)
	}

	// No partial response without an error trailer: the failed job's
	// stream must end with status "failed" and a non-empty error.
	client := &http.Client{}
	resp, err := client.Get("http://" + a.Addr() + "/v1/jobs/" + faulted.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	client.CloseIdleConnections()
	if got := resp.Trailer.Get("X-Ldisd-Status"); got != string(StateFailed) {
		t.Errorf("failed job result trailer status %q, want failed", got)
	}
	if resp.Trailer.Get("X-Ldisd-Error") == "" {
		t.Errorf("failed job result stream has no error trailer; body:\n%s", body)
	}
	// Kill server A mid-story (drain; the job already failed).
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatalf("server A shutdown: %v", err)
	}

	// Server B: the restart over the same data directory. The clean
	// respin shares the work directory (fault seed is excluded from the
	// work key) and must resume from the checkpoint.
	cfgB := testConfig(t)
	cfgB.DataDir = dataDir
	b, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	resumed, _, err := b.Submit(mkSpec(&b.cfg, 0), "r-resumed")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, resumed, StateDone)
	if got := resumed.status().ReplayedCells; got == 0 {
		t.Error("resumed job replayed no checkpointed cells; expected the faulted run's surviving work to be reused")
	}
	resumedOut, _, _, _ := resumed.progress(0)
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatalf("server B shutdown: %v", err)
	}

	// Server C: the same clean spec on a pristine directory.
	c, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	pristine, _, err := c.Submit(mkSpec(&c.cfg, 0), "r-pristine")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, pristine, StateDone)
	if got := pristine.status().ReplayedCells; got != 0 {
		t.Errorf("pristine run replayed %d cells from an empty directory", got)
	}
	pristineOut, _, _, _ := pristine.progress(0)
	if err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("server C shutdown: %v", err)
	}

	if len(resumedOut) != 1 || len(pristineOut) != 1 {
		t.Fatalf("result counts: resumed %d, pristine %d, want 1 each", len(resumedOut), len(pristineOut))
	}
	if resumedOut[0].Text != pristineOut[0].Text {
		t.Errorf("resumed output differs from pristine run:\n--- resumed ---\n%s\n--- pristine ---\n%s",
			resumedOut[0].Text, pristineOut[0].Text)
	}
}

// TestLifecycleLeavesNoGoroutines pins that a full start → work →
// drain cycle returns the process to its original goroutine count: the
// worker pool, listener, and drain helpers are all joined, not leaked.
func TestLifecycleLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 2; cycle++ {
		s, err := New(testConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		j, _, err := s.Submit(smallSpec(t, &s.cfg, "mcf"), "r-leak")
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatalf("cycle %d shutdown: %v", cycle, err)
		}
	}
	for i := 0; i < 500; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after two lifecycles", before, runtime.NumGoroutine())
}
