package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"regexp"
	"strings"

	"ldis/internal/exp"
	"ldis/internal/workload"
)

// Spec is one job request: which analysis to run and at what scale.
// The zero value is invalid — a spec must name at least one registered
// experiment (kind "exp", the default) or an uploaded trace (kind
// "tracesim"). Everything else defaults server-side, and the server's
// admission caps (accesses, experiment count) bound what a single
// request can cost.
type Spec struct {
	// Kind selects the job type: "exp" (default) runs registered
	// experiments over the synthetic benchmarks; "tracesim" replays an
	// uploaded trace through one cache organization.
	Kind string `json:"kind,omitempty"`

	// Experiments are the registered experiment ids to run (kind exp).
	Experiments []string `json:"experiments,omitempty"`
	// Accesses per benchmark per configuration; 0 means the server
	// default. Capped by the server's MaxAccesses admission limit.
	Accesses int `json:"accesses,omitempty"`
	// WarmupFrac is the fraction of accesses excluded from measurement.
	WarmupFrac float64 `json:"warmup_frac,omitempty"`
	// Benchmarks restricts the run to a benchmark subset (default: the
	// paper's 16).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// KeepGoing runs every cell to completion instead of aborting at
	// the first failure; failed cells land in the job's failure table.
	KeepGoing bool `json:"keep_going,omitempty"`
	// Retries gives each failing cell extra attempts (transient-fault
	// absorption); capped at MaxRetries.
	Retries int `json:"retries,omitempty"`
	// Format renders result tables as "text" (default), "csv", or
	// "markdown".
	Format string `json:"format,omitempty"`

	// MRC knobs, passed through to the mrc experiment; 0 means default.
	MRCSampleRate float64 `json:"mrc_sample_rate,omitempty"`
	MRCResolution int     `json:"mrc_resolution,omitempty"`
	MRCMaxBytes   int     `json:"mrc_max_bytes,omitempty"`

	// FaultSeed deterministically panics a seeded subset of cells via
	// internal/faultinject — the chaos-testing hook. Excluded from the
	// job's work fingerprint, so a faulted job's checkpoint resumes
	// under a clean respin of the same spec.
	FaultSeed uint64 `json:"fault_seed,omitempty"`

	// Trace is the id of an uploaded trace (kind tracesim).
	Trace string `json:"trace,omitempty"`
	// Cache is the organization a tracesim replays through: "baseline",
	// "trad", or "distill" (default).
	Cache string `json:"cache,omitempty"`
}

// MaxRetries caps per-cell retry attempts a spec may request.
const MaxRetries = 5

// MaxExperiments caps how many experiment ids one job may name.
const MaxExperiments = 8

// SpecError is one diagnosed problem with a job spec, mirroring
// exp.OptionError so clients get the complete problem list in one
// response instead of fixing fields one round-trip at a time.
type SpecError struct {
	Field string
	Msg   string
}

func (e *SpecError) Error() string { return "spec: " + e.Field + ": " + e.Msg }

// DecodeSpec reads one JSON job spec from r. It is strict: unknown
// fields, malformed JSON, trailing garbage, and empty bodies are all
// errors — a hardened decoder, fuzzed to never panic on hostile input.
// Semantic checks live in Validate; DecodeSpec only guarantees the
// bytes parsed to exactly one well-formed Spec.
func DecodeSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, errors.New("spec: empty body")
		}
		return nil, fmt.Errorf("spec: %w", err)
	}
	// Exactly one JSON value: trailing bytes mean a second document or
	// garbage, both grounds for rejection at the door.
	if dec.More() {
		return nil, errors.New("spec: trailing data after job spec")
	}
	return &s, nil
}

// traceIDPattern is the only shape a trace id may take — the
// content-derived name the upload endpoint assigns. Anything else
// (path separators, dots) is rejected before it reaches the
// filesystem.
var traceIDPattern = regexp.MustCompile(`^t[0-9a-f]{16}$`)

// jobIDPattern is the shape of job ids in URLs.
var jobIDPattern = regexp.MustCompile(`^j[0-9a-f]{16}$`)

// Validate checks the spec against the server's admission limits and
// normalizes defaults in place. It returns nil or an errors.Join of
// *SpecError values — every problem found, never just the first.
func (s *Spec) Validate(cfg *Config) error {
	var problems []error
	bad := func(field, format string, args ...any) {
		problems = append(problems, &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	switch s.Kind {
	case "":
		s.Kind = "exp"
	case "exp", "tracesim":
	default:
		bad("kind", "unknown kind %q (want \"exp\" or \"tracesim\")", s.Kind)
	}
	if s.Accesses == 0 {
		s.Accesses = cfg.DefaultAccesses
	}
	if s.Accesses < 0 {
		bad("accesses", "must be positive, got %d", s.Accesses)
	} else if s.Accesses > cfg.MaxAccesses {
		bad("accesses", "%d exceeds the admission cap %d", s.Accesses, cfg.MaxAccesses)
	}
	if s.WarmupFrac < 0 || s.WarmupFrac >= 1 {
		bad("warmup_frac", "%v out of [0,1)", s.WarmupFrac)
	}
	if s.Retries < 0 || s.Retries > MaxRetries {
		bad("retries", "must be in [0,%d], got %d", MaxRetries, s.Retries)
	}
	switch s.Format {
	case "":
		s.Format = "text"
	case "text", "csv", "markdown":
	default:
		bad("format", "unknown format %q (want text, csv, or markdown)", s.Format)
	}
	if (s.MRCSampleRate < 0 || s.MRCSampleRate >= 1) && s.MRCSampleRate != 0 {
		bad("mrc_sample_rate", "%v outside (0,1)", s.MRCSampleRate)
	}
	if s.MRCResolution < 0 || s.MRCMaxBytes < 0 {
		bad("mrc_resolution", "MRC curve geometry must be >= 0")
	}
	for _, b := range s.Benchmarks {
		if _, err := workload.ByName(b); err != nil {
			bad("benchmarks", "%v", err)
		}
	}

	switch s.Kind {
	case "exp":
		if len(s.Experiments) == 0 {
			bad("experiments", "at least one experiment id required; see GET /v1/experiments")
		}
		if len(s.Experiments) > MaxExperiments {
			bad("experiments", "%d ids exceed the per-job cap %d", len(s.Experiments), MaxExperiments)
		}
		for _, id := range s.Experiments {
			if _, ok := exp.About(id); !ok {
				bad("experiments", "unknown experiment %q; see GET /v1/experiments", id)
			}
		}
		if s.Trace != "" {
			bad("trace", "only valid with kind tracesim")
		}
	case "tracesim":
		if s.Trace == "" {
			bad("trace", "tracesim requires the id of an uploaded trace")
		} else if !traceIDPattern.MatchString(s.Trace) {
			bad("trace", "malformed trace id %q", s.Trace)
		}
		switch s.Cache {
		case "":
			s.Cache = "distill"
		case "baseline", "trad", "distill":
		default:
			bad("cache", "unknown cache organization %q (want baseline, trad, or distill)", s.Cache)
		}
		if len(s.Experiments) > 0 {
			bad("experiments", "only valid with kind exp")
		}
	}
	return errors.Join(problems...)
}

// expOptions builds the experiment-engine options a validated exp-kind
// spec asks for. Scheduling knobs (cell workers) come from the server
// config, not the request — clients size the work, the operator sizes
// the parallelism.
func (s *Spec) expOptions(cfg *Config) exp.Options {
	o := exp.DefaultOptions()
	o.Accesses = s.Accesses
	if s.WarmupFrac > 0 {
		o.WarmupFrac = s.WarmupFrac
	}
	o.Benchmarks = s.Benchmarks
	o.Parallel = cfg.CellWorkers
	o.KeepGoing = s.KeepGoing
	o.Retries = s.Retries
	o.FaultSeed = s.FaultSeed
	o.MRCSampleRate = s.MRCSampleRate
	o.MRCResolution = s.MRCResolution
	o.MRCMaxBytes = s.MRCMaxBytes
	return o
}

// fnvHex is the content-hash used for job and trace ids: FNV-1a,
// rendered as 16 hex digits.
func fnvHex(data []byte) string {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// canonical renders the spec's identity fields in a fixed order. Two
// requests with the same canonical string are the same job: submission
// is idempotent on it.
func (s *Spec) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind=%s|exps=%s|acc=%d|warm=%g|bench=%s|keep=%v|retries=%d|fmt=%s",
		s.Kind, strings.Join(s.Experiments, ","), s.Accesses, s.WarmupFrac,
		strings.Join(s.Benchmarks, ","), s.KeepGoing, s.Retries, s.Format)
	fmt.Fprintf(&b, "|mrc=%g/%d/%d|fault=%d|trace=%s|cache=%s",
		s.MRCSampleRate, s.MRCResolution, s.MRCMaxBytes, s.FaultSeed, s.Trace, s.Cache)
	return b.String()
}

// ID derives the job id from the full spec, chaos knobs included: a
// faulted submission and its clean respin are distinct jobs.
func (s *Spec) ID() string { return "j" + fnvHex([]byte(s.canonical())) }

// workKey derives the job's work-directory key from the
// result-relevant fields only. FaultSeed and Retries are resilience
// knobs that cannot change what a cell computes (mirroring
// exp.Options.Fingerprint), so a faulted job and its clean respin
// share a directory — and therefore a checkpoint, which is what makes
// kill-mid-sweep recovery resume instead of restart.
func (s *Spec) workKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind=%s|exps=%s|acc=%d|warm=%g|bench=%s|keep=%v|fmt=%s",
		s.Kind, strings.Join(s.Experiments, ","), s.Accesses, s.WarmupFrac,
		strings.Join(s.Benchmarks, ","), s.KeepGoing, s.Format)
	fmt.Fprintf(&b, "|mrc=%g/%d/%d|trace=%s|cache=%s",
		s.MRCSampleRate, s.MRCResolution, s.MRCMaxBytes, s.Trace, s.Cache)
	return "w" + fnvHex([]byte(b.String()))
}
